(* Command-line interface for the lastcpu emulator.

   Subcommands:
     lastcpu topology             print the booted system (Figure 1)
     lastcpu figure2 [--trace]    run the KVS bring-up and show the sequence
     lastcpu experiment <id>      run one experiment table (f1..t12)
     lastcpu kv <n>               run n KV smoke operations end to end
     lastcpu metrics [--json]     run a booted KVS workload, dump telemetry
     lastcpu chaos [--json]       run the T13 fault soak, dump telemetry
     lastcpu overload [--json]    run the guarded T14 overload soak, dump telemetry *)

open Cmdliner

module System = Lastcpu_core.System
module Scenario = Lastcpu_core.Scenario_kvs
module Experiments = Lastcpu_core.Experiments
module Protofuzz = Lastcpu_core.Protofuzz
module Engine = Lastcpu_sim.Engine
module Metrics = Lastcpu_sim.Metrics
module Trace = Lastcpu_sim.Trace
module Parallel = Lastcpu_sim.Parallel
module Kv_app = Lastcpu_kv.Kv_app
module Kv_proto = Lastcpu_kv.Kv_proto
module Snapshot = Lastcpu_sim.Snapshot

let seed_arg =
  let doc = "Deterministic seed for the virtual machine room." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let spec_of_seed seed = { System.default_spec with System.seed }

(* --- topology ------------------------------------------------------------- *)

let topology seed =
  let spec =
    { (spec_of_seed seed) with System.with_auth = true; with_console = true }
  in
  let system = System.build ~spec () in
  match System.boot system with
  | Error e ->
    Printf.eprintf "boot failed: %s\n" e;
    1
  | Ok () ->
    print_string (System.topology system);
    0

let topology_cmd =
  let doc = "Boot a CPU-less system and print its topology (paper Figure 1)." in
  Cmd.v (Cmd.info "topology" ~doc) Term.(const topology $ seed_arg)

(* --- figure2 --------------------------------------------------------------- *)

let figure2 seed show_trace json_path =
  match Scenario.run ~spec:(spec_of_seed seed) () with
  | Error e ->
    Printf.eprintf "scenario failed: %s\n" e;
    1
  | Ok outcome ->
    print_endline "KV-store initialization sequence (paper Figure 2):";
    Format.printf "%a" Scenario.pp_steps (Scenario.figure2_steps outcome);
    let trace = Engine.trace (System.engine outcome.Scenario.system) in
    if show_trace then begin
      print_endline "\nfull bus trace:";
      Format.printf "%a" Trace.pp trace
    end;
    (match json_path with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Trace.to_json_lines trace);
      close_out oc;
      Printf.printf "trace written to %s (%d events, jsonl)\n" path
        (Trace.length trace));
    0

let figure2_cmd =
  let doc = "Run the paper's §3 KVS bring-up and print the Figure-2 steps." in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Also dump the full bus trace.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the full trace as JSON lines.")
  in
  Cmd.v (Cmd.info "figure2" ~doc)
    Term.(const figure2 $ seed_arg $ trace_arg $ json_arg)

(* --- experiment ------------------------------------------------------------- *)

let known_ids =
  [ "f1"; "f2"; "t1"; "t1-notokens"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7"; "t8";
    "t9"; "t10"; "t11"; "t12"; "t13"; "t14"; "t15"; "t16"; "t17" ]

(* The one line the resume-smoke CI job diffs between an uninterrupted
   checkpointed run and a killed-then-resumed one: everything observable,
   nothing about provenance (which leg ran how many segments goes to
   stderr). *)
let t16_final_line (r : Experiments.t16_result) =
  Printf.sprintf "t16 final: digest=0x%016Lx events=%d elapsed_ns=%Ld"
    r.Experiments.t16_digest r.Experiments.t16_events r.Experiments.t16_elapsed

let t17_final_line (r : Experiments.t17_result) =
  Printf.sprintf
    "t17 final: digest=0x%016Lx events=%d elapsed_ns=%Ld quarantines=%d \
     stale=%d failovers=%d trust=%s"
    r.Experiments.t17_digest r.Experiments.t17_events r.Experiments.t17_elapsed
    r.Experiments.t17_quarantines r.Experiments.t17_stale
    r.Experiments.t17_failovers r.Experiments.t17_rogue_trust

(* Each experiment owns its engine, so distinct ids are independent tasks:
   render every table to a string (in the worker domain), then print the
   strings in submission order. A parallel run's bytes are identical to a
   sequential run's. *)
let experiment list jobs shards seed snapshot_path checkpoint_every kill_at ids
    =
  if list then begin
    List.iter print_endline known_ids;
    0
  end
  else
    match snapshot_path with
    | Some path -> (
      (* Checkpointed soak mode: run the single t16 leg this process is
         asked for, writing whole-machine snapshots at segment
         boundaries. [--chaos-kill-at B] emulates a kill mid-checkpoint:
         the boundary-B snapshot is written deliberately torn and the
         process dies with the canonical SIGKILL exit status. *)
      match ids with
      | [] | [ "t16" ] -> (
        let r =
          Experiments.t16_soak ~lanes:shards ~seed ~snapshot_path:path
            ~checkpoint_every ?stop_after:kill_at
            ~torn_final:(kill_at <> None) ()
        in
        match kill_at with
        | Some _ ->
          Printf.eprintf
            "killed mid-checkpoint after %d segment(s); torn snapshot at %s\n"
            r.Experiments.t16_segments_run path;
          exit 137
        | None ->
          print_endline (t16_final_line r);
          0)
      | [ "t17" ] -> (
        let r =
          Experiments.t17_soak ~seed ~snapshot_path:path ~checkpoint_every
            ?stop_after:kill_at ~torn_final:(kill_at <> None) ()
        in
        match kill_at with
        | Some _ ->
          Printf.eprintf
            "killed mid-checkpoint after %d segment(s); torn snapshot at %s\n"
            r.Experiments.t17_segments_run path;
          exit 137
        | None ->
          print_endline (t17_final_line r);
          0)
      | _ ->
        Printf.eprintf
          "--snapshot-path drives the t16 and t17 soaks only (got: %s)\n"
          (String.concat " " ids);
        1)
    | None ->
      let render id () =
        match Experiments.by_id ~shards id with
        | None -> Error id
        | Some f -> Ok (Format.asprintf "%a" Experiments.print_table (f ()))
      in
      let rc = ref 0 in
      List.iter
        (function
          | Ok table -> print_string table
          | Error id ->
            Printf.eprintf "unknown experiment %S (see 'experiment --list')\n"
              id;
            rc := 1)
        (Parallel.run_jobs ~jobs (List.map render ids));
      !rc

let jobs_arg =
  let doc =
    "Run experiments on $(docv) domains in parallel. Each run is an \
     independent deterministic simulation; output order and bytes match a \
     sequential run."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Execute t15's shard windows on $(docv) domains (execution lanes). The \
     cluster topology is fixed, so output bytes are identical for any \
     value — that invariance is the temporal-decoupling determinism \
     contract CI checks. Other experiments ignore this."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let snapshot_path_arg =
  let doc =
    "Run the t16 (or t17) soak in checkpointed mode, writing a whole-machine \
     snapshot to $(docv) at every segment boundary (the displaced \
     previous file is kept as a fallback generation)."
  in
  Arg.(
    value & opt (some string) None & info [ "snapshot-path" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc = "Checkpoint every $(docv)-th segment boundary (default 1)." in
  Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let chaos_kill_arg =
  let doc =
    "Chaos hook: die 'mid-checkpoint' at segment boundary $(docv) — the \
     snapshot written there is deliberately torn (truncated, as if the \
     process was killed between write and rename) and the process exits \
     with status 137. Resume with 'lastcpu resume'."
  in
  Arg.(value & opt (some int) None & info [ "chaos-kill-at" ] ~docv:"B" ~doc)

let experiment_cmd =
  let doc = "Run experiment tables (see EXPERIMENTS.md for the index)." in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List known experiment ids.")
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      const experiment $ list_arg $ jobs_arg $ shards_arg $ seed_arg
      $ snapshot_path_arg $ checkpoint_every_arg $ chaos_kill_arg $ ids)

(* --- resume ------------------------------------------------------------------------ *)

let generation_name = function
  | Snapshot.Primary -> "primary"
  | Snapshot.Previous -> "previous"

let resume seed shards exp path =
  match exp with
  | "t16" ->
    let r =
      Experiments.t16_soak ~lanes:shards ~seed ~snapshot_path:path ~resume:true
        ()
    in
    (match r.Experiments.t16_restored with
    | Some g ->
      Printf.eprintf "resumed from %s generation; ran %d remaining segment(s)\n"
        (generation_name g) r.Experiments.t16_segments_run
    | None -> ());
    print_endline (t16_final_line r);
    0
  | "t17" ->
    let r =
      Experiments.t17_soak ~seed ~snapshot_path:path ~resume:true ()
    in
    (match r.Experiments.t17_restored with
    | Some g ->
      Printf.eprintf "resumed from %s generation; ran %d remaining segment(s)\n"
        (generation_name g) r.Experiments.t17_segments_run
    | None -> ());
    print_endline (t17_final_line r);
    0
  | other ->
    Printf.eprintf "resume drives the t16 and t17 soaks only (got: %s)\n" other;
    1

let resume_cmd =
  let doc =
    "Resume a killed t16 soak from its snapshot file: rebuild the \
     identical topology (same seed), overlay the on-disk state — falling \
     back to the previous generation when the primary is torn or corrupt \
     — and run the remaining segments. The final line printed is \
     byte-identical to an uninterrupted run's."
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Snapshot file written by the killed run.")
  in
  let exp =
    Arg.(
      value
      & opt string "t16"
      & info [ "exp" ] ~docv:"ID" ~doc:"Soak to resume: t16 or t17.")
  in
  Cmd.v (Cmd.info "resume" ~doc)
    Term.(const resume $ seed_arg $ shards_arg $ exp $ path)

(* --- kv ----------------------------------------------------------------------- *)

let kv seed n =
  match Scenario.run ~spec:(spec_of_seed seed) ~smoke_ops:0 () with
  | Error e ->
    Printf.eprintf "scenario failed: %s\n" e;
    1
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let app = outcome.Scenario.app in
    let failures = ref 0 in
    for i = 1 to n do
      let key = Printf.sprintf "cli-%04d" i in
      Kv_app.local_op app (Kv_proto.Put (key, "value-" ^ key)) (fun r ->
          if r <> Kv_proto.Done then incr failures);
      System.run_until_idle system;
      Kv_app.local_op app (Kv_proto.Get key) (fun r ->
          match r with
          | Kv_proto.Value (Some _) -> ()
          | _ -> incr failures);
      System.run_until_idle system
    done;
    Printf.printf "%d put+get pairs, %d failures, %Ld virtual ns\n" n !failures
      (Engine.now (System.engine system));
    if !failures = 0 then 0 else 1

let kv_cmd =
  let doc = "Run N put+get pairs through the full CPU-less stack." in
  let n = Arg.(value & pos 0 int 10 & info [] ~docv:"N" ~doc:"Operation pairs.") in
  Cmd.v (Cmd.info "kv" ~doc) Term.(const kv $ seed_arg $ n)

(* --- metrics -------------------------------------------------------------------- *)

let metrics seed n json =
  match Scenario.run ~spec:(spec_of_seed seed) ~smoke_ops:0 () with
  | Error e ->
    Printf.eprintf "scenario failed: %s\n" e;
    1
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let app = outcome.Scenario.app in
    (* Drive some traffic so the registry has something to show. *)
    for i = 1 to n do
      let key = Printf.sprintf "metrics-%04d" i in
      Kv_app.local_op app (Kv_proto.Put (key, "value-" ^ key)) (fun _ -> ());
      System.run_until_idle system;
      Kv_app.local_op app (Kv_proto.Get key) (fun _ -> ());
      System.run_until_idle system
    done;
    let m = Engine.metrics (System.engine system) in
    print_string (if json then Metrics.to_json m else Metrics.to_prometheus m);
    0

let metrics_cmd =
  let doc =
    "Boot the KVS scenario, run a small workload and print the telemetry \
     registry (Prometheus text exposition by default)."
  in
  let n =
    Arg.(value & opt int 25 & info [ "ops" ] ~docv:"N" ~doc:"KV put+get pairs to drive.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON snapshot instead.")
  in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const metrics $ seed_arg $ n $ json_arg)

(* --- chaos ------------------------------------------------------------------------ *)

let chaos seed json =
  let system = Experiments.chaos_soak ~seed () in
  let m = Engine.metrics (System.engine system) in
  print_string (if json then Metrics.to_json m else Metrics.to_prometheus m);
  0

let chaos_cmd =
  let doc =
    "Run the T13 chaos soak (seeded fault injection: message loss, \
     corruption, NAND faults, a storage-device crash) on the CPU-less \
     design and print the telemetry registry. Identical seeds produce \
     byte-identical output; CI diffs two runs."
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON snapshot instead.")
  in
  Cmd.v (Cmd.info "chaos" ~doc) Term.(const chaos $ seed_arg $ json_arg)

(* --- overload --------------------------------------------------------------------- *)

let overload seed json =
  let system = Experiments.overload_soak ~seed () in
  let m = Engine.metrics (System.engine system) in
  print_string (if json then Metrics.to_json m else Metrics.to_prometheus m);
  0

let overload_cmd =
  let doc =
    "Run the T14 overload probe (open-loop warm\xe2\x86\x92pulse\xe2\x86\x92recover \
     load with the overload guards armed: bounded queues, KV admission \
     control, circuit breaker, deadline-carrying control ops) on the \
     CPU-less design and print the telemetry registry. Identical seeds \
     produce byte-identical output; CI diffs two runs."
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON snapshot instead.")
  in
  Cmd.v (Cmd.info "overload" ~doc) Term.(const overload $ seed_arg $ json_arg)

(* --- fuzz ------------------------------------------------------------------------- *)

let fuzz seed iters =
  let r = Protofuzz.run ~seed ~iters () in
  print_endline (Protofuzz.summary r);
  List.iter
    (fun d -> Printf.eprintf "violation: %s\n" d)
    r.Protofuzz.violation_details;
  if r.Protofuzz.engine_crashes = 0 && r.Protofuzz.containment_violations = 0
  then 0
  else 1

let fuzz_cmd =
  let doc =
    "Run the deterministic structure-aware protocol fuzzer: a rogue smart \
     NIC injects seed-salted mutants of real control-plane frames as raw \
     bytes on the bus while the campaign asserts the containment \
     invariants — no engine crash, no path from the rogue's IOMMU into \
     another tenant's frames, victim memory intact. Prints one summary \
     line (byte-identical for equal seeds; CI diffs it against a \
     committed golden) and exits non-zero on any crash or containment \
     violation."
  in
  let iters_arg =
    Arg.(
      value & opt int 400
      & info [ "iters" ] ~docv:"N" ~doc:"Mutant frames to inject.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc) Term.(const fuzz $ seed_arg $ iters_arg)

(* --- sanitize --------------------------------------------------------------------- *)

let sanitize seed exps =
  let exps =
    match exps with [] -> Experiments.sanitize_experiments | l -> l
  in
  let races = ref 0 in
  List.iter
    (fun exp ->
      let reports = Experiments.sanitize ~seed ~exp () in
      List.iter
        (fun (r : Experiments.sanitize_report) ->
          match r.Experiments.san_divergence with
          | None ->
            Printf.printf
              "%-4s vs %-6s : OK (%d multi-event ticks, no ordering race)\n"
              r.Experiments.san_exp r.Experiments.san_perturbation
              r.Experiments.san_multi_event_ticks
          | Some d ->
            incr races;
            Printf.printf "%-4s vs %-6s : RACE\n%s\n" r.Experiments.san_exp
              r.Experiments.san_perturbation
              (Format.asprintf "%a" Lastcpu_sim.Sanitizer.pp_divergence d))
        reports)
    exps;
  if !races = 0 then 0 else 1

let sanitize_cmd =
  let doc =
    "Same-tick ordering sanitizer: run an experiment under the contractual \
     FIFO same-tick event order and under perturbed tie-breaks (LIFO and \
     seed-salted), comparing observable-state digests after every \
     multi-event tick. A divergence means some event pair's same-timestamp \
     order leaks into observable state — an ordering race the determinism \
     contract forbids. For t15 (multi-shard, where tie-break drift \
     legitimately dissolves coincidental collisions of independent \
     streams) the check is instead that the final digest is tie-invariant \
     and that each perturbed tie's journal is bit-identical between 1 and \
     4 execution lanes. Exits non-zero if any race is found."
  in
  let exps_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "exp" ] ~docv:"ID"
          ~doc:
            "Experiment to sanitize (t1, t13, t14 or t15); repeatable. \
             Default: all four.")
  in
  Cmd.v (Cmd.info "sanitize" ~doc) Term.(const sanitize $ seed_arg $ exps_arg)

let () =
  let doc = "emulator of the CPU-less system from 'The Last CPU' (HotOS '21)" in
  let info = Cmd.info "lastcpu" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ topology_cmd; figure2_cmd; experiment_cmd; resume_cmd; kv_cmd;
            metrics_cmd; chaos_cmd; overload_cmd; fuzz_cmd; sanitize_cmd ]))
