(* Tests for the pub/sub broker: a second complete application hosted on a
   smart NIC. *)

module System = Lastcpu_core.System
module Netsim = Lastcpu_net.Netsim
module Smart_nic = Lastcpu_devices.Smart_nic
module Pubsub = Lastcpu_apps.Pubsub
module Proto = Lastcpu_apps.Pubsub_proto

let test_topic_matching () =
  let cases =
    [
      ("a/b", "a/b", true);
      ("a/b", "a/c", false);
      ("a/*", "a/b/c", true);
      ("a/*", "a", false);
      ("*", "anything", true);
      ("", "x", false);
      ("exact", "exact", true);
    ]
  in
  List.iter
    (fun (pattern, topic, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s ~ %s" pattern topic)
        expect
        (Proto.topic_matches ~pattern topic))
    cases

let test_proto_roundtrips () =
  let reqs =
    [
      { Proto.corr = 1; op = Proto.Subscribe "a/*" };
      { Proto.corr = 2; op = Proto.Unsubscribe "a/*" };
      { Proto.corr = 3; op = Proto.Publish { topic = "t"; payload = "p"; retain = true } };
    ]
  in
  List.iter
    (fun r ->
      match Proto.decode_request (Proto.encode_request r) with
      | Ok r' -> Alcotest.(check bool) "req" true (r = r')
      | Error e -> Alcotest.fail e)
    reqs;
  let frames =
    [
      Proto.Response { corr = 9; reply = Proto.Acked 3 };
      Proto.Response { corr = 9; reply = Proto.Rejected "no" };
      Proto.Event { topic = "t"; payload = String.make 100 'x' };
    ]
  in
  List.iter
    (fun f ->
      match Proto.decode_frame (Proto.encode_frame f) with
      | Ok f' -> Alcotest.(check bool) "frame" true (f = f')
      | Error e -> Alcotest.fail e)
    frames

(* A little remote client for the broker. *)
type client = {
  ep : Netsim.endpoint;
  mutable acks : (int * Proto.reply) list;
  mutable events : (string * string) list;
}

let make_client system name =
  let ep = Netsim.endpoint (System.net system) ~name in
  let c = { ep; acks = []; events = [] } in
  Netsim.set_receiver ep (fun ~src:_ frame ->
      match Proto.decode_frame frame with
      | Ok (Proto.Response { corr; reply }) -> c.acks <- (corr, reply) :: c.acks
      | Ok (Proto.Event { topic; payload }) ->
        c.events <- (topic, payload) :: c.events
      | Error _ -> ());
  c

let send c ~broker req = Netsim.send c.ep ~dst:broker (Proto.encode_request req)

let rig () =
  let system = System.build () in
  (match System.boot system with Ok () -> () | Error e -> Alcotest.fail e);
  let nic = System.nic system 0 in
  let broker_app = Pubsub.launch ~nic ~start_device:false () in
  let broker = Smart_nic.endpoint_address nic in
  (system, broker_app, broker)

let test_fanout_and_unsubscribe () =
  let system, app, broker = rig () in
  let alice = make_client system "alice" in
  let bob = make_client system "bob" in
  let carol = make_client system "carol" in
  send alice ~broker { Proto.corr = 1; op = Proto.Subscribe "news/*" };
  send bob ~broker { Proto.corr = 1; op = Proto.Subscribe "news/tech" };
  System.run_until_idle system;
  Alcotest.(check int) "two subscriptions" 2 (Pubsub.subscriptions app);
  (* carol publishes; both match. *)
  send carol ~broker
    { Proto.corr = 5; op = Proto.Publish { topic = "news/tech"; payload = "ocaml 6"; retain = false } };
  System.run_until_idle system;
  (match List.assoc_opt 5 carol.acks with
  | Some (Proto.Acked 2) -> ()
  | _ -> Alcotest.fail "publish not acked with 2 receivers");
  Alcotest.(check (list (pair string string))) "alice got it"
    [ ("news/tech", "ocaml 6") ] alice.events;
  Alcotest.(check (list (pair string string))) "bob got it"
    [ ("news/tech", "ocaml 6") ] bob.events;
  Alcotest.(check (list (pair string string))) "carol got nothing" [] carol.events;
  (* bob unsubscribes; next publish reaches only alice. *)
  send bob ~broker { Proto.corr = 2; op = Proto.Unsubscribe "news/tech" };
  System.run_until_idle system;
  send carol ~broker
    { Proto.corr = 6; op = Proto.Publish { topic = "news/tech"; payload = "again"; retain = false } };
  System.run_until_idle system;
  Alcotest.(check int) "bob still has 1 event" 1 (List.length bob.events);
  Alcotest.(check int) "alice has 2" 2 (List.length alice.events)

let test_no_duplicate_delivery_on_overlapping_patterns () =
  let system, _, broker = rig () in
  let alice = make_client system "alice" in
  send alice ~broker { Proto.corr = 1; op = Proto.Subscribe "a/*" };
  send alice ~broker { Proto.corr = 2; op = Proto.Subscribe "a/b" };
  System.run_until_idle system;
  let carol = make_client system "carol" in
  send carol ~broker
    { Proto.corr = 3; op = Proto.Publish { topic = "a/b"; payload = "x"; retain = false } };
  System.run_until_idle system;
  Alcotest.(check int) "delivered once despite two matches" 1
    (List.length alice.events)

let test_retained_replay () =
  let system, app, broker = rig () in
  let sensor = make_client system "sensor" in
  send sensor ~broker
    { Proto.corr = 1; op = Proto.Publish { topic = "sensors/1"; payload = "21C"; retain = true } };
  System.run_until_idle system;
  Alcotest.(check int) "retained" 1 (Pubsub.topics_retained app);
  (* A late subscriber gets the retained value immediately. *)
  let dashboard = make_client system "dashboard" in
  send dashboard ~broker { Proto.corr = 2; op = Proto.Subscribe "sensors/*" };
  System.run_until_idle system;
  Alcotest.(check (list (pair string string))) "replayed"
    [ ("sensors/1", "21C") ] dashboard.events;
  (* Retained value updates on the next retain-publish. *)
  send sensor ~broker
    { Proto.corr = 3; op = Proto.Publish { topic = "sensors/1"; payload = "22C"; retain = true } };
  System.run_until_idle system;
  let late = make_client system "late" in
  send late ~broker { Proto.corr = 4; op = Proto.Subscribe "sensors/1" };
  System.run_until_idle system;
  Alcotest.(check (list (pair string string))) "latest retained"
    [ ("sensors/1", "22C") ] late.events

let test_rejects_empty_pattern_and_garbage () =
  let system, _, broker = rig () in
  let c = make_client system "c" in
  send c ~broker { Proto.corr = 1; op = Proto.Subscribe "" };
  System.run_until_idle system;
  (match List.assoc_opt 1 c.acks with
  | Some (Proto.Rejected _) -> ()
  | _ -> Alcotest.fail "empty pattern accepted");
  (* Garbage frames are dropped without killing the broker. *)
  Netsim.send c.ep ~dst:broker "\xff\xfe\xfd";
  System.run_until_idle system;
  send c ~broker { Proto.corr = 2; op = Proto.Subscribe "ok" };
  System.run_until_idle system;
  match List.assoc_opt 2 c.acks with
  | Some (Proto.Acked 0) -> ()
  | _ -> Alcotest.fail "broker died on garbage"

let test_coexists_with_kvs () =
  (* Both applications on one machine: the KVS on nic0, the broker on nic1
     — the multi-app deployment the paper implies. *)
  let spec = { System.default_spec with System.nic_count = 2 } in
  match Lastcpu_core.Scenario_kvs.run ~spec () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let system = outcome.Lastcpu_core.Scenario_kvs.system in
    let broker_app = Pubsub.launch ~nic:(System.nic system 1) () in
    System.run_until_idle system;
    let broker = Smart_nic.endpoint_address (System.nic system 1) in
    let c = make_client system "dual" in
    send c ~broker { Proto.corr = 1; op = Proto.Subscribe "t" };
    System.run_until_idle system;
    send c ~broker
      { Proto.corr = 2; op = Proto.Publish { topic = "t"; payload = "hi"; retain = false } };
    System.run_until_idle system;
    Alcotest.(check int) "event delivered" 1 (List.length c.events);
    Alcotest.(check int) "broker stats" 1 (Pubsub.published broker_app);
    (* And the KVS still works. *)
    let ok = ref false in
    Lastcpu_kv.Kv_app.local_op outcome.Lastcpu_core.Scenario_kvs.app
      (Lastcpu_kv.Kv_proto.Put ("co", "exist"))
      (fun r -> ok := r = Lastcpu_kv.Kv_proto.Done);
    System.run_until_idle system;
    Alcotest.(check bool) "kvs unaffected" true !ok

let () =
  Alcotest.run "pubsub"
    [
      ( "protocol",
        [
          Alcotest.test_case "topic matching" `Quick test_topic_matching;
          Alcotest.test_case "roundtrips" `Quick test_proto_roundtrips;
        ] );
      ( "broker",
        [
          Alcotest.test_case "fanout + unsubscribe" `Quick test_fanout_and_unsubscribe;
          Alcotest.test_case "no duplicate delivery" `Quick
            test_no_duplicate_delivery_on_overlapping_patterns;
          Alcotest.test_case "retained replay" `Quick test_retained_replay;
          Alcotest.test_case "rejects garbage" `Quick test_rejects_empty_pattern_and_garbage;
          Alcotest.test_case "coexists with kvs" `Quick test_coexists_with_kvs;
        ] );
    ]
