(* Integration tests: system assembly, boot, the Figure-2 scenario, failure
   recovery, determinism. *)

module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Engine = Lastcpu_sim.Engine
module System = Lastcpu_core.System
module Scenario = Lastcpu_core.Scenario_kvs
module Sysbus = Lastcpu_bus.Sysbus
module Device = Lastcpu_device.Device
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Smart_nic = Lastcpu_devices.Smart_nic
module Memctl = Lastcpu_devices.Memctl
module File_client = Lastcpu_devices.File_client
module Fs = Lastcpu_fs.Fs

let test_build_and_boot () =
  let spec =
    { System.default_spec with nic_count = 2; ssd_count = 2; with_auth = true;
      with_console = true }
  in
  let system = System.build ~spec () in
  (match System.boot system with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let bus = System.bus system in
  (* memctl + auth + 2 ssd + 2 nic + console = 7 live devices *)
  Alcotest.(check int) "all live" 7 (List.length (Sysbus.live_devices bus))

let test_boot_times_out_when_device_hangs () =
  let system = System.build () in
  (* Fail the SSD before it can announce. *)
  Sysbus.fail_device (System.bus system) (Smart_ssd.id (System.ssd system 0));
  match System.boot system with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "boot succeeded with a dead device"

let test_topology_mentions_all_devices () =
  let spec = { System.default_spec with with_auth = true; with_console = true } in
  let system = System.build ~spec () in
  (match System.boot system with Ok () -> () | Error e -> Alcotest.fail e);
  let topo = System.topology system in
  let contains sub =
    let n = String.length sub and m = String.length topo in
    let rec scan i = i + n <= m && (String.sub topo i n = sub || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in topology") true (contains name))
    [ "memctl"; "ssd0"; "nic0"; "authdev"; "console" ]

let test_figure2_steps_in_order () =
  match Scenario.run () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let steps = Scenario.figure2_steps outcome in
    Alcotest.(check int) "seven steps" 7 (List.length steps);
    Alcotest.(check (list int)) "paper order" [ 1; 2; 3; 4; 5; 6; 7 ]
      (List.map (fun s -> s.Scenario.n) steps);
    let rec monotonic = function
      | a :: (b :: _ as rest) ->
        a.Scenario.at_ns <= b.Scenario.at_ns && monotonic rest
      | _ -> true
    in
    Alcotest.(check bool) "timestamps monotonic" true (monotonic steps)

let test_scenario_deterministic () =
  let run () =
    match Scenario.run () with
    | Error e -> Alcotest.fail e
    | Ok outcome ->
      ( outcome.Scenario.boot_ns,
        List.map (fun s -> (s.Scenario.n, s.Scenario.at_ns))
          (Scenario.figure2_steps outcome) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_figure2_with_authentication () =
  (* The authenticated variant of the bring-up: step 3 carries a real
     session token minted by the auth device and verified by the SSD. *)
  let spec =
    {
      System.default_spec with
      with_auth = true;
      users = [ ("kvs", "kvs-secret") ];
    }
  in
  match Scenario.run ~spec () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    Alcotest.(check int) "seven steps" 7
      (List.length (Scenario.figure2_steps outcome))

let test_no_cpu_after_boot () =
  (* The load-bearing claim: after bring-up, serving KVS traffic generates
     zero control-plane messages — devices coordinate via shared memory and
     doorbells only. *)
  match Scenario.run ~smoke_ops:0 () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let app = outcome.Scenario.app in
    let bus = System.bus system in
    let before = (Sysbus.counters bus).Sysbus.routed in
    let pending = ref 0 in
    for i = 1 to 10 do
      incr pending;
      Lastcpu_kv.Kv_app.local_op app
        (Lastcpu_kv.Kv_proto.Put (Printf.sprintf "k%d" i, "v"))
        (fun _ -> decr pending)
    done;
    System.run_until_idle system;
    Alcotest.(check int) "ops completed" 0 !pending;
    let after = (Sysbus.counters bus).Sysbus.routed in
    Alcotest.(check int) "zero bus messages on the data path" before after

let test_two_apps_two_pasids () =
  (* Two independent applications on the same NIC/SSD pair, different
     address spaces, different files. *)
  let system = System.build () in
  let fs = Smart_ssd.fs (System.ssd system 0) in
  (match Fs.mkdir fs ~user:"root" ~mode:0o777 "/a" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Fs.error_to_string e));
  (match Fs.mkdir fs ~user:"root" ~mode:0o777 "/b" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Fs.error_to_string e));
  (match System.boot system with Ok () -> () | Error e -> Alcotest.fail e);
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let connect va path k =
    File_client.connect dev ~memctl:mc ~pasid:(System.fresh_pasid system)
      ~shm_va:va ~user:"apps" ~path_hint:path k
  in
  let fc_a = ref None and fc_b = ref None in
  connect 0x4000_0000L "/a/data" (fun r -> fc_a := Result.to_option r);
  connect 0x4800_0000L "/b/data" (fun r -> fc_b := Result.to_option r);
  System.run_until_idle system;
  match (!fc_a, !fc_b) with
  | Some a, Some b ->
    let wrote = ref 0 in
    File_client.create a "/a/data" (fun _ -> ());
    File_client.create b "/b/data" (fun _ -> ());
    System.run_until_idle system;
    File_client.write a "/a/data" ~off:0 "alpha" (fun r ->
        if r = Ok () then incr wrote);
    File_client.write b "/b/data" ~off:0 "beta" (fun r ->
        if r = Ok () then incr wrote);
    System.run_until_idle system;
    Alcotest.(check int) "both wrote" 2 !wrote;
    let ra = ref None and rb = ref None in
    File_client.read a "/a/data" ~off:0 ~len:5 (fun r -> ra := Result.to_option r);
    File_client.read b "/b/data" ~off:0 ~len:4 (fun r -> rb := Result.to_option r);
    System.run_until_idle system;
    Alcotest.(check (option string)) "a data" (Some "alpha") !ra;
    Alcotest.(check (option string)) "b data" (Some "beta") !rb
  | _ -> Alcotest.fail "connections failed"

let test_failure_notification_reaches_consumers () =
  match Scenario.run () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let bus = System.bus system in
    let nic_dev = Smart_nic.device (System.nic system 0) in
    let notified = ref false in
    Device.set_app_handler nic_dev (fun msg ->
        match msg.Message.payload with
        | Message.Device_failed { device }
          when device = Smart_ssd.id (System.ssd system 0) ->
          notified := true
        | _ -> ());
    Sysbus.fail_device bus (Smart_ssd.id (System.ssd system 0));
    System.run_until_idle system;
    Alcotest.(check bool) "nic notified of ssd failure" true !notified

let test_ssd_revive_and_reconnect () =
  match Scenario.run () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let bus = System.bus system in
    let ssd = System.ssd system 0 in
    Sysbus.fail_device bus (Smart_ssd.id ssd);
    System.run_until_idle system;
    Sysbus.revive_device bus (Smart_ssd.id ssd);
    Device.reannounce (Smart_ssd.device ssd);
    System.run_until_idle system;
    Alcotest.(check bool) "live again" true (Sysbus.is_live bus (Smart_ssd.id ssd));
    (* Reconnect and read back the pre-failure data. *)
    let nic_dev = Smart_nic.device (System.nic system 0) in
    let fc = ref None in
    File_client.connect nic_dev
      ~memctl:(Memctl.id (System.memctl system))
      ~pasid:(System.fresh_pasid system)
      ~shm_va:0x9000_0000L ~user:"kvs" ~path_hint:"/kv/data.log"
      (fun r -> fc := Result.to_option r);
    System.run_until_idle system;
    match !fc with
    | None -> Alcotest.fail "reconnect failed"
    | Some fc ->
      let size = ref None in
      File_client.stat fc "/kv/data.log" (fun r ->
          match r with Ok (s, _) -> size := Some s | Error _ -> ());
      System.run_until_idle system;
      (match !size with
      | Some s -> Alcotest.(check bool) "log survived" true (s > 0)
      | None -> Alcotest.fail "stat failed")

let test_multi_memctl_and_lanes () =
  let spec =
    { System.default_spec with memctl_count = 3; bus_lanes = 4; nic_count = 2 }
  in
  let system = System.build ~spec () in
  (match System.boot system with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "three controllers" 3 (List.length (System.memctls system));
  (* Allocations against different controllers land in disjoint physical
     ranges and both work. *)
  let dev = Smart_nic.device (System.nic system 0) in
  let mcs = System.memctls system in
  let oks = ref 0 in
  List.iteri
    (fun i mc ->
      let pasid = System.fresh_pasid system in
      Device.alloc dev ~memctl:(Memctl.id mc) ~pasid
        ~va:(Int64.add 0x4000_0000L (Int64.of_int (i * 0x100000)))
        ~bytes:4096L ~perm:Types.perm_rw
        (fun r -> if Result.is_ok r then incr oks))
    mcs;
  System.run_until_idle system;
  Alcotest.(check int) "all controllers allocate" 3 !oks;
  List.iter
    (fun mc -> Alcotest.(check int) "one page each" 1 (Memctl.used_pages mc))
    mcs

let test_fresh_pasids_unique () =
  let system = System.build () in
  let a = System.fresh_pasid system in
  let b = System.fresh_pasid system in
  let c = System.fresh_pasid system in
  Alcotest.(check bool) "all distinct" true
    (List.length (List.sort_uniq compare [ a; b; c ]) = 3)

let () =
  Alcotest.run "core"
    [
      ( "system",
        [
          Alcotest.test_case "build and boot" `Quick test_build_and_boot;
          Alcotest.test_case "boot timeout on dead device" `Quick
            test_boot_times_out_when_device_hangs;
          Alcotest.test_case "topology" `Quick test_topology_mentions_all_devices;
          Alcotest.test_case "multi memctl + lanes" `Quick test_multi_memctl_and_lanes;
          Alcotest.test_case "fresh pasids" `Quick test_fresh_pasids_unique;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "seven steps in order" `Quick test_figure2_steps_in_order;
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "with authentication" `Quick
            test_figure2_with_authentication;
          Alcotest.test_case "no CPU on the data path" `Quick test_no_cpu_after_boot;
        ] );
      ( "multi-app",
        [ Alcotest.test_case "two apps two pasids" `Quick test_two_apps_two_pasids ] );
      ( "failure",
        [
          Alcotest.test_case "notification" `Quick
            test_failure_notification_reaches_consumers;
          Alcotest.test_case "revive and reconnect" `Quick test_ssd_revive_and_reconnect;
        ] );
    ]
