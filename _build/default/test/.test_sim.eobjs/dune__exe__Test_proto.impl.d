test/test_proto.ml: Alcotest Bytes Char Format Int64 Lastcpu_proto List Option Printf QCheck QCheck_alcotest String
