test/test_kv.ml: Alcotest Gen Hashtbl Lastcpu_core Lastcpu_device Lastcpu_devices Lastcpu_fs Lastcpu_kv Lastcpu_net Lastcpu_proto List Printf QCheck QCheck_alcotest String
