test/test_sim.ml: Alcotest Array Fun Int64 Lastcpu_sim List QCheck QCheck_alcotest String
