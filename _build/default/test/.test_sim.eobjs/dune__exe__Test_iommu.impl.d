test/test_iommu.ml: Alcotest Gen Int64 Lastcpu_iommu Lastcpu_mem Lastcpu_proto List QCheck QCheck_alcotest
