test/test_pubsub.mli:
