test/test_accel.ml: Alcotest Char Int64 Lastcpu_core Lastcpu_device Lastcpu_devices Lastcpu_proto Lastcpu_sim Lastcpu_virtio List Option Printf Result
