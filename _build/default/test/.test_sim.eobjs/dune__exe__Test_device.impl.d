test/test_device.ml: Alcotest Int64 Lastcpu_bus Lastcpu_device Lastcpu_devices Lastcpu_iommu Lastcpu_mem Lastcpu_proto Lastcpu_sim Lastcpu_virtio List Printf Result
