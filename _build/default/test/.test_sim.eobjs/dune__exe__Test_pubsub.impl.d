test/test_pubsub.ml: Alcotest Lastcpu_apps Lastcpu_core Lastcpu_devices Lastcpu_kv Lastcpu_net List Printf String
