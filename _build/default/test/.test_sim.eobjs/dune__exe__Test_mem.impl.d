test/test_mem.ml: Alcotest Char Fun Gen Int64 Lastcpu_mem List QCheck QCheck_alcotest String
