test/test_baseline.ml: Alcotest Int64 Lastcpu_baseline Lastcpu_fs Lastcpu_kv Lastcpu_sim List Printf
