test/test_net.ml: Alcotest Int64 Lastcpu_net Lastcpu_sim List Printf String
