test/test_block.ml: Alcotest Char Lastcpu_core Lastcpu_devices Lastcpu_fs List Result String
