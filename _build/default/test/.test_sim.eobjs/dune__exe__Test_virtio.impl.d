test/test_virtio.ml: Alcotest Char Int64 Lastcpu_iommu Lastcpu_mem Lastcpu_proto Lastcpu_virtio List Printf QCheck QCheck_alcotest Queue Result String
