test/test_flash.ml: Alcotest Gen Hashtbl Lastcpu_flash List Printf QCheck QCheck_alcotest String
