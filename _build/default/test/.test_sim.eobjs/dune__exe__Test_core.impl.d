test/test_core.ml: Alcotest Int64 Lastcpu_bus Lastcpu_core Lastcpu_device Lastcpu_devices Lastcpu_fs Lastcpu_kv Lastcpu_proto Lastcpu_sim List Printf Result String
