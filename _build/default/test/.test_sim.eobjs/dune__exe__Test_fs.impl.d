test/test_fs.ml: Alcotest Bytes Format Gen Lastcpu_flash Lastcpu_fs List Printf QCheck QCheck_alcotest String
