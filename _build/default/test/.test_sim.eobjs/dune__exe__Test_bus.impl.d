test/test_bus.ml: Alcotest Int64 Lastcpu_bus Lastcpu_iommu Lastcpu_proto Lastcpu_sim List Printf QCheck QCheck_alcotest String
