test/test_experiments.ml: Alcotest Lastcpu_core List Option Printf String
