test/test_flash.mli:
