(* Tests for the simulated network. *)

module Engine = Lastcpu_sim.Engine
module Costs = Lastcpu_sim.Costs
module Netsim = Lastcpu_net.Netsim

let test_delivery () =
  let e = Engine.create () in
  let net = Netsim.create e in
  let a = Netsim.endpoint net ~name:"a" in
  let b = Netsim.endpoint net ~name:"b" in
  let got = ref [] in
  Netsim.set_receiver b (fun ~src frame -> got := (src, frame) :: !got);
  Netsim.send a ~dst:(Netsim.address b) "hello";
  Engine.run e;
  Alcotest.(check (list (pair int string))) "delivered"
    [ (Netsim.address a, "hello") ]
    !got;
  Alcotest.(check int) "counter" 1 (Netsim.frames_delivered net)

let test_latency_model () =
  let e = Engine.create () in
  let net = Netsim.create e in
  let a = Netsim.endpoint net ~name:"a" in
  let b = Netsim.endpoint net ~name:"b" in
  let arrival = ref 0L in
  Netsim.set_receiver b (fun ~src:_ _ -> arrival := Engine.now e);
  Netsim.send a ~dst:(Netsim.address b) (String.make 100 'x');
  Engine.run e;
  let costs = Costs.default in
  let expect =
    Int64.add costs.Costs.net_link_ns (Int64.mul costs.Costs.net_byte_ns 100L)
  in
  Alcotest.(check int64) "latency = link + bytes" expect !arrival

let test_in_order_per_pair () =
  let e = Engine.create () in
  let net = Netsim.create e in
  let a = Netsim.endpoint net ~name:"a" in
  let b = Netsim.endpoint net ~name:"b" in
  let got = ref [] in
  Netsim.set_receiver b (fun ~src:_ frame -> got := frame :: !got);
  (* Equal-size frames sent back to back arrive in order. *)
  List.iter (fun i -> Netsim.send a ~dst:(Netsim.address b) (string_of_int i)) [ 1; 2; 3 ];
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "1"; "2"; "3" ] (List.rev !got)

let test_drop_no_receiver () =
  let e = Engine.create () in
  let net = Netsim.create e in
  let a = Netsim.endpoint net ~name:"a" in
  let _b = Netsim.endpoint net ~name:"b" in
  Netsim.send a ~dst:1 "void";
  Netsim.send a ~dst:99 "nowhere";
  Engine.run e;
  Alcotest.(check int) "both dropped" 2 (Netsim.frames_dropped net)

let test_broadcast () =
  let e = Engine.create () in
  let net = Netsim.create e in
  let a = Netsim.endpoint net ~name:"a" in
  let received = ref 0 in
  for i = 1 to 4 do
    let ep = Netsim.endpoint net ~name:(Printf.sprintf "peer%d" i) in
    Netsim.set_receiver ep (fun ~src:_ _ -> incr received)
  done;
  Netsim.broadcast a "to all";
  Engine.run e;
  Alcotest.(check int) "all peers got it" 4 !received

let test_egress_contention () =
  (* Two large frames sent back to back from one endpoint serialise through
     its egress port: the second arrives one full serialisation later. *)
  let e = Engine.create () in
  let net = Netsim.create e in
  let a = Netsim.endpoint net ~name:"a" in
  let b = Netsim.endpoint net ~name:"b" in
  let arrivals = ref [] in
  Netsim.set_receiver b (fun ~src:_ _ -> arrivals := Engine.now e :: !arrivals);
  let frame = String.make 1000 'x' in
  Netsim.send a ~dst:(Netsim.address b) frame;
  Netsim.send a ~dst:(Netsim.address b) frame;
  Engine.run e;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
    let costs = Costs.default in
    let ser = Int64.mul costs.Costs.net_byte_ns 1000L in
    Alcotest.(check int64) "first = ser + link"
      (Int64.add ser costs.Costs.net_link_ns)
      t1;
    Alcotest.(check int64) "second queues behind first" (Int64.add t1 ser) t2
  | l -> Alcotest.fail (Printf.sprintf "expected 2 arrivals, got %d" (List.length l))

let test_duplicate_name_rejected () =
  let e = Engine.create () in
  let net = Netsim.create e in
  let _ = Netsim.endpoint net ~name:"dup" in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Netsim.endpoint: duplicate name \"dup\"") (fun () ->
      ignore (Netsim.endpoint net ~name:"dup"))

let () =
  Alcotest.run "net"
    [
      ( "netsim",
        [
          Alcotest.test_case "delivery" `Quick test_delivery;
          Alcotest.test_case "latency model" `Quick test_latency_model;
          Alcotest.test_case "in order" `Quick test_in_order_per_pair;
          Alcotest.test_case "drops" `Quick test_drop_no_receiver;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "egress contention" `Quick test_egress_contention;
          Alcotest.test_case "duplicate names" `Quick test_duplicate_name_rejected;
        ] );
    ]
