(* Tests for page tables, TLB and the IOMMU unit. *)

module Types = Lastcpu_proto.Types
module Layout = Lastcpu_mem.Layout
module Pagetable = Lastcpu_iommu.Pagetable
module Tlb = Lastcpu_iommu.Tlb
module Iommu = Lastcpu_iommu.Iommu

let page = Layout.page_size

(* --- Pagetable ----------------------------------------------------------- *)

let test_pt_map_walk () =
  let pt = Pagetable.create () in
  (match Pagetable.map pt ~va:0x4000_0000L ~pa:0x1000L ~perm:Types.perm_rw with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Pagetable.walk pt ~va:0x4000_0000L ~access:Types.perm_r with
  | Pagetable.Translated { pa; levels; _ } ->
    Alcotest.(check int64) "pa" 0x1000L pa;
    Alcotest.(check int) "levels" 4 levels
  | _ -> Alcotest.fail "expected translation");
  (* Offset preserved. *)
  match Pagetable.walk pt ~va:0x4000_0123L ~access:Types.perm_r with
  | Pagetable.Translated { pa; _ } -> Alcotest.(check int64) "offset" 0x1123L pa
  | _ -> Alcotest.fail "expected translation"

let test_pt_no_mapping () =
  let pt = Pagetable.create () in
  match Pagetable.walk pt ~va:0x1234_5000L ~access:Types.perm_r with
  | Pagetable.No_mapping _ -> ()
  | _ -> Alcotest.fail "expected no mapping"

let test_pt_permission_denied () =
  let pt = Pagetable.create () in
  (match Pagetable.map pt ~va:0L ~pa:0x1000L ~perm:Types.perm_r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Pagetable.walk pt ~va:0L ~access:{ Types.read = false; write = true; exec = false } with
  | Pagetable.Permission_denied _ -> ()
  | _ -> Alcotest.fail "expected permission denial"

let test_pt_remap_rejected () =
  let pt = Pagetable.create () in
  (match Pagetable.map pt ~va:0L ~pa:0x1000L ~perm:Types.perm_r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Pagetable.map pt ~va:0L ~pa:0x2000L ~perm:Types.perm_r with
  | Error "already mapped" -> ()
  | Ok () -> Alcotest.fail "remap accepted"
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

let test_pt_unaligned_rejected () =
  let pt = Pagetable.create () in
  (match Pagetable.map pt ~va:123L ~pa:0x1000L ~perm:Types.perm_r with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unaligned va accepted");
  match Pagetable.map pt ~va:0L ~pa:123L ~perm:Types.perm_r with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unaligned pa accepted"

let test_pt_range_all_or_nothing () =
  let pt = Pagetable.create () in
  (* Pre-map the middle page; a 4-page range over it must fail atomically. *)
  (match Pagetable.map pt ~va:(Int64.mul 2L page) ~pa:0x8000L ~perm:Types.perm_r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Pagetable.map_range pt ~va:0L ~pa:0x10_0000L
       ~bytes:(Int64.mul 4L page) ~perm:Types.perm_rw
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overlapping range accepted");
  Alcotest.(check int) "only the pre-mapped page" 1 (Pagetable.mapped_pages pt)

let test_pt_unmap_range () =
  let pt = Pagetable.create () in
  (match
     Pagetable.map_range pt ~va:0x10_0000L ~pa:0x20_0000L
       ~bytes:(Int64.mul 8L page) ~perm:Types.perm_rw
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "8 mapped" 8 (Pagetable.mapped_pages pt);
  let removed = Pagetable.unmap_range pt ~va:0x10_0000L ~bytes:(Int64.mul 8L page) in
  Alcotest.(check int) "8 removed" 8 removed;
  Alcotest.(check int) "none left" 0 (Pagetable.mapped_pages pt)

let test_pt_iter () =
  let pt = Pagetable.create () in
  let vas = [ 0L; Int64.mul 5L page; 0x7F_FFFF_F000L ] in
  List.iteri
    (fun i va ->
      match Pagetable.map pt ~va ~pa:(Int64.mul (Int64.of_int (i + 1)) page) ~perm:Types.perm_r with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    vas;
  let seen = ref [] in
  Pagetable.iter pt (fun ~va ~pa:_ ~perm:_ -> seen := va :: !seen);
  Alcotest.(check (list int64)) "all mappings visited" (List.sort compare vas)
    (List.sort compare !seen)

let pt_prop_roundtrip =
  QCheck.Test.make ~name:"pagetable map->walk roundtrip" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (int_bound 10_000))
    (fun pages ->
      let pt = Pagetable.create () in
      let pages = List.sort_uniq compare pages in
      List.iter
        (fun p ->
          let va = Int64.mul (Int64.of_int p) page in
          let pa = Int64.mul (Int64.of_int (p + 100_000)) page in
          match Pagetable.map pt ~va ~pa ~perm:Types.perm_rw with
          | Ok () -> ()
          | Error e -> failwith e)
        pages;
      List.for_all
        (fun p ->
          let va = Int64.mul (Int64.of_int p) page in
          match Pagetable.walk pt ~va ~access:Types.perm_r with
          | Pagetable.Translated { pa; _ } ->
            Int64.equal pa (Int64.mul (Int64.of_int (p + 100_000)) page)
          | _ -> false)
        pages)

(* --- TLB -------------------------------------------------------------------- *)

let entry ppn = { Tlb.ppn; perm = Types.perm_rw }

let test_tlb_hit_miss () =
  let tlb = Tlb.create ~sets:4 ~ways:2 () in
  Alcotest.(check (option reject)) "cold miss" None (Tlb.lookup tlb ~pasid:1 ~vpn:5L)
  |> ignore;
  Tlb.insert tlb ~pasid:1 ~vpn:5L (entry 50L);
  (match Tlb.lookup tlb ~pasid:1 ~vpn:5L with
  | Some e -> Alcotest.(check int64) "hit ppn" 50L e.Tlb.ppn
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check int) "one hit" 1 (Tlb.hits tlb);
  Alcotest.(check int) "one miss" 1 (Tlb.misses tlb)

let test_tlb_pasid_separation () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~pasid:1 ~vpn:5L (entry 50L);
  Alcotest.(check bool) "other pasid misses" true
    (Tlb.lookup tlb ~pasid:2 ~vpn:5L = None)

let test_tlb_lru_eviction () =
  let tlb = Tlb.create ~sets:1 ~ways:2 () in
  Tlb.insert tlb ~pasid:1 ~vpn:1L (entry 10L);
  Tlb.insert tlb ~pasid:1 ~vpn:2L (entry 20L);
  (* Touch vpn 1 so vpn 2 is LRU. *)
  ignore (Tlb.lookup tlb ~pasid:1 ~vpn:1L);
  Tlb.insert tlb ~pasid:1 ~vpn:3L (entry 30L);
  Alcotest.(check bool) "vpn1 survives" true (Tlb.lookup tlb ~pasid:1 ~vpn:1L <> None);
  Alcotest.(check bool) "vpn2 evicted" true (Tlb.lookup tlb ~pasid:1 ~vpn:2L = None);
  Alcotest.(check bool) "vpn3 present" true (Tlb.lookup tlb ~pasid:1 ~vpn:3L <> None)

let test_tlb_invalidate () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~pasid:1 ~vpn:1L (entry 10L);
  Tlb.insert tlb ~pasid:1 ~vpn:2L (entry 20L);
  Tlb.insert tlb ~pasid:2 ~vpn:1L (entry 30L);
  Tlb.invalidate_page tlb ~pasid:1 ~vpn:1L;
  Alcotest.(check bool) "page gone" true (Tlb.lookup tlb ~pasid:1 ~vpn:1L = None);
  Alcotest.(check bool) "sibling stays" true (Tlb.lookup tlb ~pasid:1 ~vpn:2L <> None);
  Tlb.invalidate_pasid tlb ~pasid:1;
  Alcotest.(check bool) "pasid flushed" true (Tlb.lookup tlb ~pasid:1 ~vpn:2L = None);
  Alcotest.(check bool) "other pasid stays" true (Tlb.lookup tlb ~pasid:2 ~vpn:1L <> None);
  Tlb.invalidate_all tlb;
  Alcotest.(check bool) "all flushed" true (Tlb.lookup tlb ~pasid:2 ~vpn:1L = None)

(* --- Iommu ---------------------------------------------------------------------- *)

let test_iommu_translate_and_fault () =
  let iommu = Iommu.create () in
  let faults = ref [] in
  Iommu.attach_fault_handler iommu (fun f -> faults := f :: !faults);
  (match
     Iommu.map iommu ~pasid:1 ~va:0x4000_0000L ~pa:0x1000L ~bytes:page
       ~perm:Types.perm_rw
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Iommu.translate iommu ~pasid:1 ~va:0x4000_0010L ~access:Iommu.Read with
  | Iommu.Ok_pa pa -> Alcotest.(check int64) "pa" 0x1010L pa
  | Iommu.Fault _ -> Alcotest.fail "unexpected fault");
  (match Iommu.translate iommu ~pasid:1 ~va:0x5000_0000L ~access:Iommu.Read with
  | Iommu.Fault { reason = Iommu.Not_mapped; _ } -> ()
  | _ -> Alcotest.fail "expected not-mapped fault");
  (match Iommu.translate iommu ~pasid:2 ~va:0x4000_0000L ~access:Iommu.Read with
  | Iommu.Fault { reason = Iommu.Not_mapped; _ } -> ()
  | _ -> Alcotest.fail "expected fault in foreign pasid");
  Alcotest.(check int) "faults delivered" 2 (List.length !faults);
  Alcotest.(check int) "fault counter" 2 (Iommu.faults iommu)

let test_iommu_tlb_caching () =
  let iommu = Iommu.create () in
  (match
     Iommu.map iommu ~pasid:1 ~va:0L ~pa:0x1000L ~bytes:page ~perm:Types.perm_rw
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Iommu.translate iommu ~pasid:1 ~va:0L ~access:Iommu.Read);
  ignore (Iommu.translate iommu ~pasid:1 ~va:8L ~access:Iommu.Read);
  ignore (Iommu.translate iommu ~pasid:1 ~va:16L ~access:Iommu.Read);
  Alcotest.(check int) "one walk" 1 (Iommu.walks iommu);
  Alcotest.(check int) "two hits" 2 (Iommu.tlb_hits iommu)

let test_iommu_unmap_invalidates_tlb () =
  let iommu = Iommu.create () in
  (match
     Iommu.map iommu ~pasid:1 ~va:0L ~pa:0x1000L ~bytes:page ~perm:Types.perm_rw
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Iommu.translate iommu ~pasid:1 ~va:0L ~access:Iommu.Read);
  let removed = Iommu.unmap iommu ~pasid:1 ~va:0L ~bytes:page in
  Alcotest.(check int) "one removed" 1 removed;
  match Iommu.translate iommu ~pasid:1 ~va:0L ~access:Iommu.Read with
  | Iommu.Fault { reason = Iommu.Not_mapped; _ } -> ()
  | _ -> Alcotest.fail "stale TLB entry survived unmap"

let test_iommu_write_protection () =
  let iommu = Iommu.create () in
  (match
     Iommu.map iommu ~pasid:1 ~va:0L ~pa:0x1000L ~bytes:page ~perm:Types.perm_r
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Iommu.translate iommu ~pasid:1 ~va:0L ~access:Iommu.Read with
  | Iommu.Ok_pa _ -> ()
  | Iommu.Fault _ -> Alcotest.fail "read should succeed");
  match Iommu.translate iommu ~pasid:1 ~va:0L ~access:Iommu.Write with
  | Iommu.Fault { reason = Iommu.Protection; _ } -> ()
  | _ -> Alcotest.fail "expected protection fault"

let test_iommu_clear_pasid () =
  let iommu = Iommu.create () in
  (match
     Iommu.map iommu ~pasid:3 ~va:0L ~pa:0x1000L ~bytes:(Int64.mul 4L page)
       ~perm:Types.perm_rw
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "4 pages" 4 (Iommu.mapped_pages iommu ~pasid:3);
  Iommu.clear_pasid iommu ~pasid:3;
  Alcotest.(check int) "cleared" 0 (Iommu.mapped_pages iommu ~pasid:3);
  match Iommu.translate iommu ~pasid:3 ~va:0L ~access:Iommu.Read with
  | Iommu.Fault _ -> ()
  | _ -> Alcotest.fail "mapping survived clear_pasid"

let test_iommu_no_tlb_mode () =
  let iommu = Iommu.create ~no_tlb:true () in
  (match
     Iommu.map iommu ~pasid:1 ~va:0L ~pa:0x1000L ~bytes:page ~perm:Types.perm_rw
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Iommu.translate iommu ~pasid:1 ~va:0L ~access:Iommu.Read);
  ignore (Iommu.translate iommu ~pasid:1 ~va:0L ~access:Iommu.Read);
  Alcotest.(check int) "every access walks" 2 (Iommu.walks iommu);
  Alcotest.(check int) "no tlb hits" 0 (Iommu.tlb_hits iommu)

let () =
  Alcotest.run "iommu"
    [
      ( "pagetable",
        [
          Alcotest.test_case "map and walk" `Quick test_pt_map_walk;
          Alcotest.test_case "no mapping" `Quick test_pt_no_mapping;
          Alcotest.test_case "permission denied" `Quick test_pt_permission_denied;
          Alcotest.test_case "remap rejected" `Quick test_pt_remap_rejected;
          Alcotest.test_case "unaligned rejected" `Quick test_pt_unaligned_rejected;
          Alcotest.test_case "range all-or-nothing" `Quick test_pt_range_all_or_nothing;
          Alcotest.test_case "unmap range" `Quick test_pt_unmap_range;
          Alcotest.test_case "iter" `Quick test_pt_iter;
          QCheck_alcotest.to_alcotest pt_prop_roundtrip;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "pasid separation" `Quick test_tlb_pasid_separation;
          Alcotest.test_case "lru eviction" `Quick test_tlb_lru_eviction;
          Alcotest.test_case "invalidate" `Quick test_tlb_invalidate;
        ] );
      ( "iommu",
        [
          Alcotest.test_case "translate and fault" `Quick test_iommu_translate_and_fault;
          Alcotest.test_case "tlb caching" `Quick test_iommu_tlb_caching;
          Alcotest.test_case "unmap invalidates tlb" `Quick test_iommu_unmap_invalidates_tlb;
          Alcotest.test_case "write protection" `Quick test_iommu_write_protection;
          Alcotest.test_case "clear pasid" `Quick test_iommu_clear_pasid;
          Alcotest.test_case "no-tlb mode" `Quick test_iommu_no_tlb_mode;
        ] );
    ]
