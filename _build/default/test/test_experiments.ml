(* Shape-regression tests over the experiment harness: cheap experiments
   run end to end and their *shapes* (who wins, monotonicity, crossovers)
   are asserted, so a refactor that silently breaks a result fails here
   rather than in EXPERIMENTS.md. *)

module E = Lastcpu_core.Experiments

let cell table r c =
  match List.nth_opt table.E.rows r with
  | Some row -> (
    match List.nth_opt row c with
    | Some cell -> cell
    | None -> Alcotest.fail (Printf.sprintf "%s: no column %d" table.E.id c))
  | None -> Alcotest.fail (Printf.sprintf "%s: no row %d" table.E.id r)

let float_cell table r c =
  let s = cell table r c in
  (* Strip trailing units like "x" or "%". *)
  let s =
    String.concat ""
      (List.filter (fun c -> c <> "") (String.split_on_char ',' s))
  in
  let rec prefix i =
    if
      i < String.length s
      && (s.[i] = '.' || s.[i] = '-' || (s.[i] >= '0' && s.[i] <= '9'))
    then prefix (i + 1)
    else i
  in
  let n = prefix 0 in
  if n = 0 then Alcotest.fail (Printf.sprintf "%s: cell %S not numeric" table.E.id s)
  else float_of_string (String.sub s 0 n)

let test_f2_complete () =
  let t = E.f2 () in
  Alcotest.(check int) "seven steps" 7 (List.length t.E.rows);
  (* Timestamps strictly increase down the table. *)
  let times = List.init 7 (fun i -> float_cell t i 1) in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotonic" true (increasing times)

let test_t5_tlb_monotone () =
  let t = E.t5 () in
  Alcotest.(check int) "four configs" 4 (List.length t.E.rows);
  (* Hit rate rises, cost falls, as the TLB grows. *)
  let hit i = float_cell t i 1 in
  let cost i = float_cell t i 3 in
  for i = 0 to 2 do
    Alcotest.(check bool) "hit rate nondecreasing" true (hit (i + 1) >= hit i);
    Alcotest.(check bool) "cost nonincreasing" true (cost (i + 1) <= cost i)
  done;
  Alcotest.(check bool) "no-TLB is worst" true (cost 0 > 10. *. cost 3)

let test_t9_scaling_shape () =
  let t = E.t9 () in
  (* Boot grows mildly; broadcast deliveries grow quadratically: last row
     has 16 NICs -> 512 deliveries. *)
  let boot i = float_cell t i 1 in
  Alcotest.(check bool) "boot grows" true (boot 4 > boot 0);
  Alcotest.(check string) "O(N^2) broadcasts" "512" (cell t 4 4);
  List.iteri
    (fun i row ->
      ignore i;
      let answered = List.nth row 3 in
      match String.split_on_char '/' answered with
      | [ a; b ] -> Alcotest.(check string) "all answered" b a
      | _ -> Alcotest.fail "bad answered cell")
    t.E.rows

let test_t10_wa_vs_op () =
  let t = E.t10 () in
  let wa i = float_cell t i 2 in
  (* More over-provisioning -> less write amplification. *)
  Alcotest.(check bool) "WA falls with OP" true (wa 3 < wa 0);
  List.iteri
    (fun i _ -> Alcotest.(check bool) "WA >= 1" true (wa i >= 1.0))
    t.E.rows

let test_t11_crossover () =
  let t = E.t11 () in
  let speedup i = float_cell t i 3 in
  let n = List.length t.E.rows in
  (* Offload loses at the smallest size, wins at the largest, and the
     advantage grows monotonically with bytes. *)
  Alcotest.(check bool) "loses small" true (speedup 0 < 1.0);
  Alcotest.(check bool) "wins large" true (speedup (n - 1) > 10.0);
  for i = 0 to n - 2 do
    Alcotest.(check bool) "monotone" true (speedup (i + 1) >= speedup i)
  done

let test_t1_same_order_of_magnitude () =
  let t = E.t1 () in
  List.iter
    (fun row ->
      match row with
      | [ op; d; c; _ ] ->
        let d = float_of_string d and c = float_of_string c in
        Alcotest.(check bool)
          (Printf.sprintf "%s within 10x" op)
          true
          (d /. c < 10. && c /. d < 10.)
      | _ -> Alcotest.fail "bad t1 row")
    t.E.rows

let test_registry_complete () =
  List.iter
    (fun id ->
      match E.by_id id with
      | Some _ -> ()
      | None -> Alcotest.fail ("missing experiment " ^ id))
    [ "f1"; "f2"; "t1"; "t1-notokens"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7";
      "t8"; "t9"; "t10"; "t11"; "t12" ];
  Alcotest.(check (option Alcotest.reject)) "unknown id" None
    (Option.map (fun _ -> ()) (E.by_id "t99"))

let () =
  Alcotest.run "experiments"
    [
      ( "shapes",
        [
          Alcotest.test_case "f2 complete" `Quick test_f2_complete;
          Alcotest.test_case "t1 order of magnitude" `Quick
            test_t1_same_order_of_magnitude;
          Alcotest.test_case "t5 tlb monotone" `Quick test_t5_tlb_monotone;
          Alcotest.test_case "t9 scaling" `Quick test_t9_scaling_shape;
          Alcotest.test_case "t10 wa vs op" `Quick test_t10_wa_vs_op;
          Alcotest.test_case "t11 crossover" `Quick test_t11_crossover;
        ] );
      ("registry", [ Alcotest.test_case "complete" `Quick test_registry_complete ]);
    ]
