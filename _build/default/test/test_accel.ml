(* Tests for the accelerator device: job protocol, kernels, grant-gated
   data access, fault containment, and offload-vs-local equivalence. *)

module Types = Lastcpu_proto.Types
module System = Lastcpu_core.System
module Device = Lastcpu_device.Device
module Smart_nic = Lastcpu_devices.Smart_nic
module Memctl = Lastcpu_devices.Memctl
module Accel_dev = Lastcpu_devices.Accel_dev
module Accel_proto = Lastcpu_devices.Accel_proto
module Dma = Lastcpu_virtio.Dma
module Engine = Lastcpu_sim.Engine

(* --- protocol ------------------------------------------------------------ *)

let test_job_roundtrips () =
  let jobs =
    [
      Accel_proto.Checksum { va = 0x1000L; len = 64 };
      Accel_proto.Word_count { va = 0x2000L; len = 1024 };
      Accel_proto.Upper { src = 0x1000L; dst = 0x2000L; len = 100 };
      Accel_proto.Histogram { va = 0x1000L; len = 4096; dst = 0x8000L };
    ]
  in
  List.iter
    (fun j ->
      match Accel_proto.decode_job (Accel_proto.encode_job j) with
      | Ok j' -> Alcotest.(check bool) "job roundtrip" true (j = j')
      | Error e -> Alcotest.fail e)
    jobs;
  let outcomes =
    [ Accel_proto.Value 42L; Accel_proto.Written 2048; Accel_proto.Fault "x" ]
  in
  List.iter
    (fun o ->
      match Accel_proto.decode_outcome (Accel_proto.encode_outcome o) with
      | Ok o' -> Alcotest.(check bool) "outcome roundtrip" true (o = o')
      | Error e -> Alcotest.fail e)
    outcomes

let test_job_bytes () =
  Alcotest.(check int) "checksum" 100
    (Accel_proto.job_bytes (Accel_proto.Checksum { va = 0L; len = 100 }));
  Alcotest.(check int) "upper reads+writes" 200
    (Accel_proto.job_bytes (Accel_proto.Upper { src = 0L; dst = 0L; len = 100 }))

(* --- rig ------------------------------------------------------------------- *)

let rig () =
  let spec = { System.default_spec with System.accel_count = 1 } in
  let system = System.build ~spec () in
  (match System.boot system with Ok () -> () | Error e -> Alcotest.fail e);
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let accel = System.accel system 0 in
  let pasid = System.fresh_pasid system in
  let va = 0x4000_0000L in
  let token = ref None in
  Device.alloc dev ~memctl:mc ~pasid ~va ~bytes:65536L ~perm:Types.perm_rw
    (fun r -> token := Result.to_option r);
  System.run_until_idle system;
  let token = match !token with Some t -> t | None -> Alcotest.fail "alloc" in
  let granted = ref false in
  Device.grant dev ~to_device:(Accel_dev.id accel) ~pasid ~va ~bytes:65536L
    ~perm:Types.perm_rw ~auth:token (fun r -> granted := Result.is_ok r);
  System.run_until_idle system;
  Alcotest.(check bool) "granted" true !granted;
  (system, dev, accel, pasid, va)

let submit_sync system dev accel pasid job =
  let outcome = ref None in
  Accel_dev.submit dev ~accel:(Accel_dev.id accel) ~pasid job (fun o ->
      outcome := Some o);
  System.run_until_idle system;
  match !outcome with Some o -> o | None -> Alcotest.fail "job never completed"

(* --- behaviour -------------------------------------------------------------- *)

let test_discoverable () =
  let system, dev, accel, _, _ = rig () in
  let found = ref None in
  Device.discover dev ~kind:Types.Compute_service ~query:"" (fun r ->
      found := Option.map fst r);
  System.run_until_idle system;
  Alcotest.(check (option int)) "found" (Some (Accel_dev.id accel)) !found

let test_checksum_matches_local () =
  let system, dev, accel, pasid, va = rig () in
  let dma = Device.dma dev ~pasid in
  Dma.write_bytes dma va "the quick brown fox jumps over the lazy dog";
  let remote = submit_sync system dev accel pasid (Accel_proto.Checksum { va; len = 44 }) in
  let local = ref None in
  Accel_dev.run_locally dev ~pasid (Accel_proto.Checksum { va; len = 44 })
    (fun o -> local := Some o);
  System.run_until_idle system;
  match (remote, !local) with
  | Accel_proto.Value a, Some (Accel_proto.Value b) ->
    Alcotest.(check int64) "same digest" a b
  | _ -> Alcotest.fail "checksum failed"

let test_word_count () =
  let system, dev, accel, pasid, va = rig () in
  let dma = Device.dma dev ~pasid in
  Dma.write_bytes dma va "  one two\tthree\nfour five  ";
  match submit_sync system dev accel pasid (Accel_proto.Word_count { va; len = 27 }) with
  | Accel_proto.Value n -> Alcotest.(check int64) "five words" 5L n
  | _ -> Alcotest.fail "word count failed"

let test_upper_transform () =
  let system, dev, accel, pasid, va = rig () in
  let dma = Device.dma dev ~pasid in
  Dma.write_bytes dma va "Hello, World!";
  let dst = Int64.add va 1024L in
  (match
     submit_sync system dev accel pasid
       (Accel_proto.Upper { src = va; dst; len = 13 })
   with
  | Accel_proto.Written 13 -> ()
  | _ -> Alcotest.fail "upper failed");
  Alcotest.(check string) "uppercased" "HELLO, WORLD!" (Dma.read_bytes dma dst 13)

let test_histogram () =
  let system, dev, accel, pasid, va = rig () in
  let dma = Device.dma dev ~pasid in
  Dma.write_bytes dma va "aabbbc";
  let dst = Int64.add va 2048L in
  (match
     submit_sync system dev accel pasid
       (Accel_proto.Histogram { va; len = 6; dst })
   with
  | Accel_proto.Written _ -> ()
  | _ -> Alcotest.fail "histogram failed");
  let count c =
    Dma.read_u64 dma (Int64.add dst (Int64.of_int (8 * Char.code c)))
  in
  Alcotest.(check int64) "a x2" 2L (count 'a');
  Alcotest.(check int64) "b x3" 3L (count 'b');
  Alcotest.(check int64) "c x1" 1L (count 'c');
  Alcotest.(check int64) "d x0" 0L (count 'd')

let test_ungranted_memory_faults () =
  let system, dev, accel, pasid, _ = rig () in
  (match
     submit_sync system dev accel pasid
       (Accel_proto.Checksum { va = 0x9999_0000L; len = 16 })
   with
  | Accel_proto.Fault _ -> ()
  | _ -> Alcotest.fail "ungranted access did not fault");
  Alcotest.(check int) "fault counted" 1 (Accel_dev.job_faults accel);
  (* The accelerator survives and still serves good jobs. *)
  let dma = Device.dma dev ~pasid in
  Dma.write_bytes dma 0x4000_0000L "ok";
  match
    submit_sync system dev accel pasid
      (Accel_proto.Checksum { va = 0x4000_0000L; len = 2 })
  with
  | Accel_proto.Value _ -> ()
  | _ -> Alcotest.fail "accelerator did not survive the fault"

let test_read_only_grant_blocks_writes () =
  (* Grant only read permission: a Histogram (which writes the result into
     the region) must fault; a Checksum must succeed. *)
  let spec = { System.default_spec with System.accel_count = 1 } in
  let system = System.build ~spec () in
  (match System.boot system with Ok () -> () | Error e -> Alcotest.fail e);
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let accel = System.accel system 0 in
  let pasid = System.fresh_pasid system in
  let va = 0x4000_0000L in
  let token = ref None in
  Device.alloc dev ~memctl:mc ~pasid ~va ~bytes:8192L ~perm:Types.perm_rw
    (fun r -> token := Result.to_option r);
  System.run_until_idle system;
  let token = match !token with Some t -> t | None -> Alcotest.fail "alloc" in
  let granted = ref false in
  Device.grant dev ~to_device:(Accel_dev.id accel) ~pasid ~va ~bytes:8192L
    ~perm:Types.perm_r ~auth:token (fun r -> granted := Result.is_ok r);
  System.run_until_idle system;
  Alcotest.(check bool) "granted r/o" true !granted;
  (match
     submit_sync system dev accel pasid (Accel_proto.Checksum { va; len = 16 })
   with
  | Accel_proto.Value _ -> ()
  | _ -> Alcotest.fail "read under r/o grant failed");
  match
    submit_sync system dev accel pasid
      (Accel_proto.Histogram { va; len = 16; dst = Int64.add va 4096L })
  with
  | Accel_proto.Fault _ -> ()
  | _ -> Alcotest.fail "write under r/o grant did not fault"

let test_offload_time_scales_with_bytes () =
  let system, dev, accel, pasid, va = rig () in
  let engine = System.engine system in
  let time_of len =
    let t0 = Engine.now engine in
    ignore (submit_sync system dev accel pasid (Accel_proto.Checksum { va; len }));
    Int64.sub (Engine.now engine) t0
  in
  let small = time_of 64 in
  let large = time_of 32768 in
  Alcotest.(check bool) "large costs more" true (large > small);
  (* The difference should be roughly (32768-64) * accel_byte_ns. *)
  let expected = Int64.of_int (32768 - 64) in
  let diff = Int64.sub large small in
  Alcotest.(check bool)
    (Printf.sprintf "scaling ~1ns/B (diff %Ld vs %Ld)" diff expected)
    true
    (Int64.abs (Int64.sub diff expected) < 2000L)

let () =
  Alcotest.run "accel"
    [
      ( "protocol",
        [
          Alcotest.test_case "roundtrips" `Quick test_job_roundtrips;
          Alcotest.test_case "job bytes" `Quick test_job_bytes;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "discoverable" `Quick test_discoverable;
          Alcotest.test_case "checksum offload==local" `Quick test_checksum_matches_local;
          Alcotest.test_case "word count" `Quick test_word_count;
          Alcotest.test_case "upper" `Quick test_upper_transform;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "ungranted faults" `Quick test_ungranted_memory_faults;
          Alcotest.test_case "r/o grant blocks writes" `Quick
            test_read_only_grant_blocks_writes;
        ] );
      ( "costs",
        [
          Alcotest.test_case "scales with bytes" `Quick
            test_offload_time_scales_with_bytes;
        ] );
    ]
