(* Tests for the inode file system. *)

module Nand = Lastcpu_flash.Nand
module Ftl = Lastcpu_flash.Ftl
module Fs = Lastcpu_fs.Fs

let mkfs ?cache () =
  let nand =
    Nand.create ~geometry:{ Nand.blocks = 64; pages_per_block = 16; page_size = 4096 } ()
  in
  let ftl = Ftl.create ~nand () in
  match Fs.format ?cache ftl with
  | Ok fs -> (fs, ftl)
  | Error e -> failwith (Fs.error_to_string e)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Fs.error_to_string e)

let expect_err name = function
  | Ok _ -> Alcotest.fail (name ^ ": expected error")
  | Error _ -> ()

let check_clean name fs =
  match Fs.fsck fs with
  | Error e -> Alcotest.fail (Fs.error_to_string e)
  | Ok r ->
    let msg = Format.asprintf "%s: %a" name Fs.pp_fsck_report r in
    Alcotest.(check int) (msg ^ " leaked") 0 r.Fs.leaked_blocks;
    Alcotest.(check int) (msg ^ " shared") 0 r.Fs.shared_blocks;
    Alcotest.(check int) (msg ^ " unmarked") 0 r.Fs.unmarked_blocks;
    Alcotest.(check int) (msg ^ " orphans") 0 r.Fs.orphan_inodes;
    r

(* --- basics ---------------------------------------------------------------- *)

let test_create_stat () =
  let fs, _ = mkfs () in
  ok (Fs.create fs ~user:"alice" "/hello.txt");
  let st = ok (Fs.stat fs "/hello.txt") in
  Alcotest.(check int) "size 0" 0 st.Fs.size;
  Alcotest.(check string) "owner" "alice" st.Fs.owner;
  Alcotest.(check bool) "regular" true (st.Fs.kind = Fs.Regular);
  Alcotest.(check bool) "exists" true (Fs.exists fs "/hello.txt");
  Alcotest.(check bool) "missing" false (Fs.exists fs "/nope")

let test_write_read () =
  let fs, _ = mkfs () in
  ok (Fs.create fs ~user:"alice" "/f");
  ok (Fs.write fs ~user:"alice" "/f" ~off:0 "hello world");
  Alcotest.(check string) "read" "hello world"
    (ok (Fs.read fs ~user:"alice" "/f" ~off:0 ~len:100));
  Alcotest.(check string) "partial" "world"
    (ok (Fs.read fs ~user:"alice" "/f" ~off:6 ~len:5));
  Alcotest.(check string) "past eof" "" (ok (Fs.read fs ~user:"alice" "/f" ~off:50 ~len:10));
  Alcotest.(check int) "size" 11 (ok (Fs.file_size fs "/f"))

let test_write_extends_with_holes () =
  let fs, _ = mkfs () in
  ok (Fs.create fs ~user:"alice" "/f");
  ok (Fs.write fs ~user:"alice" "/f" ~off:10000 "far");
  Alcotest.(check int) "size" 10003 (ok (Fs.file_size fs "/f"));
  let hole = ok (Fs.read fs ~user:"alice" "/f" ~off:0 ~len:4) in
  Alcotest.(check string) "hole reads zero" "\000\000\000\000" hole;
  Alcotest.(check string) "tail" "far" (ok (Fs.read fs ~user:"alice" "/f" ~off:10000 ~len:3))

let test_large_file_indirect () =
  let fs, _ = mkfs () in
  ok (Fs.create fs ~user:"alice" "/big");
  (* 60 pages: beyond the 12 direct pointers, into the indirect block. *)
  let chunk = String.make 4096 'x' in
  for i = 0 to 59 do
    ok (Fs.write fs ~user:"alice" "/big" ~off:(i * 4096) chunk)
  done;
  Alcotest.(check int) "size" (60 * 4096) (ok (Fs.file_size fs "/big"));
  let back = ok (Fs.read fs ~user:"alice" "/big" ~off:(45 * 4096) ~len:4096) in
  Alcotest.(check string) "indirect data" chunk back

let test_directories () =
  let fs, _ = mkfs () in
  ok (Fs.mkdir fs ~user:"alice" "/docs");
  ok (Fs.mkdir fs ~user:"alice" "/docs/sub");
  ok (Fs.create fs ~user:"alice" "/docs/a.txt");
  ok (Fs.create fs ~user:"alice" "/docs/b.txt");
  let names = List.sort compare (ok (Fs.readdir fs ~user:"alice" "/docs")) in
  Alcotest.(check (list string)) "listing" [ "a.txt"; "b.txt"; "sub" ] names;
  expect_err "rmdir non-empty" (Fs.unlink fs ~user:"alice" "/docs");
  ok (Fs.unlink fs ~user:"alice" "/docs/a.txt");
  ok (Fs.unlink fs ~user:"alice" "/docs/b.txt");
  ok (Fs.unlink fs ~user:"alice" "/docs/sub");
  ok (Fs.unlink fs ~user:"alice" "/docs");
  Alcotest.(check bool) "gone" false (Fs.exists fs "/docs")

let test_unlink_frees_space () =
  let fs, _ = mkfs () in
  let before = Fs.free_blocks fs in
  ok (Fs.create fs ~user:"alice" "/f");
  ok (Fs.write fs ~user:"alice" "/f" ~off:0 (String.make 20000 'x'));
  Alcotest.(check bool) "space consumed" true (Fs.free_blocks fs < before);
  ok (Fs.unlink fs ~user:"alice" "/f");
  Alcotest.(check int) "space restored" before (Fs.free_blocks fs)

let test_truncate () =
  let fs, _ = mkfs () in
  ok (Fs.create fs ~user:"alice" "/f");
  ok (Fs.write fs ~user:"alice" "/f" ~off:0 (String.make 10000 'x'));
  ok (Fs.truncate fs ~user:"alice" "/f" ~len:100);
  Alcotest.(check int) "shrunk" 100 (ok (Fs.file_size fs "/f"));
  Alcotest.(check string) "data intact" (String.make 100 'x')
    (ok (Fs.read fs ~user:"alice" "/f" ~off:0 ~len:200));
  ok (Fs.truncate fs ~user:"alice" "/f" ~len:0);
  Alcotest.(check int) "empty" 0 (ok (Fs.file_size fs "/f"));
  (* Grow-truncate produces zeroes. *)
  ok (Fs.truncate fs ~user:"alice" "/f" ~len:50);
  Alcotest.(check string) "zeros" (String.make 50 '\000')
    (ok (Fs.read fs ~user:"alice" "/f" ~off:0 ~len:50))

let test_exists_and_duplicate () =
  let fs, _ = mkfs () in
  ok (Fs.create fs ~user:"alice" "/f");
  expect_err "duplicate create" (Fs.create fs ~user:"alice" "/f");
  expect_err "missing parent" (Fs.create fs ~user:"alice" "/no/such/f")

let test_rename_same_dir () =
  let fs, _ = mkfs () in
  ok (Fs.create fs ~user:"u" "/a");
  ok (Fs.write fs ~user:"u" "/a" ~off:0 "payload");
  ok (Fs.rename fs ~user:"u" "/a" "/b");
  Alcotest.(check bool) "old gone" false (Fs.exists fs "/a");
  Alcotest.(check string) "data moved" "payload"
    (ok (Fs.read fs ~user:"u" "/b" ~off:0 ~len:7));
  ignore (check_clean "after same-dir rename" fs)

let test_rename_across_dirs () =
  let fs, _ = mkfs () in
  ok (Fs.mkdir fs ~user:"u" "/src");
  ok (Fs.mkdir fs ~user:"u" "/dst");
  ok (Fs.create fs ~user:"u" "/src/f");
  ok (Fs.write fs ~user:"u" "/src/f" ~off:0 "x-dir");
  ok (Fs.rename fs ~user:"u" "/src/f" "/dst/g");
  Alcotest.(check (list string)) "src empty" [] (ok (Fs.readdir fs ~user:"u" "/src"));
  Alcotest.(check string) "moved" "x-dir" (ok (Fs.read fs ~user:"u" "/dst/g" ~off:0 ~len:5));
  ignore (check_clean "after cross-dir rename" fs)

let test_rename_replaces_target () =
  let fs, _ = mkfs () in
  let before = Fs.free_blocks fs in
  ok (Fs.create fs ~user:"u" "/new");
  ok (Fs.write fs ~user:"u" "/new" ~off:0 "fresh");
  ok (Fs.create fs ~user:"u" "/old");
  ok (Fs.write fs ~user:"u" "/old" ~off:0 (String.make 10000 'o'));
  ok (Fs.rename fs ~user:"u" "/new" "/old");
  Alcotest.(check string) "target replaced" "fresh"
    (ok (Fs.read fs ~user:"u" "/old" ~off:0 ~len:5));
  Alcotest.(check bool) "source gone" false (Fs.exists fs "/new");
  (* The replaced file's blocks were freed (3 data blocks). *)
  Alcotest.(check bool) "space reclaimed" true (Fs.free_blocks fs >= before - 2);
  ignore (check_clean "after replacing rename" fs)

let test_rename_errors () =
  let fs, _ = mkfs () in
  ok (Fs.create fs ~user:"u" "/f");
  ok (Fs.mkdir fs ~user:"u" "/d");
  expect_err "missing source" (Fs.rename fs ~user:"u" "/ghost" "/x");
  expect_err "onto directory" (Fs.rename fs ~user:"u" "/f" "/d");
  expect_err "missing target parent" (Fs.rename fs ~user:"u" "/f" "/no/where");
  (* Permission: bob cannot move alice's file out of her 0o755 dir. *)
  ok (Fs.mkdir fs ~user:"alice" ~mode:0o755 "/hers");
  ok (Fs.create fs ~user:"alice" "/hers/doc");
  expect_err "no write perm on parent" (Fs.rename fs ~user:"bob" "/hers/doc" "/stolen")

(* --- permissions -------------------------------------------------------------- *)

let test_permissions () =
  let fs, _ = mkfs () in
  ok (Fs.create fs ~user:"alice" ~mode:0o600 "/private");
  ok (Fs.write fs ~user:"alice" "/private" ~off:0 "secret");
  expect_err "other cannot read" (Fs.read fs ~user:"bob" "/private" ~off:0 ~len:6);
  expect_err "other cannot write" (Fs.write fs ~user:"bob" "/private" ~off:0 "x");
  Alcotest.(check string) "owner reads" "secret"
    (ok (Fs.read fs ~user:"alice" "/private" ~off:0 ~len:6));
  Alcotest.(check string) "root reads" "secret"
    (ok (Fs.read fs ~user:"root" "/private" ~off:0 ~len:6))

let test_chmod_chown () =
  let fs, _ = mkfs () in
  ok (Fs.create fs ~user:"alice" ~mode:0o600 "/f");
  expect_err "non-owner chmod" (Fs.chmod fs ~user:"bob" "/f" ~mode:0o666);
  ok (Fs.chmod fs ~user:"alice" "/f" ~mode:0o644);
  Alcotest.(check string) "bob can read now" ""
    (ok (Fs.read fs ~user:"bob" "/f" ~off:0 ~len:0));
  expect_err "non-root chown" (Fs.chown fs ~user:"alice" "/f" ~owner:"bob");
  ok (Fs.chown fs ~user:"root" "/f" ~owner:"bob");
  Alcotest.(check string) "new owner" "bob" (ok (Fs.stat fs "/f")).Fs.owner

let test_dir_write_permission () =
  let fs, _ = mkfs () in
  ok (Fs.mkdir fs ~user:"alice" ~mode:0o755 "/her");
  expect_err "bob cannot create in alice's dir"
    (Fs.create fs ~user:"bob" "/her/file");
  ok (Fs.create fs ~user:"alice" "/her/file")

(* --- persistence ---------------------------------------------------------------- *)

let test_mount_persistence () =
  let fs, ftl = mkfs () in
  ok (Fs.create fs ~user:"alice" "/persist");
  ok (Fs.write fs ~user:"alice" "/persist" ~off:0 "durable data");
  (* Remount from the same flash: everything must still be there. *)
  let fs2 = ok (Fs.mount ftl) in
  Alcotest.(check string) "data survives remount" "durable data"
    (ok (Fs.read fs2 ~user:"alice" "/persist" ~off:0 ~len:12));
  Alcotest.(check string) "owner survives" "alice" (ok (Fs.stat fs2 "/persist")).Fs.owner

let test_mount_rejects_unformatted () =
  let nand =
    Nand.create ~geometry:{ Nand.blocks = 64; pages_per_block = 16; page_size = 4096 } ()
  in
  let ftl = Ftl.create ~nand () in
  match Fs.mount ftl with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mounted unformatted device"

let test_cache_equivalence () =
  (* The same operation sequence with and without the device cache must
     produce identical observable state. *)
  let run cache =
    let fs, _ = mkfs ~cache () in
    ok (Fs.mkdir fs ~user:"u" "/d");
    ok (Fs.create fs ~user:"u" "/d/f");
    for i = 0 to 20 do
      ok (Fs.write fs ~user:"u" "/d/f" ~off:(i * 1000) (Printf.sprintf "<%d>" i))
    done;
    ok (Fs.truncate fs ~user:"u" "/d/f" ~len:15000);
    ok (Fs.read fs ~user:"u" "/d/f" ~off:0 ~len:15000)
  in
  Alcotest.(check string) "cached = uncached" (run false) (run true)

let test_fsck_clean_after_torture () =
  let fs, ftl = mkfs () in
  (* Torture: creates, writes (direct + indirect), truncates, unlinks,
     nested directories. *)
  ok (Fs.mkdir fs ~user:"u" "/d1");
  ok (Fs.mkdir fs ~user:"u" "/d1/d2");
  for i = 0 to 9 do
    let p = Printf.sprintf "/d1/f%d" i in
    ok (Fs.create fs ~user:"u" p);
    ok (Fs.write fs ~user:"u" p ~off:(i * 3000) (String.make 5000 'x'))
  done;
  (* One big file through the indirect block. *)
  ok (Fs.create fs ~user:"u" "/d1/d2/big");
  for i = 0 to 39 do
    ok (Fs.write fs ~user:"u" "/d1/d2/big" ~off:(i * 4096) (String.make 4096 'b'))
  done;
  ok (Fs.truncate fs ~user:"u" "/d1/d2/big" ~len:10000);
  for i = 0 to 4 do
    ok (Fs.unlink fs ~user:"u" (Printf.sprintf "/d1/f%d" i))
  done;
  let r = check_clean "after torture" fs in
  Alcotest.(check int) "files counted" 6 r.Fs.files;
  Alcotest.(check int) "dirs counted (incl root)" 3 r.Fs.directories;
  (* Remounting sees the same healthy image. *)
  let fs2 = ok (Fs.mount ftl) in
  ignore (check_clean "after remount" fs2)

let test_fsck_counts_usage () =
  let fs, _ = mkfs () in
  let before = (check_clean "empty" fs).Fs.used_blocks in
  ok (Fs.create fs ~user:"u" "/f");
  ok (Fs.write fs ~user:"u" "/f" ~off:0 (String.make 8192 'x'));
  let after = (check_clean "with file" fs).Fs.used_blocks in
  (* 2 data blocks + 1 root-dir data block appeared (root dir grew). *)
  Alcotest.(check bool) "usage grew by >= 2" true (after - before >= 2)

let fs_model_prop =
  (* Random write/read sequences against a pure byte-array model. *)
  QCheck.Test.make ~name:"fs file contents match byte-array model" ~count:25
    QCheck.(list (pair (int_bound 30_000) (string_of_size Gen.(int_range 1 2000))))
    (fun writes ->
      let fs, _ = mkfs () in
      (match Fs.create fs ~user:"u" "/m" with Ok () -> () | Error _ -> ());
      let model = Bytes.create 40_000 in
      Bytes.fill model 0 40_000 '\000';
      let size = ref 0 in
      List.for_all
        (fun (off, data) ->
          match Fs.write fs ~user:"u" "/m" ~off data with
          | Error _ -> true (* no-space etc.: skip *)
          | Ok () ->
            Bytes.blit_string data 0 model off (String.length data);
            size := max !size (off + String.length data);
            let expect = Bytes.sub_string model 0 !size in
            (match Fs.read fs ~user:"u" "/m" ~off:0 ~len:!size with
            | Ok got -> String.equal got expect
            | Error _ -> false))
        writes)

let () =
  Alcotest.run "fs"
    [
      ( "basics",
        [
          Alcotest.test_case "create/stat" `Quick test_create_stat;
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "holes" `Quick test_write_extends_with_holes;
          Alcotest.test_case "indirect blocks" `Quick test_large_file_indirect;
          Alcotest.test_case "directories" `Quick test_directories;
          Alcotest.test_case "unlink frees space" `Quick test_unlink_frees_space;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "duplicates and bad paths" `Quick test_exists_and_duplicate;
          Alcotest.test_case "rename same dir" `Quick test_rename_same_dir;
          Alcotest.test_case "rename across dirs" `Quick test_rename_across_dirs;
          Alcotest.test_case "rename replaces target" `Quick test_rename_replaces_target;
          Alcotest.test_case "rename errors" `Quick test_rename_errors;
        ] );
      ( "permissions",
        [
          Alcotest.test_case "owner/other" `Quick test_permissions;
          Alcotest.test_case "chmod/chown" `Quick test_chmod_chown;
          Alcotest.test_case "directory write" `Quick test_dir_write_permission;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "mount" `Quick test_mount_persistence;
          Alcotest.test_case "rejects unformatted" `Quick test_mount_rejects_unformatted;
          Alcotest.test_case "cache equivalence" `Quick test_cache_equivalence;
          Alcotest.test_case "fsck after torture" `Quick test_fsck_clean_after_torture;
          Alcotest.test_case "fsck usage accounting" `Quick test_fsck_counts_usage;
          QCheck_alcotest.to_alcotest fs_model_prop;
        ] );
    ]
