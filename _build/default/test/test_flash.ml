(* Tests for the NAND model and the FTL. *)

module Nand = Lastcpu_flash.Nand
module Ftl = Lastcpu_flash.Ftl

let small_geometry = { Nand.blocks = 16; pages_per_block = 8; page_size = 512 }

(* --- Nand ----------------------------------------------------------------- *)

let test_nand_erased_reads_ff () =
  let n = Nand.create ~geometry:small_geometry () in
  match Nand.read_page n ~block:0 ~page:0 with
  | Ok data ->
    Alcotest.(check int) "size" 512 (String.length data);
    Alcotest.(check char) "0xff" '\xff' data.[0]
  | Error e -> Alcotest.fail e

let test_nand_program_read () =
  let n = Nand.create ~geometry:small_geometry () in
  (match Nand.program_page n ~block:1 ~page:2 "hello" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Nand.read_page n ~block:1 ~page:2 with
  | Ok data ->
    Alcotest.(check string) "data" "hello" (String.sub data 0 5);
    Alcotest.(check char) "padding is ff" '\xff' data.[5]
  | Error e -> Alcotest.fail e

let test_nand_no_overwrite () =
  let n = Nand.create ~geometry:small_geometry () in
  (match Nand.program_page n ~block:0 ~page:0 "a" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Nand.program_page n ~block:0 ~page:0 "b" with
  | Error "page not erased" -> ()
  | Ok () -> Alcotest.fail "overwrite accepted"
  | Error e -> Alcotest.fail ("unexpected: " ^ e)

let test_nand_erase_cycle () =
  let n = Nand.create ~geometry:small_geometry () in
  (match Nand.program_page n ~block:0 ~page:0 "a" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Nand.erase_block n ~block:0 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "erase count" 1 (Nand.erase_count n ~block:0);
  Alcotest.(check bool) "page erased" true
    (Nand.page_state n ~block:0 ~page:0 = Nand.Erased);
  match Nand.program_page n ~block:0 ~page:0 "b" with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("reprogram after erase: " ^ e)

let test_nand_bounds () =
  let n = Nand.create ~geometry:small_geometry () in
  (match Nand.read_page n ~block:99 ~page:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oob block accepted");
  (match Nand.read_page n ~block:0 ~page:99 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oob page accepted");
  match Nand.program_page n ~block:0 ~page:0 (String.make 1000 'x') with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oversized program accepted"

(* --- Ftl -------------------------------------------------------------------- *)

let test_ftl_read_unwritten_zero () =
  let ftl = Ftl.create ~nand:(Nand.create ~geometry:small_geometry ()) () in
  match Ftl.read ftl ~lpn:0 with
  | Ok data -> Alcotest.(check char) "zero" '\000' data.[0]
  | Error e -> Alcotest.fail e

let test_ftl_write_read_roundtrip () =
  let ftl = Ftl.create ~nand:(Nand.create ~geometry:small_geometry ()) () in
  (match Ftl.write ftl ~lpn:5 "payload" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Ftl.read ftl ~lpn:5 with
  | Ok data -> Alcotest.(check string) "data" "payload" (String.sub data 0 7)
  | Error e -> Alcotest.fail e

let test_ftl_overwrite_updates () =
  let ftl = Ftl.create ~nand:(Nand.create ~geometry:small_geometry ()) () in
  (match Ftl.write ftl ~lpn:3 "one" with Ok () -> () | Error e -> Alcotest.fail e);
  (match Ftl.write ftl ~lpn:3 "two" with Ok () -> () | Error e -> Alcotest.fail e);
  match Ftl.read ftl ~lpn:3 with
  | Ok data -> Alcotest.(check string) "latest wins" "two" (String.sub data 0 3)
  | Error e -> Alcotest.fail e

let test_ftl_gc_under_churn () =
  let ftl = Ftl.create ~nand:(Nand.create ~geometry:small_geometry ()) () in
  let logical = Ftl.logical_pages ftl in
  (* Overwrite a small working set many times: forces GC. *)
  for round = 1 to 40 do
    for lpn = 0 to min 9 (logical - 1) do
      match Ftl.write ftl ~lpn (Printf.sprintf "r%d-l%d" round lpn) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "round %d: %s" round e)
    done
  done;
  Alcotest.(check bool) "gc ran" true (Ftl.gc_runs ftl > 0);
  Alcotest.(check bool) "write amp sane" true (Ftl.write_amplification ftl >= 1.0);
  (* Data still correct after GC. *)
  for lpn = 0 to min 9 (logical - 1) do
    match Ftl.read ftl ~lpn with
    | Ok data ->
      let expect = Printf.sprintf "r40-l%d" lpn in
      Alcotest.(check string) "survives gc" expect
        (String.sub data 0 (String.length expect))
    | Error e -> Alcotest.fail e
  done

let test_ftl_trim () =
  let ftl = Ftl.create ~nand:(Nand.create ~geometry:small_geometry ()) () in
  (match Ftl.write ftl ~lpn:1 "data" with Ok () -> () | Error e -> Alcotest.fail e);
  Ftl.trim ftl ~lpn:1;
  match Ftl.read ftl ~lpn:1 with
  | Ok data -> Alcotest.(check char) "trimmed reads zero" '\000' data.[0]
  | Error e -> Alcotest.fail e

let test_ftl_full_capacity () =
  let ftl = Ftl.create ~nand:(Nand.create ~geometry:small_geometry ()) () in
  let logical = Ftl.logical_pages ftl in
  for lpn = 0 to logical - 1 do
    match Ftl.write ftl ~lpn (Printf.sprintf "p%d" lpn) with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "lpn %d: %s" lpn e)
  done;
  for lpn = 0 to logical - 1 do
    match Ftl.read ftl ~lpn with
    | Ok data ->
      let expect = Printf.sprintf "p%d" lpn in
      Alcotest.(check string) "full device intact" expect
        (String.sub data 0 (String.length expect))
    | Error e -> Alcotest.fail e
  done

let test_ftl_bounds () =
  let ftl = Ftl.create ~nand:(Nand.create ~geometry:small_geometry ()) () in
  (match Ftl.write ftl ~lpn:(-1) "x" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative lpn accepted");
  match Ftl.write ftl ~lpn:(Ftl.logical_pages ftl) "x" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oob lpn accepted"

let ftl_model_prop =
  QCheck.Test.make ~name:"ftl matches a simple map model under churn" ~count:30
    QCheck.(list (pair (int_bound 19) (string_of_size (Gen.return 8))))
    (fun script ->
      let ftl = Ftl.create ~nand:(Nand.create ~geometry:small_geometry ()) () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (lpn, data) ->
          match Ftl.write ftl ~lpn data with
          | Error _ -> false
          | Ok () ->
            Hashtbl.replace model lpn data;
            Hashtbl.fold
              (fun lpn expect acc ->
                acc
                &&
                match Ftl.read ftl ~lpn with
                | Ok got -> String.sub got 0 (String.length expect) = expect
                | Error _ -> false)
              model true)
        script)

let test_ftl_wear_leveling_bounded_skew () =
  let ftl = Ftl.create ~nand:(Nand.create ~geometry:small_geometry ()) () in
  for round = 1 to 100 do
    for lpn = 0 to 9 do
      match Ftl.write ftl ~lpn (Printf.sprintf "%d" round) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e
    done
  done;
  (* With tie-breaking on erase count, skew should stay well below the
     total erase count. *)
  let skew = Ftl.max_erase_skew ftl in
  let n = Ftl.nand ftl in
  Alcotest.(check bool)
    (Printf.sprintf "skew %d bounded vs %d total erases" skew (Nand.total_erases n))
    true
    (skew <= Nand.total_erases n / 2)

let () =
  Alcotest.run "flash"
    [
      ( "nand",
        [
          Alcotest.test_case "erased reads ff" `Quick test_nand_erased_reads_ff;
          Alcotest.test_case "program/read" `Quick test_nand_program_read;
          Alcotest.test_case "no overwrite" `Quick test_nand_no_overwrite;
          Alcotest.test_case "erase cycle" `Quick test_nand_erase_cycle;
          Alcotest.test_case "bounds" `Quick test_nand_bounds;
        ] );
      ( "ftl",
        [
          Alcotest.test_case "unwritten reads zero" `Quick test_ftl_read_unwritten_zero;
          Alcotest.test_case "write/read roundtrip" `Quick test_ftl_write_read_roundtrip;
          Alcotest.test_case "overwrite updates" `Quick test_ftl_overwrite_updates;
          Alcotest.test_case "gc under churn" `Quick test_ftl_gc_under_churn;
          Alcotest.test_case "trim" `Quick test_ftl_trim;
          Alcotest.test_case "full capacity" `Quick test_ftl_full_capacity;
          Alcotest.test_case "bounds" `Quick test_ftl_bounds;
          Alcotest.test_case "wear leveling" `Quick test_ftl_wear_leveling_bounded_skew;
          QCheck_alcotest.to_alcotest ftl_model_prop;
        ] );
    ]
