(* Tests for the memory substrate: layout arithmetic, buddy allocator,
   simulated physical memory. *)

module Layout = Lastcpu_mem.Layout
module Buddy = Lastcpu_mem.Buddy
module Physmem = Lastcpu_mem.Physmem

(* --- Layout ----------------------------------------------------------- *)

let test_layout_alignment () =
  Alcotest.(check int64) "align_up 0" 0L (Layout.align_up 0L);
  Alcotest.(check int64) "align_up 1" 4096L (Layout.align_up 1L);
  Alcotest.(check int64) "align_up 4096" 4096L (Layout.align_up 4096L);
  Alcotest.(check int64) "align_up 4097" 8192L (Layout.align_up 4097L);
  Alcotest.(check int64) "align_down 4097" 4096L (Layout.align_down 4097L);
  Alcotest.(check bool) "aligned" true (Layout.is_page_aligned 8192L);
  Alcotest.(check bool) "unaligned" false (Layout.is_page_aligned 8193L)

let test_layout_pages () =
  Alcotest.(check int) "0 bytes" 0 (Layout.pages_of_bytes 0L);
  Alcotest.(check int) "1 byte" 1 (Layout.pages_of_bytes 1L);
  Alcotest.(check int) "4096" 1 (Layout.pages_of_bytes 4096L);
  Alcotest.(check int) "4097" 2 (Layout.pages_of_bytes 4097L);
  Alcotest.(check int64) "page of addr" 2L (Layout.page_of_addr 8193L);
  Alcotest.(check int) "offset" 1 (Layout.offset_in_page 8193L)

(* --- Buddy -------------------------------------------------------------- *)

let test_buddy_alloc_free () =
  let b = Buddy.create ~base:0L ~pages:64 in
  Alcotest.(check int) "all free" 64 (Buddy.free_pages b);
  let a1 = Buddy.alloc b ~pages:1 in
  Alcotest.(check bool) "allocated" true (a1 <> None);
  Alcotest.(check int) "one used" 63 (Buddy.free_pages b);
  (match a1 with
  | Some addr -> Buddy.free b ~addr ~pages:1
  | None -> ());
  Alcotest.(check int) "freed" 64 (Buddy.free_pages b);
  Alcotest.(check int) "coalesced back" 64 (Buddy.largest_free_block b)

let test_buddy_rounds_to_power_of_two () =
  let b = Buddy.create ~base:0L ~pages:64 in
  (match Buddy.alloc b ~pages:3 with
  | Some _ -> ()
  | None -> Alcotest.fail "alloc 3 failed");
  (* 3 pages round to 4. *)
  Alcotest.(check int) "used 4" 4 (Buddy.used_pages b)

let test_buddy_exhaustion () =
  let b = Buddy.create ~base:0L ~pages:16 in
  let blocks = List.filter_map (fun _ -> Buddy.alloc b ~pages:4) [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "four blocks" 4 (List.length blocks);
  Alcotest.(check (option int64)) "exhausted" None (Buddy.alloc b ~pages:1);
  List.iter (fun addr -> Buddy.free b ~addr ~pages:4) blocks;
  Alcotest.(check int) "all back" 16 (Buddy.free_pages b)

let test_buddy_distinct_addresses () =
  let b = Buddy.create ~base:0x10000L ~pages:128 in
  let addrs = List.filter_map (fun _ -> Buddy.alloc b ~pages:2) (List.init 32 Fun.id) in
  let sorted = List.sort_uniq compare addrs in
  Alcotest.(check int) "no duplicates" (List.length addrs) (List.length sorted);
  List.iter
    (fun a ->
      Alcotest.(check bool) "within range" true
        (a >= 0x10000L && a < Int64.add 0x10000L (Int64.mul 128L 4096L)))
    addrs

let test_buddy_double_free_rejected () =
  let b = Buddy.create ~base:0L ~pages:8 in
  match Buddy.alloc b ~pages:2 with
  | None -> Alcotest.fail "alloc failed"
  | Some addr ->
    Buddy.free b ~addr ~pages:2;
    Alcotest.check_raises "double free"
      (Invalid_argument "Buddy.free: not allocated (double free?)") (fun () ->
        Buddy.free b ~addr ~pages:2)

let test_buddy_size_mismatch_rejected () =
  let b = Buddy.create ~base:0L ~pages:8 in
  match Buddy.alloc b ~pages:4 with
  | None -> Alcotest.fail "alloc failed"
  | Some addr ->
    Alcotest.check_raises "size mismatch"
      (Invalid_argument "Buddy.free: size mismatch with allocation") (fun () ->
        Buddy.free b ~addr ~pages:1)

let test_buddy_fragmentation_then_coalesce () =
  let b = Buddy.create ~base:0L ~pages:16 in
  let a = List.filter_map (fun _ -> Buddy.alloc b ~pages:1) (List.init 16 Fun.id) in
  Alcotest.(check int) "largest block 0" 0 (Buddy.largest_free_block b);
  (* Free every other page: buddies cannot coalesce. *)
  List.iteri (fun i addr -> if i mod 2 = 0 then Buddy.free b ~addr ~pages:1) a;
  Alcotest.(check int) "fragmented" 1 (Buddy.largest_free_block b);
  List.iteri (fun i addr -> if i mod 2 = 1 then Buddy.free b ~addr ~pages:1) a;
  Alcotest.(check int) "fully coalesced" 16 (Buddy.largest_free_block b)

let buddy_invariant_prop =
  QCheck.Test.make ~name:"buddy invariants hold under random alloc/free" ~count:100
    QCheck.(list (pair (int_bound 4) bool))
    (fun script ->
      let b = Buddy.create ~base:0L ~pages:256 in
      let live = ref [] in
      List.iter
        (fun (order, do_alloc) ->
          if do_alloc || !live = [] then begin
            let pages = 1 lsl order in
            match Buddy.alloc b ~pages with
            | Some addr -> live := (addr, pages) :: !live
            | None -> ()
          end
          else begin
            match !live with
            | (addr, pages) :: rest ->
              Buddy.free b ~addr ~pages;
              live := rest
            | [] -> ()
          end)
        script;
      Buddy.check_invariants b)

(* --- Physmem ------------------------------------------------------------- *)

let test_physmem_rw () =
  let m = Physmem.create ~size:(Int64.mul 16L 4096L) () in
  Physmem.write_u8 m 0L 0x42;
  Alcotest.(check int) "u8" 0x42 (Physmem.read_u8 m 0L);
  Physmem.write_u64 m 100L 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Physmem.read_u64 m 100L);
  Alcotest.(check int) "u64 little-endian low byte" 0x88 (Physmem.read_u8 m 100L)

let test_physmem_zero_fill () =
  let m = Physmem.create () in
  Alcotest.(check int) "untouched reads zero" 0 (Physmem.read_u8 m 12345L);
  Alcotest.(check string) "bytes zero" (String.make 8 '\000')
    (Physmem.read_bytes m 99999L 8)

let test_physmem_cross_page () =
  let m = Physmem.create () in
  let data = String.init 100 (fun i -> Char.chr (i land 0xff)) in
  let addr = Int64.sub 8192L 50L in
  Physmem.write_bytes m addr data;
  Alcotest.(check string) "straddling read" data (Physmem.read_bytes m addr 100);
  Physmem.write_u64 m (Int64.sub 4096L 4L) 0x0102030405060708L;
  Alcotest.(check int64) "straddling u64" 0x0102030405060708L
    (Physmem.read_u64 m (Int64.sub 4096L 4L))

let test_physmem_bounds () =
  let m = Physmem.create ~size:4096L () in
  Alcotest.(check bool) "oob write raises" true
    (match Physmem.write_u8 m 4096L 1 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "oob span raises" true
    (match Physmem.read_bytes m 4090L 10 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_physmem_sparse () =
  let m = Physmem.create ~size:(Int64.shift_left 1L 30) () in
  Physmem.write_u8 m 0L 1;
  Physmem.write_u8 m (Int64.shift_left 1L 29) 1;
  Alcotest.(check int) "only touched frames" 2 (Physmem.touched_frames m)

let physmem_roundtrip_prop =
  QCheck.Test.make ~name:"physmem write/read roundtrip" ~count:200
    QCheck.(pair (int_bound 100_000) (string_of_size Gen.(int_range 1 300)))
    (fun (addr, data) ->
      let m = Physmem.create ~size:1_000_000L () in
      let addr = Int64.of_int addr in
      Physmem.write_bytes m addr data;
      String.equal (Physmem.read_bytes m addr (String.length data)) data)

let () =
  Alcotest.run "mem"
    [
      ( "layout",
        [
          Alcotest.test_case "alignment" `Quick test_layout_alignment;
          Alcotest.test_case "pages" `Quick test_layout_pages;
        ] );
      ( "buddy",
        [
          Alcotest.test_case "alloc/free" `Quick test_buddy_alloc_free;
          Alcotest.test_case "power-of-two rounding" `Quick test_buddy_rounds_to_power_of_two;
          Alcotest.test_case "exhaustion" `Quick test_buddy_exhaustion;
          Alcotest.test_case "distinct addresses" `Quick test_buddy_distinct_addresses;
          Alcotest.test_case "double free rejected" `Quick test_buddy_double_free_rejected;
          Alcotest.test_case "size mismatch rejected" `Quick test_buddy_size_mismatch_rejected;
          Alcotest.test_case "fragmentation/coalesce" `Quick test_buddy_fragmentation_then_coalesce;
          QCheck_alcotest.to_alcotest buddy_invariant_prop;
        ] );
      ( "physmem",
        [
          Alcotest.test_case "read/write" `Quick test_physmem_rw;
          Alcotest.test_case "zero fill" `Quick test_physmem_zero_fill;
          Alcotest.test_case "cross page" `Quick test_physmem_cross_page;
          Alcotest.test_case "bounds" `Quick test_physmem_bounds;
          Alcotest.test_case "sparse" `Quick test_physmem_sparse;
          QCheck_alcotest.to_alcotest physmem_roundtrip_prop;
        ] );
    ]
