module Engine = Lastcpu_sim.Engine
module Station = Lastcpu_sim.Station
module Costs = Lastcpu_sim.Costs

type t = {
  engine : Engine.t;
  stations : Station.t array;
  mutable syscall_count : int;
  mutable interrupt_count : int;
}

let create engine ?(cores = 1) () =
  if cores <= 0 then invalid_arg "Kernel.create: cores must be positive";
  {
    engine;
    stations = Array.init cores (fun _ -> Station.create engine);
    syscall_count = 0;
    interrupt_count = 0;
  }

(* Least-loaded dispatch approximates an SMP scheduler. *)
let pick t =
  let best = ref t.stations.(0) in
  Array.iter
    (fun s -> if Station.queue_length s < Station.queue_length !best then best := s)
    t.stations;
  !best

let syscall t ~name ?(extra = 0L) k =
  ignore name;
  t.syscall_count <- t.syscall_count + 1;
  let costs = Engine.costs t.engine in
  let service =
    Int64.add costs.Costs.syscall_ns (Int64.add costs.Costs.kernel_op_ns extra)
  in
  Station.submit (pick t) ~service k

let interrupt t ~name ?(extra = 0L) k =
  ignore name;
  t.interrupt_count <- t.interrupt_count + 1;
  let costs = Engine.costs t.engine in
  let service =
    Int64.add costs.Costs.interrupt_ns (Int64.add costs.Costs.kernel_op_ns extra)
  in
  Station.submit (pick t) ~service k

let syscalls t = t.syscall_count
let interrupts t = t.interrupt_count
let cores t = Array.length t.stations

let busy_ns t =
  Array.fold_left (fun acc s -> Int64.add acc (Station.busy_ns s)) 0L t.stations

let total_wait_ns t =
  Array.fold_left
    (fun acc s -> Int64.add acc (Station.total_wait_ns s))
    0L t.stations

let utilization t =
  let now = Engine.now t.engine in
  if now <= 0L then 0.
  else
    Int64.to_float (busy_ns t)
    /. (Int64.to_float now *. float_of_int (Array.length t.stations))
