lib/baseline/central.mli: Kernel Lastcpu_flash Lastcpu_fs Lastcpu_kv Lastcpu_sim
