lib/baseline/kernel.ml: Array Int64 Lastcpu_sim
