lib/baseline/central.ml: Int64 Kernel Lastcpu_flash Lastcpu_fs Lastcpu_kv Lastcpu_sim String
