lib/baseline/kernel.mli: Lastcpu_sim
