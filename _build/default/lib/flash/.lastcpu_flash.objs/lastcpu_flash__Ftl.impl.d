lib/flash/ftl.ml: Array List Nand Option String
