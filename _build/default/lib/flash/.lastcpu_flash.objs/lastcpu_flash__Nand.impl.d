lib/flash/nand.ml: Array Bytes String
