lib/flash/nand.mli:
