lib/flash/ftl.mli: Nand
