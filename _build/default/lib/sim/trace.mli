(** Structured trace of simulation events.

    The trace is the observable record of a run: every bus message, device
    state change and fault can be appended with its virtual timestamp. Tests
    assert on traces (e.g. the Figure-2 sequence) and the CLI pretty-prints
    them. *)

type entry = {
  time : int64;  (** virtual nanoseconds *)
  actor : string;  (** which component produced the event *)
  kind : string;  (** short machine-readable tag, e.g. "bus.route" *)
  detail : string;  (** human-readable description *)
}

type t

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] is an empty trace. [capacity] bounds retained
    entries (oldest dropped first); default keeps everything. *)

val append : t -> time:int64 -> actor:string -> kind:string -> string -> unit
val length : t -> int
val entries : t -> entry list
(** Entries in chronological (append) order. *)

val find_all : t -> kind:string -> entry list
val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

val to_json_lines : t -> string
(** One JSON object per line ({i jsonl}), chronological: for offline
    analysis of runs. Strings are escaped per RFC 8259. *)
