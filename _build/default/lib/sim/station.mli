(** FIFO single-server queueing station.

    Models a serial resource in the emulation: the system management bus's
    message processor, or the baseline's single CPU running the kernel.
    Jobs submitted while the server is busy wait; each job's completion
    callback runs at its virtual finish time. Utilisation and waiting-time
    statistics feed the scalability experiments (T3). *)

type t

val create : Engine.t -> t

val submit : t -> service:int64 -> (unit -> unit) -> unit
(** [submit t ~service k] enqueues a job needing [service] ns; [k] runs at
    completion time. *)

val queue_length : t -> int
(** Jobs submitted but not yet completed (including the one in service). *)

val jobs_completed : t -> int
val busy_ns : t -> int64
(** Total service time accumulated. *)

val total_wait_ns : t -> int64
(** Sum over jobs of (start - submit): pure queueing delay. *)

val utilization : t -> now:int64 -> float
(** [busy_ns / now]; 0 when [now = 0]. *)
