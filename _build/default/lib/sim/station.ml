type t = {
  engine : Engine.t;
  mutable busy_until : int64;
  mutable in_flight : int;
  mutable completed : int;
  mutable busy_total : int64;
  mutable wait_total : int64;
}

let create engine =
  {
    engine;
    busy_until = 0L;
    in_flight = 0;
    completed = 0;
    busy_total = 0L;
    wait_total = 0L;
  }

let submit t ~service k =
  assert (service >= 0L);
  let now = Engine.now t.engine in
  let start = if t.busy_until > now then t.busy_until else now in
  let finish = Int64.add start service in
  t.busy_until <- finish;
  t.in_flight <- t.in_flight + 1;
  t.busy_total <- Int64.add t.busy_total service;
  t.wait_total <- Int64.add t.wait_total (Int64.sub start now);
  Engine.schedule_at t.engine ~time:finish (fun () ->
      t.in_flight <- t.in_flight - 1;
      t.completed <- t.completed + 1;
      k ())

let queue_length t = t.in_flight
let jobs_completed t = t.completed
let busy_ns t = t.busy_total
let total_wait_ns t = t.wait_total

let utilization t ~now =
  if now <= 0L then 0.
  else Int64.to_float t.busy_total /. Int64.to_float now
