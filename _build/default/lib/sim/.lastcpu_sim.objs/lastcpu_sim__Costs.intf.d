lib/sim/costs.mli:
