lib/sim/trace.ml: Buffer Char Format List Printf String
