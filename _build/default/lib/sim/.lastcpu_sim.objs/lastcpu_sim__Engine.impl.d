lib/sim/engine.ml: Costs Heap Int64 Rng Trace
