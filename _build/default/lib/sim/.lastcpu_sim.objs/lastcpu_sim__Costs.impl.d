lib/sim/costs.ml:
