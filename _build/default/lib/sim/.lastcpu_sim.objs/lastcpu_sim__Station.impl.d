lib/sim/station.ml: Engine Int64
