lib/sim/heap.mli:
