lib/sim/rng.mli:
