lib/sim/engine.mli: Costs Rng Trace
