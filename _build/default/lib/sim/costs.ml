type t = {
  bus_hop_ns : int64;
  bus_process_ns : int64;
  device_process_ns : int64;
  iommu_program_ns : int64;
  iommu_walk_level_ns : int64;
  tlb_hit_ns : int64;
  syscall_ns : int64;
  context_switch_ns : int64;
  kernel_op_ns : int64;
  interrupt_ns : int64;
  dram_access_ns : int64;
  flash_read_page_ns : int64;
  flash_write_page_ns : int64;
  flash_erase_block_ns : int64;
  net_link_ns : int64;
  net_byte_ns : int64;
  doorbell_ns : int64;
  token_verify_ns : int64;
  accel_setup_ns : int64;
  accel_byte_ns : int64;
  wimpy_byte_ns : int64;
}

(* Public order-of-magnitude sources:
   - PCIe round trip ~ 1 us  => 500 ns per hop
   - syscall with spectre/meltdown mitigations ~ 1-2 us
   - context switch ~ 2-5 us
   - DRAM ~ 100 ns, NAND read ~ 50 us, program ~ 500 us, erase ~ 3 ms
   - intra-rack link ~ 1 us, ~ 10 GbE => 0.1 ns/byte (we use 1 ns/byte to
     keep serialisation visible at small message sizes). *)
let default =
  {
    bus_hop_ns = 500L;
    bus_process_ns = 200L;
    device_process_ns = 300L;
    iommu_program_ns = 150L;
    iommu_walk_level_ns = 100L;
    tlb_hit_ns = 2L;
    syscall_ns = 1500L;
    context_switch_ns = 3000L;
    kernel_op_ns = 800L;
    interrupt_ns = 2000L;
    dram_access_ns = 100L;
    flash_read_page_ns = 50_000L;
    flash_write_page_ns = 500_000L;
    flash_erase_block_ns = 3_000_000L;
    net_link_ns = 1000L;
    net_byte_ns = 1L;
    doorbell_ns = 50L;
    token_verify_ns = 80L;
    (* ~4 GB/s streaming accelerator vs a ~250 MB/s embedded core. *)
    accel_setup_ns = 2000L;
    accel_byte_ns = 1L;
    wimpy_byte_ns = 16L;
  }

let zero =
  {
    bus_hop_ns = 0L;
    bus_process_ns = 0L;
    device_process_ns = 0L;
    iommu_program_ns = 0L;
    iommu_walk_level_ns = 0L;
    tlb_hit_ns = 0L;
    syscall_ns = 0L;
    context_switch_ns = 0L;
    kernel_op_ns = 0L;
    interrupt_ns = 0L;
    dram_access_ns = 0L;
    flash_read_page_ns = 0L;
    flash_write_page_ns = 0L;
    flash_erase_block_ns = 0L;
    net_link_ns = 0L;
    net_byte_ns = 0L;
    doorbell_ns = 0L;
    token_verify_ns = 0L;
    accel_setup_ns = 0L;
    accel_byte_ns = 0L;
    wimpy_byte_ns = 0L;
  }
