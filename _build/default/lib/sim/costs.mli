(** Cost model: virtual-time constants used across the emulation.

    All times are in virtual nanoseconds. The absolute values are public
    order-of-magnitude numbers; experiments compare *shapes* between the
    CPU-less and centralized designs, which depend on ratios, not absolutes.
    A record of costs is threaded through the system so ablations can vary
    individual constants. *)

type t = {
  bus_hop_ns : int64;
      (** one hop on the system management bus (PCIe-class round trip /2) *)
  bus_process_ns : int64;
      (** bus-side message decode + table update (simple hardware) *)
  device_process_ns : int64;  (** device-side handler for a control message *)
  iommu_program_ns : int64;  (** writing one IOMMU PTE from the bus *)
  iommu_walk_level_ns : int64;  (** one page-table level of a hardware walk *)
  tlb_hit_ns : int64;  (** TLB lookup *)
  syscall_ns : int64;  (** baseline: user->kernel crossing w/ mitigations *)
  context_switch_ns : int64;  (** baseline: CPU context switch *)
  kernel_op_ns : int64;  (** baseline: kernel control-op service time *)
  interrupt_ns : int64;  (** baseline: device interrupt to CPU *)
  dram_access_ns : int64;  (** one DRAM access *)
  flash_read_page_ns : int64;  (** NAND page read *)
  flash_write_page_ns : int64;  (** NAND page program *)
  flash_erase_block_ns : int64;  (** NAND block erase *)
  net_link_ns : int64;  (** one network link traversal *)
  net_byte_ns : int64;  (** serialisation cost per byte on a link *)
  doorbell_ns : int64;  (** MSI-style doorbell write *)
  token_verify_ns : int64;  (** capability-token check on the bus *)
  accel_setup_ns : int64;  (** accelerator job setup/launch *)
  accel_byte_ns : int64;  (** accelerator processing per byte *)
  wimpy_byte_ns : int64;
      (** per-byte cost of the same computation on a device's embedded
          (wimpy) core — the comparator for offload crossovers *)
}

val default : t
(** Defaults documented in the implementation; see DESIGN.md §5. *)

val zero : t
(** All-zero costs: useful in unit tests that assert pure logic. *)
