lib/virtio/features.mli:
