lib/virtio/features.ml: Int64 List
