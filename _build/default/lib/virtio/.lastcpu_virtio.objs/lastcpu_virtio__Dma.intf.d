lib/virtio/dma.mli: Lastcpu_iommu Lastcpu_mem
