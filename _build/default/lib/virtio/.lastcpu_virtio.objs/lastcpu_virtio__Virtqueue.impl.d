lib/virtio/virtqueue.ml: Array Dma Int64 List
