lib/virtio/virtqueue.mli: Dma
