lib/virtio/dma.ml: Bytes Int64 Lastcpu_iommu Lastcpu_mem String
