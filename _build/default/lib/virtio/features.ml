type bit = int

let version_1 = 32
let indirect_desc = 28
let event_idx = 29
let notification_data = 38

let mask bits =
  List.fold_left (fun acc b -> Int64.logor acc (Int64.shift_left 1L b)) 0L bits

type negotiated = { features : int64 }

let negotiate ~offered ~wanted ~required =
  if Int64.logand wanted (Int64.lognot offered) <> 0L then
    Error "driver wants features the device did not offer"
  else begin
    let agreed = Int64.logand offered wanted in
    if Int64.logand required (Int64.lognot agreed) <> 0L then
      Error "required features not accepted"
    else Ok { features = agreed }
  end

let has t bit = Int64.logand t.features (Int64.shift_left 1L bit) <> 0L
