(** VIRTIO feature negotiation.

    A device offers a 64-bit feature mask; the driver accepts a subset.
    Negotiation fails when a driver demands a feature the device did not
    offer, or omits a feature the device requires. *)

type bit = int
(** Bit position in the 64-bit feature word. *)

val version_1 : bit
(** VIRTIO_F_VERSION_1 (bit 32): always required here. *)

val indirect_desc : bit
val event_idx : bit
val notification_data : bit

val mask : bit list -> int64

type negotiated = { features : int64 }

val negotiate :
  offered:int64 -> wanted:int64 -> required:int64 -> (negotiated, string) result
(** [negotiate ~offered ~wanted ~required]: the result carries
    [offered land wanted]; fails when [wanted] exceeds [offered] or the
    intersection misses a [required] bit. *)

val has : negotiated -> bit -> bool
