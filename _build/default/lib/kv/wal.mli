(** Write-ahead-log record format for the key-value store.

    Records are length-prefixed so that recovery can stop cleanly at a
    torn tail (crash mid-append): [u32 body-length | body], where body =
    [op byte | key | value] in wire encoding. *)

type record = Put of { key : string; value : string } | Del of { key : string }

val encode : record -> string
(** The full framed record (including the length prefix). *)

val decode_all : string -> record list * int
(** [decode_all data] parses consecutive records, returning them plus the
    byte offset where parsing stopped (end of data or start of a torn /
    corrupt tail — everything before it is durable). *)
