(** Network protocol between remote clients and the NIC-hosted KVS (§3:
    "The NIC exposes a KVS interface to other machines over the network").

    One request or response per network frame, correlated by a client-chosen
    id. *)

type op =
  | Get of string
  | Put of string * string
  | Del of string
  | Scan of string  (** prefix *)

type request = { corr : int; op : op }

type reply =
  | Value of string option
  | Done
  | Deleted of bool
  | Pairs of (string * string) list
  | Failed of string

type response = { corr : int; reply : reply }

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
