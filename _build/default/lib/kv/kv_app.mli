(** The complete §3 application: a key-value store hosted on the smart NIC,
    persisting through the smart SSD, serving remote network clients.

    [launch] performs the whole bring-up: announce a
    {!Lastcpu_proto.Types.Kv_service} on the NIC, run the Figure-2
    initialization against the SSD ({!Lastcpu_devices.File_client.connect}),
    create/recover the write-ahead log, and install the network fast path.
    After that the CPU... does not exist, and nothing misses it. *)

module Types = Lastcpu_proto.Types

type t

val launch :
  nic:Lastcpu_devices.Smart_nic.t ->
  memctl:Types.device_id ->
  pasid:int ->
  shm_va:int64 ->
  user:string ->
  log_path:string ->
  ?auth:Lastcpu_proto.Token.t ->
  ?start_device:bool ->
  unit ->
  ((t, string) result -> unit) ->
  unit
(** [start_device] (default true) also starts the NIC device; pass [false]
    if it was already started. The log file is created on first launch and
    replayed on relaunch. *)

val store : t -> Store.t
val client : t -> Lastcpu_devices.File_client.t
val ops_served : t -> int
val recovered_records : t -> int

val local_op : t -> Kv_proto.op -> (Kv_proto.reply -> unit) -> unit
(** Execute an operation directly (console/examples), same path as network
    requests minus the network. *)
