(** Store backend over the smart SSD's file service.

    Appends go through the VIRTIO data plane ({!Lastcpu_devices.File_client});
    large appends are chunked to the client's slot size. Offsets are
    reserved at submission so concurrent appends land disjoint. *)

type t

val create :
  Lastcpu_devices.File_client.t ->
  path:string ->
  ((t, string) result -> unit) ->
  unit
(** Creates the log file if missing and learns its current size. *)

val backend : t -> Store.backend
val log_bytes : t -> int
(** Current end-of-log offset. *)
