module Wire = Lastcpu_proto.Wire

type record = Put of { key : string; value : string } | Del of { key : string }

let encode r =
  let w = Wire.Writer.create () in
  (match r with
  | Put { key; value } ->
    Wire.Writer.byte w 0;
    Wire.Writer.string w key;
    Wire.Writer.string w value
  | Del { key } ->
    Wire.Writer.byte w 1;
    Wire.Writer.string w key);
  let body = Wire.Writer.contents w in
  let len = String.length body in
  let prefix = Bytes.create 4 in
  Bytes.set prefix 0 (Char.chr (len land 0xff));
  Bytes.set prefix 1 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set prefix 2 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set prefix 3 (Char.chr ((len lsr 24) land 0xff));
  Bytes.to_string prefix ^ body

let decode_body body =
  let r = Wire.Reader.create body in
  match Wire.Reader.byte r with
  | 0 ->
    let key = Wire.Reader.string r in
    let value = Wire.Reader.string r in
    if Wire.Reader.at_end r then Some (Put { key; value }) else None
  | 1 ->
    let key = Wire.Reader.string r in
    if Wire.Reader.at_end r then Some (Del { key }) else None
  | _ -> None
  | exception Wire.Malformed _ -> None

let decode_all data =
  let total = String.length data in
  let rec go pos acc =
    if pos + 4 > total then (List.rev acc, pos)
    else begin
      let len =
        Char.code data.[pos]
        lor (Char.code data.[pos + 1] lsl 8)
        lor (Char.code data.[pos + 2] lsl 16)
        lor (Char.code data.[pos + 3] lsl 24)
      in
      if len = 0 || pos + 4 + len > total then (List.rev acc, pos)
      else begin
        match decode_body (String.sub data (pos + 4) len) with
        | None -> (List.rev acc, pos)
        | Some r -> go (pos + 4 + len) (r :: acc)
      end
    end
  in
  go 0 []
