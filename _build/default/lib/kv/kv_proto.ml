module Wire = Lastcpu_proto.Wire

type op = Get of string | Put of string * string | Del of string | Scan of string

type request = { corr : int; op : op }

type reply =
  | Value of string option
  | Done
  | Deleted of bool
  | Pairs of (string * string) list
  | Failed of string

type response = { corr : int; reply : reply }

let encode_request { corr; op } =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w corr;
  (match op with
  | Get key ->
    Wire.Writer.byte w 0;
    Wire.Writer.string w key
  | Put (key, value) ->
    Wire.Writer.byte w 1;
    Wire.Writer.string w key;
    Wire.Writer.string w value
  | Del key ->
    Wire.Writer.byte w 2;
    Wire.Writer.string w key
  | Scan prefix ->
    Wire.Writer.byte w 3;
    Wire.Writer.string w prefix);
  Wire.Writer.contents w

let decode_request s =
  match
    let r = Wire.Reader.create s in
    let corr = Wire.Reader.varint r in
    let op =
      match Wire.Reader.byte r with
      | 0 -> Get (Wire.Reader.string r)
      | 1 ->
        let key = Wire.Reader.string r in
        let value = Wire.Reader.string r in
        Put (key, value)
      | 2 -> Del (Wire.Reader.string r)
      | 3 -> Scan (Wire.Reader.string r)
      | n -> raise (Wire.Malformed (Printf.sprintf "bad op %d" n))
    in
    { corr; op }
  with
  | v -> Ok v
  | exception Wire.Malformed m -> Error m

let encode_response { corr; reply } =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w corr;
  (match reply with
  | Value v ->
    Wire.Writer.byte w 0;
    Wire.Writer.option w Wire.Writer.string v
  | Done -> Wire.Writer.byte w 1
  | Deleted b ->
    Wire.Writer.byte w 2;
    Wire.Writer.bool w b
  | Pairs pairs ->
    Wire.Writer.byte w 3;
    Wire.Writer.list w
      (fun w (k, v) ->
        Wire.Writer.string w k;
        Wire.Writer.string w v)
      pairs
  | Failed m ->
    Wire.Writer.byte w 4;
    Wire.Writer.string w m);
  Wire.Writer.contents w

let decode_response s =
  match
    let r = Wire.Reader.create s in
    let corr = Wire.Reader.varint r in
    let reply =
      match Wire.Reader.byte r with
      | 0 -> Value (Wire.Reader.option r Wire.Reader.string)
      | 1 -> Done
      | 2 -> Deleted (Wire.Reader.bool r)
      | 3 ->
        Pairs
          (Wire.Reader.list r (fun r ->
               let k = Wire.Reader.string r in
               let v = Wire.Reader.string r in
               (k, v)))
      | 4 -> Failed (Wire.Reader.string r)
      | n -> raise (Wire.Malformed (Printf.sprintf "bad result tag %d" n))
    in
    { corr; reply }
  with
  | v -> Ok v
  | exception Wire.Malformed m -> Error m
