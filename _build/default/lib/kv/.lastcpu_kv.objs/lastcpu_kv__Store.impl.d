lib/kv/store.ml: Buffer Hashtbl List String Wal
