lib/kv/kv_app.mli: Kv_proto Lastcpu_devices Lastcpu_proto Store
