lib/kv/file_backend.mli: Lastcpu_devices Store
