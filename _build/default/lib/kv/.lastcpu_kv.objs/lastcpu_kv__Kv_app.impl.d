lib/kv/kv_app.ml: File_backend Kv_proto Lastcpu_device Lastcpu_devices Lastcpu_proto Store
