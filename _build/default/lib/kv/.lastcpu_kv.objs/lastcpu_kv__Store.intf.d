lib/kv/store.mli:
