lib/kv/kv_proto.mli:
