lib/kv/kv_proto.ml: Lastcpu_proto Printf
