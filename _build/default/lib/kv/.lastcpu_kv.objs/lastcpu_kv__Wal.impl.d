lib/kv/wal.ml: Bytes Char Lastcpu_proto List String
