lib/kv/file_backend.ml: Buffer Lastcpu_devices Store String
