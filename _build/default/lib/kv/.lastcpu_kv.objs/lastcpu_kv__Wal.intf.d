lib/kv/wal.mli:
