type backend = {
  append : string -> ((unit, string) result -> unit) -> unit;
  read_log : ((string, string) result -> unit) -> unit;
  reset_log : ((unit, string) result -> unit) -> unit;
  replace_log : string -> ((unit, string) result -> unit) -> unit;
}

let memory_backend () =
  let log = Buffer.create 1024 in
  {
    append =
      (fun data k ->
        Buffer.add_string log data;
        k (Ok ()));
    read_log = (fun k -> k (Ok (Buffer.contents log)));
    reset_log =
      (fun k ->
        Buffer.clear log;
        k (Ok ()));
    replace_log =
      (fun data k ->
        Buffer.clear log;
        Buffer.add_string log data;
        k (Ok ()));
  }

type t = {
  backend : backend;
  index : (string, string) Hashtbl.t;
  mutable put_count : int;
  mutable get_count : int;
  mutable del_count : int;
}

let create backend =
  { backend; index = Hashtbl.create 256; put_count = 0; get_count = 0; del_count = 0 }

let apply_record t = function
  | Wal.Put { key; value } -> Hashtbl.replace t.index key value
  | Wal.Del { key } -> Hashtbl.remove t.index key

let recover t k =
  t.backend.read_log (fun res ->
      match res with
      | Error e -> k (Error e)
      | Ok data ->
        let records, _valid = Wal.decode_all data in
        Hashtbl.reset t.index;
        List.iter (apply_record t) records;
        k (Ok (List.length records)))

let get t key k =
  t.get_count <- t.get_count + 1;
  k (Hashtbl.find_opt t.index key)

let put t ~key ~value k =
  t.put_count <- t.put_count + 1;
  (* Log first, apply on durability (write-ahead). *)
  t.backend.append (Wal.encode (Wal.Put { key; value })) (fun res ->
      match res with
      | Error _ as e -> k e
      | Ok () ->
        Hashtbl.replace t.index key value;
        k (Ok ()))

let delete t key k =
  t.del_count <- t.del_count + 1;
  if not (Hashtbl.mem t.index key) then k (Ok false)
  else
    t.backend.append (Wal.encode (Wal.Del { key })) (fun res ->
        match res with
        | Error e -> k (Error e)
        | Ok () ->
          Hashtbl.remove t.index key;
          k (Ok true))

let scan_prefix t ~prefix k =
  let matches key =
    String.length key >= String.length prefix
    && String.equal (String.sub key 0 (String.length prefix)) prefix
  in
  let pairs =
    Hashtbl.fold
      (fun key value acc -> if matches key then (key, value) :: acc else acc)
      t.index []
  in
  k (List.sort (fun (a, _) (b, _) -> String.compare a b) pairs)

let size t = Hashtbl.length t.index

let compact t k =
  let snapshot =
    Hashtbl.fold
      (fun key value acc -> Wal.encode (Wal.Put { key; value }) :: acc)
      t.index []
  in
  t.backend.replace_log (String.concat "" snapshot) k

let puts t = t.put_count
let gets t = t.get_count
let deletes t = t.del_count
