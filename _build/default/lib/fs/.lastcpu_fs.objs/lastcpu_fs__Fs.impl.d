lib/fs/fs.ml: Array Buffer Bytes Char Format Hashtbl Lastcpu_flash List Option Printf Result String
