lib/fs/fs.mli: Format Lastcpu_flash
