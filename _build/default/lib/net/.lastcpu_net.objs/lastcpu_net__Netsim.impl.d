lib/net/netsim.ml: Array Hashtbl Int64 Lastcpu_sim Printf String
