lib/net/netsim.mli: Lastcpu_sim
