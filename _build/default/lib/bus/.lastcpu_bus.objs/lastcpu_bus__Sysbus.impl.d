lib/bus/sysbus.ml: Array Format Hashtbl Int64 Lastcpu_iommu Lastcpu_mem Lastcpu_proto Lastcpu_sim List Printf
