lib/bus/sysbus.mli: Lastcpu_iommu Lastcpu_proto Lastcpu_sim
