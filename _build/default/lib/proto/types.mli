(** Base identifier and permission types shared across the system.

    The system bus addresses devices by a small integer id (the paper's
    "physical address" for the control plane); applications are identified
    by their virtual address space, i.e. a PASID (§2.3). *)

type device_id = int
(** Stable id assigned at bus registration. *)

type pasid = int
(** Process address space id: one per application context (§2.3). An
    application distributed over many devices shares one PASID. *)

type app_id = int
(** Application instance id; maps 1:1 to a PASID in this system. *)

type service_kind =
  | File_service  (** file access on a smart SSD *)
  | Block_service  (** raw block access *)
  | Memory_service  (** physical memory allocation (memory controller) *)
  | Socket_service  (** network sockets on a smart NIC *)
  | Console_service  (** operator console *)
  | Auth_service  (** access control / login (§4) *)
  | Loader_service  (** binary image upload (§2.1) *)
  | Kv_service  (** key-value store exposed by an application *)
  | Compute_service  (** offloaded computation on an accelerator (§1) *)

val service_kind_to_string : service_kind -> string
val service_kind_of_string : string -> service_kind option
val all_service_kinds : service_kind list

type perm = { read : bool; write : bool; exec : bool }

val perm_r : perm
val perm_rw : perm
val perm_rwx : perm
val perm_none : perm

val perm_subsumes : perm -> perm -> bool
(** [perm_subsumes held wanted] is true when [held] allows every access in
    [wanted]. *)

val perm_to_string : perm -> string

type addr = int64
(** Byte address, virtual or physical depending on context. *)

val pp_addr : Format.formatter -> addr -> unit

type dest = Device of device_id | Bus | Broadcast
(** Control-message destination: a specific device, the privileged bus
    itself, or all devices (discovery). *)

val dest_to_string : dest -> string

type error_code =
  | E_no_such_service
  | E_access_denied
  | E_no_memory
  | E_bad_address
  | E_bad_token
  | E_device_failed
  | E_resource_failed
  | E_busy
  | E_not_found
  | E_exists
  | E_invalid

val error_code_to_string : error_code -> string
