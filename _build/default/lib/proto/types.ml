type device_id = int
type pasid = int
type app_id = int

type service_kind =
  | File_service
  | Block_service
  | Memory_service
  | Socket_service
  | Console_service
  | Auth_service
  | Loader_service
  | Kv_service
  | Compute_service

let service_kind_to_string = function
  | File_service -> "file"
  | Block_service -> "block"
  | Memory_service -> "memory"
  | Socket_service -> "socket"
  | Console_service -> "console"
  | Auth_service -> "auth"
  | Loader_service -> "loader"
  | Kv_service -> "kv"
  | Compute_service -> "compute"

let all_service_kinds =
  [
    File_service;
    Block_service;
    Memory_service;
    Socket_service;
    Console_service;
    Auth_service;
    Loader_service;
    Kv_service;
    Compute_service;
  ]

let service_kind_of_string s =
  List.find_opt
    (fun k -> String.equal (service_kind_to_string k) s)
    all_service_kinds

type perm = { read : bool; write : bool; exec : bool }

let perm_r = { read = true; write = false; exec = false }
let perm_rw = { read = true; write = true; exec = false }
let perm_rwx = { read = true; write = true; exec = true }
let perm_none = { read = false; write = false; exec = false }

let perm_subsumes held wanted =
  (held.read || not wanted.read)
  && (held.write || not wanted.write)
  && (held.exec || not wanted.exec)

let perm_to_string p =
  let c b ch = if b then ch else '-' in
  Printf.sprintf "%c%c%c" (c p.read 'r') (c p.write 'w') (c p.exec 'x')

type addr = int64

let pp_addr ppf a = Format.fprintf ppf "0x%Lx" a

type dest = Device of device_id | Bus | Broadcast

let dest_to_string = function
  | Device d -> Printf.sprintf "dev%d" d
  | Bus -> "bus"
  | Broadcast -> "broadcast"

type error_code =
  | E_no_such_service
  | E_access_denied
  | E_no_memory
  | E_bad_address
  | E_bad_token
  | E_device_failed
  | E_resource_failed
  | E_busy
  | E_not_found
  | E_exists
  | E_invalid

let error_code_to_string = function
  | E_no_such_service -> "no-such-service"
  | E_access_denied -> "access-denied"
  | E_no_memory -> "no-memory"
  | E_bad_address -> "bad-address"
  | E_bad_token -> "bad-token"
  | E_device_failed -> "device-failed"
  | E_resource_failed -> "resource-failed"
  | E_busy -> "busy"
  | E_not_found -> "not-found"
  | E_exists -> "exists"
  | E_invalid -> "invalid"
