(** Encode/decode bus messages to their binary wire form.

    The codec exists so that "protocol support" (§2.2) is a real byte-level
    protocol with a conformance surface: property tests round-trip every
    message constructor, and decoding rejects malformed frames. *)

val encode : Message.t -> string
val decode : string -> Message.t
(** @raise Wire.Malformed on any framing or tag error. *)

val encoded_size : Message.t -> int
(** [encoded_size m] is [String.length (encode m)]. *)
