lib/proto/codec.ml: Message Printf Reader String Token Types Wire Writer
