lib/proto/message.ml: Format List String Token Types
