lib/proto/wire.mli:
