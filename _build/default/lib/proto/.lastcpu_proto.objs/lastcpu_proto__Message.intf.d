lib/proto/message.mli: Format Token Types
