lib/proto/types.ml: Format List Printf String
