lib/proto/token.mli: Format Types
