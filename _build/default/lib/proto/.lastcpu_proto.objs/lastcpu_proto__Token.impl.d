lib/proto/token.ml: Char Format Int64 String Types
