module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Device = Lastcpu_device.Device
module Netsim = Lastcpu_net.Netsim

type t = {
  dev : Device.t;
  endpoint : Netsim.endpoint;
  mutable rx_handler : (src:int -> string -> unit) option;
  mutable rx_count : int;
  mutable tx_count : int;
}

let create sysbus ~mem ~net ~name ?(auto_start = true) () =
  let dev = Device.create sysbus ~mem ~name () in
  let endpoint = Netsim.endpoint net ~name in
  let t = { dev; endpoint; rx_handler = None; rx_count = 0; tx_count = 0 } in
  Netsim.set_receiver endpoint (fun ~src frame ->
      t.rx_count <- t.rx_count + 1;
      match t.rx_handler with None -> () | Some f -> f ~src frame);
  Device.add_service dev
    {
      desc = { Message.kind = Types.Socket_service; name = name ^ ".sock"; version = 1 };
      can_serve = (fun ~query:_ -> true);
      on_open =
        (fun ~client:_ ~pasid:_ ~auth:_ ~params:_ ->
          Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 0L });
      on_close = (fun ~connection:_ -> ());
    };
  if auto_start then Device.start dev;
  t

let device t = t.dev
let id t = Device.id t.dev
let endpoint_address t = Netsim.address t.endpoint
let on_packet t f = t.rx_handler <- Some f

let send_packet t ~dst frame =
  t.tx_count <- t.tx_count + 1;
  Netsim.send t.endpoint ~dst frame

let packets_received t = t.rx_count
let packets_sent t = t.tx_count
