(** The smart SSD: NAND + FTL + file system, exposed as a bus service.

    Control plane: a {!Lastcpu_proto.Types.File_service} answering
    discovery by file name (Fig. 2 steps 1-4), plus a
    {!Lastcpu_proto.Types.Loader_service} that accepts [Load_image]
    messages and stores images under ["/images/"] (§2.1).

    Data plane: clients attach a VIRTIO queue in shared memory (after
    granting this device access — Fig. 2 step 7) with an [App_message]
    tagged ["vq-attach"], then exchange {!Ssd_proto} requests through it;
    completions are signalled with doorbells both ways. Each request's
    virtual latency includes the NAND operations it actually caused.

    Isolation: each connection carries its own user identity and address
    space; file permission checks happen here, on the device (§4 Access
    Control). *)

type t

val create :
  Lastcpu_bus.Sysbus.t ->
  mem:Lastcpu_mem.Physmem.t ->
  name:string ->
  ?geometry:Lastcpu_flash.Nand.geometry ->
  ?auth_key:Lastcpu_proto.Token.key ->
  unit ->
  t
(** Formats a fresh file system and starts the device. When [auth_key] is
    given, service opens require a valid session token minted by the
    authentication device with that key (params ["user"], token in
    [auth]). *)

val device : t -> Lastcpu_device.Device.t
val id : t -> Lastcpu_proto.Types.device_id
val fs : t -> Lastcpu_fs.Fs.t
(** Direct FS handle — for provisioning in scenario setup and tests only;
    live traffic must use the data plane. *)

val ftl : t -> Lastcpu_flash.Ftl.t

(** Encoding of the ["vq-attach"] body (also used by {!File_client}). *)

val encode_vq_attach :
  queue:int -> base:int64 -> size:int -> pasid:int -> user:string -> string

val decode_vq_attach :
  string -> (int * int64 * int * int * string, string) result

val requests_served : t -> int
val active_queues : t -> int
