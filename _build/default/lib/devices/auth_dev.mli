(** The authentication / access-control service device (§4).

    The paper's "roughly equivalent to the 'login' program and 'passwd'
    file on Linux": a small device holding a user table; on a successful
    [Auth_request] it mints a *session capability* (a {!Lastcpu_proto.Token}
    over resource ["session:<user>"]). Services that were configured with
    this device's key (e.g. the smart SSD's [?auth_key]) verify the session
    token locally at open time — key distribution happens once, at system
    assembly, standing in for device provisioning. *)

type t

val create :
  Lastcpu_bus.Sysbus.t ->
  mem:Lastcpu_mem.Physmem.t ->
  ?users:(string * string) list ->
  unit ->
  t
(** [users] are (name, password) pairs; more can be added later. *)

val device : t -> Lastcpu_device.Device.t
val id : t -> Lastcpu_proto.Types.device_id

val key : t -> Lastcpu_proto.Token.key
(** Verification key to hand to services at assembly time. *)

val add_user : t -> user:string -> password:string -> unit
val auth_attempts : t -> int
val auth_failures : t -> int
