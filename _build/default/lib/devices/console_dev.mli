(** The operator console device (§4 System Maintenance).

    Collects log lines sent by other devices ([App_message] tag ["log"])
    and serves them back to a remote operator ([App_message] tag
    ["log-read"], body = max line count as a decimal string; reply body =
    newline-joined tail). A data-center deployment would reach this over
    the network; here any device (e.g. the NIC relaying a remote operator)
    can query it over the bus. *)

type t

val create :
  Lastcpu_bus.Sysbus.t ->
  mem:Lastcpu_mem.Physmem.t ->
  ?capacity:int ->
  unit ->
  t
(** [capacity] bounds retained lines (default 4096, oldest dropped). *)

val device : t -> Lastcpu_device.Device.t
val id : t -> Lastcpu_proto.Types.device_id

val log_lines : t -> string list
(** Retained lines, oldest first (local introspection for tests). *)

val lines_received : t -> int
