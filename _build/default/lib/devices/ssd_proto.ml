module Wire = Lastcpu_proto.Wire

type request =
  | Create of { path : string; mode : int }
  | Unlink of { path : string }
  | Mkdir of { path : string; mode : int }
  | Read of { path : string; off : int; len : int }
  | Write of { path : string; off : int; data : string }
  | Stat of { path : string }
  | Readdir of { path : string }
  | Truncate of { path : string; len : int }
  | Fsync of { path : string }
  | Rename of { from_path : string; to_path : string }
  | Bopen of { path : string; block_size : int }
  | Bread of { handle : int; lba : int; count : int }
  | Bwrite of { handle : int; lba : int; data : string }
  | Bclose of { handle : int }

type response =
  | Ok_unit
  | Ok_data of string
  | Ok_names of string list
  | Ok_stat of { size : int; kind_dir : bool; owner : string; mode : int }
  | Ok_handle of int
  | Err of string

let encode_request r =
  let w = Wire.Writer.create () in
  (match r with
  | Create { path; mode } ->
    Wire.Writer.byte w 0;
    Wire.Writer.string w path;
    Wire.Writer.varint w mode
  | Unlink { path } ->
    Wire.Writer.byte w 1;
    Wire.Writer.string w path
  | Mkdir { path; mode } ->
    Wire.Writer.byte w 2;
    Wire.Writer.string w path;
    Wire.Writer.varint w mode
  | Read { path; off; len } ->
    Wire.Writer.byte w 3;
    Wire.Writer.string w path;
    Wire.Writer.varint w off;
    Wire.Writer.varint w len
  | Write { path; off; data } ->
    Wire.Writer.byte w 4;
    Wire.Writer.string w path;
    Wire.Writer.varint w off;
    Wire.Writer.string w data
  | Stat { path } ->
    Wire.Writer.byte w 5;
    Wire.Writer.string w path
  | Readdir { path } ->
    Wire.Writer.byte w 6;
    Wire.Writer.string w path
  | Truncate { path; len } ->
    Wire.Writer.byte w 7;
    Wire.Writer.string w path;
    Wire.Writer.varint w len
  | Fsync { path } ->
    Wire.Writer.byte w 8;
    Wire.Writer.string w path
  | Bopen { path; block_size } ->
    Wire.Writer.byte w 9;
    Wire.Writer.string w path;
    Wire.Writer.varint w block_size
  | Bread { handle; lba; count } ->
    Wire.Writer.byte w 10;
    Wire.Writer.varint w handle;
    Wire.Writer.varint w lba;
    Wire.Writer.varint w count
  | Bwrite { handle; lba; data } ->
    Wire.Writer.byte w 11;
    Wire.Writer.varint w handle;
    Wire.Writer.varint w lba;
    Wire.Writer.string w data
  | Bclose { handle } ->
    Wire.Writer.byte w 12;
    Wire.Writer.varint w handle
  | Rename { from_path; to_path } ->
    Wire.Writer.byte w 13;
    Wire.Writer.string w from_path;
    Wire.Writer.string w to_path);
  Wire.Writer.contents w

let decode_request s =
  match
    let r = Wire.Reader.create s in
    match Wire.Reader.byte r with
    | 0 ->
      let path = Wire.Reader.string r in
      let mode = Wire.Reader.varint r in
      Create { path; mode }
    | 1 -> Unlink { path = Wire.Reader.string r }
    | 2 ->
      let path = Wire.Reader.string r in
      let mode = Wire.Reader.varint r in
      Mkdir { path; mode }
    | 3 ->
      let path = Wire.Reader.string r in
      let off = Wire.Reader.varint r in
      let len = Wire.Reader.varint r in
      Read { path; off; len }
    | 4 ->
      let path = Wire.Reader.string r in
      let off = Wire.Reader.varint r in
      let data = Wire.Reader.string r in
      Write { path; off; data }
    | 5 -> Stat { path = Wire.Reader.string r }
    | 6 -> Readdir { path = Wire.Reader.string r }
    | 7 ->
      let path = Wire.Reader.string r in
      let len = Wire.Reader.varint r in
      Truncate { path; len }
    | 8 -> Fsync { path = Wire.Reader.string r }
    | 9 ->
      let path = Wire.Reader.string r in
      let block_size = Wire.Reader.varint r in
      Bopen { path; block_size }
    | 10 ->
      let handle = Wire.Reader.varint r in
      let lba = Wire.Reader.varint r in
      let count = Wire.Reader.varint r in
      Bread { handle; lba; count }
    | 11 ->
      let handle = Wire.Reader.varint r in
      let lba = Wire.Reader.varint r in
      let data = Wire.Reader.string r in
      Bwrite { handle; lba; data }
    | 12 -> Bclose { handle = Wire.Reader.varint r }
    | 13 ->
      let from_path = Wire.Reader.string r in
      let to_path = Wire.Reader.string r in
      Rename { from_path; to_path }
    | n -> raise (Wire.Malformed (Printf.sprintf "bad request tag %d" n))
  with
  | r -> Ok r
  | exception Wire.Malformed m -> Error m

let encode_response resp =
  let w = Wire.Writer.create () in
  (match resp with
  | Ok_unit -> Wire.Writer.byte w 0
  | Ok_data d ->
    Wire.Writer.byte w 1;
    Wire.Writer.string w d
  | Ok_names names ->
    Wire.Writer.byte w 2;
    Wire.Writer.list w Wire.Writer.string names
  | Ok_stat { size; kind_dir; owner; mode } ->
    Wire.Writer.byte w 3;
    Wire.Writer.varint w size;
    Wire.Writer.bool w kind_dir;
    Wire.Writer.string w owner;
    Wire.Writer.varint w mode
  | Ok_handle h ->
    Wire.Writer.byte w 5;
    Wire.Writer.varint w h
  | Err m ->
    Wire.Writer.byte w 4;
    Wire.Writer.string w m);
  Wire.Writer.contents w

let decode_response s =
  match
    let r = Wire.Reader.create s in
    match Wire.Reader.byte r with
    | 0 -> Ok_unit
    | 1 -> Ok_data (Wire.Reader.string r)
    | 2 -> Ok_names (Wire.Reader.list r Wire.Reader.string)
    | 3 ->
      let size = Wire.Reader.varint r in
      let kind_dir = Wire.Reader.bool r in
      let owner = Wire.Reader.string r in
      let mode = Wire.Reader.varint r in
      Ok_stat { size; kind_dir; owner; mode }
    | 4 -> Err (Wire.Reader.string r)
    | 5 -> Ok_handle (Wire.Reader.varint r)
    | n -> raise (Wire.Malformed (Printf.sprintf "bad response tag %d" n))
  with
  | r -> Ok r
  | exception Wire.Malformed m -> Error m

let request_path = function
  | Create { path; _ }
  | Unlink { path }
  | Mkdir { path; _ }
  | Read { path; _ }
  | Write { path; _ }
  | Stat { path }
  | Readdir { path }
  | Truncate { path; _ }
  | Fsync { path } ->
    path
  | Bopen { path; _ } -> path
  | Rename { from_path; _ } -> from_path
  | Bread _ | Bwrite _ | Bclose _ -> "<handle>"
