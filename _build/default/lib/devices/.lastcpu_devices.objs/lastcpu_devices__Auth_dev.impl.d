lib/devices/auth_dev.ml: Char Hashtbl Int64 Lastcpu_bus Lastcpu_device Lastcpu_proto Lastcpu_sim List String
