lib/devices/ssd_proto.mli:
