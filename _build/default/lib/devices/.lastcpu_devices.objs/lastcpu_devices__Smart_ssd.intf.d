lib/devices/smart_ssd.mli: Lastcpu_bus Lastcpu_device Lastcpu_flash Lastcpu_fs Lastcpu_mem Lastcpu_proto
