lib/devices/console_dev.mli: Lastcpu_bus Lastcpu_device Lastcpu_mem Lastcpu_proto
