lib/devices/accel_dev.mli: Accel_proto Lastcpu_bus Lastcpu_device Lastcpu_mem Lastcpu_proto
