lib/devices/accel_dev.ml: Accel_proto Array Char Int64 Lastcpu_device Lastcpu_iommu Lastcpu_proto Lastcpu_sim Lastcpu_virtio Printf String
