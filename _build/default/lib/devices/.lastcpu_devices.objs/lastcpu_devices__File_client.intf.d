lib/devices/file_client.mli: Lastcpu_device Lastcpu_proto Ssd_proto
