lib/devices/memctl.ml: Hashtbl Int64 Lastcpu_bus Lastcpu_device Lastcpu_mem Lastcpu_proto Lastcpu_sim List Option String
