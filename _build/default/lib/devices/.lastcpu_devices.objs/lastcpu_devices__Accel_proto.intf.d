lib/devices/accel_proto.mli:
