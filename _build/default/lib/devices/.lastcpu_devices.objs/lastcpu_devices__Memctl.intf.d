lib/devices/memctl.mli: Lastcpu_bus Lastcpu_device Lastcpu_mem Lastcpu_proto
