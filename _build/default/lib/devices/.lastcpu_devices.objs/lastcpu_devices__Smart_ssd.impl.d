lib/devices/smart_ssd.ml: Buffer Hashtbl Int64 Lastcpu_bus Lastcpu_device Lastcpu_flash Lastcpu_fs Lastcpu_proto Lastcpu_sim Lastcpu_virtio List Option Ssd_proto String
