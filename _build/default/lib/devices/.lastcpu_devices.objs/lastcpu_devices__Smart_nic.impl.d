lib/devices/smart_nic.ml: Lastcpu_device Lastcpu_net Lastcpu_proto
