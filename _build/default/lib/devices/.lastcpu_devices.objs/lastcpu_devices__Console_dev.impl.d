lib/devices/console_dev.ml: Lastcpu_device Lastcpu_proto List String
