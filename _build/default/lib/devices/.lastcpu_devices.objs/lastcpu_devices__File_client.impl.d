lib/devices/file_client.ml: Hashtbl Int64 Lastcpu_device Lastcpu_proto Lastcpu_virtio List Printf Queue Smart_ssd Ssd_proto String
