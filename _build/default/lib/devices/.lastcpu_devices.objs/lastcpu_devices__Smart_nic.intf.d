lib/devices/smart_nic.mli: Lastcpu_bus Lastcpu_device Lastcpu_mem Lastcpu_net Lastcpu_proto
