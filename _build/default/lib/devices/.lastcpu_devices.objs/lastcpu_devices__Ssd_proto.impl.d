lib/devices/ssd_proto.ml: Lastcpu_proto Printf
