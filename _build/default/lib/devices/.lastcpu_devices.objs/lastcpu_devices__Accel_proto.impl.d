lib/devices/accel_proto.ml: Lastcpu_proto Printf
