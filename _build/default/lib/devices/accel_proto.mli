(** Job descriptions for the programmable accelerator.

    Jobs are submitted over the control plane ([App_message] tag
    ["job-submit"]); all input and output data stays in shared memory the
    submitter granted to the accelerator beforehand (the §2 flow, with a
    compute device instead of storage). *)

type job =
  | Checksum of { va : int64; len : int }
      (** FNV-1a over the region; result is the 64-bit digest *)
  | Word_count of { va : int64; len : int }
      (** whitespace-separated tokens; result is the count *)
  | Upper of { src : int64; dst : int64; len : int }
      (** ASCII uppercase transform from [src] into [dst] *)
  | Histogram of { va : int64; len : int; dst : int64 }
      (** 256 x u64 byte histogram written at [dst] *)

type outcome =
  | Value of int64  (** for Checksum / Word_count *)
  | Written of int  (** bytes written, for Upper / Histogram *)
  | Fault of string  (** the job faulted in the accelerator's IOMMU *)

val job_bytes : job -> int
(** Bytes the job touches (cost accounting). *)

val encode_job : job -> string
val decode_job : string -> (job, string) result
val encode_outcome : outcome -> string
val decode_outcome : string -> (outcome, string) result
