(** The smart NIC: a programmable network device that hosts application
    logic (§3: the KVS "operations ... are processed in a smart-NIC").

    The NIC bridges two worlds:
    - the simulated network ({!Lastcpu_net.Netsim}), where remote clients
      send requests;
    - the CPU-less system, where the hosted application uses the device
      framework to discover and consume services (files on the SSD, memory
      from the controller).

    It announces a {!Lastcpu_proto.Types.Socket_service} so other devices
    can discover the network path, and hands received frames to the hosted
    application's packet handler. *)

type t

val create :
  Lastcpu_bus.Sysbus.t ->
  mem:Lastcpu_mem.Physmem.t ->
  net:Lastcpu_net.Netsim.t ->
  name:string ->
  ?auto_start:bool ->
  unit ->
  t
(** [auto_start] defaults to [true]; pass [false] when a hosted application
    wants to add its own services before the device announces itself (call
    [Device.start (device t)] afterwards). *)

val device : t -> Lastcpu_device.Device.t
val id : t -> Lastcpu_proto.Types.device_id

val endpoint_address : t -> int
(** Network address of this NIC on the simulated switch. *)

val on_packet : t -> (src:int -> string -> unit) -> unit
(** Install the hosted application's receive path. *)

val send_packet : t -> dst:int -> string -> unit

val packets_received : t -> int
val packets_sent : t -> int
