module Wire = Lastcpu_proto.Wire

type job =
  | Checksum of { va : int64; len : int }
  | Word_count of { va : int64; len : int }
  | Upper of { src : int64; dst : int64; len : int }
  | Histogram of { va : int64; len : int; dst : int64 }

type outcome = Value of int64 | Written of int | Fault of string

let job_bytes = function
  | Checksum { len; _ } | Word_count { len; _ } -> len
  | Upper { len; _ } -> 2 * len
  | Histogram { len; _ } -> len + (256 * 8)

let encode_job j =
  let w = Wire.Writer.create () in
  (match j with
  | Checksum { va; len } ->
    Wire.Writer.byte w 0;
    Wire.Writer.int64 w va;
    Wire.Writer.varint w len
  | Word_count { va; len } ->
    Wire.Writer.byte w 1;
    Wire.Writer.int64 w va;
    Wire.Writer.varint w len
  | Upper { src; dst; len } ->
    Wire.Writer.byte w 2;
    Wire.Writer.int64 w src;
    Wire.Writer.int64 w dst;
    Wire.Writer.varint w len
  | Histogram { va; len; dst } ->
    Wire.Writer.byte w 3;
    Wire.Writer.int64 w va;
    Wire.Writer.varint w len;
    Wire.Writer.int64 w dst);
  Wire.Writer.contents w

let decode_job s =
  match
    let r = Wire.Reader.create s in
    match Wire.Reader.byte r with
    | 0 ->
      let va = Wire.Reader.int64 r in
      let len = Wire.Reader.varint r in
      Checksum { va; len }
    | 1 ->
      let va = Wire.Reader.int64 r in
      let len = Wire.Reader.varint r in
      Word_count { va; len }
    | 2 ->
      let src = Wire.Reader.int64 r in
      let dst = Wire.Reader.int64 r in
      let len = Wire.Reader.varint r in
      Upper { src; dst; len }
    | 3 ->
      let va = Wire.Reader.int64 r in
      let len = Wire.Reader.varint r in
      let dst = Wire.Reader.int64 r in
      Histogram { va; len; dst }
    | n -> raise (Wire.Malformed (Printf.sprintf "bad job tag %d" n))
  with
  | j -> Ok j
  | exception Wire.Malformed m -> Error m

let encode_outcome o =
  let w = Wire.Writer.create () in
  (match o with
  | Value v ->
    Wire.Writer.byte w 0;
    Wire.Writer.int64 w v
  | Written n ->
    Wire.Writer.byte w 1;
    Wire.Writer.varint w n
  | Fault m ->
    Wire.Writer.byte w 2;
    Wire.Writer.string w m);
  Wire.Writer.contents w

let decode_outcome s =
  match
    let r = Wire.Reader.create s in
    match Wire.Reader.byte r with
    | 0 -> Value (Wire.Reader.int64 r)
    | 1 -> Written (Wire.Reader.varint r)
    | 2 -> Fault (Wire.Reader.string r)
    | n -> raise (Wire.Malformed (Printf.sprintf "bad outcome tag %d" n))
  with
  | o -> Ok o
  | exception Wire.Malformed m -> Error m
