(** A programmable accelerator device (FPGA/GPU-class).

    The class of hardware the paper's whole argument starts from (§1):
    application logic runs here, not on a CPU. The device exposes a
    {!Lastcpu_proto.Types.Compute_service}; clients allocate shared memory,
    [grant] it to the accelerator, then submit {!Accel_proto} jobs over the
    control plane. The accelerator reads and writes the data exclusively
    through its own IOMMU view — a job over memory that was never granted
    faults *on the accelerator* and is reported back as a job fault (§4).

    Job latency is [accel_setup_ns + bytes x accel_byte_ns]. *)

type t

val create : Lastcpu_bus.Sysbus.t -> mem:Lastcpu_mem.Physmem.t -> name:string -> unit -> t

val device : t -> Lastcpu_device.Device.t
val id : t -> Lastcpu_proto.Types.device_id

val jobs_run : t -> int
val bytes_processed : t -> int
val job_faults : t -> int

(** {1 Client side} *)

val submit :
  Lastcpu_device.Device.t ->
  accel:Lastcpu_proto.Types.device_id ->
  pasid:int ->
  Accel_proto.job ->
  (Accel_proto.outcome -> unit) ->
  unit
(** Submit a job from a client device; the continuation receives the
    outcome when the accelerator answers. *)

val run_locally :
  Lastcpu_device.Device.t ->
  pasid:int ->
  Accel_proto.job ->
  (Accel_proto.outcome -> unit) ->
  unit
(** Execute the same job on the *submitting* device's embedded core
    (per-byte cost [wimpy_byte_ns]): the comparator for the offload
    crossover experiment (T11). *)
