(** The paper's §3 end-to-end example, orchestrated and checkable.

    [run] boots a system, provisions the data directory on the smart SSD,
    launches the KVS application on the smart NIC (which performs the
    Figure-2 initialization sequence against the SSD, the memory controller
    and the bus), then optionally drives a few operations.

    [figure2_steps] extracts from the run trace the seven-step message
    sequence of Figure 2, in order, so tests and the bench harness can
    compare it against the paper. *)

type outcome = {
  system : System.t;
  app : Lastcpu_kv.Kv_app.t;
  boot_ns : int64;  (** virtual time when the app finished initialization *)
}

val run :
  ?spec:System.spec ->
  ?log_path:string ->
  ?smoke_ops:int ->
  unit ->
  (outcome, string) result
(** [smoke_ops] (default 3) put/get pairs executed after bring-up to prove
    the data path. *)

type step = {
  n : int;  (** 1-7, paper numbering *)
  description : string;
  kind : string;  (** trace kind, e.g. "msg.discover-req" *)
  at_ns : int64;
}

val figure2_steps : outcome -> step list
(** The seven steps in trace order; fewer than seven indicates a broken
    bring-up (tests assert all seven, in order). *)

val pp_steps : Format.formatter -> step list -> unit
