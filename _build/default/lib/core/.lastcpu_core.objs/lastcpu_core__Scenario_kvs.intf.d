lib/core/scenario_kvs.mli: Format Lastcpu_kv System
