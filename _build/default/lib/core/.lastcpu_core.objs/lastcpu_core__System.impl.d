lib/core/system.ml: Buffer Int64 Lastcpu_bus Lastcpu_device Lastcpu_devices Lastcpu_flash Lastcpu_mem Lastcpu_net Lastcpu_proto Lastcpu_sim List Option Printf String
