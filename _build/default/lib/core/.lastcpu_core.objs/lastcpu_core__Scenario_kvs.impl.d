lib/core/scenario_kvs.ml: Format Lastcpu_device Lastcpu_devices Lastcpu_fs Lastcpu_kv Lastcpu_proto Lastcpu_sim List Printf String System
