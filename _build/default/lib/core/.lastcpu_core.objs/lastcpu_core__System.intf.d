lib/core/system.mli: Lastcpu_bus Lastcpu_devices Lastcpu_flash Lastcpu_mem Lastcpu_net Lastcpu_proto Lastcpu_sim
