(** Address arithmetic shared by the memory subsystem and the IOMMU. *)

val page_bits : int
(** 12: 4 KiB pages/frames. *)

val page_size : int64
val page_mask : int64

val is_page_aligned : int64 -> bool
val align_up : int64 -> int64
(** Round a byte count or address up to the next page boundary. *)

val align_down : int64 -> int64
val pages_of_bytes : int64 -> int
(** Number of pages covering [bytes] ([>= 1] for any positive count). *)

val page_of_addr : int64 -> int64
(** Page number containing the address. *)

val addr_of_page : int64 -> int64
val offset_in_page : int64 -> int
