lib/mem/layout.ml: Int64
