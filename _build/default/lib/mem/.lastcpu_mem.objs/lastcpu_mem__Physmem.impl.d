lib/mem/physmem.ml: Bytes Char Hashtbl Int64 Layout Printf String
