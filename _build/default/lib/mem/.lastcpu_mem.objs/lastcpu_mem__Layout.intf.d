lib/mem/layout.mli:
