lib/mem/physmem.mli:
