lib/mem/buddy.mli:
