lib/mem/buddy.ml: Array Hashtbl Int64 Layout
