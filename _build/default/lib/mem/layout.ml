let page_bits = 12
let page_size = Int64.shift_left 1L page_bits
let page_mask = Int64.sub page_size 1L

let is_page_aligned a = Int64.logand a page_mask = 0L
let align_up a = Int64.logand (Int64.add a page_mask) (Int64.lognot page_mask)
let align_down a = Int64.logand a (Int64.lognot page_mask)

let pages_of_bytes bytes =
  assert (bytes >= 0L);
  Int64.to_int (Int64.shift_right_logical (align_up bytes) page_bits)

let page_of_addr a = Int64.shift_right_logical a page_bits
let addr_of_page p = Int64.shift_left p page_bits
let offset_in_page a = Int64.to_int (Int64.logand a page_mask)
