(* Shared alias so the IOMMU modules use the protocol's permission type
   without repeating the full path everywhere. *)
type t = Lastcpu_proto.Types.perm

let subsumes = Lastcpu_proto.Types.perm_subsumes
let to_string = Lastcpu_proto.Types.perm_to_string
