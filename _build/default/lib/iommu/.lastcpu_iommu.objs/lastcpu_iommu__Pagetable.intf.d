lib/iommu/pagetable.mli: Proto_perm
