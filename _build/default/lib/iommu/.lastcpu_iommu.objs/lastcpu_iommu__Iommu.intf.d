lib/iommu/iommu.mli: Proto_perm
