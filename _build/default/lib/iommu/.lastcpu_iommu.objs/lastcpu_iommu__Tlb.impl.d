lib/iommu/tlb.ml: Array Int64 Lastcpu_proto Proto_perm
