lib/iommu/pagetable.ml: Array Int64 Lastcpu_mem Lastcpu_proto Proto_perm
