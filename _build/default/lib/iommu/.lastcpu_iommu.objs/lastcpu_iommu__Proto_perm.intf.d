lib/iommu/proto_perm.mli: Lastcpu_proto
