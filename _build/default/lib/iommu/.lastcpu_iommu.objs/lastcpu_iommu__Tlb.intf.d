lib/iommu/tlb.mli: Proto_perm
