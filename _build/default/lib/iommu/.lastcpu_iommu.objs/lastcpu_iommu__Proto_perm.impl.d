lib/iommu/proto_perm.ml: Lastcpu_proto
