lib/iommu/iommu.ml: Hashtbl Int64 Lastcpu_mem Lastcpu_proto Pagetable Proto_perm Tlb
