module Wire = Lastcpu_proto.Wire

type op =
  | Subscribe of string
  | Unsubscribe of string
  | Publish of { topic : string; payload : string; retain : bool }

type request = { corr : int; op : op }

type reply = Acked of int | Rejected of string

type frame =
  | Response of { corr : int; reply : reply }
  | Event of { topic : string; payload : string }

let encode_request { corr; op } =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w corr;
  (match op with
  | Subscribe topic ->
    Wire.Writer.byte w 0;
    Wire.Writer.string w topic
  | Unsubscribe topic ->
    Wire.Writer.byte w 1;
    Wire.Writer.string w topic
  | Publish { topic; payload; retain } ->
    Wire.Writer.byte w 2;
    Wire.Writer.string w topic;
    Wire.Writer.string w payload;
    Wire.Writer.bool w retain);
  Wire.Writer.contents w

let decode_request s =
  match
    let r = Wire.Reader.create s in
    let corr = Wire.Reader.varint r in
    let op =
      match Wire.Reader.byte r with
      | 0 -> Subscribe (Wire.Reader.string r)
      | 1 -> Unsubscribe (Wire.Reader.string r)
      | 2 ->
        let topic = Wire.Reader.string r in
        let payload = Wire.Reader.string r in
        let retain = Wire.Reader.bool r in
        Publish { topic; payload; retain }
      | n -> raise (Wire.Malformed (Printf.sprintf "bad op %d" n))
    in
    { corr; op }
  with
  | v -> Ok v
  | exception Wire.Malformed m -> Error m

let encode_frame f =
  let w = Wire.Writer.create () in
  (match f with
  | Response { corr; reply } -> (
    Wire.Writer.byte w 0;
    Wire.Writer.varint w corr;
    match reply with
    | Acked n ->
      Wire.Writer.byte w 0;
      Wire.Writer.varint w n
    | Rejected m ->
      Wire.Writer.byte w 1;
      Wire.Writer.string w m)
  | Event { topic; payload } ->
    Wire.Writer.byte w 1;
    Wire.Writer.string w topic;
    Wire.Writer.string w payload);
  Wire.Writer.contents w

let decode_frame s =
  match
    let r = Wire.Reader.create s in
    match Wire.Reader.byte r with
    | 0 ->
      let corr = Wire.Reader.varint r in
      let reply =
        match Wire.Reader.byte r with
        | 0 -> Acked (Wire.Reader.varint r)
        | 1 -> Rejected (Wire.Reader.string r)
        | n -> raise (Wire.Malformed (Printf.sprintf "bad reply %d" n))
      in
      Response { corr; reply }
    | 1 ->
      let topic = Wire.Reader.string r in
      let payload = Wire.Reader.string r in
      Event { topic; payload }
    | n -> raise (Wire.Malformed (Printf.sprintf "bad frame %d" n))
  with
  | v -> Ok v
  | exception Wire.Malformed m -> Error m

let topic_matches ~pattern topic =
  let n = String.length pattern in
  if n > 0 && pattern.[n - 1] = '*' then begin
    let prefix = String.sub pattern 0 (n - 1) in
    String.length topic >= String.length prefix
    && String.equal (String.sub topic 0 (String.length prefix)) prefix
  end
  else String.equal pattern topic
