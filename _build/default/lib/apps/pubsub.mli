(** A pub/sub broker hosted on a smart NIC.

    A second complete application offloaded to a device (§1: "entire
    applications are offloaded"): remote machines subscribe to topics
    (exact or ['*']-suffix prefix patterns) and publish messages; the
    broker fans events out over the simulated network. Retained messages
    are replayed to new subscribers, MQTT-style.

    The broker is deliberately CPU-free end to end: frames arrive at the
    NIC, matching and fan-out run in the NIC's runtime, and events leave
    through the same port. *)

type t

val launch : nic:Lastcpu_devices.Smart_nic.t -> ?start_device:bool -> unit -> t
(** Install the broker as the NIC's packet handler; reachability is
    advertised by the NIC's socket service. [start_device] (default true)
    also starts the NIC device. *)

val subscriptions : t -> int
(** Live (address, pattern) pairs. *)

val topics_retained : t -> int
val published : t -> int
val events_sent : t -> int
