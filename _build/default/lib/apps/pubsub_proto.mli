(** Wire protocol of the pub/sub broker (a second NIC-hosted application,
    demonstrating that *entire applications* — plural — live on devices). *)

type op =
  | Subscribe of string  (** topic, or prefix ending in '*' *)
  | Unsubscribe of string
  | Publish of { topic : string; payload : string; retain : bool }

type request = { corr : int; op : op }

type reply =
  | Acked of int  (** subscribers reached (for Publish) / 0 for sub ops *)
  | Rejected of string

type frame =
  | Response of { corr : int; reply : reply }
  | Event of { topic : string; payload : string }
      (** pushed to subscribers, no correlation *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_frame : frame -> string
val decode_frame : string -> (frame, string) result

val topic_matches : pattern:string -> string -> bool
(** ["a/b"] matches exactly; a trailing ['*'] matches any suffix:
    ["sensors/*"] matches ["sensors/1/temp"]. *)
