lib/apps/pubsub.mli: Lastcpu_devices
