lib/apps/pubsub_proto.mli:
