lib/apps/pubsub_proto.ml: Lastcpu_proto Printf String
