lib/apps/pubsub.ml: Hashtbl Lastcpu_device Lastcpu_devices List Pubsub_proto String
