lib/device/device.ml: Hashtbl Int64 Lastcpu_bus Lastcpu_iommu Lastcpu_mem Lastcpu_proto Lastcpu_sim Lastcpu_virtio List Option Printf String
