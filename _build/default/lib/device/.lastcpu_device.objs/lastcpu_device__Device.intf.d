lib/device/device.mli: Lastcpu_bus Lastcpu_iommu Lastcpu_mem Lastcpu_proto Lastcpu_sim Lastcpu_virtio
