(* Quickstart: build a CPU-less system, boot it, run the paper's Figure-2
   initialization sequence, and do a few key-value operations.

   Run with:  dune exec examples/quickstart.exe *)

module Scenario = Lastcpu_core.Scenario_kvs
module System = Lastcpu_core.System
module Kv_app = Lastcpu_kv.Kv_app
module Kv_proto = Lastcpu_kv.Kv_proto

let () =
  print_endline "== The Last CPU: quickstart ==";
  print_endline "";
  (* Scenario_kvs.run builds the system of Figure 1, boots every device
     (self-test + Device_alive), provisions /kv on the smart SSD, and
     launches the KVS application on the smart NIC. The application runs
     the seven-step Figure-2 sequence against the SSD, the memory
     controller and the bus. *)
  match Scenario.run () with
  | Error e ->
    prerr_endline ("bring-up failed: " ^ e);
    exit 1
  | Ok outcome ->
    let system = outcome.Scenario.system in
    Printf.printf "system is live at %Ld virtual ns; topology:\n\n"
      outcome.Scenario.boot_ns;
    print_string (System.topology system);
    print_endline "\nFigure-2 initialization sequence as observed on the bus:";
    Format.printf "%a" Scenario.pp_steps (Scenario.figure2_steps outcome);
    (* A few operations through the full data plane: NIC-hosted store,
       write-ahead log on the SSD, no CPU anywhere. *)
    print_endline "\nKV operations (NIC-hosted store, SSD-backed WAL):";
    let app = outcome.Scenario.app in
    let show key reply =
      Format.printf "  %-28s -> %s@." key reply
    in
    Kv_app.local_op app (Kv_proto.Put ("greeting", "hello, decentralized world"))
      (fun reply ->
        show "put greeting"
          (match reply with Kv_proto.Done -> "ok" | _ -> "FAILED"));
    System.run_until_idle system;
    Kv_app.local_op app (Kv_proto.Get "greeting") (fun reply ->
        show "get greeting"
          (match reply with
          | Kv_proto.Value (Some v) -> v
          | _ -> "FAILED"));
    System.run_until_idle system;
    Kv_app.local_op app (Kv_proto.Del "greeting") (fun reply ->
        show "del greeting"
          (match reply with Kv_proto.Deleted true -> "deleted" | _ -> "FAILED"));
    System.run_until_idle system;
    Printf.printf "\nvirtual time elapsed: %Ld ns; done.\n"
      (Lastcpu_sim.Engine.now (System.engine system))
