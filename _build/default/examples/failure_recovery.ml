(* §4 Error Handling, end to end: a storage device dies mid-operation; the
   bus detects it and broadcasts Device_failed; the application re-runs the
   Figure-2 sequence against the revived device and recovers its state from
   the surviving write-ahead log.

   Run with:  dune exec examples/failure_recovery.exe *)

module Scenario = Lastcpu_core.Scenario_kvs
module System = Lastcpu_core.System
module Engine = Lastcpu_sim.Engine
module Sysbus = Lastcpu_bus.Sysbus
module Device = Lastcpu_device.Device
module Smart_nic = Lastcpu_devices.Smart_nic
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Memctl = Lastcpu_devices.Memctl
module File_client = Lastcpu_devices.File_client
module Message = Lastcpu_proto.Message
module Store = Lastcpu_kv.Store
module Kv_app = Lastcpu_kv.Kv_app
module Kv_proto = Lastcpu_kv.Kv_proto

let () =
  print_endline "== failure_recovery: losing and reviving the smart SSD ==";
  match Scenario.run ~smoke_ops:0 () with
  | Error e ->
    prerr_endline ("bring-up failed: " ^ e);
    exit 1
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let engine = System.engine system in
    let bus = System.bus system in
    let app = outcome.Scenario.app in
    let ssd = System.ssd system 0 in
    let nic_dev = Smart_nic.device (System.nic system 0) in
    (* Populate some state. *)
    let applied = ref 0 in
    for i = 1 to 25 do
      Kv_app.local_op app
        (Kv_proto.Put (Printf.sprintf "account-%02d" i, Printf.sprintf "$%d00" i))
        (fun reply -> if reply = Kv_proto.Done then incr applied)
    done;
    System.run_until_idle system;
    Printf.printf "populated %d records through the data plane\n" !applied;

    (* Watch for the failure broadcast at the NIC (the consumer). *)
    let detected_at = ref None in
    Device.set_app_handler nic_dev (fun msg ->
        match msg.Message.payload with
        | Message.Device_failed { device } when device = Smart_ssd.id ssd ->
          if !detected_at = None then detected_at := Some (Engine.now engine)
        | _ -> ());

    let t_fail = Engine.now engine in
    Printf.printf "\n[%Ld ns] injecting hard failure of ssd0\n" t_fail;
    Sysbus.fail_device bus (Smart_ssd.id ssd);
    System.run_until_idle system;
    (match !detected_at with
    | Some t ->
      Printf.printf "[%Ld ns] NIC received Device_failed broadcast (+%Ld ns)\n" t
        (Int64.sub t t_fail)
    | None -> print_endline "NIC never notified (BUG)");

    (* Operations now fail over the control plane (opens bounce) and the
       data plane falls silent (doorbells to a dead device are dropped). *)
    let bounce = ref None in
    File_client.connect nic_dev
      ~memctl:(Memctl.id (System.memctl system))
      ~pasid:(System.fresh_pasid system)
      ~shm_va:0xA000_0000L ~user:"kvs" ~path_hint:"/kv/data.log" (fun r ->
        bounce := Some r);
    System.run_until_idle system;
    (match !bounce with
    | Some (Error e) -> Printf.printf "reconnect while dead: refused (%s)\n" e
    | Some (Ok _) -> print_endline "reconnect while dead: accepted (BUG)"
    | None -> print_endline "reconnect while dead: no answer");

    (* Operator revives the device (reset); it re-announces itself. *)
    let t_revive = Engine.now engine in
    Printf.printf "\n[%Ld ns] operator resets ssd0; device re-announces\n" t_revive;
    Sysbus.revive_device bus (Smart_ssd.id ssd);
    Device.reannounce (Smart_ssd.device ssd);
    System.run_until_idle system;

    (* The application re-runs the Figure-2 sequence and replays the WAL. *)
    let recovered = ref None in
    File_client.connect nic_dev
      ~memctl:(Memctl.id (System.memctl system))
      ~pasid:(System.fresh_pasid system)
      ~shm_va:0xB000_0000L ~user:"kvs" ~path_hint:"/kv/data.log" (fun r ->
        match r with
        | Error e ->
          prerr_endline ("reconnect failed: " ^ e);
          exit 1
        | Ok fc ->
          Lastcpu_kv.File_backend.create fc ~path:"/kv/data.log" (fun r ->
              match r with
              | Error e ->
                prerr_endline ("backend: " ^ e);
                exit 1
              | Ok fb ->
                let store = Store.create (Lastcpu_kv.File_backend.backend fb) in
                Store.recover store (fun r ->
                    match r with
                    | Error e ->
                      prerr_endline ("recover: " ^ e);
                      exit 1
                    | Ok n -> recovered := Some (n, store))));
    System.run_until_idle system;
    (match !recovered with
    | None -> print_endline "recovery never completed (BUG)"
    | Some (n, store) ->
      let t_done = Engine.now engine in
      Printf.printf "[%Ld ns] recovery complete: %d WAL records replayed (+%Ld ns)\n"
        t_done n (Int64.sub t_done t_revive);
      Store.get store "account-13" (fun v ->
          Printf.printf "spot check account-13 = %s\n"
            (Option.value v ~default:"MISSING")));
    print_endline "\ndone: the failure model needed no CPU — detection by the";
    print_endline "bus, recovery by the consumer device itself (paper S4)."
