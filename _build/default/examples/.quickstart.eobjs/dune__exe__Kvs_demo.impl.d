examples/kvs_demo.ml: Format Hashtbl Int64 Lastcpu_bus Lastcpu_core Lastcpu_devices Lastcpu_flash Lastcpu_kv Lastcpu_net Lastcpu_sim Printf String
