examples/kvs_demo.mli:
