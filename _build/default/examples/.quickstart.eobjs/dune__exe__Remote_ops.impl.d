examples/remote_ops.ml: Hashtbl Lastcpu_core Lastcpu_device Lastcpu_devices Lastcpu_net Lastcpu_proto Option Printf Queue String
