examples/quickstart.ml: Format Lastcpu_core Lastcpu_kv Lastcpu_sim Printf
