examples/remote_ops.mli:
