examples/quickstart.mli:
