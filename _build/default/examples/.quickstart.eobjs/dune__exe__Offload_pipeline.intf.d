examples/offload_pipeline.mli:
