(* §4 System Maintenance: "Remote operation would be the best option ...
   The logs could be accessed remotely by another machine over the network
   through a remote access service. User authentication can be performed by
   an authentication service running on any device."

   This example builds exactly that: devices log to the console device; a
   tiny management gateway hosted on the smart NIC exposes a text protocol
   to the network; a remote operator machine authenticates (auth device),
   then pulls the logs (console device) — no CPU anywhere.

   Run with:  dune exec examples/remote_ops.exe *)

module System = Lastcpu_core.System
module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Device = Lastcpu_device.Device
module Smart_nic = Lastcpu_devices.Smart_nic
module Console_dev = Lastcpu_devices.Console_dev
module Auth_dev = Lastcpu_devices.Auth_dev
module Netsim = Lastcpu_net.Netsim

(* The management gateway: a NIC-hosted app relaying a line-oriented
   protocol ("AUTH user pass" / "LOGS n") to the auth and console
   services. *)
let install_gateway nic ~auth_id ~console_id =
  let dev = Smart_nic.device nic in
  let sessions : (int, string) Hashtbl.t = Hashtbl.create 4 in
  Smart_nic.on_packet nic (fun ~src line ->
      let respond s = Smart_nic.send_packet nic ~dst:src s in
      match String.split_on_char ' ' line with
      | [ "AUTH"; user; pass ] ->
        Device.request dev ~dst:(Types.Device auth_id)
          (Message.Auth_request { user; credential = pass })
          (fun p ->
            match p with
            | Message.Auth_response { ok = true; _ } ->
              Hashtbl.replace sessions src user;
              respond ("OK welcome, " ^ user)
            | _ -> respond "ERR bad credentials")
      | "LOGS" :: n :: _ -> (
        match Hashtbl.find_opt sessions src with
        | None -> respond "ERR authenticate first"
        | Some _ ->
          Device.request dev ~dst:(Types.Device console_id)
            (Message.App_message { tag = "log-read"; body = n })
            (fun p ->
              match p with
              | Message.App_message { tag = "log-data"; body } ->
                respond ("OK\n" ^ body)
              | _ -> respond "ERR console unavailable"))
      | _ -> respond "ERR unknown command")

let () =
  print_endline "== remote_ops: data-center maintenance without a CPU ==";
  let spec =
    {
      System.default_spec with
      with_auth = true;
      with_console = true;
      users = [ ("operator", "hunter2") ];
    }
  in
  let system = System.build ~spec () in
  (match System.boot system with Ok () -> () | Error e -> failwith e);
  let nic = System.nic system 0 in
  let console = Option.get (System.console system) in
  let auth = Option.get (System.auth system) in
  install_gateway nic ~auth_id:(Auth_dev.id auth) ~console_id:(Console_dev.id console);

  (* Devices log operational events to the console over the bus. *)
  let log_from dev line =
    Device.send dev
      ~dst:(Types.Device (Console_dev.id console))
      (Message.App_message { tag = "log"; body = line })
  in
  let ssd_dev = Lastcpu_devices.Smart_ssd.device (System.ssd system 0) in
  let nic_dev = Smart_nic.device nic in
  log_from ssd_dev "ssd0: gc pass complete, wear skew 3";
  log_from ssd_dev "ssd0: 2 connections active";
  log_from nic_dev "nic0: kv service announced";
  log_from nic_dev "nic0: 812 ops served this interval";
  System.run_until_idle system;
  Printf.printf "console collected %d log lines from devices\n\n"
    (Console_dev.lines_received console);

  (* The remote operator machine. *)
  let net = System.net system in
  let operator = Netsim.endpoint net ~name:"operator-laptop" in
  let pending = Queue.create () in
  Netsim.set_receiver operator (fun ~src:_ reply ->
      let what = Queue.pop pending in
      Printf.printf "[operator] %-22s -> %s\n" what
        (String.concat "\n             " (String.split_on_char '\n' reply)));
  let send what line =
    Queue.push what pending;
    Netsim.send operator ~dst:(Smart_nic.endpoint_address nic) line
  in
  (* Unauthenticated access is refused; then login and read the logs. *)
  send "LOGS (no auth)" "LOGS 10";
  System.run_until_idle system;
  send "AUTH (wrong password)" "AUTH operator wrong";
  System.run_until_idle system;
  send "AUTH" "AUTH operator hunter2";
  System.run_until_idle system;
  send "LOGS 3" "LOGS 3";
  System.run_until_idle system;
  print_endline "\ndone: authentication by the auth device, logs from the";
  print_endline "console device, transport by the NIC — cooperation of";
  print_endline "self-managing devices, exactly as §4 sketches."
