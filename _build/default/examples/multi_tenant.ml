(* Multi-tenancy on shared devices: two applications with separate address
   spaces (PASIDs) and separate users share the same NIC and SSD. The IOMMU
   keeps their memory apart; the SSD's file service keeps their files apart;
   a deliberate cross-tenant access attempt faults on the device.

   Run with:  dune exec examples/multi_tenant.exe *)

module System = Lastcpu_core.System
module Sysbus = Lastcpu_bus.Sysbus
module Device = Lastcpu_device.Device
module Smart_nic = Lastcpu_devices.Smart_nic
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Memctl = Lastcpu_devices.Memctl
module File_client = Lastcpu_devices.File_client
module Fs = Lastcpu_fs.Fs
module Dma = Lastcpu_virtio.Dma
module Iommu = Lastcpu_iommu.Iommu
module Types = Lastcpu_proto.Types

let () =
  print_endline "== multi_tenant: two applications, one set of devices ==";
  let system = System.build () in
  let fs = Smart_ssd.fs (System.ssd system 0) in
  (* Provision per-tenant directories (deployment step). *)
  List.iter
    (fun (dir, owner) ->
      (match Fs.mkdir fs ~user:"root" ~mode:0o755 dir with
      | Ok () -> ()
      | Error e -> failwith (Fs.error_to_string e));
      match Fs.chown fs ~user:"root" dir ~owner with
      | Ok () -> ()
      | Error e -> failwith (Fs.error_to_string e))
    [ ("/tenant-a", "alice"); ("/tenant-b", "bob") ];
  (match System.boot system with
  | Ok () -> ()
  | Error e -> failwith e);
  print_endline "booted; tenants alice and bob share nic0 + ssd0";

  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let pasid_a = System.fresh_pasid system in
  let pasid_b = System.fresh_pasid system in

  (* Each tenant brings up its own file-service connection (its own
     Figure-2 sequence, its own shared memory, its own VIRTIO queue). *)
  let fc_a = ref None and fc_b = ref None in
  File_client.connect dev ~memctl:mc ~pasid:pasid_a ~shm_va:0x4000_0000L
    ~user:"alice" ~path_hint:"/tenant-a/data" (fun r -> fc_a := Result.to_option r);
  File_client.connect dev ~memctl:mc ~pasid:pasid_b ~shm_va:0x5000_0000L
    ~user:"bob" ~path_hint:"/tenant-b/data" (fun r -> fc_b := Result.to_option r);
  System.run_until_idle system;
  let a = Option.get !fc_a and b = Option.get !fc_b in
  Printf.printf "alice: connection %d, pasid %d\n" (File_client.connection a) pasid_a;
  Printf.printf "bob:   connection %d, pasid %d\n" (File_client.connection b) pasid_b;

  (* Tenants work independently through the data plane. *)
  File_client.create a "/tenant-a/data" (fun _ -> ());
  File_client.create b "/tenant-b/data" (fun _ -> ());
  System.run_until_idle system;
  File_client.write a "/tenant-a/data" ~off:0 "alice's ledger" (fun _ -> ());
  File_client.write b "/tenant-b/data" ~off:0 "bob's ledger" (fun _ -> ());
  System.run_until_idle system;

  (* 1. File isolation: bob cannot read alice's file (mode 0644 but the
     directory is 0755 owned by alice; tighten the file itself). *)
  (match Fs.chmod fs ~user:"root" "/tenant-a/data" ~mode:0o600 with
  | Ok () -> ()
  | Error e -> failwith (Fs.error_to_string e));
  let steal = ref None in
  File_client.read b "/tenant-a/data" ~off:0 ~len:16 (fun r -> steal := Some r);
  System.run_until_idle system;
  (match !steal with
  | Some (Error e) -> Printf.printf "bob reads alice's file: DENIED (%s)\n" e
  | Some (Ok _) -> print_endline "bob reads alice's file: ALLOWED (BUG)"
  | None -> print_endline "no answer (BUG)");

  (* 2. Memory isolation: bob's PASID has no mapping for alice's shared
     memory; the IOMMU faults the access on the device. *)
  let dma_b = Device.dma dev ~pasid:pasid_b in
  (match Dma.read_u8 dma_b 0x4000_0000L with
  | _ -> print_endline "bob reads alice's shm: ALLOWED (BUG)"
  | exception Dma.Dma_fault f ->
    Printf.printf "bob reads alice's shm: IOMMU FAULT (pasid=%d va=0x%Lx %s)\n"
      f.Iommu.pasid f.Iommu.va
      (match f.Iommu.reason with
      | Iommu.Not_mapped -> "not-mapped"
      | Iommu.Protection -> "protection"));

  (* 3. And both tenants still work fine afterwards. *)
  let ra = ref None and rb = ref None in
  File_client.read a "/tenant-a/data" ~off:0 ~len:14 (fun r -> ra := Result.to_option r);
  File_client.read b "/tenant-b/data" ~off:0 ~len:12 (fun r -> rb := Result.to_option r);
  System.run_until_idle system;
  Printf.printf "alice still reads her data: %S\n" (Option.value !ra ~default:"FAIL");
  Printf.printf "bob still reads his data:   %S\n" (Option.value !rb ~default:"FAIL");

  (* Teardown: close both connections; the memory controller reclaims. *)
  let closed = ref 0 in
  File_client.close a (fun () -> incr closed);
  File_client.close b (fun () -> incr closed);
  System.run_until_idle system;
  Printf.printf "connections closed: %d; DRAM pages in use: %d\n" !closed
    (Memctl.used_pages (System.memctl system));
  print_endline "done: isolation held on both the memory and the file axis."
