(* Offload pipeline: the paper's opening claim in action. An application on
   the smart NIC stages data in shared memory, grants it to a programmable
   accelerator, and offloads computation — comparing against running the
   same kernels on the NIC's own embedded (wimpy) core. The crossover is
   exactly the economics §1 describes.

   Run with:  dune exec examples/offload_pipeline.exe *)

module System = Lastcpu_core.System
module Engine = Lastcpu_sim.Engine
module Types = Lastcpu_proto.Types
module Device = Lastcpu_device.Device
module Smart_nic = Lastcpu_devices.Smart_nic
module Memctl = Lastcpu_devices.Memctl
module Accel_dev = Lastcpu_devices.Accel_dev
module Accel_proto = Lastcpu_devices.Accel_proto
module Dma = Lastcpu_virtio.Dma
module Rng = Lastcpu_sim.Rng

let () =
  print_endline "== offload_pipeline: NIC-resident app + accelerator ==";
  let spec = { System.default_spec with System.accel_count = 1 } in
  let system = System.build ~spec () in
  (match System.boot system with Ok () -> () | Error e -> failwith e);
  let engine = System.engine system in
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let accel = System.accel system 0 in
  let pasid = System.fresh_pasid system in

  (* Discover the compute service like any other resource (§2.2). *)
  let provider = ref None in
  Device.discover dev ~kind:Types.Compute_service ~query:"" (fun r ->
      provider := Option.map fst r);
  System.run_until_idle system;
  (match !provider with
  | Some id when id = Accel_dev.id accel ->
    Printf.printf "discovered compute service at dev%d\n" id
  | _ -> failwith "compute service not found");

  (* Stage 1 MiB of data in shared memory. *)
  let bytes = 1 lsl 20 in
  let va = 0x4000_0000L in
  let token = ref None in
  Device.alloc dev ~memctl:mc ~pasid ~va ~bytes:(Int64.of_int bytes)
    ~perm:Types.perm_rw (fun r -> token := Result.to_option r);
  System.run_until_idle system;
  let token = match !token with Some t -> t | None -> failwith "alloc failed" in
  let dma = Device.dma dev ~pasid in
  let rng = Rng.create ~seed:7L in
  let chunk = 4096 in
  let words = [| "lorem"; "ipsum"; "dolor"; "sit"; "amet"; "accelerator" |] in
  let buf = Buffer.create chunk in
  let rec fill off =
    if off < bytes then begin
      Buffer.clear buf;
      while Buffer.length buf < chunk do
        Buffer.add_string buf words.(Rng.int rng (Array.length words));
        Buffer.add_char buf ' '
      done;
      Dma.write_bytes dma (Int64.add va (Int64.of_int off))
        (String.sub (Buffer.contents buf) 0 (min chunk (bytes - off)));
      fill (off + chunk)
    end
  in
  fill 0;
  Printf.printf "staged %d bytes at 0x%Lx (pasid %d)\n" bytes va pasid;

  (* Grant the accelerator read/write access (Fig. 2 step 7, but the
     grantee is a compute device). *)
  let granted = ref false in
  Device.grant dev ~to_device:(Accel_dev.id accel) ~pasid ~va
    ~bytes:(Int64.of_int bytes) ~perm:Types.perm_rw ~auth:token (fun r ->
      granted := Result.is_ok r);
  System.run_until_idle system;
  if not !granted then failwith "grant failed";
  print_endline "granted the region to the accelerator via the bus";

  (* Offload vs local, for a sweep of sizes: find the crossover. *)
  print_endline "\nword-count: offloaded vs on-NIC embedded core";
  Printf.printf "  %-12s %-16s %-16s %-10s %s\n" "bytes" "offload (ns)"
    "local (ns)" "speedup" "answers match";
  List.iter
    (fun size ->
      let job = Accel_proto.Word_count { va; len = size } in
      let t0 = Engine.now engine in
      let offload_result = ref None and offload_ns = ref 0L in
      Accel_dev.submit dev ~accel:(Accel_dev.id accel) ~pasid job (fun o ->
          offload_result := Some o;
          offload_ns := Int64.sub (Engine.now engine) t0);
      System.run_until_idle system;
      let t1 = Engine.now engine in
      let local_result = ref None and local_ns = ref 0L in
      Accel_dev.run_locally dev ~pasid job (fun o ->
          local_result := Some o;
          local_ns := Int64.sub (Engine.now engine) t1);
      System.run_until_idle system;
      let matches =
        match (!offload_result, !local_result) with
        | Some (Accel_proto.Value a), Some (Accel_proto.Value b) -> a = b
        | _ -> false
      in
      Printf.printf "  %-12d %-16Ld %-16Ld %-10.2f %b\n" size !offload_ns
        !local_ns
        (Int64.to_float !local_ns /. Int64.to_float !offload_ns)
        matches)
    [ 256; 1024; 4096; 16384; 65536; 262144; 1048576 ];

  (* A histogram job writing results back into shared memory. *)
  let hist_dst = Int64.add va (Int64.of_int (bytes - 4096)) in
  let done_ = ref false in
  Accel_dev.submit dev ~accel:(Accel_dev.id accel) ~pasid
    (Accel_proto.Histogram { va; len = 65536; dst = hist_dst })
    (fun o ->
      (match o with
      | Accel_proto.Written n -> Printf.printf "\nhistogram: %d bytes written\n" n
      | _ -> print_endline "\nhistogram failed");
      done_ := true);
  System.run_until_idle system;
  assert !done_;
  let spaces = Dma.read_u64 dma (Int64.add hist_dst (Int64.of_int (8 * 32))) in
  Printf.printf "space (0x20) count read back by the NIC: %Ld\n" spaces;

  (* Fault containment: a job over never-granted memory faults on the
     accelerator and comes back as a job fault; nothing else breaks. *)
  let fault = ref None in
  Accel_dev.submit dev ~accel:(Accel_dev.id accel) ~pasid
    (Accel_proto.Checksum { va = 0x9999_0000L; len = 64 })
    (fun o -> fault := Some o);
  System.run_until_idle system;
  (match !fault with
  | Some (Accel_proto.Fault m) -> Printf.printf "rogue job: contained (%s)\n" m
  | _ -> print_endline "rogue job: NOT contained (BUG)");
  Printf.printf "accelerator totals: %d jobs, %d bytes, %d faults\n"
    (Accel_dev.jobs_run accel)
    (Accel_dev.bytes_processed accel)
    (Accel_dev.job_faults accel)
