(* The paper's §3 scenario at full scale: remote clients on the simulated
   network issue a Zipfian get/put mix against the KVS hosted on the smart
   NIC, whose write-ahead log lives on the smart SSD. After bring-up the
   data path involves no bus messages at all — the test at the end proves
   it by comparing bus counters.

   Run with:  dune exec examples/kvs_demo.exe *)

module Scenario = Lastcpu_core.Scenario_kvs
module System = Lastcpu_core.System
module Engine = Lastcpu_sim.Engine
module Stats = Lastcpu_sim.Stats
module Rng = Lastcpu_sim.Rng
module Netsim = Lastcpu_net.Netsim
module Sysbus = Lastcpu_bus.Sysbus
module Smart_nic = Lastcpu_devices.Smart_nic
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Kv_proto = Lastcpu_kv.Kv_proto
module Kv_app = Lastcpu_kv.Kv_app
module Ftl = Lastcpu_flash.Ftl

let clients = 4
let ops_per_client = 200
let keys = 512

let () =
  print_endline "== kvs_demo: remote clients vs the CPU-less KVS ==";
  match Scenario.run () with
  | Error e ->
    prerr_endline ("bring-up failed: " ^ e);
    exit 1
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let engine = System.engine system in
    let app = outcome.Scenario.app in
    let net = System.net system in
    let nic_addr = Smart_nic.endpoint_address (System.nic system 0) in
    (* Preload the working set directly on the store. *)
    let value = String.make 100 'v' in
    let loaded = ref 0 in
    for i = 0 to keys - 1 do
      Lastcpu_kv.Store.put (Kv_app.store app)
        ~key:(Printf.sprintf "key-%06d" i)
        ~value (fun _ -> incr loaded)
    done;
    System.run_until_idle system;
    Printf.printf "preloaded %d keys (WAL on ssd0)\n" !loaded;
    let bus_before = (Sysbus.counters (System.bus system)).Sysbus.routed in
    (* Closed-loop clients, 90% gets / 10% puts, Zipf-skewed keys. *)
    let h = Stats.Histogram.create () and s = Stats.Summary.create () in
    let finished = ref 0 in
    let t0 = Engine.now engine in
    for c = 1 to clients do
      let rng = Rng.create ~seed:(Int64.of_int (77 + c)) in
      let ep = Netsim.endpoint net ~name:(Printf.sprintf "client%d" c) in
      let outstanding = Hashtbl.create 4 in
      let sent = ref 0 in
      let send_next () =
        if !sent < ops_per_client then begin
          let corr = !sent in
          incr sent;
          let key = Printf.sprintf "key-%06d" (Rng.zipf rng ~n:keys ~theta:0.99) in
          let op =
            if Rng.int rng 10 = 0 then Kv_proto.Put (key, value)
            else Kv_proto.Get key
          in
          Hashtbl.replace outstanding corr (Engine.now engine);
          Netsim.send ep ~dst:nic_addr
            (Kv_proto.encode_request { Kv_proto.corr; op })
        end
      in
      Netsim.set_receiver ep (fun ~src:_ frame ->
          match Kv_proto.decode_response frame with
          | Error _ -> ()
          | Ok { Kv_proto.corr; _ } -> (
            match Hashtbl.find_opt outstanding corr with
            | None -> ()
            | Some t_send ->
              Hashtbl.remove outstanding corr;
              let dt = Int64.to_float (Int64.sub (Engine.now engine) t_send) in
              Stats.Histogram.add h dt;
              Stats.Summary.add s dt;
              if !sent = ops_per_client && Hashtbl.length outstanding = 0 then
                incr finished
              else send_next ()));
      send_next ()
    done;
    System.run_until_idle system;
    let elapsed = Int64.to_float (Int64.sub (Engine.now engine) t0) in
    let total_ops = clients * ops_per_client in
    let report = Stats.latency_report h s in
    Printf.printf "clients finished: %d/%d\n" !finished clients;
    Printf.printf "throughput: %.0f ops/s (virtual)\n"
      (float_of_int total_ops /. (elapsed *. 1e-9));
    Format.printf "latency: %a@." Stats.pp_latency_report report;
    (* The paper's punchline: the data path used zero control messages. *)
    let bus_after = (Sysbus.counters (System.bus system)).Sysbus.routed in
    Printf.printf "bus control messages during the workload: %d\n"
      (bus_after - bus_before);
    let ftl = Smart_ssd.ftl (System.ssd system 0) in
    Printf.printf "SSD: %d host writes amplified %.2fx, %d GC runs\n"
      (Lastcpu_kv.Store.puts (Kv_app.store app))
      (Ftl.write_amplification ftl) (Ftl.gc_runs ftl);
    Printf.printf "ops served by NIC app: %d\n" (Kv_app.ops_served app)
