(* lastcpu-lint: determinism-hazard lint over the repo's own sources.

   Built on compiler-libs' Parsetree so matching is syntactic and exact —
   an identifier fires a rule only when its qualified path matches (e.g.
   [Hashtbl.iter]), never because a substring happened to appear in a
   string literal or a comment the way a grep-based lint would.

   Rules (ids are stable; the config file decides scope and exemptions):

     D001  unordered [Hashtbl.iter]/[Hashtbl.fold] — hash-order iteration
           leaks Hashtbl internals into results; use [Lastcpu_sim.Detmap].
     D002  [Random.*] — the global generator is process-wide mutable state;
           use the engine-carried [Lastcpu_sim.Rng] streams.
     D003  wall-clock/environment reads ([Sys.time], [Unix.gettimeofday],
           [Sys.getenv], …) — real-world inputs break seeded replay.
     D004  [Marshal.*] and physical equality [==]/[!=] — representation-
           and address-dependent behaviour.
     D005  stdout/stderr printing from library modules — libraries must
           report through telemetry/trace, not ambient side channels.
     D006  direct [Station.submit]/[Station.try_submit] — device/bus code
           must route frames through the shard boundary mailbox
           ([Sysbus.send]/[Netsim.send]) so cross-shard traffic is
           deferred to the quantum edge; a direct station submit bypasses
           shard affinity and breaks the temporal-decoupling determinism
           contract. The blessed homes (the bus/net/device frameworks
           themselves and the centralized baseline) are exempted in
           lint.rules.
     D009  [Physmem.read_bytes]/[Physmem.write_bytes] in data-plane hot
           paths (lib/virtio, lib/flash, lib/net) — these are the copy
           path; hot code should move bytes through views and grants
           ([Physmem.view], [Dma.map_single]) per DESIGN Â§14. The copy
           fallback itself (dma.ml) is the blessed home, exempted in
           lint.rules; any other use needs a suppression saying why the
           copy path is the right tool there.

   Rules D007/D008 (shard-ownership escape and snapshot coverage) share
   this config and suppression machinery but are computed by the
   Typedtree pass in audit_core.ml, driven by audit_main over .cmt files.

   Findings are suppressible per (rule, file, enclosing top-level binding)
   via a checked-in suppressions file; a suppression that matches nothing
   is itself an error, so the baseline never rots. Because the lint and
   audit drivers read the same suppressions file, each passes the rule ids
   it owns as [known_rules] to {!apply_suppressions}: staleness is only
   judged for entries a driver is responsible for. *)

type finding = {
  rule : string;
  file : string;
  line : int;
  binding : string;  (* enclosing top-level binding, "" at toplevel *)
  message : string;
}

type rule_config = {
  id : string;
  scopes : string list;  (* root-relative dir prefixes the rule covers *)
  exempt : string list;  (* root-relative paths excluded from the rule *)
}

type suppression = {
  s_rule : string;
  s_path : string;
  s_binding : string;
  s_reason : string;
  mutable s_used : bool;
}

(* --- config parsing ------------------------------------------------------- *)

let split_commas s = String.split_on_char ',' s |> List.filter (( <> ) "")

(* A line is <IDS> <field>..., where <IDS> is one rule id or a
   comma-separated group (e.g. "D001,D004") that shares the line's
   scope/exempt fields — one rule_config per id either way. *)
let parse_rules_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then []
  else
    match String.split_on_char ' ' line |> List.filter (( <> ) "") with
    | ids :: fields ->
      let ids = split_commas ids in
      if ids = [] then
        failwith (Printf.sprintf "lint.rules:%d: missing rule id" lineno);
      let scopes = ref [] and exempt = ref [] in
      List.iter
        (fun f ->
          match String.index_opt f '=' with
          | Some i ->
            let k = String.sub f 0 i in
            let v = String.sub f (i + 1) (String.length f - i - 1) in
            if k = "scope" then scopes := split_commas v
            else if k = "exempt" then exempt := split_commas v
            else
              failwith
                (Printf.sprintf "lint.rules:%d: unknown field %S" lineno k)
          | None ->
            failwith
              (Printf.sprintf "lint.rules:%d: malformed field %S" lineno f))
        fields;
      List.map (fun id -> { id; scopes = !scopes; exempt = !exempt }) ids
    | [] -> []

let parse_rules text =
  let rules = ref [] in
  List.iteri
    (fun i line ->
      rules := List.rev_append (parse_rules_line (i + 1) line) !rules)
    (String.split_on_char '\n' text);
  List.rev !rules

(* Suppression line: <RULE> <path> <binding> -- <justification> *)
let parse_suppressions text =
  let out = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let body, reason =
          (* split on the first " -- " *)
          let marker = " -- " in
          let rec find j =
            if j + String.length marker > String.length line then None
            else if String.sub line j (String.length marker) = marker then
              Some j
            else find (j + 1)
          in
          match find 0 with
          | Some j ->
            ( String.sub line 0 j,
              String.sub line
                (j + String.length marker)
                (String.length line - j - String.length marker) )
          | None -> (line, "")
        in
        match
          String.split_on_char ' ' (String.trim body)
          |> List.filter (( <> ) "")
        with
        | [ s_rule; s_path; s_binding ] ->
          if String.trim reason = "" then
            failwith
              (Printf.sprintf
                 "lint.suppressions:%d: missing justification (use ' -- why')"
                 (i + 1));
          out :=
            { s_rule; s_path; s_binding; s_reason = reason; s_used = false }
            :: !out
        | _ ->
          failwith
            (Printf.sprintf
               "lint.suppressions:%d: expected '<RULE> <path> <binding> -- \
                <why>'"
               (i + 1))
      end)
    (String.split_on_char '\n' text);
  List.rev !out

(* --- identifier classification -------------------------------------------- *)

(* Qualified path of an identifier, with a leading [Stdlib] dropped so
   [Stdlib.print_endline] and [print_endline] classify identically. *)
let ident_path lid =
  match Longident.flatten lid with "Stdlib" :: rest -> rest | l -> l

let d003_idents =
  [
    [ "Sys"; "time" ];
    [ "Sys"; "getenv" ];
    [ "Sys"; "getenv_opt" ];
    [ "Unix"; "time" ];
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "getenv" ];
    [ "Unix"; "localtime" ];
    [ "Unix"; "gmtime" ];
  ]

let d005_idents =
  [
    [ "print_string" ];
    [ "print_endline" ];
    [ "print_newline" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "prerr_string" ];
    [ "prerr_endline" ];
    [ "prerr_newline" ];
    [ "Printf"; "printf" ];
    [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ];
    [ "Format"; "eprintf" ];
    [ "Format"; "print_string" ];
  ]

(* Which rules an identifier trips, with the message for each. *)
let classify path =
  match path with
  | [ "Hashtbl"; ("iter" | "fold") ] ->
    [
      ( "D001",
        Printf.sprintf
          "Hashtbl.%s iterates in hash order; use Lastcpu_sim.Detmap for a \
           deterministic order"
          (List.nth path 1) );
    ]
  | "Random" :: _ ->
    [
      ( "D002",
        Printf.sprintf
          "%s uses the ambient global generator; draw from an \
           engine-carried Lastcpu_sim.Rng stream"
          (String.concat "." path) );
    ]
  | _ when List.mem path d003_idents ->
    [
      ( "D003",
        Printf.sprintf
          "%s reads wall-clock/environment state, which breaks seeded \
           replay; thread configuration explicitly"
          (String.concat "." path) );
    ]
  | "Marshal" :: _ ->
    [
      ( "D004",
        Printf.sprintf
          "%s output depends on value representation; use the Wire/Codec \
           encoders"
          (String.concat "." path) );
    ]
  | [ ("==" | "!=") ] ->
    [
      ( "D004",
        Printf.sprintf
          "physical equality (%s) compares addresses, not contents; use = \
           / <> or an explicit key"
          (List.hd path) );
    ]
  | [ "Physmem"; (("read_bytes" | "write_bytes") as fn) ] ->
    [
      ( "D009",
        Printf.sprintf
          "Physmem.%s is the copy path; data-plane hot code should move \
           bytes through views/grants (Physmem.view, Dma.map_single \
           DESIGN #14) or justify the copy in lint.suppressions"
          fn );
    ]
  | [ "Station"; (("submit" | "try_submit") as fn) ] ->
    [
      ( "D006",
        Printf.sprintf
          "Station.%s submits work directly, bypassing the shard boundary \
           mailbox; route frames through Sysbus.send/Netsim.send so \
           cross-shard traffic defers to the quantum edge"
          fn );
    ]
  | _ when List.mem path d005_idents ->
    [
      ( "D005",
        Printf.sprintf
          "%s writes to an ambient channel from library code; report via \
           the telemetry registry or the run trace"
          (String.concat "." path) );
    ]
  | _ -> []

(* --- AST walk -------------------------------------------------------------- *)

let path_in_scope path scopes =
  List.exists
    (fun scope ->
      path = scope
      || String.length path > String.length scope
         && String.sub path 0 (String.length scope + 1) = scope ^ "/")
    scopes

let path_exempt path exempt = List.mem path exempt

let active_rules config ~path =
  List.filter
    (fun r -> path_in_scope path r.scopes && not (path_exempt path r.exempt))
    config

let scan_structure config ~path structure =
  let rules = active_rules config ~path in
  if rules = [] then []
  else begin
    let findings = ref [] in
    let current_binding = ref "" in
    let emit loc hits =
      List.iter
        (fun (rule, message) ->
          if List.exists (fun r -> r.id = rule) rules then
            findings :=
              {
                rule;
                file = path;
                line = loc.Location.loc_start.Lexing.pos_lnum;
                binding = !current_binding;
                message;
              }
              :: !findings)
        hits
    in
    let open Ast_iterator in
    let iter =
      {
        default_iterator with
        expr =
          (fun self e ->
            (match e.Parsetree.pexp_desc with
            | Parsetree.Pexp_ident { txt; loc } ->
              emit loc (classify (ident_path txt))
            | _ -> ());
            default_iterator.expr self e);
        structure_item =
          (fun self item ->
            match item.Parsetree.pstr_desc with
            | Parsetree.Pstr_value (_, bindings) ->
              List.iter
                (fun vb ->
                  let saved = !current_binding in
                  (match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
                  | Parsetree.Ppat_var { txt; _ } -> current_binding := txt
                  | _ -> ());
                  self.value_binding self vb;
                  current_binding := saved)
                bindings
            | _ -> default_iterator.structure_item self item);
      }
    in
    iter.structure iter structure;
    List.rev !findings
  end

let scan_string config ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok (scan_structure config ~path structure)
  | exception exn ->
    Error (Printf.sprintf "%s: parse error: %s" path (Printexc.to_string exn))

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file config ~root ~path =
  scan_string config ~path (read_file (Filename.concat root path))

(* --- suppression application ----------------------------------------------- *)

(* [known_rules], when given, restricts the stale-entry check to
   suppressions whose rule id the calling driver owns: the lint and audit
   drivers share one suppressions file, and neither may declare the
   other's entries stale. *)
let apply_suppressions ?known_rules suppressions findings =
  let unsuppressed =
    List.filter
      (fun f ->
        match
          List.find_opt
            (fun s ->
              s.s_rule = f.rule && s.s_path = f.file
              && s.s_binding = f.binding)
            suppressions
        with
        | Some s ->
          s.s_used <- true;
          false
        | None -> true)
      findings
  in
  let owned s =
    match known_rules with
    | None -> true
    | Some rules -> List.mem s.s_rule rules
  in
  let stale = List.filter (fun s -> (not s.s_used) && owned s) suppressions in
  (unsuppressed, stale)

(* --- directory walk -------------------------------------------------------- *)

let rec ml_files_under dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let full = Filename.concat dir entry in
        if Sys.is_directory full then
          if entry = "_build" || entry.[0] = '.' then acc
          else acc @ ml_files_under full
        else if Filename.check_suffix entry ".ml" then acc @ [ full ]
        else acc)
      [] entries

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s%s" f.file f.line f.rule f.message
    (if f.binding = "" then "" else Printf.sprintf " (in `%s')" f.binding)
