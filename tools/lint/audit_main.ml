(* lastcpu-audit driver: whole-program mutable-state audit over .cmt files.

   Usage:
     audit_main --rules lint.rules --suppressions lint.suppressions \
               [--root DIR] _build/default/lib

   Positional arguments are directories searched recursively for .cmt
   files (dune's @check output). Every unit found contributes to the
   whole-program stateful-type fixpoint; rule scoping (lint.rules) then
   decides which units' findings are reported. Exit status mirrors
   lint_main: 0 only when every D007/D008 finding is suppressed with a
   justification and no audit-rule suppression is stale. *)

let () =
  let rules_file = ref "lint.rules" in
  let supp_file = ref "lint.suppressions" in
  let root = ref "." in
  let dirs = ref [] in
  let spec =
    [
      ("--rules", Arg.Set_string rules_file, "FILE rule configuration");
      ("--suppressions", Arg.Set_string supp_file, "FILE suppression baseline");
      ("--root", Arg.Set_string root, "DIR repo root paths are relative to");
    ]
  in
  Arg.parse spec
    (fun d -> dirs := d :: !dirs)
    "lastcpu-audit: mutable-state audit (rules D007-D008)";
  let dirs = List.rev !dirs in
  if dirs = [] then begin
    prerr_endline "lastcpu-audit: no .cmt directories to scan";
    exit 2
  end;
  let config = Lint_core.parse_rules (Lint_core.read_file !rules_file) in
  let suppressions =
    Lint_core.parse_suppressions (Lint_core.read_file !supp_file)
  in
  let errors = ref 0 in
  let inventories = ref [] in
  List.iter
    (fun dir ->
      let cmts = Audit_core.cmt_files_under (Filename.concat !root dir) in
      List.iter
        (fun cmt ->
          match Audit_core.inventory_of_cmt cmt with
          | Some inv -> inventories := inv :: !inventories
          | None -> ()  (* interface-only or generated wrapper unit *)
          | exception exn ->
            Printf.eprintf "%s: unreadable cmt: %s\n" cmt
              (Printexc.to_string exn);
            incr errors)
        cmts)
    dirs;
  let inventories = List.rev !inventories in
  if inventories = [] then begin
    prerr_endline
      "lastcpu-audit: no units found (run `dune build @check` first)";
    exit 2
  end;
  let findings = Audit_core.findings ~config inventories in
  let unsuppressed, stale =
    Lint_core.apply_suppressions ~known_rules:Audit_core.audit_rules
      suppressions findings
  in
  List.iter
    (fun f ->
      Format.eprintf "%a@." Lint_core.pp_finding f;
      incr errors)
    unsuppressed;
  List.iter
    (fun s ->
      Printf.eprintf
        "stale suppression: %s %s %s matched no finding (remove it)\n"
        s.Lint_core.s_rule s.Lint_core.s_path s.Lint_core.s_binding;
      incr errors)
    stale;
  if !errors = 0 then begin
    let suppressed =
      List.length
        (List.filter
           (fun s -> List.mem s.Lint_core.s_rule Audit_core.audit_rules)
           suppressions)
    in
    Printf.printf
      "lastcpu-audit: %d unit(s) clean (%d finding(s) suppressed)\n"
      (List.length inventories) suppressed;
    exit 0
  end
  else begin
    Printf.eprintf "lastcpu-audit: %d error(s)\n" !errors;
    exit 1
  end
