(* lastcpu-lint driver: scan source trees for determinism hazards.

   Usage:
     lint_main --rules lint.rules --suppressions lint.suppressions \
               [--root DIR] lib bin bench

   Exit status is 0 only when every finding is suppressed with a
   justification and every suppression matched a finding; an unsuppressed
   hazard or a stale suppression both fail the build, so the checked-in
   baseline always describes the tree exactly. *)

let () =
  let rules_file = ref "lint.rules" in
  let supp_file = ref "lint.suppressions" in
  let root = ref "." in
  let dirs = ref [] in
  let spec =
    [
      ("--rules", Arg.Set_string rules_file, "FILE rule configuration");
      ("--suppressions", Arg.Set_string supp_file, "FILE suppression baseline");
      ("--root", Arg.Set_string root, "DIR repo root the scan is relative to");
    ]
  in
  Arg.parse spec
    (fun d -> dirs := d :: !dirs)
    "lastcpu-lint: determinism-hazard lint (rules D001-D005)";
  let dirs = List.rev !dirs in
  if dirs = [] then begin
    prerr_endline "lastcpu-lint: no directories to scan";
    exit 2
  end;
  let config = Lint_core.parse_rules (Lint_core.read_file !rules_file) in
  let suppressions =
    Lint_core.parse_suppressions (Lint_core.read_file !supp_file)
  in
  let errors = ref 0 in
  let findings = ref [] in
  List.iter
    (fun dir ->
      let files = Lint_core.ml_files_under (Filename.concat !root dir) in
      List.iter
        (fun full ->
          (* Report paths root-relative so config and suppressions are
             stable regardless of where the lint runs from. *)
          let path =
            let prefix = !root ^ "/" in
            if String.length full > String.length prefix
               && String.sub full 0 (String.length prefix) = prefix
            then String.sub full (String.length prefix)
                   (String.length full - String.length prefix)
            else full
          in
          match Lint_core.scan_string config ~path (Lint_core.read_file full) with
          | Ok fs -> findings := !findings @ fs
          | Error msg ->
            Printf.eprintf "%s\n" msg;
            incr errors)
        files)
    dirs;
  (* This driver owns the Parsetree rules only; D007/D008 entries in the
     shared suppressions file belong to audit_main and are not stale here. *)
  let known_rules = [ "D001"; "D002"; "D003"; "D004"; "D005"; "D006" ] in
  let unsuppressed, stale =
    Lint_core.apply_suppressions ~known_rules suppressions !findings
  in
  List.iter
    (fun f ->
      Format.eprintf "%a@." Lint_core.pp_finding f;
      incr errors)
    unsuppressed;
  List.iter
    (fun s ->
      Printf.eprintf
        "stale suppression: %s %s %s matched no finding (remove it)\n"
        s.Lint_core.s_rule s.Lint_core.s_path s.Lint_core.s_binding;
      incr errors)
    stale;
  if !errors = 0 then begin
    Printf.printf "lastcpu-lint: %d file(s) clean (%d finding(s) suppressed)\n"
      (List.fold_left
         (fun acc dir ->
           acc
           + List.length (Lint_core.ml_files_under (Filename.concat !root dir)))
         0 dirs)
      (List.length
         (List.filter
            (fun s -> List.mem s.Lint_core.s_rule known_rules)
            suppressions));
    exit 0
  end
  else begin
    Printf.eprintf "lastcpu-lint: %d error(s)\n" !errors;
    exit 1
  end
