(* lastcpu-audit: whole-program mutable-state audit over the Typedtree.

   Where lastcpu-lint (lint_core.ml) is a per-file syntactic pass on the
   Parsetree, this is a semantic pass over the compiler's *typed* tree,
   read back from the .cmt files `dune build @check` produces. Types are
   resolved, so the audit sees through aliases and module prefixes: a
   [Detmap.t] is recognised whether the source spells it
   [Lastcpu_sim.Detmap.t], an open, or a local alias — and the pass is
   whole-program: stateful types declared in one unit classify bindings in
   every other unit.

   The audit builds one inventory per compilation unit:

     - {e module-global mutable cells}: toplevel (or nested-module
       toplevel) bindings whose type reaches a mutable constructor
       (ref / array / bytes / Hashtbl / Queue / Stack / Buffer / Atomic /
       a record with mutable fields, transitively), or whose defining
       expression allocates mutable state outside any function body (the
       hidden-global closure pattern [let f = let tbl = ... in fun ...]);

     - {e stateful type declarations}: types whose values carry mutable
       state — a mutable record field, a field or manifest whose type is
       itself stateful (computed to a fixpoint across all units);

     - whether the unit {e participates in the snapshot protocol}: any
       reference to [Engine.register_snapshot] or to the [Snapshot]
       reader/writer modules.

   Two rules consume the inventory:

     D007  shard-ownership escape: a module-global mutable cell is
           process-wide state reachable from every closure that
           Temporal/Parallel.Pool runs on worker domains. Unless the cell
           is per-shard-instantiated (i.e. not module-global at all) or
           confined to quantum-edge rendezvous, it is a data race waiting
           for a second core — and a determinism leak even on one.

     D008  snapshot coverage: a unit that declares stateful types but
           never touches the snapshot protocol cannot round-trip its
           state through save/restore; a checkpoint taken over such a
           subsystem silently loses state. Participation is per-unit: a
           unit that registers a hook (or exposes Snapshot.W/R savers its
           owner wires in) is trusted to cover its own state — the T16
           kill–resume digest soak is the dynamic check of its depth.

   Both rules report through the same (rule, file, binding) finding shape
   as D001–D006, so lint.rules decides scope/exemptions and
   lint.suppressions carries per-site justified waivers with the same
   stale-entry policy. *)

type type_key = string * string
(* Normalised constructor key: (innermost module, type name), with
   wrapper prefixes stripped — [Lastcpu_sim__Detmap.t],
   [Lastcpu_sim.Detmap.t] and a local [Detmap.t] all key as
   ("Detmap", "t"); predefined types key as ("", "array"). *)

type type_decl = {
  td_module : string;  (* innermost enclosing module name *)
  td_name : string;
  td_binding : string;  (* suppression binding: "t" or "Pool.t" *)
  td_line : int;
  td_self_mutable : bool;  (* mutable field / builtin-mutable manifest *)
  td_dep_keys : type_key list;  (* field & manifest constructor keys *)
}

type cell = {
  c_binding : string;  (* "x" or "Pool.x" *)
  c_line : int;
  c_keys : type_key list;  (* constructor keys of the binding's type *)
  c_hidden_keys : type_key list;  (* types let-bound outside any fun *)
  c_alloc : string option;  (* mutable allocation outside any fun *)
}

type unit_inventory = {
  u_path : string;  (* root-relative source path *)
  u_module : string;  (* normalised unit module name *)
  u_decls : type_decl list;
  u_cells : cell list;
  u_snapshot_user : bool;
}

(* --- path normalisation ----------------------------------------------------- *)

(* Strip a dune wrapper prefix: "Lastcpu_sim__Detmap" -> "Detmap". *)
let strip_wrapper comp =
  let rec last_sep i =
    if i + 1 >= String.length comp then None
    else if comp.[i] = '_' && comp.[i + 1] = '_' then
      match last_sep (i + 2) with Some j -> Some j | None -> Some (i + 2)
    else last_sep (i + 1)
  in
  match last_sep 0 with
  | Some j -> String.sub comp j (String.length comp - j)
  | None -> comp

let path_components path =
  Path.name path |> String.split_on_char '.' |> List.map strip_wrapper

let key_of_components comps : type_key =
  match List.rev comps with
  | last :: prev :: _ -> (prev, last)
  | [ last ] -> ("", last)
  | [] -> ("", "")

let key_of_path p = key_of_components (path_components p)

let string_of_key (m, n) = if m = "" then n else m ^ "." ^ n

(* --- mutability classification ---------------------------------------------- *)

let builtin_mutable : type_key list =
  [
    ("", "array");
    ("", "bytes");
    ("", "floatarray");
    ("", "ref");
    ("Stdlib", "ref");
    ("Hashtbl", "t");
    ("Queue", "t");
    ("Stack", "t");
    ("Buffer", "t");
    ("Atomic", "t");
    ("Mutex", "t");
    ("Condition", "t");
    ("Weak", "t");
    ("Ephemeron", "t");
    (* Bigarray views: the zero-copy data plane the roadmap heads for. *)
    ("Array1", "t");
    ("Array2", "t");
    ("Array3", "t");
    ("Genarray", "t");
  ]

(* Functions that allocate a fresh mutable container; used only for the
   hidden-global pattern (allocation outside any fun body). Repo-local
   stateful creators are caught by the type-key route instead. *)
let mutable_creators : type_key list =
  [
    ("", "ref");
    ("Stdlib", "ref");
    ("Hashtbl", "create");
    ("Queue", "create");
    ("Stack", "create");
    ("Buffer", "create");
    ("Atomic", "make");
    ("Bytes", "create");
    ("Bytes", "make");
    ("Array", "make");
    ("Array", "init");
    ("Array", "create_float");
    ("Array", "make_matrix");
    ("Weak", "create");
    ("Mutex", "create");
    ("Condition", "create");
  ]

(* Constructor keys reachable in a type without crossing an arrow: a
   function is not a cell, and state created per-call inside one is
   somebody's instance state, not a module global. *)
let rec collect_type_keys acc ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
    List.fold_left collect_type_keys (key_of_path p :: acc) args
  | Types.Ttuple tys -> List.fold_left collect_type_keys acc tys
  | Types.Tpoly (ty, _) -> collect_type_keys acc ty
  | _ -> acc

let type_keys ty = collect_type_keys [] ty

(* --- inventory (one unit) ---------------------------------------------------- *)

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

(* Scan a toplevel binding's defining expression for mutable allocations
   that happen OUTSIDE any function body: those live once per process, no
   matter how innocent the binding's own (often arrow) type looks. *)
let hidden_state vb_expr =
  let alloc = ref None in
  let keys = ref [] in
  let open Tast_iterator in
  let expr self (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_function _ -> ()  (* per-call state: stop here *)
    | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _)
      when List.mem (key_of_path p) mutable_creators ->
      if !alloc = None then
        alloc := Some (Printf.sprintf "calls %s" (Path.name p));
      default_iterator.expr self e
    | Typedtree.Texp_record { fields; _ }
      when Array.exists
             (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable)
             fields ->
      if !alloc = None then alloc := Some "builds a record with mutable fields";
      default_iterator.expr self e
    | Typedtree.Texp_array (_ :: _) ->
      if !alloc = None then alloc := Some "builds an array";
      default_iterator.expr self e
    | Typedtree.Texp_let (_, vbs, _) ->
      List.iter
        (fun vb ->
          keys := collect_type_keys !keys vb.Typedtree.vb_expr.Typedtree.exp_type)
        vbs;
      default_iterator.expr self e
    | _ -> default_iterator.expr self e
  in
  let iter = { default_iterator with expr } in
  iter.expr iter vb_expr;
  (!alloc, !keys)

let decl_of_type ~modname (td : Typedtree.type_declaration) =
  let mutable_field (ld : Typedtree.label_declaration) =
    ld.Typedtree.ld_mutable = Asttypes.Mutable
  in
  let field_keys (ld : Typedtree.label_declaration) =
    type_keys ld.Typedtree.ld_type.Typedtree.ctyp_type
  in
  let self_mutable, dep_keys =
    match td.Typedtree.typ_kind with
    | Typedtree.Ttype_record lds ->
      ( List.exists mutable_field lds,
        List.concat_map field_keys lds )
    | Typedtree.Ttype_variant cds ->
      let of_args = function
        | Typedtree.Cstr_tuple cores ->
          (false, List.concat_map (fun c -> type_keys c.Typedtree.ctyp_type) cores)
        | Typedtree.Cstr_record lds ->
          (List.exists mutable_field lds, List.concat_map field_keys lds)
      in
      List.fold_left
        (fun (m, ks) cd ->
          let m', ks' = of_args cd.Typedtree.cd_args in
          (m || m', ks' @ ks))
        (false, []) cds
    | Typedtree.Ttype_abstract | Typedtree.Ttype_open -> (false, [])
  in
  let manifest_keys =
    match td.Typedtree.typ_manifest with
    | Some core -> type_keys core.Typedtree.ctyp_type
    | None -> []
  in
  let dep_keys = manifest_keys @ dep_keys in
  let self_mutable =
    self_mutable || List.exists (fun k -> List.mem k builtin_mutable) dep_keys
  in
  let name = Ident.name td.Typedtree.typ_id in
  {
    td_module = modname;
    td_name = name;
    td_binding = name;
    td_line = line_of td.Typedtree.typ_loc;
    td_self_mutable = self_mutable;
    td_dep_keys = dep_keys;
  }

let inventory ~path ~modname (structure : Typedtree.structure) =
  let decls = ref [] and cells = ref [] and snapshot_user = ref false in
  let rec scan_structure ~modname ~prefix (str : Typedtree.structure) =
    List.iter (scan_item ~modname ~prefix) str.Typedtree.str_items
  and scan_item ~modname ~prefix (item : Typedtree.structure_item) =
    match item.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          scan_idents vb.Typedtree.vb_expr;
          match vb.Typedtree.vb_pat.Typedtree.pat_desc with
          (* Tpat_alias is how `let x : ty = e` types: the constrained
             pattern aliased to the name. *)
          | Typedtree.Tpat_var (id, _) | Typedtree.Tpat_alias (_, id, _) ->
            let alloc, hidden_keys = hidden_state vb.Typedtree.vb_expr in
            cells :=
              {
                c_binding = prefix ^ Ident.name id;
                c_line = line_of vb.Typedtree.vb_loc;
                c_keys = type_keys vb.Typedtree.vb_expr.Typedtree.exp_type;
                c_hidden_keys = hidden_keys;
                c_alloc = alloc;
              }
              :: !cells
          | _ -> ())
        vbs
    | Typedtree.Tstr_type (_, tds) ->
      List.iter
        (fun td ->
          let d = decl_of_type ~modname td in
          decls :=
            { d with td_binding = prefix ^ d.td_binding } :: !decls)
        tds
    | Typedtree.Tstr_module mb -> scan_module ~prefix mb
    | Typedtree.Tstr_recmodule mbs -> List.iter (scan_module ~prefix) mbs
    | Typedtree.Tstr_eval (e, _) -> scan_idents e
    | _ -> ()
  and scan_module ~prefix (mb : Typedtree.module_binding) =
    let name =
      match mb.Typedtree.mb_name.Location.txt with
      | Some n -> n
      | None -> "_"
    in
    let rec unwrap (me : Typedtree.module_expr) =
      match me.Typedtree.mod_desc with
      | Typedtree.Tmod_structure str ->
        scan_structure ~modname:name ~prefix:(prefix ^ name ^ ".") str
      | Typedtree.Tmod_constraint (me, _, _, _) -> unwrap me
      | _ -> ()
    in
    unwrap mb.Typedtree.mb_expr
  and scan_idents e =
    (* Snapshot-protocol participation: any reference to the Snapshot
       reader/writer or to Engine.register_snapshot anywhere in the
       unit, including inside function bodies. *)
    let open Tast_iterator in
    let expr self (ex : Typedtree.expression) =
      (match ex.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, _) ->
        let comps = path_components p in
        if
          List.mem "Snapshot" comps
          || key_of_components comps = ("Engine", "register_snapshot")
        then snapshot_user := true
      | _ -> ());
      default_iterator.expr self ex
    in
    let iter = { default_iterator with expr } in
    iter.expr iter e
  in
  scan_structure ~modname ~prefix:"" structure;
  {
    u_path = path;
    u_module = modname;
    u_decls = List.rev !decls;
    u_cells = List.rev !cells;
    u_snapshot_user = !snapshot_user;
  }

(* --- whole-program fixpoint -------------------------------------------------- *)

(* The set of stateful type keys across every unit: seeded with the
   self-evidently mutable declarations, then closed over "a field or
   manifest of mine is stateful" until nothing new appears. *)
let stateful_types inventories =
  let table : (type_key, unit) Hashtbl.t = Hashtbl.create 64 in
  let decls = List.concat_map (fun u -> u.u_decls) inventories in
  List.iter
    (fun d ->
      if d.td_self_mutable then
        Hashtbl.replace table (d.td_module, d.td_name) ())
    decls;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        let key = (d.td_module, d.td_name) in
        if
          (not (Hashtbl.mem table key))
          && List.exists (fun k -> Hashtbl.mem table k) d.td_dep_keys
        then begin
          Hashtbl.replace table key ();
          changed := true
        end)
      decls
  done;
  table

let key_is_stateful stateful k =
  List.mem k builtin_mutable || Hashtbl.mem stateful k

(* Why a cell classified mutable — for the finding message. *)
let cell_verdict stateful c =
  match List.find_opt (key_is_stateful stateful) c.c_keys with
  | Some k -> Some (Printf.sprintf "its type reaches mutable %s" (string_of_key k))
  | None -> (
    match c.c_alloc with
    | Some what -> Some (Printf.sprintf "its initialiser %s outside any function" what)
    | None -> (
      match List.find_opt (key_is_stateful stateful) c.c_hidden_keys with
      | Some k ->
        Some
          (Printf.sprintf
             "its initialiser captures a %s outside any function"
             (string_of_key k))
      | None -> None))

(* --- findings ---------------------------------------------------------------- *)

let audit_rules = [ "D007"; "D008" ]

let findings ~config inventories =
  let stateful = stateful_types inventories in
  let out = ref [] in
  let emit rule u line binding message =
    out :=
      { Lint_core.rule; file = u.u_path; line; binding; message } :: !out
  in
  List.iter
    (fun u ->
      let rules = Lint_core.active_rules config ~path:u.u_path in
      let active id = List.exists (fun r -> r.Lint_core.id = id) rules in
      if active "D007" then
        List.iter
          (fun c ->
            match cell_verdict stateful c with
            | None -> ()
            | Some why ->
              emit "D007" u c.c_line c.c_binding
                (Printf.sprintf
                   "module-global mutable cell `%s' (%s) is process-wide \
                    state reachable from every shard domain; instantiate it \
                    per shard (carry it in the subsystem record) or confine \
                    it to quantum-edge rendezvous"
                   c.c_binding why))
          u.u_cells;
      if active "D008" && not u.u_snapshot_user then
        List.iter
          (fun d ->
            if key_is_stateful stateful (d.td_module, d.td_name) then
              emit "D008" u d.td_line d.td_binding
                (Printf.sprintf
                   "stateful type `%s' lives in a unit with no snapshot \
                    participation (no Engine.register_snapshot or Snapshot.W/R \
                    use): its state cannot round-trip a checkpoint; register \
                    a hook, expose savers the owner wires in, or bless a \
                    waiver"
                   d.td_binding))
          u.u_decls)
    inventories;
  List.rev !out

(* --- .cmt ingestion ----------------------------------------------------------- *)

(* A unit read back from dune's @check output. Units with no source file
   (dune-generated wrapper alias modules) return None. *)
let inventory_of_cmt cmt_path =
  let infos = Cmt_format.read_cmt cmt_path in
  match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
  | Cmt_format.Implementation structure, Some src
    when Filename.check_suffix src ".ml" ->
    Some
      (inventory ~path:src
         ~modname:(strip_wrapper infos.Cmt_format.cmt_modname)
         structure)
  | _ -> None

let rec cmt_files_under dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let full = Filename.concat dir entry in
        if Sys.is_directory full then acc @ cmt_files_under full
        else if Filename.check_suffix entry ".cmt" then acc @ [ full ]
        else acc)
      [] entries

(* --- in-process typechecking (fixtures, bench) -------------------------------- *)

(* Typecheck a standalone source string against the compiler's stdlib and
   inventory it. Fixtures stub repo modules locally (e.g. a local [module
   Engine]), which the suffix-matching classifier treats identically —
   that is a feature: the golden tests need no .cmt plumbing. *)
let typecheck_initialized = ref false

let inventory_of_string ~path ~modname source =
  if not !typecheck_initialized then begin
    Compmisc.init_path ();
    typecheck_initialized := true
  end;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match
    let ast = Parse.implementation lexbuf in
    Typemod.type_structure env ast
  with
  | structure, _, _, _, _ -> Ok (inventory ~path ~modname structure)
  | exception exn ->
    Error
      (Printf.sprintf "%s: typecheck error: %s" path (Printexc.to_string exn))
