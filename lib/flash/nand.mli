(** Raw NAND flash model.

    Geometry: [blocks] erase blocks of [pages_per_block] pages of
    [page_size] bytes. Semantics enforced: a page must be erased before it
    can be programmed, programming is page-at-once, erase is block-at-once,
    and each block tracks its erase count (wear). *)

type t

type geometry = { blocks : int; pages_per_block : int; page_size : int }

val default_geometry : geometry
(** 256 blocks x 64 pages x 4 KiB = 64 MiB. *)

val create :
  ?geometry:geometry -> ?faults:Lastcpu_sim.Faults.t -> ?tag:string -> unit -> t
(** [faults] enables injected transient read failures and bit flips on
    programmed pages (a per-page CRC plays the role of on-die ECC, so a
    flip surfaces as an I/O error, not silent corruption). [tag] (default
    ["nand"]) namespaces this chip's fault-injection content keys; give
    each chip sharing one engine a distinct tag. *)

val geometry : t -> geometry

type page_state = Erased | Programmed

val page_state : t -> block:int -> page:int -> page_state

val read_page : t -> block:int -> page:int -> (string, string) result
(** Reading an erased page returns all-0xFF bytes (as real NAND does). *)

val program_page : t -> block:int -> page:int -> string -> (unit, string) result
(** Fails if the page is not erased or data exceeds the page size (short
    data is padded with 0xFF). *)

val erase_block : t -> block:int -> (unit, string) result
val erase_count : t -> block:int -> int
val total_erases : t -> int
val reads : t -> int
val programs : t -> int

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append programmed pages (sparsely), wear and op counters
    (checkpointing). Page CRCs are recomputed on restore. *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Overwrite the array contents with state written by {!save}.
    @raise Invalid_argument if the geometry differs from the checkpoint.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
