module Faults = Lastcpu_sim.Faults
module Wire = Lastcpu_proto.Wire

type geometry = { blocks : int; pages_per_block : int; page_size : int }

let default_geometry = { blocks = 256; pages_per_block = 64; page_size = 4096 }

type page_state = Erased | Programmed

type block = {
  pages : Bytes.t option array;  (* None = erased *)
  crcs : int array;  (* CRC-32 of each programmed page (the on-die ECC);
                        -1 = not yet computed. The CRC is a pure function
                        of the immutable page bytes, so it is computed
                        lazily, on the first fault-injected read — most
                        pages are programmed, read cleanly and erased
                        without ever needing it. *)
  mutable erases : int;
}

type t = {
  geo : geometry;
  data : block array;
  faults : Faults.t option;
  tag : string; (* distinguishes fault keys between chips on one engine *)
  mutable read_count : int;
  mutable program_count : int;
  mutable erase_total : int;
}

let create ?(geometry = default_geometry) ?faults ?(tag = "nand") () =
  if geometry.blocks <= 0 || geometry.pages_per_block <= 0 || geometry.page_size <= 0
  then invalid_arg "Nand.create: bad geometry";
  {
    geo = geometry;
    tag;
    data =
      Array.init geometry.blocks (fun _ ->
          {
            pages = Array.make geometry.pages_per_block None;
            crcs = Array.make geometry.pages_per_block (-1);
            erases = 0;
          });
    faults;
    read_count = 0;
    program_count = 0;
    erase_total = 0;
  }

let geometry t = t.geo

let check t ~block ~page =
  if block < 0 || block >= t.geo.blocks then Error "block out of range"
  else if page < 0 || page >= t.geo.pages_per_block then Error "page out of range"
  else Ok ()

let page_state t ~block ~page =
  match check t ~block ~page with
  | Error _ -> invalid_arg "Nand.page_state: out of range"
  | Ok () -> (
    match t.data.(block).pages.(page) with None -> Erased | Some _ -> Programmed)

(* The stored checksum of a programmed page, computing and caching it on
   first use. [b] must be the stored (unflipped) page bytes; they are
   never mutated between program and erase, so the lazy value is
   identical to what eager computation at program time would have
   stored. *)
let page_crc t ~block ~page b =
  let c = t.data.(block).crcs.(page) in
  if c >= 0 then c
  else begin
    let c = Wire.crc32 (Bytes.unsafe_to_string b) in
    t.data.(block).crcs.(page) <- c;
    c
  end

let read_page t ~block ~page =
  match check t ~block ~page with
  | Error _ as e -> e
  | Ok () ->
    t.read_count <- t.read_count + 1;
    (match t.data.(block).pages.(page) with
    | None -> Ok (String.make t.geo.page_size '\xff')
    | Some b -> (
      (* Programmed pages can suffer injected transient read failures or
         bit flips; the per-page CRC (the ECC stand-in) catches flips, so
         both surface as an I/O error the caller can retry. Erased pages
         are never faulted. *)
      match t.faults with
      | Some f when Faults.active f -> (
        let key =
          Faults.key_of_string (Printf.sprintf "%s:%d:%d" t.tag block page)
        in
        if Faults.nand_read_fails f ~key then Error "transient read failure"
        else
          match Faults.nand_bit_flip f ~key ~len:t.geo.page_size with
          | None -> Ok (Bytes.to_string b)
          | Some bit ->
            let flipped = Bytes.copy b in
            let i = bit / 8 in
            Bytes.set flipped i
              (Char.chr
                 (Char.code (Bytes.get flipped i) lxor (1 lsl (bit mod 8))));
            let s = Bytes.to_string flipped in
            if Wire.crc32 s <> page_crc t ~block ~page b then
              Error "uncorrectable bit error (ECC)"
            else Ok s)
      | Some _ | None -> Ok (Bytes.to_string b)))

let program_page t ~block ~page data =
  match check t ~block ~page with
  | Error _ as e -> e
  | Ok () ->
    if String.length data > t.geo.page_size then Error "data exceeds page size"
    else begin
      match t.data.(block).pages.(page) with
      | Some _ -> Error "page not erased"
      | None ->
        t.program_count <- t.program_count + 1;
        let b =
          if String.length data = t.geo.page_size then Bytes.of_string data
          else begin
            let b = Bytes.make t.geo.page_size '\xff' in
            Bytes.blit_string data 0 b 0 (String.length data);
            b
          end
        in
        t.data.(block).pages.(page) <- Some b;
        t.data.(block).crcs.(page) <- -1;
        Ok ()
    end

let erase_block t ~block =
  match check t ~block ~page:0 with
  | Error _ as e -> e
  | Ok () ->
    let blk = t.data.(block) in
    Array.fill blk.pages 0 t.geo.pages_per_block None;
    blk.erases <- blk.erases + 1;
    t.erase_total <- t.erase_total + 1;
    Ok ()

let erase_count t ~block =
  match check t ~block ~page:0 with
  | Error _ -> invalid_arg "Nand.erase_count: out of range"
  | Ok () -> t.data.(block).erases

let total_erases t = t.erase_total
let reads t = t.read_count
let programs t = t.program_count

(* Checkpointing: programmed pages sparsely, per block, plus wear and op
   counters. Page CRCs never travel — they are a pure function of the
   page bytes and are recomputed lazily after restore. *)
module Snapshot = Lastcpu_sim.Snapshot

let save w t =
  Snapshot.W.varint w t.geo.blocks;
  Snapshot.W.varint w t.geo.pages_per_block;
  Snapshot.W.varint w t.geo.page_size;
  Array.iter
    (fun blk ->
      Snapshot.W.varint w blk.erases;
      let programmed = ref [] in
      Array.iteri
        (fun i p ->
          match p with
          | None -> ()
          | Some b -> programmed := (i, b) :: !programmed)
        blk.pages;
      Snapshot.W.list w
        (fun w (i, b) ->
          Snapshot.W.varint w i;
          Snapshot.W.string w (Bytes.to_string b))
        (List.rev !programmed))
    t.data;
  Snapshot.W.varint w t.read_count;
  Snapshot.W.varint w t.program_count;
  Snapshot.W.varint w t.erase_total

let restore r t =
  let blocks = Snapshot.R.varint r in
  let pages_per_block = Snapshot.R.varint r in
  let page_size = Snapshot.R.varint r in
  if
    blocks <> t.geo.blocks
    || pages_per_block <> t.geo.pages_per_block
    || page_size <> t.geo.page_size
  then invalid_arg "Nand.restore: geometry differs from checkpoint";
  Array.iter
    (fun blk ->
      blk.erases <- Snapshot.R.varint r;
      Array.fill blk.pages 0 pages_per_block None;
      Array.fill blk.crcs 0 pages_per_block (-1);
      let n = Snapshot.R.varint r in
      for _ = 1 to n do
        let i = Snapshot.R.varint r in
        let contents = Snapshot.R.string r in
        if i < 0 || i >= pages_per_block || String.length contents <> page_size
        then raise (Snapshot.R.Corrupt "nand page out of shape");
        blk.pages.(i) <- Some (Bytes.of_string contents)
      done)
    t.data;
  t.read_count <- Snapshot.R.varint r;
  t.program_count <- Snapshot.R.varint r;
  t.erase_total <- Snapshot.R.varint r
