(** Page-mapped flash translation layer.

    Presents a logical block device (read/write 4 KiB logical pages) over
    raw NAND: out-of-place writes, invalidation of superseded pages,
    greedy-with-wear-awareness garbage collection, and write-amplification
    accounting. This is the "smart" in the smart SSD: it runs on the device
    itself, with no host involvement — a concrete instance of the paper's
    self-managed device resource (§2.1). *)

type t

val create :
  ?nand:Nand.t ->
  ?op_ratio:float ->
  ?metrics:Lastcpu_sim.Metrics.t ->
  ?actor:string ->
  unit ->
  t
(** [op_ratio] is over-provisioning: the fraction of physical blocks
    reserved beyond the exported logical capacity (default 0.125).
    Telemetry (host_writes, gc_moves, gc_runs, free_blocks gauge)
    registers under [actor] (default ["ftl"]) in [metrics] (default: a
    private registry). *)

val logical_pages : t -> int
(** Number of addressable logical pages. *)

val page_size : t -> int

val read : t -> lpn:int -> (string, string) result
(** Unwritten logical pages read as zeroes. *)

val write : t -> lpn:int -> string -> (unit, string) result
(** Out-of-place write; triggers GC when free blocks run low. *)

val trim : t -> lpn:int -> unit
(** Drop the mapping (logical delete). *)

val flush_stats : t -> unit

(** Accounting: *)

val gc_runs : t -> int
val moved_pages : t -> int
(** Valid pages relocated by GC. *)

val host_writes : t -> int

val write_amplification : t -> float
(** (host writes + GC moves) / host writes; [1.0] when no GC has run. *)

val max_erase_skew : t -> int
(** Difference between max and min per-block erase counts (wear-leveling
    quality). *)

val nand : t -> Nand.t

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append the translation state — map, page states, free list (in order;
    wear leveling depends on it), active block (checkpointing). The NAND
    underneath is saved separately by its owner. *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Overwrite the translation state with state written by {!save}.
    @raise Invalid_argument if the logical size differs from the checkpoint.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
