(* Page-level mapping FTL.

   State per physical page: free (erased), valid (holds a live lpn) or
   invalid (superseded, awaiting GC). Writes go to the current "active"
   block, append-style. When free blocks fall below a low watermark, GC
   picks a victim by greedy benefit (most invalid pages), breaking ties
   toward low erase count for wear leveling, relocates live pages into the
   active stream, and erases the victim. *)

module Metrics = Lastcpu_sim.Metrics

type page_info = Free | Valid of int (* lpn *) | Invalid

type t = {
  nand : Nand.t;
  geo : Nand.geometry;
  logical : int;
  map : int array;  (* lpn -> physical page number, -1 = unmapped *)
  state : page_info array;  (* ppn -> state *)
  free_in_block : int array;  (* block -> next unprogrammed page index *)
  invalid_in_block : int array;
  mutable active : int;  (* block receiving new writes *)
  mutable free_blocks : int list;  (* fully erased, not active *)
  mutable free_block_count : int;
  m_host_writes : Metrics.counter;
  m_gc_moves : Metrics.counter;
  m_gc_runs : Metrics.counter;
  m_free_blocks : Metrics.gauge;
}

let ppn ~geo ~block ~page = (block * geo.Nand.pages_per_block) + page
let block_of ~geo p = p / geo.Nand.pages_per_block
let page_of ~geo p = p mod geo.Nand.pages_per_block

let create ?nand ?(op_ratio = 0.125) ?metrics ?(actor = "ftl") () =
  let nand = match nand with Some n -> n | None -> Nand.create () in
  let geo = Nand.geometry nand in
  if geo.blocks < 4 then invalid_arg "Ftl.create: need at least 4 blocks";
  let reserve =
    let r = int_of_float (ceil (float_of_int geo.blocks *. op_ratio)) in
    max 2 r
  in
  let logical = (geo.blocks - reserve) * geo.pages_per_block in
  let total_pages = geo.blocks * geo.pages_per_block in
  let free_blocks = List.init (geo.blocks - 1) (fun i -> i + 1) in
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let t =
    {
      nand;
      geo;
      logical;
      map = Array.make logical (-1);
      state = Array.make total_pages Free;
      free_in_block = Array.make geo.blocks 0;
      invalid_in_block = Array.make geo.blocks 0;
      active = 0;
      free_blocks;
      free_block_count = geo.blocks - 1;
      m_host_writes = Metrics.counter m ~actor ~name:"host_writes";
      m_gc_moves = Metrics.counter m ~actor ~name:"gc_moves";
      m_gc_runs = Metrics.counter m ~actor ~name:"gc_runs";
      m_free_blocks = Metrics.gauge m ~actor ~name:"free_blocks";
    }
  in
  Metrics.set t.m_free_blocks (float_of_int t.free_block_count);
  t

let logical_pages t = t.logical
let page_size t = t.geo.page_size
let nand t = t.nand

let check_lpn t lpn =
  if lpn < 0 || lpn >= t.logical then Error "lpn out of range" else Ok ()

let read t ~lpn =
  match check_lpn t lpn with
  | Error _ as e -> e
  | Ok () ->
    let p = t.map.(lpn) in
    if p < 0 then Ok (String.make t.geo.page_size '\000')
    else
      Nand.read_page t.nand ~block:(block_of ~geo:t.geo p)
        ~page:(page_of ~geo:t.geo p)

let take_free_block t =
  match t.free_blocks with
  | [] -> None
  | b :: rest ->
    t.free_blocks <- rest;
    t.free_block_count <- t.free_block_count - 1;
    Metrics.set t.m_free_blocks (float_of_int t.free_block_count);
    Some b

(* Program [data] into the next free page of the active block, advancing to
   a fresh block when the active one fills. Returns the ppn used. *)
let rec append t data =
  let blk = t.active in
  let page = t.free_in_block.(blk) in
  if page >= t.geo.pages_per_block then begin
    match take_free_block t with
    | None -> Error "no free blocks (GC failed to reclaim)"
    | Some b ->
      t.active <- b;
      append t data
  end
  else begin
    match Nand.program_page t.nand ~block:blk ~page data with
    | Error _ as e -> e
    | Ok () ->
      t.free_in_block.(blk) <- page + 1;
      Ok (ppn ~geo:t.geo ~block:blk ~page)
  end

let invalidate t p =
  t.state.(p) <- Invalid;
  t.invalid_in_block.(block_of ~geo:t.geo p) <-
    t.invalid_in_block.(block_of ~geo:t.geo p) + 1

(* Victim selection: maximize invalid pages; tie-break on lower erase count
   (wear leveling). Only fully-programmed, non-active blocks qualify. *)
let pick_victim t =
  let best = ref None in
  for b = 0 to t.geo.blocks - 1 do
    if b <> t.active && t.free_in_block.(b) = t.geo.pages_per_block then begin
      let inv = t.invalid_in_block.(b) in
      if inv > 0 then begin
        let better =
          match !best with
          | None -> true
          | Some (b', inv') ->
            inv > inv'
            || (inv = inv'
               && Nand.erase_count t.nand ~block:b
                  < Nand.erase_count t.nand ~block:b')
        in
        if better then best := Some (b, inv)
      end
    end
  done;
  Option.map fst !best

let gc_low_watermark = 1

let rec gc t =
  match pick_victim t with
  | None -> Error "gc: no victim with invalid pages"
  | Some victim ->
    Metrics.incr t.m_gc_runs;
    (* Relocate live pages. *)
    let rec move page res =
      if page >= t.geo.pages_per_block then res
      else begin
        let p = ppn ~geo:t.geo ~block:victim ~page in
        match t.state.(p) with
        | Valid lpn -> (
          match Nand.read_page t.nand ~block:victim ~page with
          | Error e -> Error e
          | Ok data -> (
            match append t data with
            | Error e -> Error e
            | Ok p' ->
              t.state.(p') <- Valid lpn;
              t.map.(lpn) <- p';
              Metrics.incr t.m_gc_moves;
              move (page + 1) res))
        | Free | Invalid -> move (page + 1) res
      end
    in
    (match move 0 (Ok ()) with
    | Error _ as e -> e
    | Ok () -> (
      match Nand.erase_block t.nand ~block:victim with
      | Error _ as e -> e
      | Ok () ->
        Array.iteri
          (fun i s ->
            ignore s;
            let p = ppn ~geo:t.geo ~block:victim ~page:i in
            t.state.(p) <- Free)
          (Array.make t.geo.pages_per_block ());
        t.free_in_block.(victim) <- 0;
        t.invalid_in_block.(victim) <- 0;
        t.free_blocks <- t.free_blocks @ [ victim ];
        t.free_block_count <- t.free_block_count + 1;
        Metrics.set t.m_free_blocks (float_of_int t.free_block_count);
        if t.free_block_count <= gc_low_watermark then gc t else Ok ()))

let ensure_space t =
  if t.free_block_count <= gc_low_watermark then
    match gc t with
    | Ok () -> Ok ()
    | Error _ when t.free_block_count > 0 -> Ok () (* still usable *)
    | Error _ as e -> e
  else Ok ()

let write t ~lpn data =
  match check_lpn t lpn with
  | Error _ as e -> e
  | Ok () ->
    if String.length data > t.geo.page_size then Error "data exceeds page size"
    else begin
      match ensure_space t with
      | Error _ as e -> e
      | Ok () -> (
        match append t data with
        | Error _ as e -> e
        | Ok p ->
          Metrics.incr t.m_host_writes;
          let old = t.map.(lpn) in
          if old >= 0 then invalidate t old;
          t.map.(lpn) <- p;
          t.state.(p) <- Valid lpn;
          Ok ())
    end

let trim t ~lpn =
  match check_lpn t lpn with
  | Error _ -> ()
  | Ok () ->
    let p = t.map.(lpn) in
    if p >= 0 then begin
      invalidate t p;
      t.map.(lpn) <- -1
    end

let flush_stats _t = ()

let gc_runs t = Metrics.counter_value t.m_gc_runs
let moved_pages t = Metrics.counter_value t.m_gc_moves
let host_writes t = Metrics.counter_value t.m_host_writes

let write_amplification t =
  let hw = host_writes t in
  if hw = 0 then 1.0 else float_of_int (hw + moved_pages t) /. float_of_int hw

(* Checkpointing: the full translation state — mapping table, per-page
   states, per-block fill/invalid counts, the active block and the free
   list (order matters: blocks are taken from the head and GC appends to
   the tail, so wear leveling depends on it). The NAND underneath is saved
   by its owner, not here. *)
module Snapshot = Lastcpu_sim.Snapshot

let save w t =
  Snapshot.W.varint w t.logical;
  Snapshot.W.array w (fun w p -> Snapshot.W.vint w p) t.map;
  Snapshot.W.array w
    (fun w s ->
      match s with
      | Free -> Snapshot.W.u8 w 0
      | Valid lpn ->
        Snapshot.W.u8 w 1;
        Snapshot.W.varint w lpn
      | Invalid -> Snapshot.W.u8 w 2)
    t.state;
  Snapshot.W.array w (fun w n -> Snapshot.W.varint w n) t.free_in_block;
  Snapshot.W.array w (fun w n -> Snapshot.W.varint w n) t.invalid_in_block;
  Snapshot.W.varint w t.active;
  Snapshot.W.list w (fun w b -> Snapshot.W.varint w b) t.free_blocks;
  Snapshot.W.varint w t.free_block_count

let restore r t =
  let logical = Snapshot.R.varint r in
  if logical <> t.logical then
    invalid_arg "Ftl.restore: logical size differs from checkpoint";
  let read_into dest decode name =
    let n = Snapshot.R.varint r in
    if n <> Array.length dest then
      raise (Snapshot.R.Corrupt ("ftl " ^ name ^ " length mismatch"));
    for i = 0 to n - 1 do
      dest.(i) <- decode r
    done
  in
  read_into t.map Snapshot.R.vint "map";
  read_into t.state
    (fun r ->
      match Snapshot.R.u8 r with
      | 0 -> Free
      | 1 -> Valid (Snapshot.R.varint r)
      | 2 -> Invalid
      | _ -> raise (Snapshot.R.Corrupt "bad ftl page state tag"))
    "state";
  read_into t.free_in_block Snapshot.R.varint "free_in_block";
  read_into t.invalid_in_block Snapshot.R.varint "invalid_in_block";
  t.active <- Snapshot.R.varint r;
  t.free_blocks <- Snapshot.R.list r Snapshot.R.varint;
  t.free_block_count <- Snapshot.R.varint r;
  Metrics.set t.m_free_blocks (float_of_int t.free_block_count)

let max_erase_skew t =
  let mn = ref max_int and mx = ref 0 in
  for b = 0 to t.geo.blocks - 1 do
    let e = Nand.erase_count t.nand ~block:b in
    if e < !mn then mn := e;
    if e > !mx then mx := e
  done;
  !mx - !mn
