(** Set-associative translation lookaside buffer.

    Caches (pasid, virtual page) → (physical page, perm). The IOMMU
    consults it before walking page tables; the bus invalidates entries on
    unmap/revoke. LRU replacement within each set. *)

type t

type entry = { ppn : int64; perm : Proto_perm.t }

val create :
  ?sets:int ->
  ?ways:int ->
  ?metrics:Lastcpu_sim.Metrics.t ->
  ?actor:string ->
  unit ->
  t
(** Default geometry: 64 sets x 4 ways = 256 entries. [sets] must be a
    power of two. Counters register as [actor]/tlb_hits|tlb_misses|
    tlb_evictions in [metrics] (default: a private registry, actor
    ["tlb"]). *)

val lookup : t -> pasid:int -> vpn:int64 -> entry option
(** Updates LRU state on hit. *)

val probe : t -> pasid:int -> vpn:int -> int
(** Allocation-free [lookup] for the translate fast path: the physical
    page number on a (pasid, vpn) tag match, or [-1] on a miss. Counter
    and LRU effects are identical to [lookup] — a tag match counts as a
    hit even when the cached permissions turn out to be insufficient
    (read [probe_perm] to decide). *)

val probe_perm : t -> Proto_perm.t
(** Permissions of the most recent [probe] hit. Only meaningful directly
    after a non-negative [probe] return. *)

val insert : t -> pasid:int -> vpn:int64 -> entry -> unit
val invalidate_page : t -> pasid:int -> vpn:int64 -> unit
val invalidate_pasid : t -> pasid:int -> unit
val invalidate_all : t -> unit

val hits : t -> int
val misses : t -> int
val evictions : t -> int
(** Valid entries displaced by [insert] for a different page. *)

val reset_counters : t -> unit
val capacity : t -> int

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append the full slot array and LRU clock (checkpointing): replacement
    state is observable through future hit/miss counts. *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Overwrite the slots with state written by {!save}.
    @raise Invalid_argument if the geometry differs from the checkpoint.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
