(* Shared alias so the IOMMU modules use the protocol's permission type
   without repeating the full path everywhere. *)
type t = Lastcpu_proto.Types.perm

let subsumes = Lastcpu_proto.Types.perm_subsumes
let to_string = Lastcpu_proto.Types.perm_to_string

(* Compact encoding for checkpoints: bit 0 read, bit 1 write, bit 2 exec. *)
let to_bits (p : t) =
  (if p.Lastcpu_proto.Types.read then 1 else 0)
  lor (if p.Lastcpu_proto.Types.write then 2 else 0)
  lor if p.Lastcpu_proto.Types.exec then 4 else 0

let of_bits b =
  {
    Lastcpu_proto.Types.read = b land 1 <> 0;
    write = b land 2 <> 0;
    exec = b land 4 <> 0;
  }
