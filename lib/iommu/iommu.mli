(** The per-device IOMMU unit.

    Gates every memory access a device makes. Holds one page table per
    PASID (application address space, §2.3), a TLB, and a fault hook: the
    paper's error model (§4) delivers translation faults to the *attached
    device*, which must handle them itself.

    Only the privileged system bus calls [map]/[unmap] — devices have no
    handle on their own IOMMU (enforced structurally: the device framework
    never exposes it). *)

type t

type access = Read | Write | Exec

type fault = {
  pasid : int;
  va : int64;
  access : access;
  reason : fault_reason;
}

and fault_reason = Not_mapped | Protection

type translate_result = Ok_pa of int64 | Fault of fault

val create :
  ?tlb_sets:int ->
  ?tlb_ways:int ->
  ?no_tlb:bool ->
  ?metrics:Lastcpu_sim.Metrics.t ->
  ?actor:string ->
  unit ->
  t
(** [no_tlb:true] bypasses the TLB entirely (ablation for T5). Counters
    register under [actor] (default ["iommu"]) in [metrics] (default: a
    private registry, for units created outside an engine context). *)

val attach_fault_handler : t -> (fault -> unit) -> unit
(** The attached device's fault queue. At most one handler. *)

val add_fault_observer : t -> (fault -> unit) -> unit
(** Additional read-only fault taps, run after the handler in registration
    order. The bus's quarantine scorer listens here: an out-of-grant DMA is
    evidence of misbehavior, but the device's own fault queue stays the
    single handler. Observers are closures and are re-attached on rebuild,
    like the handler. *)

val on_invalidate : t -> (pasid:int -> unit) -> unit
(** Mapping-change notification: runs (in registration order) whenever a
    PASID's translations shrink — {!unmap} and {!clear_pasid}, which the
    bus's capability revocation and quarantine paths both funnel through.
    Holders of cached translations (the DMA layer's direct-map grants)
    listen here and drop them. Hooks are host-side bookkeeping: they touch
    no registry counter, so firing them never moves a digest. Closures,
    re-attached on rebuild like fault handlers. *)

val map :
  t -> pasid:int -> va:int64 -> pa:int64 -> bytes:int64 -> perm:Proto_perm.t ->
  (unit, string) result
(** Privileged: program a contiguous mapping. Creates the PASID's table on
    first use. *)

val unmap : t -> pasid:int -> va:int64 -> bytes:int64 -> int
(** Privileged: remove mappings and invalidate the TLB. Returns pages
    removed. *)

val clear_pasid : t -> pasid:int -> unit
(** Tear down an entire address space (application teardown). *)

val translate : t -> pasid:int -> va:int64 -> access:access -> translate_result
(** Translate one access; on fault, the fault handler (if any) runs before
    this returns. *)

val translate_pa : t -> pasid:int -> vai:int -> access:access -> int
(** Allocation-free [translate] for per-byte DMA: native-int virtual
    address in, physical address out, or [-1] on a fault (read
    {!last_fault} for the record; handlers have already run). Identical
    counter and fault-delivery effects to [translate] — it is the same
    code path. *)

val last_fault : t -> fault
(** The fault behind the most recent [-1] from [translate_pa].
    @raise Invalid_argument if no fault was ever delivered. *)

val pasids : t -> int list
val mapped_pages : t -> pasid:int -> int

val probe : t -> pasid:int -> va:int64 -> int64 option
(** Side-effect-free translation probe: no TLB fill, no counters, no fault
    delivery. Containment assertions use it to ask whether a PASID can
    reach a physical address without perturbing any digest. *)

val iter_mappings : t -> pasid:int -> (va:int64 -> pa:int64 -> unit) -> unit
(** Enumerate current translations of one address space in deterministic
    (trie index = ascending VA) order. Side-effect-free, like {!probe};
    the fuzzer walks these to prove a rogue device's IOMMU never acquired
    a path into another tenant's frames. *)

(** Counters for the cost model and T5: *)

val tlb_hits : t -> int
val tlb_misses : t -> int
val tlb_evictions : t -> int
val translations : t -> int
(** Total [translate] calls (TLB hits + misses + no-TLB walks). *)

val walks : t -> int
(** Completed page-table walks (== TLB misses that found a mapping, plus
    walks with no TLB). *)

val walk_levels : t -> int
(** Total levels touched across all walks (each full walk adds 4). *)

val faults : t -> int
val reset_counters : t -> unit

val access_perm : access -> Proto_perm.t
(** The minimal permission required for an access. *)

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append all per-PASID mappings and the TLB state (checkpointing).
    Counters live in the shared Metrics registry and restore there; the
    fault handler is re-attached by the rebuilt device. *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Overwrite tables and TLB with state written by {!save}.
    @raise Invalid_argument if TLB presence/geometry differs.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
