type entry = { ppn : int64; perm : Proto_perm.t }

type slot = {
  mutable valid : bool;
  mutable pasid : int;
  mutable vpn : int64;
  mutable data : entry;
  mutable lru : int;  (* higher = more recently used *)
}

module Metrics = Lastcpu_sim.Metrics

type t = {
  sets : int;
  ways : int;
  slots : slot array array;  (* sets x ways *)
  mutable clock : int;
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_evictions : Metrics.counter;
}

let dummy_entry = { ppn = 0L; perm = Lastcpu_proto.Types.perm_none }

let create ?(sets = 64) ?(ways = 4) ?metrics ?(actor = "tlb") () =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Tlb.create: sets must be a power of two";
  if ways <= 0 then invalid_arg "Tlb.create: ways must be positive";
  let mk_slot () =
    { valid = false; pasid = -1; vpn = -1L; data = dummy_entry; lru = 0 }
  in
  (* Without a shared registry (standalone unit tests), counters live in a
     private one so the hot path never branches on an option. *)
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    sets;
    ways;
    slots = Array.init sets (fun _ -> Array.init ways (fun _ -> mk_slot ()));
    clock = 0;
    m_hits = Metrics.counter m ~actor ~name:"tlb_hits";
    m_misses = Metrics.counter m ~actor ~name:"tlb_misses";
    m_evictions = Metrics.counter m ~actor ~name:"tlb_evictions";
  }

let set_index t ~pasid ~vpn =
  (* Mix pasid into the index so different address spaces do not collide
     on identical low page numbers. *)
  let h = Int64.to_int (Int64.logxor vpn (Int64.of_int (pasid * 0x9E3779B1))) in
  h land (t.sets - 1)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let lookup t ~pasid ~vpn =
  let set = t.slots.(set_index t ~pasid ~vpn) in
  let found = ref None in
  Array.iter
    (fun s ->
      if s.valid && s.pasid = pasid && Int64.equal s.vpn vpn then begin
        s.lru <- tick t;
        found := Some s.data
      end)
    set;
  (match !found with
  | Some _ -> Metrics.incr t.m_hits
  | None -> Metrics.incr t.m_misses);
  !found

let insert t ~pasid ~vpn data =
  let set = t.slots.(set_index t ~pasid ~vpn) in
  (* Reuse an existing slot for the same page, else the LRU victim. *)
  let victim = ref set.(0) in
  Array.iter
    (fun s ->
      if s.valid && s.pasid = pasid && Int64.equal s.vpn vpn then victim := s
      else if not s.valid && !victim.valid then victim := s
      else if s.lru < !victim.lru && !victim.valid && s.valid then victim := s)
    set;
  let s = !victim in
  if s.valid && not (s.pasid = pasid && Int64.equal s.vpn vpn) then
    Metrics.incr t.m_evictions;
  s.valid <- true;
  s.pasid <- pasid;
  s.vpn <- vpn;
  s.data <- data;
  s.lru <- tick t

let invalidate_page t ~pasid ~vpn =
  let set = t.slots.(set_index t ~pasid ~vpn) in
  Array.iter
    (fun s ->
      if s.valid && s.pasid = pasid && Int64.equal s.vpn vpn then
        s.valid <- false)
    set

let invalidate_pasid t ~pasid =
  Array.iter
    (fun set ->
      Array.iter (fun s -> if s.valid && s.pasid = pasid then s.valid <- false) set)
    t.slots

let invalidate_all t =
  Array.iter (fun set -> Array.iter (fun s -> s.valid <- false) set) t.slots

let hits t = Metrics.counter_value t.m_hits
let misses t = Metrics.counter_value t.m_misses
let evictions t = Metrics.counter_value t.m_evictions

let reset_counters t =
  Metrics.reset_counter t.m_hits;
  Metrics.reset_counter t.m_misses;
  Metrics.reset_counter t.m_evictions

let capacity t = t.sets * t.ways

(* Checkpointing: replacement state (valid bits, LRU stamps, the clock) is
   observable through future hit/miss counts, so the whole slot array is
   captured verbatim. Counters live in the shared registry and restore
   there. *)
module Snapshot = Lastcpu_sim.Snapshot

let save w t =
  Snapshot.W.varint w t.sets;
  Snapshot.W.varint w t.ways;
  Snapshot.W.varint w t.clock;
  Array.iter
    (fun set ->
      Array.iter
        (fun s ->
          Snapshot.W.bool w s.valid;
          Snapshot.W.vint w s.pasid;
          Snapshot.W.i64 w s.vpn;
          Snapshot.W.i64 w s.data.ppn;
          Snapshot.W.u8 w (Proto_perm.to_bits s.data.perm);
          Snapshot.W.varint w s.lru)
        set)
    t.slots

let restore r t =
  let sets = Snapshot.R.varint r in
  let ways = Snapshot.R.varint r in
  if sets <> t.sets || ways <> t.ways then
    invalid_arg "Tlb.restore: geometry differs from checkpoint";
  t.clock <- Snapshot.R.varint r;
  Array.iter
    (fun set ->
      Array.iter
        (fun s ->
          s.valid <- Snapshot.R.bool r;
          s.pasid <- Snapshot.R.vint r;
          s.vpn <- Snapshot.R.i64 r;
          let ppn = Snapshot.R.i64 r in
          let perm = Proto_perm.of_bits (Snapshot.R.u8 r) in
          s.data <- { ppn; perm };
          s.lru <- Snapshot.R.varint r)
        set)
    t.slots
