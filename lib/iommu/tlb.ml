type entry = { ppn : int64; perm : Proto_perm.t }

(* Slots hold page numbers as native ints: every DMA byte access funnels
   through [probe], and boxed Int64 keys would put ~10 minor-heap
   allocations on that path. Page numbers are < 2^51 in this simulation,
   so the conversion at the (cold) int64 API boundary is exact. *)
type slot = {
  mutable valid : bool;
  mutable pasid : int;
  mutable vpn : int;
  mutable ppn : int;
  mutable perm : Proto_perm.t;
  mutable lru : int;  (* higher = more recently used *)
}

module Metrics = Lastcpu_sim.Metrics

type t = {
  sets : int;
  ways : int;
  slots : slot array array;  (* sets x ways *)
  mutable clock : int;
  mutable last_perm : Proto_perm.t;  (* perms of the latest [probe] hit *)
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_evictions : Metrics.counter;
}

let perm_none = Lastcpu_proto.Types.perm_none

let create ?(sets = 64) ?(ways = 4) ?metrics ?(actor = "tlb") () =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Tlb.create: sets must be a power of two";
  if ways <= 0 then invalid_arg "Tlb.create: ways must be positive";
  let mk_slot () =
    { valid = false; pasid = -1; vpn = -1; ppn = 0; perm = perm_none; lru = 0 }
  in
  (* Without a shared registry (standalone unit tests), counters live in a
     private one so the hot path never branches on an option. *)
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    sets;
    ways;
    slots = Array.init sets (fun _ -> Array.init ways (fun _ -> mk_slot ()));
    clock = 0;
    last_perm = perm_none;
    m_hits = Metrics.counter m ~actor ~name:"tlb_hits";
    m_misses = Metrics.counter m ~actor ~name:"tlb_misses";
    m_evictions = Metrics.counter m ~actor ~name:"tlb_evictions";
  }

let set_index t ~pasid ~vpn =
  (* Mix pasid into the index so different address spaces do not collide
     on identical low page numbers. *)
  (vpn lxor (pasid * 0x9E3779B1)) land (t.sets - 1)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* The translate fast path: no closure, no option, no boxing. Returns the
   physical page number on a (pasid, vpn) match — permission checking is
   the caller's job, via [probe_perm] — or -1 on a miss. Counter and LRU
   effects are exactly those of [lookup]: a tag match counts as a hit
   even if the permissions later prove insufficient. *)
let probe t ~pasid ~vpn =
  let set = Array.unsafe_get t.slots (set_index t ~pasid ~vpn) in
  let n = Array.length set in
  let rec go i =
    if i >= n then begin
      Metrics.incr t.m_misses;
      -1
    end
    else begin
      let s = Array.unsafe_get set i in
      if s.valid && s.pasid = pasid && s.vpn = vpn then begin
        s.lru <- tick t;
        t.last_perm <- s.perm;
        Metrics.incr t.m_hits;
        s.ppn
      end
      else go (i + 1)
    end
  in
  go 0

let probe_perm t = t.last_perm

let lookup t ~pasid ~vpn =
  let ppn = probe t ~pasid ~vpn:(Int64.to_int vpn) in
  if ppn < 0 then None
  else Some { ppn = Int64.of_int ppn; perm = t.last_perm }

let insert t ~pasid ~vpn (e : entry) =
  let vpn = Int64.to_int vpn in
  let ppn = Int64.to_int e.ppn in
  let set = t.slots.(set_index t ~pasid ~vpn) in
  (* Reuse an existing slot for the same page, else the LRU victim. *)
  let victim = ref set.(0) in
  Array.iter
    (fun s ->
      if s.valid && s.pasid = pasid && s.vpn = vpn then victim := s
      else if not s.valid && !victim.valid then victim := s
      else if s.lru < !victim.lru && !victim.valid && s.valid then victim := s)
    set;
  let s = !victim in
  if s.valid && not (s.pasid = pasid && s.vpn = vpn) then
    Metrics.incr t.m_evictions;
  s.valid <- true;
  s.pasid <- pasid;
  s.vpn <- vpn;
  s.ppn <- ppn;
  s.perm <- e.perm;
  s.lru <- tick t

let invalidate_page t ~pasid ~vpn =
  let vpn = Int64.to_int vpn in
  let set = t.slots.(set_index t ~pasid ~vpn) in
  Array.iter
    (fun s -> if s.valid && s.pasid = pasid && s.vpn = vpn then s.valid <- false)
    set

let invalidate_pasid t ~pasid =
  Array.iter
    (fun set ->
      Array.iter (fun s -> if s.valid && s.pasid = pasid then s.valid <- false) set)
    t.slots

let invalidate_all t =
  Array.iter (fun set -> Array.iter (fun s -> s.valid <- false) set) t.slots

let hits t = Metrics.counter_value t.m_hits
let misses t = Metrics.counter_value t.m_misses
let evictions t = Metrics.counter_value t.m_evictions

let reset_counters t =
  Metrics.reset_counter t.m_hits;
  Metrics.reset_counter t.m_misses;
  Metrics.reset_counter t.m_evictions

let capacity t = t.sets * t.ways

(* Checkpointing: replacement state (valid bits, LRU stamps, the clock) is
   observable through future hit/miss counts, so the whole slot array is
   captured verbatim. Counters live in the shared registry and restore
   there. Page numbers still travel as i64 — the on-disk format predates
   the int-keyed slots and must keep restoring old checkpoints. *)
module Snapshot = Lastcpu_sim.Snapshot

let save w t =
  Snapshot.W.varint w t.sets;
  Snapshot.W.varint w t.ways;
  Snapshot.W.varint w t.clock;
  Array.iter
    (fun set ->
      Array.iter
        (fun s ->
          Snapshot.W.bool w s.valid;
          Snapshot.W.vint w s.pasid;
          Snapshot.W.i64 w (Int64.of_int s.vpn);
          Snapshot.W.i64 w (Int64.of_int s.ppn);
          Snapshot.W.u8 w (Proto_perm.to_bits s.perm);
          Snapshot.W.varint w s.lru)
        set)
    t.slots

let restore r t =
  let sets = Snapshot.R.varint r in
  let ways = Snapshot.R.varint r in
  if sets <> t.sets || ways <> t.ways then
    invalid_arg "Tlb.restore: geometry differs from checkpoint";
  t.clock <- Snapshot.R.varint r;
  Array.iter
    (fun set ->
      Array.iter
        (fun s ->
          s.valid <- Snapshot.R.bool r;
          s.pasid <- Snapshot.R.vint r;
          s.vpn <- Int64.to_int (Snapshot.R.i64 r);
          s.ppn <- Int64.to_int (Snapshot.R.i64 r);
          s.perm <- Proto_perm.of_bits (Snapshot.R.u8 r);
          s.lru <- Snapshot.R.varint r)
        set)
    t.slots
