module Layout = Lastcpu_mem.Layout
module Snapshot = Lastcpu_sim.Snapshot

type prot = Proto_perm.t

(* Radix tree: three interior levels of 512-entry arrays, then a leaf level
   whose entries carry (pa, perm). Interior nodes are allocated lazily. *)
type leaf = { pa : int64; perm : prot }

type node =
  | Interior of node option array  (* 512 entries *)
  | Leaves of leaf option array  (* 512 entries *)

type t = { mutable root : node option array; mutable mapped : int }

let fanout = 512
let bits_per_level = 9
let levels = 4
let va_bits = Layout.page_bits + (levels * bits_per_level) (* 48 *)
let va_limit = Int64.shift_left 1L va_bits

type walk_result =
  | Translated of { pa : int64; levels : int; perm : prot }
  | No_mapping of { level : int }
  | Permission_denied of { perm : prot }

let create () = { root = Array.make fanout None; mapped = 0 }

let index va level =
  (* level 0 is the root, level 3 selects the leaf entry. *)
  let shift = Layout.page_bits + ((levels - 1 - level) * bits_per_level) in
  Int64.to_int (Int64.logand (Int64.shift_right_logical va shift) 0x1ffL)

let valid_va va = va >= 0L && va < va_limit

let map t ~va ~pa ~perm =
  if not (Layout.is_page_aligned va) then Error "va not page-aligned"
  else if not (Layout.is_page_aligned pa) then Error "pa not page-aligned"
  else if not (valid_va va) then Error "va out of range"
  else begin
    let get_interior arr i =
      match arr.(i) with
      | Some (Interior a) -> a
      | Some (Leaves _) -> assert false
      | None ->
        let a = Array.make fanout None in
        arr.(i) <- Some (Interior a);
        a
    in
    let l1 = get_interior t.root (index va 0) in
    let l2 = get_interior l1 (index va 1) in
    let leaves =
      match l2.(index va 2) with
      | Some (Leaves a) -> a
      | Some (Interior _) -> assert false
      | None ->
        let a = Array.make fanout None in
        l2.(index va 2) <- Some (Leaves a);
        a
    in
    let i = index va 3 in
    match leaves.(i) with
    | Some _ -> Error "already mapped"
    | None ->
      leaves.(i) <- Some { pa; perm };
      t.mapped <- t.mapped + 1;
      Ok ()
  end

let unmap t ~va =
  if not (Layout.is_page_aligned va) || not (valid_va va) then false
  else begin
    let step arr i =
      match arr.(i) with
      | Some (Interior a) -> Some a
      | Some (Leaves _) | None -> None
    in
    match step t.root (index va 0) with
    | None -> false
    | Some l1 -> (
      match step l1 (index va 1) with
      | None -> false
      | Some l2 -> (
        match l2.(index va 2) with
        | Some (Leaves leaves) -> (
          let i = index va 3 in
          match leaves.(i) with
          | Some _ ->
            leaves.(i) <- None;
            t.mapped <- t.mapped - 1;
            true
          | None -> false)
        | Some (Interior _) | None -> false))
  end

let walk t ~va ~access =
  if not (valid_va va) then No_mapping { level = 0 }
  else begin
    let va_page = Layout.align_down va in
    let step arr i level =
      match arr.(i) with
      | Some (Interior a) -> Ok a
      | Some (Leaves _) -> assert false
      | None -> Error level
    in
    match step t.root (index va_page 0) 1 with
    | Error level -> No_mapping { level }
    | Ok l1 -> (
      match step l1 (index va_page 1) 2 with
      | Error level -> No_mapping { level }
      | Ok l2 -> (
        match l2.(index va_page 2) with
        | None -> No_mapping { level = 3 }
        | Some (Interior _) -> assert false
        | Some (Leaves leaves) -> (
          match leaves.(index va_page 3) with
          | None -> No_mapping { level = 4 }
          | Some { pa; perm } ->
            if Proto_perm.subsumes perm access then
              let off = Int64.of_int (Layout.offset_in_page va) in
              Translated { pa = Int64.add pa off; levels; perm }
            else Permission_denied { perm })))
  end

let map_range t ~va ~pa ~bytes ~perm =
  if bytes <= 0L then Error "empty range"
  else begin
    let npages = Layout.pages_of_bytes bytes in
    (* Pre-check so the operation is all-or-nothing. *)
    let rec precheck i =
      if i = npages then Ok ()
      else begin
        let off = Layout.addr_of_page (Int64.of_int i) in
        let va_i = Int64.add va off in
        if not (valid_va va_i) then Error "va out of range"
        else
          match walk t ~va:va_i ~access:Lastcpu_proto.Types.perm_none with
          | No_mapping _ -> precheck (i + 1)
          | Translated _ | Permission_denied _ -> Error "already mapped"
      end
    in
    if not (Layout.is_page_aligned va) then Error "va not page-aligned"
    else if not (Layout.is_page_aligned pa) then Error "pa not page-aligned"
    else
      match precheck 0 with
      | Error _ as e -> e
      | Ok () ->
        for i = 0 to npages - 1 do
          let off = Layout.addr_of_page (Int64.of_int i) in
          match map t ~va:(Int64.add va off) ~pa:(Int64.add pa off) ~perm with
          | Ok () -> ()
          | Error _ -> assert false (* prechecked *)
        done;
        Ok ()
  end

let unmap_range t ~va ~bytes =
  let npages = Layout.pages_of_bytes bytes in
  let count = ref 0 in
  for i = 0 to npages - 1 do
    let off = Layout.addr_of_page (Int64.of_int i) in
    if unmap t ~va:(Int64.add va off) then incr count
  done;
  !count

let mapped_pages t = t.mapped

let reset t =
  t.root <- Array.make fanout None;
  t.mapped <- 0

let iter t f =
  let visit_leaves base3 leaves =
    Array.iteri
      (fun i entry ->
        match entry with
        | None -> ()
        | Some { pa; perm } ->
          let va =
            Int64.logor base3 (Int64.shift_left (Int64.of_int i) Layout.page_bits)
          in
          f ~va ~pa ~perm)
      leaves
  in
  let shift level = Layout.page_bits + ((levels - 1 - level) * bits_per_level) in
  Array.iteri
    (fun i0 n0 ->
      match n0 with
      | None -> ()
      | Some (Leaves _) -> assert false
      | Some (Interior l1) ->
        let b0 = Int64.shift_left (Int64.of_int i0) (shift 0) in
        Array.iteri
          (fun i1 n1 ->
            match n1 with
            | None -> ()
            | Some (Leaves _) -> assert false
            | Some (Interior l2) ->
              let b1 =
                Int64.logor b0 (Int64.shift_left (Int64.of_int i1) (shift 1))
              in
              Array.iteri
                (fun i2 n2 ->
                  match n2 with
                  | None -> ()
                  | Some (Interior _) -> assert false
                  | Some (Leaves leaves) ->
                    let b2 =
                      Int64.logor b1
                        (Int64.shift_left (Int64.of_int i2) (shift 2))
                    in
                    visit_leaves b2 leaves)
                l2)
          l1)
    t.root

(* Checkpointing: the radix structure is derivable from the leaf mappings,
   so the encoding is just the (va, pa, perm) list — [iter] visits leaves
   in ascending va order, which keeps the bytes deterministic. *)
let save w t =
  let entries = ref [] in
  iter t (fun ~va ~pa ~perm -> entries := (va, pa, perm) :: !entries);
  Snapshot.W.list w
    (fun w (va, pa, perm) ->
      Snapshot.W.i64 w va;
      Snapshot.W.i64 w pa;
      Snapshot.W.u8 w (Proto_perm.to_bits perm))
    (List.rev !entries)

let restore r t =
  reset t;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let va = Snapshot.R.i64 r in
    let pa = Snapshot.R.i64 r in
    let perm = Proto_perm.of_bits (Snapshot.R.u8 r) in
    match map t ~va ~pa ~perm with
    | Ok () -> ()
    | Error e -> raise (Snapshot.R.Corrupt ("pagetable entry rejected: " ^ e))
  done
