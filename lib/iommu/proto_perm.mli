(** Alias of the protocol's permission type, so the IOMMU modules share one
    short name for it. *)

type t = Lastcpu_proto.Types.perm

val subsumes : t -> t -> bool
(** [subsumes held wanted]: see {!Lastcpu_proto.Types.perm_subsumes}. *)

val to_string : t -> string

val to_bits : t -> int
(** 3-bit encoding for checkpoints: bit 0 read, bit 1 write, bit 2 exec. *)

val of_bits : int -> t
