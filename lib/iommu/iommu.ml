module Layout = Lastcpu_mem.Layout
module Types = Lastcpu_proto.Types
module Metrics = Lastcpu_sim.Metrics

type access = Read | Write | Exec

type fault = {
  pasid : int;
  va : int64;
  access : access;
  reason : fault_reason;
}

and fault_reason = Not_mapped | Protection

type translate_result = Ok_pa of int64 | Fault of fault

type t = {
  tables : (int, Pagetable.t) Hashtbl.t;  (* pasid -> table *)
  tlb : Tlb.t option;
  mutable fault_handler : (fault -> unit) option;
  mutable fault_observers : (fault -> unit) list;  (* registration order *)
  mutable invalidate_hooks : (pasid:int -> unit) list;  (* registration order *)
  (* Details of the most recent fault [translate_pa] delivered; the
     int-returning fast path cannot carry the record in its result. *)
  mutable last_fault : fault option;
  m_translations : Metrics.counter;
  m_walks : Metrics.counter;
  m_walk_levels : Metrics.counter;
  m_faults : Metrics.counter;
}

let create ?tlb_sets ?tlb_ways ?(no_tlb = false) ?metrics ?(actor = "iommu") () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    tables = Hashtbl.create 8;
    tlb =
      (if no_tlb then None
       else Some (Tlb.create ?sets:tlb_sets ?ways:tlb_ways ~metrics:m ~actor ()));
    fault_handler = None;
    fault_observers = [];
    invalidate_hooks = [];
    last_fault = None;
    m_translations = Metrics.counter m ~actor ~name:"translations";
    m_walks = Metrics.counter m ~actor ~name:"walks";
    m_walk_levels = Metrics.counter m ~actor ~name:"walk_levels";
    m_faults = Metrics.counter m ~actor ~name:"faults";
  }

let attach_fault_handler t f =
  assert (t.fault_handler = None);
  t.fault_handler <- Some f

let add_fault_observer t f = t.fault_observers <- t.fault_observers @ [ f ]

(* Mapping-change notification, the DMI invalidation edge: anything that
   cached a translation (Dma direct-map grants) must drop it when the
   mapping it rode on changes. Hooks are host-side bookkeeping — they
   touch no registry counter, so firing them is digest-neutral. *)
let on_invalidate t f = t.invalidate_hooks <- t.invalidate_hooks @ [ f ]
let fire_invalidate t ~pasid =
  List.iter (fun f -> f ~pasid) t.invalidate_hooks

let table t ~pasid =
  match Hashtbl.find_opt t.tables pasid with
  | Some pt -> pt
  | None ->
    let pt = Pagetable.create () in
    Hashtbl.replace t.tables pasid pt;
    pt

let map t ~pasid ~va ~pa ~bytes ~perm =
  Pagetable.map_range (table t ~pasid) ~va ~pa ~bytes ~perm

let unmap t ~pasid ~va ~bytes =
  match Hashtbl.find_opt t.tables pasid with
  | None -> 0
  | Some pt ->
    let removed = Pagetable.unmap_range pt ~va ~bytes in
    (match t.tlb with
    | None -> ()
    | Some tlb ->
      let npages = Layout.pages_of_bytes bytes in
      for i = 0 to npages - 1 do
        let vpn =
          Layout.page_of_addr (Int64.add va (Layout.addr_of_page (Int64.of_int i)))
        in
        Tlb.invalidate_page tlb ~pasid ~vpn
      done);
    fire_invalidate t ~pasid;
    removed

let clear_pasid t ~pasid =
  Hashtbl.remove t.tables pasid;
  (match t.tlb with
  | None -> ()
  | Some tlb -> Tlb.invalidate_pasid tlb ~pasid);
  fire_invalidate t ~pasid

(* Hoisted constants: [translate] runs per DMA byte, and building a fresh
   permission record per call would allocate on every access. *)
let need_read = Types.perm_r
let need_write = { Types.read = false; write = true; exec = false }
let need_exec = { Types.read = false; write = false; exec = true }

let access_perm = function
  | Read -> need_read
  | Write -> need_write
  | Exec -> need_exec

let deliver_fault t fault =
  Metrics.incr t.m_faults;
  (match t.fault_handler with Some f -> f fault | None -> ());
  List.iter (fun f -> f fault) t.fault_observers;
  Fault fault

(* The TLB miss / no-TLB path: full page-table walk, with walk-depth
   accounting and a TLB refill on success. *)
let translate_walk t ~pasid ~va ~access ~need ~vpn =
  match Hashtbl.find_opt t.tables pasid with
  | None -> deliver_fault t { pasid; va; access; reason = Not_mapped }
  | Some pt -> (
    Metrics.incr t.m_walks;
    match Pagetable.walk pt ~va ~access:need with
    | Pagetable.Translated { pa; levels; perm } ->
      Metrics.incr ~by:levels t.m_walk_levels;
      (match t.tlb with
      | None -> ()
      | Some tlb ->
        Tlb.insert tlb ~pasid ~vpn { Tlb.ppn = Layout.page_of_addr pa; perm });
      Ok_pa pa
    | Pagetable.No_mapping { level } ->
      Metrics.incr ~by:level t.m_walk_levels;
      deliver_fault t { pasid; va; access; reason = Not_mapped }
    | Pagetable.Permission_denied _ ->
      Metrics.incr ~by:4 t.m_walk_levels;
      deliver_fault t { pasid; va; access; reason = Protection })

let page_off_mask = Int64.to_int Layout.page_mask

(* Per-DMA-byte fast path: native-int virtual address in, native-int
   physical address out, or [-1] on a fault (the record is then in
   [last_fault]). Virtual addresses in this simulation are well below
   2^62, so the round trip is exact; on a TLB hit nothing is allocated.
   Counter effects (translations, tlb hits/misses, walks, walk levels,
   faults) are digest material and exactly match the pre-probe
   implementation — [translate] below is the same code path, so the two
   entry points cannot drift. *)
let translate_pa t ~pasid ~vai ~access =
  Metrics.incr t.m_translations;
  let need = access_perm access in
  let slow ~vpn =
    match
      translate_walk t ~pasid ~va:(Int64.of_int vai) ~access ~need ~vpn
    with
    | Ok_pa pa -> Int64.to_int pa
    | Fault f ->
      t.last_fault <- Some f;
      -1
  in
  match t.tlb with
  | Some tlb ->
    let vpn_i = vai lsr Layout.page_bits in
    let ppn = Tlb.probe tlb ~pasid ~vpn:vpn_i in
    if ppn >= 0 then begin
      if Proto_perm.subsumes (Tlb.probe_perm tlb) need then
        (ppn lsl Layout.page_bits) lor (vai land page_off_mask)
      else begin
        (* Cached translation exists but lacks rights: protection fault. *)
        match
          deliver_fault t
            { pasid; va = Int64.of_int vai; access; reason = Protection }
        with
        | Fault f ->
          t.last_fault <- Some f;
          -1
        | Ok_pa _ -> assert false
      end
    end
    else slow ~vpn:(Int64.of_int vpn_i)
  | None -> slow ~vpn:(Int64.of_int (vai lsr Layout.page_bits))

let last_fault t =
  match t.last_fault with
  | Some f -> f
  | None -> invalid_arg "Iommu.last_fault: no fault delivered yet"

let translate t ~pasid ~va ~access =
  let pa = translate_pa t ~pasid ~vai:(Int64.to_int va) ~access in
  if pa >= 0 then Ok_pa (Int64.of_int pa) else Fault (last_fault t)

let pasids t = Lastcpu_sim.Detmap.sorted_keys t.tables

let mapped_pages t ~pasid =
  match Hashtbl.find_opt t.tables pasid with
  | None -> 0
  | Some pt -> Pagetable.mapped_pages pt

(* Side-effect-free translation probe: no TLB fill, no counters, no fault
   delivery. The fuzzer and containment assertions use this to ask "can this
   PASID reach physical address X?" without perturbing the digest. *)
let probe t ~pasid ~va =
  match Hashtbl.find_opt t.tables pasid with
  | None -> None
  | Some pt -> (
    match Pagetable.walk pt ~va ~access:Types.perm_none with
    | Pagetable.Translated { pa; _ } -> Some pa
    | Pagetable.No_mapping _ | Pagetable.Permission_denied _ -> None)

let iter_mappings t ~pasid f =
  match Hashtbl.find_opt t.tables pasid with
  | None -> ()
  | Some pt -> Pagetable.iter pt (fun ~va ~pa ~perm:_ -> f ~va ~pa)

let tlb_hits t = match t.tlb with None -> 0 | Some tlb -> Tlb.hits tlb
let tlb_misses t = match t.tlb with None -> 0 | Some tlb -> Tlb.misses tlb
let tlb_evictions t = match t.tlb with None -> 0 | Some tlb -> Tlb.evictions tlb
let translations t = Metrics.counter_value t.m_translations
let walks t = Metrics.counter_value t.m_walks
let walk_levels t = Metrics.counter_value t.m_walk_levels
let faults t = Metrics.counter_value t.m_faults

let reset_counters t =
  Metrics.reset_counter t.m_translations;
  Metrics.reset_counter t.m_walks;
  Metrics.reset_counter t.m_walk_levels;
  Metrics.reset_counter t.m_faults;
  match t.tlb with None -> () | Some tlb -> Tlb.reset_counters tlb

(* Checkpointing: per-PASID page tables plus the TLB (counters restore via
   the shared Metrics registry; the fault handler is a closure the rebuilt
   device re-attaches). *)
module Snapshot = Lastcpu_sim.Snapshot

let save w t =
  Snapshot.W.list w
    (fun w (pasid, pt) ->
      Snapshot.W.vint w pasid;
      Pagetable.save w pt)
    (Lastcpu_sim.Detmap.bindings t.tables);
  Snapshot.W.option w (fun w tlb -> Tlb.save w tlb) t.tlb

let restore r t =
  Hashtbl.reset t.tables;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let pasid = Snapshot.R.vint r in
    Pagetable.restore r (table t ~pasid)
  done;
  match (Snapshot.R.bool r, t.tlb) with
  | true, Some tlb -> Tlb.restore r tlb
  | false, None -> ()
  | true, None | false, Some _ ->
    invalid_arg "Iommu.restore: TLB presence differs from checkpoint"
