module Layout = Lastcpu_mem.Layout
module Types = Lastcpu_proto.Types
module Metrics = Lastcpu_sim.Metrics

type access = Read | Write | Exec

type fault = {
  pasid : int;
  va : int64;
  access : access;
  reason : fault_reason;
}

and fault_reason = Not_mapped | Protection

type translate_result = Ok_pa of int64 | Fault of fault

type t = {
  tables : (int, Pagetable.t) Hashtbl.t;  (* pasid -> table *)
  tlb : Tlb.t option;
  mutable fault_handler : (fault -> unit) option;
  mutable fault_observers : (fault -> unit) list;  (* registration order *)
  m_translations : Metrics.counter;
  m_walks : Metrics.counter;
  m_walk_levels : Metrics.counter;
  m_faults : Metrics.counter;
}

let create ?tlb_sets ?tlb_ways ?(no_tlb = false) ?metrics ?(actor = "iommu") () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    tables = Hashtbl.create 8;
    tlb =
      (if no_tlb then None
       else Some (Tlb.create ?sets:tlb_sets ?ways:tlb_ways ~metrics:m ~actor ()));
    fault_handler = None;
    fault_observers = [];
    m_translations = Metrics.counter m ~actor ~name:"translations";
    m_walks = Metrics.counter m ~actor ~name:"walks";
    m_walk_levels = Metrics.counter m ~actor ~name:"walk_levels";
    m_faults = Metrics.counter m ~actor ~name:"faults";
  }

let attach_fault_handler t f =
  assert (t.fault_handler = None);
  t.fault_handler <- Some f

let add_fault_observer t f = t.fault_observers <- t.fault_observers @ [ f ]

let table t ~pasid =
  match Hashtbl.find_opt t.tables pasid with
  | Some pt -> pt
  | None ->
    let pt = Pagetable.create () in
    Hashtbl.replace t.tables pasid pt;
    pt

let map t ~pasid ~va ~pa ~bytes ~perm =
  Pagetable.map_range (table t ~pasid) ~va ~pa ~bytes ~perm

let unmap t ~pasid ~va ~bytes =
  match Hashtbl.find_opt t.tables pasid with
  | None -> 0
  | Some pt ->
    let removed = Pagetable.unmap_range pt ~va ~bytes in
    (match t.tlb with
    | None -> ()
    | Some tlb ->
      let npages = Layout.pages_of_bytes bytes in
      for i = 0 to npages - 1 do
        let vpn =
          Layout.page_of_addr (Int64.add va (Layout.addr_of_page (Int64.of_int i)))
        in
        Tlb.invalidate_page tlb ~pasid ~vpn
      done);
    removed

let clear_pasid t ~pasid =
  Hashtbl.remove t.tables pasid;
  match t.tlb with
  | None -> ()
  | Some tlb -> Tlb.invalidate_pasid tlb ~pasid

let access_perm = function
  | Read -> Types.perm_r
  | Write -> { Types.read = false; write = true; exec = false }
  | Exec -> { Types.read = false; write = false; exec = true }

let deliver_fault t fault =
  Metrics.incr t.m_faults;
  (match t.fault_handler with Some f -> f fault | None -> ());
  List.iter (fun f -> f fault) t.fault_observers;
  Fault fault

let translate t ~pasid ~va ~access =
  Metrics.incr t.m_translations;
  let vpn = Layout.page_of_addr va in
  let need = access_perm access in
  let from_tlb =
    match t.tlb with
    | None -> None
    | Some tlb -> Tlb.lookup tlb ~pasid ~vpn
  in
  match from_tlb with
  | Some { ppn; perm } when Proto_perm.subsumes perm need ->
    let off = Int64.of_int (Layout.offset_in_page va) in
    Ok_pa (Int64.add (Layout.addr_of_page ppn) off)
  | Some { perm = _; _ } ->
    (* Cached translation exists but lacks rights: protection fault. *)
    deliver_fault t { pasid; va; access; reason = Protection }
  | None -> (
    match Hashtbl.find_opt t.tables pasid with
    | None -> deliver_fault t { pasid; va; access; reason = Not_mapped }
    | Some pt -> (
      Metrics.incr t.m_walks;
      match Pagetable.walk pt ~va ~access:need with
      | Pagetable.Translated { pa; levels; perm } ->
        Metrics.incr ~by:levels t.m_walk_levels;
        (match t.tlb with
        | None -> ()
        | Some tlb ->
          Tlb.insert tlb ~pasid ~vpn { Tlb.ppn = Layout.page_of_addr pa; perm });
        Ok_pa pa
      | Pagetable.No_mapping { level } ->
        Metrics.incr ~by:level t.m_walk_levels;
        deliver_fault t { pasid; va; access; reason = Not_mapped }
      | Pagetable.Permission_denied _ ->
        Metrics.incr ~by:4 t.m_walk_levels;
        deliver_fault t { pasid; va; access; reason = Protection }))

let pasids t = Lastcpu_sim.Detmap.sorted_keys t.tables

let mapped_pages t ~pasid =
  match Hashtbl.find_opt t.tables pasid with
  | None -> 0
  | Some pt -> Pagetable.mapped_pages pt

(* Side-effect-free translation probe: no TLB fill, no counters, no fault
   delivery. The fuzzer and containment assertions use this to ask "can this
   PASID reach physical address X?" without perturbing the digest. *)
let probe t ~pasid ~va =
  match Hashtbl.find_opt t.tables pasid with
  | None -> None
  | Some pt -> (
    match Pagetable.walk pt ~va ~access:Types.perm_none with
    | Pagetable.Translated { pa; _ } -> Some pa
    | Pagetable.No_mapping _ | Pagetable.Permission_denied _ -> None)

let iter_mappings t ~pasid f =
  match Hashtbl.find_opt t.tables pasid with
  | None -> ()
  | Some pt -> Pagetable.iter pt (fun ~va ~pa ~perm:_ -> f ~va ~pa)

let tlb_hits t = match t.tlb with None -> 0 | Some tlb -> Tlb.hits tlb
let tlb_misses t = match t.tlb with None -> 0 | Some tlb -> Tlb.misses tlb
let tlb_evictions t = match t.tlb with None -> 0 | Some tlb -> Tlb.evictions tlb
let translations t = Metrics.counter_value t.m_translations
let walks t = Metrics.counter_value t.m_walks
let walk_levels t = Metrics.counter_value t.m_walk_levels
let faults t = Metrics.counter_value t.m_faults

let reset_counters t =
  Metrics.reset_counter t.m_translations;
  Metrics.reset_counter t.m_walks;
  Metrics.reset_counter t.m_walk_levels;
  Metrics.reset_counter t.m_faults;
  match t.tlb with None -> () | Some tlb -> Tlb.reset_counters tlb

(* Checkpointing: per-PASID page tables plus the TLB (counters restore via
   the shared Metrics registry; the fault handler is a closure the rebuilt
   device re-attaches). *)
module Snapshot = Lastcpu_sim.Snapshot

let save w t =
  Snapshot.W.list w
    (fun w (pasid, pt) ->
      Snapshot.W.vint w pasid;
      Pagetable.save w pt)
    (Lastcpu_sim.Detmap.bindings t.tables);
  Snapshot.W.option w (fun w tlb -> Tlb.save w tlb) t.tlb

let restore r t =
  Hashtbl.reset t.tables;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let pasid = Snapshot.R.vint r in
    Pagetable.restore r (table t ~pasid)
  done;
  match (Snapshot.R.bool r, t.tlb) with
  | true, Some tlb -> Tlb.restore r tlb
  | false, None -> ()
  | true, None | false, Some _ ->
    invalid_arg "Iommu.restore: TLB presence differs from checkpoint"
