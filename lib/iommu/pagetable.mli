(** Four-level page table (x86-64-style radix tree: 9 bits per level,
    4 KiB leaves, 48-bit virtual addresses).

    One table per (application) address space. The table is the policy-free
    mechanism: it stores exactly the mappings the bus programs into it. *)

type t

type prot = Proto_perm.t
(** Alias of {!Types.perm}; re-exported for callers of the walk. *)

type walk_result =
  | Translated of { pa : int64; levels : int; perm : prot }
      (** [levels] is the number of table levels touched (for the cost
          model: 4 on this geometry). *)
  | No_mapping of { level : int }  (** walk ended at a hole *)
  | Permission_denied of { perm : prot }  (** mapped, but access exceeds *)

val create : unit -> t

val map : t -> va:int64 -> pa:int64 -> perm:prot -> (unit, string) result
(** Map one 4-KiB page. Fails if [va] or [pa] is unaligned or the page is
    already mapped (remapping requires an explicit unmap: the bus must not
    silently clobber grants). *)

val map_range :
  t -> va:int64 -> pa:int64 -> bytes:int64 -> perm:prot -> (unit, string) result
(** Map a page-aligned range contiguously. All-or-nothing. *)

val unmap : t -> va:int64 -> bool
(** Unmap one page; [false] if it was not mapped. *)

val unmap_range : t -> va:int64 -> bytes:int64 -> int
(** Unmap a range; returns the number of pages that were mapped. *)

val walk : t -> va:int64 -> access:prot -> walk_result
(** Translate [va] for an [access]; does not consult any TLB. *)

val mapped_pages : t -> int

val iter : t -> (va:int64 -> pa:int64 -> perm:prot -> unit) -> unit
(** Iterate over all leaf mappings (diagnostics, invariant checks). *)

val reset : t -> unit
(** Drop every mapping (checkpoint restore starts from empty). *)

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append all leaf mappings, in ascending va order (checkpointing). *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Replace the table's contents with mappings written by {!save}.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
