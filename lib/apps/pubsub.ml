module Smart_nic = Lastcpu_devices.Smart_nic
module Device = Lastcpu_device.Device
module Detmap = Lastcpu_sim.Detmap

type t = {
  nic : Smart_nic.t;
  (* (subscriber network address, pattern) — kept as a list per pattern so
     fan-out iterates once per matching pattern. *)
  subs : (string, int list ref) Hashtbl.t;
  retained : (string, string) Hashtbl.t;
  mutable publish_count : int;
  mutable event_count : int;
}

let send_frame t ~dst frame =
  t.event_count <-
    (match frame with
    | Pubsub_proto.Event _ -> t.event_count + 1
    | Pubsub_proto.Response _ -> t.event_count);
  Smart_nic.send_packet t.nic ~dst (Pubsub_proto.encode_frame frame)

let respond t ~dst ~corr reply =
  send_frame t ~dst (Pubsub_proto.Response { corr; reply })

let subscribe t ~src pattern =
  let l =
    match Hashtbl.find_opt t.subs pattern with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.subs pattern l;
      l
  in
  if not (List.mem src !l) then l := src :: !l;
  (* Retained replay: every retained topic the new pattern matches, in
     topic order so replay order never depends on hash internals. *)
  Detmap.iter_sorted
    (fun topic payload ->
      if Pubsub_proto.topic_matches ~pattern topic then
        send_frame t ~dst:src (Pubsub_proto.Event { topic; payload }))
    t.retained

let unsubscribe t ~src pattern =
  match Hashtbl.find_opt t.subs pattern with
  | None -> ()
  | Some l ->
    l := List.filter (fun a -> a <> src) !l;
    if !l = [] then Hashtbl.remove t.subs pattern

let publish t ~topic ~payload ~retain =
  t.publish_count <- t.publish_count + 1;
  if retain then Hashtbl.replace t.retained topic payload;
  let reached = ref [] in
  (* Pattern order decides delivery order on multi-pattern matches; sort it
     so fan-out order is a function of the subscription set alone. *)
  Detmap.iter_sorted
    (fun pattern l ->
      if Pubsub_proto.topic_matches ~pattern topic then
        List.iter
          (fun dst -> if not (List.mem dst !reached) then reached := dst :: !reached)
          !l)
    t.subs;
  List.iter
    (fun dst -> send_frame t ~dst (Pubsub_proto.Event { topic; payload }))
    !reached;
  List.length !reached

let launch ~nic ?(start_device = true) () =
  let t =
    {
      nic;
      subs = Hashtbl.create 16;
      retained = Hashtbl.create 16;
      publish_count = 0;
      event_count = 0;
    }
  in
  if start_device then Device.start (Smart_nic.device nic);
  Smart_nic.on_packet nic (fun ~src frame ->
      match Pubsub_proto.decode_request frame with
      | Error _ -> () (* drop garbage, as a NIC would *)
      | Ok { corr; op } -> (
        match op with
        | Pubsub_proto.Subscribe pattern ->
          if String.length pattern = 0 then
            respond t ~dst:src ~corr (Pubsub_proto.Rejected "empty pattern")
          else begin
            subscribe t ~src pattern;
            respond t ~dst:src ~corr (Pubsub_proto.Acked 0)
          end
        | Pubsub_proto.Unsubscribe pattern ->
          unsubscribe t ~src pattern;
          respond t ~dst:src ~corr (Pubsub_proto.Acked 0)
        | Pubsub_proto.Publish { topic; payload; retain } ->
          let n = publish t ~topic ~payload ~retain in
          respond t ~dst:src ~corr (Pubsub_proto.Acked n)));
  t

let subscriptions t =
  Detmap.fold_sorted (fun _ l acc -> acc + List.length !l) t.subs 0

let topics_retained t = Hashtbl.length t.retained
let published t = t.publish_count
let events_sent t = t.event_count
