module Smart_nic = Lastcpu_devices.Smart_nic
module Device = Lastcpu_device.Device
module Detmap = Lastcpu_sim.Detmap
module Engine = Lastcpu_sim.Engine
module Snapshot = Lastcpu_sim.Snapshot

type t = {
  nic : Smart_nic.t;
  (* (subscriber network address, pattern) — kept as a list per pattern so
     fan-out iterates once per matching pattern. *)
  subs : (string, int list ref) Hashtbl.t;
  retained : (string, string) Hashtbl.t;
  mutable publish_count : int;
  mutable event_count : int;
}

let send_frame t ~dst frame =
  t.event_count <-
    (match frame with
    | Pubsub_proto.Event _ -> t.event_count + 1
    | Pubsub_proto.Response _ -> t.event_count);
  Smart_nic.send_packet t.nic ~dst (Pubsub_proto.encode_frame frame)

let respond t ~dst ~corr reply =
  send_frame t ~dst (Pubsub_proto.Response { corr; reply })

let subscribe t ~src pattern =
  let l =
    match Hashtbl.find_opt t.subs pattern with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.subs pattern l;
      l
  in
  if not (List.mem src !l) then l := src :: !l;
  (* Retained replay: every retained topic the new pattern matches, in
     topic order so replay order never depends on hash internals. *)
  Detmap.iter_sorted
    (fun topic payload ->
      if Pubsub_proto.topic_matches ~pattern topic then
        send_frame t ~dst:src (Pubsub_proto.Event { topic; payload }))
    t.retained

let unsubscribe t ~src pattern =
  match Hashtbl.find_opt t.subs pattern with
  | None -> ()
  | Some l ->
    l := List.filter (fun a -> a <> src) !l;
    if !l = [] then Hashtbl.remove t.subs pattern

let publish t ~topic ~payload ~retain =
  t.publish_count <- t.publish_count + 1;
  if retain then Hashtbl.replace t.retained topic payload;
  let reached = ref [] in
  (* Pattern order decides delivery order on multi-pattern matches; sort it
     so fan-out order is a function of the subscription set alone. *)
  Detmap.iter_sorted
    (fun pattern l ->
      if Pubsub_proto.topic_matches ~pattern topic then
        List.iter
          (fun dst -> if not (List.mem dst !reached) then reached := dst :: !reached)
          !l)
    t.subs;
  List.iter
    (fun dst -> send_frame t ~dst (Pubsub_proto.Event { topic; payload }))
    !reached;
  List.length !reached

(* Checkpoint hook. The subscription and retained tables are broker state
   a rebuild cannot re-derive (they accumulate from client traffic), so a
   restore without them would silently drop every subscriber. Tables are
   written in sorted key order so the section bytes are a function of
   content, never of Hashtbl internals. *)
let save_state t =
  let w = Snapshot.W.create () in
  Snapshot.W.varint w t.publish_count;
  Snapshot.W.varint w t.event_count;
  Snapshot.W.varint w (Hashtbl.length t.subs);
  Detmap.iter_sorted
    (fun pattern l ->
      Snapshot.W.string w pattern;
      Snapshot.W.list w (fun w a -> Snapshot.W.varint w a) !l)
    t.subs;
  Snapshot.W.varint w (Hashtbl.length t.retained);
  Detmap.iter_sorted
    (fun topic payload ->
      Snapshot.W.string w topic;
      Snapshot.W.string w payload)
    t.retained;
  Snapshot.W.contents w

let restore_state t s =
  let r = Snapshot.R.of_string s in
  t.publish_count <- Snapshot.R.varint r;
  t.event_count <- Snapshot.R.varint r;
  Hashtbl.reset t.subs;
  for _ = 1 to Snapshot.R.varint r do
    let pattern = Snapshot.R.string r in
    let l = Snapshot.R.list r Snapshot.R.varint in
    Hashtbl.replace t.subs pattern (ref l)
  done;
  Hashtbl.reset t.retained;
  for _ = 1 to Snapshot.R.varint r do
    let topic = Snapshot.R.string r in
    let payload = Snapshot.R.string r in
    Hashtbl.replace t.retained topic payload
  done

let launch ~nic ?(start_device = true) () =
  let t =
    {
      nic;
      subs = Hashtbl.create 16;
      retained = Hashtbl.create 16;
      publish_count = 0;
      event_count = 0;
    }
  in
  let dev = Smart_nic.device nic in
  Engine.register_snapshot (Device.engine dev)
    ~name:("pubsub:" ^ Device.actor dev)
    ~save:(fun () -> save_state t)
    ~restore:(fun s -> restore_state t s);
  if start_device then Device.start (Smart_nic.device nic);
  Smart_nic.on_packet nic (fun ~src frame ->
      match Pubsub_proto.decode_request frame with
      | Error _ -> () (* drop garbage, as a NIC would *)
      | Ok { corr; op } -> (
        match op with
        | Pubsub_proto.Subscribe pattern ->
          if String.length pattern = 0 then
            respond t ~dst:src ~corr (Pubsub_proto.Rejected "empty pattern")
          else begin
            subscribe t ~src pattern;
            respond t ~dst:src ~corr (Pubsub_proto.Acked 0)
          end
        | Pubsub_proto.Unsubscribe pattern ->
          unsubscribe t ~src pattern;
          respond t ~dst:src ~corr (Pubsub_proto.Acked 0)
        | Pubsub_proto.Publish { topic; payload; retain } ->
          let n = publish t ~topic ~payload ~retain in
          respond t ~dst:src ~corr (Pubsub_proto.Acked n)));
  t

let subscriptions t =
  Detmap.fold_sorted (fun _ l acc -> acc + List.length !l) t.subs 0

let topics_retained t = Hashtbl.length t.retained
let published t = t.publish_count
let events_sent t = t.event_count
