type backend = {
  append : string -> ((unit, string) result -> unit) -> unit;
  read_log : ((string, string) result -> unit) -> unit;
  reset_log : ((unit, string) result -> unit) -> unit;
  replace_log : string -> ((unit, string) result -> unit) -> unit;
}

let memory_backend () =
  let log = Buffer.create 1024 in
  {
    append =
      (fun data k ->
        Buffer.add_string log data;
        k (Ok ()));
    read_log = (fun k -> k (Ok (Buffer.contents log)));
    reset_log =
      (fun k ->
        Buffer.clear log;
        k (Ok ()));
    replace_log =
      (fun data k ->
        Buffer.clear log;
        Buffer.add_string log data;
        k (Ok ()));
  }

module Metrics = Lastcpu_sim.Metrics
module Detmap = Lastcpu_sim.Detmap

type t = {
  backend : backend;
  index : (string, string) Hashtbl.t;
  m_puts : Metrics.counter;
  m_gets : Metrics.counter;
  m_dels : Metrics.counter;
}

let create ?metrics ?(actor = "kv") backend =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    backend;
    index = Hashtbl.create 256;
    m_puts = Metrics.counter m ~actor ~name:"puts";
    m_gets = Metrics.counter m ~actor ~name:"gets";
    m_dels = Metrics.counter m ~actor ~name:"deletes";
  }

let apply_record t = function
  | Wal.Put { key; value } -> Hashtbl.replace t.index key value
  | Wal.Del { key } -> Hashtbl.remove t.index key

let recover t k =
  t.backend.read_log (fun res ->
      match res with
      | Error e -> k (Error e)
      | Ok data ->
        let records, _valid = Wal.decode_all data in
        Hashtbl.reset t.index;
        List.iter (apply_record t) records;
        k (Ok (List.length records)))

let get t key k =
  Metrics.incr t.m_gets;
  k (Hashtbl.find_opt t.index key)

let put t ~key ~value k =
  Metrics.incr t.m_puts;
  (* Log first, apply on durability (write-ahead). *)
  t.backend.append (Wal.encode (Wal.Put { key; value })) (fun res ->
      match res with
      | Error _ as e -> k e
      | Ok () ->
        Hashtbl.replace t.index key value;
        k (Ok ()))

let delete t key k =
  Metrics.incr t.m_dels;
  if not (Hashtbl.mem t.index key) then k (Ok false)
  else
    t.backend.append (Wal.encode (Wal.Del { key })) (fun res ->
        match res with
        | Error e -> k (Error e)
        | Ok () ->
          Hashtbl.remove t.index key;
          k (Ok true))

let scan_prefix t ~prefix k =
  let matches key =
    String.length key >= String.length prefix
    && String.equal (String.sub key 0 (String.length prefix)) prefix
  in
  k (List.filter (fun (key, _) -> matches key) (Detmap.bindings t.index))

let size t = Hashtbl.length t.index

let compact t k =
  (* Key order, so the compacted log bytes are a function of store contents
     alone (two same-seed runs must write identical logs). *)
  let snapshot =
    List.map
      (fun (key, value) -> Wal.encode (Wal.Put { key; value }))
      (Detmap.bindings t.index)
  in
  t.backend.replace_log (String.concat "" snapshot) k

let puts t = Metrics.counter_value t.m_puts
let gets t = Metrics.counter_value t.m_gets
let deletes t = Metrics.counter_value t.m_dels
