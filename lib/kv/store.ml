type backend = {
  append : string -> ((unit, string) result -> unit) -> unit;
  read_log : ((string, string) result -> unit) -> unit;
  reset_log : ((unit, string) result -> unit) -> unit;
  replace_log : string -> ((unit, string) result -> unit) -> unit;
}

let memory_backend () =
  let log = Buffer.create 1024 in
  {
    append =
      (fun data k ->
        Buffer.add_string log data;
        k (Ok ()));
    read_log = (fun k -> k (Ok (Buffer.contents log)));
    reset_log =
      (fun k ->
        Buffer.clear log;
        k (Ok ()));
    replace_log =
      (fun data k ->
        Buffer.clear log;
        Buffer.add_string log data;
        k (Ok ()));
  }

module Metrics = Lastcpu_sim.Metrics
module Detmap = Lastcpu_sim.Detmap
module Snapshot = Lastcpu_sim.Snapshot

type t = {
  backend : backend;
  index : (string, string) Hashtbl.t;
  (* Snapshot watermark: how many decodable log records the index already
     reflects. Zero for a fresh store (recovery replays everything); a
     checkpoint restore sets it, so a later [recover] — say, after the
     provider device revives — skips the prefix that produced the restored
     index instead of double-applying it. *)
  mutable applied : int;
  m_puts : Metrics.counter;
  m_gets : Metrics.counter;
  m_dels : Metrics.counter;
}

let create ?metrics ?(actor = "kv") backend =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    backend;
    index = Hashtbl.create 256;
    applied = 0;
    m_puts = Metrics.counter m ~actor ~name:"puts";
    m_gets = Metrics.counter m ~actor ~name:"gets";
    m_dels = Metrics.counter m ~actor ~name:"deletes";
  }

let apply_record t = function
  | Wal.Put { key; value } -> Hashtbl.replace t.index key value
  | Wal.Del { key } -> Hashtbl.remove t.index key

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r

let recover t k =
  t.backend.read_log (fun res ->
      match res with
      | Error e -> k (Error e)
      | Ok data ->
        let records, _valid = Wal.decode_all data in
        let total = List.length records in
        (* Records at or below the watermark are already in the index (it
           came from a snapshot of this store); replaying them would
           double-apply. Only the suffix is news. A watermark past the end
           of the log clamps harmlessly: the log is authoritative. *)
        let skip = min t.applied total in
        if skip = 0 then Hashtbl.reset t.index;
        let fresh = drop skip records in
        List.iter (apply_record t) fresh;
        t.applied <- total;
        k (Ok (List.length fresh)))

let get t key k =
  Metrics.incr t.m_gets;
  k (Hashtbl.find_opt t.index key)

let put t ~key ~value k =
  Metrics.incr t.m_puts;
  (* Log first, apply on durability (write-ahead). *)
  t.backend.append (Wal.encode (Wal.Put { key; value })) (fun res ->
      match res with
      | Error _ as e -> k e
      | Ok () ->
        Hashtbl.replace t.index key value;
        t.applied <- t.applied + 1;
        k (Ok ()))

let delete t key k =
  Metrics.incr t.m_dels;
  if not (Hashtbl.mem t.index key) then k (Ok false)
  else
    t.backend.append (Wal.encode (Wal.Del { key })) (fun res ->
        match res with
        | Error e -> k (Error e)
        | Ok () ->
          Hashtbl.remove t.index key;
          t.applied <- t.applied + 1;
          k (Ok true))

let scan_prefix t ~prefix k =
  let matches key =
    String.length key >= String.length prefix
    && String.equal (String.sub key 0 (String.length prefix)) prefix
  in
  k (List.filter (fun (key, _) -> matches key) (Detmap.bindings t.index))

let size t = Hashtbl.length t.index

let compact t k =
  (* Key order, so the compacted log bytes are a function of store contents
     alone (two same-seed runs must write identical logs). *)
  let snapshot =
    List.map
      (fun (key, value) -> Wal.encode (Wal.Put { key; value }))
      (Detmap.bindings t.index)
  in
  let n = List.length snapshot in
  t.backend.replace_log (String.concat "" snapshot) (fun res ->
      (* The compacted log is one Put per live key, all of which the index
         already holds — the watermark is exactly its record count. *)
      (match res with Ok () -> t.applied <- n | Error _ -> ());
      k res)

let puts t = Metrics.counter_value t.m_puts
let gets t = Metrics.counter_value t.m_gets
let deletes t = Metrics.counter_value t.m_dels

let applied_watermark t = t.applied
let set_applied_watermark t n =
  if n < 0 then invalid_arg "set_applied_watermark: negative";
  t.applied <- n

(* Checkpointing: the index (key order, for byte-stable snapshots) and the
   replay watermark. Op counters live in the shared Metrics registry and
   are restored with it. *)
let save w t =
  Snapshot.W.varint w t.applied;
  Snapshot.W.list w
    (fun w (key, value) ->
      Snapshot.W.string w key;
      Snapshot.W.string w value)
    (Detmap.bindings t.index)

let restore r t =
  t.applied <- Snapshot.R.varint r;
  Hashtbl.reset t.index;
  List.iter
    (fun (key, value) -> Hashtbl.replace t.index key value)
    (Snapshot.R.list r (fun r ->
         let key = Snapshot.R.string r in
         let value = Snapshot.R.string r in
         (key, value)))
