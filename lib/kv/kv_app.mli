(** The complete §3 application: a key-value store hosted on the smart NIC,
    persisting through the smart SSD, serving remote network clients.

    [launch] performs the whole bring-up: announce a
    {!Lastcpu_proto.Types.Kv_service} on the NIC, run the Figure-2
    initialization against the SSD ({!Lastcpu_devices.File_client.connect}),
    create/recover the write-ahead log, and install the network fast path.
    After that the CPU... does not exist, and nothing misses it. *)

module Types = Lastcpu_proto.Types

type t

val launch :
  nic:Lastcpu_devices.Smart_nic.t ->
  memctl:Types.device_id ->
  pasid:int ->
  shm_va:int64 ->
  user:string ->
  log_path:string ->
  ?auth:Lastcpu_proto.Token.t ->
  ?start_device:bool ->
  ?req_timeout:int64 ->
  ?req_retries:int ->
  ?supervisor:(unit -> int * int64) ->
  unit ->
  ((t, string) result -> unit) ->
  unit
(** [start_device] (default true) also starts the NIC device; pass [false]
    if it was already started. The log file is created on first launch and
    replayed on relaunch.

    [req_timeout]/[req_retries] arm the attach's control-plane requests
    (see {!Lastcpu_devices.File_client.connect}).

    [supervisor], when given, watches for the storage provider's
    [Device_failed] broadcast and fails over: in-flight file ops are
    aborted, incoming KV ops are parked, the Figure-2 attach is re-run
    against whichever file service now answers discovery (with backoff
    between attempts), the store is recovered there and the parked ops are
    drained. The callback supplies a fresh [(pasid, shm_va)] for each
    attach attempt. Failovers are counted in the registry
    ([<actor>/failovers]). The dead provider's log is not migrated — the
    supervisor restores availability, not that device's data. *)

val store : t -> Store.t
val client : t -> Lastcpu_devices.File_client.t
val ops_served : t -> int
val recovered_records : t -> int

val failovers : t -> int
(** Provider failovers performed by the supervisor (0 without one). *)

val local_op : t -> Kv_proto.op -> (Kv_proto.reply -> unit) -> unit
(** Execute an operation directly (console/examples), same path as network
    requests minus the network. Counts as control traffic: never subject to
    the overload policy (priority admission — supervisor and recovery work
    must get through even when clients are being shed). *)

(** {1 Overload protection} *)

val set_overload_policy : t -> max_pending:int -> unit
(** Bound the client-op admission window: network requests beyond
    [max_pending] concurrently admitted ops are answered immediately with
    [Failed "busy; retry-after=..."] (a deterministic hint: admitted window
    x flash page-program time) instead of queueing toward the WAL. Registers
    [shed] and [goodput] counters under this app's actor. Off by default. *)

val ops_shed : t -> int
(** Client ops refused at the door by the overload policy. *)

val goodput : t -> int
(** Successfully answered admitted client ops (non-[Failed] replies) under
    an overload policy; falls back to [ops_served] without one. *)
