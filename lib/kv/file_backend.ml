module Ssd_proto = Lastcpu_devices.Ssd_proto
module File_client = Lastcpu_devices.File_client

let chunk_bytes = 1024

type t = {
  client : File_client.t;
  path : string;
  mutable log_end : int;
}

let create client ~path k =
  let finish t = k (Ok t) in
  File_client.stat client path (fun res ->
      match res with
      | Ok (size, false) -> finish { client; path; log_end = size }
      | Ok (_, true) -> k (Error (path ^ " is a directory"))
      | Error _ ->
        File_client.create client path (fun res ->
            match res with
            | Error m -> k (Error ("create log: " ^ m))
            | Ok () -> finish { client; path; log_end = 0 }))

let append t data k =
  (* Reserve the offsets now so pipelined appends never interleave. *)
  let base = t.log_end in
  t.log_end <- t.log_end + String.length data;
  let total = String.length data in
  let rec write pos =
    if pos >= total then k (Ok ())
    else begin
      let chunk = min chunk_bytes (total - pos) in
      File_client.write t.client t.path ~off:(base + pos)
        (String.sub data pos chunk) (fun res ->
          match res with Error m -> k (Error m) | Ok () -> write (pos + chunk))
    end
  in
  write 0

let read_log t k =
  let buf = Buffer.create (max 16 t.log_end) in
  let rec read off =
    if off >= t.log_end then k (Ok (Buffer.contents buf))
    else
      File_client.read t.client t.path ~off ~len:chunk_bytes (fun res ->
          match res with
          | Error m -> k (Error m)
          | Ok "" -> k (Ok (Buffer.contents buf))
          | Ok data ->
            Buffer.add_string buf data;
            read (off + String.length data))
  in
  read 0

(* Crash-safe log replacement: write the snapshot to a sidecar, then
   rename it over the live log (the SSD's rename atomically replaces the
   target file). A crash before the rename leaves the old log intact. *)
let replace_log t data k =
  let sidecar = t.path ^ ".new" in
  let finish () =
    File_client.rename t.client sidecar t.path (fun res ->
        match res with
        | Error m -> k (Error ("rename: " ^ m))
        | Ok () ->
          t.log_end <- String.length data;
          k (Ok ()))
  in
  File_client.create t.client sidecar (fun res ->
      match res with
      | Error m when m <> "already exists: " ^ sidecar -> k (Error m)
      | Error _ | Ok () ->
        (* Truncate any stale sidecar from an earlier crashed compaction. *)
        File_client.request t.client
          (Ssd_proto.Truncate { path = sidecar; len = 0 })
          (fun _ ->
            let total = String.length data in
            let rec write pos =
              if pos >= total then finish ()
              else begin
                let chunk = min chunk_bytes (total - pos) in
                File_client.write t.client sidecar ~off:pos
                  (String.sub data pos chunk) (fun res ->
                    match res with
                    | Error m -> k (Error m)
                    | Ok () -> write (pos + chunk))
              end
            in
            write 0))

let reset_log t k =
  t.log_end <- 0;
  File_client.request t.client
    (Ssd_proto.Truncate { path = t.path; len = 0 })
    (function
      | Ssd_proto.Ok_unit -> k (Ok ())
      | Ssd_proto.Err m -> k (Error m)
      | _ -> k (Error "unexpected response"))

let backend t =
  {
    Store.append = (fun data k -> append t data k);
    Store.read_log = (fun k -> read_log t k);
    Store.reset_log = (fun k -> reset_log t k);
    Store.replace_log = (fun data k -> replace_log t data k);
  }

let log_bytes t = t.log_end

(* Checkpointing: only the end-of-log offset. A rebuilt backend learns its
   [log_end] by stat-ing a freshly formatted filesystem (zero), so the
   restore must bring back the offset matching the restored flash image. *)
let save w t = Lastcpu_sim.Snapshot.W.varint w t.log_end
let restore r t = t.log_end <- Lastcpu_sim.Snapshot.R.varint r
