module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Device = Lastcpu_device.Device
module Engine = Lastcpu_sim.Engine
module Metrics = Lastcpu_sim.Metrics
module Smart_nic = Lastcpu_devices.Smart_nic
module File_client = Lastcpu_devices.File_client

(* Client-op admission policy ([set_overload_policy]); control traffic —
   recovery, failover drains, local supervisor ops — is never subject to
   it. Counters exist only once the policy is set, so default runs keep
   their telemetry snapshots unchanged. *)
type overload = {
  max_pending : int;
  m_shed : Metrics.counter;
  m_goodput : Metrics.counter;
}

type t = {
  nic : Smart_nic.t;
  mutable kv : Store.t;
  mutable fc : File_client.t;
  mutable fb : File_backend.t;
  engine : Engine.t;
  actor : string;
  m_served : Metrics.counter;
  m_failovers : Metrics.counter option;
  mutable recovered : int;
  (* While a failover is re-running the Figure-2 attach against another
     provider, incoming ops are parked here and drained once the new
     store is recovered. *)
  mutable failing_over : bool;
  parked : (Kv_proto.op * (Kv_proto.reply -> unit)) Queue.t;
  mutable overload : overload option;
  mutable client_in_flight : int;
}

let rec execute t op (k : Kv_proto.reply -> unit) =
  if t.failing_over then Queue.push (op, k) t.parked
  else begin
    (* One span per operation: the framework times every KV op, whatever its
       entry point (network fast path or local call). *)
    let span = Engine.fresh_span_id t.engine in
    Engine.begin_span t.engine ~actor:t.actor ~name:"kv_op" ~id:span;
    let k reply =
      Engine.end_span t.engine ~actor:t.actor ~name:"kv_op" ~id:span;
      k reply
    in
    match op with
    | Kv_proto.Get key -> Store.get t.kv key (fun v -> k (Kv_proto.Value v))
    | Kv_proto.Put (key, value) ->
      Store.put t.kv ~key ~value (function
        | Ok () -> k Kv_proto.Done
        | Error m -> k (Kv_proto.Failed m))
    | Kv_proto.Del key ->
      Store.delete t.kv key (function
        | Ok b -> k (Kv_proto.Deleted b)
        | Error m -> k (Kv_proto.Failed m))
    | Kv_proto.Scan prefix ->
      Store.scan_prefix t.kv ~prefix (fun pairs -> k (Kv_proto.Pairs pairs))
  end

and drain_parked t =
  let rec go () =
    if (not t.failing_over) && not (Queue.is_empty t.parked) then begin
      let op, k = Queue.pop t.parked in
      execute t op k;
      go ()
    end
  in
  go ()

let set_overload_policy t ~max_pending =
  if max_pending <= 0 then invalid_arg "set_overload_policy: max_pending";
  let m = Engine.metrics t.engine in
  t.overload <-
    Some
      {
        max_pending;
        m_shed = Metrics.counter m ~actor:t.actor ~name:"shed";
        m_goodput = Metrics.counter m ~actor:t.actor ~name:"goodput";
      }

(* Client-facing entry: admission control + goodput accounting. Sheds at
   the door when the admitted window is full — a cheap failure now beats a
   queued success that will miss its deadline (metastability guard). *)
let execute_client t op k =
  match t.overload with
  | None -> execute t op k
  | Some o ->
    if t.client_in_flight >= o.max_pending then begin
      Metrics.incr o.m_shed;
      (* Deterministic retry-after: the admitted window drains through the
         WAL's flash-program bottleneck, one page per op. *)
      let costs = Engine.costs t.engine in
      let retry_after_ns =
        Int64.mul (Int64.of_int t.client_in_flight) costs.Lastcpu_sim.Costs.flash_write_page_ns
      in
      Engine.trace_event t.engine ~actor:t.actor ~kind:"kv.shed"
        (Printf.sprintf "in-flight=%d retry-after=%Ldns" t.client_in_flight
           retry_after_ns);
      k (Kv_proto.Failed (Message.busy_detail ~retry_after_ns))
    end
    else begin
      t.client_in_flight <- t.client_in_flight + 1;
      execute t op (fun reply ->
          t.client_in_flight <- t.client_in_flight - 1;
          (match reply with
          | Kv_proto.Failed _ -> ()
          | _ -> Metrics.incr o.m_goodput);
          k reply)
    end

let install_fast_path t =
  Smart_nic.on_packet t.nic (fun ~src frame ->
      match Kv_proto.decode_request frame with
      | Error _ -> () (* garbage frame: drop, as a NIC would *)
      | Ok { corr; op } ->
        Metrics.incr t.m_served;
        execute_client t op (fun reply ->
            Smart_nic.send_packet t.nic ~dst:src
              (Kv_proto.encode_response { corr; reply })))

let failovers t =
  match t.m_failovers with None -> 0 | Some c -> Metrics.counter_value c

(* Checkpointing: store index + watermark, log offset, file-client ring
   state, and the app's own counters. [parked] holds continuations, which
   are empty at any quiescent point (a parked op implies a failover in
   flight, and a failover in flight implies volatile events).

   A checkpoint taken after a completed failover is refused: the restored
   state would describe a connection to a provider the rebuilt topology
   never attached to (rebuild replays the original boot-time discovery,
   not the failover). T-series soaks that checkpoint therefore crash
   non-provider devices only. *)
module Snapshot = Lastcpu_sim.Snapshot

let save_state t =
  if failovers t > 0 then
    invalid_arg "Kv_app: checkpoint after a failover is not supported";
  let w = Snapshot.W.create () in
  Snapshot.W.bool w t.failing_over;
  Snapshot.W.varint w t.recovered;
  Snapshot.W.varint w t.client_in_flight;
  Store.save w t.kv;
  File_backend.save w t.fb;
  File_client.save w t.fc;
  Snapshot.W.contents w

let restore_state t data =
  let r = Snapshot.R.of_string data in
  t.failing_over <- Snapshot.R.bool r;
  t.recovered <- Snapshot.R.varint r;
  t.client_in_flight <- Snapshot.R.varint r;
  Queue.clear t.parked;
  Store.restore r t.kv;
  File_backend.restore r t.fb;
  File_client.restore r t.fc

let max_failover_attempts = 10

(* Re-run the whole Figure-2 attach against whichever file service now
   answers discovery, then rebuild and recover the store on it. The old
   provider's log is unreachable, so the new store starts from the new
   provider's copy of the path (fresh unless it was replicated) — the
   supervisor restores *availability*, not the lost device's data. *)
let rec reattach t ~dev ~memctl ~user ~log_path ~auth ~req_timeout ~req_retries
    ~fresh ~attempt =
  let retry () =
    if attempt >= max_failover_attempts then begin
      t.failing_over <- false;
      let rec fail_all () =
        if not (Queue.is_empty t.parked) then begin
          let _, k = Queue.pop t.parked in
          k (Kv_proto.Failed "failover exhausted");
          fail_all ()
        end
      in
      fail_all ()
    end
    else
      let backoff = Int64.mul 100_000L (Int64.of_int (1 lsl min attempt 6)) in
      Engine.schedule t.engine ~delay:backoff (fun () ->
          reattach t ~dev ~memctl ~user ~log_path ~auth ~req_timeout
            ~req_retries ~fresh ~attempt:(attempt + 1))
  in
  let pasid, shm_va = fresh () in
  File_client.connect dev ~memctl ~pasid ~shm_va ~user ~path_hint:log_path
    ?auth ?req_timeout ?req_retries (fun res ->
      match res with
      | Error _ -> retry ()
      | Ok fc ->
        File_backend.create fc ~path:log_path (fun res ->
            match res with
            | Error _ -> retry ()
            | Ok fb ->
              let m = Engine.metrics t.engine in
              let actor = Metrics.claim_actor m t.actor in
              let store =
                Store.create ~metrics:m ~actor (File_backend.backend fb)
              in
              Store.recover store (fun res ->
                  match res with
                  | Error _ -> retry ()
                  | Ok n ->
                    t.kv <- store;
                    t.fc <- fc;
                    t.fb <- fb;
                    t.recovered <- n;
                    Engine.trace_event t.engine ~actor:t.actor
                      ~kind:"kv.failover"
                      (Printf.sprintf "reattached to dev%d (%d records)"
                         (File_client.provider fc) n);
                    t.failing_over <- false;
                    drain_parked t)))

let install_supervisor t ~dev ~memctl ~user ~log_path ~auth ~req_timeout
    ~req_retries ~fresh =
  Device.on_device_failed dev (fun ~device ->
      if (not t.failing_over) && device = File_client.provider t.fc then begin
        t.failing_over <- true;
        (match t.m_failovers with Some c -> Metrics.incr c | None -> ());
        Engine.trace_event t.engine ~actor:t.actor ~kind:"kv.failover"
          (Printf.sprintf "provider dev%d failed, re-running discovery" device);
        File_client.abort_in_flight t.fc "provider failed";
        reattach t ~dev ~memctl ~user ~log_path ~auth ~req_timeout ~req_retries
          ~fresh ~attempt:0
      end)

let launch ~nic ~memctl ~pasid ~shm_va ~user ~log_path ?auth
    ?(start_device = true) ?req_timeout ?req_retries ?supervisor () k =
  let dev = Smart_nic.device nic in
  if start_device then begin
    Device.add_service dev
      {
        desc =
          {
            Message.kind = Types.Kv_service;
            name = Device.name dev ^ ".kv";
            version = 1;
          };
        can_serve = (fun ~query:_ -> true);
        on_open =
          (fun ~client:_ ~pasid:_ ~auth:_ ~params:_ ->
            Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 0L });
        on_close = (fun ~connection:_ -> ());
      };
    Device.start dev
  end;
  File_client.connect dev ~memctl ~pasid ~shm_va ~user ~path_hint:log_path ?auth
    ?req_timeout ?req_retries
    (fun res ->
      match res with
      | Error m -> k (Error ("file service: " ^ m))
      | Ok fc ->
        File_backend.create fc ~path:log_path (fun res ->
            match res with
            | Error m -> k (Error ("log: " ^ m))
            | Ok fb ->
              let engine = Device.engine dev in
              let m = Engine.metrics engine in
              let actor = Metrics.claim_actor m (Device.actor dev ^ ".kv") in
              let store =
                Store.create ~metrics:m ~actor (File_backend.backend fb)
              in
              let t =
                {
                  nic;
                  kv = store;
                  fc;
                  fb;
                  engine;
                  actor;
                  m_served = Metrics.counter m ~actor ~name:"ops_served";
                  m_failovers =
                    (match supervisor with
                    | None -> None
                    | Some _ -> Some (Metrics.counter m ~actor ~name:"failovers"));
                  recovered = 0;
                  failing_over = false;
                  parked = Queue.create ();
                  overload = None;
                  client_in_flight = 0;
                }
              in
              Store.recover store (fun res ->
                  match res with
                  | Error m -> k (Error ("recover: " ^ m))
                  | Ok n ->
                    t.recovered <- n;
                    Engine.register_snapshot engine ~name:actor
                      ~save:(fun () -> save_state t)
                      ~restore:(restore_state t);
                    install_fast_path t;
                    (match supervisor with
                    | None -> ()
                    | Some fresh ->
                      install_supervisor t ~dev ~memctl ~user ~log_path ~auth
                        ~req_timeout ~req_retries ~fresh);
                    k (Ok t))))

let store t = t.kv
let client t = t.fc
let ops_served t = Metrics.counter_value t.m_served
let recovered_records t = t.recovered
let local_op t op k = execute t op k

let ops_shed t =
  match t.overload with None -> 0 | Some o -> Metrics.counter_value o.m_shed

let goodput t =
  match t.overload with
  | None -> Metrics.counter_value t.m_served
  | Some o -> Metrics.counter_value o.m_goodput
