module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Device = Lastcpu_device.Device
module Engine = Lastcpu_sim.Engine
module Metrics = Lastcpu_sim.Metrics
module Smart_nic = Lastcpu_devices.Smart_nic
module File_client = Lastcpu_devices.File_client

type t = {
  nic : Smart_nic.t;
  kv : Store.t;
  fc : File_client.t;
  engine : Engine.t;
  actor : string;
  m_served : Metrics.counter;
  mutable recovered : int;
}

let execute t op (k : Kv_proto.reply -> unit) =
  (* One span per operation: the framework times every KV op, whatever its
     entry point (network fast path or local call). *)
  let span = Engine.fresh_span_id t.engine in
  Engine.begin_span t.engine ~actor:t.actor ~name:"kv_op" ~id:span;
  let k reply =
    Engine.end_span t.engine ~actor:t.actor ~name:"kv_op" ~id:span;
    k reply
  in
  match op with
  | Kv_proto.Get key -> Store.get t.kv key (fun v -> k (Kv_proto.Value v))
  | Kv_proto.Put (key, value) ->
    Store.put t.kv ~key ~value (function
      | Ok () -> k Kv_proto.Done
      | Error m -> k (Kv_proto.Failed m))
  | Kv_proto.Del key ->
    Store.delete t.kv key (function
      | Ok b -> k (Kv_proto.Deleted b)
      | Error m -> k (Kv_proto.Failed m))
  | Kv_proto.Scan prefix ->
    Store.scan_prefix t.kv ~prefix (fun pairs -> k (Kv_proto.Pairs pairs))

let install_fast_path t =
  Smart_nic.on_packet t.nic (fun ~src frame ->
      match Kv_proto.decode_request frame with
      | Error _ -> () (* garbage frame: drop, as a NIC would *)
      | Ok { corr; op } ->
        Metrics.incr t.m_served;
        execute t op (fun reply ->
            Smart_nic.send_packet t.nic ~dst:src
              (Kv_proto.encode_response { corr; reply })))

let launch ~nic ~memctl ~pasid ~shm_va ~user ~log_path ?auth
    ?(start_device = true) () k =
  let dev = Smart_nic.device nic in
  if start_device then begin
    Device.add_service dev
      {
        desc =
          {
            Message.kind = Types.Kv_service;
            name = Device.name dev ^ ".kv";
            version = 1;
          };
        can_serve = (fun ~query:_ -> true);
        on_open =
          (fun ~client:_ ~pasid:_ ~auth:_ ~params:_ ->
            Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 0L });
        on_close = (fun ~connection:_ -> ());
      };
    Device.start dev
  end;
  File_client.connect dev ~memctl ~pasid ~shm_va ~user ~path_hint:log_path ?auth
    (fun res ->
      match res with
      | Error m -> k (Error ("file service: " ^ m))
      | Ok fc ->
        File_backend.create fc ~path:log_path (fun res ->
            match res with
            | Error m -> k (Error ("log: " ^ m))
            | Ok fb ->
              let engine = Device.engine dev in
              let m = Engine.metrics engine in
              let actor = Metrics.claim_actor m (Device.actor dev ^ ".kv") in
              let store =
                Store.create ~metrics:m ~actor (File_backend.backend fb)
              in
              let t =
                {
                  nic;
                  kv = store;
                  fc;
                  engine;
                  actor;
                  m_served = Metrics.counter m ~actor ~name:"ops_served";
                  recovered = 0;
                }
              in
              Store.recover store (fun res ->
                  match res with
                  | Error m -> k (Error ("recover: " ^ m))
                  | Ok n ->
                    t.recovered <- n;
                    install_fast_path t;
                    k (Ok t))))

let store t = t.kv
let client t = t.fc
let ops_served t = Metrics.counter_value t.m_served
let recovered_records t = t.recovered
let local_op t op k = execute t op k
