(** Write-ahead-log record format for the key-value store.

    Records are length-prefixed so that recovery can stop cleanly at a
    torn tail (crash mid-append), and carry a per-record CRC-32 so a
    record whose bytes were damaged in place is treated the same way:
    [u32 (body-length | 0x80000000) | u32 crc32(body) | body], where body
    = [op byte | key | value] in wire encoding. The length word's top bit
    marks the CRC's presence: legacy logs written without it ([u32
    body-length | body]) still replay. *)

type record = Put of { key : string; value : string } | Del of { key : string }

val encode : record -> string
(** The full framed record (including the length prefix). *)

val decode_all : string -> record list * int
(** [decode_all data] parses consecutive records, returning them plus the
    byte offset where parsing stopped (end of data or start of a torn /
    corrupt tail — everything before it is durable). A record failing its
    CRC stops the parse exactly like a short final record. *)
