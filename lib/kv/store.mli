(** The key-value store: hash index in device memory, durability through a
    write-ahead log on a storage backend.

    The backend is abstract so the same store logic runs on the CPU-less
    system (log appended through {!Lastcpu_devices.File_client}, i.e. pure
    data plane) and on the centralized baseline (log through the kernel's
    syscall path). All operations are asynchronous. *)

type backend = {
  append : string -> ((unit, string) result -> unit) -> unit;
      (** durably append bytes to the log *)
  read_log : ((string, string) result -> unit) -> unit;
      (** read the whole log (for recovery) *)
  reset_log : ((unit, string) result -> unit) -> unit;
      (** truncate the log to empty *)
  replace_log : string -> ((unit, string) result -> unit) -> unit;
      (** atomically replace the whole log (compaction): implementations
          write a sidecar and rename it over the live log, so a crash
          leaves either the old or the new log, never a mix *)
}

val memory_backend : unit -> backend
(** Volatile backend for unit tests: the "log" is an in-memory buffer. *)

type t

val create : ?metrics:Lastcpu_sim.Metrics.t -> ?actor:string -> backend -> t
(** Op counters (puts/gets/deletes) register under [actor] (default
    ["kv"]) in [metrics] (default: a private registry). *)

val recover : t -> ((int, string) result -> unit) -> unit
(** Replay the log into the index; continuation receives the number of
    records applied (torn tails are discarded silently — crash
    semantics).

    Replay honours the {e snapshot watermark}: records the index already
    reflects — because the store was just {!restore}d from a checkpoint —
    are skipped rather than double-applied, and only the log suffix past
    the watermark is replayed (the index is {e not} reset in that case).
    A fresh store has watermark zero, so first-boot recovery replays the
    whole log exactly as before. *)

val get : t -> string -> (string option -> unit) -> unit
val put : t -> key:string -> value:string -> ((unit, string) result -> unit) -> unit
val delete : t -> string -> ((bool, string) result -> unit) -> unit
(** [false] when the key was absent (still durably logged as a no-op
    delete? no — absent keys are not logged). *)

val scan_prefix : t -> prefix:string -> ((string * string) list -> unit) -> unit
(** Snapshot of current matching pairs, key-sorted. *)

val size : t -> int
val compact : t -> ((unit, string) result -> unit) -> unit
(** Rewrite the log as one Put per live key (bounds recovery time). The
    rewrite goes through [replace_log], so it is crash-safe: a crash during
    compaction recovers either the old log or the compacted one. *)

val puts : t -> int
val gets : t -> int
val deletes : t -> int

val applied_watermark : t -> int
(** Number of decodable log records the index currently reflects. *)

val set_applied_watermark : t -> int -> unit
(** Override the watermark (tests and checkpoint plumbing).
    @raise Invalid_argument when negative. *)

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append the index (key order) and watermark (checkpointing). *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Overwrite index and watermark from {!save}d state.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
