module Wire = Lastcpu_proto.Wire

type record = Put of { key : string; value : string } | Del of { key : string }

let encode r =
  let w = Wire.Writer.create () in
  (match r with
  | Put { key; value } ->
    Wire.Writer.byte w 0;
    Wire.Writer.string w key;
    Wire.Writer.string w value
  | Del { key } ->
    Wire.Writer.byte w 1;
    Wire.Writer.string w key);
  let body = Wire.Writer.contents w in
  (* Framing: u32 length with the top bit marking "CRC follows", then the
     CRC-32 of the body, then the body. Legacy logs (no top bit, no CRC)
     still decode; the marker bit is free because record bodies are tiny. *)
  let len = String.length body in
  let crc = Wire.crc32 body in
  let u32 v =
    let b = Bytes.create 4 in
    Bytes.set b 0 (Char.chr (v land 0xff));
    Bytes.set b 1 (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b 2 (Char.chr ((v lsr 16) land 0xff));
    Bytes.set b 3 (Char.chr ((v lsr 24) land 0xff));
    Bytes.to_string b
  in
  u32 (len lor 0x8000_0000) ^ u32 crc ^ body

let decode_body body =
  let r = Wire.Reader.create body in
  match Wire.Reader.byte r with
  | 0 ->
    let key = Wire.Reader.string r in
    let value = Wire.Reader.string r in
    if Wire.Reader.at_end r then Some (Put { key; value }) else None
  | 1 ->
    let key = Wire.Reader.string r in
    if Wire.Reader.at_end r then Some (Del { key }) else None
  | _ -> None
  | exception Wire.Malformed _ -> None

let decode_all data =
  let total = String.length data in
  let u32_at pos =
    Char.code data.[pos]
    lor (Char.code data.[pos + 1] lsl 8)
    lor (Char.code data.[pos + 2] lsl 16)
    lor (Char.code data.[pos + 3] lsl 24)
  in
  let rec go pos acc =
    if pos + 4 > total then (List.rev acc, pos)
    else begin
      let word = u32_at pos in
      let checksummed = word land 0x8000_0000 <> 0 in
      let len = word land 0x7fff_ffff in
      let header = if checksummed then 8 else 4 in
      if len = 0 || pos + header + len > total then (List.rev acc, pos)
      else begin
        let body = String.sub data (pos + header) len in
        (* A CRC mismatch means the record (or its tail) never fully hit
           flash: stop here, exactly like a short final record. *)
        if checksummed && Wire.crc32 body <> u32_at (pos + 4) then
          (List.rev acc, pos)
        else
          match decode_body body with
          | None -> (List.rev acc, pos)
          | Some r -> go (pos + header + len) (r :: acc)
      end
    end
  in
  go 0 []
