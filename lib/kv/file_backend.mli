(** Store backend over the smart SSD's file service.

    Appends go through the VIRTIO data plane ({!Lastcpu_devices.File_client});
    large appends are chunked to the client's slot size. Offsets are
    reserved at submission so concurrent appends land disjoint. *)

type t

val create :
  Lastcpu_devices.File_client.t ->
  path:string ->
  ((t, string) result -> unit) ->
  unit
(** Creates the log file if missing and learns its current size. *)

val backend : t -> Store.backend
val log_bytes : t -> int
(** Current end-of-log offset. *)

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append the end-of-log offset (checkpointing). *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Overwrite the end-of-log offset from {!save}d state.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
