(** A device's DMA view of memory: every access is translated by that
    device's IOMMU for a given PASID before touching simulated DRAM.

    This is the only way devices read or write memory in the emulation, so
    isolation violations are structurally impossible to express — exactly
    the property §2.2 assigns to the IOMMU. *)

exception Dma_fault of Lastcpu_iommu.Iommu.fault

type t

val create :
  iommu:Lastcpu_iommu.Iommu.t ->
  pasid:int ->
  mem:Lastcpu_mem.Physmem.t ->
  t

val pasid : t -> int

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_u16 : t -> int64 -> int
val write_u16 : t -> int64 -> int -> unit
val read_u32 : t -> int64 -> int
val write_u32 : t -> int64 -> int -> unit
val read_u64 : t -> int64 -> int64
val write_u64 : t -> int64 -> int64 -> unit
val read_bytes : t -> int64 -> int -> string
val write_bytes : t -> int64 -> string -> unit

val accesses : t -> int
(** Number of translated accesses performed (cost accounting: each is at
    most one DRAM touch after translation; multi-byte accesses within one
    page count once). *)

val set_accesses : t -> int -> unit
(** Overwrite the access counter (checkpoint restore only). *)
