(** A device's DMA view of memory: every access is translated by that
    device's IOMMU for a given PASID before touching simulated DRAM.

    This is the only way devices read or write memory in the emulation, so
    isolation violations are structurally impossible to express — exactly
    the property §2.2 assigns to the IOMMU. *)

exception Dma_fault of Lastcpu_iommu.Iommu.fault

type t

val create :
  iommu:Lastcpu_iommu.Iommu.t ->
  pasid:int ->
  mem:Lastcpu_mem.Physmem.t ->
  t

val pasid : t -> int

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_u16 : t -> int64 -> int
val write_u16 : t -> int64 -> int -> unit
val read_u32 : t -> int64 -> int
val write_u32 : t -> int64 -> int -> unit
val read_u64 : t -> int64 -> int64
val write_u64 : t -> int64 -> int64 -> unit
val read_bytes : t -> int64 -> int -> string
val write_bytes : t -> int64 -> string -> unit

val read_into : t -> int64 -> Bytes.t -> pos:int -> len:int -> unit
(** [read_bytes] into a caller-provided buffer (no result allocation). *)

val write_string_sub : t -> int64 -> string -> pos:int -> len:int -> unit
val write_bytes_sub : t -> int64 -> Bytes.t -> pos:int -> len:int -> unit
(** Write a slice of the argument without carving an intermediate string. *)

val map_direct :
  t ->
  va:int64 ->
  len:int ->
  perm:Lastcpu_iommu.Iommu.access ->
  Lastcpu_mem.Physmem.view option
(** DMI-style direct grant: a window straight onto backing DRAM for
    [va, va+len). Replays exactly the per-page-fragment translations the
    copying path performs (IOMMU/TLB counters feed golden digests — the
    fast path may only change host time), then returns the cached view if
    the translation is unchanged, or rebuilds it. [None] when the range's
    physical pages are not contiguous (or cross a backing-chunk boundary):
    take the copying path. Raises {!Dma_fault} exactly where
    [read_bytes]/[write_bytes] would.

    Grants are dropped whenever this PASID's mappings shrink (IOMMU unmap,
    PASID teardown, capability revocation, quarantine — all funnel through
    {!Lastcpu_iommu.Iommu.on_invalidate}); do not hold a view across
    events, re-request it per access instead (hits are cheap). *)

val map_single :
  t ->
  va:int64 ->
  len:int ->
  perm:Lastcpu_iommu.Iommu.access ->
  Lastcpu_mem.Physmem.view option
(** {!map_direct} restricted to ranges inside one IOMMU page, where the
    probe is exactly one translation (the one the copying path would
    spend) and cannot fail partway. Multi-page ranges return [None]
    without touching the IOMMU, so the caller's copy-path fallback
    remains the only translation pass — the form digest-frozen hot paths
    must use. *)

val dmi_hits : t -> int
(** Direct-map grants served from cache (host-perf observability; not
    modeled state, so deliberately absent from snapshots). *)

val dmi_invalidations : t -> int
(** Cached grants dropped by mapping-change notifications. *)

val accesses : t -> int
(** Number of translated accesses performed (cost accounting: each is at
    most one DRAM touch after translation; multi-byte accesses within one
    page count once). *)

val set_accesses : t -> int -> unit
(** Overwrite the access counter (checkpoint restore only). *)
