(** VIRTIO 1.1-style split virtqueue.

    The standard interface the paper proposes for exposing services from
    self-managing devices (§2.1). A queue lives in *shared memory at virtual
    addresses*: the driver half (the client application, e.g. the KVS on the
    NIC) and the device half (the provider, e.g. the SSD) each access it
    through their own IOMMU view ({!Dma.t}), as in Figure 2 step 7 where the
    NIC "programs the VIRTIO queues in the SSD using virtual addresses".

    Memory layout (split queue):
    - descriptor table: 16 bytes x size
    - available ring: 4 + 2 x size bytes
    - used ring: 4 + 8 x size bytes
    Descriptor flags: NEXT=1, WRITE=2. *)

type buffer = {
  va : int64;  (** virtual address of the segment *)
  len : int;
  writable : bool;  (** true = device writes (an "in" buffer) *)
}

val layout_bytes : size:int -> int
(** Total bytes a queue of [size] descriptors occupies. [size] must be a
    power of two <= 32768. *)

module Driver : sig
  type t

  val create : dma:Dma.t -> base:int64 -> size:int -> t
  (** Initialise ring memory (zeroes indices, builds the free list). *)

  val size : t -> int
  val num_free : t -> int

  val add : t -> buffer list -> (int, string) result
  (** Post a descriptor chain; returns the head descriptor id. Fails when
      the chain is empty or descriptors are exhausted. Read-only segments
      must precede device-writable ones (VIRTIO convention). *)

  val add_indirect : t -> table_va:int64 -> buffer list -> (int, string) result
  (** Post a chain through an indirect descriptor table
      (VIRTIO_F_INDIRECT_DESC): the segment descriptors are written to
      driver-owned memory at [table_va] (16 bytes per segment) and a single
      ring descriptor points at them — long chains cost one ring slot. *)

  val kick_needed : t -> bool
  (** True when the device asked for notification (used-ring flags). *)

  val poll_used : t -> (int * int) option
  (** [(head, written)] for the next completion, recycling its
      descriptors. *)

  val completions : t -> int

  val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
  (** Append the driver-local free list and shadow indices (checkpointing).
      Ring memory itself is part of the DRAM image. *)

  val restore : Lastcpu_sim.Snapshot.R.t -> dma:Dma.t -> t
  (** Reconstruct a driver handle from {!save}d state over [dma] without
      re-initialising ring memory (contents come back with DRAM).
      @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
end

module Device : sig
  type t

  val create : dma:Dma.t -> base:int64 -> size:int -> t
  (** Attach to an already-initialised queue (driver side creates it). *)

  type chain = { head : int; buffers : buffer list }

  val pop : t -> chain option
  (** Next posted chain from the available ring, walking descriptor
      links. *)

  val push_used : t -> head:int -> written:int -> unit
  (** Complete a chain, making it visible on the used ring. *)

  val drain : t -> f:(chain -> int) -> int
  (** Service every available chain in one event: pop each, apply [f]
      (which returns the bytes written into the chain's writable
      segments), then publish all used entries in one shot. Returns the
      number of chains drained. The ring access sequence is exactly that
      of a [pop]/[push_used] loop — the batching saves host work only,
      keeping the IOMMU/TLB accounting (and with it the golden digests)
      unchanged. *)

  val drain_deferred : t -> f:(chain -> int) -> (int * int) list
  (** The pop half of {!drain}: service every available chain but return
      the [(head, written)] completions instead of publishing them, for
      devices that surface completions after a simulated delay. *)

  val publish_used : t -> (int * int) list -> unit
  (** The publish half of {!drain}: push each completion onto the used
      ring, in order, replaying the per-entry access sequence of a
      [push_used] loop. *)

  val pending : t -> int
  (** Chains posted but not yet popped. *)

  val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
  (** Append the device-side shadow index (checkpointing). *)

  val restore : Lastcpu_sim.Snapshot.R.t -> dma:Dma.t -> t
  (** Reconstruct a device handle from {!save}d state over [dma] without
      touching ring memory.
      @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
end
