module Iommu = Lastcpu_iommu.Iommu
module Physmem = Lastcpu_mem.Physmem
module Layout = Lastcpu_mem.Layout

exception Dma_fault of Iommu.fault

(* A direct-map grant: the DRAM view for one (va, len, access) range,
   kept until the IOMMU tells us the underlying mapping changed. Host-side
   cache only — the modeled translation accounting is replayed on every
   access (see [map_direct]), so hits and invalidations never move a
   digest. *)
type grant = { base_pa : int64; gview : Physmem.view }

type t = {
  iommu : Iommu.t;
  pasid : int;
  mem : Physmem.t;
  mutable access_count : int;
  grants : (int64 * int * int, grant) Hashtbl.t;  (* va, len, access tag *)
  mutable dmi_hits : int;
  mutable dmi_invalidations : int;
}

let create ~iommu ~pasid ~mem =
  let t =
    {
      iommu;
      pasid;
      mem;
      access_count = 0;
      grants = Hashtbl.create 16;
      dmi_hits = 0;
      dmi_invalidations = 0;
    }
  in
  Iommu.on_invalidate iommu (fun ~pasid ->
      if pasid = t.pasid && Hashtbl.length t.grants > 0 then begin
        t.dmi_invalidations <- t.dmi_invalidations + Hashtbl.length t.grants;
        Hashtbl.reset t.grants
      end);
  t

let pasid t = t.pasid

let translate t va access =
  t.access_count <- t.access_count + 1;
  match Iommu.translate t.iommu ~pasid:t.pasid ~va ~access with
  | Iommu.Ok_pa pa -> pa
  | Iommu.Fault f -> raise (Dma_fault f)

(* Per-byte accessors stay on native ints end to end (address translation
   included): descriptor and ring traffic funnels through here one byte
   at a time, and boxing an Int64 per byte would dominate the simulation.
   Simulated VAs are far below 2^62, so the round trips are exact. *)
let translate_i t vai access =
  t.access_count <- t.access_count + 1;
  let pa = Iommu.translate_pa t.iommu ~pasid:t.pasid ~vai ~access in
  if pa >= 0 then pa else raise (Dma_fault (Iommu.last_fault t.iommu))

let read_byte t vai = Physmem.read_byte t.mem (translate_i t vai Iommu.Read)

let write_byte t vai v =
  Physmem.write_byte t.mem (translate_i t vai Iommu.Write) v

let read_u8 t va = read_byte t (Int64.to_int va)
let write_u8 t va v = write_byte t (Int64.to_int va) v

let read_uint t va n =
  let vai = Int64.to_int va in
  let v = ref 0 in
  for i = 0 to n - 1 do
    v := !v lor (read_byte t (vai + i) lsl (i * 8))
  done;
  !v

let write_uint t va n v =
  let vai = Int64.to_int va in
  for i = 0 to n - 1 do
    write_byte t (vai + i) ((v lsr (i * 8)) land 0xff)
  done

let read_u16 t va = read_uint t va 2
let write_u16 t va v = write_uint t va 2 v
let read_u32 t va = read_uint t va 4
let write_u32 t va v = write_uint t va 4 v

let read_u64 t va =
  let vai = Int64.to_int va in
  let lo = ref 0 and hi = ref 0 in
  for i = 0 to 3 do
    lo := !lo lor (read_byte t (vai + i) lsl (i * 8))
  done;
  for i = 4 to 7 do
    hi := !hi lor (read_byte t (vai + i) lsl ((i - 4) * 8))
  done;
  Int64.logor (Int64.of_int !lo) (Int64.shift_left (Int64.of_int !hi) 32)

let write_u64 t va v =
  let vai = Int64.to_int va in
  let lo = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical v 32) in
  for i = 0 to 3 do
    write_byte t (vai + i) ((lo lsr (i * 8)) land 0xff)
  done;
  for i = 4 to 7 do
    write_byte t (vai + i) ((hi lsr ((i - 4) * 8)) land 0xff)
  done

let read_into t va out ~pos ~len =
  let rec go va dst_off remaining =
    if remaining > 0 then begin
      let off = Layout.offset_in_page va in
      let chunk = min remaining (Int64.to_int Layout.page_size - off) in
      let pa = translate t va Iommu.Read in
      Physmem.read_into t.mem pa out ~pos:dst_off ~len:chunk;
      go (Int64.add va (Int64.of_int chunk)) (dst_off + chunk) (remaining - chunk)
    end
  in
  go va pos len

let read_bytes t va len =
  let out = Bytes.create len in
  read_into t va out ~pos:0 ~len;
  Bytes.unsafe_to_string out

let write_string_sub t va s ~pos ~len =
  let rec go va src_off remaining =
    if remaining > 0 then begin
      let off = Layout.offset_in_page va in
      let chunk = min remaining (Int64.to_int Layout.page_size - off) in
      let pa = translate t va Iommu.Write in
      Physmem.write_string_sub t.mem pa s ~pos:src_off ~len:chunk;
      go (Int64.add va (Int64.of_int chunk)) (src_off + chunk) (remaining - chunk)
    end
  in
  go va pos len

let write_bytes t va s = write_string_sub t va s ~pos:0 ~len:(String.length s)

let write_bytes_sub t va b ~pos ~len =
  let rec go va src_off remaining =
    if remaining > 0 then begin
      let off = Layout.offset_in_page va in
      let chunk = min remaining (Int64.to_int Layout.page_size - off) in
      let pa = translate t va Iommu.Write in
      Physmem.write_bytes_sub t.mem pa b ~pos:src_off ~len:chunk;
      go (Int64.add va (Int64.of_int chunk)) (src_off + chunk) (remaining - chunk)
    end
  in
  go va pos len

(* --- DMI fast path ----------------------------------------------------- *)

let page_bytes = Int64.to_int Layout.page_size
let access_tag = function Iommu.Read -> 0 | Iommu.Write -> 1 | Iommu.Exec -> 2

(* The zero-copy contract (DESIGN.md §14): [map_direct] replays exactly
   the per-page-fragment translations the copying path ([read_bytes] /
   [write_bytes]) performs — IOMMU and TLB counters are registry state
   folded into the golden digests, so the fast path must change host
   time only, never modeled behaviour. What a grant hit skips is the
   host-side view reconstruction; what the view itself eliminates is the
   string round-trip on either side. On a fault the usual [Dma_fault]
   escapes, precisely as the copying path would have faulted. *)
let map_direct t ~va ~len ~perm =
  if len <= 0 then invalid_arg "Dma.map_direct: length must be positive";
  let first_pa = translate t va perm in
  let contiguous = ref true in
  let covered = ref (min len (page_bytes - Layout.offset_in_page va)) in
  while !covered < len do
    let frag_va = Int64.add va (Int64.of_int !covered) in
    let pa = translate t frag_va perm in
    if pa <> Int64.add first_pa (Int64.of_int !covered) then
      contiguous := false;
    covered := !covered + min (len - !covered) page_bytes
  done;
  if not !contiguous then None
  else begin
    let key = (va, len, access_tag perm) in
    match Hashtbl.find_opt t.grants key with
    | Some g when g.base_pa = first_pa ->
      t.dmi_hits <- t.dmi_hits + 1;
      Some g.gview
    | _ -> (
      match Physmem.view t.mem first_pa len with
      | exception Invalid_argument _ ->
        None (* crosses a backing-chunk boundary: caller takes the copy path *)
      | gview ->
        Hashtbl.replace t.grants key { base_pa = first_pa; gview };
        Some gview)
  end

(* The single-page special case hot paths want: when [va, va+len) lies
   inside one IOMMU page the probe is exactly one translation — the same
   one the copying path would spend — and cannot fail halfway (a page
   always sits inside one backing chunk). Multi-page ranges return None
   without touching the IOMMU, leaving the caller's copy path as the only
   translation pass; a failed multi-fragment [map_direct] probe would
   translate the range twice, which the frozen digests cannot absorb. *)
let map_single t ~va ~len ~perm =
  if len <= 0 || Layout.offset_in_page va + len > page_bytes then None
  else map_direct t ~va ~len ~perm

let dmi_hits t = t.dmi_hits
let dmi_invalidations t = t.dmi_invalidations

let accesses t = t.access_count
let set_accesses t n = t.access_count <- n
