module Iommu = Lastcpu_iommu.Iommu
module Physmem = Lastcpu_mem.Physmem
module Layout = Lastcpu_mem.Layout

exception Dma_fault of Iommu.fault

type t = {
  iommu : Iommu.t;
  pasid : int;
  mem : Physmem.t;
  mutable access_count : int;
}

let create ~iommu ~pasid ~mem = { iommu; pasid; mem; access_count = 0 }

let pasid t = t.pasid

let translate t va access =
  t.access_count <- t.access_count + 1;
  match Iommu.translate t.iommu ~pasid:t.pasid ~va ~access with
  | Iommu.Ok_pa pa -> pa
  | Iommu.Fault f -> raise (Dma_fault f)

let read_u8 t va =
  let pa = translate t va Iommu.Read in
  Physmem.read_u8 t.mem pa

let write_u8 t va v =
  let pa = translate t va Iommu.Write in
  Physmem.write_u8 t.mem pa v

let read_uint t va n =
  let v = ref 0 in
  for i = 0 to n - 1 do
    v := !v lor (read_u8 t (Int64.add va (Int64.of_int i)) lsl (i * 8))
  done;
  !v

let write_uint t va n v =
  for i = 0 to n - 1 do
    write_u8 t (Int64.add va (Int64.of_int i)) ((v lsr (i * 8)) land 0xff)
  done

let read_u16 t va = read_uint t va 2
let write_u16 t va v = write_uint t va 2 v
let read_u32 t va = read_uint t va 4
let write_u32 t va v = write_uint t va 4 v

let read_u64 t va =
  let v = ref 0L in
  for i = 0 to 7 do
    let b = read_u8 t (Int64.add va (Int64.of_int i)) in
    v := Int64.logor !v (Int64.shift_left (Int64.of_int b) (i * 8))
  done;
  !v

let write_u64 t va v =
  for i = 0 to 7 do
    write_u8 t
      (Int64.add va (Int64.of_int i))
      (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xff)
  done

let read_bytes t va len =
  let out = Bytes.create len in
  let write_frag ~va ~dst_off ~len =
    let pa = translate t va Iommu.Read in
    Bytes.blit_string (Physmem.read_bytes t.mem pa len) 0 out dst_off len
  in
  let rec go va dst_off remaining =
    if remaining > 0 then begin
      let off = Layout.offset_in_page va in
      let chunk = min remaining (Int64.to_int Layout.page_size - off) in
      write_frag ~va ~dst_off ~len:chunk;
      go (Int64.add va (Int64.of_int chunk)) (dst_off + chunk) (remaining - chunk)
    end
  in
  go va 0 len;
  Bytes.unsafe_to_string out

let write_bytes t va s =
  let rec go va src_off remaining =
    if remaining > 0 then begin
      let off = Layout.offset_in_page va in
      let chunk = min remaining (Int64.to_int Layout.page_size - off) in
      let pa = translate t va Iommu.Write in
      Physmem.write_bytes t.mem pa (String.sub s src_off chunk);
      go (Int64.add va (Int64.of_int chunk)) (src_off + chunk) (remaining - chunk)
    end
  in
  go va 0 (String.length s)

let accesses t = t.access_count
let set_accesses t n = t.access_count <- n
