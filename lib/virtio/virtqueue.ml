(* Split-queue offsets, mirroring the VIRTIO 1.1 layout:
     desc table : base,                16 * size bytes
     avail      : base + 16*size,      2 + 2 + 2*size bytes (flags, idx, ring)
     used       : avail_end aligned 4, 2 + 2 + 8*size bytes (flags, idx, ring)
   Descriptor: addr u64 | len u32 | flags u16 | next u16. *)

let desc_f_next = 1
let desc_f_write = 2
let desc_f_indirect = 4

type buffer = { va : int64; len : int; writable : bool }

let check_size size =
  if size <= 0 || size > 32768 || size land (size - 1) <> 0 then
    invalid_arg "Virtqueue: size must be a power of two in [1, 32768]"

let desc_off i = Int64.of_int (16 * i)
let avail_off size = Int64.of_int (16 * size)
let avail_ring_off size i = Int64.add (avail_off size) (Int64.of_int (4 + (2 * i)))

let used_off size =
  let avail_end = (16 * size) + 4 + (2 * size) in
  Int64.of_int ((avail_end + 3) land lnot 3)

let used_ring_off size i = Int64.add (used_off size) (Int64.of_int (4 + (8 * i)))

let layout_bytes ~size =
  check_size size;
  Int64.to_int (used_off size) + 4 + (8 * size)

(* Shared accessors over a DMA view rooted at [base]. *)
module Raw = struct
  type t = { dma : Dma.t; base : int64; size : int }

  let addr t off = Int64.add t.base off
  let read_u16 t off = Dma.read_u16 t.dma (addr t off)
  let write_u16 t off v = Dma.write_u16 t.dma (addr t off) v
  let read_u32 t off = Dma.read_u32 t.dma (addr t off)
  let write_u32 t off v = Dma.write_u32 t.dma (addr t off) v
  let read_u64 t off = Dma.read_u64 t.dma (addr t off)
  let write_u64 t off v = Dma.write_u64 t.dma (addr t off) v

  let read_desc t i =
    let off = desc_off i in
    let va = read_u64 t off in
    let len = read_u32 t (Int64.add off 8L) in
    let flags = read_u16 t (Int64.add off 12L) in
    let next = read_u16 t (Int64.add off 14L) in
    (va, len, flags, next)

  let write_desc t i ~va ~len ~flags ~next =
    let off = desc_off i in
    write_u64 t off va;
    write_u32 t (Int64.add off 8L) len;
    write_u16 t (Int64.add off 12L) flags;
    write_u16 t (Int64.add off 14L) next

  let avail_idx t = read_u16 t (Int64.add (avail_off t.size) 2L)
  let set_avail_idx t v = write_u16 t (Int64.add (avail_off t.size) 2L) (v land 0xffff)
  let avail_ring t i = read_u16 t (avail_ring_off t.size i)
  let set_avail_ring t i v = write_u16 t (avail_ring_off t.size i) v
  let used_idx t = read_u16 t (Int64.add (used_off t.size) 2L)
  let set_used_idx t v = write_u16 t (Int64.add (used_off t.size) 2L) (v land 0xffff)
  let used_flags t = read_u16 t (used_off t.size)

  let used_ring t i =
    let off = used_ring_off t.size i in
    (read_u32 t off, read_u32 t (Int64.add off 4L))

  let set_used_ring t i ~id ~len =
    let off = used_ring_off t.size i in
    write_u32 t off id;
    write_u32 t (Int64.add off 4L) len
end

module Driver = struct
  type t = {
    raw : Raw.t;
    mutable free_head : int;  (* head of the local free-descriptor list *)
    mutable free_count : int;
    next_free : int array;  (* local chain of free descriptors *)
    chain_len : int array;  (* descriptors in the chain headed by i *)
    mutable avail_shadow : int;  (* our copy of avail.idx (unwrapped) *)
    mutable used_seen : int;  (* used.idx we have consumed (unwrapped) *)
    mutable completion_count : int;
  }

  let create ~dma ~base ~size =
    check_size size;
    let raw = { Raw.dma; base; size } in
    (* Zero the ring indices; descriptor contents are written on add. *)
    Raw.write_u16 raw (avail_off size) 0;
    Raw.set_avail_idx raw 0;
    Raw.write_u16 raw (used_off size) 0;
    Raw.set_used_idx raw 0;
    let next_free = Array.init size (fun i -> (i + 1) mod size) in
    {
      raw;
      free_head = 0;
      free_count = size;
      next_free;
      chain_len = Array.make size 0;
      avail_shadow = 0;
      used_seen = 0;
      completion_count = 0;
    }

  let size t = t.raw.Raw.size
  let num_free t = t.free_count

  let add t buffers =
    let n = List.length buffers in
    if n = 0 then Error "empty chain"
    else if n > t.free_count then Error "out of descriptors"
    else begin
      (* VIRTIO requires read-only segments before device-writable ones. *)
      let rec ordered seen_writable = function
        | [] -> true
        | b :: rest ->
          if b.writable then ordered true rest
          else if seen_writable then false
          else ordered false rest
      in
      if not (ordered false buffers) then
        Error "read-only segment after writable segment"
      else begin
        let head = t.free_head in
        let rec fill i = function
          | [] -> assert false
          | [ b ] ->
            Raw.write_desc t.raw i ~va:b.va ~len:b.len
              ~flags:(if b.writable then desc_f_write else 0)
              ~next:0;
            t.free_head <- t.next_free.(i)
          | b :: rest ->
            let next = t.next_free.(i) in
            Raw.write_desc t.raw i ~va:b.va ~len:b.len
              ~flags:(desc_f_next lor if b.writable then desc_f_write else 0)
              ~next;
            fill next rest
        in
        fill head buffers;
        t.free_count <- t.free_count - n;
        t.chain_len.(head) <- n;
        (* Publish on the available ring, then bump idx (the ordering that
           makes the lock-free handoff correct on real hardware). *)
        Raw.set_avail_ring t.raw (t.avail_shadow mod size t) head;
        t.avail_shadow <- t.avail_shadow + 1;
        Raw.set_avail_idx t.raw t.avail_shadow;
        Ok head
      end
    end

  let add_indirect t ~table_va buffers =
    let n = List.length buffers in
    if n = 0 then Error "empty chain"
    else if 1 > t.free_count then Error "out of descriptors"
    else begin
      let rec ordered seen_writable = function
        | [] -> true
        | b :: rest ->
          if b.writable then ordered true rest
          else if seen_writable then false
          else ordered false rest
      in
      if not (ordered false buffers) then
        Error "read-only segment after writable segment"
      else begin
        (* Write the indirect table into driver memory: sequential
           entries, NEXT-chained as the spec requires. *)
        List.iteri
          (fun i b ->
            let off = Int64.add table_va (Int64.of_int (16 * i)) in
            Dma.write_u64 t.raw.Raw.dma off b.va;
            Dma.write_u32 t.raw.Raw.dma (Int64.add off 8L) b.len;
            Dma.write_u16 t.raw.Raw.dma (Int64.add off 12L)
              ((if i < n - 1 then desc_f_next else 0)
              lor if b.writable then desc_f_write else 0);
            Dma.write_u16 t.raw.Raw.dma (Int64.add off 14L)
              (if i < n - 1 then i + 1 else 0))
          buffers;
        let head = t.free_head in
        Raw.write_desc t.raw head ~va:table_va ~len:(16 * n)
          ~flags:desc_f_indirect ~next:0;
        t.free_head <- t.next_free.(head);
        t.free_count <- t.free_count - 1;
        t.chain_len.(head) <- 1;
        Raw.set_avail_ring t.raw (t.avail_shadow mod size t) head;
        t.avail_shadow <- t.avail_shadow + 1;
        Raw.set_avail_idx t.raw t.avail_shadow;
        Ok head
      end
    end

  let kick_needed t = Raw.used_flags t.raw land 1 = 0

  let poll_used t =
    let used = Raw.used_idx t.raw in
    if used land 0xffff = t.used_seen land 0xffff then None
    else begin
      let slot = t.used_seen mod size t in
      let id, written = Raw.used_ring t.raw slot in
      t.used_seen <- t.used_seen + 1;
      t.completion_count <- t.completion_count + 1;
      (* Recycle the chain's descriptors onto the free list. *)
      let n = t.chain_len.(id) in
      assert (n > 0);
      let rec last i k = if k = 1 then i else last t.next_free.(i) (k - 1) in
      (* Walk the stored shared-memory chain links to rebuild locality:
         next pointers in the desc table are still intact. *)
      let rec relink i k =
        if k > 1 then begin
          let _, _, _, next = Raw.read_desc t.raw i in
          t.next_free.(i) <- next;
          relink next (k - 1)
        end
      in
      relink id n;
      let tail = last id n in
      t.next_free.(tail) <- t.free_head;
      t.free_head <- id;
      t.free_count <- t.free_count + n;
      t.chain_len.(id) <- 0;
      Some (id, written)
    end

  let completions t = t.completion_count

  (* Checkpointing: the descriptor table, rings and buffers live in
     simulated DRAM (saved by Physmem); only the driver's local free-list
     and shadow indices are here. [restore] reconstructs the record
     without re-zeroing the rings — the ring contents come back with the
     memory image. *)
  module Snapshot = Lastcpu_sim.Snapshot

  let save w t =
    Snapshot.W.i64 w t.raw.Raw.base;
    Snapshot.W.varint w t.raw.Raw.size;
    Snapshot.W.varint w t.free_head;
    Snapshot.W.varint w t.free_count;
    Snapshot.W.array w (fun w i -> Snapshot.W.varint w i) t.next_free;
    Snapshot.W.array w (fun w n -> Snapshot.W.varint w n) t.chain_len;
    Snapshot.W.varint w t.avail_shadow;
    Snapshot.W.varint w t.used_seen;
    Snapshot.W.varint w t.completion_count

  let restore r ~dma =
    let base = Snapshot.R.i64 r in
    let size = Snapshot.R.varint r in
    check_size size;
    let free_head = Snapshot.R.varint r in
    let free_count = Snapshot.R.varint r in
    let next_free = Snapshot.R.array r Snapshot.R.varint in
    let chain_len = Snapshot.R.array r Snapshot.R.varint in
    if Array.length next_free <> size || Array.length chain_len <> size then
      raise (Snapshot.R.Corrupt "virtqueue driver table length mismatch");
    let avail_shadow = Snapshot.R.varint r in
    let used_seen = Snapshot.R.varint r in
    let completion_count = Snapshot.R.varint r in
    {
      raw = { Raw.dma; base; size };
      free_head;
      free_count;
      next_free;
      chain_len;
      avail_shadow;
      used_seen;
      completion_count;
    }
end

module Device = struct
  type t = { raw : Raw.t; mutable avail_seen : int }

  type chain = { head : int; buffers : buffer list }

  let create ~dma ~base ~size =
    check_size size;
    { raw = { Raw.dma; base; size }; avail_seen = 0 }

  let pending t =
    let avail = Raw.avail_idx t.raw in
    (avail - t.avail_seen) land 0xffff

  let pop t =
    if pending t = 0 then None
    else begin
      let slot = t.avail_seen mod t.raw.Raw.size in
      let head = Raw.avail_ring t.raw slot in
      t.avail_seen <- t.avail_seen + 1;
      let read_indirect table_va bytes =
        let entries = bytes / 16 in
        let rec go i acc =
          if i >= entries then List.rev acc
          else begin
            let off = Int64.add table_va (Int64.of_int (16 * i)) in
            let va = Dma.read_u64 t.raw.Raw.dma off in
            let len = Dma.read_u32 t.raw.Raw.dma (Int64.add off 8L) in
            let flags = Dma.read_u16 t.raw.Raw.dma (Int64.add off 12L) in
            let buf = { va; len; writable = flags land desc_f_write <> 0 } in
            if flags land desc_f_next <> 0 then go (i + 1) (buf :: acc)
            else List.rev (buf :: acc)
          end
        in
        go 0 []
      in
      let rec walk i acc guard =
        if guard > t.raw.Raw.size then
          invalid_arg "Virtqueue.Device.pop: descriptor chain loop"
        else begin
          let va, len, flags, next = Raw.read_desc t.raw i in
          if flags land desc_f_indirect <> 0 then
            List.rev_append acc (read_indirect va len)
          else begin
            let buf = { va; len; writable = flags land desc_f_write <> 0 } in
            if flags land desc_f_next <> 0 then walk next (buf :: acc) (guard + 1)
            else List.rev (buf :: acc)
          end
        end
      in
      Some { head; buffers = walk head [] 0 }
    end

  let push_used t ~head ~written =
    let used = Raw.used_idx t.raw in
    Raw.set_used_ring t.raw (used mod t.raw.Raw.size) ~id:head ~len:written;
    Raw.set_used_idx t.raw (used + 1)

  (* Batched service. [drain] takes every available chain in one event and
     publishes the used entries in one shot at the end; [drain_deferred] /
     [publish_used] split the two halves for devices that surface
     completions later (the SSD publishes only after the flash work's
     simulated cost has elapsed). Publication deliberately replays the
     per-entry used-ring access sequence of a [push_used] loop: ring
     traffic goes through the IOMMU, whose counters are folded into the
     golden digests, so batching may only save host time — closure
     dispatch, list churn — never modeled accesses. *)
  let drain_deferred t ~f =
    let rec go acc =
      match pop t with
      | None -> List.rev acc
      | Some chain -> go ((chain.head, f chain) :: acc)
    in
    go []

  let publish_used t completions =
    List.iter (fun (head, written) -> push_used t ~head ~written) completions

  let drain t ~f =
    let completions = drain_deferred t ~f in
    publish_used t completions;
    List.length completions

  (* Checkpointing: the device side only keeps a shadow of avail.idx;
     [restore] rebuilds the record without touching ring memory. *)
  module Snapshot = Lastcpu_sim.Snapshot

  let save w t =
    Snapshot.W.i64 w t.raw.Raw.base;
    Snapshot.W.varint w t.raw.Raw.size;
    Snapshot.W.varint w t.avail_seen

  let restore r ~dma =
    let base = Snapshot.R.i64 r in
    let size = Snapshot.R.varint r in
    check_size size;
    let avail_seen = Snapshot.R.varint r in
    { raw = { Raw.dma; base; size }; avail_seen }
end
