(** The system management bus: the privileged control plane (§2.2).

    The bus is mechanism, not policy:
    - it routes control messages between devices (unicast + broadcast
      discovery) with a FIFO queueing model of its message processor;
    - it tracks device liveness from [Device_alive]/[Heartbeat] messages and
      broadcasts [Device_failed] on timeout or explicit failure (§4);
    - it performs the only privileged operation in the system — programming
      a device's IOMMU — and only when instructed by the controller of the
      resource, proven by a capability token it verifies against the
      controller's registered key.

    No entity sees the whole system: the bus holds no allocation tables, no
    file tables, no application state — only liveness, routes and keys. *)

module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Iommu = Lastcpu_iommu.Iommu

type t

type quarantine_config = {
  suspect_score : int;  (** score at which Trusted demotes to Suspect *)
  quarantine_score : int;  (** score at which the device is fenced *)
  bad_token_weight : int;  (** forged/stale/miswielded capability token *)
  malformed_weight : int;  (** undecodable frame at the raw ingress *)
  dma_fault_weight : int;  (** out-of-grant DMA (IOMMU fault observer) *)
  replay_weight : int;  (** privileged corr replays past the allowance *)
  spoof_weight : int;  (** frame claiming another device's source *)
  replay_allowance : int;
      (** same-corr privileged repeats tolerated before scoring —
          legitimate [Device.request] retransmits reuse their corr *)
}

val default_quarantine : quarantine_config

type config = {
  enable_tokens : bool;
      (** verify capability tokens (ablation: T1 --no-tokens) *)
  heartbeat_timeout_ns : int64;
      (** declare a device dead after this silence; 0 disables sweeping *)
  lanes : int;
      (** parallel message processors (a switched control fabric instead of
          one shared bus); messages hash by source device. Default 1. *)
  lane_capacity : int option;
      (** bound each lane's queue; a full lane rejects the message and the
          bus bounces [Error_msg E_busy] with a retry-after hint to the
          sender. [None] (default) keeps the historical unbounded queue. *)
  device_queue_capacity : int option;
      (** advisory bound devices apply to their own request stations (read
          via {!device_queue_capacity}); [None] (default) = unbounded. *)
  quarantine : quarantine_config option;
      (** misbehavior scoring and automatic quarantine. [None] (default)
          disables scoring entirely: no counters register, no observers
          attach, and runs are bit-identical to pre-containment builds. *)
}

val default_config : config

val create : ?config:config -> ?shard:int -> Lastcpu_sim.Engine.t -> t
(** [shard] (default [0]) is this bus's home shard id in a temporally
    decoupled run; attached slots default to it. Single-shard runs never
    need to pass it. *)

val engine : t -> Lastcpu_sim.Engine.t

val home_shard : t -> int

(** {1 Attachment and liveness} *)

val attach :
  ?shard:int ->
  t ->
  name:string ->
  iommu:Iommu.t ->
  handler:(Message.t -> unit) ->
  Types.device_id
(** Physically connect a device. It is not live (routable) until its
    [Device_alive] is processed. The handler runs at message-delivery time.

    [shard] (default the bus's home shard) is the slot's shard affinity.
    A slot whose affinity differs from the home shard is a {e boundary
    proxy}: frames addressed to it are handed to the boundary mailbox (see
    {!set_boundary}) instead of a local station, its handler is never
    invoked, and local broadcasts and the heartbeat sweep skip it. *)

val device_name : t -> Types.device_id -> string

val device_shard : t -> Types.device_id -> int
(** The slot's shard affinity (the home shard for ordinary devices). *)

val iommu_of : t -> Types.device_id -> Iommu.t
(** The IOMMU the bus programs for this slot. Read-only introspection for
    containment assertions (pair with {!Iommu.probe} /
    {!Iommu.iter_mappings}); devices keep their own handle from attach. *)

val is_remote : t -> Types.device_id -> bool
(** Whether the slot is a boundary proxy (affinity differs from home). *)

val is_live : t -> Types.device_id -> bool
val live_devices : t -> Types.device_id list

(** {1 Cross-shard boundary}

    In a temporally decoupled run ({!Lastcpu_sim.Temporal}) every
    cross-shard interaction leaves this bus through one funnel: the
    boundary mailbox. [send], [reply], [notify] and unicast delivery all
    divert to it when the destination slot's affinity is remote, so no
    local station ever queues work for another shard's state — the
    decoupling invariant the D006 lint rule enforces at call sites. *)

val set_boundary : t -> (dst_shard:int -> Message.t -> unit) -> unit
(** Wire the cross-shard mailbox (done once, by [Shardlink.create]).
    @raise Invalid_argument if already wired. *)

val boundary_out : t -> int
(** Frames handed to the boundary mailbox so far. The counter registers
    lazily on first use, so single-shard telemetry snapshots are unchanged. *)

val register_controller :
  t -> Types.device_id -> resource:string -> key:Token.key -> unit
(** A resource controller (e.g. the memory controller for "dram") deposits
    its token-verification key at the bus. Minting stays on the device; the
    bus can only verify. *)

val fail_device : t -> Types.device_id -> unit
(** Hard failure injection: stop delivering to the device, mark dead and
    broadcast [Device_failed] (§4). *)

val revive_device : t -> Types.device_id -> unit
(** Reconnect after a reset: the device must re-announce [Device_alive]. *)

(** {1 Containment: capability epochs, revocation, quarantine}

    Every capability token carries the epoch of its subject at mint time,
    covered by the MAC. The bus keeps the authoritative per-device epoch
    table; {!revoke} bumps it and cascades — registered revoke hooks run
    (the memory controller tears down its grants), then the device's IOMMU
    is cleared per PASID with TLB shootdown. Outstanding stale tokens die
    passively: the next {!val-send} of a privileged operation fails
    verification with ["stale capability epoch"], counted in
    [stale_tokens] and NACKed [E_bad_token].

    When [config.quarantine] is set, the bus also scores misbehavior per
    device (bad tokens, malformed frames at the raw ingress, out-of-grant
    DMA faults, replayed privileged correlation ids, spoofed sources) and
    walks the slot [Trusted -> Suspect -> Quarantined]. A quarantined
    device is fenced from routing, its capabilities revoked, and its
    failure broadcast so consumers fail over. Re-admission is only via
    {!release_quarantine} — the reset-line -> re-announce handshake — never
    a bare [Heartbeat] or self-announce. *)

type trust = Trusted | Suspect | Quarantined

val current_epoch : t -> Types.device_id -> int
(** The device's capability epoch (0 until first revocation). Controllers
    read this when minting so their tokens verify. *)

val revoke : t -> Types.device_id -> unit
(** Revoke every capability the device wields: bump its epoch, run the
    revoke hooks, clear its IOMMU (all PASIDs, TLB shot down). *)

val on_revoke : t -> (device:Types.device_id -> unit) -> unit
(** Register a revocation-cascade hook (e.g. the memory controller frees
    the device's allocations). Hooks run in registration order, inside
    {!revoke}, after the epoch bump — directives they mint under the new
    epoch verify. *)

val release_quarantine : t -> Types.device_id -> unit
(** Operator re-admission: the slot reconnects on parole ([Suspect], score
    cleared) and receives the reset line; only its own re-announce makes it
    live. No-op if the device is not quarantined. *)

val trust_of : t -> Types.device_id -> trust
val trust_to_string : trust -> string
val misbehavior_score : t -> Types.device_id -> int

val malformed_frames_of : t -> Types.device_id -> int
(** Undecodable frames this device pushed through {!send_raw}. *)

val stale_tokens : t -> int
(** Token verifications that failed only on the epoch check. *)

val messages_fenced : t -> int
(** Frames from quarantined devices dropped at the fence. *)

val malformed_total : t -> int
val quarantines : t -> int
val revocations : t -> int

(** {1 Messaging} *)

val send : t -> Message.t -> unit
(** Submit a message; it traverses src->bus, queues at the bus processor,
    then bus->dst. Messages to dead devices turn into [Error_msg
    E_device_failed] back to the sender. [dst = Bus] messages are handled by
    the privileged logic below.

    Overload behavior: if the message carries a [deadline_ns] that has
    passed (on arrival at the bus, or by the time its lane would deliver
    it), it is shed and counted in the bus's [expired_dropped] counter.
    If the lane's queue is full ([lane_capacity]), the message is rejected
    and the sender gets [Error_msg E_busy] whose detail carries a
    deterministic retry-after hint ({!Message.retry_after_of_detail}). *)

val send_raw : t -> src:Types.device_id -> string -> unit
(** Raw-byte ingress for untrusted egress traffic (a compromised device,
    the protocol fuzzer): CRC-framed bytes are decoded with the typed
    never-raising codec. Undecodable frames are dropped and counted
    (per-device {!malformed_frames_of} + the bus [malformed_frames]
    counter); frames whose decoded [src] differs from the physical [src]
    are dropped as spoofing; well-formed frames proceed exactly as
    {!val-send}. *)

(** {1 Privileged operations (performed on [dst = Bus] messages)}

    - [Device_alive]: mark live, record services.
    - [Heartbeat]: refresh liveness.
    - [Map_directive]: verify the token (issuer key, subject, pasid, range,
      perm), then program the target device's IOMMU and reply
      [Map_complete].
    - [Grant_request]: verify the token, read the *owner's* current
      mappings for the range, and replicate them into the target device's
      IOMMU at the same virtual addresses (same address space — §3 step 7).
    - [Unmap_directive]: verify and remove mappings + TLB entries.
    - [Discover_request] arrives with [dst = Broadcast] and is fanned out
      to all live devices except the source. *)

val services_of : t -> Types.device_id -> Message.service_desc list
(** Services announced in the device's last [Device_alive]. *)

(** {1 Counters} *)

type counters = {
  routed : int;  (** unicast messages delivered *)
  broadcasts : int;  (** broadcast fan-out deliveries *)
  maps_programmed : int;  (** pages mapped via directives/grants *)
  unmaps : int;
  token_failures : int;
  undeliverable : int;
  control_bytes : int;  (** wire bytes through the bus *)
  doorbells_dropped : int;  (** doorbells to non-live devices, swallowed *)
}

val counters : t -> counters
(** Snapshot of the bus's registry counters as the legacy record. The
    live values are the [actor t] instruments in [Engine.metrics]. *)

val actor : t -> string
(** Registry actor name this bus claimed (["bus"], or ["bus#2"], … when
    several buses share an engine). *)

val station : t -> Lastcpu_sim.Station.t
(** The bus's first message processor (for utilisation metrics in T3). *)

val stations : t -> Lastcpu_sim.Station.t list

val device_queue_capacity : t -> int option
(** The configured advisory bound for device request stations; devices
    consult this at creation time. *)

val messages_expired : t -> int
(** Messages shed because their deadline passed in transit. *)

val messages_rejected : t -> int
(** Messages bounced with [E_busy] because a lane queue was full. *)

val notify : t -> src:Types.device_id -> dst:Types.device_id -> queue:int -> unit
(** Data-plane doorbell: an MSI-style memory write (§2.3 Notifications).
    Delivered directly with only the doorbell cost — it does not occupy the
    bus's message processor. Dropped if the target is not live. *)

(** {1 Frame digest contract}

    The sanitizer's bus probe digests every scheduled frame. The digest is
    defined over the frame description string [frame_desc], but the hot
    path never formats it: [frame_hash]/[frame_key] stream the same bytes
    through the {!Lastcpu_sim.Sanitizer} fnv fold. The equivalences
    [frame_hash msg = Sanitizer.hash_string frame_digest_seed
    (frame_desc msg)] and [frame_key msg = Faults.key_of_string
    (frame_desc msg)] are pinned by unit tests; exposed here so the tests
    can state them verbatim. *)

val frame_desc : Message.t -> string
(** ["bus:<src>><dst>:<payload-tag>"] — the canonical frame description. *)

val frame_digest_seed : int64
(** Seed of the frame digest hash (the bytes of ["frame"]). *)

val frame_hash : Message.t -> int64
(** Streaming hash of [frame_desc msg] under [frame_digest_seed]. *)

val frame_key : Message.t -> int64
(** Streaming fault-injection key of [frame_desc msg]; equals
    [Lastcpu_sim.Faults.key_of_string (frame_desc msg)]. *)
