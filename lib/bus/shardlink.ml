(* Cross-shard links: proxy pairs over the Temporal boundary.

   A link couples one device on shard A with one device on shard B by
   attaching a boundary-proxy slot on each side: P on A's bus standing for
   the remote device, Q on B's bus standing for the local one. Traffic
   addressed to a proxy leaves its bus through the boundary mailbox
   (Sysbus.set_boundary); this module owns that mailbox for every coupled
   bus and forwards each frame through Temporal.post, so it is delivered
   on the destination shard's engine at send time + lookahead, at the
   rendezvous closing the sending window.

   On arrival the frame is rebuilt with the source rewritten to the
   destination-side proxy: real_b sees requests "from Q" and replies to Q,
   which routes straight back across the same link. Links are
   point-to-point: every frame reaching proxy P is attributed to the link
   peer (including bus-originated error bounces, src = -1), matching how a
   cabled interconnect port behaves — whatever leaves through the port
   arrives from the paired port on the far side. *)

module Message = Lastcpu_proto.Message
module Types = Lastcpu_proto.Types
module Iommu = Lastcpu_iommu.Iommu
module Engine = Lastcpu_sim.Engine
module Temporal = Lastcpu_sim.Temporal

type route = {
  r_dst_shard : int;
  r_real : Types.device_id;  (* destination device on the remote bus *)
  r_rewrite_src : Types.device_id;  (* remote-side proxy: rewritten src *)
}

type t = {
  temporal : Temporal.t;
  buses : Sysbus.t array;  (* indexed by shard id *)
  (* (src_shard, proxy id on that shard's bus) -> where the frame goes.
     Populated during [link] setup, read-only while shards run — safe to
     share across lanes without locking. *)
  routes : (int * Types.device_id, route) Hashtbl.t;
}

let forward t ~src_shard (msg : Message.t) =
  let proxy =
    match msg.dst with
    | Types.Device id -> id
    | Types.Bus | Types.Broadcast ->
      invalid_arg "Shardlink: boundary frames must be unicast"
  in
  match Hashtbl.find_opt t.routes (src_shard, proxy) with
  | None ->
    invalid_arg
      (Printf.sprintf
         "Shardlink: no route for proxy dev%d on shard %d (attach ?shard \
          without a matching link?)"
         proxy src_shard)
  | Some r ->
    let msg' =
      Message.make ?deadline_ns:msg.deadline_ns ~src:r.r_rewrite_src
        ~dst:(Types.Device r.r_real) ~corr:msg.corr msg.payload
    in
    let dst_bus = t.buses.(r.r_dst_shard) in
    Temporal.post
      ~label:(fun () -> "xshard:" ^ Sysbus.frame_desc msg')
      t.temporal ~src:src_shard ~dst:r.r_dst_shard
      (fun () -> Sysbus.send dst_bus msg')

let create temporal buses =
  if Array.length buses <> Temporal.shard_count temporal then
    invalid_arg "Shardlink.create: one bus per shard required";
  Array.iteri
    (fun i bus ->
      if Sysbus.home_shard bus <> i then
        invalid_arg
          (Printf.sprintf
             "Shardlink.create: bus at index %d has home shard %d" i
             (Sysbus.home_shard bus));
      if not (Sysbus.engine bus == Temporal.engine temporal i) then
        invalid_arg
          (Printf.sprintf
             "Shardlink.create: bus at index %d not on shard %d's engine" i i))
    buses;
  let t = { temporal; buses; routes = Hashtbl.create 16 } in
  Array.iteri
    (fun i bus ->
      Sysbus.set_boundary bus (fun ~dst_shard:_ msg ->
          forward t ~src_shard:i msg))
    buses;
  t

(* A proxy slot is inert locally: its handler must never run (frames to it
   divert at the boundary check), and it owns no translations. *)
let attach_proxy bus ~shard ~name =
  Sysbus.attach ~shard bus ~name
    ~iommu:(Iommu.create ~no_tlb:true ())
    ~handler:(fun _ ->
      failwith ("Shardlink: proxy handler invoked for " ^ name))

let link t ~a:(shard_a, dev_a) ~b:(shard_b, dev_b) =
  if shard_a = shard_b then
    invalid_arg "Shardlink.link: endpoints must be on different shards";
  let bus_a = t.buses.(shard_a) and bus_b = t.buses.(shard_b) in
  let name_a = Sysbus.device_name bus_a dev_a
  and name_b = Sysbus.device_name bus_b dev_b in
  let proxy_on_a =
    attach_proxy bus_a ~shard:shard_b
      ~name:(Printf.sprintf "link:%s@%d" name_b shard_b)
  in
  let proxy_on_b =
    attach_proxy bus_b ~shard:shard_a
      ~name:(Printf.sprintf "link:%s@%d" name_a shard_a)
  in
  Hashtbl.replace t.routes (shard_a, proxy_on_a)
    { r_dst_shard = shard_b; r_real = dev_b; r_rewrite_src = proxy_on_b };
  Hashtbl.replace t.routes (shard_b, proxy_on_b)
    { r_dst_shard = shard_a; r_real = dev_a; r_rewrite_src = proxy_on_a };
  (proxy_on_a, proxy_on_b)
