(** Cross-shard links: proxy pairs over the {!Lastcpu_sim.Temporal}
    boundary.

    A link couples one device on shard A with one on shard B through a
    pair of boundary-proxy bus slots. Frames addressed to a proxy leave
    the local bus via its boundary mailbox, cross through
    {!Lastcpu_sim.Temporal.post} (arriving at send time + lookahead, at
    the rendezvous closing the sending window), and are re-sent on the
    destination bus with the source rewritten to the far-side proxy — so
    replies route back over the same link with no special casing.

    Links are point-to-point, like a cabled interconnect port: every frame
    reaching a proxy is attributed to the link peer on the far side,
    including bus-originated error bounces. *)

module Types = Lastcpu_proto.Types

type t

val create : Lastcpu_sim.Temporal.t -> Sysbus.t array -> t
(** [create temporal buses] takes ownership of every bus's boundary
    mailbox ({!Sysbus.set_boundary}). [buses] is indexed by shard id and
    must match the coordinator: one bus per shard, each created with
    [~shard:i] on shard [i]'s engine.
    @raise Invalid_argument on a mismatched array, or if some bus's
    boundary was already wired. *)

val link :
  t ->
  a:int * Types.device_id ->
  b:int * Types.device_id ->
  Types.device_id * Types.device_id
(** [link t ~a:(shard_a, dev_a) ~b:(shard_b, dev_b)] couples the two
    devices and returns [(proxy_on_a, proxy_on_b)]: shard [a] code sends
    to [proxy_on_a] to reach [dev_b], and vice versa. The proxies are live
    immediately (no [Device_alive] handshake crosses the boundary).
    @raise Invalid_argument if both endpoints are on the same shard. *)
