module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Codec = Lastcpu_proto.Codec
module Wire = Lastcpu_proto.Wire
module Iommu = Lastcpu_iommu.Iommu
module Engine = Lastcpu_sim.Engine
module Station = Lastcpu_sim.Station
module Costs = Lastcpu_sim.Costs
module Metrics = Lastcpu_sim.Metrics
module Faults = Lastcpu_sim.Faults
module Sanitizer = Lastcpu_sim.Sanitizer
module Snapshot = Lastcpu_sim.Snapshot
module Ownership = Lastcpu_sim.Ownership

(* Misbehavior scoring weights and thresholds for the quarantine machine.
   Each class of evidence adds its weight to a per-device score; crossing
   [suspect_score] demotes Trusted -> Suspect (observability only), crossing
   [quarantine_score] fences the device. Legitimate retry storms reuse a
   correlation id, so same-corr privileged repeats only score past
   [replay_allowance]. *)
type quarantine_config = {
  suspect_score : int;
  quarantine_score : int;
  bad_token_weight : int;
  malformed_weight : int;
  dma_fault_weight : int;
  replay_weight : int;
  spoof_weight : int;
  replay_allowance : int;
}

let default_quarantine =
  {
    suspect_score = 4;
    quarantine_score = 10;
    bad_token_weight = 3;
    malformed_weight = 2;
    dma_fault_weight = 2;
    replay_weight = 1;
    spoof_weight = 4;
    replay_allowance = 8;
  }

type config = {
  enable_tokens : bool;
  heartbeat_timeout_ns : int64;
  lanes : int;
  lane_capacity : int option;
  device_queue_capacity : int option;
  quarantine : quarantine_config option;
}

let default_config =
  {
    enable_tokens = true;
    heartbeat_timeout_ns = 0L (* sweeping off *);
    lanes = 1;
    lane_capacity = None (* unbounded *);
    device_queue_capacity = None (* unbounded *);
    quarantine = None (* scoring off: bit-identical to pre-containment *);
  }

type trust = Trusted | Suspect | Quarantined

type device_slot = {
  name : string;
  iommu : Iommu.t;
  handler : Message.t -> unit;
  shard : int;  (* affinity; <> home shard makes this a boundary proxy *)
  mutable live : bool;
  mutable connected : bool;  (* false after fail_device *)
  mutable services : Message.service_desc list;
  mutable last_heartbeat : int64;
  (* Containment bookkeeping. Scored only when [config.quarantine] is set;
     a bus without the policy never touches these. *)
  mutable trust : trust;
  mutable misbehavior : int;
  mutable malformed_frames : int;
  mutable last_priv_corr : int;  (* replay detection: last privileged corr *)
  mutable last_priv_corr_count : int;
}

type counters = {
  routed : int;
  broadcasts : int;
  maps_programmed : int;
  unmaps : int;
  token_failures : int;
  undeliverable : int;
  control_bytes : int;
  doorbells_dropped : int;
}

type t = {
  engine : Engine.t;
  config : config;
  home_shard : int;
  (* Cross-shard mailbox, wired by Shardlink.  Every frame addressed to a
     slot whose shard affinity differs from [home_shard] is handed here —
     never to a local station — so the decoupling invariant (no direct
     mutation of another shard's state) holds by construction. *)
  mutable boundary : (dst_shard:int -> Message.t -> unit) option;
  lanes : Station.t array;
  mutable devices : device_slot array;
  controller_keys : (Types.device_id * string, Token.key) Hashtbl.t;
  (* Capability epochs, one per device (keyed by the token subject). Absent
     means epoch 0. Revocation bumps the entry; every token minted under an
     older epoch then fails verification without being touched. *)
  epochs : (Types.device_id, int) Hashtbl.t;
  mutable revoke_hooks : (device:Types.device_id -> unit) list;
  actor : string;
  (* Ownership tag for the dynamic shard sanitizer: every ingress entry
     point (send / send_raw / notify) is a guarded access, so a closure
     running on another shard's lane that pokes this bus directly —
     bypassing the boundary mailbox — trips at the call site. *)
  owner_cell : Ownership.tracker;
  (* Instrument handles into the engine's registry; [counters] rebuilds the
     legacy record from these, so existing call sites read unchanged. *)
  m_routed : Metrics.counter;
  m_broadcasts : Metrics.counter;
  m_maps : Metrics.counter;
  m_unmaps : Metrics.counter;
  m_token_failures : Metrics.counter;
  m_undeliverable : Metrics.counter;
  m_control_bytes : Metrics.counter;
  m_doorbells_dropped : Metrics.counter;
  (* Registered lazily, on the first shed message: a run that never sheds
     keeps its telemetry snapshot identical to pre-overload builds. *)
  mutable m_expired : Metrics.counter option;
  (* Same lazy policy: single-shard runs never cross a boundary, and their
     telemetry snapshot must stay identical to pre-shard builds. *)
  mutable m_boundary_out : Metrics.counter option;
  (* Containment telemetry, all lazy for the same reason: a run with no
     misbehaving device keeps a pre-containment telemetry snapshot. *)
  mutable m_stale_tokens : Metrics.counter option;
  mutable m_malformed : Metrics.counter option;
  mutable m_misbehavior : Metrics.counter option;
  mutable m_fenced : Metrics.counter option;
  mutable m_quarantines : Metrics.counter option;
  mutable m_revocations : Metrics.counter option;
  (* Sanitizer probe: commutative (order-insensitive) digest of every frame
     committed to the wire. Hashes route and payload kind only — corr ids,
     nonces and addresses inside payloads legally permute when same-tick
     events reorder, and hashing them would report benign swaps as races. *)
  mutable frame_digest : int64;
  (* Heartbeat-sweep bookkeeping for checkpoint/restore: [next_sweep] is
     the absolute time of the armed sweep event; bumping [sweep_gen]
     cancels it (the event cannot be unscheduled, but the stale closure
     sees an old generation and does nothing). *)
  mutable next_sweep : int64;
  mutable sweep_gen : int;
}

let bus_src = -1 (* messages originated by the bus itself *)

let trace t kind detail = Engine.trace_event t.engine ~actor:"bus" ~kind detail

(* All containment counters follow the lazy-registration policy: first
   increment creates the instrument, so a clean run's telemetry snapshot is
   byte-identical to a build without the containment layer. *)
let lazy_bump t get set name =
  let c =
    match get t with
    | Some c -> c
    | None ->
      let c = Metrics.counter (Engine.metrics t.engine) ~actor:t.actor ~name in
      set t (Some c);
      c
  in
  Metrics.incr c

let bump_stale t =
  lazy_bump t
    (fun t -> t.m_stale_tokens)
    (fun t v -> t.m_stale_tokens <- v)
    "stale_tokens"

let bump_malformed t =
  lazy_bump t
    (fun t -> t.m_malformed)
    (fun t v -> t.m_malformed <- v)
    "malformed_frames"

let bump_misbehavior t =
  lazy_bump t
    (fun t -> t.m_misbehavior)
    (fun t v -> t.m_misbehavior <- v)
    "misbehavior_reports"

let bump_fenced t =
  lazy_bump t
    (fun t -> t.m_fenced)
    (fun t v -> t.m_fenced <- v)
    "messages_fenced"

let bump_quarantines t =
  lazy_bump t
    (fun t -> t.m_quarantines)
    (fun t v -> t.m_quarantines <- v)
    "quarantines"

let bump_revocations t =
  lazy_bump t
    (fun t -> t.m_revocations)
    (fun t v -> t.m_revocations <- v)
    "revocations"

(* One stable identity per frame: route + payload kind. Triple duty — the
   sanitizer event label, the fault-injection content key, and the frame
   digest contribution. Never includes corr ids or payload bytes (see
   [frame_digest]).

   [frame_desc] renders it as a string; the hot path never calls it.
   Instead [fnv_frame] folds the exact same bytes through the streaming
   FNV, so the digest and fault key keep their historical values with zero
   formatting or allocation per message. The correspondence
   [hash over fnv_frame = hash_string over frame_desc] is pinned by a unit
   test. *)
let frame_desc (msg : Message.t) =
  Printf.sprintf "bus:%d>%s:%s" msg.src
    (Types.dest_to_string msg.dst)
    (Message.payload_tag msg.payload)

let fnv_frame h (msg : Message.t) =
  let h = Sanitizer.fnv_string h "bus:" in
  let h = Sanitizer.fnv_int h msg.src in
  let h = Sanitizer.fnv_char h '>' in
  let h =
    match msg.dst with
    | Types.Device d -> Sanitizer.fnv_int (Sanitizer.fnv_string h "dev") d
    | Types.Bus -> Sanitizer.fnv_string h "bus"
    | Types.Broadcast -> Sanitizer.fnv_string h "broadcast"
  in
  let h = Sanitizer.fnv_char h ':' in
  Sanitizer.fnv_string h (Message.payload_tag msg.payload)

let frame_digest_seed = 0x6672616d65L (* "frame" *)

let frame_hash msg =
  Sanitizer.fnv_finish (fnv_frame (Sanitizer.fnv_init frame_digest_seed) msg)

(* Equals [Faults.key_of_string (frame_desc msg)]. *)
let frame_key msg = Sanitizer.fnv_finish (fnv_frame Faults.key_init msg)

(* Frame commit: digest contribution + delivery event. Only a sanitizing
   engine consumes the label or the digest, so the common path schedules
   the bare closure — no description string, no label thunk. *)
let schedule_frame t msg ~delay fn =
  if Engine.sanitizing t.engine then begin
    t.frame_digest <- Int64.add t.frame_digest (frame_hash msg);
    Engine.schedule ~label:(fun () -> frame_desc msg) t.engine ~delay fn
  end
  else Engine.schedule t.engine ~delay fn

let broadcast_from_bus t payload =
  let costs = Engine.costs t.engine in
  Array.iteri
    (fun id slot ->
      (* Boundary proxies are another shard's devices: the remote bus owns
         their management traffic, so local broadcasts skip them. *)
      if slot.live && slot.shard = t.home_shard then begin
        let msg = Message.make ~src:bus_src ~dst:(Types.Device id) ~corr:0 payload in
        Metrics.incr t.m_broadcasts;
        schedule_frame t msg ~delay:costs.Costs.bus_hop_ns
          (fun () -> if slot.live then slot.handler msg)
      end)
    t.devices

(* [disconnect:false] is the heartbeat sweep's variant: the device is
   declared dead (and consumers told), but the slot stays connected so an
   explicit re-announce — [Device_alive], the same handshake used at boot —
   can re-admit it. A bare [Heartbeat] never can: liveness refresh requires
   [live], and nothing below sets [live] except the announce path. Explicit
   [fail_device]/quarantine keep [disconnect:true]: those need the reset
   line first. *)
let mark_failed ?(disconnect = true) t id =
  let slot = t.devices.(id) in
  if slot.live || slot.connected then begin
    slot.live <- false;
    if disconnect then slot.connected <- false;
    (* Broadcast the failure so consumers can recover (§4). *)
    broadcast_from_bus t (Message.Device_failed { device = id })
  end

(* The heartbeat sweep re-arms itself one period ahead. Static (it exists
   whether or not any workload is pending), so it must not keep
   [Engine.run_until_quiescent] spinning — hence [schedule_static_at]. *)
let rec arm_sweep t ~time =
  t.next_sweep <- time;
  let gen = t.sweep_gen in
  Engine.schedule_static_at t.engine ~time (fun () ->
      if gen = t.sweep_gen then begin
        let now = Engine.now t.engine in
        Array.iteri
          (fun id slot ->
            (* Boundary proxies never heartbeat locally — liveness of the
               real device is the remote bus's job. *)
            if
              slot.live
              && slot.shard = t.home_shard
              && Int64.sub now slot.last_heartbeat
                 > t.config.heartbeat_timeout_ns
            then begin
              Engine.trace_event t.engine ~actor:"bus" ~kind:"bus.liveness"
                (Printf.sprintf "%s (dev%d) timed out" slot.name id);
              mark_failed ~disconnect:false t id
            end)
          t.devices;
        arm_sweep t ~time:(Int64.add now t.config.heartbeat_timeout_ns)
      end)

(* --- containment: epochs, revocation, quarantine ------------------------ *)

let current_epoch t id =
  match Hashtbl.find_opt t.epochs id with Some e -> e | None -> 0

let on_revoke t f = t.revoke_hooks <- t.revoke_hooks @ [ f ]

(* Revoke every capability a device wields: one epoch bump, then the
   cascade. Order matters — the bump comes first so controller teardown
   (the hooks, e.g. memctl unmapping its grants) mints its own directives
   under the *new* epoch and they still verify. The device's IOMMU is then
   cleared per PASID, which shoots down the TLB as a side effect. Stale
   tokens are not chased: they die passively at the next [verify_token]. *)
let revoke t id =
  Hashtbl.replace t.epochs id (current_epoch t id + 1);
  bump_revocations t;
  trace t "bus.revoke"
    (Printf.sprintf "dev%d (%s) capabilities revoked, epoch now %d" id
       t.devices.(id).name (current_epoch t id));
  List.iter (fun f -> f ~device:id) t.revoke_hooks;
  let s = t.devices.(id) in
  List.iter (fun pasid -> Iommu.clear_pasid s.iommu ~pasid) (Iommu.pasids s.iommu)

let quarantine_device t id =
  let s = t.devices.(id) in
  if s.trust <> Quarantined then begin
    s.trust <- Quarantined;
    bump_quarantines t;
    trace t "bus.quarantine"
      (Printf.sprintf "dev%d (%s) quarantined, score=%d" id s.name
         s.misbehavior);
    revoke t id;
    (* Fence + tell consumers, exactly like a crash: the failure broadcast
       is the recovery signal the PR-2 failover path already understands. *)
    mark_failed t id
  end

(* Operator re-admission: the reset-line -> re-announce handshake, same as
   a fault-plan revive. The slot comes back connected-but-not-live and on
   parole (Suspect, score cleared): only the device's own [Device_alive]
   makes it live again. *)
let release_quarantine t id =
  let s = t.devices.(id) in
  if s.trust = Quarantined then begin
    s.trust <- Suspect;
    s.misbehavior <- 0;
    s.last_priv_corr <- -1;
    s.last_priv_corr_count <- 0;
    s.connected <- true;
    trace t "bus.release-quarantine"
      (Printf.sprintf "dev%d (%s) released on parole" id s.name);
    s.handler
      (Message.make ~src:bus_src ~dst:(Types.Device id) ~corr:0
         Message.Reset_device)
  end

(* Score one piece of evidence against [src]. No-op unless the bus was
   configured with a quarantine policy, so default-config runs never take
   this path at all. *)
let report_misbehavior t ~src ~weight ~what =
  match t.config.quarantine with
  | None -> ()
  | Some qc ->
    if src >= 0 && src < Array.length t.devices then begin
      let s = t.devices.(src) in
      if s.shard = t.home_shard && s.trust <> Quarantined then begin
        s.misbehavior <- s.misbehavior + weight;
        bump_misbehavior t;
        trace t "bus.misbehavior"
          (Printf.sprintf "dev%d (%s): %s, score %d" src s.name what
             s.misbehavior);
        if s.misbehavior >= qc.quarantine_score then quarantine_device t src
        else if s.misbehavior >= qc.suspect_score && s.trust = Trusted then begin
          s.trust <- Suspect;
          trace t "bus.suspect"
            (Printf.sprintf "dev%d (%s) now suspect, score %d" src s.name
               s.misbehavior)
        end
      end
    end

let score_bad_token t ~src ~what =
  match t.config.quarantine with
  | None -> ()
  | Some qc -> report_misbehavior t ~src ~weight:qc.bad_token_weight ~what

let score_malformed t ~src ~what =
  match t.config.quarantine with
  | None -> ()
  | Some qc -> report_misbehavior t ~src ~weight:qc.malformed_weight ~what

(* Replay evidence: privileged operations arriving again and again under
   one correlation id. Legitimate [Device.request] retransmits reuse their
   corr (that is how receiver-side dedup works), so the first
   [replay_allowance] repeats are free; past that each repeat scores. *)
let note_privileged_corr t ~src ~corr =
  match t.config.quarantine with
  | None -> ()
  | Some qc ->
    if src >= 0 && src < Array.length t.devices then begin
      let s = t.devices.(src) in
      if corr = s.last_priv_corr then begin
        s.last_priv_corr_count <- s.last_priv_corr_count + 1;
        if s.last_priv_corr_count > qc.replay_allowance then
          report_misbehavior t ~src ~weight:qc.replay_weight
            ~what:(Printf.sprintf "replayed corr %d (x%d)" corr
                     s.last_priv_corr_count)
      end
      else begin
        s.last_priv_corr <- corr;
        s.last_priv_corr_count <- 1
      end
    end

(* Checkpointing. Saved per slot: liveness, service registry and IOMMU
   contents — everything [Device_alive]/crash handling mutates after
   attach. Controller keys are deliberately excluded: boot re-registers
   them deterministically before any checkpoint can be taken. *)
let save_state t =
  let w = Snapshot.W.create () in
  Snapshot.W.array w
    (fun w (s : device_slot) ->
      Snapshot.W.string w s.name;
      Snapshot.W.bool w s.live;
      Snapshot.W.bool w s.connected;
      Snapshot.W.i64 w s.last_heartbeat;
      Snapshot.W.list w
        (fun w (d : Message.service_desc) ->
          Snapshot.W.string w (Types.service_kind_to_string d.Message.kind);
          Snapshot.W.string w d.Message.name;
          Snapshot.W.varint w d.Message.version)
        s.services;
      Iommu.save w s.iommu)
    t.devices;
  Array.iter (fun lane -> Station.save w lane) t.lanes;
  Snapshot.W.i64 w t.frame_digest;
  Snapshot.W.i64 w t.next_sweep;
  (* Containment state, appended so the layout above keeps its shape. *)
  Snapshot.W.array w
    (fun w (s : device_slot) ->
      Snapshot.W.vint w
        (match s.trust with Trusted -> 0 | Suspect -> 1 | Quarantined -> 2);
      Snapshot.W.vint w s.misbehavior;
      Snapshot.W.vint w s.malformed_frames;
      Snapshot.W.vint w s.last_priv_corr;
      Snapshot.W.vint w s.last_priv_corr_count)
    t.devices;
  Snapshot.W.list w
    (fun w (id, e) ->
      Snapshot.W.vint w id;
      Snapshot.W.vint w e)
    (Lastcpu_sim.Detmap.bindings t.epochs);
  Snapshot.W.contents w

let restore_state t body =
  let r = Snapshot.R.of_string body in
  let n = Snapshot.R.varint r in
  if n <> Array.length t.devices then
    invalid_arg
      (Printf.sprintf
         "Sysbus.restore: checkpoint has %d devices, rebuilt bus has %d \
          (mid-run attach is not checkpointable)"
         n
         (Array.length t.devices));
  for id = 0 to n - 1 do
    let slot = t.devices.(id) in
    let name = Snapshot.R.string r in
    if not (String.equal name slot.name) then
      invalid_arg
        (Printf.sprintf "Sysbus.restore: device %d is %s, checkpoint has %s"
           id slot.name name);
    slot.live <- Snapshot.R.bool r;
    slot.connected <- Snapshot.R.bool r;
    slot.last_heartbeat <- Snapshot.R.i64 r;
    slot.services <-
      Snapshot.R.list r (fun r ->
          let kind_s = Snapshot.R.string r in
          let kind =
            match Types.service_kind_of_string kind_s with
            | Some k -> k
            | None ->
              raise (Snapshot.R.Corrupt ("unknown service kind " ^ kind_s))
          in
          let name = Snapshot.R.string r in
          let version = Snapshot.R.varint r in
          { Message.kind; name; version });
    Iommu.restore r slot.iommu
  done;
  Array.iter (fun lane -> Station.restore r lane) t.lanes;
  t.frame_digest <- Snapshot.R.i64 r;
  let next_sweep = Snapshot.R.i64 r in
  let nc = Snapshot.R.varint r in
  if nc <> Array.length t.devices then
    raise (Snapshot.R.Corrupt "containment state device count mismatch");
  for id = 0 to nc - 1 do
    let s = t.devices.(id) in
    (s.trust <-
       (match Snapshot.R.vint r with
       | 0 -> Trusted
       | 1 -> Suspect
       | 2 -> Quarantined
       | n -> raise (Snapshot.R.Corrupt (Printf.sprintf "bad trust tag %d" n))));
    s.misbehavior <- Snapshot.R.vint r;
    s.malformed_frames <- Snapshot.R.vint r;
    s.last_priv_corr <- Snapshot.R.vint r;
    s.last_priv_corr_count <- Snapshot.R.vint r
  done;
  Hashtbl.reset t.epochs;
  List.iter
    (fun (id, e) -> Hashtbl.replace t.epochs id e)
    (Snapshot.R.list r (fun r ->
         let id = Snapshot.R.vint r in
         let e = Snapshot.R.vint r in
         (id, e)));
  (* Re-point the sweep at the interrupted run's schedule. When the saved
     and rebuilt times already agree, the rebuilt sweep event (kept by the
     engine's queue filter) stays armed under the current generation. Runs
     after Engine.restore_state, so the event it schedules is not subject
     to the pending-event filter. *)
  if t.config.heartbeat_timeout_ns > 0L && next_sweep <> t.next_sweep then begin
    t.sweep_gen <- t.sweep_gen + 1;
    arm_sweep t ~time:next_sweep
  end
  else t.next_sweep <- next_sweep

let create ?(config = default_config) ?(shard = 0) engine =
  let m = Engine.metrics engine in
  let actor = Metrics.claim_actor m "bus" in
  let counter name = Metrics.counter m ~actor ~name in
  let lane_telemetry =
    match config.lane_capacity with None -> None | Some _ -> Some (m, actor)
  in
  let t =
    {
      engine;
      config;
      home_shard = shard;
      boundary = None;
      lanes =
        Array.init (max 1 config.lanes) (fun _ ->
            Station.create ?capacity:config.lane_capacity
              ?telemetry:lane_telemetry engine);
      devices = [||];
      controller_keys = Hashtbl.create 8;
      epochs = Hashtbl.create 8;
      revoke_hooks = [];
      actor;
      owner_cell = Ownership.tracker ~name:("bus:" ^ actor) ~owner:shard;
      m_routed = counter "routed";
      m_broadcasts = counter "broadcasts";
      m_maps = counter "maps_programmed";
      m_unmaps = counter "unmaps";
      m_token_failures = counter "token_failures";
      m_undeliverable = counter "undeliverable";
      m_control_bytes = counter "control_bytes";
      m_doorbells_dropped = counter "doorbells_dropped";
      m_expired = None;
      m_boundary_out = None;
      m_stale_tokens = None;
      m_malformed = None;
      m_misbehavior = None;
      m_fenced = None;
      m_quarantines = None;
      m_revocations = None;
      frame_digest = 0L;
      next_sweep = 0L;
      sweep_gen = 0;
    }
  in
  if Engine.sanitizing engine then
    Engine.register_probe engine (fun () -> t.frame_digest);
  Engine.register_snapshot engine ~name:actor
    ~save:(fun () -> save_state t)
    ~restore:(restore_state t);
  (* Scheduled crash→revive windows from the engine's fault plan. Devices
     attach after [create], so resolve names at fire time, not here. *)
  let faults = Engine.faults engine in
  List.iter
    (fun { Faults.device; at_ns; down_ns } ->
      let find_by_name () =
        let found = ref None in
        Array.iteri
          (fun id s -> if s.name = device && !found = None then found := Some id)
          t.devices;
        !found
      in
      Engine.schedule_static_at engine ~time:at_ns (fun () ->
          match find_by_name () with
          | None -> ()
          | Some id ->
            Faults.note_crash faults;
            Engine.trace_event engine ~actor:"bus" ~kind:"fault.crash"
              (Printf.sprintf "%s (dev%d) crashed by fault plan" device id);
            mark_failed t id);
      Engine.schedule_static_at engine ~time:(Int64.add at_ns down_ns)
        (fun () ->
          match find_by_name () with
          | None -> ()
          | Some id when t.devices.(id).trust = Quarantined ->
            (* A fault-plan revive is a power cycle, not a pardon: the
               quarantine holds until an operator releases it. *)
            trace t "fault.revive"
              (Printf.sprintf "%s (dev%d) still quarantined, revive ignored"
                 device id)
          | Some id ->
            let s = t.devices.(id) in
            Faults.note_revive faults;
            Engine.trace_event engine ~actor:"bus" ~kind:"fault.revive"
              (Printf.sprintf "%s (dev%d) revived by fault plan" device id);
            s.connected <- true;
            (* Out-of-band reset line: poke the handler directly (the slot
               is not yet live, so a bus message could not reach it) so the
               device reinitialises and reannounces itself. *)
            s.handler
              (Message.make ~src:bus_src ~dst:(Types.Device id) ~corr:0
                 Message.Reset_device)))
    (Faults.crashes faults);
  if config.heartbeat_timeout_ns > 0L then
    arm_sweep t
      ~time:(Int64.add (Engine.now engine) config.heartbeat_timeout_ns);
  t

let engine t = t.engine
let home_shard t = t.home_shard

let set_boundary t mailbox =
  if t.boundary <> None then
    invalid_arg "Sysbus.set_boundary: boundary mailbox already wired";
  t.boundary <- Some mailbox

let boundary_out t =
  match t.m_boundary_out with None -> 0 | Some c -> Metrics.counter_value c

let bump_boundary_out t =
  let c =
    match t.m_boundary_out with
    | Some c -> c
    | None ->
      let c =
        Metrics.counter (Engine.metrics t.engine) ~actor:t.actor
          ~name:"boundary_out"
      in
      t.m_boundary_out <- Some c;
      c
  in
  Metrics.incr c

(* Hand a frame to the cross-shard mailbox. Callers account the frame's
   wire size against this bus segment (it does travel up to the border);
   routing, liveness and faults past it are the remote bus's business. *)
let boundary_post t ~dst_shard (msg : Message.t) =
  match t.boundary with
  | None ->
    invalid_arg
      (Printf.sprintf
         "Sysbus: frame for shard %d but no boundary mailbox wired \
          (Shardlink.create missing?)"
         dst_shard)
  | Some mailbox ->
    bump_boundary_out t;
    mailbox ~dst_shard msg

let attach ?shard t ~name ~iommu ~handler =
  let id = Array.length t.devices in
  let shard = match shard with None -> t.home_shard | Some s -> s in
  let slot =
    {
      name;
      iommu;
      handler;
      shard;
      (* A boundary proxy is born live: the real device announces itself on
         its own bus, and those management frames never cross shards.
         Local liveness checks must not eat frames bound for the border. *)
      live = shard <> t.home_shard;
      connected = true;
      services = [];
      last_heartbeat = 0L;
      trust = Trusted;
      misbehavior = 0;
      malformed_frames = 0;
      last_priv_corr = -1;
      last_priv_corr_count = 0;
    }
  in
  t.devices <- Array.append t.devices [| slot |];
  (* With a quarantine policy in force, tap the device's IOMMU fault stream:
     an out-of-grant DMA is containment evidence. The device's own fault
     handler (its fault queue) is untouched — this is a read-only observer. *)
  (match t.config.quarantine with
  | None -> ()
  | Some qc ->
    if shard = t.home_shard then
      Iommu.add_fault_observer iommu (fun (f : Iommu.fault) ->
          report_misbehavior t ~src:id ~weight:qc.dma_fault_weight
            ~what:
              (Printf.sprintf "DMA fault pasid=%d va=0x%Lx" f.Iommu.pasid
                 f.Iommu.va)));
  id

let slot t id =
  if id < 0 || id >= Array.length t.devices then
    invalid_arg (Printf.sprintf "Sysbus: unknown device %d" id)
  else t.devices.(id)

(* Hostile frames can name any device id. Every path that dereferences an
   id taken from a decoded frame must check it here first: an unknown id
   is a protocol error to NACK and count, never an [Invalid_argument]
   unwinding the event loop. *)
let known_device t id = id >= 0 && id < Array.length t.devices

let device_name t id = (slot t id).name
let device_shard t id = (slot t id).shard
let iommu_of t id = (slot t id).iommu
let is_remote t id = (slot t id).shard <> t.home_shard
let is_live t id = (slot t id).live

let live_devices t =
  let acc = ref [] in
  Array.iteri (fun id s -> if s.live then acc := id :: !acc) t.devices;
  List.rev !acc

let register_controller t id ~resource ~key =
  Hashtbl.replace t.controller_keys (id, resource) key

let services_of t id = (slot t id).services

let counters t =
  {
    routed = Metrics.counter_value t.m_routed;
    broadcasts = Metrics.counter_value t.m_broadcasts;
    maps_programmed = Metrics.counter_value t.m_maps;
    unmaps = Metrics.counter_value t.m_unmaps;
    token_failures = Metrics.counter_value t.m_token_failures;
    undeliverable = Metrics.counter_value t.m_undeliverable;
    control_bytes = Metrics.counter_value t.m_control_bytes;
    doorbells_dropped = Metrics.counter_value t.m_doorbells_dropped;
  }

let actor t = t.actor
let station t = t.lanes.(0)
let stations t = Array.to_list t.lanes
let device_queue_capacity t = t.config.device_queue_capacity

let messages_expired t =
  match t.m_expired with None -> 0 | Some c -> Metrics.counter_value c

let messages_rejected t =
  Array.fold_left (fun a s -> a + Station.jobs_rejected s) 0 t.lanes

let bump_expired t =
  let c =
    match t.m_expired with
    | Some c -> c
    | None ->
      let c =
        Metrics.counter (Engine.metrics t.engine) ~actor:t.actor
          ~name:"expired_dropped"
      in
      t.m_expired <- Some c;
      c
  in
  Metrics.incr c

let lane_for t src =
  (* Hash by source so each device's messages stay ordered. *)
  t.lanes.((max 0 src * 0x9E3779B1) land max_int mod Array.length t.lanes)

(* --- privileged operations ---------------------------------------------- *)

let reply t ~to_ ~corr payload =
  (* Bus-originated response: one hop back to the device. *)
  let costs = Engine.costs t.engine in
  let s = slot t to_ in
  if s.shard <> t.home_shard then begin
    (* The addressee lives on another shard: defer to the boundary instead
       of invoking a proxy handler that has no device behind it. *)
    let msg = Message.make ~src:bus_src ~dst:(Types.Device to_) ~corr payload in
    Metrics.incr t.m_routed;
    Metrics.incr ~by:(Message.wire_size msg) t.m_control_bytes;
    boundary_post t ~dst_shard:s.shard msg
  end
  else if s.live then begin
    let msg = Message.make ~src:bus_src ~dst:(Types.Device to_) ~corr payload in
    Metrics.incr t.m_routed;
    Metrics.incr ~by:(Message.wire_size msg) t.m_control_bytes;
    schedule_frame t msg ~delay:costs.Costs.bus_hop_ns
      (fun () -> if s.live then s.handler msg)
  end

let verify_token t ~src ~expect_wielder (token : Token.t) =
  if not t.config.enable_tokens then Ok ()
  else begin
    match Hashtbl.find_opt t.controller_keys (token.issuer, token.resource) with
    | None -> Error "issuer is not a registered controller for this resource"
    | Some key ->
      if not (Token.verify ~key token) then Error "bad MAC"
      else if token.epoch <> current_epoch t token.subject then begin
        (* MAC is genuine but the capability generation is over: the subject
           was revoked since mint. Counted apart from forgeries — a burst of
           stale uses is the expected echo of a revocation, not an attack on
           the MAC. *)
        bump_stale t;
        Error "stale capability epoch"
      end
      else begin
        match expect_wielder with
        | `Issuer when src <> token.issuer -> Error "sender is not the issuer"
        | `Subject when src <> token.subject -> Error "sender is not the subject"
        | `Issuer | `Subject -> Ok ()
      end
  end

let token_cost t =
  if t.config.enable_tokens then (Engine.costs t.engine).Costs.token_verify_ns
  else 0L

let range_covered ~(token : Token.t) ~base ~bytes =
  base >= token.base && Int64.add base bytes <= Int64.add token.base token.length

let handle_map_directive t ~src ~corr ~device ~pasid ~va ~pa ~bytes ~perm
    ~(auth : Token.t) =
  let fail reason =
    Metrics.incr t.m_token_failures;
    score_bad_token t ~src ~what:("map denied: " ^ reason);
    trace t "bus.map-denied" reason;
    reply t ~to_:src ~corr
      (Message.Error_msg { code = Types.E_bad_token; detail = reason })
  in
  match verify_token t ~src ~expect_wielder:`Issuer auth with
  | Error reason -> fail reason
  | Ok () ->
    if t.config.enable_tokens && auth.subject <> device then
      fail "token subject does not match target device"
    else if t.config.enable_tokens && auth.pasid <> pasid then
      fail "token pasid mismatch"
    else if t.config.enable_tokens && not (range_covered ~token:auth ~base:pa ~bytes)
    then fail "physical range exceeds token grant"
    else if
      t.config.enable_tokens && not (Types.perm_subsumes auth.perm perm)
    then fail "permissions exceed token grant"
    else if not (known_device t device) then begin
      trace t "bus.map-denied" (Printf.sprintf "no such device %d" device);
      reply t ~to_:src ~corr
        (Message.Error_msg
           {
             code = Types.E_bad_address;
             detail = Printf.sprintf "no such device %d" device;
           })
    end
    else begin
      let target = slot t device in
      match Iommu.map target.iommu ~pasid ~va ~pa ~bytes ~perm with
      | Error reason ->
        trace t "bus.map-failed" reason;
        reply t ~to_:src ~corr
          (Message.Error_msg { code = Types.E_bad_address; detail = reason });
        reply t ~to_:device ~corr (Message.Map_complete { pasid; va; ok = false })
      | Ok () ->
        let pages = Lastcpu_mem.Layout.pages_of_bytes bytes in
        Metrics.incr ~by:pages t.m_maps;
        trace t "bus.map"
          (Printf.sprintf "dev%d pasid=%d va=0x%Lx pa=0x%Lx pages=%d" device
             pasid va pa pages);
        reply t ~to_:device ~corr (Message.Map_complete { pasid; va; ok = true });
        if src <> device then
          reply t ~to_:src ~corr (Message.Map_complete { pasid; va; ok = true })
    end

let handle_grant t ~src ~corr ~to_device ~pasid ~va ~bytes ~perm
    ~(auth : Token.t) =
  let fail code reason =
    Metrics.incr t.m_token_failures;
    (if code = Types.E_bad_token then
       score_bad_token t ~src ~what:("grant denied: " ^ reason));
    trace t "bus.grant-denied" reason;
    reply t ~to_:src ~corr (Message.Error_msg { code; detail = reason })
  in
  match verify_token t ~src ~expect_wielder:`Subject auth with
  | Error reason -> fail Types.E_bad_token reason
  | Ok () ->
    if t.config.enable_tokens && auth.pasid <> pasid then
      fail Types.E_bad_token "token pasid mismatch"
    else if t.config.enable_tokens && not (Types.perm_subsumes auth.perm perm)
    then fail Types.E_bad_token "permissions exceed token grant"
    else if not (known_device t to_device) then
      fail Types.E_bad_address (Printf.sprintf "no such grantee %d" to_device)
    else begin
      (* Replicate the owner's current translations for [va, va+bytes) into
         the grantee's IOMMU, page by page, validating each physical page
         against the token's range. *)
      let owner = slot t src in
      let grantee = slot t to_device in
      let page = Lastcpu_mem.Layout.page_size in
      let npages = Lastcpu_mem.Layout.pages_of_bytes bytes in
      let rec go i =
        if i = npages then begin
          Metrics.incr ~by:npages t.m_maps;
          trace t "bus.grant"
            (Printf.sprintf "dev%d -> dev%d pasid=%d va=0x%Lx pages=%d" src
               to_device pasid va npages);
          reply t ~to_:src ~corr (Message.Map_complete { pasid; va; ok = true })
        end
        else begin
          let va_i = Int64.add va (Int64.mul (Int64.of_int i) page) in
          match Iommu.translate owner.iommu ~pasid ~va:va_i ~access:Iommu.Read with
          | Iommu.Fault _ ->
            fail Types.E_bad_address "owner has no mapping for granted range"
          | Iommu.Ok_pa pa ->
            if
              t.config.enable_tokens
              && not (range_covered ~token:auth ~base:pa ~bytes:page)
            then fail Types.E_bad_token "granted page outside token range"
            else begin
              match
                Iommu.map grantee.iommu ~pasid ~va:va_i ~pa ~bytes:page ~perm
              with
              | Error reason -> fail Types.E_bad_address reason
              | Ok () -> go (i + 1)
            end
        end
      in
      go 0
    end

let handle_unmap t ~src ~corr ~device ~pasid ~va ~bytes ~(auth : Token.t) =
  let wielder = if t.config.enable_tokens && src = auth.issuer then `Issuer else `Subject in
  match verify_token t ~src ~expect_wielder:wielder auth with
  | Error reason ->
    Metrics.incr t.m_token_failures;
    score_bad_token t ~src ~what:("unmap denied: " ^ reason);
    reply t ~to_:src ~corr
      (Message.Error_msg { code = Types.E_bad_token; detail = reason })
  | Ok () ->
    (* Revocation must be global: the range may have been granted onward,
       so remove the translation from every attached IOMMU, not just the
       named device. *)
    ignore device;
    let removed = ref 0 in
    Array.iter
      (fun s -> removed := !removed + Iommu.unmap s.iommu ~pasid ~va ~bytes)
      t.devices;
    Metrics.incr ~by:!removed t.m_unmaps;
    trace t "bus.unmap"
      (Printf.sprintf "pasid=%d va=0x%Lx pages=%d (all devices)" pasid va
         !removed);
    reply t ~to_:src ~corr (Message.Map_complete { pasid; va; ok = true })

let handle_bus_message t (msg : Message.t) =
  let src = msg.src in
  match msg.payload with
  | Message.Device_alive { services } ->
    let s = slot t src in
    (* A quarantined slot is also disconnected, but check the trust state
       explicitly: re-admission must go through [release_quarantine]'s
       reset line, never a self-announce. *)
    if s.connected && s.trust <> Quarantined then begin
      s.live <- true;
      s.services <- services;
      s.last_heartbeat <- Engine.now t.engine;
      trace t "bus.alive"
        (Printf.sprintf "%s (dev%d) with %d services" s.name src
           (List.length services))
    end
  | Message.Heartbeat ->
    let s = slot t src in
    if s.live then s.last_heartbeat <- Engine.now t.engine
  | Message.Map_directive { device; pasid; va; pa; bytes; perm; auth } ->
    note_privileged_corr t ~src ~corr:msg.corr;
    handle_map_directive t ~src ~corr:msg.corr ~device ~pasid ~va ~pa ~bytes
      ~perm ~auth
  | Message.Grant_request { to_device; pasid; va; bytes; perm; auth } ->
    note_privileged_corr t ~src ~corr:msg.corr;
    handle_grant t ~src ~corr:msg.corr ~to_device ~pasid ~va ~bytes ~perm ~auth
  | Message.Unmap_directive { device; pasid; va; bytes; auth } ->
    note_privileged_corr t ~src ~corr:msg.corr;
    handle_unmap t ~src ~corr:msg.corr ~device ~pasid ~va ~bytes ~auth
  | Message.Resource_failed { resource } ->
    trace t "bus.resource-failed" resource;
    broadcast_from_bus t (Message.Resource_failed { resource })
  | _ ->
    reply t ~to_:src ~corr:msg.corr
      (Message.Error_msg
         { code = Types.E_invalid; detail = "not a privileged operation" })

(* --- transport ----------------------------------------------------------- *)

(* Fault injection on device-originated deliveries. Bus-originated traffic
   (src < 0: replies, [Device_failed] broadcasts, reset lines) models a
   reliable interrupt-like management channel and is exempt — losing the
   failure notification itself would leave consumers with no recovery
   signal at all. Corruption is physical: flip one seeded bit in the CRC-
   framed encoding; the receiver-side checksum catches it and the frame is
   dropped (and counted) rather than delivered mangled. *)
let schedule_delivery t (msg : Message.t) ~delay deliver =
  let faults = Engine.faults t.engine in
  if msg.src < 0 || not (Faults.active faults) then
    schedule_frame t msg ~delay deliver
  else begin
    (* Fault content key: route + payload kind. Deliberately excludes
       [corr] — correlation ids are assigned in issue order, which the
       sanitizer's perturbed replays may legally permute within a tick;
       keying on them would shift fault outcomes and report phantom races.
       Identical same-route messages are distinguished by the occurrence
       counter inside Faults instead. *)
    let key = frame_key msg in
    let corrupted_and_caught =
      Faults.corrupt_message faults ~key
      &&
      let framed = Codec.encode_framed msg in
      let bit = Faults.corrupt_bit faults ~key ~len:(String.length framed) in
      let b = Bytes.of_string framed in
      let i = bit / 8 in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
      match Codec.decode_framed_result (Bytes.to_string b) with
      | Ok _ -> false
      | Error _ -> true
    in
    if corrupted_and_caught then
      trace t "fault.corrupt"
        (Printf.sprintf "frame to %s corrupted, CRC mismatch, dropped"
           (Types.dest_to_string msg.dst))
    else if Faults.drop_message faults ~key then
      trace t "fault.msg-loss"
        (Printf.sprintf "frame to %s lost"
           (Types.dest_to_string msg.dst))
    else begin
      let delay = Int64.add delay (Faults.message_jitter faults ~key) in
      schedule_frame t msg ~delay deliver;
      if Faults.duplicate_message faults ~key then
        schedule_frame t msg ~delay:(Int64.add delay 1L) deliver
    end
  end

let deliver_unicast t (msg : Message.t) dst =
  let costs = Engine.costs t.engine in
  let s = slot t dst in
  if s.shard <> t.home_shard then
    (* Defensive: [send] diverts remote-addressed frames before they reach
       a lane, but bus-internal paths could still route here. *)
    boundary_post t ~dst_shard:s.shard msg
  else if Message.expired msg ~now:(Engine.now t.engine) then begin
    (* The deadline passed while the message sat in the lane queue:
       delivering it now cannot help the requester, so shed it here
       rather than spend the target's cycles on it. *)
    bump_expired t;
    trace t "bus.expired"
      (Printf.sprintf "%s to dev%d past deadline, shed"
         (Message.payload_tag msg.payload) dst)
  end
  else if not s.live then begin
    Metrics.incr t.m_undeliverable;
    (* Bounce an error to the sender so it can recover (§4). *)
    if msg.src >= 0 && (slot t msg.src).live then
      reply t ~to_:msg.src ~corr:msg.corr
        (Message.Error_msg
           {
             code = Types.E_device_failed;
             detail = Printf.sprintf "dev%d is not live" dst;
           })
  end
  else begin
    Metrics.incr t.m_routed;
    schedule_delivery t msg ~delay:costs.Costs.bus_hop_ns (fun () ->
        if s.live then s.handler msg)
  end

let quarantined_src t src =
  src >= 0 && src < Array.length t.devices
  && t.devices.(src).trust = Quarantined

let send_routed t (msg : Message.t) =
  let costs = Engine.costs t.engine in
  let size = Message.wire_size msg in
  Metrics.incr ~by:size t.m_control_bytes;
  (* Rendering a message is by far the most expensive thing on this path;
     with tracing off the formatter must never run. *)
  if Engine.tracing t.engine then
    Engine.trace_event t.engine
      ~actor:(if msg.src >= 0 then device_name t msg.src else "bus")
      ~kind:("msg." ^ Message.payload_tag msg.payload)
      (Format.asprintf "%a" Message.pp msg);
  match msg.dst with
  | Types.Device dst when not (known_device t dst) ->
    Metrics.incr t.m_undeliverable;
    trace t "bus.undeliverable"
      (Printf.sprintf "%s to unknown dev%d dropped"
         (Message.payload_tag msg.payload) dst);
    if known_device t msg.src && (slot t msg.src).live then
      reply t ~to_:msg.src ~corr:msg.corr
        (Message.Error_msg
           {
             code = Types.E_bad_address;
             detail = Printf.sprintf "no such device %d" dst;
           })
  | Types.Device dst when (slot t dst).shard <> t.home_shard ->
    (* Cross-shard frame: hand over at the border instead of taking a local
       lane — the destination's station discipline belongs to its shard. *)
    Metrics.incr t.m_routed;
    boundary_post t ~dst_shard:(slot t dst).shard msg
  | _ ->
  (* One hop to the bus, then the bus's FIFO processor, then delivery.
     This hop is not a frame commit (no digest contribution), so only the
     sanitizer label is at stake — branch rather than allocate a thunk. *)
  let arrive () =
    let now = Engine.now t.engine in
    if Message.expired msg ~now then begin
      bump_expired t;
      trace t "bus.expired"
        (Printf.sprintf "%s from dev%d past deadline on arrival, shed"
           (Message.payload_tag msg.payload) msg.src)
    end
    else begin
      let service =
        let base = costs.Costs.bus_process_ns in
        match msg.payload with
        | Message.Map_directive _ | Message.Grant_request _
        | Message.Unmap_directive _ ->
          (* Privileged ops pay token verification + PTE writes. *)
          Int64.add base (Int64.add (token_cost t) costs.Costs.iommu_program_ns)
        | _ -> base
      in
      let lane = lane_for t msg.src in
      let run () =
        match msg.dst with
        | Types.Bus -> handle_bus_message t msg
        | Types.Device dst -> deliver_unicast t msg dst
        | Types.Broadcast ->
          (* Broadcast scope is the local shard; boundary proxies are
             skipped (a cross-shard fan-out would need a link per shard,
             which Shardlink callers set up explicitly when they want it). *)
          Array.iteri
            (fun id s ->
              if id <> msg.src && s.live && s.shard = t.home_shard then begin
                Metrics.incr t.m_broadcasts;
                schedule_delivery t msg ~delay:costs.Costs.bus_hop_ns
                  (fun () -> if s.live then s.handler msg)
              end)
            t.devices
      in
      match Station.try_submit lane ~service run with
      | `Accepted -> ()
      | `Rejected ->
        (* Backpressure, not silence: bounce E_busy with a deterministic
           retry-after hint (time for this lane's queue to drain) so the
           sender can pace instead of hammering. *)
        let retry_after_ns = Station.drain_ns lane ~now in
        trace t "bus.busy"
          (Printf.sprintf "%s from dev%d rejected, retry-after=%Ldns"
             (Message.payload_tag msg.payload) msg.src retry_after_ns);
        if msg.src >= 0 && (slot t msg.src).live then
          reply t ~to_:msg.src ~corr:msg.corr
            (Message.Error_msg
               {
                 code = Types.E_busy;
                 detail = Message.busy_detail ~retry_after_ns;
               })
    end
  in
  if Engine.sanitizing t.engine then
    Engine.schedule
      ~label:(fun () -> frame_desc msg)
      t.engine ~delay:costs.Costs.bus_hop_ns arrive
  else Engine.schedule t.engine ~delay:costs.Costs.bus_hop_ns arrive

(* The quarantine fence: a fenced device's frames never reach a lane — the
   same structural cut the boundary-proxy skip uses, applied for trust
   instead of shard affinity. *)
let send t (msg : Message.t) =
  Ownership.touch t.owner_cell;
  if quarantined_src t msg.src then begin
    bump_fenced t;
    trace t "bus.fenced"
      (Printf.sprintf "%s from quarantined dev%d dropped"
         (Message.payload_tag msg.payload) msg.src)
  end
  else send_routed t msg

(* Raw-byte ingress: the only entry point for bytes whose shape the bus
   does not trust (a compromised device's egress, the fuzzer's mutations).
   Decoding is the typed, never-raising kind; a frame that decodes but
   claims someone else's source address is dropped as spoofing evidence. *)
let send_raw t ~src bytes =
  Ownership.touch t.owner_cell;
  if quarantined_src t src then begin
    bump_fenced t;
    trace t "bus.fenced"
      (Printf.sprintf "raw frame from quarantined dev%d dropped" src)
  end
  else begin
    match Codec.decode_framed_result bytes with
    | Error reason ->
      (if src >= 0 && src < Array.length t.devices then
         let s = t.devices.(src) in
         s.malformed_frames <- s.malformed_frames + 1);
      bump_malformed t;
      score_malformed t ~src ~what:("malformed frame: " ^ reason);
      trace t "bus.malformed"
        (Printf.sprintf "frame from dev%d dropped: %s" src reason)
    | Ok msg ->
      if msg.src <> src then begin
        (match t.config.quarantine with
        | None -> ()
        | Some qc ->
          report_misbehavior t ~src ~weight:qc.spoof_weight
            ~what:(Printf.sprintf "spoofed src %d" msg.src));
        trace t "bus.spoofed"
          (Printf.sprintf "dev%d forged src %d, dropped" src msg.src)
      end
      else send t msg
  end

let notify t ~src ~dst ~queue =
  Ownership.touch t.owner_cell;
  if quarantined_src t src then begin
    bump_fenced t;
    trace t "bus.fenced"
      (Printf.sprintf "doorbell from quarantined dev%d dropped" src)
  end
  else if not (known_device t dst) then begin
    Metrics.incr t.m_doorbells_dropped;
    trace t "bus.doorbell-dropped"
      (Printf.sprintf "dev%d -> unknown dev%d queue=%d" src dst queue)
  end
  else begin
  let costs = Engine.costs t.engine in
  let s = slot t dst in
  if s.shard <> t.home_shard then begin
    (* A doorbell ringing across the border rides the boundary mailbox
       like any other frame; the remote bus applies its own doorbell cost
       and liveness check on arrival. *)
    let msg =
      Message.make ~src ~dst:(Types.Device dst) ~corr:0
        (Message.Doorbell { queue })
    in
    boundary_post t ~dst_shard:s.shard msg
  end
  else if not s.live then begin
    (* A doorbell to a dead device is a write to nowhere: count it so the
       silence is visible in telemetry instead of a mystery hang. *)
    Metrics.incr t.m_doorbells_dropped;
    trace t "bus.doorbell-dropped"
      (Printf.sprintf "dev%d -> dev%d queue=%d (target not live)" src dst queue)
  end
  else begin
    let msg =
      Message.make ~src ~dst:(Types.Device dst) ~corr:0
        (Message.Doorbell { queue })
    in
    schedule_frame t msg ~delay:costs.Costs.doorbell_ns
      (fun () -> if s.live then s.handler msg)
  end
  end

(* --- failure injection --------------------------------------------------- *)

let fail_device t id =
  trace t "bus.fail-device" (Printf.sprintf "dev%d (%s)" id (device_name t id));
  mark_failed t id

let revive_device t id =
  let s = slot t id in
  s.connected <- true;
  trace t "bus.revive" (Printf.sprintf "dev%d (%s)" id s.name)

(* --- containment observability ------------------------------------------ *)

let trust_of t id = (slot t id).trust
let misbehavior_score t id = (slot t id).misbehavior
let malformed_frames_of t id = (slot t id).malformed_frames

let trust_to_string = function
  | Trusted -> "trusted"
  | Suspect -> "suspect"
  | Quarantined -> "quarantined"

let stale_tokens t =
  match t.m_stale_tokens with None -> 0 | Some c -> Metrics.counter_value c

let messages_fenced t =
  match t.m_fenced with None -> 0 | Some c -> Metrics.counter_value c

let malformed_total t =
  match t.m_malformed with None -> 0 | Some c -> Metrics.counter_value c

let quarantines t =
  match t.m_quarantines with None -> 0 | Some c -> Metrics.counter_value c

let revocations t =
  match t.m_revocations with None -> 0 | Some c -> Metrics.counter_value c
