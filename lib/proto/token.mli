(** Capability tokens.

    Authorization on the bus is capability-based: the controller of a
    resource (e.g. the memory controller for DRAM, the SSD for a file)
    issues a token naming the subject device/app and the rights granted.
    The privileged bus verifies the token's MAC against the issuer's
    registered key before performing a privileged action (§2.2: "the system
    bus updates the page tables of a device only when it is instructed to do
    so by the controller of that particular resource").

    The MAC is a keyed FNV-1a construction — *not* cryptographically strong,
    but structurally faithful: forgery requires the issuer key, and tests
    exercise tamper detection on every field. *)

type key = int64
(** Issuer secret key. *)

type t = {
  issuer : Types.device_id;  (** resource controller that minted the token *)
  subject : Types.device_id;  (** device the capability empowers *)
  pasid : Types.pasid;  (** address space the grant applies to *)
  resource : string;  (** resource name, e.g. "dram", "file:/kv/data" *)
  base : Types.addr;  (** start of the granted range *)
  length : int64;  (** byte length of the granted range *)
  perm : Types.perm;
  nonce : int64;  (** anti-replay *)
  epoch : int;
      (** issuer capability epoch at mint time; covered by the MAC. The bus
          tracks the current epoch per issuer — revocation is one epoch bump,
          after which every outstanding token minted under the old epoch
          fails verification ([E_bad_token]) without touching the tokens
          themselves. *)
  mac : int64;
}

val mint :
  ?epoch:int ->
  key:key ->
  issuer:Types.device_id ->
  subject:Types.device_id ->
  pasid:Types.pasid ->
  resource:string ->
  base:Types.addr ->
  length:int64 ->
  perm:Types.perm ->
  nonce:int64 ->
  unit ->
  t
(** Create a token whose MAC covers every other field under [key].
    [epoch] defaults to [0] — the epoch a bus with no revocations reports. *)

val verify : key:key -> t -> bool
(** [verify ~key t] recomputes the MAC; any altered field fails. *)

val pp : Format.formatter -> t -> unit
