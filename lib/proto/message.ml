type service_desc = {
  kind : Types.service_kind;
  name : string;
  version : int;
}

type payload =
  | Device_alive of { services : service_desc list }
  | Heartbeat
  | Discover_request of { kind : Types.service_kind; query : string }
  | Discover_response of {
      provider : Types.device_id;
      service : service_desc;
      query : string;
    }
  | Open_service of {
      service : service_desc;
      pasid : Types.pasid;
      auth : Token.t option;
      params : (string * string) list;
    }
  | Open_response of {
      accepted : bool;
      connection : int;
      shm_bytes : int64;
      error : Types.error_code option;
    }
  | Close_service of { connection : int }
  | Alloc_request of {
      pasid : Types.pasid;
      va : Types.addr;
      bytes : int64;
      perm : Types.perm;
    }
  | Alloc_response of {
      ok : bool;
      va : Types.addr;
      bytes : int64;
      grant : Token.t option;
      error : Types.error_code option;
    }
  | Map_directive of {
      device : Types.device_id;
      pasid : Types.pasid;
      va : Types.addr;
      pa : Types.addr;
      bytes : int64;
      perm : Types.perm;
      auth : Token.t;
    }
  | Grant_request of {
      to_device : Types.device_id;
      pasid : Types.pasid;
      va : Types.addr;
      bytes : int64;
      perm : Types.perm;
      auth : Token.t;
    }
  | Map_complete of { pasid : Types.pasid; va : Types.addr; ok : bool }
  | Free_request of { pasid : Types.pasid; va : Types.addr; bytes : int64 }
  | Unmap_directive of {
      device : Types.device_id;
      pasid : Types.pasid;
      va : Types.addr;
      bytes : int64;
      auth : Token.t;
    }
  | Doorbell of { queue : int }
  | Fault_notify of { pasid : Types.pasid; va : Types.addr; detail : string }
  | Resource_failed of { resource : string }
  | Device_failed of { device : Types.device_id }
  | Reset_device
  | Reset_resource of { resource : string }
  | Load_image of { image : string; bytes : int64 }
  | Auth_request of { user : string; credential : string }
  | Auth_response of { ok : bool; session : Token.t option }
  | Error_msg of { code : Types.error_code; detail : string }
  | App_message of { tag : string; body : string }

type t = {
  src : Types.device_id;
  dst : Types.dest;
  corr : int;
  deadline_ns : int64 option;
  payload : payload;
}

let make ?deadline_ns ~src ~dst ~corr payload =
  { src; dst; corr; deadline_ns; payload }

let expired t ~now =
  match t.deadline_ns with Some d -> now > d | None -> false

(* Deterministic retry-after hint carried in [Error_msg E_busy] details.
   A string field keeps the wire format stable; both ends use these
   helpers so the hint survives encoding. *)
let busy_detail ~retry_after_ns =
  Printf.sprintf "busy; retry-after=%Ldns" retry_after_ns

let retry_after_of_detail detail =
  let prefix = "retry-after=" in
  let plen = String.length prefix in
  let dlen = String.length detail in
  let rec find i =
    if i + plen > dlen then None
    else if String.sub detail i plen = prefix then begin
      let j = ref (i + plen) in
      while !j < dlen && detail.[!j] >= '0' && detail.[!j] <= '9' do incr j done;
      if !j = i + plen then None
      else Int64.of_string_opt (String.sub detail (i + plen) (!j - i - plen))
    end
    else find (i + 1)
  in
  find 0

let payload_tag = function
  | Device_alive _ -> "device-alive"
  | Heartbeat -> "heartbeat"
  | Discover_request _ -> "discover-req"
  | Discover_response _ -> "discover-resp"
  | Open_service _ -> "open-service"
  | Open_response _ -> "open-resp"
  | Close_service _ -> "close-service"
  | Alloc_request _ -> "alloc-req"
  | Alloc_response _ -> "alloc-resp"
  | Map_directive _ -> "map-directive"
  | Grant_request _ -> "grant-req"
  | Map_complete _ -> "map-complete"
  | Free_request _ -> "free-req"
  | Unmap_directive _ -> "unmap-directive"
  | Doorbell _ -> "doorbell"
  | Fault_notify _ -> "fault-notify"
  | Resource_failed _ -> "resource-failed"
  | Device_failed _ -> "device-failed"
  | Reset_device -> "reset-device"
  | Reset_resource _ -> "reset-resource"
  | Load_image _ -> "load-image"
  | Auth_request _ -> "auth-req"
  | Auth_response _ -> "auth-resp"
  | Error_msg _ -> "error"
  | App_message _ -> "app-msg"

(* Size model: header (16B) plus a per-payload estimate. Exact fidelity is
   unnecessary; the codec gives true sizes where messages are actually
   serialised, and the latency model only needs the right magnitude. *)
let payload_size = function
  | Device_alive { services } ->
    4 + List.fold_left (fun a s -> a + 8 + String.length s.name) 0 services
  | Heartbeat -> 1
  | Discover_request { query; _ } -> 2 + String.length query
  | Discover_response { service; query; _ } ->
    10 + String.length service.name + String.length query
  | Open_service { service; params; auth; _ } ->
    8 + String.length service.name
    + List.fold_left
        (fun a (k, v) -> a + String.length k + String.length v + 2)
        0 params
    + (match auth with Some _ -> 64 | None -> 0)
  | Open_response _ -> 20
  | Close_service _ -> 8
  | Alloc_request _ -> 25
  | Alloc_response { grant; _ } ->
    24 + (match grant with Some _ -> 64 | None -> 0)
  | Map_directive _ -> 100
  | Grant_request _ -> 96
  | Map_complete _ -> 17
  | Free_request _ -> 20
  | Unmap_directive _ -> 92
  | Doorbell _ -> 8
  | Fault_notify { detail; _ } -> 16 + String.length detail
  | Resource_failed { resource } -> 4 + String.length resource
  | Device_failed _ -> 8
  | Reset_device -> 1
  | Reset_resource { resource } -> 4 + String.length resource
  | Load_image { image; _ } -> 12 + String.length image
  | Auth_request { user; credential } ->
    4 + String.length user + String.length credential
  | Auth_response { session; _ } -> 2 + (match session with Some _ -> 64 | None -> 0)
  | Error_msg { detail; _ } -> 6 + String.length detail
  | App_message { tag; body } -> 4 + String.length tag + String.length body

let wire_size t = 16 + payload_size t.payload

let pp_payload ppf = function
  | Discover_request { kind; query } ->
    Format.fprintf ppf "discover %s %S" (Types.service_kind_to_string kind)
      query
  | Discover_response { provider; service; _ } ->
    Format.fprintf ppf "found %s at dev%d" service.name provider
  | Open_response { accepted; connection; shm_bytes; _ } ->
    Format.fprintf ppf "open %s conn=%d shm=%Ld"
      (if accepted then "ok" else "denied")
      connection shm_bytes
  | Alloc_request { pasid; va; bytes; perm } ->
    Format.fprintf ppf "alloc pasid=%d va=%a bytes=%Ld perm=%s" pasid
      Types.pp_addr va bytes (Types.perm_to_string perm)
  | Map_directive { device; pasid; va; pa; bytes; _ } ->
    Format.fprintf ppf "map dev%d pasid=%d %a->%a len=%Ld" device pasid
      Types.pp_addr va Types.pp_addr pa bytes
  | Error_msg { code; detail } ->
    Format.fprintf ppf "error %s: %s" (Types.error_code_to_string code) detail
  | p -> Format.pp_print_string ppf (payload_tag p)

let pp ppf t =
  Format.fprintf ppf "dev%d -> %s #%d: %a" t.src
    (Types.dest_to_string t.dst)
    t.corr pp_payload t.payload
