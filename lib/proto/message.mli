(** Control-plane messages carried by the system management bus.

    This is the vocabulary of §2.2 and the Figure-2 sequence: liveness,
    service discovery, service open/close, memory allocation and grants
    (which cause the privileged bus to program IOMMUs), notifications,
    errors and resets. Data transfers never travel here — they go through
    VIRTIO queues in shared memory (§2.3 control/data-plane split). *)

type service_desc = {
  kind : Types.service_kind;
  name : string;  (** instance name, e.g. "ssd0.fs" *)
  version : int;
}

type payload =
  | Device_alive of { services : service_desc list }
      (** sent after self-test; the bus records liveness (§2.2) *)
  | Heartbeat
  | Discover_request of {
      kind : Types.service_kind;
      query : string;  (** e.g. a file name for file services (Fig. 2 step 1) *)
    }
  | Discover_response of {
      provider : Types.device_id;
      service : service_desc;
      query : string;
    }
  | Open_service of {
      service : service_desc;
      pasid : Types.pasid;
      auth : Token.t option;  (** authorization token (Fig. 2 step 3) *)
      params : (string * string) list;
    }
  | Open_response of {
      accepted : bool;
      connection : int;  (** connection id on the provider *)
      shm_bytes : int64;  (** shared memory the provider needs (step 4) *)
      error : Types.error_code option;
    }
  | Close_service of { connection : int }
  | Alloc_request of {
      pasid : Types.pasid;
      va : Types.addr;  (** where the app wants it mapped (step 5) *)
      bytes : int64;
      perm : Types.perm;
    }
  | Alloc_response of {
      ok : bool;
      va : Types.addr;
      bytes : int64;
      grant : Token.t option;  (** capability over the new region *)
      error : Types.error_code option;
    }
  | Map_directive of {
      (* resource controller -> bus: program [device]'s IOMMU (step 6) *)
      device : Types.device_id;
      pasid : Types.pasid;
      va : Types.addr;
      pa : Types.addr;
      bytes : int64;
      perm : Types.perm;
      auth : Token.t;
    }
  | Grant_request of {
      (* owner -> bus: extend an existing grant to another device (step 7) *)
      to_device : Types.device_id;
      pasid : Types.pasid;
      va : Types.addr;
      bytes : int64;
      perm : Types.perm;
      auth : Token.t;
    }
  | Map_complete of { pasid : Types.pasid; va : Types.addr; ok : bool }
  | Free_request of { pasid : Types.pasid; va : Types.addr; bytes : int64 }
  | Unmap_directive of {
      device : Types.device_id;
      pasid : Types.pasid;
      va : Types.addr;
      bytes : int64;
      auth : Token.t;
    }
  | Doorbell of { queue : int }  (** MSI-style notification (§2.3) *)
  | Fault_notify of { pasid : Types.pasid; va : Types.addr; detail : string }
  | Resource_failed of { resource : string }
      (** a resource died but the device survived (§4) *)
  | Device_failed of { device : Types.device_id }
      (** bus broadcast after liveness loss (§4) *)
  | Reset_device
  | Reset_resource of { resource : string }
  | Load_image of { image : string; bytes : int64 }
  | Auth_request of { user : string; credential : string }
  | Auth_response of { ok : bool; session : Token.t option }
  | Error_msg of { code : Types.error_code; detail : string }
  | App_message of { tag : string; body : string }
      (** application-defined control payloads *)

type t = {
  src : Types.device_id;
  dst : Types.dest;
  corr : int;  (** correlation id: responses echo the request's id *)
  deadline_ns : int64 option;
      (** absolute virtual deadline: hops may shed the message once it has
          passed — servicing it can no longer help the requester *)
  payload : payload;
}

val make :
  ?deadline_ns:int64 ->
  src:Types.device_id ->
  dst:Types.dest ->
  corr:int ->
  payload ->
  t
(** [deadline_ns] defaults to none (the message is never shed). *)

val expired : t -> now:int64 -> bool
(** The message carries a deadline and [now] is past it. *)

val busy_detail : retry_after_ns:int64 -> string
(** Detail string for [Error_msg E_busy] carrying a deterministic
    retry-after hint (virtual ns until the rejecting queue drains). *)

val retry_after_of_detail : string -> int64 option
(** Parse the hint back out of a {!busy_detail} string. *)

val payload_tag : payload -> string
(** Short machine-readable tag for tracing, e.g. "discover-req". *)

val wire_size : t -> int
(** Encoded size in bytes (used by the latency model). *)

val pp : Format.formatter -> t -> unit
