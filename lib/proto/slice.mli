(** Byte slices: the common currency of the zero-copy data plane.

    DRAM views ([Physmem.view]), DMI grants ([Dma.map_direct]) and codec
    cursors ({!Wire.View_reader}/{!Wire.View_writer}) all carry this one
    bigarray type, so payloads move bigarray-to-bigarray (memcpy
    underneath) instead of round-tripping through intermediate strings.
    All [blit_*] functions bounds-check and raise [Invalid_argument]. *)

type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Zero-filled. *)

val length : t -> int
val sub : t -> int -> int -> t
(** [sub t pos len] shares storage with [t] (a window, not a copy). *)

val get : t -> int -> char
val set : t -> int -> char -> unit
val fill : t -> char -> unit

val blit_string : string -> src_pos:int -> t -> dst_pos:int -> len:int -> unit
val blit_bytes : Bytes.t -> src_pos:int -> t -> dst_pos:int -> len:int -> unit
val blit_to_bytes : t -> src_pos:int -> Bytes.t -> dst_pos:int -> len:int -> unit
val blit : t -> src_pos:int -> t -> dst_pos:int -> len:int -> unit

val to_string : t -> pos:int -> len:int -> string
val of_string : string -> t
