exception Malformed of string

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let byte t b = Buffer.add_char t (Char.chr (b land 0xff))

  let varint t v =
    assert (v >= 0);
    let rec go v =
      if v < 0x80 then byte t v
      else begin
        byte t (v land 0x7f lor 0x80);
        go (v lsr 7)
      end
    in
    go v

  let int64 t v =
    for shift = 0 to 7 do
      byte t (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
    done

  let string t s =
    varint t (String.length s);
    Buffer.add_string t s

  let bool t b = byte t (if b then 1 else 0)

  let list t f xs =
    varint t (List.length xs);
    List.iter (f t) xs

  let option t f = function
    | None -> bool t false
    | Some x ->
      bool t true;
      f t x

  let contents = Buffer.contents
  let length = Buffer.length
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let create data = { data; pos = 0 }

  let byte t =
    if t.pos >= String.length t.data then raise (Malformed "truncated");
    let b = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    b

  let varint t =
    let rec go shift acc =
      if shift > 62 then raise (Malformed "varint too long");
      let b = byte t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int64 t =
    let v = ref 0L in
    for shift = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte t)) (shift * 8))
    done;
    !v

  let string t =
    let len = varint t in
    if t.pos + len > String.length t.data then raise (Malformed "truncated string");
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Malformed (Printf.sprintf "bad bool %d" n))

  let list t f =
    let n = varint t in
    List.init n (fun _ -> f t)

  let option t f = if bool t then Some (f t) else None

  let at_end t = t.pos = String.length t.data
end

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Guards framed payloads against in-flight corruption. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF
