exception Malformed of string

(* The shared shapes of the three write targets (growable buffer, slice
   cursor, byte counter) and the two read cursors (string, slice). Codecs
   written as functors over these define their byte layout exactly once
   and get the copying, zero-copy and sizing variants for free. *)
module type SINK = sig
  type t

  val byte : t -> int -> unit
  val varint : t -> int -> unit
  val int64 : t -> int64 -> unit
  val string : t -> string -> unit
  val bool : t -> bool -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
end

module type SOURCE = sig
  type t

  val byte : t -> int
  val varint : t -> int
  val int64 : t -> int64
  val string : t -> string
  val bool : t -> bool
  val list : t -> (t -> 'a) -> 'a list
  val option : t -> (t -> 'a) -> 'a option
  val at_end : t -> bool
end

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let byte t b = Buffer.add_char t (Char.chr (b land 0xff))

  let varint t v =
    assert (v >= 0);
    let rec go v =
      if v < 0x80 then byte t v
      else begin
        byte t (v land 0x7f lor 0x80);
        go (v lsr 7)
      end
    in
    go v

  let int64 t v =
    for shift = 0 to 7 do
      byte t (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
    done

  let string t s =
    varint t (String.length s);
    Buffer.add_string t s

  let bool t b = byte t (if b then 1 else 0)

  let list t f xs =
    varint t (List.length xs);
    List.iter (f t) xs

  let option t f = function
    | None -> bool t false
    | Some x ->
      bool t true;
      f t x

  let contents = Buffer.contents
  let length = Buffer.length
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let create data = { data; pos = 0 }

  let byte t =
    if t.pos >= String.length t.data then raise (Malformed "truncated");
    let b = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    b

  let varint t =
    let rec go shift acc =
      if shift > 62 then raise (Malformed "varint too long");
      let b = byte t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int64 t =
    let v = ref 0L in
    for shift = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte t)) (shift * 8))
    done;
    !v

  let string t =
    let len = varint t in
    if t.pos + len > String.length t.data then raise (Malformed "truncated string");
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Malformed (Printf.sprintf "bad bool %d" n))

  let list t f =
    let n = varint t in
    List.init n (fun _ -> f t)

  let option t f = if bool t then Some (f t) else None

  let at_end t = t.pos = String.length t.data
end

(* Byte counter with the Writer's exact signature: drive the same encode
   logic through it and [size] is the encoded length, with no buffer and
   no bytes materialised. Codec.encoded_size is built on this. *)
module Sizer = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let byte t _ = t.n <- t.n + 1

  let varint t v =
    assert (v >= 0);
    let rec go v n = if v < 0x80 then n + 1 else go (v lsr 7) (n + 1) in
    t.n <- t.n + go v 0

  let int64 t _ = t.n <- t.n + 8

  let string t s =
    varint t (String.length s);
    t.n <- t.n + String.length s

  let bool t _ = t.n <- t.n + 1

  let list t f xs =
    varint t (List.length xs);
    List.iter (f t) xs

  let option t f = function
    | None -> bool t false
    | Some x ->
      bool t true;
      f t x

  let size t = t.n
end

(* Cursor writing into a caller-provided slice (a DRAM view, a virtqueue
   slot): the encoded bytes land directly in backing memory, no
   intermediate string. Running off the end of the slice raises
   [Malformed] — the caller sized the buffer, so overflow is a framing
   bug, not a grow condition. *)
module View_writer = struct
  type t = { data : Slice.t; mutable pos : int }

  let create ?(pos = 0) data = { data; pos }

  let ensure t n =
    if t.pos + n > Slice.length t.data then raise (Malformed "view overflow")

  let byte t b =
    ensure t 1;
    Bigarray.Array1.unsafe_set t.data t.pos (Char.unsafe_chr (b land 0xff));
    t.pos <- t.pos + 1

  let varint t v =
    assert (v >= 0);
    let rec go v =
      if v < 0x80 then byte t v
      else begin
        byte t (v land 0x7f lor 0x80);
        go (v lsr 7)
      end
    in
    go v

  let int64 t v =
    for shift = 0 to 7 do
      byte t (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
    done

  let raw_string t s ~src_pos ~len =
    ensure t len;
    Slice.blit_string s ~src_pos t.data ~dst_pos:t.pos ~len;
    t.pos <- t.pos + len

  let string t s =
    varint t (String.length s);
    raw_string t s ~src_pos:0 ~len:(String.length s)

  let raw_view t v ~src_pos ~len =
    ensure t len;
    Slice.blit v ~src_pos t.data ~dst_pos:t.pos ~len;
    t.pos <- t.pos + len

  let view t v =
    (* Length-prefixed like [string], but the payload bytes blit
       bigarray-to-bigarray. *)
    varint t (Slice.length v);
    raw_view t v ~src_pos:0 ~len:(Slice.length v)

  let bool t b = byte t (if b then 1 else 0)

  let list t f xs =
    varint t (List.length xs);
    List.iter (f t) xs

  let option t f = function
    | None -> bool t false
    | Some x ->
      bool t true;
      f t x

  let pos t = t.pos
end

(* Cursor over a slice (a DRAM view): decode straight out of backing
   memory. [view] hands payload fields back as sub-windows — storage
   stays shared, nothing is copied until someone needs a string. *)
module View_reader = struct
  type t = { data : Slice.t; mutable pos : int; limit : int }

  let create ?(pos = 0) ?len data =
    let limit =
      match len with None -> Slice.length data | Some n -> pos + n
    in
    if pos < 0 || limit > Slice.length data || pos > limit then
      invalid_arg "View_reader.create: window out of range";
    { data; pos; limit }

  let byte t =
    if t.pos >= t.limit then raise (Malformed "truncated");
    let b = Char.code (Bigarray.Array1.unsafe_get t.data t.pos) in
    t.pos <- t.pos + 1;
    b

  let varint t =
    let rec go shift acc =
      if shift > 62 then raise (Malformed "varint too long");
      let b = byte t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int64 t =
    let v = ref 0L in
    for shift = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte t)) (shift * 8))
    done;
    !v

  let take t len =
    if len < 0 || t.pos + len > t.limit then
      raise (Malformed "truncated string");
    let v = Slice.sub t.data t.pos len in
    t.pos <- t.pos + len;
    v

  let string t =
    let len = varint t in
    if t.pos + len > t.limit then raise (Malformed "truncated string");
    let s = Slice.to_string t.data ~pos:t.pos ~len in
    t.pos <- t.pos + len;
    s

  let view t = take t (varint t)

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Malformed (Printf.sprintf "bad bool %d" n))

  let list t f =
    let n = varint t in
    List.init n (fun _ -> f t)

  let option t f = if bool t then Some (f t) else None
  let at_end t = t.pos = t.limit
end

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). Guards framed
   payloads against in-flight corruption, doubles as the NAND ECC model
   and the WAL record checksum, so it runs over every 4 KiB page on the
   storage path — hence the slice-by-8 C stub. [crc32_reference] is the
   original OCaml loop, kept so the test suite can pin the stub to it. *)
external crc32_stub : string -> int -> int -> int = "lastcpu_crc32" [@@noalloc]

let crc32_sub s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Wire.crc32_sub";
  crc32_stub s pos len

let crc32 s = crc32_stub s 0 (String.length s)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_reference s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF
