(* A byte slice: the common currency of the zero-copy data plane. DRAM
   views (Physmem), DMI grants (Dma.map_direct) and codec cursors
   (Wire.View_reader/View_writer) all carry this one type, so payloads
   move bigarray-to-bigarray with memcpy underneath instead of
   round-tripping through intermediate strings. *)

type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The same C stub serves string and bytes sources: they share a runtime
   representation and the stub only reads the source. *)
external unsafe_blit_string : string -> int -> t -> int -> int -> unit
  = "lastcpu_blit_string_to_ba"
[@@noalloc]

external unsafe_blit_bytes : Bytes.t -> int -> t -> int -> int -> unit
  = "lastcpu_blit_string_to_ba"
[@@noalloc]

external unsafe_blit_to_bytes : t -> int -> Bytes.t -> int -> int -> unit
  = "lastcpu_blit_ba_to_bytes"
[@@noalloc]

let length = Bigarray.Array1.dim
let sub = Bigarray.Array1.sub
let get = Bigarray.Array1.get
let set = Bigarray.Array1.set
let fill = Bigarray.Array1.fill

let create len =
  let s = Bigarray.Array1.create Bigarray.char Bigarray.c_layout len in
  fill s '\000';
  s

let check_range what len pos n =
  if pos < 0 || n < 0 || pos + n > len then
    invalid_arg (Printf.sprintf "Slice.%s: [%d, +%d) out of range" what pos n)

let blit_string src ~src_pos dst ~dst_pos ~len =
  check_range "blit_string" (String.length src) src_pos len;
  check_range "blit_string" (length dst) dst_pos len;
  unsafe_blit_string src src_pos dst dst_pos len

let blit_bytes src ~src_pos dst ~dst_pos ~len =
  check_range "blit_bytes" (Bytes.length src) src_pos len;
  check_range "blit_bytes" (length dst) dst_pos len;
  unsafe_blit_bytes src src_pos dst dst_pos len

let blit_to_bytes src ~src_pos dst ~dst_pos ~len =
  check_range "blit_to_bytes" (length src) src_pos len;
  check_range "blit_to_bytes" (Bytes.length dst) dst_pos len;
  unsafe_blit_to_bytes src src_pos dst dst_pos len

let blit src ~src_pos dst ~dst_pos ~len =
  Bigarray.Array1.blit (sub src src_pos len) (sub dst dst_pos len)

let to_string src ~pos ~len =
  check_range "to_string" (length src) pos len;
  let b = Bytes.create len in
  unsafe_blit_to_bytes src pos b 0 len;
  Bytes.unsafe_to_string b

let of_string s =
  let v = Bigarray.Array1.create Bigarray.char Bigarray.c_layout (String.length s) in
  unsafe_blit_string s 0 v 0 (String.length s);
  v
