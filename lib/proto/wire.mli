(** Binary wire primitives for the bus protocol codec.

    Little-endian fixed ints, LEB128 varints, length-prefixed strings and
    lists, over a growable write buffer and a cursor-based reader. Decoding
    failures raise [Malformed]. *)

exception Malformed of string

module Writer : sig
  type t

  val create : unit -> t
  val byte : t -> int -> unit
  val varint : t -> int -> unit
  (** Unsigned LEB128; requires the value to be non-negative. *)

  val int64 : t -> int64 -> unit
  val string : t -> string -> unit
  val bool : t -> bool -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val contents : t -> string
  val length : t -> int
end

module Reader : sig
  type t

  val create : string -> t
  val byte : t -> int
  val varint : t -> int
  val int64 : t -> int64
  val string : t -> string
  val bool : t -> bool
  val list : t -> (t -> 'a) -> 'a list
  val option : t -> (t -> 'a) -> 'a option
  val at_end : t -> bool
end

val crc32 : string -> int
(** CRC-32 (IEEE 802.3) of the whole string, in [\[0, 2^32)]. Any
    single-bit flip changes the checksum. *)
