(** Binary wire primitives for the bus protocol codec.

    Little-endian fixed ints, LEB128 varints, length-prefixed strings and
    lists, over a growable write buffer and a cursor-based reader. Decoding
    failures raise [Malformed]. *)

exception Malformed of string

(** The shared shape of the write targets ({!Writer}, {!View_writer},
    {!Sizer}): a codec functorized over [SINK] defines its byte layout
    once and gets the copying, zero-copy and sizing encoders for free. *)
module type SINK = sig
  type t

  val byte : t -> int -> unit
  val varint : t -> int -> unit
  val int64 : t -> int64 -> unit
  val string : t -> string -> unit
  val bool : t -> bool -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
end

(** The shared shape of the read cursors ({!Reader}, {!View_reader}). *)
module type SOURCE = sig
  type t

  val byte : t -> int
  val varint : t -> int
  val int64 : t -> int64
  val string : t -> string
  val bool : t -> bool
  val list : t -> (t -> 'a) -> 'a list
  val option : t -> (t -> 'a) -> 'a option
  val at_end : t -> bool
end

module Writer : sig
  type t

  val create : unit -> t
  val byte : t -> int -> unit
  val varint : t -> int -> unit
  (** Unsigned LEB128; requires the value to be non-negative. *)

  val int64 : t -> int64 -> unit
  val string : t -> string -> unit
  val bool : t -> bool -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val contents : t -> string
  val length : t -> int
end

module Reader : sig
  type t

  val create : string -> t
  val byte : t -> int
  val varint : t -> int
  val int64 : t -> int64
  val string : t -> string
  val bool : t -> bool
  val list : t -> (t -> 'a) -> 'a list
  val option : t -> (t -> 'a) -> 'a option
  val at_end : t -> bool
end

(** Byte counter with {!Writer}'s signature: drive the same encode logic
    through it and {!Sizer.size} is the encoded length — no buffer, no
    bytes materialised. *)
module Sizer : sig
  type t

  val create : unit -> t
  val byte : t -> int -> unit
  val varint : t -> int -> unit
  val int64 : t -> int64 -> unit
  val string : t -> string -> unit
  val bool : t -> bool -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val size : t -> int
end

(** Cursor writing into a caller-provided slice (a DRAM view, a virtqueue
    slot): encoded bytes land directly in backing memory. Overflowing the
    slice raises [Malformed]. *)
module View_writer : sig
  type t

  val create : ?pos:int -> Slice.t -> t
  val byte : t -> int -> unit
  val varint : t -> int -> unit
  val int64 : t -> int64 -> unit
  val string : t -> string -> unit
  val view : t -> Slice.t -> unit
  (** Length-prefixed like [string]; payload bytes blit slice-to-slice. *)

  val raw_string : t -> string -> src_pos:int -> len:int -> unit
  val raw_view : t -> Slice.t -> src_pos:int -> len:int -> unit
  (** Unprefixed raw bytes (caller frames them). *)

  val bool : t -> bool -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit

  val pos : t -> int
  (** Bytes written so far (next write offset). *)
end

(** Cursor over a slice (a DRAM view): decode straight out of backing
    memory. {!View_reader.view} hands payload fields back as sub-windows
    sharing storage with the underlying slice. *)
module View_reader : sig
  type t

  val create : ?pos:int -> ?len:int -> Slice.t -> t
  val byte : t -> int
  val varint : t -> int
  val int64 : t -> int64
  val string : t -> string
  val view : t -> Slice.t
  val take : t -> int -> Slice.t
  (** [take t len] consumes [len] raw bytes as a sub-window. *)

  val bool : t -> bool
  val list : t -> (t -> 'a) -> 'a list
  val option : t -> (t -> 'a) -> 'a option
  val at_end : t -> bool
end

val crc32 : string -> int
(** CRC-32 (IEEE 802.3) of the whole string, in [\[0, 2^32)]. Any
    single-bit flip changes the checksum. Computed by a slice-by-8 C
    stub — this checksum runs over every NAND page program and WAL
    record, so it is squarely on the storage hot path. *)

val crc32_sub : string -> int -> int -> int
(** [crc32_sub s pos len]: CRC-32 of the [len] bytes at [pos]. Raises
    [Invalid_argument] when the range falls outside [s]. *)

val crc32_reference : string -> int
(** The original table-driven OCaml implementation, kept as the oracle
    the test suite pins the C stub against. *)
