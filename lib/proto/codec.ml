open Wire

(* Tag space: one byte per payload constructor. Keep stable; tests pin it. *)
let tag_of_payload : Message.payload -> int = function
  | Device_alive _ -> 0
  | Heartbeat -> 1
  | Discover_request _ -> 2
  | Discover_response _ -> 3
  | Open_service _ -> 4
  | Open_response _ -> 5
  | Close_service _ -> 6
  | Alloc_request _ -> 7
  | Alloc_response _ -> 8
  | Map_directive _ -> 9
  | Grant_request _ -> 10
  | Map_complete _ -> 11
  | Free_request _ -> 12
  | Unmap_directive _ -> 13
  | Doorbell _ -> 14
  | Fault_notify _ -> 15
  | Resource_failed _ -> 16
  | Device_failed _ -> 17
  | Reset_device -> 18
  | Reset_resource _ -> 19
  | Load_image _ -> 20
  | Auth_request _ -> 21
  | Auth_response _ -> 22
  | Error_msg _ -> 23
  | App_message _ -> 24

let service_kind_tag (k : Types.service_kind) =
  match k with
  | File_service -> 0
  | Block_service -> 1
  | Memory_service -> 2
  | Socket_service -> 3
  | Console_service -> 4
  | Auth_service -> 5
  | Loader_service -> 6
  | Kv_service -> 7
  | Compute_service -> 8

let service_kind_of_tag = function
  | 0 -> Types.File_service
  | 1 -> Types.Block_service
  | 2 -> Types.Memory_service
  | 3 -> Types.Socket_service
  | 4 -> Types.Console_service
  | 5 -> Types.Auth_service
  | 6 -> Types.Loader_service
  | 7 -> Types.Kv_service
  | 8 -> Types.Compute_service
  | n -> raise (Malformed (Printf.sprintf "bad service kind %d" n))

let error_code_tag (e : Types.error_code) =
  match e with
  | E_no_such_service -> 0
  | E_access_denied -> 1
  | E_no_memory -> 2
  | E_bad_address -> 3
  | E_bad_token -> 4
  | E_device_failed -> 5
  | E_resource_failed -> 6
  | E_busy -> 7
  | E_not_found -> 8
  | E_exists -> 9
  | E_invalid -> 10

let error_code_of_tag = function
  | 0 -> Types.E_no_such_service
  | 1 -> Types.E_access_denied
  | 2 -> Types.E_no_memory
  | 3 -> Types.E_bad_address
  | 4 -> Types.E_bad_token
  | 5 -> Types.E_device_failed
  | 6 -> Types.E_resource_failed
  | 7 -> Types.E_busy
  | 8 -> Types.E_not_found
  | 9 -> Types.E_exists
  | 10 -> Types.E_invalid
  | n -> raise (Malformed (Printf.sprintf "bad error code %d" n))

(* --- encoding ----------------------------------------------------------- *)

(* One encoder, three sinks. The byte layout is defined once below and
   driven through whatever sink the caller needs: a growable buffer
   ([encode]), a caller-provided slice ([encode_into] — bytes land
   directly in backing DRAM), or a byte counter ([encoded_size] — the
   size is computed, not measured off a throwaway encode). *)
module Emit (W : SINK) = struct
  let w_perm w (p : Types.perm) =
    W.byte w
      ((if p.read then 1 else 0)
      lor (if p.write then 2 else 0)
      lor if p.exec then 4 else 0)

  let w_service w (s : Message.service_desc) =
    W.byte w (service_kind_tag s.kind);
    W.string w s.name;
    W.varint w s.version

  let w_token w (t : Token.t) =
    W.varint w t.issuer;
    W.varint w t.subject;
    W.varint w t.pasid;
    W.string w t.resource;
    W.int64 w t.base;
    W.int64 w t.length;
    w_perm w t.perm;
    W.int64 w t.nonce;
    W.varint w t.epoch;
    W.int64 w t.mac

  let w_kv w (k, v) =
    W.string w k;
    W.string w v

  let payload w (p : Message.payload) =
    W.byte w (tag_of_payload p);
    match p with
    | Device_alive { services } -> W.list w w_service services
    | Heartbeat -> ()
    | Discover_request { kind; query } ->
      W.byte w (service_kind_tag kind);
      W.string w query
    | Discover_response { provider; service; query } ->
      W.varint w provider;
      w_service w service;
      W.string w query
    | Open_service { service; pasid; auth; params } ->
      w_service w service;
      W.varint w pasid;
      W.option w w_token auth;
      W.list w w_kv params
    | Open_response { accepted; connection; shm_bytes; error } ->
      W.bool w accepted;
      W.varint w connection;
      W.int64 w shm_bytes;
      W.option w (fun w e -> W.byte w (error_code_tag e)) error
    | Close_service { connection } -> W.varint w connection
    | Alloc_request { pasid; va; bytes; perm } ->
      W.varint w pasid;
      W.int64 w va;
      W.int64 w bytes;
      w_perm w perm
    | Alloc_response { ok; va; bytes; grant; error } ->
      W.bool w ok;
      W.int64 w va;
      W.int64 w bytes;
      W.option w w_token grant;
      W.option w (fun w e -> W.byte w (error_code_tag e)) error
    | Map_directive { device; pasid; va; pa; bytes; perm; auth } ->
      W.varint w device;
      W.varint w pasid;
      W.int64 w va;
      W.int64 w pa;
      W.int64 w bytes;
      w_perm w perm;
      w_token w auth
    | Grant_request { to_device; pasid; va; bytes; perm; auth } ->
      W.varint w to_device;
      W.varint w pasid;
      W.int64 w va;
      W.int64 w bytes;
      w_perm w perm;
      w_token w auth
    | Map_complete { pasid; va; ok } ->
      W.varint w pasid;
      W.int64 w va;
      W.bool w ok
    | Free_request { pasid; va; bytes } ->
      W.varint w pasid;
      W.int64 w va;
      W.int64 w bytes
    | Unmap_directive { device; pasid; va; bytes; auth } ->
      W.varint w device;
      W.varint w pasid;
      W.int64 w va;
      W.int64 w bytes;
      w_token w auth
    | Doorbell { queue } -> W.varint w queue
    | Fault_notify { pasid; va; detail } ->
      W.varint w pasid;
      W.int64 w va;
      W.string w detail
    | Resource_failed { resource } -> W.string w resource
    | Device_failed { device } -> W.varint w device
    | Reset_device -> ()
    | Reset_resource { resource } -> W.string w resource
    | Load_image { image; bytes } ->
      W.string w image;
      W.int64 w bytes
    | Auth_request { user; credential } ->
      W.string w user;
      W.string w credential
    | Auth_response { ok; session } ->
      W.bool w ok;
      W.option w w_token session
    | Error_msg { code; detail } ->
      W.byte w (error_code_tag code);
      W.string w detail
    | App_message { tag; body } ->
      W.string w tag;
      W.string w body

  let w_dest w (d : Types.dest) =
    match d with
    | Device id ->
      W.byte w 0;
      W.varint w id
    | Bus -> W.byte w 1
    | Broadcast -> W.byte w 2

  let message w (m : Message.t) =
    W.varint w m.src;
    w_dest w m.dst;
    W.varint w m.corr;
    payload w m.payload;
    (* Deadline trailer, after the payload so the header layout pinned by
       the conformance tests is untouched. A frame that ends at the payload
       (the pre-deadline format) still decodes, as deadline-less. *)
    W.option w W.int64 m.deadline_ns
end

module Emit_buf = Emit (Writer)
module Emit_view = Emit (View_writer)
module Emit_size = Emit (Sizer)

(* --- decoding ----------------------------------------------------------- *)

let r_perm r : Types.perm =
  let b = Reader.byte r in
  if b land lnot 7 <> 0 then raise (Malformed "bad perm bits");
  { read = b land 1 <> 0; write = b land 2 <> 0; exec = b land 4 <> 0 }

let r_service r : Message.service_desc =
  let kind = service_kind_of_tag (Reader.byte r) in
  let name = Reader.string r in
  let version = Reader.varint r in
  { kind; name; version }

let r_token r : Token.t =
  let issuer = Reader.varint r in
  let subject = Reader.varint r in
  let pasid = Reader.varint r in
  let resource = Reader.string r in
  let base = Reader.int64 r in
  let length = Reader.int64 r in
  let perm = r_perm r in
  let nonce = Reader.int64 r in
  let epoch = Reader.varint r in
  let mac = Reader.int64 r in
  { issuer; subject; pasid; resource; base; length; perm; nonce; epoch; mac }

let r_kv r =
  let k = Reader.string r in
  let v = Reader.string r in
  (k, v)

let decode_payload r : Message.payload =
  match Reader.byte r with
  | 0 -> Device_alive { services = Reader.list r r_service }
  | 1 -> Heartbeat
  | 2 ->
    let kind = service_kind_of_tag (Reader.byte r) in
    let query = Reader.string r in
    Discover_request { kind; query }
  | 3 ->
    let provider = Reader.varint r in
    let service = r_service r in
    let query = Reader.string r in
    Discover_response { provider; service; query }
  | 4 ->
    let service = r_service r in
    let pasid = Reader.varint r in
    let auth = Reader.option r r_token in
    let params = Reader.list r r_kv in
    Open_service { service; pasid; auth; params }
  | 5 ->
    let accepted = Reader.bool r in
    let connection = Reader.varint r in
    let shm_bytes = Reader.int64 r in
    let error = Reader.option r (fun r -> error_code_of_tag (Reader.byte r)) in
    Open_response { accepted; connection; shm_bytes; error }
  | 6 -> Close_service { connection = Reader.varint r }
  | 7 ->
    let pasid = Reader.varint r in
    let va = Reader.int64 r in
    let bytes = Reader.int64 r in
    let perm = r_perm r in
    Alloc_request { pasid; va; bytes; perm }
  | 8 ->
    let ok = Reader.bool r in
    let va = Reader.int64 r in
    let bytes = Reader.int64 r in
    let grant = Reader.option r r_token in
    let error = Reader.option r (fun r -> error_code_of_tag (Reader.byte r)) in
    Alloc_response { ok; va; bytes; grant; error }
  | 9 ->
    let device = Reader.varint r in
    let pasid = Reader.varint r in
    let va = Reader.int64 r in
    let pa = Reader.int64 r in
    let bytes = Reader.int64 r in
    let perm = r_perm r in
    let auth = r_token r in
    Map_directive { device; pasid; va; pa; bytes; perm; auth }
  | 10 ->
    let to_device = Reader.varint r in
    let pasid = Reader.varint r in
    let va = Reader.int64 r in
    let bytes = Reader.int64 r in
    let perm = r_perm r in
    let auth = r_token r in
    Grant_request { to_device; pasid; va; bytes; perm; auth }
  | 11 ->
    let pasid = Reader.varint r in
    let va = Reader.int64 r in
    let ok = Reader.bool r in
    Map_complete { pasid; va; ok }
  | 12 ->
    let pasid = Reader.varint r in
    let va = Reader.int64 r in
    let bytes = Reader.int64 r in
    Free_request { pasid; va; bytes }
  | 13 ->
    let device = Reader.varint r in
    let pasid = Reader.varint r in
    let va = Reader.int64 r in
    let bytes = Reader.int64 r in
    let auth = r_token r in
    Unmap_directive { device; pasid; va; bytes; auth }
  | 14 -> Doorbell { queue = Reader.varint r }
  | 15 ->
    let pasid = Reader.varint r in
    let va = Reader.int64 r in
    let detail = Reader.string r in
    Fault_notify { pasid; va; detail }
  | 16 -> Resource_failed { resource = Reader.string r }
  | 17 -> Device_failed { device = Reader.varint r }
  | 18 -> Reset_device
  | 19 -> Reset_resource { resource = Reader.string r }
  | 20 ->
    let image = Reader.string r in
    let bytes = Reader.int64 r in
    Load_image { image; bytes }
  | 21 ->
    let user = Reader.string r in
    let credential = Reader.string r in
    Auth_request { user; credential }
  | 22 ->
    let ok = Reader.bool r in
    let session = Reader.option r r_token in
    Auth_response { ok; session }
  | 23 ->
    let code = error_code_of_tag (Reader.byte r) in
    let detail = Reader.string r in
    Error_msg { code; detail }
  | 24 ->
    let tag = Reader.string r in
    let body = Reader.string r in
    App_message { tag; body }
  | n -> raise (Malformed (Printf.sprintf "bad payload tag %d" n))

let r_dest r : Types.dest =
  match Reader.byte r with
  | 0 -> Device (Reader.varint r)
  | 1 -> Bus
  | 2 -> Broadcast
  | n -> raise (Malformed (Printf.sprintf "bad dest tag %d" n))

let encode (m : Message.t) =
  let w = Writer.create () in
  Emit_buf.message w m;
  Writer.contents w

let encode_into (m : Message.t) view ~pos =
  let w = View_writer.create ~pos view in
  Emit_view.message w m;
  View_writer.pos w - pos

let encoded_size (m : Message.t) =
  let s = Sizer.create () in
  Emit_size.message s m;
  Sizer.size s

let decode s =
  let r = Reader.create s in
  let src = Reader.varint r in
  let dst = r_dest r in
  let corr = Reader.varint r in
  let payload = decode_payload r in
  let deadline_ns =
    if Reader.at_end r then None else Reader.option r Reader.int64
  in
  if not (Reader.at_end r) then raise (Malformed "trailing bytes");
  Message.make ?deadline_ns ~src ~dst ~corr payload

(* Framed form: the plain encoding plus a CRC-32 trailer. The unframed
   codec above is the pinned conformance surface (its byte layout is
   asserted by tests); framing wraps it for channels that want end-to-end
   corruption detection, e.g. under fault injection. *)
let frame body =
  let w = Writer.create () in
  Writer.int64 w (Int64.of_int (Wire.crc32 body));
  body ^ Writer.contents w

let encode_framed m = frame (encode m)

let decode_framed s =
  let n = String.length s in
  if n < 8 then raise (Malformed "framed message too short");
  let body = String.sub s 0 (n - 8) in
  let r = Reader.create (String.sub s (n - 8) 8) in
  let crc = Reader.int64 r in
  if Int64.of_int (Wire.crc32 body) <> crc then
    raise (Malformed "CRC mismatch");
  decode body

(* Typed decode surface for untrusted bytes. Anything a hostile or faulty
   peer puts on a lane must land here, never in the exception-raising
   decoders: a truncated varint, an out-of-range tag or a bad CRC become a
   value the caller can count and NACK, not an exception that unwinds the
   engine's event loop. *)
let result_of_decoder f s =
  match f s with
  | m -> Ok m
  | exception Malformed reason -> Error reason
  | exception Invalid_argument reason -> Error ("invalid: " ^ reason)
  | exception Failure reason -> Error ("failure: " ^ reason)

let decode_result s = result_of_decoder decode s
let decode_framed_result s = result_of_decoder decode_framed s
