(** Encode/decode bus messages to their binary wire form.

    The codec exists so that "protocol support" (§2.2) is a real byte-level
    protocol with a conformance surface: property tests round-trip every
    message constructor, and decoding rejects malformed frames. *)

val encode : Message.t -> string
val decode : string -> Message.t
(** @raise Wire.Malformed on any framing or tag error. The optional
    [deadline_ns] travels as a trailer after the payload; frames from
    before the deadline field (no trailer) decode as deadline-less. *)

val encode_into : Message.t -> Slice.t -> pos:int -> int
(** Encode directly into a caller-provided slice (a DRAM view, a
    virtqueue slot) starting at [pos]; returns the bytes written, which
    equals {!encoded_size}. Byte-identical to {!encode}.
    @raise Wire.Malformed if the message does not fit. *)

val encoded_size : Message.t -> int
(** [encoded_size m] is [String.length (encode m)], computed by running
    the encoder against a byte counter — no buffer is allocated and no
    bytes are materialised. *)

val frame : string -> string
(** Append the 8-byte CRC-32 trailer to arbitrary body bytes. Lets the
    protocol fuzzer build checksum-valid frames around mutated bodies, so
    corruption reaches the decoder instead of dying at the CRC gate. *)

val encode_framed : Message.t -> string
(** [encode m] plus an 8-byte little-endian CRC-32 trailer over the
    encoded bytes. The unframed codec's byte layout is unchanged. *)

val decode_framed : string -> Message.t
(** Verify the CRC trailer, then [decode] the body.
    @raise Wire.Malformed on a checksum mismatch or any framing error. *)

val decode_result : string -> (Message.t, string) result
(** [decode] for untrusted bytes: a truncated frame, out-of-range tag or
    any other malformation is [Error reason], never an exception. Use this
    at every boundary where raw bytes from a device enter the bus. *)

val decode_framed_result : string -> (Message.t, string) result
(** [decode_framed] with the same never-raises contract as
    {!decode_result}; a CRC mismatch is [Error "CRC mismatch"]. *)
