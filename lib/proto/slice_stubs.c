/* memcpy bridges between OCaml strings/bytes and Bigarray byte slices.
   The stdlib has no bytes<->bigarray blit; without these the zero-copy
   data plane would fall back to byte-at-a-time loops. Bounds are checked
   on the OCaml side (Slice). */

#include <string.h>
#include <caml/mlvalues.h>
#include <caml/bigarray.h>

/* (string|bytes) -> src_off -> bigarray -> dst_off -> len -> unit */
CAMLprim value lastcpu_blit_string_to_ba(value src, value src_off, value ba,
                                         value dst_off, value len)
{
  memcpy((char *)Caml_ba_data_val(ba) + Long_val(dst_off),
         Bytes_val(src) + Long_val(src_off), Long_val(len));
  return Val_unit;
}

/* bigarray -> src_off -> bytes -> dst_off -> len -> unit */
CAMLprim value lastcpu_blit_ba_to_bytes(value ba, value src_off, value dst,
                                        value dst_off, value len)
{
  memcpy(Bytes_val(dst) + Long_val(dst_off),
         (char *)Caml_ba_data_val(ba) + Long_val(src_off), Long_val(len));
  return Val_unit;
}

/* CRC-32 (IEEE 802.3, reflected 0xEDB88320), slice-by-8. Bit-identical to
   the table-driven OCaml loop it replaces, roughly an order of magnitude
   faster; the WAL and the NAND ECC model checksum every 4 KiB page, so
   this sits squarely on the storage hot path. */

#include <stdint.h>

static uint32_t crc_tab[8][256];
static int crc_init_done = 0;

static void crc_init(void)
{
  int n, k;
  for (n = 0; n < 256; n++) {
    uint32_t c = (uint32_t)n;
    for (k = 0; k < 8; k++)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    crc_tab[0][n] = c;
  }
  for (n = 0; n < 256; n++) {
    uint32_t c = crc_tab[0][n];
    for (k = 1; k < 8; k++) {
      c = crc_tab[0][c & 0xff] ^ (c >> 8);
      crc_tab[k][n] = c;
    }
  }
  crc_init_done = 1;
}

/* string -> pos -> len -> int (crc in [0, 2^32), fits an OCaml int) */
CAMLprim value lastcpu_crc32(value vs, value vpos, value vlen)
{
  const unsigned char *p;
  long len = Long_val(vlen);
  uint32_t c = 0xFFFFFFFFu;
  if (!crc_init_done) crc_init();
  p = (const unsigned char *)String_val(vs) + Long_val(vpos);
  while (len >= 8) {
    uint32_t lo = (uint32_t)p[0] | ((uint32_t)p[1] << 8)
                | ((uint32_t)p[2] << 16) | ((uint32_t)p[3] << 24);
    uint32_t hi = (uint32_t)p[4] | ((uint32_t)p[5] << 8)
                | ((uint32_t)p[6] << 16) | ((uint32_t)p[7] << 24);
    c ^= lo;
    c = crc_tab[7][c & 0xff] ^ crc_tab[6][(c >> 8) & 0xff]
      ^ crc_tab[5][(c >> 16) & 0xff] ^ crc_tab[4][c >> 24]
      ^ crc_tab[3][hi & 0xff] ^ crc_tab[2][(hi >> 8) & 0xff]
      ^ crc_tab[1][(hi >> 16) & 0xff] ^ crc_tab[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0)
    c = crc_tab[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  return Val_long((long)(c ^ 0xFFFFFFFFu));
}
