type key = int64

type t = {
  issuer : Types.device_id;
  subject : Types.device_id;
  pasid : Types.pasid;
  resource : string;
  base : Types.addr;
  length : int64;
  perm : Types.perm;
  nonce : int64;
  epoch : int;
  mac : int64;
}

(* Keyed FNV-1a over the serialised fields, then a SplitMix-style finaliser
   so single-bit changes diffuse across the whole MAC. *)
let fnv_prime = 0x100000001B3L

let mix_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let mix_int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := mix_byte !h (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done;
  !h

let mix_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix_byte !h (Char.code c)) s;
  !h

let finalize z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let compute_mac ~key t =
  let h = Int64.logxor 0xCBF29CE484222325L key in
  let h = mix_int64 h (Int64.of_int t.issuer) in
  let h = mix_int64 h (Int64.of_int t.subject) in
  let h = mix_int64 h (Int64.of_int t.pasid) in
  let h = mix_string h t.resource in
  let h = mix_int64 h t.base in
  let h = mix_int64 h t.length in
  let perm_bits =
    (if t.perm.Types.read then 1 else 0)
    lor (if t.perm.Types.write then 2 else 0)
    lor if t.perm.Types.exec then 4 else 0
  in
  let h = mix_int64 h (Int64.of_int perm_bits) in
  let h = mix_int64 h t.nonce in
  let h = mix_int64 h (Int64.of_int t.epoch) in
  finalize h

let mint ?(epoch = 0) ~key ~issuer ~subject ~pasid ~resource ~base ~length
    ~perm ~nonce () =
  let t =
    { issuer; subject; pasid; resource; base; length; perm; nonce; epoch;
      mac = 0L }
  in
  { t with mac = compute_mac ~key t }

let verify ~key t = Int64.equal (compute_mac ~key t) t.mac

let pp ppf t =
  Format.fprintf ppf
    "token{issuer=%d subject=%d pasid=%d res=%s base=%a len=%Ld perm=%s \
     epoch=%d}"
    t.issuer t.subject t.pasid t.resource Types.pp_addr t.base t.length
    (Types.perm_to_string t.perm) t.epoch
