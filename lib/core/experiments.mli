(** Experiment harness: every figure and table of EXPERIMENTS.md.

    The paper (a HotOS position paper) publishes no quantitative results;
    each experiment here operationalises one of its claims, comparing the
    CPU-less design against the centralized-CPU baseline where a comparison
    is meaningful. All experiments are deterministic given the seed. *)

type table = {
  id : string;
  title : string;
  claim : string;  (** the paper claim the experiment tests *)
  columns : string list;
  rows : string list list;
  notes : string list;
}

val print_table : Format.formatter -> table -> unit

val f1 : unit -> table
(** Figure 1: the architecture — topology of a booted CPU-less system. *)

val f2 : unit -> table
(** Figure 2: the seven-step KVS initialization sequence, with virtual
    timestamps. *)

val t1 : ?enable_tokens:bool -> unit -> table
(** Control-plane operation latency, CPU-less vs centralized.
    [enable_tokens:false] is the no-capability ablation. *)

val t2 : unit -> table
(** Performance isolation: KVS tail latency under a control-plane-noisy
    neighbour, both designs. *)

val t3 : unit -> table
(** Control-plane scalability: aggregate throughput vs concurrent
    applications. *)

val t4 : unit -> table
(** Failure handling: detection and recovery after a storage-device
    failure, both designs. *)

val t5 : unit -> table
(** Address translation: TLB geometry sweep under a Zipfian working set. *)

val t6 : ?doorbells_via_bus:bool -> unit -> table
(** VIRTIO virtqueue throughput vs queue depth. [doorbells_via_bus:true]
    adds the §2.3 ablation column: notifications conflated onto the
    control bus instead of MSI-style memory writes. *)

val t7 : unit -> table
(** End-to-end KVS under YCSB-like mixes, both designs. *)

val t8 : unit -> table
(** Fault containment: IOMMU faults are delivered to the faulting device
    only; bystander address spaces are unaffected. *)

val t9 : unit -> table
(** Initialization scaling: boot and discovery-storm time vs device count. *)

val t10 : unit -> table
(** FTL characterization: write amplification vs over-provisioning. *)

val t11 : unit -> table
(** Offload crossover: accelerator vs on-device embedded core. *)

val t12 : unit -> table
(** Recovery economics: WAL replay before/after compaction. *)

val t13 : ?seed:int64 -> unit -> table
(** Chaos soak: both designs run the same seeded client workload under an
    identical fault plan (message loss/duplication/corruption, frame
    loss/reordering, NAND read faults, a mid-workload storage-device
    crash→revive window), reporting ops completed, retries, failovers and
    convergence. *)

val chaos_soak : ?seed:int64 -> unit -> System.t
(** Run the CPU-less half of {!t13} and return the soaked system; callers
    snapshot its telemetry registry. Same seed ⇒ byte-identical snapshot
    (the CI determinism job diffs two runs). *)

val t14 : ?seed:int64 -> unit -> table
(** Overload probe: an open-loop warm→pulse→recover load replayed on both
    designs with the overload guards off and on. Guards off, the pulse's
    backlog plus naive client retransmits keep post-pulse goodput
    collapsed (metastable failure); guards on (bounded queues, admission
    control, E_busy backpressure, circuit breaker, EAGAIN run queues) the
    pulse is shed and recovery goodput returns to the warm baseline. *)

val overload_soak : ?seed:int64 -> unit -> System.t
(** Run the guarded CPU-less half of {!t14} and return the system; callers
    snapshot its telemetry registry (the overload CI determinism job
    diffs two runs). *)

(** {2 T15: temporal decoupling} *)

type t15_result = {
  t15_events : int;  (** events executed, summed over shards *)
  t15_elapsed : int64;  (** max shard virtual clock at drain *)
  t15_digest : int64;
      (** per-shard metrics digests combined in shard order — THE value the
          determinism contract pins: independent of lane count *)
  t15_boundary : int;  (** cross-shard messages delivered at quantum edges *)
  t15_windows : int;  (** rendezvous windows executed *)
  t15_run_seconds : float;
      (** wall time of the coupled soak phase alone (setup excluded),
          measured with the caller-injected [clock]; [0.] without one *)
  t15_systems : System.t array;
}

val t15_soak :
  ?shards:int ->
  ?quantum:int64 ->
  ?tie:Lastcpu_sim.Engine.tie_break ->
  ?sanitize:bool ->
  ?clock:(unit -> float) ->
  seed:int64 ->
  unit ->
  t15_result
(** The multi-shard soak: a fixed ring of four device clusters (full
    Systems on their own engines), coupled with {!Lastcpu_sim.Temporal} +
    {!Lastcpu_bus.Shardlink}; each shard runs a local KVS closed loop
    while churning alloc/free pairs against the next shard's memory
    controller across the quantum boundary. [shards] (default 1) is the
    number of execution lanes (Domains) only — for a fixed (seed,
    [quantum]) the result is bit-identical whatever its value. [quantum]
    defaults to the lookahead (50 us). *)

val t15 : ?shards:int -> ?quantum:int64 -> ?seed:int64 -> unit -> table
(** {!t15_soak} rendered as a table whose every cell is a pure function of
    (seed, quantum) — CI diffs the output of [--shards 1] vs [--shards 4]
    runs verbatim. *)

(** {2 T16: crash-survivable simulation} *)

type t16_result = {
  t16_digest : int64;
      (** per-shard metrics digests combined in shard order — THE value the
          crash-survivability contract pins: equal between an
          uninterrupted run and a killed-and-resumed run *)
  t16_events : int;  (** events executed, summed over shards *)
  t16_elapsed : int64;  (** max shard virtual clock at drain *)
  t16_segments_run : int;  (** segments executed by THIS process *)
  t16_restored : Lastcpu_sim.Snapshot.generation option;
      (** [Some g] when this run resumed from a snapshot; [g] says whether
          the primary file or the previous-generation fallback restored *)
  t16_systems : System.t array;
}

val t16_soak :
  ?lanes:int ->
  ?tie:Lastcpu_sim.Engine.tie_break ->
  ?sanitize:bool ->
  ?snapshot_path:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?stop_after:int ->
  ?torn_final:bool ->
  seed:int64 ->
  unit ->
  t16_result
(** The t15 ring run as checkpointed segments. With [snapshot_path] a
    whole-machine snapshot ({!Checkpoint.save}) is written after every
    [checkpoint_every]-th segment boundary (a quiescent quantum edge).
    [stop_after:b] abandons the run right after boundary [b]'s checkpoint
    — the in-process stand-in for a kill; with [torn_final] that last
    checkpoint is written deliberately truncated (a kill mid-checkpoint).
    [resume] rebuilds nothing differently: the identical topology is
    built, then {!Checkpoint.restore} overlays the snapshot (falling back
    to the previous generation when the primary is torn) and the loop
    continues from the restored segment counter. [lanes] is the
    execution-lane count only; results are lane-independent. *)

val t16_kill_boundary : int
(** Segment boundary after which the kill leg of {!t16} dies (3). *)

val t16 : ?lanes:int -> ?seed:int64 -> unit -> table
(** The full kill-resume cycle in one table: an uninterrupted run, a run
    killed mid-checkpoint at boundary {!t16_kill_boundary} (leaving a torn
    primary), and a resumed run that must fall back to the previous
    generation and still finish bit-identical. Every cell is a pure
    function of the seed — CI diffs [--shards 1] vs [--shards 4] output
    verbatim. *)

(** {2 T17: rogue-device containment soak} *)

type t17_result = {
  t17_digest : int64;
      (** metrics digest under the t17 seed — pinned equal between the
          uninterrupted run and the killed-and-resumed run *)
  t17_events : int;
  t17_elapsed : int64;
  t17_segments_run : int;  (** segments executed by THIS process *)
  t17_restored : Lastcpu_sim.Snapshot.generation option;
  t17_quarantines : int;
  t17_revocations : int;
  t17_stale : int;  (** pre-revocation tokens NACKed on the epoch check *)
  t17_fenced : int;  (** frames dropped at the quarantine fence *)
  t17_malformed : int;
  t17_failovers : int;  (** KV provider failovers (PR-2 path) *)
  t17_rogue_trust : string;  (** rogue's trust state at drain *)
  t17_system : System.t;
}

val t17_soak :
  ?snapshot_path:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?stop_after:int ->
  ?torn_final:bool ->
  seed:int64 ->
  unit ->
  t17_result
(** Six checkpointed segments on one engine: warm-up; the rogue NIC's
    barrage (DMA overreach, forged MAC, a same-corr privileged replay
    storm, a spoofed source, malformed raw frames) ending in quarantine
    and revocation; a KV provider crash and failover; a no-silent-resurrection
    revive (bare heartbeat ignored, explicit re-announce honored); parole
    re-admission with a stale pre-revocation token replay; and recovery.
    Checkpointing stops after boundary {!t17_kill_boundary} because
    [Kv_app.save_state] refuses once the app has failed over. The soak
    asserts each segment's containment postcondition and raises
    [Invalid_argument] on any violation. *)

val t17_kill_boundary : int
(** Boundary where the kill leg of {!t17} dies mid-checkpoint (2) — the
    resume leg must fall back a generation and re-run the barrage. *)

val t17 : ?seed:int64 -> unit -> table
(** Uninterrupted, killed-at-torn-checkpoint, and resumed runs of
    {!t17_soak} in one table; the verdict row pins bit-identical digests,
    events and virtual clocks. *)

(** {2 Same-tick ordering sanitizer} *)

type sanitize_report = {
  san_exp : string;
  san_perturbation : string;  (** ["lifo"] or ["salted"] *)
  san_multi_event_ticks : int;  (** journalled ticks in the reference run *)
  san_divergence : Lastcpu_sim.Sanitizer.divergence option;
      (** [None] = no ordering race found under this perturbation *)
}

val sanitize_experiments : string list
(** Experiment ids the sanitizer can drive
    (["t1"; "t13"; "t14"; "t15"]). *)

val soaked_system : exp:string -> seed:int64 -> System.t
(** Build and run experiment [exp] ("t1", "t13" or "t14") to completion
    with the given seed, returning the soaked system. The bench reads
    events-executed and the metrics registry off it. *)

val metrics_digest : exp:string -> seed:int64 -> int64
(** Build and run experiment [exp] ("t1", "t13", "t14" or "t15") with the
    given seed and return the {!Lastcpu_sim.Metrics.digest} of its
    telemetry registry ("t15": the shard-ordered combination of per-shard
    digests, [t15_digest]). This is the golden value the
    determinism-equivalence test pins: hot-path optimisations must keep it
    bit-identical. *)

val sanitize_journal :
  exp:string ->
  seed:int64 ->
  tie:Lastcpu_sim.Heap.tie_break ->
  Lastcpu_sim.Sanitizer.tick list
(** The full sanitizer journal of one run of [exp] under the given
    tie-break (the raw material {!sanitize} compares; exposed so the
    golden determinism test can pin journals, labels included). *)

val sanitize : ?seed:int64 -> exp:string -> unit -> sanitize_report list
(** Run experiment [exp] once under the contractual FIFO same-tick order
    and once per perturbed tie-break (LIFO and seed-salted), journalling an
    observable-state digest after every multi-event tick. A report's
    [san_divergence] names the first tick where the perturbed run's
    observable state differs — a same-tick ordering race, with the
    colliding events' labels. Raises [Invalid_argument] for unknown [exp].

    "t15" is multi-shard and its journal samples the trajectory at
    collisions of independent streams, which legitimate tie-break drift
    dissolves, so the FIFO-vs-perturbed diff is replaced by the strict t15
    contracts: the final digest must be tie-invariant, and under each
    perturbed tie the shard-ordered journal must be bit-identical between
    one and four execution lanes. *)

val all : unit -> table list
(** Every figure and table, in order. *)

val by_id : ?shards:int -> string -> (unit -> table) option
(** Look up an experiment by id ("f1", "f2", "t1", "t1-notokens",
    "t2".."t15"). [shards] (default 1) sets the execution-lane count for
    "t15" (ignored by every other experiment — their tables are
    single-engine runs). *)
