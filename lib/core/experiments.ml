module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Engine = Lastcpu_sim.Engine
module Costs = Lastcpu_sim.Costs
module Stats = Lastcpu_sim.Stats
module Metrics = Lastcpu_sim.Metrics
module Rng = Lastcpu_sim.Rng
module Station = Lastcpu_sim.Station
module Trace = Lastcpu_sim.Trace
module Sysbus = Lastcpu_bus.Sysbus
module Device = Lastcpu_device.Device
module Iommu = Lastcpu_iommu.Iommu
module Layout = Lastcpu_mem.Layout
module Netsim = Lastcpu_net.Netsim
module Fs = Lastcpu_fs.Fs
module Memctl = Lastcpu_devices.Memctl
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Smart_nic = Lastcpu_devices.Smart_nic
module File_client = Lastcpu_devices.File_client
module Kv_app = Lastcpu_kv.Kv_app
module Kv_proto = Lastcpu_kv.Kv_proto
module Store = Lastcpu_kv.Store
module Kernel = Lastcpu_baseline.Kernel
module Central = Lastcpu_baseline.Central
module Faults = Lastcpu_sim.Faults
module Fuzz = Lastcpu_sim.Fuzz
module Codec = Lastcpu_proto.Codec
module Token = Lastcpu_proto.Token
module Dma = Lastcpu_virtio.Dma
module Sanitizer = Lastcpu_sim.Sanitizer
module Ownership = Lastcpu_sim.Ownership
module Temporal = Lastcpu_sim.Temporal
module Parallel = Lastcpu_sim.Parallel
module Shardlink = Lastcpu_bus.Shardlink
module Snapshot = Lastcpu_sim.Snapshot

type table = {
  id : string;
  title : string;
  claim : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let print_table ppf t =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun w row ->
            match List.nth_opt row i with
            | Some cell -> max w (String.length cell)
            | None -> w)
          (String.length col) t.rows)
      t.columns
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_row cells =
    let padded = List.map2 (fun c w -> pad c w) cells widths in
    Format.fprintf ppf "  | %s |@." (String.concat " | " padded)
  in
  Format.fprintf ppf "@.%s — %s@." (String.uppercase_ascii t.id) t.title;
  Format.fprintf ppf "claim: %s@." t.claim;
  render_row t.columns;
  Format.fprintf ppf "  |%s|@."
    (String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter render_row t.rows;
  List.iter (fun n -> Format.fprintf ppf "  note: %s@." n) t.notes

(* --- helpers ---------------------------------------------------------------- *)

let ns f = Printf.sprintf "%.0f" f
let ns64 v = Printf.sprintf "%Ld" v
let ratio a b = if a <= 0. then "-" else Printf.sprintf "%.1fx" (b /. a)

(* Run [f i k] for i in [0, n), sequentially (each step's continuation
   triggers the next); [k_done] runs after the last. *)
let sequentially n f k_done =
  let rec go i = if i = n then k_done () else f i (fun () -> go (i + 1)) in
  go 0

(* Experiment tallies live in the engine's telemetry registry, under the
   "experiment" actor, alongside the subsystem counters they are compared
   against; [lat] is a {!Metrics.histogram} handle. *)
let measure engine lat op k =
  let t0 = Engine.now engine in
  op (fun () ->
      Metrics.observe lat (Int64.to_float (Int64.sub (Engine.now engine) t0));
      k ())

let experiment_hist engine name =
  Metrics.histogram (Engine.metrics engine) ~actor:"experiment" ~name

(* --- F1: architecture -------------------------------------------------------- *)

let f1 () =
  let spec =
    {
      System.default_spec with
      with_auth = true;
      with_console = true;
      nic_count = 2;
      accel_count = 1;
    }
  in
  let system = System.build ~spec () in
  (match System.boot system with
  | Ok () -> ()
  | Error e -> invalid_arg ("f1: " ^ e));
  let lines = String.split_on_char '\n' (System.topology system) in
  {
    id = "f1";
    title = "Proposed architecture without a CPU (topology of a booted system)";
    claim = "all OS functionality lives in self-managing devices + the system bus";
    columns = [ "topology" ];
    rows = List.filter_map (fun l -> if l = "" then None else Some [ l ]) lines;
    notes = [];
  }

(* --- F2: KVS initialization sequence ----------------------------------------- *)

let f2 () =
  match Scenario_kvs.run () with
  | Error e -> invalid_arg ("f2: " ^ e)
  | Ok outcome ->
    let steps = Scenario_kvs.figure2_steps outcome in
    {
      id = "f2";
      title = "KV-store application initialization sequence (paper Figure 2)";
      claim = "the seven-step bring-up works with no CPU involved";
      columns = [ "step"; "virtual time (ns)"; "message"; "description" ];
      rows =
        List.map
          (fun (s : Scenario_kvs.step) ->
            [
              string_of_int s.Scenario_kvs.n;
              ns64 s.Scenario_kvs.at_ns;
              s.Scenario_kvs.kind;
              s.Scenario_kvs.description;
            ])
          steps;
      notes =
        [
          Printf.sprintf "%d/7 steps observed; KVS smoke operations passed"
            (List.length steps);
        ];
    }

(* --- T1: control-plane operation latency -------------------------------------- *)

let iters_t1 = 50

let t1_decentralized ?(seed = 42L) ?(tie = Engine.Fifo) ?(sanitize = false)
    ~enable_tokens () =
  let spec = { System.default_spec with enable_tokens; seed; tie; sanitize } in
  let system = System.build ~spec () in
  (match System.boot system with
  | Ok () -> ()
  | Error e -> invalid_arg ("t1: " ^ e));
  let engine = System.engine system in
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let ssd_id = Smart_ssd.id (System.ssd system 0) in
  let pasid = System.fresh_pasid system in
  let results = Hashtbl.create 8 in
  let record name =
    let h = experiment_hist engine name in
    Hashtbl.replace results name h;
    h
  in
  let service =
    match
      List.find_opt
        (fun (s : Message.service_desc) -> s.Message.kind = Types.File_service)
        (Sysbus.services_of (System.bus system) ssd_id)
    with
    | Some s -> s
    | None -> invalid_arg "t1: ssd has no file service"
  in
  let discover_stats = record "discover" in
  let open_stats = record "open" in
  let alloc_stats = record "alloc+map" in
  let grant_stats = record "grant" in
  let free_stats = record "free" in
  let tokens = Array.make iters_t1 None in
  let va i = Int64.add 0x5000_0000L (Int64.of_int (i * 0x10000)) in
  let done_ = ref false in
  sequentially iters_t1
    (fun _ k ->
      measure engine discover_stats
        (fun k' ->
          Device.discover dev ~kind:Types.File_service ~query:"" (fun _ -> k' ()))
        k)
    (fun () ->
      sequentially iters_t1
        (fun _ k ->
          measure engine open_stats
            (fun k' ->
              Device.open_service dev ~provider:ssd_id ~service ~pasid
                ~params:[ ("user", "bench") ] (fun _ -> k' ()))
            k)
        (fun () ->
          sequentially iters_t1
            (fun i k ->
              measure engine alloc_stats
                (fun k' ->
                  Device.alloc dev ~memctl:mc ~pasid ~va:(va i) ~bytes:16384L
                    ~perm:Types.perm_rw (fun res ->
                      (match res with
                      | Ok token -> tokens.(i) <- Some token
                      | Error _ -> ());
                      k' ()))
                k)
            (fun () ->
              sequentially iters_t1
                (fun i k ->
                  match tokens.(i) with
                  | None -> k ()
                  | Some token ->
                    measure engine grant_stats
                      (fun k' ->
                        Device.grant dev ~to_device:ssd_id ~pasid ~va:(va i)
                          ~bytes:16384L ~perm:Types.perm_rw ~auth:token
                          (fun _ -> k' ()))
                      k)
                (fun () ->
                  sequentially iters_t1
                    (fun i k ->
                      measure engine free_stats
                        (fun k' ->
                          Device.free dev ~memctl:mc ~pasid ~va:(va i)
                            ~bytes:16384L (fun _ -> k' ()))
                        k)
                    (fun () -> done_ := true)))));
  System.run_until_idle system;
  assert !done_;
  (system, results)

let t1_centralized () =
  let engine = Engine.create () in
  let central = Central.create engine () in
  (match Fs.create (Central.fs central) ~user:"root" "/target" with
  | Ok () -> ()
  | Error e -> invalid_arg (Fs.error_to_string e));
  let results = Hashtbl.create 8 in
  let record name =
    let h = experiment_hist engine name in
    Hashtbl.replace results name h;
    h
  in
  let discover_stats = record "discover" in
  let open_stats = record "open" in
  let mmap_stats = record "alloc+map" in
  let grant_stats = record "grant" in
  let free_stats = record "free" in
  let kern = Central.kernel central in
  let done_ = ref false in
  sequentially iters_t1
    (fun _ k ->
      measure engine discover_stats
        (fun k' -> Central.discover central ~query:"" (fun () -> k' ()))
        k)
    (fun () ->
      sequentially iters_t1
        (fun _ k ->
          measure engine open_stats
            (fun k' ->
              Central.open_file central ~path:"/target" ~user:"bench" (fun _ ->
                  k' ()))
            k)
        (fun () ->
          sequentially iters_t1
            (fun _ k ->
              measure engine mmap_stats
                (fun k' -> Central.setup_shared central ~bytes:16384L (fun () -> k' ()))
                k)
            (fun () ->
              sequentially iters_t1
                (fun _ k ->
                  measure engine grant_stats
                    (fun k' -> Kernel.syscall kern ~name:"grant" (fun () -> k' ()))
                    k)
                (fun () ->
                  sequentially iters_t1
                    (fun _ k ->
                      measure engine free_stats
                        (fun k' ->
                          Central.teardown_shared central (fun () -> k' ()))
                        k)
                    (fun () -> done_ := true)))));
  Engine.run engine;
  assert !done_;
  results

let t1 ?(enable_tokens = true) () =
  let _, dec = t1_decentralized ~enable_tokens () in
  let cen = t1_centralized () in
  let ops = [ "discover"; "open"; "alloc+map"; "grant"; "free" ] in
  let rows =
    List.map
      (fun op ->
        let d = Stats.Summary.mean (Metrics.summary (Hashtbl.find dec op))
        and c = Stats.Summary.mean (Metrics.summary (Hashtbl.find cen op)) in
        [ op; ns d; ns c; ratio d c ])
      ops
  in
  {
    id = "t1";
    title =
      Printf.sprintf "control-plane operation latency (capability tokens %s)"
        (if enable_tokens then "on" else "off");
    claim =
      "control tasks boil down to simple operations handled without a CPU \
       (paper S1/S2)";
    columns = [ "operation"; "CPU-less (ns)"; "centralized (ns)"; "centralized/CPU-less" ];
    rows;
    notes =
      [
        Printf.sprintf "%d iterations per op; mean one-way completion latency"
          iters_t1;
        "centralized = syscall + kernel service on one CPU core (+ device IRQ \
         where applicable)";
      ];
  }

(* --- KVS workload machinery (used by T2 and T7) ------------------------------- *)

(* A closed-loop remote client on the simulated network. Client endpoints
   are named per-network ("client-<endpoint count>"): a process-global
   counter would be shared mutable state across the parallel runner's
   domains. *)
let fresh_client net =
  Netsim.endpoint net
    ~name:(Printf.sprintf "client-%d" (Netsim.endpoint_count net))

let kv_closed_loop_client system ~app_addr ~ops ~think_ns ~make_op ~lat ~on_done =
  let engine = System.engine system in
  let net = System.net system in
  let ep = fresh_client net in
  let outstanding = Hashtbl.create 4 in
  let sent = ref 0 in
  let completed = ref 0 in
  let send_next () =
    if !sent < ops then begin
      let corr = !sent in
      incr sent;
      Hashtbl.replace outstanding corr (Engine.now engine);
      Netsim.send ep ~dst:app_addr
        (Kv_proto.encode_request { Kv_proto.corr; op = make_op corr })
    end
  in
  Netsim.set_receiver ep (fun ~src:_ frame ->
      match Kv_proto.decode_response frame with
      | Error _ -> ()
      | Ok { Kv_proto.corr; _ } -> (
        match Hashtbl.find_opt outstanding corr with
        | None -> ()
        | Some t0 ->
          Hashtbl.remove outstanding corr;
          Metrics.observe lat (Int64.to_float (Int64.sub (Engine.now engine) t0));
          incr completed;
          if !completed = ops then on_done ()
          else if think_ns > 0L then Engine.schedule engine ~delay:think_ns send_next
          else send_next ()));
  send_next ()

let preload_store store ~keys ~value_bytes k_done =
  let value = String.make value_bytes 'v' in
  sequentially keys
    (fun i k ->
      Store.put store ~key:(Printf.sprintf "key-%06d" i) ~value (fun _ -> k ()))
    k_done

(* --- T2: performance isolation ------------------------------------------------ *)

let t2_ops = 300
let t2_keys = 128

(* Decentralized: measure KVS get/put latency with and without a
   control-plane-noisy neighbour (alloc/free closed loop on a second NIC). *)
let t2_decentralized ~noisy =
  let spec = { System.default_spec with nic_count = 2 } in
  match Scenario_kvs.run ~spec () with
  | Error e -> invalid_arg ("t2: " ^ e)
  | Ok outcome ->
    let system = outcome.Scenario_kvs.system in
    let app = outcome.Scenario_kvs.app in
    let engine = System.engine system in
    let rng = Engine.fork_rng engine in
    (* Preload. *)
    let loaded = ref false in
    preload_store (Kv_app.store app) ~keys:t2_keys ~value_bytes:64 (fun () ->
        loaded := true);
    System.run_until_idle system;
    assert !loaded;
    (* Noise: four closed alloc/free loops from nic1 (a control-plane-heavy
       tenant churning mappings as fast as the system lets it). *)
    let stop = ref false in
    if noisy then begin
      let noise_dev = Smart_nic.device (System.nic system 1) in
      let mc = Memctl.id (System.memctl system) in
      for j = 0 to 3 do
        let noise_pasid = System.fresh_pasid system in
        let va = Int64.add 0x7000_0000L (Int64.of_int (j * 0x100000)) in
        let rec noise_loop () =
          if not !stop then
            Device.alloc noise_dev ~memctl:mc ~pasid:noise_pasid ~va
              ~bytes:4096L ~perm:Types.perm_rw (fun _ ->
                Device.free noise_dev ~memctl:mc ~pasid:noise_pasid ~va
                  ~bytes:4096L (fun _ -> noise_loop ()))
        in
        noise_loop ()
      done
    end;
    let lat = experiment_hist engine "kv_get" in
    let finished = ref false in
    let make_op _ =
      (* Pure gets: isolates coordination latency from NAND program time,
         which would otherwise dominate p99 identically in both designs. *)
      Kv_proto.Get
        (Printf.sprintf "key-%06d" (Rng.zipf rng ~n:t2_keys ~theta:0.99))
    in
    kv_closed_loop_client system
      ~app_addr:(Smart_nic.endpoint_address (System.nic system 0))
      ~ops:t2_ops ~think_ns:0L ~make_op ~lat
      ~on_done:(fun () ->
        finished := true;
        stop := true);
    System.run_until_idle system;
    assert !finished;
    Metrics.report lat

(* Centralized: same store logic; network ops and noise share the CPU. *)
let t2_centralized ~noisy =
  let engine = Engine.create () in
  let central = Central.create engine () in
  let rng = Engine.fork_rng engine in
  let store = Store.create (Central.store_backend central ~path:"/kv.log" ~user:"kvs") in
  let loaded = ref false in
  preload_store store ~keys:t2_keys ~value_bytes:64 (fun () -> loaded := true);
  Engine.run engine;
  assert !loaded;
  let stop = ref false in
  if noisy then begin
    let kern = Central.kernel central in
    for _ = 1 to 4 do
      let rec noise_loop () =
        if not !stop then
          Kernel.syscall kern ~name:"mmap" (fun () ->
              Kernel.syscall kern ~name:"munmap" (fun () -> noise_loop ()))
      in
      noise_loop ()
    done
  end;
  let lat = experiment_hist engine "kv_get" in
  let finished = ref false in
  let completed = ref 0 in
  let rec next i =
    if i = t2_ops then ()
    else begin
      let t0 = Engine.now engine in
      let key = Printf.sprintf "key-%06d" (Rng.zipf rng ~n:t2_keys ~theta:0.99) in
      let work k = Store.get store key (fun _ -> k ()) in
      Central.kv_network_op central work (fun () ->
          Metrics.observe lat (Int64.to_float (Int64.sub (Engine.now engine) t0));
          incr completed;
          if !completed = t2_ops then begin
            finished := true;
            stop := true
          end
          else next (i + 1))
    end
  in
  next 0;
  Engine.run engine;
  assert !finished;
  Metrics.report lat

let t2 () =
  let d_quiet = t2_decentralized ~noisy:false in
  let d_noisy = t2_decentralized ~noisy:true in
  let c_quiet = t2_centralized ~noisy:false in
  let c_noisy = t2_centralized ~noisy:true in
  let row design (quiet : Stats.latency_report) (noisy : Stats.latency_report) =
    [
      design;
      ns quiet.Stats.p50;
      ns quiet.Stats.p99;
      ns noisy.Stats.p50;
      ns noisy.Stats.p99;
      Printf.sprintf "%.2fx" (noisy.Stats.p99 /. quiet.Stats.p99);
    ]
  in
  {
    id = "t2";
    title = "performance isolation under a control-plane-noisy neighbour";
    claim = "decentralized control can improve performance isolation (paper S1)";
    columns =
      [
        "design";
        "quiet p50 (ns)";
        "quiet p99 (ns)";
        "noisy p50 (ns)";
        "noisy p99 (ns)";
        "p99 inflation";
      ];
    rows =
      [
        row "CPU-less" d_quiet d_noisy;
        row "centralized" c_quiet c_noisy;
      ];
    notes =
      [
        Printf.sprintf
          "%d KVS gets (zipf 0.99 over %d keys), closed loop; measured tenant \
           is read-only so coordination latency is visible"
          t2_ops t2_keys;
        "noise = closed-loop memory-mapping churn (alloc/free vs mmap/munmap)";
      ];
  }

(* --- T3: control-plane scalability --------------------------------------------- *)

let t3_duration = 20_000_000L (* 20 ms virtual *)

let t3_decentralized ?(memctls = 1) ?(lanes = 1) ~apps () =
  let spec =
    {
      System.default_spec with
      nic_count = apps;
      memctl_count = memctls;
      bus_lanes = lanes;
    }
  in
  let system = System.build ~spec () in
  (match System.boot system with
  | Ok () -> ()
  | Error e -> invalid_arg ("t3: " ^ e));
  let mcs = Array.of_list (List.map Memctl.id (System.memctls system)) in
  let completed = ref 0 in
  let stop = ref false in
  for i = 0 to apps - 1 do
    let dev = Smart_nic.device (System.nic system i) in
    let mc = mcs.(i mod Array.length mcs) in
    let pasid = System.fresh_pasid system in
    let va = Int64.add 0x6000_0000L (Int64.of_int (i * 0x100000)) in
    let rec loop () =
      if not !stop then
        Device.alloc dev ~memctl:mc ~pasid ~va ~bytes:4096L ~perm:Types.perm_rw
          (fun _ ->
            Device.free dev ~memctl:mc ~pasid ~va ~bytes:4096L (fun _ ->
                incr completed;
                loop ()))
    in
    loop ()
  done;
  let engine = System.engine system in
  let t0 = Engine.now engine in
  Engine.run ~until:(Int64.add t0 t3_duration) engine;
  stop := true;
  let elapsed = Int64.to_float (Int64.sub (Engine.now engine) t0) in
  float_of_int !completed /. (elapsed *. 1e-9)

let t3_centralized ?(cores = 1) ~apps () =
  let engine = Engine.create () in
  let kern = Kernel.create engine ~cores () in
  let completed = ref 0 in
  let stop = ref false in
  for _ = 1 to apps do
    let rec loop () =
      if not !stop then
        Kernel.syscall kern ~name:"mmap" (fun () ->
            Kernel.syscall kern ~name:"munmap" (fun () ->
                incr completed;
                loop ()))
    in
    loop ()
  done;
  Engine.run ~until:t3_duration engine;
  stop := true;
  let elapsed = Int64.to_float (Engine.now engine) in
  float_of_int !completed /. (elapsed *. 1e-9)

let t3 () =
  let app_counts = [ 1; 2; 4; 8; 16; 32 ] in
  let rows =
    List.map
      (fun apps ->
        let d1 = t3_decentralized ~apps () in
        let d4 = t3_decentralized ~memctls:4 ~lanes:4 ~apps () in
        let c1 = t3_centralized ~apps () in
        let c4 = t3_centralized ~cores:4 ~apps () in
        [
          string_of_int apps;
          Printf.sprintf "%.0f" d1;
          Printf.sprintf "%.0f" d4;
          Printf.sprintf "%.0f" c1;
          Printf.sprintf "%.0f" c4;
          Printf.sprintf "%.1fx" (d4 /. c1);
        ])
      app_counts
  in
  {
    id = "t3";
    title = "control-plane scalability: map/unmap pairs per second vs apps";
    claim =
      "decentralized control is an important factor in building a scalable \
       system (paper S1)";
    columns =
      [
        "apps";
        "CPU-less 1 ctl/lane";
        "CPU-less 4 ctl/lane";
        "centralized 1 core";
        "centralized 4 cores";
        "4ctl / 1core";
      ];
    rows;
    notes =
      [
        "closed-loop map+unmap pairs/s; the CPU-less plateau is the shared \
         bus lane + memory controller, so a 4-lane control fabric with 4 \
         controllers raises it, as 4 cores raise the baseline's";
      ];
  }

(* --- T4: failure handling -------------------------------------------------------- *)

let t4_decentralized () =
  match Scenario_kvs.run () with
  | Error e -> invalid_arg ("t4: " ^ e)
  | Ok outcome ->
    let system = outcome.Scenario_kvs.system in
    let engine = System.engine system in
    let bus = System.bus system in
    let ssd = System.ssd system 0 in
    let nic_dev = Smart_nic.device (System.nic system 0) in
    (* Observe Device_failed at the NIC. *)
    let detected_at = ref None in
    Device.set_app_handler nic_dev (fun msg ->
        match msg.Message.payload with
        | Message.Device_failed _ when !detected_at = None ->
          detected_at := Some (Engine.now engine)
        | _ -> ());
    let routed () =
      Metrics.counter_read (Engine.metrics engine) ~actor:(Sysbus.actor bus)
        ~name:"routed"
    in
    let messages_before = routed () in
    let t_fail = Engine.now engine in
    Sysbus.fail_device bus (Smart_ssd.id ssd);
    System.run_until_idle system;
    let detection =
      match !detected_at with
      | Some t -> Int64.sub t t_fail
      | None -> -1L
    in
    (* Recovery: revive the device, re-announce, re-run the Figure-2
       sequence, recover the store from the surviving log. *)
    let t_revive = Engine.now engine in
    Sysbus.revive_device bus (Smart_ssd.id ssd);
    Device.reannounce (Smart_ssd.device ssd);
    let recovered = ref None in
    let pasid = System.fresh_pasid system in
    File_client.connect nic_dev
      ~memctl:(Memctl.id (System.memctl system))
      ~pasid ~shm_va:0x9000_0000L ~user:"kvs" ~path_hint:"/kv/data.log"
      (fun res ->
        match res with
        | Error e -> invalid_arg ("t4 reconnect: " ^ e)
        | Ok fc ->
          Lastcpu_kv.File_backend.create fc ~path:"/kv/data.log" (fun res ->
              match res with
              | Error e -> invalid_arg ("t4 backend: " ^ e)
              | Ok fb ->
                let store = Store.create (Lastcpu_kv.File_backend.backend fb) in
                Store.recover store (fun res ->
                    match res with
                    | Error e -> invalid_arg ("t4 recover: " ^ e)
                    | Ok n -> recovered := Some (n, Engine.now engine))));
    System.run_until_idle system;
    (match !recovered with
    | None -> invalid_arg "t4: recovery never completed"
    | Some (records, t_done) ->
      let messages_after = routed () in
      ( detection,
        Int64.sub t_done t_revive,
        records,
        messages_after - messages_before ))

let t4_centralized () =
  (* The kernel learns of the failure via an interrupt, resets the device
     (device-side reset latency), re-opens and re-reads the log via
     syscalls. Same storage implementation, so the same records surface. *)
  let engine = Engine.create () in
  let central = Central.create engine () in
  let store = Store.create (Central.store_backend central ~path:"/kv.log" ~user:"kvs") in
  let loaded = ref false in
  sequentially 3
    (fun i k ->
      Store.put store ~key:(Printf.sprintf "smoke-%d" (i + 1))
        ~value:"value" (fun _ -> k ()))
    (fun () -> loaded := true);
  Engine.run engine;
  assert !loaded;
  let kern = Central.kernel central in
  let t_fail = Engine.now engine in
  let detected = ref 0L in
  Kernel.interrupt kern ~name:"device-failed" (fun () ->
      detected := Int64.sub (Engine.now engine) t_fail);
  Engine.run engine;
  let t_revive = Engine.now engine in
  let finished = ref None in
  Kernel.syscall kern ~name:"reset-device" (fun () ->
      Central.open_file central ~path:"/kv.log" ~user:"kvs" (fun _ ->
          Store.recover store (fun res ->
              match res with
              | Error e -> invalid_arg ("t4 central: " ^ e)
              | Ok n -> finished := Some (n, Engine.now engine))));
  Engine.run engine;
  match !finished with
  | None -> invalid_arg "t4 central: never finished"
  | Some (records, t_done) ->
    (!detected, Int64.sub t_done t_revive, records, Kernel.syscalls kern)

let t4 () =
  let d_detect, d_recover, d_records, d_msgs = t4_decentralized () in
  let c_detect, c_recover, c_records, c_ops = t4_centralized () in
  {
    id = "t4";
    title = "storage-device failure: detection and recovery";
    claim = "the failure model is not worse than with a centralized CPU (paper S4)";
    columns =
      [ "design"; "detection (ns)"; "recovery (ns)"; "records recovered"; "control msgs/ops" ];
    rows =
      [
        [
          "CPU-less";
          ns64 d_detect;
          ns64 d_recover;
          string_of_int d_records;
          string_of_int d_msgs;
        ];
        [
          "centralized";
          ns64 c_detect;
          ns64 c_recover;
          string_of_int c_records;
          string_of_int c_ops;
        ];
      ];
    notes =
      [
        "CPU-less: bus broadcasts Device_failed; consumers re-run the Figure-2 \
         sequence against the revived device; the WAL survives on flash";
        "recovery includes re-discovery, re-open, re-map, queue re-attach and \
         full log replay";
      ];
  }

(* --- T5: address translation / TLB sweep ------------------------------------------ *)

let t5 () =
  let costs = Costs.default in
  let pages = 1024 in
  let accesses = 200_000 in
  let configs =
    [
      ("no TLB", None);
      ("16 sets x 2 ways (32)", Some (16, 2));
      ("64 sets x 4 ways (256)", Some (64, 4));
      ("256 sets x 8 ways (2048)", Some (256, 8));
    ]
  in
  let rows =
    List.map
      (fun (label, geometry) ->
        let iommu =
          match geometry with
          | None -> Iommu.create ~no_tlb:true ()
          | Some (sets, ways) -> Iommu.create ~tlb_sets:sets ~tlb_ways:ways ()
        in
        (* One mapped region of [pages] pages. *)
        for i = 0 to pages - 1 do
          let off = Int64.mul (Int64.of_int i) Layout.page_size in
          match
            Iommu.map iommu ~pasid:1 ~va:(Int64.add 0x1000_0000L off)
              ~pa:(Int64.add 0x8000_0000L off) ~bytes:Layout.page_size
              ~perm:Types.perm_rw
          with
          | Ok () -> ()
          | Error e -> invalid_arg ("t5: " ^ e)
        done;
        let rng = Rng.create ~seed:7L in
        for _ = 1 to accesses do
          let page = Rng.zipf rng ~n:pages ~theta:0.9 in
          let va =
            Int64.add 0x1000_0000L
              (Int64.mul (Int64.of_int page) Layout.page_size)
          in
          match Iommu.translate iommu ~pasid:1 ~va ~access:Iommu.Read with
          | Iommu.Ok_pa _ -> ()
          | Iommu.Fault _ -> invalid_arg "t5: unexpected fault"
        done;
        let hits = Iommu.tlb_hits iommu in
        let misses = Iommu.tlb_misses iommu in
        let walks = Iommu.walks iommu in
        let walk_levels = Iommu.walk_levels iommu in
        let total = float_of_int accesses in
        let hit_rate =
          if hits + misses = 0 then 0. else float_of_int hits /. total *. 100.
        in
        let avg_cost =
          (float_of_int (hits + misses) *. Int64.to_float costs.Costs.tlb_hit_ns
          +. float_of_int walk_levels *. Int64.to_float costs.Costs.iommu_walk_level_ns)
          /. total
        in
        [
          label;
          Printf.sprintf "%.1f%%" hit_rate;
          string_of_int walks;
          Printf.sprintf "%.1f" avg_cost;
        ])
      configs
  in
  {
    id = "t5";
    title = "IOMMU translation cost vs TLB geometry (zipf 0.9 over 1024 pages)";
    claim =
      "IOMMU-gated shared memory is viable as the cornerstone of data \
       isolation (paper S2.2)";
    columns = [ "TLB"; "hit rate"; "page-table walks"; "avg ns/access" ];
    rows;
    notes =
      [ Printf.sprintf "%d accesses; 4-level table walk = 4 x %Ldns" accesses
          costs.Costs.iommu_walk_level_ns ];
  }

(* --- T6: virtqueue throughput ------------------------------------------------------ *)

let t6_one ~depth ~via_bus =
  match Scenario_kvs.run () with
  | Error e -> invalid_arg ("t6: " ^ e)
  | Ok outcome ->
    let system = outcome.Scenario_kvs.system in
    let engine = System.engine system in
    let nic_dev = Smart_nic.device (System.nic system 0) in
    let ssd_dev = Smart_ssd.device (System.ssd system 0) in
    if via_bus then begin
      Device.route_doorbells_via_bus nic_dev true;
      Device.route_doorbells_via_bus ssd_dev true
    end;
    let fc = Kv_app.client outcome.Scenario_kvs.app in
    (* Closed loop of [depth] concurrent small reads of the log file. *)
    let duration = 20_000_000L (* 20 ms *) in
    let completed = ref 0 in
    let stop = ref false in
    let rec loop () =
      if not !stop then
        File_client.read fc "/kv/data.log" ~off:0 ~len:64 (fun _ ->
            incr completed;
            loop ())
    in
    for _ = 1 to depth do
      loop ()
    done;
    let t0 = Engine.now engine in
    Engine.run ~until:(Int64.add t0 duration) engine;
    stop := true;
    let elapsed = Int64.to_float (Int64.sub (Engine.now engine) t0) in
    float_of_int !completed /. (elapsed *. 1e-9)

let t6 ?(doorbells_via_bus = false) () =
  let depths = [ 1; 2; 4; 8; 16 ] in
  let rows =
    List.map
      (fun depth ->
        let direct = t6_one ~depth ~via_bus:false in
        let conflated =
          if doorbells_via_bus then t6_one ~depth ~via_bus:true else nan
        in
        [
          string_of_int depth;
          Printf.sprintf "%.0f" direct;
          (if doorbells_via_bus then Printf.sprintf "%.0f" conflated else "-");
        ])
      depths
  in
  {
    id = "t6";
    title = "VIRTIO file-service throughput vs queue depth (64B reads)";
    claim =
      "VIRTIO queues in shared memory are consumable by modest hardware \
       (paper S2.1); control and data planes should stay separate (S2.3)";
    columns =
      [ "queue depth"; "ops/s (doorbell direct)"; "ops/s (doorbell via bus)" ];
    rows;
    notes =
      [
        "reads are cache-hits in device DRAM: the measured path is pure \
         queue + doorbell + device processing";
      ];
  }

(* --- T7: end-to-end KVS ------------------------------------------------------------- *)

let t7_keys = 256
let t7_ops = 400
let t7_clients = 4

let t7_mix_op rng mix_get_pct =
  let key = Printf.sprintf "key-%06d" (Rng.zipf rng ~n:t7_keys ~theta:0.99) in
  if Rng.int rng 100 < mix_get_pct then Kv_proto.Get key
  else Kv_proto.Put (key, String.make 100 'w')

let t7_decentralized ~mix_get_pct =
  match Scenario_kvs.run () with
  | Error e -> invalid_arg ("t7: " ^ e)
  | Ok outcome ->
    let system = outcome.Scenario_kvs.system in
    let engine = System.engine system in
    let app = outcome.Scenario_kvs.app in
    let loaded = ref false in
    preload_store (Kv_app.store app) ~keys:t7_keys ~value_bytes:100 (fun () ->
        loaded := true);
    System.run_until_idle system;
    assert !loaded;
    let lat = experiment_hist engine "kv_mixed" in
    let finished = ref 0 in
    let t0 = Engine.now engine in
    for c = 1 to t7_clients do
      let rng = Rng.create ~seed:(Int64.of_int (1000 + c)) in
      kv_closed_loop_client system
        ~app_addr:(Smart_nic.endpoint_address (System.nic system 0))
        ~ops:(t7_ops / t7_clients) ~think_ns:0L
        ~make_op:(fun _ -> t7_mix_op rng mix_get_pct)
        ~lat
        ~on_done:(fun () -> incr finished)
    done;
    System.run_until_idle system;
    assert (!finished = t7_clients);
    let elapsed = Int64.to_float (Int64.sub (Engine.now engine) t0) in
    let throughput = float_of_int t7_ops /. (elapsed *. 1e-9) in
    (throughput, Metrics.report lat)

let t7_centralized ~mix_get_pct =
  let engine = Engine.create () in
  let central = Central.create engine () in
  let store = Store.create (Central.store_backend central ~path:"/kv.log" ~user:"kvs") in
  let loaded = ref false in
  preload_store store ~keys:t7_keys ~value_bytes:100 (fun () -> loaded := true);
  Engine.run engine;
  assert !loaded;
  let lat = experiment_hist engine "kv_mixed" in
  let finished = ref 0 in
  let t0 = Engine.now engine in
  for c = 1 to t7_clients do
    let rng = Rng.create ~seed:(Int64.of_int (1000 + c)) in
    let remaining = ref (t7_ops / t7_clients) in
    let rec next () =
      if !remaining = 0 then incr finished
      else begin
        decr remaining;
        let t_start = Engine.now engine in
        let op = t7_mix_op rng mix_get_pct in
        let work k =
          match op with
          | Kv_proto.Get key -> Store.get store key (fun _ -> k ())
          | Kv_proto.Put (key, value) -> Store.put store ~key ~value (fun _ -> k ())
          | Kv_proto.Del key -> Store.delete store key (fun _ -> k ())
          | Kv_proto.Scan p -> Store.scan_prefix store ~prefix:p (fun _ -> k ())
        in
        Central.kv_network_op central work (fun () ->
            Metrics.observe lat
              (Int64.to_float (Int64.sub (Engine.now engine) t_start));
            next ())
      end
    in
    next ()
  done;
  Engine.run engine;
  assert (!finished = t7_clients);
  let elapsed = Int64.to_float (Int64.sub (Engine.now engine) t0) in
  let throughput = float_of_int t7_ops /. (elapsed *. 1e-9) in
  (throughput, Metrics.report lat)

let t7 () =
  let mixes = [ ("YCSB-C (100% get)", 100); ("YCSB-B (95% get)", 95); ("YCSB-A (50% get)", 50) ] in
  let rows =
    List.concat_map
      (fun (label, pct) ->
        let d_tp, d_lat = t7_decentralized ~mix_get_pct:pct in
        let c_tp, c_lat = t7_centralized ~mix_get_pct:pct in
        [
          [
            label;
            "CPU-less";
            Printf.sprintf "%.0f" d_tp;
            ns d_lat.Stats.p50;
            ns d_lat.Stats.p99;
          ];
          [
            label;
            "centralized";
            Printf.sprintf "%.0f" c_tp;
            ns c_lat.Stats.p50;
            ns c_lat.Stats.p99;
          ];
        ])
      mixes
  in
  {
    id = "t7";
    title = "end-to-end KVS: remote clients, NIC-hosted store, SSD-backed log";
    claim = "an entire application runs with no CPU in the system (paper S3)";
    columns = [ "mix"; "design"; "ops/s"; "p50 (ns)"; "p99 (ns)" ];
    rows;
    notes =
      [
        Printf.sprintf "%d ops over %d closed-loop clients, zipf 0.99 over %d keys"
          t7_ops t7_clients t7_keys;
        "puts pay NAND program time in both designs (same FTL/FS); the \
         difference is coordination architecture";
      ];
  }

(* --- T8: fault containment ------------------------------------------------------------ *)

let t8 () =
  match Scenario_kvs.run () with
  | Error e -> invalid_arg ("t8: " ^ e)
  | Ok outcome ->
    let system = outcome.Scenario_kvs.system in
    let app = outcome.Scenario_kvs.app in
    let nic1_dev = Smart_nic.device (System.nic system 0) in
    (* Bystander ops before/after each injected fault must all succeed. *)
    let bystander_ok = ref 0 and bystander_fail = ref 0 in
    let bystander_op k =
      Kv_app.local_op app (Kv_proto.Put ("bystander", "alive")) (fun reply ->
          (match reply with
          | Kv_proto.Done -> incr bystander_ok
          | _ -> incr bystander_fail);
          k ())
    in
    (* Scenario A: DMA read of an unmapped address on a victim PASID. *)
    let victim_pasid = System.fresh_pasid system in
    let faults_before = Device.fault_count nic1_dev in
    let dma = Device.dma nic1_dev ~pasid:victim_pasid in
    let scenario_a =
      match Lastcpu_virtio.Dma.read_u64 dma 0xDEAD_0000L with
      | _ -> "no fault (BUG)"
      | exception Lastcpu_virtio.Dma.Dma_fault f ->
        Printf.sprintf "fault delivered to device (reason=%s)"
          (match f.Iommu.reason with
          | Iommu.Not_mapped -> "not-mapped"
          | Iommu.Protection -> "protection")
    in
    let faults_a = Device.fault_count nic1_dev - faults_before in
    let done1 = ref false in
    bystander_op (fun () -> done1 := true);
    System.run_until_idle system;
    (* Scenario B: write through a read-only mapping. *)
    let ro_pasid = System.fresh_pasid system in
    let mc = Memctl.id (System.memctl system) in
    let alloc_done = ref false in
    Device.alloc nic1_dev ~memctl:mc ~pasid:ro_pasid ~va:0xA000_0000L
      ~bytes:4096L ~perm:Types.perm_r (fun res ->
        (match res with Ok _ -> () | Error e ->
          invalid_arg ("t8 alloc: " ^ Types.error_code_to_string e));
        alloc_done := true);
    System.run_until_idle system;
    assert !alloc_done;
    let faults_before_b = Device.fault_count nic1_dev in
    let dma_ro = Device.dma nic1_dev ~pasid:ro_pasid in
    let scenario_b =
      match Lastcpu_virtio.Dma.write_u8 dma_ro 0xA000_0000L 1 with
      | () -> "no fault (BUG)"
      | exception Lastcpu_virtio.Dma.Dma_fault f ->
        Printf.sprintf "fault delivered to device (reason=%s)"
          (match f.Iommu.reason with
          | Iommu.Not_mapped -> "not-mapped"
          | Iommu.Protection -> "protection")
    in
    let faults_b = Device.fault_count nic1_dev - faults_before_b in
    let done2 = ref false in
    bystander_op (fun () -> done2 := true);
    System.run_until_idle system;
    assert (!done1 && !done2);
    {
      id = "t8";
      title = "fault containment: IOMMU faults stay on the faulting device";
      claim =
        "each device handles its own faults; no external entity is involved \
         (paper S4 Error Handling)";
      columns = [ "scenario"; "outcome"; "faults delivered"; "bystander app" ];
      rows =
        [
          [
            "read of unmapped VA";
            scenario_a;
            string_of_int faults_a;
            Printf.sprintf "%d ok / %d failed" !bystander_ok !bystander_fail;
          ];
          [
            "write via read-only grant";
            scenario_b;
            string_of_int faults_b;
            Printf.sprintf "%d ok / %d failed" !bystander_ok !bystander_fail;
          ];
        ];
      notes =
        [ "bystander = the KVS application on its own PASID, same device" ];
    }

(* --- T9: boot / discovery scaling ------------------------------------------------------ *)

let t9 () =
  let boot_with ~ssds ~nics =
    let spec = { System.default_spec with ssd_count = ssds; nic_count = nics } in
    let system = System.build ~spec () in
    match System.boot system with
    | Error e -> invalid_arg ("t9: " ^ e)
    | Ok () ->
      let boot_ns = Engine.now (System.engine system) in
      (* Then a discovery broadcast storm: every NIC discovers a file
         service simultaneously. *)
      let answered = ref 0 in
      let engine = System.engine system in
      let t0 = Engine.now engine in
      let last_answer = ref t0 in
      List.iter
        (fun nic ->
          Device.discover (Smart_nic.device nic) ~kind:Types.File_service
            ~query:"" (fun r ->
              if r <> None then begin
                incr answered;
                last_answer := Engine.now engine
              end))
        (System.nics system);
      System.run_until_idle system;
      let storm_ns = Int64.sub !last_answer t0 in
      let broadcasts =
        Metrics.counter_read (Engine.metrics engine)
          ~actor:(Sysbus.actor (System.bus system))
          ~name:"broadcasts"
      in
      (boot_ns, storm_ns, !answered, broadcasts)
  in
  let rows =
    List.map
      (fun n ->
        let boot_ns, storm_ns, answered, broadcasts = boot_with ~ssds:n ~nics:n in
        [
          string_of_int (2 * n);
          ns64 boot_ns;
          ns64 storm_ns;
          Printf.sprintf "%d/%d" answered n;
          string_of_int broadcasts;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  {
    id = "t9";
    title = "initialization scaling: boot + discovery storm vs device count";
    claim =
      "system initialization (self-test, announce, discover) needs no \
       central coordinator (paper S2.2 System Initialization)";
    columns =
      [
        "devices (ssd+nic)";
        "boot (ns)";
        "discovery storm (ns)";
        "answered";
        "broadcast deliveries";
      ];
    rows;
    notes =
      [
        "boot = virtual time until every device announced Device_alive";
        "storm = all NICs broadcast file-service discovery at once";
      ];
  }

(* --- T10: FTL characterization ---------------------------------------------------------- *)

let t10 () =
  let churn ~op_ratio =
    let nand =
      Lastcpu_flash.Nand.create
        ~geometry:{ Lastcpu_flash.Nand.blocks = 64; pages_per_block = 32; page_size = 512 }
        ()
    in
    let ftl = Lastcpu_flash.Ftl.create ~nand ~op_ratio () in
    let logical = Lastcpu_flash.Ftl.logical_pages ftl in
    let rng = Rng.create ~seed:11L in
    (* Hot/cold: 90% of writes hit 10% of the space. *)
    let hot = max 1 (logical / 10) in
    let writes = 20_000 in
    for i = 1 to writes do
      let lpn =
        if Rng.int rng 10 < 9 then Rng.int rng hot
        else hot + Rng.int rng (max 1 (logical - hot))
      in
      match Lastcpu_flash.Ftl.write ftl ~lpn (Printf.sprintf "w%d" i) with
      | Ok () -> ()
      | Error e -> invalid_arg ("t10: " ^ e)
    done;
    ( logical,
      Lastcpu_flash.Ftl.write_amplification ftl,
      Lastcpu_flash.Ftl.gc_runs ftl,
      Lastcpu_flash.Ftl.max_erase_skew ftl )
  in
  let rows =
    List.map
      (fun op_ratio ->
        let logical, wa, gc, skew = churn ~op_ratio in
        [
          Printf.sprintf "%.0f%%" (op_ratio *. 100.);
          string_of_int logical;
          Printf.sprintf "%.2f" wa;
          string_of_int gc;
          string_of_int skew;
        ])
      [ 0.07; 0.125; 0.25; 0.5 ]
  in
  {
    id = "t10";
    title = "smart-SSD FTL: write amplification vs over-provisioning";
    claim =
      "the SSD manages its own flash resources internally (paper S2.1 \
       self-managing devices)";
    columns =
      [ "over-provision"; "logical pages"; "write amp"; "GC runs"; "erase skew" ];
    rows;
    notes = [ "20k writes, 90/10 hot/cold skew, 64x32x512B geometry" ];
  }

(* --- T11: offload crossover -------------------------------------------------------------- *)

let t11 () =
  let spec = { System.default_spec with accel_count = 1 } in
  let system = System.build ~spec () in
  (match System.boot system with Ok () -> () | Error e -> invalid_arg ("t11: " ^ e));
  let engine = System.engine system in
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let accel = Lastcpu_devices.Accel_dev.id (System.accel system 0) in
  let pasid = System.fresh_pasid system in
  let bytes = 1 lsl 20 in
  let va = 0x4000_0000L in
  let token = ref None in
  Device.alloc dev ~memctl:mc ~pasid ~va ~bytes:(Int64.of_int bytes)
    ~perm:Types.perm_rw (fun r -> token := Result.to_option r);
  System.run_until_idle system;
  let token = match !token with Some t -> t | None -> invalid_arg "t11: alloc" in
  let dma = Device.dma dev ~pasid in
  for i = 0 to (bytes / 4096) - 1 do
    Lastcpu_virtio.Dma.write_bytes dma
      (Int64.add va (Int64.of_int (i * 4096)))
      (String.make 4096 (Char.chr (32 + (i mod 64))))
  done;
  let granted = ref false in
  Device.grant dev ~to_device:accel ~pasid ~va ~bytes:(Int64.of_int bytes)
    ~perm:Types.perm_rw ~auth:token (fun r -> granted := Result.is_ok r);
  System.run_until_idle system;
  if not !granted then invalid_arg "t11: grant";
  let measure_one size =
    let job = Lastcpu_devices.Accel_proto.Checksum { va; len = size } in
    let t0 = Engine.now engine in
    let off_ns = ref 0L in
    Lastcpu_devices.Accel_dev.submit dev ~accel ~pasid job (fun _ ->
        off_ns := Int64.sub (Engine.now engine) t0);
    System.run_until_idle system;
    let t1 = Engine.now engine in
    let local_ns = ref 0L in
    Lastcpu_devices.Accel_dev.run_locally dev ~pasid job (fun _ ->
        local_ns := Int64.sub (Engine.now engine) t1);
    System.run_until_idle system;
    (!off_ns, !local_ns)
  in
  let rows =
    List.map
      (fun size ->
        let off, local = measure_one size in
        [
          string_of_int size;
          ns64 off;
          ns64 local;
          Printf.sprintf "%.2fx" (Int64.to_float local /. Int64.to_float off);
        ])
      [ 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576 ]
  in
  {
    id = "t11";
    title = "offload crossover: accelerator vs on-device embedded core";
    claim =
      "application-specific hardware outperforms general cores once data is \
       large enough to amortize coordination (paper S1)";
    columns = [ "bytes"; "offload (ns)"; "local (ns)"; "offload speedup" ];
    rows;
    notes =
      [
        "offload = bus submission + accelerator streaming; local = the \
         device's embedded core";
        "crossover sits where submission overhead = per-byte advantage";
      ];
  }

(* --- T12: recovery economics ------------------------------------------------------------ *)

let t12 () =
  let measure ~puts =
    match Scenario_kvs.run ~smoke_ops:0 () with
    | Error e -> invalid_arg ("t12: " ^ e)
    | Ok outcome ->
      let system = outcome.Scenario_kvs.system in
      let engine = System.engine system in
      let app = outcome.Scenario_kvs.app in
      (* Churn a small live set so the log is mostly dead records. *)
      let live_keys = 32 in
      for i = 1 to puts do
        Store.put (Kv_app.store app)
          ~key:(Printf.sprintf "k%03d" (i mod live_keys))
          ~value:(String.make 64 'v') (fun _ -> ())
      done;
      System.run_until_idle system;
      let relaunch () =
        let t0 = Engine.now engine in
        let result = ref None in
        Kv_app.launch ~nic:(System.nic system 0)
          ~memctl:(Memctl.id (System.memctl system))
          ~pasid:(System.fresh_pasid system)
          ~shm_va:
            (Int64.add 0x9000_0000L
               (Int64.mul (Int64.of_int (System.fresh_pasid system)) 0x100_0000L))
          ~user:"kvs" ~log_path:"/kv/data.log" ~start_device:false ()
          (fun r -> result := Some (r, Engine.now engine));
        System.run_until_idle system;
        match !result with
        | Some (Ok app', t_done) ->
          (Kv_app.recovered_records app', Int64.sub t_done t0)
        | _ -> invalid_arg "t12: relaunch failed"
      in
      let records_before, recovery_before = relaunch () in
      let compacted = ref false in
      Store.compact (Kv_app.store app) (fun r -> compacted := Result.is_ok r);
      System.run_until_idle system;
      if not !compacted then invalid_arg "t12: compaction failed";
      let records_after, recovery_after = relaunch () in
      (records_before, recovery_before, records_after, recovery_after)
  in
  let rows =
    List.map
      (fun puts ->
        let rb, tb, ra, ta = measure ~puts in
        [
          string_of_int puts;
          string_of_int rb;
          ns64 tb;
          string_of_int ra;
          ns64 ta;
          Printf.sprintf "%.1fx" (Int64.to_float tb /. Int64.to_float ta);
        ])
      [ 100; 400; 1000 ]
  in
  {
    id = "t12";
    title = "recovery economics: WAL replay time, before and after compaction";
    claim =
      "applications recover themselves from device-resident logs (paper S3 \
       log file / S4 error handling); compaction bounds that cost";
    columns =
      [
        "puts (32 live keys)";
        "records replayed";
        "recovery (ns)";
        "records after compact";
        "recovery after (ns)";
        "speedup";
      ];
    rows;
    notes =
      [
        "recovery = full Figure-2 re-attach + WAL read + replay, via the \
         data plane; compaction uses the crash-safe sidecar + rename path";
      ];
  }

(* --- T13: chaos soak ----------------------------------------------------------------- *)

(* Both designs run the same seeded client workload under the same fault
   plan: message loss/duplication/delay/corruption on the bus, frame
   loss/reordering on the network, NAND read faults, and a scheduled
   crash→revive window on the storage device in the middle of the
   workload. The CPU-less design survives through device-level request
   retries plus the supervisor re-running the Figure-2 attach against an
   alternate provider; the centralized baseline survives through op-level
   retries once the kernel's reset-device pass brings storage back. *)

let t13_ops = 400
let t13_think_ns = 25_000L

(* Mid-workload: ~50 ms in, the provider disappears for 10 ms. *)
let t13_crash =
  { Faults.device = "ssd0"; at_ns = 50_000_000L; down_ns = 10_000_000L }

let t13_plan = { Faults.default_chaos with Faults.crashes = [ t13_crash ] }

type t13_stats = {
  mutable attempted : int;  (** distinct client ops issued *)
  mutable succeeded : int;  (** ops that eventually got a non-error reply *)
  mutable resends : int;  (** client-level retransmissions *)
  mutable converged : bool;  (** every op completed (success or give-up) *)
}

(* A closed-loop client that survives the chaos: each op is retransmitted
   (same correlation id — the KVS ops are idempotent) on an escalating
   timer until a non-[Failed] reply arrives or the attempts run out. *)
let t13_chaos_client system ~app_addr ~ops ~think_ns ~op_timeout ~op_retries
    ~make_op ~stats ~on_done =
  let engine = System.engine system in
  let net = System.net system in
  let ep = fresh_client net in
  let outstanding : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let sent = ref 0 in
  let finished = ref 0 in
  let rec send_op corr frame timeout tries_left =
    Netsim.send ep ~dst:app_addr frame;
    Engine.schedule engine ~delay:timeout (fun () ->
        if Hashtbl.mem outstanding corr then
          if tries_left > 0 then begin
            stats.resends <- stats.resends + 1;
            send_op corr frame (Int64.mul timeout 2L) (tries_left - 1)
          end
          else begin
            Hashtbl.remove outstanding corr;
            finish_op ()
          end)
  and next_op () =
    if !sent < ops then begin
      let corr = !sent in
      incr sent;
      stats.attempted <- stats.attempted + 1;
      Hashtbl.replace outstanding corr ();
      let frame = Kv_proto.encode_request { Kv_proto.corr; op = make_op corr } in
      send_op corr frame op_timeout op_retries
    end
  and finish_op () =
    incr finished;
    if !finished = ops then on_done ()
    else if think_ns > 0L then Engine.schedule engine ~delay:think_ns next_op
    else next_op ()
  in
  Netsim.set_receiver ep (fun ~src:_ frame ->
      match Kv_proto.decode_response frame with
      | Error _ -> ()
      | Ok { Kv_proto.corr; reply } -> (
        match reply with
        | Kv_proto.Failed _ ->
          (* Transient server-side failure; the resend timer retries. *)
          ()
        | _ ->
          if Hashtbl.mem outstanding corr then begin
            Hashtbl.remove outstanding corr;
            stats.succeeded <- stats.succeeded + 1;
            finish_op ()
          end));
  next_op ()

let t13_make_op i =
  let key = Printf.sprintf "key-%04d" (i mod 64) in
  if i land 1 = 0 then Kv_proto.Put (key, Printf.sprintf "value-%06d" i)
  else Kv_proto.Get key

(* Returns the soaked system plus (stats, device retries, failovers,
   crashes injected). *)
let t13_decentralized ?(tie = Engine.Fifo) ?(sanitize = false) ~seed () =
  let spec =
    {
      System.default_spec with
      System.seed;
      ssd_count = 2;
      fault_plan = t13_plan;
      tie;
      sanitize;
    }
  in
  let system = System.build ~spec () in
  (* Provision the KV directory only on ssd0 for now: discovery then has a
     single willing provider, so the app deterministically attaches to the
     device the fault plan will crash. *)
  let provision ssd =
    match Fs.mkdir (Smart_ssd.fs ssd) ~user:"root" ~mode:0o777 "/kv" with
    | Ok () -> ()
    | Error e -> invalid_arg ("t13: mkdir /kv: " ^ Fs.error_to_string e)
  in
  provision (System.ssd system 0);
  (match System.boot system with
  | Ok () -> ()
  | Error e -> invalid_arg ("t13: boot: " ^ e));
  let next_va = ref 0x4000_0000L in
  let fresh_attach () =
    let va = !next_va in
    next_va := Int64.add va 0x100_0000L;
    (System.fresh_pasid system, va)
  in
  let launched = ref None in
  let pasid, shm_va = fresh_attach () in
  Kv_app.launch
    ~nic:(System.nic system 0)
    ~memctl:(Memctl.id (System.memctl system))
    ~pasid ~shm_va ~user:"kvs" ~log_path:"/kv/data.log" ~req_timeout:300_000L
    ~req_retries:6 ~supervisor:fresh_attach ()
    (fun r -> launched := Some r);
  System.run_until_idle system;
  match !launched with
  | None -> invalid_arg "t13: launch did not complete"
  | Some (Error e) -> invalid_arg ("t13: launch: " ^ e)
  | Some (Ok app) ->
    (* Now provision the second SSD: when ssd0 crashes, re-discovery finds
       a willing alternate (the log itself is per-provider — the failover
       restores availability, not the dead device's data). *)
    provision (System.ssd system 1);
    let stats = { attempted = 0; succeeded = 0; resends = 0; converged = false } in
    t13_chaos_client system
      ~app_addr:(Smart_nic.endpoint_address (System.nic system 0))
      ~ops:t13_ops ~think_ns:t13_think_ns ~op_timeout:2_000_000L ~op_retries:10
      ~make_op:t13_make_op ~stats
      ~on_done:(fun () -> stats.converged <- true);
    (* Control-plane churn alongside the data plane: a second tenant doing
       open-loop alloc/free pairs through the NIC. Its request/response
       round trips ride the faulty bus, exercising the device framework's
       retry/backoff (2% message loss ⇒ a handful of retries). *)
    let engine = System.engine system in
    let nic_dev = Smart_nic.device (System.nic system 0) in
    let mc = Memctl.id (System.memctl system) in
    let churn_pasid = System.fresh_pasid system in
    let rec churn i =
      if i < 200 then begin
        let va = Int64.add 0x8000_0000L (Int64.of_int (i * 4096)) in
        Device.alloc nic_dev ~memctl:mc ~pasid:churn_pasid ~va ~bytes:4096L
          ~perm:Types.perm_rw ~timeout:300_000L ~retries:6 (fun _ ->
            Device.free nic_dev ~memctl:mc ~pasid:churn_pasid ~va ~bytes:4096L
              (fun _ -> ()));
        Engine.schedule engine ~delay:500_000L (fun () -> churn (i + 1))
      end
    in
    churn 0;
    System.run_until_idle system;
    let m = Engine.metrics (System.engine system) in
    let nic_dev = Smart_nic.device (System.nic system 0) in
    ( system,
      stats,
      Device.request_retries nic_dev,
      Kv_app.failovers app,
      Metrics.counter_read m ~actor:"faults" ~name:"crashes_injected" )

let t13_centralized ~seed () =
  let engine = Engine.create ~seed ~fault_plan:t13_plan () in
  let central = Central.create engine () in
  let store =
    Store.create ~metrics:(Engine.metrics engine) ~actor:"kv"
      (Central.store_backend central ~path:"/kv.log" ~user:"kvs")
  in
  let stats = { attempted = 0; succeeded = 0; resends = 0; converged = false } in
  let run_op i k =
    let rec attempt tries_left backoff =
      let ok = ref false in
      Central.kv_network_op central
        (fun tx ->
          match t13_make_op i with
          | Kv_proto.Put (key, value) ->
            Store.put store ~key ~value (fun r ->
                ok := r = Ok ();
                tx ())
          | _ ->
            (* Gets serve from the in-memory table on the CPU; no storage
               dependency, same as the CPU-less design's memtable path. *)
            Store.get store
              (Printf.sprintf "key-%04d" (i mod 64))
              (fun _ ->
                ok := true;
                tx ()))
        (fun () ->
          if !ok then begin
            stats.succeeded <- stats.succeeded + 1;
            k ()
          end
          else if tries_left > 0 then begin
            stats.resends <- stats.resends + 1;
            Engine.schedule engine ~delay:backoff (fun () ->
                attempt (tries_left - 1) (Int64.mul backoff 2L))
          end
          else k ())
    in
    attempt 10 150_000L
  in
  sequentially t13_ops
    (fun i k ->
      stats.attempted <- stats.attempted + 1;
      run_op i (fun () -> Engine.schedule engine ~delay:t13_think_ns k))
    (fun () -> stats.converged <- true);
  Engine.run engine;
  ( engine,
    stats,
    Metrics.counter_read (Engine.metrics engine) ~actor:"faults"
      ~name:"crashes_injected" )

(* CLI/CI entry point: run the CPU-less soak and hand back the system so
   the caller can snapshot the telemetry registry (the determinism check
   diffs two such snapshots). *)
let chaos_soak ?(seed = 42L) () =
  let system, _, _, _, _ = t13_decentralized ~seed () in
  system

let t13 ?(seed = 42L) () =
  let system, d_stats, d_retries, d_failovers, d_crashes =
    t13_decentralized ~seed ()
  in
  let d_elapsed = Engine.now (System.engine system) in
  let c_engine, c_stats, c_crashes = t13_centralized ~seed () in
  let c_elapsed = Engine.now c_engine in
  let pct s =
    Printf.sprintf "%.1f%%"
      (100. *. float_of_int s.succeeded /. float_of_int (max 1 s.attempted))
  in
  let yesno b = if b then "yes" else "no" in
  {
    id = "t13";
    title = "chaos soak: seeded faults, retries and provider failover";
    claim =
      "under message loss/corruption, NAND faults and a storage-device crash, \
       the CPU-less design restores service by re-running discovery (§2.2) — \
       no CPU supervises recovery";
    columns =
      [
        "design"; "ops"; "completed"; "success"; "client resends";
        "device retries"; "failovers"; "crashes"; "elapsed (ns)"; "converged";
      ];
    rows =
      [
        [
          "CPU-less";
          string_of_int d_stats.attempted;
          string_of_int d_stats.succeeded;
          pct d_stats;
          string_of_int d_stats.resends;
          string_of_int d_retries;
          string_of_int d_failovers;
          string_of_int d_crashes;
          ns64 d_elapsed;
          yesno d_stats.converged;
        ];
        [
          "centralized";
          string_of_int c_stats.attempted;
          string_of_int c_stats.succeeded;
          pct c_stats;
          string_of_int c_stats.resends;
          "-";
          "-";
          string_of_int c_crashes;
          ns64 c_elapsed;
          yesno c_stats.converged;
        ];
      ];
    notes =
      [
        Printf.sprintf
          "fault plan: %.1f%% msg loss, %.1f%% dup, %.1f%% corrupt, %.1f%% \
           frame loss, NAND faults, ssd0 crash at %Ldns for %Ldns"
          (100. *. t13_plan.Faults.msg_loss)
          (100. *. t13_plan.Faults.msg_dup)
          (100. *. t13_plan.Faults.msg_corrupt)
          (100. *. t13_plan.Faults.frame_loss)
          t13_crash.Faults.at_ns t13_crash.Faults.down_ns;
        "CPU-less recovery: Device_failed broadcast → abort in-flight → \
         re-discover → attach to the surviving SSD (fresh pasid/mapping) → \
         recover the store → drain parked ops";
        "centralized recovery: submit syscalls fail while the device is \
         down; clients retry with backoff until the kernel's reset-device \
         pass completes";
        "same seed ⇒ byte-identical fault sequence and telemetry snapshot \
         (CI diffs two runs)";
      ];
  }

(* --- T14: overload, backpressure and metastability ---------------------------- *)

(* Open-loop load in three phases: a warm-up below capacity, a pulse far
   past it, then a return to the warm rate. The probe is the recovery
   phase: an unguarded system keeps serving the pulse's backlog (inflated
   further by client retransmits — the retry storm), so post-pulse goodput
   stays collapsed; a guarded system sheds the pulse at the door and the
   recovery phase returns to baseline goodput. *)

let t14_warm_ops = 40
let t14_warm_gap_ns = 1_000_000L
let t14_pulse_ops = 2000
let t14_pulse_gap_ns = 5_000L
let t14_recover_ops = 40
let t14_recover_gap_ns = 1_000_000L
let t14_slo_ns = 10_000_000L (* an answer slower than this is not goodput *)
let t14_client_timeout_ns = 4_000_000L
let t14_client_retries = 4
let t14_total = t14_warm_ops + t14_pulse_ops + t14_recover_ops

type t14_phase = T14_warm | T14_pulse | T14_recover

(* (phase, send offset) for every op; both designs replay this schedule.
   Arrivals carry a little seeded jitter (strictly below the phase gap, so
   phases keep their shape): the workload is open-loop but not metronomic,
   and the seed visibly feeds the run — the CI determinism job checks both
   that equal seeds agree byte-for-byte and that different seeds do not. *)
let t14_jitter_ns = 2_000

let t14_schedule ~rng () =
  let warm_end = Int64.mul (Int64.of_int t14_warm_ops) t14_warm_gap_ns in
  let pulse_end =
    Int64.add warm_end (Int64.mul (Int64.of_int t14_pulse_ops) t14_pulse_gap_ns)
  in
  Array.init t14_total (fun i ->
      let jitter = Int64.of_int (Rng.int rng t14_jitter_ns) in
      if i < t14_warm_ops then
        (T14_warm, Int64.add (Int64.mul (Int64.of_int i) t14_warm_gap_ns) jitter)
      else if i < t14_warm_ops + t14_pulse_ops then
        let j = i - t14_warm_ops in
        ( T14_pulse,
          Int64.add warm_end
            (Int64.add (Int64.mul (Int64.of_int j) t14_pulse_gap_ns) jitter) )
      else
        let j = i - t14_warm_ops - t14_pulse_ops in
        ( T14_recover,
          Int64.add pulse_end
            (Int64.add (Int64.mul (Int64.of_int j) t14_recover_gap_ns) jitter) ))

type t14_op = {
  op_phase : t14_phase;
  mutable sent_at : int64;
  mutable done_at : int64 option;  (** first successful reply *)
  mutable was_shed : bool;  (** got a busy rejection; client stops retrying *)
}

type t14_stats = { t14_ops : t14_op array; mutable t14_resends : int }

let t14_fresh_stats schedule =
  {
    t14_ops =
      Array.map
        (fun (phase, _) ->
          { op_phase = phase; sent_at = 0L; done_at = None; was_shed = false })
        schedule;
    t14_resends = 0;
  }

(* All Puts: they bottleneck on the WAL's flash programs, so sustained
   over-rate arrivals queue instead of completing. Gets would serve from
   the memtable and hide the overload. *)
let t14_make_op i =
  Kv_proto.Put (Printf.sprintf "k%04d" (i mod 128), Printf.sprintf "v%06d" i)

let t14_phase_cells stats phase =
  let n = ref 0 and good = ref 0 and shed = ref 0 in
  Array.iter
    (fun op ->
      if op.op_phase = phase then begin
        incr n;
        if op.was_shed then incr shed;
        match op.done_at with
        | Some at when Int64.sub at op.sent_at <= t14_slo_ns -> incr good
        | _ -> ()
      end)
    stats.t14_ops;
  (!n, !good, !shed)

let t14_goodput_pct stats phase =
  let n, good, _ = t14_phase_cells stats phase in
  Printf.sprintf "%.0f%%" (100. *. float_of_int good /. float_of_int (max 1 n))

(* The client: open-loop sender over the real network, naive fixed-interval
   retransmit on silence (same corr — the server executes duplicates, which
   is exactly the amplification the guards exist to cap), and a
   backpressure-honoring stop on a busy rejection. *)
let t14_open_loop_client system ~app_addr ~start_ns ~schedule ~stats =
  let engine = System.engine system in
  let net = System.net system in
  let ep = fresh_client net in
  Netsim.set_receiver ep (fun ~src:_ frame ->
      match Kv_proto.decode_response frame with
      | Error _ -> ()
      | Ok { Kv_proto.corr; reply } ->
        if corr >= 0 && corr < t14_total then begin
          let st = stats.t14_ops.(corr) in
          if st.done_at = None && not st.was_shed then begin
            match reply with
            | Kv_proto.Failed _ -> st.was_shed <- true
            | _ -> st.done_at <- Some (Engine.now engine)
          end
        end);
  Array.iteri
    (fun i (_, off) ->
      let st = stats.t14_ops.(i) in
      Engine.schedule_at engine ~time:(Int64.add start_ns off) (fun () ->
          st.sent_at <- Engine.now engine;
          let frame =
            Kv_proto.encode_request { Kv_proto.corr = i; op = t14_make_op i }
          in
          let rec send tries_left =
            Netsim.send ep ~dst:app_addr frame;
            Engine.schedule engine ~delay:t14_client_timeout_ns (fun () ->
                if st.done_at = None && (not st.was_shed) && tries_left > 0
                then begin
                  stats.t14_resends <- stats.t14_resends + 1;
                  send (tries_left - 1)
                end)
          in
          send t14_client_retries))
    schedule

type t14_guard_counters = {
  g_bus_rejected : int;
  g_bus_expired : int;
  g_dev_rejected : int;
  g_breaker_opens : int;
  g_breaker_fast_fails : int;
  g_kv_shed : int;
}

let t14_decentralized ?(tie = Engine.Fifo) ?(sanitize = false) ~seed ~guards ()
    =
  let spec =
    {
      System.default_spec with
      System.seed;
      bus_lane_capacity = (if guards then Some 64 else None);
      device_queue_capacity = (if guards then Some 64 else None);
      tie;
      sanitize;
    }
  in
  let system = System.build ~spec () in
  (match Fs.mkdir (Smart_ssd.fs (System.ssd system 0)) ~user:"root" ~mode:0o777 "/kv" with
  | Ok () -> ()
  | Error e -> invalid_arg ("t14: mkdir /kv: " ^ Fs.error_to_string e));
  (match System.boot system with
  | Ok () -> ()
  | Error e -> invalid_arg ("t14: boot: " ^ e));
  let engine = System.engine system in
  let launched = ref None in
  Kv_app.launch
    ~nic:(System.nic system 0)
    ~memctl:(Memctl.id (System.memctl system))
    ~pasid:(System.fresh_pasid system) ~shm_va:0x4000_0000L ~user:"kvs"
    ~log_path:"/kv/data.log" ()
    (fun r -> launched := Some r);
  System.run_until_idle system;
  match !launched with
  | None -> invalid_arg "t14: launch did not complete"
  | Some (Error e) -> invalid_arg ("t14: launch: " ^ e)
  | Some (Ok app) ->
    let nic_dev = Smart_nic.device (System.nic system 0) in
    if guards then begin
      Kv_app.set_overload_policy app ~max_pending:4;
      Device.enable_circuit_breaker nic_dev ~threshold:3
        ~cooldown_ns:2_000_000L
    end;
    let schedule = t14_schedule ~rng:(Engine.fork_rng engine) () in
    let stats = t14_fresh_stats schedule in
    t14_open_loop_client system
      ~app_addr:(Smart_nic.endpoint_address (System.nic system 0))
      ~start_ns:(Engine.now engine) ~schedule ~stats;
    (* Control-plane tenant alongside the data-plane flood: open-loop
       alloc requests through the NIC device; with guards on they carry a
       deadline so any hop can shed them once they are useless. Their
       success rate shows whether the control plane stays live. *)
    let mc = Memctl.id (System.memctl system) in
    let churn_pasid = System.fresh_pasid system in
    let churn_ok = ref 0 in
    let churn_n = 100 in
    for i = 0 to churn_n - 1 do
      Engine.schedule engine
        ~delay:(Int64.mul (Int64.of_int i) 200_000L)
        (fun () ->
          let deadline_ns =
            if guards then Some (Int64.add (Engine.now engine) 1_000_000L)
            else None
          in
          let va = Int64.add 0x8000_0000L (Int64.of_int (i * 4096)) in
          Device.request nic_dev ?deadline_ns ~timeout:500_000L ~retries:2
            ~dst:(Types.Device mc)
            (Message.Alloc_request
               { pasid = churn_pasid; va; bytes = 4096L; perm = Types.perm_rw })
            (function
              | Message.Alloc_response { ok = true; _ } -> incr churn_ok
              | _ -> ()))
    done;
    System.run_until_idle system;
    let bus = System.bus system in
    let counters =
      {
        g_bus_rejected = Sysbus.messages_rejected bus;
        g_bus_expired = Sysbus.messages_expired bus;
        g_dev_rejected = Device.queue_rejections nic_dev;
        g_breaker_opens = Device.breaker_opens nic_dev;
        g_breaker_fast_fails = Device.breaker_fast_fails nic_dev;
        g_kv_shed = Kv_app.ops_shed app;
      }
    in
    (system, stats, counters, !churn_ok, churn_n)

let t14_centralized ~seed ~guards () =
  let engine = Engine.create ~seed () in
  let central =
    Central.create engine
      ?run_queue_capacity:(if guards then Some 16 else None)
      ()
  in
  let store =
    Store.create ~metrics:(Engine.metrics engine) ~actor:"kv"
      (Central.store_backend central ~path:"/kv.log" ~user:"kvs")
  in
  let schedule = t14_schedule ~rng:(Engine.fork_rng engine) () in
  let stats = t14_fresh_stats schedule in
  Array.iteri
    (fun i (_, off) ->
      let st = stats.t14_ops.(i) in
      Engine.schedule_at engine ~time:off (fun () ->
          st.sent_at <- Engine.now engine;
          let rec send tries_left =
            let work tx =
              match t14_make_op i with
              | Kv_proto.Put (key, value) ->
                Store.put store ~key ~value (fun _ -> tx ())
              | _ -> tx ()
            in
            let complete () =
              if st.done_at = None && not st.was_shed then
                st.done_at <- Some (Engine.now engine)
            in
            (if guards then
               Central.try_kv_network_op central work
                 ~on_busy:(fun ~retry_after_ns:_ ->
                   (* The NIC's frame was refused EAGAIN-style; a
                      backpressure-honoring client stops resending. *)
                   if st.done_at = None then st.was_shed <- true)
                 complete
             else Central.kv_network_op central work complete);
            Engine.schedule engine ~delay:t14_client_timeout_ns (fun () ->
                if st.done_at = None && (not st.was_shed) && tries_left > 0
                then begin
                  stats.t14_resends <- stats.t14_resends + 1;
                  send (tries_left - 1)
                end)
          in
          send t14_client_retries))
    schedule;
  Engine.run engine;
  (engine, central, stats)

(* CLI/CI entry point: the guarded CPU-less run, handed back so the caller
   can snapshot telemetry (the overload determinism check diffs two). *)
let overload_soak ?(seed = 42L) () =
  let system, _, _, _, _ = t14_decentralized ~seed ~guards:true () in
  system

let t14 ?(seed = 42L) () =
  let d_off_sys, d_off, d_off_c, d_off_churn, churn_n =
    t14_decentralized ~seed ~guards:false ()
  in
  let d_on_sys, d_on, d_on_c, d_on_churn, _ =
    t14_decentralized ~seed ~guards:true ()
  in
  let c_off_eng, _, c_off = t14_centralized ~seed ~guards:false () in
  let c_on_eng, c_on_central, c_on = t14_centralized ~seed ~guards:true () in
  let row design guard_label stats elapsed =
    let _, _, pulse_shed = t14_phase_cells stats T14_pulse in
    [
      design;
      guard_label;
      t14_goodput_pct stats T14_warm;
      t14_goodput_pct stats T14_pulse;
      string_of_int pulse_shed;
      t14_goodput_pct stats T14_recover;
      string_of_int stats.t14_resends;
      ns64 elapsed;
    ]
  in
  {
    id = "t14";
    title = "overload: bounded queues, backpressure and metastability";
    claim =
      "past saturation, an unguarded system goes metastable — the pulse's \
       backlog plus client retransmits keep post-pulse goodput collapsed — \
       while admission control, E_busy backpressure and retry guards shed \
       the pulse and return goodput to baseline";
    columns =
      [
        "design"; "guards"; "warm goodput"; "pulse goodput"; "pulse shed";
        "recover goodput"; "client resends"; "elapsed (ns)";
      ];
    rows =
      [
        row "CPU-less" "off" d_off (Engine.now (System.engine d_off_sys));
        row "CPU-less" "on" d_on (Engine.now (System.engine d_on_sys));
        row "centralized" "off" c_off (Engine.now c_off_eng);
        row "centralized" "on" c_on (Engine.now c_on_eng);
      ];
    notes =
      [
        Printf.sprintf
          "load: %d warm ops @%Ldns, %d pulse ops @%Ldns, %d recovery ops \
           @%Ldns; SLO %Ldns; client timeout %Ldns x%d naive retransmits"
          t14_warm_ops t14_warm_gap_ns t14_pulse_ops t14_pulse_gap_ns
          t14_recover_ops t14_recover_gap_ns t14_slo_ns t14_client_timeout_ns
          t14_client_retries;
        Printf.sprintf
          "CPU-less guards: bus lanes+device queues capped at 64, KV \
           admission max_pending=4, per-peer circuit breaker (3 failures, \
           2ms cooldown), deadline-carrying control ops";
        Printf.sprintf
          "CPU-less guard counters (on): kv shed=%d, bus rejected=%d, bus \
           expired=%d, nic queue rejected=%d, breaker opens=%d fast-fails=%d \
           (off run: kv shed=%d, bus rejected=%d)"
          d_on_c.g_kv_shed d_on_c.g_bus_rejected d_on_c.g_bus_expired
          d_on_c.g_dev_rejected d_on_c.g_breaker_opens
          d_on_c.g_breaker_fast_fails d_off_c.g_kv_shed d_off_c.g_bus_rejected;
        Printf.sprintf
          "control plane under data-plane flood: %d/%d allocs ok (guards \
           off), %d/%d (guards on)"
          d_off_churn churn_n d_on_churn churn_n;
        Printf.sprintf
          "centralized guards: run queues capped at 16, RX refused \
           EAGAIN-style when full (kernel eagains on: %d)"
          (Kernel.eagains (Central.kernel c_on_central));
      ];
  }

(* --- same-tick ordering sanitizer ----------------------------------------- *)

(* The determinism contract says that when several events share a virtual
   timestamp, their relative order must not leak into observable state.
   Check it empirically: run a workload once under the contractual FIFO
   tie-break and once under a perturbation (LIFO flips every colliding
   pair; a seed-salted permutation scrambles larger groups), journalling a
   digest of observable state (metrics registry + bus frame digest) after
   every multi-event tick. Any divergence is a same-tick ordering race,
   reported with the labels of the events that collided. *)

(* --- T15: temporal decoupling ------------------------------------------------ *)

(* Four device clusters (shards), each a full System on its own engine,
   coupled by ring links: shard i's NIC churns allocations against shard
   (i+1)'s memory controller across the quantum boundary while a local KVS
   closed loop keeps every shard's data plane busy. The cluster count is
   FIXED; [shards] below selects only how many execution lanes (Domains)
   the windows run on — which is exactly what makes digest equality across
   lane counts a meaningful statement. *)

let t15_shard_count = 4
let t15_lookahead_ns = 50_000L
let t15_kv_clients = 3
let t15_kv_ops = 400
let t15_think_ns = 5_000L
let t15_remote_allocs = 120
let t15_remote_gap_ns = 400_000L

type t15_result = {
  t15_events : int;  (** events executed, summed over shards *)
  t15_elapsed : int64;  (** max shard virtual clock at drain *)
  t15_digest : int64;  (** per-shard metrics digests, combined in shard order *)
  t15_boundary : int;  (** cross-shard messages delivered at quantum edges *)
  t15_windows : int;  (** rendezvous windows executed *)
  t15_run_seconds : float;
      (** wall time of the coupled soak phase alone (setup excluded),
          measured with the caller-injected [clock]; [0.] without one *)
  t15_systems : System.t array;
}

let t15_soak ?(shards = 1) ?(quantum = t15_lookahead_ns) ?(tie = Engine.Fifo)
    ?(sanitize = false) ?clock ~seed () =
  if shards < 1 then invalid_arg "t15: shards must be >= 1";
  (* Bring-up is sequential and per-shard self-contained: each cluster
     boots and launches its KVS before any coupling exists, so the setup
     schedule is trivially lane-independent. *)
  let systems =
    Array.init t15_shard_count (fun i ->
        let spec =
          {
            System.default_spec with
            System.seed = Int64.add seed (Int64.of_int (1000 * i));
            shard = i;
            tie;
            sanitize;
          }
        in
        match Scenario_kvs.run ~spec ~smoke_ops:0 () with
        | Error e -> invalid_arg (Printf.sprintf "t15: shard %d: %s" i e)
        | Ok outcome -> outcome.Scenario_kvs.system)
  in
  let engines = Array.map System.engine systems in
  let temporal = Temporal.create ~quantum ~lookahead:t15_lookahead_ns engines in
  let links = Shardlink.create temporal (Array.map System.bus systems) in
  (* Ring links: shard i's NIC <-> shard (i+1)'s memory controller.
     [remote_mc.(i)] is the proxy id shard i addresses to reach it. *)
  let remote_mc =
    Array.init t15_shard_count (fun i ->
        let next = (i + 1) mod t15_shard_count in
        let nic_dev = Smart_nic.device (System.nic systems.(i) 0) in
        let proxy_on_i, _ =
          Shardlink.link links
            ~a:(i, Device.id nic_dev)
            ~b:(next, Memctl.id (System.memctl systems.(next)))
        in
        proxy_on_i)
  in
  let kv_done = Array.make t15_shard_count 0 in
  Array.iteri
    (fun i system ->
      let engine = engines.(i) in
      (* Local data plane: closed-loop KVS clients per shard. *)
      let lat = experiment_hist engine "kv_shard" in
      let app_addr = Smart_nic.endpoint_address (System.nic system 0) in
      for c = 0 to t15_kv_clients - 1 do
        kv_closed_loop_client system ~app_addr ~ops:t15_kv_ops
          ~think_ns:t15_think_ns
          ~make_op:(fun j ->
            let key = Printf.sprintf "key-%04d" ((j + (c * 7)) mod 64) in
            if j mod 3 = 0 then Kv_proto.Put (key, Printf.sprintf "v-%d-%d" c j)
            else Kv_proto.Get key)
          ~lat
          ~on_done:(fun () -> kv_done.(i) <- kv_done.(i) + 1)
      done;
      (* Cross-shard control plane: paced alloc/free pairs against the next
         shard's memory controller. Every request and response crosses the
         quantum boundary; timeouts cover the 2x-lookahead round trip with
         room for queueing. *)
      let nic_dev = Smart_nic.device (System.nic system 0) in
      let pasid = System.fresh_pasid system in
      let proxy = remote_mc.(i) in
      let rec churn j =
        if j < t15_remote_allocs then begin
          let va = Int64.add 0x9000_0000L (Int64.of_int (j * 4096)) in
          Device.alloc nic_dev ~memctl:proxy ~pasid ~va ~bytes:4096L
            ~perm:Types.perm_rw ~timeout:800_000L ~retries:4 (fun _ ->
              Device.free nic_dev ~memctl:proxy ~pasid ~va ~bytes:4096L
                (fun _ -> ()));
          Engine.schedule engine ~delay:t15_remote_gap_ns (fun () ->
              churn (j + 1))
        end
      in
      churn 0)
    systems;
  (* Wall time of the coupled phase only: the per-shard bring-up above is
     sequential by design in every configuration, so including it would
     dilute the quantity the bench compares across lane counts. The clock
     is injected by the caller (the bench) — simulation code itself never
     reads host time. *)
  let tick = match clock with None -> fun () -> 0. | Some f -> f in
  let t_start = tick () in
  let pool = Parallel.Pool.create ~lanes:shards in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () -> Temporal.run ~pool temporal);
  let run_seconds = tick () -. t_start in
  Array.iteri
    (fun i n ->
      if n <> t15_kv_clients then
        invalid_arg
          (Printf.sprintf "t15: shard %d: %d/%d kv clients converged" i n
             t15_kv_clients))
    kv_done;
  let digest =
    Array.fold_left
      (fun acc e -> Sanitizer.combine acc (Metrics.digest (Engine.metrics e)))
      0x743135L (* "t15" *) engines
  in
  {
    t15_events =
      Array.fold_left (fun a e -> a + Engine.events_executed e) 0 engines;
    t15_elapsed = Array.fold_left (fun a e -> max a (Engine.now e)) 0L engines;
    t15_digest = digest;
    t15_boundary = Temporal.boundary_events temporal;
    t15_windows = Temporal.windows_run temporal;
    t15_run_seconds = run_seconds;
    t15_systems = systems;
  }

let t15 ?(shards = 1) ?(quantum = t15_lookahead_ns) ?(seed = 42L) () =
  let r = t15_soak ~shards ~quantum ~seed () in
  (* Deliberately lane-count-free output: CI diffs the rendered table
     between --shards 1 and --shards 4 runs, so every cell must be a pure
     function of (seed, quantum). *)
  {
    id = "t15";
    title = "temporal decoupling: quantum-synchronized shards in one run";
    claim =
      "a run partitioned into device-cluster shards with per-shard clocks \
       and boundary-event exchange at quantum edges is observably \
       deterministic: the digest is independent of how many domains \
       execute the shards";
    columns =
      [ "clusters"; "events"; "elapsed (ns)"; "boundary msgs"; "windows"; "digest" ];
    rows =
      [
        [
          string_of_int t15_shard_count;
          string_of_int r.t15_events;
          ns64 r.t15_elapsed;
          string_of_int r.t15_boundary;
          string_of_int r.t15_windows;
          Printf.sprintf "0x%016Lx" r.t15_digest;
        ];
      ];
    notes =
      [
        Printf.sprintf
          "quantum=%Ldns lookahead=%Ldns; ring of %d clusters, %d kv \
           clients x %d ops + %d cross-shard alloc/free pairs per shard"
          quantum t15_lookahead_ns t15_shard_count t15_kv_clients t15_kv_ops
          t15_remote_allocs;
      ];
  }

(* --- T16: crash-survivable simulation (kill-resume soak) --------------------- *)

(* The t15 ring again — four full Systems coupled at quantum edges — but
   run as a sequence of SEGMENTS with a whole-machine checkpoint written
   at every segment boundary (a quiescent point: every shard drained to
   static-only, aligned at a quantum edge). The soak can then be killed
   after any boundary and resumed in a fresh process: the resumed run
   rebuilds the identical topology, overlays the snapshot, and finishes
   the remaining segments. The claim is bit-identical observability —
   final metrics digest, event counts and virtual clocks equal between
   the uninterrupted run and the killed-and-resumed run, including when
   the kill lands mid-checkpoint and leaves a torn primary on disk. *)

let t16_shard_count = 4
let t16_lookahead_ns = 50_000L
let t16_segments = 5
let t16_kv_clients = 2
let t16_kv_ops = 80
let t16_think_ns = 5_000L
let t16_remote_allocs = 40
let t16_remote_gap_ns = 300_000L
let t16_pings = 12
let t16_ping_gap_ns = 150_000L

(* Shard 0 carries a second SSD — deliberately NOT the KVS provider (the
   scenario provisions /kv on ssd0 only, pinning discovery there) — that
   crashes just after bring-up quiesces (~2.3 ms) and stays down long
   enough for the window to straddle two segment boundaries (~54 ms per
   segment): checkpoints are taken with the device dead and its
   statically scheduled revive still pending, and the resume must carry
   both the NIC's tripped circuit breaker and the remainder of the crash
   window across the restore. The ping bursts of segments 1 and 2 land
   inside the window and bounce off the dead device, tripping the
   breaker in both the original and the resumed process. *)
let t16_crash =
  { Faults.device = "ssd1"; at_ns = 5_000_000L; down_ns = 135_000_000L }

let t16_tag seed = Printf.sprintf "t16:%Ld" seed

type t16_result = {
  t16_digest : int64;  (** per-shard metrics digests, combined in shard order *)
  t16_events : int;  (** events executed, summed over shards *)
  t16_elapsed : int64;  (** max shard virtual clock at drain *)
  t16_segments_run : int;  (** segments executed by THIS process *)
  t16_restored : Snapshot.generation option;
      (** [Some g] when this run resumed from a snapshot; [g] says whether
          the primary file or the previous-generation fallback restored *)
  t16_systems : System.t array;
}

let t16_soak ?(lanes = 1) ?(tie = Engine.Fifo) ?(sanitize = false)
    ?snapshot_path ?(checkpoint_every = 1) ?(resume = false) ?stop_after
    ?(torn_final = false) ~seed () =
  if lanes < 1 then invalid_arg "t16: lanes must be >= 1";
  if checkpoint_every < 1 then invalid_arg "t16: checkpoint_every must be >= 1";
  (* Deterministic rebuild: this block is the "identical builder" the
     snapshot contract requires — a resumed process runs exactly it, then
     overlays the saved state. *)
  let systems =
    Array.init t16_shard_count (fun i ->
        let spec =
          {
            System.default_spec with
            System.seed = Int64.add seed (Int64.of_int (1000 * i));
            shard = i;
            tie;
            sanitize;
            ssd_count = (if i = 0 then 2 else 1);
            fault_plan =
              (if i = 0 then
                 { Faults.zero with Faults.crashes = [ t16_crash ] }
               else Faults.zero);
          }
        in
        match Scenario_kvs.run ~spec ~smoke_ops:0 () with
        | Error e -> invalid_arg (Printf.sprintf "t16: shard %d: %s" i e)
        | Ok outcome -> outcome.Scenario_kvs.system)
  in
  let engines = Array.map System.engine systems in
  let temporal = Temporal.create ~lookahead:t16_lookahead_ns engines in
  let links = Shardlink.create temporal (Array.map System.bus systems) in
  let remote_mc =
    Array.init t16_shard_count (fun i ->
        let next = (i + 1) mod t16_shard_count in
        let nic_dev = Smart_nic.device (System.nic systems.(i) 0) in
        let proxy_on_i, _ =
          Shardlink.link links
            ~a:(i, Device.id nic_dev)
            ~b:(next, Memctl.id (System.memctl systems.(next)))
        in
        proxy_on_i)
  in
  (* Breaker on the shard that pings the crashing SSD: its Open /
     Half_open phase at each boundary is exactly the device-state-machine
     payload the checkpoint must carry. *)
  Device.enable_circuit_breaker
    (Smart_nic.device (System.nic systems.(0) 0))
    ~threshold:3 ~cooldown_ns:1_000_000L;
  (* Segment progress rides the snapshot like any other state: a resumed
     process learns where to continue from the file, not from flags. *)
  let progress = ref 0 in
  Engine.register_snapshot engines.(0) ~name:"t16-progress"
    ~save:(fun () ->
      let w = Snapshot.W.create () in
      Snapshot.W.varint w !progress;
      Snapshot.W.contents w)
    ~restore:(fun data ->
      progress := Snapshot.R.varint (Snapshot.R.of_string data));
  let target = Checkpoint.Sharded temporal in
  let tag = t16_tag seed in
  let restored = ref None in
  if resume then begin
    match snapshot_path with
    | None -> invalid_arg "t16: resume requires a snapshot path"
    | Some path -> (
      match Checkpoint.restore ~path ~tag target with
      | Ok gen -> restored := Some gen
      | Error e -> invalid_arg ("t16: resume: " ^ e))
  end;
  let kv_done = Array.make t16_shard_count 0 in
  let install_segment seg =
    Array.iteri
      (fun i system ->
        let engine = engines.(i) in
        let lat = experiment_hist engine "kv_t16" in
        let app_addr = Smart_nic.endpoint_address (System.nic system 0) in
        for c = 0 to t16_kv_clients - 1 do
          kv_closed_loop_client system ~app_addr ~ops:t16_kv_ops
            ~think_ns:t16_think_ns
            ~make_op:(fun j ->
              let key =
                Printf.sprintf "key-%d-%03d" seg ((j + (c * 13)) mod 48)
              in
              if (j + seg) mod 3 = 0 then
                Kv_proto.Put (key, Printf.sprintf "v-%d-%d-%d" seg c j)
              else Kv_proto.Get key)
            ~lat
            ~on_done:(fun () -> kv_done.(i) <- kv_done.(i) + 1)
        done;
        (* Cross-shard alloc/free churn over the ring, as in t15 — every
           request and response crosses the quantum boundary. *)
        let nic_dev = Smart_nic.device (System.nic system 0) in
        let pasid = System.fresh_pasid system in
        let proxy = remote_mc.(i) in
        let rec churn j =
          if j < t16_remote_allocs then begin
            let va =
              Int64.add 0xA000_0000L
                (Int64.of_int (((seg * t16_remote_allocs) + j) * 4096))
            in
            Device.alloc nic_dev ~memctl:proxy ~pasid ~va ~bytes:4096L
              ~perm:Types.perm_rw ~timeout:800_000L ~retries:4 (fun _ ->
                Device.free nic_dev ~memctl:proxy ~pasid ~va ~bytes:4096L
                  (fun _ -> ()));
            Engine.schedule engine ~delay:t16_remote_gap_ns (fun () ->
                churn (j + 1))
          end
        in
        churn 0;
        if i = 0 then begin
          (* Pings against the crash-windowed SSD: image loads, which a
             live SSD answers with "load-ok". While it is down they time
             out and trip the NIC's per-peer breaker. *)
          let target_ssd = Smart_ssd.id (System.ssd system 1) in
          let rec ping j =
            if j < t16_pings then
              Device.request nic_dev ~timeout:200_000L ~retries:1
                ~dst:(Types.Device target_ssd)
                (Message.Load_image
                   { image = Printf.sprintf "probe-%d-%02d" seg j; bytes = 512L })
                (fun _ ->
                  Engine.schedule engine ~delay:t16_ping_gap_ns (fun () ->
                      ping (j + 1)))
          in
          ping 0
        end)
      systems
  in
  let segments_run = ref 0 in
  let stopping = ref false in
  let pool = Parallel.Pool.create ~lanes in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      while !progress < t16_segments && not !stopping do
        let seg = !progress in
        let before = Array.copy kv_done in
        install_segment seg;
        Temporal.run_until_quiescent ~pool temporal;
        Array.iteri
          (fun i n ->
            if n - before.(i) <> t16_kv_clients then
              invalid_arg
                (Printf.sprintf
                   "t16: shard %d segment %d: %d/%d kv clients converged" i seg
                   (n - before.(i))
                   t16_kv_clients))
          kv_done;
        progress := seg + 1;
        incr segments_run;
        let boundary = seg + 1 in
        (match snapshot_path with
        | Some path when boundary mod checkpoint_every = 0 ->
          let torn =
            torn_final
            && (match stop_after with Some s -> s = boundary | None -> false)
          in
          if torn then Checkpoint.save ~torn_keep_bytes:96 ~path ~tag target
          else Checkpoint.save ~path ~tag target
        | _ -> ());
        match stop_after with
        | Some s when s = boundary -> stopping := true
        | _ -> ()
      done);
  let digest =
    Array.fold_left
      (fun acc e -> Sanitizer.combine acc (Metrics.digest (Engine.metrics e)))
      0x743136L (* "t16" *) engines
  in
  {
    t16_digest = digest;
    t16_events =
      Array.fold_left (fun a e -> a + Engine.events_executed e) 0 engines;
    t16_elapsed = Array.fold_left (fun a e -> max a (Engine.now e)) 0L engines;
    t16_segments_run = !segments_run;
    t16_restored = !restored;
    t16_systems = systems;
  }

let t16_kill_boundary = 3

let t16 ?(lanes = 1) ?(seed = 42L) () =
  let path = Filename.temp_file "lastcpu-t16" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Snapshot.previous_generation path ])
    (fun () ->
      let full = t16_soak ~lanes ~seed () in
      (* Kill leg: checkpoint every boundary, die "mid-checkpoint" at
         boundary 3 — the file written there is torn, exactly the on-disk
         state of a process killed between write and rename. *)
      let killed =
        t16_soak ~lanes ~seed ~snapshot_path:path ~stop_after:t16_kill_boundary
          ~torn_final:true ()
      in
      (* Resume leg: fresh topology; the torn primary must be rejected and
         the previous generation (boundary 2) restored, re-running one
         segment deterministically before the remaining two. *)
      let resumed = t16_soak ~lanes ~seed ~snapshot_path:path ~resume:true () in
      let fellback =
        match resumed.t16_restored with
        | Some Snapshot.Previous -> true
        | Some Snapshot.Primary | None -> false
      in
      let identical =
        resumed.t16_digest = full.t16_digest
        && resumed.t16_events = full.t16_events
        && resumed.t16_elapsed = full.t16_elapsed
      in
      (* Lane-count-free output: CI diffs the rendered table between
         --shards 1 and --shards 4 runs of the whole kill/resume cycle. *)
      {
        id = "t16";
        title = "crash-survivable simulation: kill-resume soak over snapshots";
        claim =
          "a run checkpointed at quiescent segment boundaries can be \
           killed — even mid-checkpoint, leaving a torn file — and \
           resumed from disk into a freshly rebuilt topology with \
           bit-identical observable state";
        columns = [ "run"; "segments"; "events"; "elapsed (ns)"; "digest" ];
        rows =
          [
            [
              "uninterrupted";
              string_of_int full.t16_segments_run;
              string_of_int full.t16_events;
              ns64 full.t16_elapsed;
              Printf.sprintf "0x%016Lx" full.t16_digest;
            ];
            [
              "killed at boundary 3 (torn)";
              string_of_int killed.t16_segments_run;
              "-";
              "-";
              "-";
            ];
            [
              (match resumed.t16_restored with
              | Some Snapshot.Previous -> "resumed (previous generation)"
              | Some Snapshot.Primary -> "resumed (primary)"
              | None -> "resumed (no snapshot!)");
              string_of_int resumed.t16_segments_run;
              string_of_int resumed.t16_events;
              ns64 resumed.t16_elapsed;
              Printf.sprintf "0x%016Lx" resumed.t16_digest;
            ];
            [
              "verdict";
              "";
              "";
              "";
              (if identical && fellback then "bit-identical"
               else "DIVERGED");
            ];
          ];
        notes =
          [
            Printf.sprintf
              "%d segments, checkpoint per boundary; ring of %d clusters, %d \
               kv clients x %d ops + %d cross-shard alloc/free pairs per \
               shard per segment; ssd1 crash window [%Ldns, %Ldns] spans two \
               checkpoints"
              t16_segments t16_shard_count t16_kv_clients t16_kv_ops
              t16_remote_allocs t16_crash.Faults.at_ns
              (Int64.add t16_crash.Faults.at_ns t16_crash.Faults.down_ns);
            "torn primary at the kill boundary forces restore from the \
             previous generation: one segment is re-run deterministically";
          ];
      })

(* --- T17: rogue-device containment soak --------------------------------------- *)

(* One smart NIC turns hostile mid-run: it replays privileged directives,
   forges token MACs, overreaches its DMA grant, and pushes malformed and
   spoofed frames through the raw ingress. The bus's misbehavior scoring
   quarantines it and the revocation cascade tears down every capability
   it held; the KV app survives a provider crash through the PR-2 failover
   path; a revived device cannot resurrect on a bare heartbeat; parole
   re-admission goes through the reset line, after which the rogue's
   pre-revocation token dies on the epoch check. The whole soak is
   deterministic and — like T16 — survives a kill–resume from a
   quiescent-boundary checkpoint with a bit-identical digest. *)

let t17_segments = 6
let t17_kv_clients = 2
let t17_kv_ops = 60
let t17_think_ns = 5_000L
let t17_rogue_va = 0x6000_0000L
let t17_rogue_bytes = 8192L
let t17_tag seed = Printf.sprintf "t17:%Ld" seed

(* Checkpoints stop after this boundary: segment 2 crashes the KV provider
   and [Kv_app.save_state] deliberately refuses to checkpoint a failed-over
   app. The kill lands exactly at the last checkpointable boundary, torn,
   so the resume must fall back one generation and re-run the entire rogue
   barrage deterministically. *)
let t17_kill_boundary = 2

type t17_result = {
  t17_digest : int64;
  t17_events : int;
  t17_elapsed : int64;
  t17_segments_run : int;
  t17_restored : Snapshot.generation option;
  t17_quarantines : int;
  t17_revocations : int;
  t17_stale : int;  (** pre-revocation tokens NACKed on the epoch check *)
  t17_fenced : int;  (** frames dropped at the quarantine fence *)
  t17_malformed : int;
  t17_failovers : int;
  t17_rogue_trust : string;
  t17_system : System.t;
}

let t17_soak ?snapshot_path ?(checkpoint_every = 1) ?(resume = false)
    ?stop_after ?(torn_final = false) ~seed () =
  if checkpoint_every < 1 then invalid_arg "t17: checkpoint_every must be >= 1";
  (* Deterministic rebuild (the snapshot contract's "identical builder"):
     topology, KV launch and the rogue's one legitimate allocation —
     including the capability token it will later replay — are all
     pre-checkpoint state, recomputed identically by a resuming process. *)
  let spec =
    {
      System.default_spec with
      System.seed;
      nic_count = 2;
      ssd_count = 2;
      quarantine = Some Sysbus.default_quarantine;
    }
  in
  let system = System.build ~spec () in
  let provision ssd =
    match Fs.mkdir (Smart_ssd.fs ssd) ~user:"root" ~mode:0o777 "/kv" with
    | Ok () -> ()
    | Error e -> invalid_arg ("t17: mkdir /kv: " ^ Fs.error_to_string e)
  in
  (* Only ssd0 is provisioned before launch, as in T13: discovery pins the
     app to the device segment 2 will crash. *)
  provision (System.ssd system 0);
  (match System.boot system with
  | Ok () -> ()
  | Error e -> invalid_arg ("t17: boot: " ^ e));
  let engine = System.engine system in
  let bus = System.bus system in
  let mc = System.memctl system in
  let next_va = ref 0x4000_0000L in
  let fresh_attach () =
    let va = !next_va in
    next_va := Int64.add va 0x100_0000L;
    (System.fresh_pasid system, va)
  in
  let launched = ref None in
  let pasid, shm_va = fresh_attach () in
  Kv_app.launch
    ~nic:(System.nic system 0)
    ~memctl:(Memctl.id mc) ~pasid ~shm_va ~user:"kvs" ~log_path:"/kv/data.log"
    ~req_timeout:300_000L ~req_retries:6 ~supervisor:fresh_attach ()
    (fun r -> launched := Some r);
  System.run_until_idle system;
  let app =
    match !launched with
    | None -> invalid_arg "t17: launch did not complete"
    | Some (Error e) -> invalid_arg ("t17: launch: " ^ e)
    | Some (Ok app) -> app
  in
  (* The alternate provider comes up after the app pinned itself to ssd0:
     when ssd0 dies, re-discovery finds ssd1 willing. *)
  provision (System.ssd system 1);
  let ssd0_id = Smart_ssd.id (System.ssd system 0) in
  let ssd1_id = Smart_ssd.id (System.ssd system 1) in
  let ssd0_services = Sysbus.services_of bus ssd0_id in
  let victim_id = Device.id (Smart_nic.device (System.nic system 0)) in
  (* The rogue: the second NIC. Before turning hostile it behaves — one
     legitimate allocation whose token (and mapping) it will later abuse. *)
  let rogue = Smart_nic.device (System.nic system 1) in
  let rogue_id = Device.id rogue in
  let rogue_pasid = System.fresh_pasid system in
  let rogue_token = ref None in
  Device.alloc rogue ~memctl:(Memctl.id mc) ~pasid:rogue_pasid
    ~va:t17_rogue_va ~bytes:t17_rogue_bytes ~perm:Types.perm_rw (fun r ->
      match r with Ok tok -> rogue_token := Some tok | Error _ -> ());
  System.run_until_idle system;
  let rogue_token =
    match !rogue_token with
    | Some tok -> tok
    | None -> invalid_arg "t17: rogue bring-up allocation failed"
  in
  let rogue_pa =
    match
      Iommu.probe (Sysbus.iommu_of bus rogue_id) ~pasid:rogue_pasid
        ~va:t17_rogue_va
    with
    | Some pa -> pa
    | None -> invalid_arg "t17: rogue region not mapped"
  in
  let rogue_dma = Device.dma rogue ~pasid:rogue_pasid in
  (* Rogue egress: raw CRC-framed bytes on the bus, the same ingress a
     physically compromised endpoint would use. *)
  let raw msg = Sysbus.send_raw bus ~src:rogue_id (Codec.encode_framed msg) in
  let rogue_msg ?(dst = Types.Bus) ~corr payload =
    Message.make ~src:rogue_id ~dst ~corr payload
  in
  let replay_directive ~corr =
    rogue_msg ~corr
      (Message.Map_directive
         {
           device = rogue_id;
           pasid = rogue_pasid;
           va = t17_rogue_va;
           pa = rogue_pa;
           bytes = t17_rogue_bytes;
           perm = Types.perm_rw;
           auth = rogue_token;
         })
  in
  let kv_done = ref 0 in
  let install_kv seg =
    let lat = experiment_hist engine "kv_t17" in
    let app_addr = Smart_nic.endpoint_address (System.nic system 0) in
    for c = 0 to t17_kv_clients - 1 do
      kv_closed_loop_client system ~app_addr ~ops:t17_kv_ops
        ~think_ns:t17_think_ns
        ~make_op:(fun j ->
          let key = Printf.sprintf "key-%d-%03d" seg ((j + (c * 17)) mod 40) in
          if (j + seg) mod 3 = 0 then
            Kv_proto.Put (key, Printf.sprintf "v-%d-%d-%d" seg c j)
          else Kv_proto.Get key)
        ~lat
        ~on_done:(fun () -> incr kv_done)
    done
  in
  let at delay f = Engine.schedule engine ~delay f in
  let require cond what = if not cond then invalid_arg ("t17: " ^ what) in
  let install_segment seg =
    install_kv seg;
    match seg with
    | 1 ->
      (* The barrage. Each escalation exercises a distinct scoring channel:
         a malformed frame (+2), a DMA fault (+2, Suspect at 4), a forged
         MAC (+3), a ten-shot same-corr burst of privileged grants (two
         past the allowance of eight, +1 each, scored before the handler
         even looks at the token), and finally a spoofed source (+4) that
         crosses the quarantine threshold of 10 — revoking every
         capability the rogue holds. Traffic after that dies at the
         fence. *)
      let fz = Fuzz.create ~seed:(Int64.logxor seed 0x1717L) in
      at 10_000L (fun () ->
          (* A forged failure broadcast: decodes fine, scores nothing, and
             must not perturb the bus's own liveness table. *)
          raw
            (rogue_msg ~dst:Types.Broadcast ~corr:9000
               (Message.Device_failed { device = ssd1_id })));
      at 15_000L (fun () ->
          (* Undecodable bytes at the raw ingress: malformed, counted and
             scored per device. *)
          Sysbus.send_raw bus ~src:rogue_id "\xde\xad\xbe\xef");
      at 20_000L (fun () ->
          match
            Dma.read_bytes rogue_dma (Int64.add t17_rogue_va 0x10000L) 8
          with
          | _ -> require false "rogue DMA overreach was not faulted"
          | exception Dma.Dma_fault _ -> ());
      at 30_000L (fun () ->
          (* Forged MAC: flipping any covered bit must fail verification. *)
          raw
            (rogue_msg ~corr:9001
               (Message.Map_directive
                  {
                    device = rogue_id;
                    pasid = rogue_pasid;
                    va = t17_rogue_va;
                    pa = rogue_pa;
                    bytes = t17_rogue_bytes;
                    perm = Types.perm_rw;
                    auth =
                      {
                        rogue_token with
                        Token.mac = Int64.lognot rogue_token.Token.mac;
                      };
                  })));
      at 40_000L (fun () ->
          (* Replay storm: one corr id, ten privileged repeats. The token
             is the rogue's own (subject-wielded, in range), so only the
             replay channel scores — the allowance forgives eight. *)
          for _k = 0 to 9 do
            raw
              (rogue_msg ~corr:9002
                 (Message.Grant_request
                    {
                      to_device = rogue_id;
                      pasid = rogue_pasid;
                      va = t17_rogue_va;
                      bytes = t17_rogue_bytes;
                      perm = Types.perm_rw;
                      auth = rogue_token;
                    }))
          done);
      at 50_000L (fun () ->
          (* Spoof: a frame claiming the victim NIC's source on the rogue's
             physical lane. +4 crosses the threshold: quarantine. *)
          raw
            (Message.make ~src:victim_id ~dst:Types.Bus ~corr:9003
               Message.Heartbeat));
      at 60_000L (fun () ->
          (* Everything below arrives at a quarantined slot: fenced. *)
          Sysbus.send_raw bus ~src:rogue_id "\x00";
          raw (replay_directive ~corr:9004));
      at 70_000L (fun () ->
          for _k = 0 to 3 do
            Sysbus.send_raw bus ~src:rogue_id
              (Fuzz.mutate_bytes fz
                 (Codec.encode_framed (rogue_msg ~corr:9005 Message.Heartbeat)))
          done)
    | 2 ->
      (* Provider crash: the app's PR-2 failover path re-discovers ssd1. *)
      Sysbus.fail_device bus ssd0_id
    | 3 ->
      (* Reconnect ssd0 and show no silent resurrection: a bare heartbeat
         from the revived-but-dead device must not restore liveness; only
         the explicit re-announce handshake does. *)
      Sysbus.revive_device bus ssd0_id;
      at 10_000L (fun () ->
          Sysbus.send bus
            (Message.make ~src:ssd0_id ~dst:Types.Bus ~corr:0 Message.Heartbeat));
      at 30_000L (fun () ->
          require
            (not (Sysbus.is_live bus ssd0_id))
            "bare heartbeat resurrected ssd0");
      at 40_000L (fun () ->
          Sysbus.send bus
            (Message.make ~src:ssd0_id ~dst:Types.Bus ~corr:0
               (Message.Device_alive { services = ssd0_services })))
    | 4 ->
      (* Parole: reset line, re-announce, then the rogue replays its
         pre-revocation token — stale under the bumped epoch, NACKed. *)
      Sysbus.release_quarantine bus rogue_id;
      at 20_000L (fun () ->
          require (Sysbus.is_live bus rogue_id)
            "rogue did not re-announce after the reset line";
          raw (replay_directive ~corr:9101);
          raw (replay_directive ~corr:9102))
    | _ -> ()
  in
  let progress = ref 0 in
  Engine.register_snapshot engine ~name:"t17-progress"
    ~save:(fun () ->
      let w = Snapshot.W.create () in
      Snapshot.W.varint w !progress;
      Snapshot.W.contents w)
    ~restore:(fun data ->
      progress := Snapshot.R.varint (Snapshot.R.of_string data));
  let target = Checkpoint.Single engine in
  let tag = t17_tag seed in
  let restored = ref None in
  if resume then begin
    match snapshot_path with
    | None -> invalid_arg "t17: resume requires a snapshot path"
    | Some path -> (
      match Checkpoint.restore ~path ~tag target with
      | Ok gen -> restored := Some gen
      | Error e -> invalid_arg ("t17: resume: " ^ e))
  end;
  let segments_run = ref 0 in
  let stopping = ref false in
  while !progress < t17_segments && not !stopping do
    let seg = !progress in
    let before = !kv_done in
    install_segment seg;
    System.run_until_idle system;
    require
      (!kv_done - before = t17_kv_clients)
      (Printf.sprintf "segment %d: %d/%d kv clients converged" seg
         (!kv_done - before) t17_kv_clients);
    (match seg with
    | 1 ->
      require
        (Sysbus.trust_of bus rogue_id = Sysbus.Quarantined)
        "barrage did not quarantine the rogue";
      require (Sysbus.revocations bus >= 1) "quarantine did not revoke";
      require
        (Memctl.allocations_of mc ~pasid:rogue_pasid = [])
        "revocation cascade left the rogue's allocation";
      require
        (Iommu.pasids (Sysbus.iommu_of bus rogue_id) = [])
        "revocation left mappings in the rogue's iommu"
    | 2 ->
      require
        (Kv_app.failovers app = 1)
        "kv app did not fail over to the alternate provider"
    | 3 -> require (Sysbus.is_live bus ssd0_id) "ssd0 re-announce not honored"
    | 4 ->
      require (Sysbus.stale_tokens bus >= 2)
        "pre-revocation token replays were not counted stale";
      require
        (Sysbus.trust_of bus rogue_id = Sysbus.Suspect)
        "paroled rogue should be suspect, not quarantined or trusted"
    | _ -> ());
    progress := seg + 1;
    incr segments_run;
    let boundary = seg + 1 in
    (match snapshot_path with
    | Some path
      when boundary mod checkpoint_every = 0 && boundary <= t17_kill_boundary
      ->
      let torn =
        torn_final
        && (match stop_after with Some s -> s = boundary | None -> false)
      in
      if torn then Checkpoint.save ~torn_keep_bytes:96 ~path ~tag target
      else Checkpoint.save ~path ~tag target
    | _ -> ());
    match stop_after with
    | Some s when s = boundary -> stopping := true
    | _ -> ()
  done;
  {
    t17_digest =
      Sanitizer.combine 0x743137L (* "t17" *)
        (Metrics.digest (Engine.metrics engine));
    t17_events = Engine.events_executed engine;
    t17_elapsed = Engine.now engine;
    t17_segments_run = !segments_run;
    t17_restored = !restored;
    t17_quarantines = Sysbus.quarantines bus;
    t17_revocations = Sysbus.revocations bus;
    t17_stale = Sysbus.stale_tokens bus;
    t17_fenced = Sysbus.messages_fenced bus;
    t17_malformed = Sysbus.malformed_total bus;
    t17_failovers = Kv_app.failovers app;
    t17_rogue_trust = Sysbus.trust_to_string (Sysbus.trust_of bus rogue_id);
    t17_system = system;
  }

let t17 ?(seed = 42L) () =
  let path = Filename.temp_file "lastcpu-t17" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Snapshot.previous_generation path ])
    (fun () ->
      let full = t17_soak ~seed () in
      (* Kill leg: die mid-checkpoint at the last checkpointable boundary —
         the barrage segment's own boundary — leaving a torn primary. *)
      let killed =
        t17_soak ~seed ~snapshot_path:path ~stop_after:t17_kill_boundary
          ~torn_final:true ()
      in
      (* Resume leg: torn primary rejected, previous generation restored;
         the entire barrage re-runs deterministically. *)
      let resumed = t17_soak ~seed ~snapshot_path:path ~resume:true () in
      let fellback =
        match resumed.t17_restored with
        | Some Snapshot.Previous -> true
        | Some Snapshot.Primary | None -> false
      in
      let identical =
        resumed.t17_digest = full.t17_digest
        && resumed.t17_events = full.t17_events
        && resumed.t17_elapsed = full.t17_elapsed
      in
      let run_row name (r : t17_result) final =
        [
          name;
          string_of_int r.t17_segments_run;
          string_of_int r.t17_quarantines;
          string_of_int r.t17_stale;
          string_of_int r.t17_failovers;
          r.t17_rogue_trust;
          (if final then Printf.sprintf "0x%016Lx" r.t17_digest else "-");
        ]
      in
      {
        id = "t17";
        title = "rogue-device containment: quarantine, revocation, failover";
        claim =
          "a device that turns hostile mid-run is quarantined by \
           misbehavior scoring, its capabilities revoked by one epoch \
           bump, and the workload it served fails over and recovers — \
           deterministically, surviving a torn-checkpoint kill-resume \
           bit-identically";
        columns =
          [ "run"; "segments"; "quarantines"; "stale"; "failovers";
            "rogue trust"; "digest" ];
        rows =
          [
            run_row "uninterrupted" full true;
            run_row
              (Printf.sprintf "killed at boundary %d (torn)" t17_kill_boundary)
              killed false;
            run_row
              (match resumed.t17_restored with
              | Some Snapshot.Previous -> "resumed (previous generation)"
              | Some Snapshot.Primary -> "resumed (primary)"
              | None -> "resumed (no snapshot!)")
              resumed true;
            [
              "verdict";
              "";
              "";
              "";
              "";
              "";
              (if identical && fellback then "bit-identical" else "DIVERGED");
            ];
          ];
        notes =
          [
            Printf.sprintf
              "%d segments, %d kv clients x %d ops each; barrage evidence: \
               dma fault + forged mac + corr replay storm + spoofed source \
               (weights %d/%d/%d/%d, threshold %d); %d frames fenced, %d \
               malformed rejected"
              t17_segments t17_kv_clients t17_kv_ops
              Sysbus.default_quarantine.Sysbus.dma_fault_weight
              Sysbus.default_quarantine.Sysbus.bad_token_weight
              Sysbus.default_quarantine.Sysbus.replay_weight
              Sysbus.default_quarantine.Sysbus.spoof_weight
              Sysbus.default_quarantine.Sysbus.quarantine_score
              full.t17_fenced full.t17_malformed;
            "re-admission is reset-line -> re-announce only: a bare \
             heartbeat from the revived provider is ignored, and the \
             paroled rogue's pre-revocation token is NACKed stale";
            "single-engine soak: --shards cannot perturb it, and the \
             kill-resume legs above are the determinism evidence";
          ];
      })

type sanitize_report = {
  san_exp : string;
  san_perturbation : string;  (** ["lifo"] or ["salted"] *)
  san_multi_event_ticks : int;  (** journalled ticks in the reference run *)
  san_divergence : Sanitizer.divergence option;  (** [None] = no race found *)
}

let sanitize_journal ~exp ~seed ~tie =
  let engine_of_system system = System.engine system in
  match exp with
  | "t15" ->
    (* Multi-shard: per-shard journals concatenated in shard order — a
       deterministic flattening, so journal equality still means "same
       observable schedule everywhere". *)
    let r = t15_soak ~tie ~sanitize:true ~seed () in
    List.concat_map
      (fun system -> Engine.sanitizer_journal (System.engine system))
      (Array.to_list r.t15_systems)
  | _ ->
    let system =
      match exp with
      | "t1" ->
        let system, _ =
          t1_decentralized ~seed ~tie ~sanitize:true ~enable_tokens:true ()
        in
        system
      | "t13" ->
        let system, _, _, _, _ = t13_decentralized ~tie ~sanitize:true ~seed () in
        system
      | "t14" ->
        let system, _, _, _, _ =
          t14_decentralized ~tie ~sanitize:true ~seed ~guards:true ()
        in
        system
      | _ -> invalid_arg ("sanitize: unknown experiment " ^ exp)
    in
    Engine.sanitizer_journal (engine_of_system system)

let sanitize_experiments = [ "t1"; "t13"; "t14"; "t15" ]

(* One full run of a digest-pinned experiment, returning the soaked
   system (the bench reads events-executed and wall time off it). *)
let soaked_system ~exp ~seed =
  match exp with
  | "t1" ->
    let system, _ = t1_decentralized ~seed ~enable_tokens:true () in
    system
  | "t13" ->
    let system, _, _, _, _ = t13_decentralized ~seed () in
    system
  | "t14" ->
    let system, _, _, _, _ = t14_decentralized ~seed ~guards:true () in
    system
  | _ -> invalid_arg ("soaked_system: unknown experiment " ^ exp)

(* Golden-digest hook: one full run of an experiment, reduced to the
   metrics digest. The determinism-equivalence test pins these values, so
   hot-path changes (lazy labels, heap tuning) are provably observation-
   preserving. *)
let metrics_digest ~exp ~seed =
  match exp with
  | "t15" -> (t15_soak ~seed ()).t15_digest
  | _ ->
    Metrics.digest (Engine.metrics (System.engine (soaked_system ~exp ~seed)))

let sanitize ?(seed = 42L) ~exp () =
  let perturbations =
    [
      ("lifo", Engine.Lifo);
      ("salted", Engine.Salted (Int64.logxor seed 0x5a17edL));
    ]
  in
  if exp = "t15" then begin
    (* Diffing the FIFO journal against a perturbed-tie journal assumes the
       set of multi-event ticks is perturbation-stable. t15 runs two
       independent paced streams per shard (closed-loop KVS clients and the
       cross-shard alloc churn), so some collisions are coincidences of
       unrelated streams: the few service-times of drift a perturbed tie
       legitimately introduces dissolves those collisions, misaligning the
       sampled trajectories without any ordering race (the salted run's
       hash sequence stays a subsequence of the reference's). The t15
       contracts that are strict and stable are checked instead: the final
       digest must be tie-invariant, and under each perturbed tie the full
       per-shard journal must be bit-identical whether one or four domains
       execute the shards — the temporal layer's boundary merge must not
       leak lane scheduling even through a perturbed heap. *)
    let run ~tie ~shards =
      (* These runs double as the ownership sanitizer's soak (the dynamic
         half of the D007 audit): every guarded cell touched during a
         window is checked against the touching lane's shard context, so
         a cross-shard access would abort the sanitize pass right here. *)
      Ownership.enable ();
      Fun.protect ~finally:Ownership.disable @@ fun () ->
      let r = t15_soak ~shards ~tie ~sanitize:true ~seed () in
      let journal =
        List.concat_map
          (fun system -> Engine.sanitizer_journal (System.engine system))
          (Array.to_list r.t15_systems)
      in
      (r.t15_digest, journal)
    in
    let ref_digest, _ = run ~tie:Engine.Fifo ~shards:1 in
    List.map
      (fun (name, tie) ->
        let d1, j1 = run ~tie ~shards:1 in
        let d4, j4 = run ~tie ~shards:4 in
        let divergence =
          match Sanitizer.compare_journals ~reference:j1 ~perturbed:j4 with
          | Some d -> Some d
          | None ->
            if d1 <> ref_digest || d4 <> ref_digest then
              (* Journals agree across lanes but the end state depends on
                 the tie-break: surface it as a divergence past the end of
                 the journal rather than silently passing. *)
              Some
                {
                  Sanitizer.index = List.length j1;
                  reference = None;
                  perturbed = None;
                }
            else None
        in
        {
          san_exp = exp;
          san_perturbation = name;
          san_multi_event_ticks = List.length j1;
          san_divergence = divergence;
        })
      perturbations
  end
  else
    let reference = sanitize_journal ~exp ~seed ~tie:Engine.Fifo in
    List.map
      (fun (name, tie) ->
        let perturbed = sanitize_journal ~exp ~seed ~tie in
        {
          san_exp = exp;
          san_perturbation = name;
          san_multi_event_ticks = List.length reference;
          san_divergence = Sanitizer.compare_journals ~reference ~perturbed;
        })
      perturbations

(* --- registry ------------------------------------------------------------------------- *)

let all () =
  [
    f1 ();
    f2 ();
    t1 ();
    t2 ();
    t3 ();
    t4 ();
    t5 ();
    t6 ~doorbells_via_bus:true ();
    t7 ();
    t8 ();
    t9 ();
    t10 ();
    t11 ();
    t12 ();
    t13 ();
    t14 ();
    t15 ();
    t16 ();
    t17 ();
  ]

let by_id ?(shards = 1) = function
  | "f1" -> Some f1
  | "f2" -> Some f2
  | "t1" -> Some (fun () -> t1 ())
  | "t1-notokens" -> Some (fun () -> t1 ~enable_tokens:false ())
  | "t2" -> Some t2
  | "t3" -> Some (fun () -> t3 ())
  | "t4" -> Some t4
  | "t5" -> Some t5
  | "t6" -> Some (fun () -> t6 ~doorbells_via_bus:true ())
  | "t7" -> Some t7
  | "t8" -> Some t8
  | "t9" -> Some t9
  | "t10" -> Some t10
  | "t11" -> Some t11
  | "t12" -> Some t12
  | "t13" -> Some (fun () -> t13 ())
  | "t14" -> Some (fun () -> t14 ())
  | "t15" -> Some (fun () -> t15 ~shards ())
  | "t16" -> Some (fun () -> t16 ~lanes:shards ())
  | "t17" -> Some (fun () -> t17 ())
  | _ -> None
