module Engine = Lastcpu_sim.Engine
module Trace = Lastcpu_sim.Trace
module Fs = Lastcpu_fs.Fs
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Memctl = Lastcpu_devices.Memctl
module Kv_app = Lastcpu_kv.Kv_app
module Kv_proto = Lastcpu_kv.Kv_proto

type outcome = { system : System.t; app : Kv_app.t; boot_ns : int64 }

let default_log_path = "/kv/data.log"
let shm_va = 0x4000_0000L

let run ?spec ?(log_path = default_log_path) ?(smoke_ops = 3) () =
  let system = System.build ?spec () in
  (* Provision the data directory (deployment step, like formatting). *)
  (match
     Fs.mkdir (Smart_ssd.fs (System.ssd system 0)) ~user:"root" ~mode:0o777 "/kv"
   with
  | Ok () -> ()
  | Error e -> invalid_arg ("provision: " ^ Fs.error_to_string e));
  match System.boot system with
  | Error e -> Error e
  | Ok () ->
    (* When the system runs with the authentication device, the KVS user
       logs in first and carries its session token through the open
       (Fig. 2 step 3, "including an authorization token"). The scenario
       expects credentials kvs/kvs-secret in the spec's user table. *)
    let session = ref None in
    (match System.auth system with
    | None -> ()
    | Some auth_dev ->
      let dev = Lastcpu_devices.Smart_nic.device (System.nic system 0) in
      Lastcpu_device.Device.start dev;
      Lastcpu_device.Device.request dev
        ~dst:
          (Lastcpu_proto.Types.Device (Lastcpu_devices.Auth_dev.id auth_dev))
        (Lastcpu_proto.Message.Auth_request
           { user = "kvs"; credential = "kvs-secret" })
        (fun p ->
          match p with
          | Lastcpu_proto.Message.Auth_response { ok = true; session = s } ->
            session := s
          | _ -> ());
      System.run_until_quiescent system);
    (match (System.auth system, !session) with
    | Some _, None -> invalid_arg "scenario: authentication failed"
    | _ -> ());
    let result = ref None in
    let pasid = System.fresh_pasid system in
    Kv_app.launch ~nic:(System.nic system 0)
      ~memctl:(Memctl.id (System.memctl system))
      ~pasid ~shm_va ~user:"kvs" ~log_path ?auth:!session ()
      (fun r -> result := Some r);
    System.run_until_quiescent system;
    (match !result with
    | None -> Error "KVS launch never completed (event queue drained)"
    | Some (Error e) -> Error e
    | Some (Ok app) ->
      let boot_ns = Engine.now (System.engine system) in
      (* Smoke operations through the full stack. *)
      let failures = ref [] in
      for i = 1 to smoke_ops do
        let key = Printf.sprintf "smoke-%d" i in
        Kv_app.local_op app
          (Kv_proto.Put (key, "value-" ^ key))
          (fun reply ->
            match reply with
            | Kv_proto.Done -> ()
            | _ -> failures := (key ^ ": put failed") :: !failures);
        System.run_until_quiescent system;
        Kv_app.local_op app (Kv_proto.Get key) (fun reply ->
            match reply with
            | Kv_proto.Value (Some v) when String.equal v ("value-" ^ key) -> ()
            | _ -> failures := (key ^ ": get mismatch") :: !failures);
        System.run_until_quiescent system
      done;
      if !failures <> [] then Error (String.concat "; " !failures)
      else Ok { system; app; boot_ns })

type step = { n : int; description : string; kind : string; at_ns : int64 }

let expected =
  [
    (1, "NIC broadcasts file-service discovery (file name)", "msg.discover-req");
    (2, "SSD answers: it can serve that file", "msg.discover-resp");
    (3, "NIC opens the service (authorization included)", "msg.open-service");
    (4, "SSD accepts: connection details + shared-memory size", "msg.open-resp");
    (5, "NIC asks the memory controller to allocate the shm", "msg.alloc-req");
    (6, "bus programs the NIC's IOMMU as directed by memctl", "bus.map");
    (7, "NIC grants the SSD access to the shared memory", "msg.grant-req");
  ]

let figure2_steps outcome =
  let entries = Trace.entries (Engine.trace (System.engine outcome.system)) in
  let rec scan entries expected acc =
    match expected with
    | [] -> List.rev acc
    | (n, description, kind) :: rest -> (
      match entries with
      | [] -> List.rev acc
      | (e : Trace.entry) :: entries' ->
        if String.equal e.Trace.kind kind then
          scan entries' rest ({ n; description; kind; at_ns = e.Trace.time } :: acc)
        else scan entries' expected acc)
  in
  scan entries expected []

let pp_steps ppf steps =
  List.iter
    (fun s ->
      Format.fprintf ppf "  step %d [%8Ld ns]  %-18s %s@." s.n s.at_ns s.kind
        s.description)
    steps
