module Types = Lastcpu_proto.Types
module Engine = Lastcpu_sim.Engine
module Costs = Lastcpu_sim.Costs
module Physmem = Lastcpu_mem.Physmem
module Netsim = Lastcpu_net.Netsim
module Sysbus = Lastcpu_bus.Sysbus
module Device = Lastcpu_device.Device
module Memctl = Lastcpu_devices.Memctl
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Smart_nic = Lastcpu_devices.Smart_nic
module Auth_dev = Lastcpu_devices.Auth_dev
module Accel_dev = Lastcpu_devices.Accel_dev
module Console_dev = Lastcpu_devices.Console_dev
module Message = Lastcpu_proto.Message

type spec = {
  seed : int64;
  costs : Costs.t;
  enable_tokens : bool;
  heartbeat_timeout_ns : int64;
  nic_count : int;
  ssd_count : int;
  accel_count : int;
  memctl_count : int;
  bus_lanes : int;
  bus_lane_capacity : int option;
  device_queue_capacity : int option;
  ssd_geometry : Lastcpu_flash.Nand.geometry option;
  with_auth : bool;
  users : (string * string) list;
  with_console : bool;
  dram_pages : int;
  fault_plan : Lastcpu_sim.Faults.plan;
  tie : Engine.tie_break;
  sanitize : bool;
  shard : int;
  quarantine : Sysbus.quarantine_config option;
}

let default_spec =
  {
    seed = 42L;
    costs = Costs.default;
    enable_tokens = true;
    heartbeat_timeout_ns = 0L;
    nic_count = 1;
    ssd_count = 1;
    accel_count = 0;
    memctl_count = 1;
    bus_lanes = 1;
    bus_lane_capacity = None;
    device_queue_capacity = None;
    ssd_geometry = None;
    with_auth = false;
    users = [];
    with_console = false;
    dram_pages = 65536;
    fault_plan = Lastcpu_sim.Faults.zero;
    tie = Engine.Fifo;
    sanitize = false;
    shard = 0;
    quarantine = None;
  }

type t = {
  spec : spec;
  engine : Engine.t;
  memory : Physmem.t;
  network : Netsim.t;
  sysbus : Sysbus.t;
  mc_list : Memctl.t list;
  ssd_list : Smart_ssd.t list;
  nic_list : Smart_nic.t list;
  accel_list : Accel_dev.t list;
  auth_dev : Auth_dev.t option;
  console_dev : Console_dev.t option;
  mutable next_pasid : int;
}

let build ?(spec = default_spec) () =
  let engine =
    Engine.create ~seed:spec.seed ~costs:spec.costs ~fault_plan:spec.fault_plan
      ~tie:spec.tie ~sanitize:spec.sanitize ()
  in
  let memory = Physmem.create ~size:(Int64.shift_left 1L 31) () in
  let network = Netsim.create ~shard:spec.shard engine in
  let sysbus =
    Sysbus.create
      ~config:
        {
          Sysbus.enable_tokens = spec.enable_tokens;
          heartbeat_timeout_ns = spec.heartbeat_timeout_ns;
          lanes = spec.bus_lanes;
          lane_capacity = spec.bus_lane_capacity;
          device_queue_capacity = spec.device_queue_capacity;
          quarantine = spec.quarantine;
        }
      ~shard:spec.shard engine
  in
  let mc_list =
    List.init (max 1 spec.memctl_count) (fun i ->
        (* Each controller owns a disjoint physical range. *)
        let base =
          Int64.add 0x1000_0000L
            (Int64.mul (Int64.of_int i)
               (Int64.mul (Int64.of_int spec.dram_pages) 4096L))
        in
        Memctl.create sysbus ~mem:memory
          ~name:(if i = 0 then "memctl" else Printf.sprintf "memctl%d" i)
          ~dram_base:base ~dram_pages:spec.dram_pages ())
  in
  let auth_dev =
    if spec.with_auth then Some (Auth_dev.create sysbus ~mem:memory ~users:spec.users ())
    else None
  in
  let auth_key = Option.map Auth_dev.key auth_dev in
  let ssd_list =
    List.init spec.ssd_count (fun i ->
        Smart_ssd.create sysbus ~mem:memory
          ~name:(Printf.sprintf "ssd%d" i)
          ?geometry:spec.ssd_geometry ?auth_key ())
  in
  let nic_list =
    List.init spec.nic_count (fun i ->
        Smart_nic.create sysbus ~mem:memory ~net:network
          ~name:(Printf.sprintf "nic%d" i)
          ~auto_start:false ())
  in
  let console_dev =
    if spec.with_console then Some (Console_dev.create sysbus ~mem:memory ())
    else None
  in
  let accel_list =
    List.init spec.accel_count (fun i ->
        Accel_dev.create sysbus ~mem:memory ~name:(Printf.sprintf "accel%d" i) ())
  in
  let t =
    {
      spec;
      engine;
      memory;
      network;
      sysbus;
      mc_list;
      ssd_list;
      nic_list;
      accel_list;
      auth_dev;
      console_dev;
      next_pasid = 1;
    }
  in
  (* Whole-machine checkpoint hooks owned by the assembly itself: the DRAM
     image (every virtqueue ring and request slot lives in it) and the
     PASID allocator. Registered after the hardware above, before any
     boot-time application hook — so apps whose restore looks through a
     DMA view find the restored DRAM already in place. *)
  let module Snapshot = Lastcpu_sim.Snapshot in
  Engine.register_snapshot engine ~name:"dram"
    ~save:(fun () ->
      let w = Snapshot.W.create () in
      Physmem.save w memory;
      Snapshot.W.contents w)
    ~restore:(fun data -> Physmem.restore (Snapshot.R.of_string data) memory);
  Engine.register_snapshot engine ~name:"system"
    ~save:(fun () ->
      let w = Snapshot.W.create () in
      Snapshot.W.varint w t.next_pasid;
      Snapshot.W.contents w)
    ~restore:(fun data ->
      t.next_pasid <- Snapshot.R.varint (Snapshot.R.of_string data));
  t

let engine t = t.engine
let mem t = t.memory
let net t = t.network
let bus t = t.sysbus
let memctl t = List.hd t.mc_list
let memctls t = t.mc_list
let ssds t = t.ssd_list
let nics t = t.nic_list
let ssd t i = List.nth t.ssd_list i
let nic t i = List.nth t.nic_list i
let auth t = t.auth_dev
let console t = t.console_dev
let accel t i = List.nth t.accel_list i
let accels t = t.accel_list

let fresh_pasid t =
  let p = t.next_pasid in
  t.next_pasid <- p + 1;
  p

let all_device_ids t =
  let ids = ref (List.map Memctl.id t.mc_list) in
  List.iter (fun s -> ids := Smart_ssd.id s :: !ids) t.ssd_list;
  (* NICs may not be started yet (applications add services first); only
     require liveness of started NICs. *)
  List.iter
    (fun n ->
      if Device.started (Smart_nic.device n) then ids := Smart_nic.id n :: !ids)
    t.nic_list;
  List.iter (fun a -> ids := Accel_dev.id a :: !ids) t.accel_list;
  (match t.auth_dev with Some a -> ids := Auth_dev.id a :: !ids | None -> ());
  (match t.console_dev with Some c -> ids := Console_dev.id c :: !ids | None -> ());
  !ids

let boot ?(timeout = 1_000_000L) t =
  (* Start any NIC that nothing else started (no hosted app). *)
  List.iter
    (fun n ->
      let d = Smart_nic.device n in
      if not (Device.started d) then Device.start d)
    t.nic_list;
  let deadline = Int64.add (Engine.now t.engine) timeout in
  let rec wait () =
    let missing =
      List.filter (fun id -> not (Sysbus.is_live t.sysbus id)) (all_device_ids t)
    in
    if missing = [] then Ok ()
    else if Engine.now t.engine >= deadline || Engine.pending t.engine = 0 then
      Error
        (Printf.sprintf "boot timeout; not live: %s"
           (String.concat ", "
              (List.map (fun id -> Sysbus.device_name t.sysbus id) missing)))
    else begin
      ignore (Engine.step t.engine);
      wait ()
    end
  in
  wait ()

let run_until_idle ?(max_events = 10_000_000) t =
  Engine.run ~max_events t.engine

let run_until_quiescent ?(max_events = 10_000_000) t =
  Engine.run_until_quiescent ~max_events t.engine

let run_for t ns = Engine.run ~until:(Int64.add (Engine.now t.engine) ns) t.engine

let topology t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "System without a CPU (paper Figure 1)\n";
  add "=====================================\n";
  add "control plane: system management bus (privileged; programs IOMMUs)\n";
  add "data plane:    shared memory via per-device IOMMU + VIRTIO queues\n\n";
  let describe id =
    let name = Sysbus.device_name t.sysbus id in
    let live = if Sysbus.is_live t.sysbus id then "live" else "down" in
    let services =
      Sysbus.services_of t.sysbus id
      |> List.map (fun (s : Message.service_desc) ->
             Printf.sprintf "%s:%s"
               (Types.service_kind_to_string s.Message.kind)
               s.Message.name)
      |> String.concat ", "
    in
    add "  dev%-2d %-10s [%s]  services: %s\n" id name live
      (if services = "" then "-" else services)
  in
  add "devices on the bus:\n";
  List.iter describe (List.sort compare (all_device_ids t));
  (match t.nic_list with
  | [] -> ()
  | nics ->
    add "\nnetwork attachment:\n";
    List.iter
      (fun n ->
        add "  %s at switch port %d\n"
          (Device.name (Smart_nic.device n))
          (Smart_nic.endpoint_address n))
      nics);
  let total =
    List.fold_left
      (fun a m -> a + Memctl.free_pages m + Memctl.used_pages m)
      0 t.mc_list
  in
  let free = List.fold_left (fun a m -> a + Memctl.free_pages m) 0 t.mc_list in
  add "\nDRAM: %d pages across %d controller(s) (buddy allocators); %d free\n"
    total (List.length t.mc_list) free;
  Buffer.contents buf
