(* Structure-aware deterministic protocol fuzzer (the containment layer's
   adversarial test rig).

   One smart NIC turns hostile: its "firmware" bypasses the device
   framework and puts seed-salted mutants of real control-plane frames
   directly on the bus through [Sysbus.send_raw] — the same raw-byte
   ingress a physically compromised endpoint would use. Three mutation
   modes, chosen per iteration:

   - [structural]: decode-level field mutation — a well-formed frame with
     one field (pasid, va, length, token field, envelope src/dst/corr...)
     replaced by a boundary or random value, re-encoded with a valid CRC.
     Exercises handler logic behind the codec.
   - [decoder]: the encoded body is bit/byte-mutated, then re-framed with
     a *valid* CRC. Exercises the decoder's typed [E_malformed] surface.
   - [raw]: the framed bytes are mutated as-is (CRC usually breaks).
     Exercises the checksum gate.

   After every injection the engine drains; periodically the campaign
   asserts the containment invariants:

   1. no exception ever escapes the event loop (engine crash);
   2. the rogue's IOMMU holds no translation into the victim's physical
      frames (no byte of another tenant's memory is reachable);
   3. the victim's sentinel region is intact and still mapped.

   Everything derives from one seed, so a campaign is a reproducible
   experiment: the final report (including the metrics digest) is
   golden-testable in CI. *)

module Engine = Lastcpu_sim.Engine
module Metrics = Lastcpu_sim.Metrics
module Fuzz = Lastcpu_sim.Fuzz
module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Codec = Lastcpu_proto.Codec
module Token = Lastcpu_proto.Token
module Sysbus = Lastcpu_bus.Sysbus
module Iommu = Lastcpu_iommu.Iommu
module Device = Lastcpu_device.Device
module Dma = Lastcpu_virtio.Dma
module Memctl = Lastcpu_devices.Memctl
module Smart_nic = Lastcpu_devices.Smart_nic
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Layout = Lastcpu_mem.Layout

type report = {
  seed : int64;
  iterations : int;
  structural : int;
  decoder : int;
  raw : int;
  engine_crashes : int;
  containment_violations : int;
  violation_details : string list;  (** first few, newest last *)
  malformed_rejected : int;
  stale_rejected : int;
  token_failures : int;
  fenced : int;
  quarantines : int;
  releases : int;
  attacker_trust : string;
  digest : int64;
}

let summary r =
  Printf.sprintf
    "fuzz seed=%Ld iters=%d structural=%d decoder=%d raw=%d crashes=%d \
     violations=%d malformed=%d stale=%d bad-tokens=%d fenced=%d \
     quarantines=%d releases=%d trust=%s digest=0x%Lx"
    r.seed r.iterations r.structural r.decoder r.raw r.engine_crashes
    r.containment_violations r.malformed_rejected r.stale_rejected
    r.token_failures r.fenced r.quarantines r.releases r.attacker_trust
    r.digest

(* --- structure-aware mutation ------------------------------------------- *)

let mutate_token fz (tok : Token.t) =
  match Fuzz.pick fz 8 with
  | 0 -> { tok with Token.issuer = Fuzz.mutate_int fz tok.Token.issuer }
  | 1 -> { tok with Token.subject = Fuzz.mutate_int fz tok.Token.subject }
  | 2 -> { tok with Token.pasid = Fuzz.mutate_int fz tok.Token.pasid }
  | 3 -> { tok with Token.base = Fuzz.mutate_int64 fz tok.Token.base }
  | 4 -> { tok with Token.length = Fuzz.mutate_int64 fz tok.Token.length }
  | 5 -> { tok with Token.nonce = Fuzz.mutate_int64 fz tok.Token.nonce }
  | 6 -> { tok with Token.epoch = Fuzz.mutate_int fz tok.Token.epoch }
  | _ -> { tok with Token.mac = Fuzz.mutate_int64 fz tok.Token.mac }

let mutate_payload fz (p : Message.payload) : Message.payload =
  match p with
  | Message.Alloc_request { pasid; va; bytes; perm } -> (
    match Fuzz.pick fz 3 with
    | 0 -> Message.Alloc_request { pasid = Fuzz.mutate_int fz pasid; va; bytes; perm }
    | 1 -> Message.Alloc_request { pasid; va = Fuzz.mutate_int64 fz va; bytes; perm }
    | _ -> Message.Alloc_request { pasid; va; bytes = Fuzz.mutate_int64 fz bytes; perm })
  | Message.Free_request { pasid; va; bytes } -> (
    match Fuzz.pick fz 3 with
    | 0 -> Message.Free_request { pasid = Fuzz.mutate_int fz pasid; va; bytes }
    | 1 -> Message.Free_request { pasid; va = Fuzz.mutate_int64 fz va; bytes }
    | _ -> Message.Free_request { pasid; va; bytes = Fuzz.mutate_int64 fz bytes })
  | Message.Map_directive { device; pasid; va; pa; bytes; perm; auth } -> (
    match Fuzz.pick fz 5 with
    | 0 ->
      Message.Map_directive
        { device = Fuzz.mutate_int fz device; pasid; va; pa; bytes; perm; auth }
    | 1 ->
      Message.Map_directive
        { device; pasid; va; pa = Fuzz.mutate_int64 fz pa; bytes; perm; auth }
    | 2 ->
      Message.Map_directive
        { device; pasid; va = Fuzz.mutate_int64 fz va; pa; bytes; perm; auth }
    | 3 ->
      Message.Map_directive
        { device; pasid; va; pa; bytes = Fuzz.mutate_int64 fz bytes; perm; auth }
    | _ ->
      Message.Map_directive
        { device; pasid; va; pa; bytes; perm; auth = mutate_token fz auth })
  | Message.Grant_request { to_device; pasid; va; bytes; perm; auth } -> (
    match Fuzz.pick fz 4 with
    | 0 ->
      Message.Grant_request
        { to_device = Fuzz.mutate_int fz to_device; pasid; va; bytes; perm; auth }
    | 1 ->
      Message.Grant_request
        { to_device; pasid = Fuzz.mutate_int fz pasid; va; bytes; perm; auth }
    | 2 ->
      Message.Grant_request
        { to_device; pasid; va; bytes = Fuzz.mutate_int64 fz bytes; perm; auth }
    | _ ->
      Message.Grant_request
        { to_device; pasid; va; bytes; perm; auth = mutate_token fz auth })
  | Message.Unmap_directive { device; pasid; va; bytes; auth } -> (
    match Fuzz.pick fz 3 with
    | 0 ->
      Message.Unmap_directive
        { device; pasid = Fuzz.mutate_int fz pasid; va; bytes; auth }
    | 1 ->
      Message.Unmap_directive
        { device; pasid; va = Fuzz.mutate_int64 fz va; bytes; auth }
    | _ ->
      Message.Unmap_directive
        { device; pasid; va; bytes; auth = mutate_token fz auth })
  | Message.Open_service { service; pasid; auth; params } -> (
    match Fuzz.pick fz 2 with
    | 0 ->
      Message.Open_service
        { service; pasid = Fuzz.mutate_int fz pasid; auth; params }
    | _ ->
      Message.Open_service
        {
          service =
            { service with Message.name = Fuzz.mutate_string fz service.Message.name };
          pasid;
          auth;
          params;
        })
  | Message.Discover_request { kind; query } ->
    Message.Discover_request { kind; query = Fuzz.mutate_string fz query }
  | Message.Load_image { image; bytes } -> (
    match Fuzz.pick fz 2 with
    | 0 -> Message.Load_image { image = Fuzz.mutate_string fz image; bytes }
    | _ -> Message.Load_image { image; bytes = Fuzz.mutate_int64 fz bytes })
  | Message.Device_failed { device } ->
    Message.Device_failed { device = Fuzz.mutate_int fz device }
  | Message.Doorbell { queue } -> Message.Doorbell { queue = Fuzz.mutate_int fz queue }
  | Message.Fault_notify { pasid; va; detail } -> (
    match Fuzz.pick fz 2 with
    | 0 -> Message.Fault_notify { pasid = Fuzz.mutate_int fz pasid; va; detail }
    | _ -> Message.Fault_notify { pasid; va; detail = Fuzz.mutate_string fz detail })
  | Message.App_message { tag; body } -> (
    match Fuzz.pick fz 2 with
    | 0 -> Message.App_message { tag = Fuzz.mutate_string fz tag; body }
    | _ -> Message.App_message { tag; body = Fuzz.mutate_string fz body })
  | other -> other

let mutate_message fz (m : Message.t) : Message.t =
  match Fuzz.pick fz 6 with
  | 0 -> { m with Message.src = Fuzz.mutate_int fz m.Message.src }
  | 1 ->
    let dst =
      match Fuzz.pick fz 3 with
      | 0 -> Types.Bus
      | 1 -> Types.Broadcast
      | _ -> Types.Device (Fuzz.pick fz 12 - 2)
    in
    { m with Message.dst }
  | 2 -> { m with Message.corr = Fuzz.mutate_int fz m.Message.corr }
  | _ -> { m with Message.payload = mutate_payload fz m.Message.payload }

(* --- the campaign -------------------------------------------------------- *)

let sentinel_bytes = 8192L
let sentinel_va = 0x4000_0000L
let sentinel = String.init 8192 (fun i -> Char.chr ((i * 131 + 17) land 0xff))

let run ?(seed = 42L) ?(iters = 400) () =
  let spec =
    {
      System.default_spec with
      System.seed;
      nic_count = 2;
      ssd_count = 1;
      quarantine = Some Sysbus.default_quarantine;
    }
  in
  let sys = System.build ~spec () in
  (match System.boot sys with
  | Ok () -> ()
  | Error e -> failwith ("fuzz: boot failed: " ^ e));
  let bus = System.bus sys in
  let mc = System.memctl sys in
  let victim = Smart_nic.device (System.nic sys 0) in
  let attacker_id = Smart_nic.id (System.nic sys 1) in
  let victim_id = Device.id victim in
  let ssd_id = Smart_ssd.id (System.ssd sys 0) in
  (* Victim tenant: one allocation holding a sentinel pattern. *)
  let pasid_v = System.fresh_pasid sys in
  let token = ref None in
  Device.alloc victim ~memctl:(Memctl.id mc) ~pasid:pasid_v ~va:sentinel_va
    ~bytes:sentinel_bytes ~perm:Types.perm_rw (fun r ->
      match r with Ok tok -> token := Some tok | Error _ -> ());
  System.run_until_idle sys;
  let token =
    match !token with
    | Some tok -> tok
    | None -> failwith "fuzz: victim allocation failed"
  in
  let victim_dma = Device.dma victim ~pasid:pasid_v in
  Dma.write_bytes victim_dma sentinel_va sentinel;
  (* The victim's physical frames, via its own IOMMU. *)
  let victim_iommu = Sysbus.iommu_of bus victim_id in
  let victim_pas =
    List.filter_map
      (fun i ->
        Iommu.probe victim_iommu ~pasid:pasid_v
          ~va:(Int64.add sentinel_va (Int64.mul (Int64.of_int i) Layout.page_size)))
      (List.init (Layout.pages_of_bytes sentinel_bytes) Fun.id)
  in
  if victim_pas = [] then failwith "fuzz: victim region not mapped";
  let page_of pa = Int64.mul (Int64.div pa Layout.page_size) Layout.page_size in
  let victim_frames = List.map page_of victim_pas in

  let fz = Fuzz.create ~seed:(Int64.logxor seed 0x6675_7a7aL) in
  let violations = ref 0 in
  let violation_details = ref [] in
  let crashes = ref 0 in
  let structural = ref 0 in
  let decoder = ref 0 in
  let raw = ref 0 in
  let releases = ref 0 in

  let violation what =
    incr violations;
    if List.length !violation_details < 8 then
      violation_details := !violation_details @ [ what ]
  in
  let check_containment () =
    (* 1. No path from the rogue's IOMMU into the victim's frames. *)
    let atk_iommu = Sysbus.iommu_of bus attacker_id in
    List.iter
      (fun pasid ->
        Iommu.iter_mappings atk_iommu ~pasid (fun ~va ~pa ->
          if List.exists (Int64.equal (page_of pa)) victim_frames then
            violation
              (Printf.sprintf
                 "rogue iommu reaches victim frame: pasid=%d va=0x%Lx pa=0x%Lx"
                 pasid va pa)))
      (Iommu.pasids atk_iommu);
    (* 2. Sentinel mapped and intact, read through the victim's own view. *)
    match Dma.read_bytes victim_dma sentinel_va (String.length sentinel) with
    | got -> if not (String.equal got sentinel) then violation "sentinel corrupted"
    | exception _ -> violation "victim lost its sentinel mapping"
  in

  (* Frame templates: real control-plane traffic the mutator perturbs. The
     captured token is genuine (victim is its subject), so mutants reach
     past the MAC check into wielder/range/epoch validation. *)
  let templates corr =
    let msg ?(dst = Types.Bus) payload =
      Message.make ~src:attacker_id ~dst ~corr payload
    in
    [|
      msg Message.Heartbeat;
      msg (Message.Device_alive { services = [] });
      msg ~dst:(Types.Device (Memctl.id mc))
        (Message.Alloc_request
           { pasid = pasid_v; va = 0x5000_0000L; bytes = 4096L; perm = Types.perm_rw });
      msg ~dst:(Types.Device (Memctl.id mc))
        (Message.Free_request { pasid = pasid_v; va = sentinel_va; bytes = sentinel_bytes });
      msg
        (Message.Map_directive
           {
             device = attacker_id;
             pasid = pasid_v;
             va = sentinel_va;
             pa = List.hd victim_pas;
             bytes = sentinel_bytes;
             perm = Types.perm_rw;
             auth = token;
           });
      msg
        (Message.Grant_request
           {
             to_device = attacker_id;
             pasid = pasid_v;
             va = sentinel_va;
             bytes = sentinel_bytes;
             perm = Types.perm_rw;
             auth = token;
           });
      msg
        (Message.Unmap_directive
           {
             device = victim_id;
             pasid = pasid_v;
             va = sentinel_va;
             bytes = sentinel_bytes;
             auth = token;
           });
      msg ~dst:Types.Broadcast
        (Message.Discover_request { kind = Types.File_service; query = "boot.img" });
      msg ~dst:(Types.Device ssd_id)
        (Message.Open_service
           {
             service = { Message.kind = Types.File_service; name = "fs"; version = 1 };
             pasid = pasid_v;
             auth = None;
             params = [];
           });
      msg ~dst:(Types.Device ssd_id)
        (Message.Load_image { image = "rogue.img"; bytes = 4096L });
      msg ~dst:Types.Broadcast (Message.Device_failed { device = victim_id });
      msg ~dst:(Types.Device victim_id) (Message.Doorbell { queue = 3 });
      msg ~dst:(Types.Device victim_id)
        (Message.Fault_notify { pasid = pasid_v; va = sentinel_va; detail = "spurious" });
      msg ~dst:(Types.Device victim_id)
        (Message.App_message { tag = "kv"; body = "\x01\x02\x03\x04" });
      msg ~dst:(Types.Device victim_id)
        (Message.Error_msg { code = Types.E_busy; detail = "retry-after:1000" });
    |]
  in

  let inject bytes =
    match
      Sysbus.send_raw bus ~src:attacker_id bytes;
      System.run_until_idle sys
    with
    | () -> ()
    | exception exn ->
      incr crashes;
      violation ("engine crash: " ^ Printexc.to_string exn)
  in

  for i = 0 to iters - 1 do
    (* Re-admit a quarantined rogue so the campaign keeps probing the whole
       surface (fence, reset line, re-announce, fresh scoring). One mutant
       is first injected while still fenced to exercise the drop path. *)
    let quarantined = Sysbus.trust_of bus attacker_id = Sysbus.Quarantined in
    let corr = 7000 + (i mod 13) in
    let template = Fuzz.choice fz (templates corr) in
    let bytes =
      match Fuzz.pick fz 3 with
      | 0 -> (
        incr structural;
        (* A mutant with an unrepresentable field (the wire's varints are
           non-negative) cannot exist on a physical lane; inject the
           pristine template instead — a clean replay is itself a useful
           probe (correlation reuse, re-sent directives). *)
        match Codec.encode_framed (mutate_message fz template) with
        | bytes -> bytes
        | exception _ -> Codec.encode_framed template)
      | 1 ->
        incr decoder;
        Codec.frame (Fuzz.mutate_bytes fz (Codec.encode template))
      | _ ->
        incr raw;
        Fuzz.mutate_bytes fz (Codec.encode_framed template)
    in
    inject bytes;
    if quarantined then begin
      incr releases;
      Sysbus.release_quarantine bus attacker_id;
      (match System.run_until_idle sys with
      | () -> ()
      | exception exn ->
        incr crashes;
        violation ("engine crash on re-admission: " ^ Printexc.to_string exn))
    end;
    if i mod 32 = 31 then check_containment ()
  done;
  check_containment ();
  {
    seed;
    iterations = iters;
    structural = !structural;
    decoder = !decoder;
    raw = !raw;
    engine_crashes = !crashes;
    containment_violations = !violations;
    violation_details = !violation_details;
    malformed_rejected = Sysbus.malformed_total bus;
    stale_rejected = Sysbus.stale_tokens bus;
    token_failures = (Sysbus.counters bus).Sysbus.token_failures;
    fenced = Sysbus.messages_fenced bus;
    quarantines = Sysbus.quarantines bus;
    releases = !releases;
    attacker_trust = Sysbus.trust_to_string (Sysbus.trust_of bus attacker_id);
    digest = Metrics.digest (Engine.metrics (System.engine sys));
  }
