(** Whole-machine checkpoint orchestrator.

    A checkpoint is taken at a quiescent point — only static events queued
    ({!Lastcpu_sim.Engine.quiescent}), every shard at a common quantum edge
    for multi-shard runs ({!Lastcpu_sim.Temporal.quiescent}) — and collects
    into one {!Lastcpu_sim.Snapshot} file:

    - a [meta] section (caller tag + shard count), so a resume into the
      wrong experiment or topology is rejected before any state moves;
    - for multi-shard targets, the coordinator state ([temporal]);
    - per shard: the engine's own state ([<i>/engine]) and one section per
      registered subsystem hook ([<i>/hook/<name>]).

    Restore expects a topology produced by the {e same deterministic
    builder} as the checkpointed run: it applies each shard's engine
    section first (reconciling the rebuilt static events against the saved
    pending times), then every hook in registration order — the order the
    rebuild registered them. *)

type target =
  | Single of Lastcpu_sim.Engine.t
  | Sharded of Lastcpu_sim.Temporal.t

val save : ?torn_keep_bytes:int -> path:string -> tag:string -> target -> unit
(** Collect every section and atomically write the snapshot (keeping the
    displaced previous file as the fallback generation).
    [torn_keep_bytes] is the chaos hook: write a deliberately truncated
    primary instead — the on-disk state of a process killed mid-checkpoint
    by a non-atomic writer.
    @raise Invalid_argument when the target is not quiescent (via
    {!Lastcpu_sim.Engine.save_state}) or a subsystem refuses to
    checkpoint. *)

val restore :
  path:string ->
  tag:string ->
  target ->
  (Lastcpu_sim.Snapshot.generation, string) result
(** Load [path] (falling back to the previous generation when the primary
    is missing, torn or corrupt) and overlay it onto the freshly rebuilt
    [target]. [Error] covers: both generations unreadable, tag mismatch,
    shard-count mismatch, a registered hook with no matching section, or a
    section whose contents don't fit the rebuilt topology. On success the
    returned generation says which file actually restored. *)
