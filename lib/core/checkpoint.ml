module Engine = Lastcpu_sim.Engine
module Temporal = Lastcpu_sim.Temporal
module Snapshot = Lastcpu_sim.Snapshot

type target =
  | Single of Engine.t
  | Sharded of Temporal.t

let engines = function
  | Single e -> [| e |]
  | Sharded tp -> Array.init (Temporal.shard_count tp) (Temporal.engine tp)

let engine_section i = Printf.sprintf "%d/engine" i
let hook_section i name = Printf.sprintf "%d/hook/%s" i name

let save ?torn_keep_bytes ~path ~tag target =
  let es = engines target in
  let meta =
    let w = Snapshot.W.create () in
    Snapshot.W.string w tag;
    Snapshot.W.varint w (Array.length es);
    Snapshot.W.contents w
  in
  let head =
    { Snapshot.name = "meta"; body = meta }
    ::
    (match target with
    | Single _ -> []
    | Sharded tp -> [ { Snapshot.name = "temporal"; body = Temporal.save_state tp } ])
  in
  let shards =
    Array.to_list
      (Array.mapi
         (fun i e ->
           { Snapshot.name = engine_section i; body = Engine.save_state e }
           :: List.map
                (fun (name, save, _restore) ->
                  { Snapshot.name = hook_section i name; body = save () })
                (Engine.snapshot_hooks e))
         es)
    |> List.concat
  in
  let sections = head @ shards in
  match torn_keep_bytes with
  | None -> Snapshot.write ~path sections
  | Some keep_bytes -> Snapshot.write_torn ~path ~keep_bytes sections

exception Mismatch of string

let restore ~path ~tag target =
  match Snapshot.load ~path with
  | Error e -> Error e
  | Ok (generation, sections) -> (
    let find name =
      match Snapshot.find sections name with
      | Some body -> body
      | None ->
        raise
          (Mismatch
             (Printf.sprintf
                "snapshot has no %S section (topology/checkpoint mismatch)"
                name))
    in
    try
      let meta = Snapshot.R.of_string (find "meta") in
      let saved_tag = Snapshot.R.string meta in
      if not (String.equal saved_tag tag) then
        raise
          (Mismatch
             (Printf.sprintf "snapshot is of %S, this run is %S" saved_tag tag));
      let es = engines target in
      let saved_shards = Snapshot.R.varint meta in
      if saved_shards <> Array.length es then
        raise
          (Mismatch
             (Printf.sprintf "snapshot has %d shard(s), topology has %d"
                saved_shards (Array.length es)));
      (match target with
      | Single _ -> ()
      | Sharded tp -> Temporal.restore_state tp (find "temporal"));
      (* Per shard: the engine first — reconciling the rebuilt static
         events against the saved pending times — then every hook in
         registration order, so a hook whose restore re-arms a static
         (e.g. the bus liveness sweep) schedules it after the queue
         filter has run, not into it. *)
      Array.iteri
        (fun i e ->
          Engine.restore_state e (find (engine_section i));
          List.iter
            (fun (name, _save, restore) -> restore (find (hook_section i name)))
            (Engine.snapshot_hooks e))
        es;
      Ok generation
    with
    | Mismatch m -> Error m
    | Snapshot.R.Corrupt m -> Error ("corrupt snapshot section: " ^ m)
    | Invalid_argument m -> Error ("snapshot does not fit this topology: " ^ m))
