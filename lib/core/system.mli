(** Assembly of a complete CPU-less machine (the paper's Figure 1).

    A built system contains: simulated DRAM, the system management bus, a
    memory controller, one or more smart SSDs and smart NICs, an
    authentication device and an operator console — and no CPU. [boot]
    runs the §2.2 initialization: every device self-tests and announces
    itself; the bus records liveness. *)

module Types = Lastcpu_proto.Types

type spec = {
  seed : int64;
  costs : Lastcpu_sim.Costs.t;
  enable_tokens : bool;
  heartbeat_timeout_ns : int64;  (** 0 disables liveness sweeping *)
  nic_count : int;
  ssd_count : int;
  accel_count : int;
  memctl_count : int;  (** parallel memory controllers (disaggregation) *)
  bus_lanes : int;  (** control-fabric lanes (1 = classic shared bus) *)
  bus_lane_capacity : int option;
      (** bound each bus lane's queue; [None] (default) = unbounded *)
  device_queue_capacity : int option;
      (** bound each device's request station; [None] (default) = unbounded *)
  ssd_geometry : Lastcpu_flash.Nand.geometry option;
  with_auth : bool;
  users : (string * string) list;
  with_console : bool;
  dram_pages : int;
  fault_plan : Lastcpu_sim.Faults.plan;
      (** seeded chaos plan carried by the engine; {!Lastcpu_sim.Faults.zero}
          (the default) injects nothing *)
  tie : Lastcpu_sim.Engine.tie_break;
      (** same-tick event order; [Fifo] (default) is the determinism
          contract, the other modes drive the ordering sanitizer *)
  sanitize : bool;
      (** journal multi-event ticks for the ordering sanitizer (default
          [false]: zero overhead) *)
  shard : int;
      (** home shard id for this system's bus and network in a temporally
          decoupled multi-shard run (default [0]; irrelevant outside one) *)
  quarantine : Lastcpu_bus.Sysbus.quarantine_config option;
      (** bus misbehavior scoring + automatic quarantine; [None] (default)
          disables the policy entirely (bit-identical to pre-containment) *)
}

val default_spec : spec

type t

val build : ?spec:spec -> unit -> t
(** Construct all hardware. Devices begin their self-tests immediately;
    call [boot] to advance virtual time until the system is live. *)

val boot : ?timeout:int64 -> t -> (unit, string) result
(** Run the engine until every attached device is live (default timeout
    1 ms of virtual time). *)

val engine : t -> Lastcpu_sim.Engine.t
val mem : t -> Lastcpu_mem.Physmem.t
val net : t -> Lastcpu_net.Netsim.t
val bus : t -> Lastcpu_bus.Sysbus.t
val memctl : t -> Lastcpu_devices.Memctl.t
(** The first memory controller. *)

val memctls : t -> Lastcpu_devices.Memctl.t list
val ssd : t -> int -> Lastcpu_devices.Smart_ssd.t
val nic : t -> int -> Lastcpu_devices.Smart_nic.t
val ssds : t -> Lastcpu_devices.Smart_ssd.t list
val nics : t -> Lastcpu_devices.Smart_nic.t list
val auth : t -> Lastcpu_devices.Auth_dev.t option
val console : t -> Lastcpu_devices.Console_dev.t option
val accel : t -> int -> Lastcpu_devices.Accel_dev.t
val accels : t -> Lastcpu_devices.Accel_dev.t list

val fresh_pasid : t -> Types.pasid
(** Allocate an application address-space id. *)

val run_until_idle : ?max_events:int -> t -> unit
(** Drain the event queue (bounded by [max_events], default 10 million). *)

val run_until_quiescent : ?max_events:int -> t -> unit
(** Drain volatile events only, stopping as soon as the queue holds
    nothing but statics (bounded by [max_events], default 10 million).
    Unlike {!run_until_idle} this does not fast-forward through pending
    fault-plan statics, so a crash window scheduled for the future
    survives bring-up. *)

val run_for : t -> int64 -> unit
(** Advance virtual time by the given nanoseconds. *)

val topology : t -> string
(** Figure-1 rendering: devices, their services, and the control-plane
    topology, as text. *)
