(** Structure-aware deterministic protocol fuzzer.

    A rogue smart NIC injects seed-salted mutants of real control-plane
    frames straight onto the bus (raw bytes, bypassing the device
    framework) while the campaign asserts the containment invariants: the
    engine never crashes, the rogue's IOMMU never acquires a translation
    into the victim tenant's physical frames, and the victim's sentinel
    region stays mapped and intact. Same seed, same campaign, same
    report — the summary line is golden-tested in CI. *)

type report = {
  seed : int64;
  iterations : int;
  structural : int;  (** field-level mutants (valid CRC, valid encoding) *)
  decoder : int;  (** body-corrupted mutants re-framed with a valid CRC *)
  raw : int;  (** framed-byte mutants (CRC usually broken) *)
  engine_crashes : int;  (** exceptions that escaped the event loop *)
  containment_violations : int;
  violation_details : string list;  (** first few, newest last *)
  malformed_rejected : int;  (** bus-counted undecodable frames *)
  stale_rejected : int;  (** tokens killed by an epoch bump *)
  token_failures : int;  (** MAC/wielder/range rejections *)
  fenced : int;  (** frames dropped at the quarantine fence *)
  quarantines : int;
  releases : int;  (** re-admissions performed by the campaign *)
  attacker_trust : string;  (** rogue's trust state at campaign end *)
  digest : int64;  (** metrics digest — the reproducibility witness *)
}

val run : ?seed:int64 -> ?iters:int -> unit -> report
(** Run a campaign (defaults: seed 42, 400 iterations). Deterministic:
    equal arguments give byte-equal {!summary} lines. *)

val summary : report -> string
(** One-line report, suitable for a committed golden. *)
