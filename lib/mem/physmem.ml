type t = {
  size : int64;
  frames : (int64, Bytes.t) Hashtbl.t;  (* frame number -> contents *)
}

let default_size = Int64.shift_left 1L 30 (* 1 GiB *)

let create ?(size = default_size) () =
  if size <= 0L then invalid_arg "Physmem.create: size must be positive";
  { size; frames = Hashtbl.create 1024 }

let size t = t.size

let check t addr len =
  if addr < 0L || Int64.add addr (Int64.of_int len) > t.size then
    invalid_arg
      (Printf.sprintf "Physmem: access [0x%Lx, +%d) out of range" addr len)

let frame_size = Int64.to_int Layout.page_size

let frame t page =
  match Hashtbl.find_opt t.frames page with
  | Some b -> b
  | None ->
    let b = Bytes.make frame_size '\000' in
    Hashtbl.replace t.frames page b;
    b

let read_u8 t addr =
  check t addr 1;
  let page = Layout.page_of_addr addr in
  match Hashtbl.find_opt t.frames page with
  | None -> 0
  | Some b -> Char.code (Bytes.get b (Layout.offset_in_page addr))

let write_u8 t addr v =
  check t addr 1;
  let b = frame t (Layout.page_of_addr addr) in
  Bytes.set b (Layout.offset_in_page addr) (Char.chr (v land 0xff))

let read_u64 t addr =
  check t addr 8;
  let v = ref 0L in
  for i = 0 to 7 do
    let byte = read_u8 t (Int64.add addr (Int64.of_int i)) in
    v := Int64.logor !v (Int64.shift_left (Int64.of_int byte) (i * 8))
  done;
  !v

let write_u64 t addr v =
  check t addr 8;
  for i = 0 to 7 do
    write_u8 t
      (Int64.add addr (Int64.of_int i))
      (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xff)
  done

let read_bytes t addr len =
  check t addr len;
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = Layout.offset_in_page a in
    let chunk = min (len - !pos) (frame_size - off) in
    (match Hashtbl.find_opt t.frames (Layout.page_of_addr a) with
    | None -> Bytes.fill out !pos chunk '\000'
    | Some b -> Bytes.blit b off out !pos chunk);
    pos := !pos + chunk
  done;
  Bytes.unsafe_to_string out

let write_bytes t addr s =
  let len = String.length s in
  check t addr len;
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = Layout.offset_in_page a in
    let chunk = min (len - !pos) (frame_size - off) in
    let b = frame t (Layout.page_of_addr a) in
    Bytes.blit_string s !pos b off chunk;
    pos := !pos + chunk
  done

let fill t addr len c = write_bytes t addr (String.make len c)

let touched_frames t = Hashtbl.length t.frames

(* Checkpointing: every touched frame verbatim, sparsely, in frame-number
   order. Untouched frames are definitionally zero, and the touched count
   itself is observable via [touched_frames], so frames are saved even
   when their contents have been rewritten to zero. *)
module Snapshot = Lastcpu_sim.Snapshot

let save w t =
  Snapshot.W.i64 w t.size;
  Snapshot.W.list w
    (fun w (page, b) ->
      Snapshot.W.i64 w page;
      Snapshot.W.string w (Bytes.to_string b))
    (Lastcpu_sim.Detmap.bindings t.frames)

let restore r t =
  let size = Snapshot.R.i64 r in
  if size <> t.size then
    invalid_arg "Physmem.restore: DRAM size differs from checkpoint";
  Hashtbl.reset t.frames;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let page = Snapshot.R.i64 r in
    let contents = Snapshot.R.string r in
    if String.length contents <> frame_size then
      raise (Snapshot.R.Corrupt "physmem frame has wrong size");
    Hashtbl.replace t.frames page (Bytes.of_string contents)
  done
