(* DRAM on chunk-granular Bigarray backing.

   Frames (4 KiB, the IOMMU translation unit) remain the sparse-
   materialisation and snapshot unit: a frame counts as touched only once
   written (or handed out as a view), and [save] emits exactly the touched
   set, so the snapshot byte format is unchanged from the Hashtbl-of-Bytes
   implementation. Chunks (16 frames) are merely the allocation unit of
   the backing store, sized so any naturally aligned page range fits in
   one chunk and [view] can return a real sub-array over it. *)

module Slice = Lastcpu_proto.Slice

type view = Slice.t

type t = {
  size : int64;
  size_i : int;  (* [size] as a native int, for the byte-access fast path *)
  chunks : (int64, view) Hashtbl.t;  (* chunk number -> backing store *)
  touched : (int64, unit) Hashtbl.t; (* frame numbers materialised so far *)
  (* One-entry caches for the per-byte DMA path. [read_u8]/[write_u8] run
     for every descriptor and ring byte a device touches; an int64-keyed
     [Hashtbl.find_opt] per byte (polymorphic hash of a boxed key) would
     dominate the whole access. Pure host-side memoisation: the cached
     chunk is the same Bigarray the table holds, and the touched-page
     cache only skips idempotent set re-insertions. *)
  mutable last_cnum : int;           (* -1 = invalid *)
  mutable last_chunk : view;
  mutable last_touched : int;        (* frame number, -1 = invalid *)
}

let default_size = Int64.shift_left 1L 30 (* 1 GiB *)

let chunk_bits = 16 (* 64 KiB *)
let chunk_bytes = 1 lsl chunk_bits
let chunk_mask = Int64.of_int (chunk_bytes - 1)
let chunk_of_addr a = Int64.shift_right_logical a chunk_bits
let offset_in_chunk a = Int64.to_int (Int64.logand a chunk_mask)

let create ?(size = default_size) () =
  if size <= 0L then invalid_arg "Physmem.create: size must be positive";
  {
    size;
    size_i = Int64.to_int size;
    chunks = Hashtbl.create 64;
    touched = Hashtbl.create 1024;
    last_cnum = -1;
    (* Placeholder until the first cache fill: per-instance, so the cell
       is owned by this DRAM like every other mutable field. *)
    last_chunk = Bigarray.Array1.create Bigarray.char Bigarray.c_layout 1;
    last_touched = -1;
  }

let size t = t.size

let check t addr len =
  if addr < 0L || Int64.add addr (Int64.of_int len) > t.size then
    invalid_arg
      (Printf.sprintf "Physmem: access [0x%Lx, +%d) out of range" addr len)

let frame_size = Int64.to_int Layout.page_size

let chunk t idx =
  match Hashtbl.find_opt t.chunks idx with
  | Some c -> c
  | None ->
    let c = Bigarray.Array1.create Bigarray.char Bigarray.c_layout chunk_bytes in
    Bigarray.Array1.fill c '\000';
    Hashtbl.replace t.chunks idx c;
    c

(* Cached [chunk], keyed by native-int chunk number; materialises the
   chunk if absent (write path). *)
let chunk_c t cnum =
  if cnum = t.last_cnum then t.last_chunk
  else begin
    let c = chunk t (Int64.of_int cnum) in
    t.last_cnum <- cnum;
    t.last_chunk <- c;
    c
  end

let mark_touched t frame =
  if frame <> t.last_touched then begin
    Hashtbl.replace t.touched (Int64.of_int frame) ();
    t.last_touched <- frame
  end

(* Untouched frames are definitionally zero; the touched set, not the
   chunk table, is what [save] persists and [touched_frames] reports. *)
let touch_range t addr len =
  if len > 0 then begin
    let first = Layout.page_of_addr addr
    and last = Layout.page_of_addr (Int64.add addr (Int64.of_int (len - 1))) in
    let p = ref first in
    while !p <= last do
      Hashtbl.replace t.touched !p ();
      p := Int64.add !p 1L
    done
  end

(* Native-int byte accessors — the form the DMA per-byte path calls so
   no boxed address crosses the module boundary. *)
let read_byte t ai =
  if ai < 0 || ai >= t.size_i then check t (Int64.of_int ai) 1;
  let cnum = ai lsr chunk_bits in
  if cnum = t.last_cnum then
    Char.code (Bigarray.Array1.unsafe_get t.last_chunk (ai land (chunk_bytes - 1)))
  else begin
    match Hashtbl.find_opt t.chunks (Int64.of_int cnum) with
    | None -> 0 (* untouched, definitionally zero; nothing to cache *)
    | Some c ->
      t.last_cnum <- cnum;
      t.last_chunk <- c;
      Char.code (Bigarray.Array1.unsafe_get c (ai land (chunk_bytes - 1)))
  end

let write_byte t ai v =
  if ai < 0 || ai >= t.size_i then check t (Int64.of_int ai) 1;
  mark_touched t (ai lsr Layout.page_bits);
  let c = chunk_c t (ai lsr chunk_bits) in
  Bigarray.Array1.unsafe_set c (ai land (chunk_bytes - 1))
    (Char.unsafe_chr (v land 0xff))

let read_u8 t addr = read_byte t (Int64.to_int addr)
let write_u8 t addr v = write_byte t (Int64.to_int addr) v

let read_u64 t addr =
  check t addr 8;
  let v = ref 0L in
  for i = 0 to 7 do
    let byte = read_u8 t (Int64.add addr (Int64.of_int i)) in
    v := Int64.logor !v (Int64.shift_left (Int64.of_int byte) (i * 8))
  done;
  !v

let write_u64 t addr v =
  check t addr 8;
  for i = 0 to 7 do
    write_u8 t
      (Int64.add addr (Int64.of_int i))
      (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xff)
  done

let read_into t addr out ~pos:start ~len =
  check t addr len;
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = offset_in_chunk a in
    let n = min (len - !pos) (chunk_bytes - off) in
    (match Hashtbl.find_opt t.chunks (chunk_of_addr a) with
    | None -> Bytes.fill out (start + !pos) n '\000'
    | Some c -> Slice.blit_to_bytes c ~src_pos:off out ~dst_pos:(start + !pos) ~len:n);
    pos := !pos + n
  done

let read_bytes t addr len =
  let out = Bytes.create len in
  read_into t addr out ~pos:0 ~len;
  Bytes.unsafe_to_string out

let write_sub t addr blit src ~pos:start ~len =
  check t addr len;
  touch_range t addr len;
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = offset_in_chunk a in
    let n = min (len - !pos) (chunk_bytes - off) in
    blit src (start + !pos) (chunk t (chunk_of_addr a)) off n;
    pos := !pos + n
  done

let blit_string_in src src_pos c dst_pos len =
  Slice.blit_string src ~src_pos c ~dst_pos ~len

let blit_bytes_in src src_pos c dst_pos len =
  Slice.blit_bytes src ~src_pos c ~dst_pos ~len

let write_bytes t addr s =
  write_sub t addr blit_string_in s ~pos:0 ~len:(String.length s)

let write_bytes_sub t addr b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Physmem.write_bytes_sub";
  write_sub t addr blit_bytes_in b ~pos ~len

let write_string_sub t addr s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Physmem.write_string_sub";
  write_sub t addr blit_string_in s ~pos ~len

let fill t addr len c = write_bytes t addr (String.make len c)

let view t addr len =
  check t addr len;
  if len <= 0 then invalid_arg "Physmem.view: length must be positive";
  let c0 = chunk_of_addr addr
  and c1 = chunk_of_addr (Int64.add addr (Int64.of_int (len - 1))) in
  if c0 <> c1 then
    invalid_arg
      (Printf.sprintf "Physmem.view: [0x%Lx, +%d) crosses a chunk boundary"
         addr len);
  (* A view is a write-capable window: every frame under it must join the
     touched set now, or bytes written through it would be invisible to
     [save]. *)
  touch_range t addr len;
  Bigarray.Array1.sub (chunk t c0) (offset_in_chunk addr) len

let touched_frames t = Hashtbl.length t.touched

(* Checkpointing: every touched frame verbatim, sparsely, in frame-number
   order — byte-identical to the format the Bytes-backed implementation
   wrote, so old checkpoints restore and new ones replay under old
   readers. Untouched frames are definitionally zero, and the touched
   count itself is observable via [touched_frames], so frames are saved
   even when their contents have been rewritten to zero. *)
module Snapshot = Lastcpu_sim.Snapshot

let frame_contents t page =
  (* The format always carries whole frames. If DRAM ends mid-frame the
     tail beyond [size] travels as zeros (it is unaddressable anyway). *)
  let out = Bytes.make frame_size '\000' in
  let addr = Layout.addr_of_page page in
  let len = min frame_size (Int64.to_int (Int64.sub t.size addr)) in
  read_into t addr out ~pos:0 ~len;
  Bytes.unsafe_to_string out

let save w t =
  Snapshot.W.i64 w t.size;
  Snapshot.W.list w
    (fun w (page, ()) ->
      Snapshot.W.i64 w page;
      Snapshot.W.string w (frame_contents t page))
    (Lastcpu_sim.Detmap.bindings t.touched)

let restore r t =
  let size = Snapshot.R.i64 r in
  if size <> t.size then
    invalid_arg "Physmem.restore: DRAM size differs from checkpoint";
  Hashtbl.reset t.chunks;
  Hashtbl.reset t.touched;
  t.last_cnum <- -1;
  t.last_touched <- -1;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let page = Snapshot.R.i64 r in
    let contents = Snapshot.R.string r in
    if String.length contents <> frame_size then
      raise (Snapshot.R.Corrupt "physmem frame has wrong size");
    let addr = Layout.addr_of_page page in
    let len = min frame_size (Int64.to_int (Int64.sub t.size addr)) in
    write_string_sub t addr contents ~pos:0 ~len
  done
