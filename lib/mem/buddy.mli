(** Buddy allocator over a contiguous physical region.

    The memory controller device uses one of these per DRAM bank to manage
    physical frames. Classic power-of-two buddy system: allocations are
    rounded to the next power-of-two page count; freeing coalesces with the
    buddy block whenever possible. *)

type t

val create : base:int64 -> pages:int -> t
(** [create ~base ~pages] manages [pages] 4-KiB frames starting at physical
    address [base]. [pages] must be a power of two and [base] page-aligned. *)

val alloc : t -> pages:int -> int64 option
(** [alloc t ~pages] returns the base physical address of a block covering
    at least [pages] frames, or [None] when no block fits. *)

val free : t -> addr:int64 -> pages:int -> unit
(** [free t ~addr ~pages] releases a block previously returned by [alloc]
    with the same (rounded) size.
    @raise Invalid_argument on double-free or a foreign address. *)

val total_pages : t -> int
val free_pages : t -> int
val used_pages : t -> int

val largest_free_block : t -> int
(** Largest currently allocatable block, in pages (external-fragmentation
    indicator). *)

val check_invariants : t -> bool
(** Internal consistency: free lists disjoint, sizes accounted. Used by
    property tests. *)

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append the free sets and allocated-block table (checkpointing). *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Overwrite allocator state with state written by {!save}.
    @raise Invalid_argument if [base]/[pages] differ from the checkpoint.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
