(* Power-of-two buddy allocator. Orders index free lists: order k holds
   blocks of 2^k pages. Free blocks are kept in per-order hash sets keyed by
   page index so buddy lookup and removal are O(1). *)

type t = {
  base : int64;
  pages : int;
  max_order : int;
  free_sets : (int, unit) Hashtbl.t array;  (* order -> page-index set *)
  mutable free_count : int;
  (* Allocated block sizes, so [free] can validate and so invariants are
     checkable: page index -> order. *)
  allocated : (int, int) Hashtbl.t;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let order_of_pages pages =
  assert (pages > 0);
  let rec go order size = if size >= pages then order else go (order + 1) (size * 2) in
  go 0 1

let create ~base ~pages =
  if not (is_power_of_two pages) then
    invalid_arg "Buddy.create: pages must be a power of two";
  if not (Layout.is_page_aligned base) then
    invalid_arg "Buddy.create: base must be page-aligned";
  let max_order = order_of_pages pages in
  let free_sets = Array.init (max_order + 1) (fun _ -> Hashtbl.create 16) in
  Hashtbl.replace free_sets.(max_order) 0 ();
  {
    base;
    pages;
    max_order;
    free_sets;
    free_count = pages;
    allocated = Hashtbl.create 64;
  }

(* Take the lowest-indexed free block, not an arbitrary one: hash order
   would make the address returned by [alloc] depend on Hashtbl internals
   rather than on the request sequence alone. Lowest-first also packs
   allocations toward the base, which is the conventional policy. *)
let take_any tbl =
  match Lastcpu_sim.Detmap.min_key tbl with
  | None -> None
  | Some k ->
    Hashtbl.remove tbl k;
    Some k

let alloc t ~pages =
  if pages <= 0 || pages > t.pages then None
  else begin
    let want = order_of_pages pages in
    (* Find the smallest order >= want with a free block. *)
    let rec find order =
      if order > t.max_order then None
      else
        match take_any t.free_sets.(order) with
        | Some idx -> Some (order, idx)
        | None -> find (order + 1)
    in
    match find want with
    | None -> None
    | Some (order, idx) ->
      (* Split down to the wanted order, freeing the upper halves. *)
      let rec split order idx =
        if order = want then idx
        else begin
          let order = order - 1 in
          let buddy = idx + (1 lsl order) in
          Hashtbl.replace t.free_sets.(order) buddy ();
          split order idx
        end
      in
      let idx = split order idx in
      Hashtbl.replace t.allocated idx want;
      t.free_count <- t.free_count - (1 lsl want);
      Some (Int64.add t.base (Layout.addr_of_page (Int64.of_int idx)))
  end

let free t ~addr ~pages =
  let rel = Int64.sub addr t.base in
  if rel < 0L || not (Layout.is_page_aligned rel) then
    invalid_arg "Buddy.free: bad address";
  let idx = Int64.to_int (Layout.page_of_addr rel) in
  let want = order_of_pages pages in
  (match Hashtbl.find_opt t.allocated idx with
  | None -> invalid_arg "Buddy.free: not allocated (double free?)"
  | Some order when order <> want ->
    invalid_arg "Buddy.free: size mismatch with allocation"
  | Some _ -> ());
  Hashtbl.remove t.allocated idx;
  t.free_count <- t.free_count + (1 lsl want);
  (* Coalesce with the buddy while it is free. *)
  let rec coalesce order idx =
    if order >= t.max_order then Hashtbl.replace t.free_sets.(order) idx ()
    else begin
      let buddy = idx lxor (1 lsl order) in
      if Hashtbl.mem t.free_sets.(order) buddy then begin
        Hashtbl.remove t.free_sets.(order) buddy;
        coalesce (order + 1) (min idx buddy)
      end
      else Hashtbl.replace t.free_sets.(order) idx ()
    end
  in
  coalesce want idx

let total_pages t = t.pages
let free_pages t = t.free_count
let used_pages t = t.pages - t.free_count

let largest_free_block t =
  let rec go order =
    if order < 0 then 0
    else if Hashtbl.length t.free_sets.(order) > 0 then 1 lsl order
    else go (order - 1)
  in
  go t.max_order

(* Checkpointing: per-order free sets plus the allocated-block table.
   Geometry (base, pages) is structural — the rebuilt allocator must match
   or the saved block indices are meaningless. *)
module Snapshot = Lastcpu_sim.Snapshot

let save w t =
  Snapshot.W.i64 w t.base;
  Snapshot.W.varint w t.pages;
  Array.iter
    (fun set ->
      Snapshot.W.list w
        (fun w idx -> Snapshot.W.varint w idx)
        (Lastcpu_sim.Detmap.sorted_keys set))
    t.free_sets;
  Snapshot.W.varint w t.free_count;
  Snapshot.W.list w
    (fun w (idx, order) ->
      Snapshot.W.varint w idx;
      Snapshot.W.varint w order)
    (Lastcpu_sim.Detmap.bindings t.allocated)

let restore r t =
  let base = Snapshot.R.i64 r in
  let pages = Snapshot.R.varint r in
  if base <> t.base || pages <> t.pages then
    invalid_arg "Buddy.restore: geometry differs from checkpoint";
  Array.iter
    (fun set ->
      Hashtbl.reset set;
      let n = Snapshot.R.varint r in
      for _ = 1 to n do
        Hashtbl.replace set (Snapshot.R.varint r) ()
      done)
    t.free_sets;
  t.free_count <- Snapshot.R.varint r;
  Hashtbl.reset t.allocated;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let idx = Snapshot.R.varint r in
    let order = Snapshot.R.varint r in
    Hashtbl.replace t.allocated idx order
  done

let check_invariants t =
  (* Sum of free-list block sizes equals free_count, blocks are in range
     and properly aligned, and no free block overlaps an allocated one. *)
  let sum = ref 0 in
  let ok = ref true in
  Array.iteri
    (fun order set ->
      Lastcpu_sim.Detmap.iter_sorted
        (fun idx () ->
          let size = 1 lsl order in
          sum := !sum + size;
          if idx mod size <> 0 || idx + size > t.pages then ok := false;
          if Hashtbl.mem t.allocated idx then ok := false)
        set)
    t.free_sets;
  let allocated_sum =
    Lastcpu_sim.Detmap.fold_sorted
      (fun _ order acc -> acc + (1 lsl order))
      t.allocated 0
  in
  !ok && !sum = t.free_count && allocated_sum = t.pages - t.free_count
