(** Simulated physical memory (DRAM).

    Sparse byte store on [Bigarray] chunk backing: frames (4 KiB) are
    materialised on first write so multi-GiB address spaces cost only what
    is touched. All device DMA in the emulation lands here (after IOMMU
    translation). The chunk granularity exists so {!view} can hand out
    real sub-arrays over the backing store — the zero-copy data plane
    (DMI grants, NAND page I/O, codec slices) is built on those views. *)

type t

type view =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A window directly over backing DRAM: writes through it are real
    memory writes (no copy, no further bookkeeping). See DESIGN.md §14
    for the lifetime rules. *)

val create : ?size:int64 -> unit -> t
(** [create ~size ()] models [size] bytes of DRAM (default 1 GiB). Accesses
    beyond [size] raise [Invalid_argument]. *)

val size : t -> int64

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit

(** Native-int forms of [read_u8]/[write_u8], for per-byte hot paths
    where a boxed address per access would dominate. Physical addresses
    fit a native int (DRAM is well under 2^62 bytes). *)

val read_byte : t -> int -> int

val write_byte : t -> int -> int -> unit
val read_u64 : t -> int64 -> int64
(** Little-endian, may span frames. *)

val write_u64 : t -> int64 -> int64 -> unit
val read_bytes : t -> int64 -> int -> string
val write_bytes : t -> int64 -> string -> unit

val read_into : t -> int64 -> Bytes.t -> pos:int -> len:int -> unit
(** [read_into t addr buf ~pos ~len] copies DRAM into a caller-provided
    buffer — [read_bytes] without the result allocation. *)

val write_bytes_sub : t -> int64 -> Bytes.t -> pos:int -> len:int -> unit
(** Write a slice of [b] without first carving it into a string. *)

val write_string_sub : t -> int64 -> string -> pos:int -> len:int -> unit
(** Write a slice of [s] without first carving it into a fresh string. *)

val fill : t -> int64 -> int -> char -> unit

val view : t -> int64 -> int -> view
(** [view t addr len] is a window straight onto backing DRAM. The range
    must lie within one backing chunk (64 KiB, so any naturally aligned
    4 KiB page qualifies) or [Invalid_argument] is raised. The frames
    under the view join the touched set immediately: a view is a
    write-capable surface, and bytes written through it must be visible
    to {!save}. *)

val touched_frames : t -> int
(** Number of frames materialised so far (memory-footprint metric). *)

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append every touched frame, sparsely (checkpointing). The byte format
    is unchanged from the pre-Bigarray implementation: old checkpoints
    restore, new checkpoints replay under old readers. *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Replace the frame store with state written by {!save}.
    @raise Invalid_argument if the DRAM size differs from the checkpoint.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
