(** Simulated physical memory (DRAM).

    Sparse, frame-granular byte store: frames are materialised on first
    write so multi-GiB address spaces cost only what is touched. All device
    DMA in the emulation lands here (after IOMMU translation). *)

type t

val create : ?size:int64 -> unit -> t
(** [create ~size ()] models [size] bytes of DRAM (default 1 GiB). Accesses
    beyond [size] raise [Invalid_argument]. *)

val size : t -> int64

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_u64 : t -> int64 -> int64
(** Little-endian, may span frames. *)

val write_u64 : t -> int64 -> int64 -> unit
val read_bytes : t -> int64 -> int -> string
val write_bytes : t -> int64 -> string -> unit
val fill : t -> int64 -> int -> char -> unit

val touched_frames : t -> int
(** Number of frames materialised so far (memory-footprint metric). *)

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append every touched frame, sparsely (checkpointing). *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Replace the frame store with state written by {!save}.
    @raise Invalid_argument if the DRAM size differs from the checkpoint.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
