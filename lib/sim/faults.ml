(* Deterministic fault-injection plans, carried by the engine like Metrics.

   Every decision is a pure function of (fault seed, content key,
   occurrence number, fault class) — NOT a draw from a shared sequential
   stream. Callers pass a key derived from the thing being faulted (message
   route and payload kind, frame bytes, NAND page coordinates); the nth
   fault decision for a given key is then independent of how unrelated
   decisions interleave. That property is what lets the same-tick ordering
   sanitizer rerun a workload with a perturbed tie-break without the fault
   pattern itself shifting underneath it: reordering two independent events
   inside one tick reorders their draws, but not their outcomes.

   The fault seed is the run seed xor a fixed salt, NOT the engine's root
   RNG — forking the root would advance its state and perturb every
   workload that samples from it. Every predicate guards on [rate > 0.]
   before touching the occurrence table, so a zero-rate plan does no work
   and is bit-identical to an absent plan. *)

type crash_window = { device : string; at_ns : int64; down_ns : int64 }

type plan = {
  msg_loss : float;
  msg_dup : float;
  msg_delay : float;
  msg_jitter_ns : int64;
  msg_corrupt : float;
  frame_loss : float;
  frame_reorder : float;
  frame_reorder_ns : int64;
  nand_read_fail : float;
  nand_bit_flip : float;
  crashes : crash_window list;
}

let zero =
  {
    msg_loss = 0.;
    msg_dup = 0.;
    msg_delay = 0.;
    msg_jitter_ns = 0L;
    msg_corrupt = 0.;
    frame_loss = 0.;
    frame_reorder = 0.;
    frame_reorder_ns = 0L;
    nand_read_fail = 0.;
    nand_bit_flip = 0.;
    crashes = [];
  }

let default_chaos =
  {
    msg_loss = 0.02;
    msg_dup = 0.01;
    msg_delay = 0.05;
    msg_jitter_ns = 2_000L;
    msg_corrupt = 0.005;
    frame_loss = 0.02;
    frame_reorder = 0.05;
    frame_reorder_ns = 1_500L;
    nand_read_fail = 0.01;
    nand_bit_flip = 0.002;
    crashes = [];
  }

let is_zero p =
  p.msg_loss = 0. && p.msg_dup = 0. && p.msg_delay = 0. && p.msg_corrupt = 0.
  && p.frame_loss = 0. && p.frame_reorder = 0. && p.nand_read_fail = 0.
  && p.nand_bit_flip = 0. && p.crashes = []

type counters = {
  messages_lost : Metrics.counter;
  messages_duplicated : Metrics.counter;
  messages_delayed : Metrics.counter;
  messages_corrupted : Metrics.counter;
  frames_lost : Metrics.counter;
  frames_reordered : Metrics.counter;
  nand_read_errors : Metrics.counter;
  nand_bit_flips : Metrics.counter;
  crashes_injected : Metrics.counter;
  revives_injected : Metrics.counter;
}

type t = {
  plan : plan;
  seed : int64;
  (* (content key, fault class) -> occurrences so far: repeated identical
     keys (retransmits, re-reads) get fresh, still order-independent
     decisions. *)
  occ : (int64 * int, int) Hashtbl.t;
  c : counters option;
}

let actor = "faults"

(* A zero plan registers nothing: registered-but-zero counters would still
   appear in Metrics.snapshot and change every existing export. *)
let create ?(plan = zero) ~seed metrics =
  let seed = Int64.logxor seed 0x6661756c74735fL in
  let c =
    if is_zero plan then None
    else
      let counter name = Metrics.counter metrics ~actor ~name in
      Some
        {
          messages_lost = counter "messages_lost";
          messages_duplicated = counter "messages_duplicated";
          messages_delayed = counter "messages_delayed";
          messages_corrupted = counter "messages_corrupted";
          frames_lost = counter "frames_lost";
          frames_reordered = counter "frames_reordered";
          nand_read_errors = counter "nand_read_errors";
          nand_bit_flips = counter "nand_bit_flips";
          crashes_injected = counter "crashes_injected";
          revives_injected = counter "revives_injected";
        }
  in
  { plan; seed; occ = Hashtbl.create 64; c }

let plan t = t.plan
let active t = t.c <> None

let tally t pick = match t.c with None -> () | Some c -> Metrics.incr (pick c)

(* Content keys are FNV hashes under a dedicated seed; [key_init] exposes
   the seeded streaming state so hot paths can fold route fields directly
   (via the Sanitizer fnv fold) and land on the same key [key_of_string]
   gives for the formatted description. *)
let key_init = Sanitizer.fnv_init 0x6b65795fL
let key_of_string s = Sanitizer.fnv_finish (Sanitizer.fnv_string key_init s)

(* Fault classes: each decision site mixes in a distinct class id so one
   key yields independent decisions per class. *)
let cls_msg_loss = 1
let cls_msg_dup = 2
let cls_msg_delay = 3
let cls_msg_delay_mag = 4
let cls_msg_corrupt = 5
let cls_corrupt_bit = 6
let cls_frame_loss = 7
let cls_frame_reorder = 8
let cls_frame_reorder_mag = 9
let cls_nand_fail = 10
let cls_nand_flip = 11
let cls_nand_flip_bit = 12

(* The nth decision of class [cls] for content [key]: bump the occurrence
   counter and mix (seed, key, cls, n) into one 64-bit value. *)
let draw t ~key ~cls =
  let slot = (key, cls) in
  let n = Option.value (Hashtbl.find_opt t.occ slot) ~default:0 in
  Hashtbl.replace t.occ slot (n + 1);
  Sanitizer.mix64
    (Sanitizer.combine
       (Sanitizer.combine (Int64.logxor t.seed key) (Int64.of_int cls))
       (Int64.of_int n))

(* 53 mixed bits into the mantissa, as Rng.float does. *)
let draw_u01 t ~key ~cls =
  Int64.to_float (Int64.shift_right_logical (draw t ~key ~cls) 11)
  *. (1.0 /. 9007199254740992.0)

let draw_int t ~key ~cls bound =
  Int64.to_int
    (Int64.rem
       (Int64.shift_right_logical (draw t ~key ~cls) 1)
       (Int64.of_int bound))

let roll t rate ~key ~cls = rate > 0. && draw_u01 t ~key ~cls < rate

let drop_message t ~key =
  let hit = roll t t.plan.msg_loss ~key ~cls:cls_msg_loss in
  if hit then tally t (fun c -> c.messages_lost);
  hit

let duplicate_message t ~key =
  let hit = roll t t.plan.msg_dup ~key ~cls:cls_msg_dup in
  if hit then tally t (fun c -> c.messages_duplicated);
  hit

let message_jitter t ~key =
  if roll t t.plan.msg_delay ~key ~cls:cls_msg_delay && t.plan.msg_jitter_ns > 0L
  then begin
    tally t (fun c -> c.messages_delayed);
    Int64.of_int
      (1
      + draw_int t ~key ~cls:cls_msg_delay_mag
          (Int64.to_int t.plan.msg_jitter_ns))
  end
  else 0L

let corrupt_message t ~key =
  let hit = roll t t.plan.msg_corrupt ~key ~cls:cls_msg_corrupt in
  if hit then tally t (fun c -> c.messages_corrupted);
  hit

let corrupt_bit t ~key ~len =
  if len <= 0 then 0 else draw_int t ~key ~cls:cls_corrupt_bit (len * 8)

let drop_frame t ~key =
  let hit = roll t t.plan.frame_loss ~key ~cls:cls_frame_loss in
  if hit then tally t (fun c -> c.frames_lost);
  hit

let reorder_delay t ~key =
  if
    roll t t.plan.frame_reorder ~key ~cls:cls_frame_reorder
    && t.plan.frame_reorder_ns > 0L
  then begin
    tally t (fun c -> c.frames_reordered);
    Int64.of_int
      (1
      + draw_int t ~key ~cls:cls_frame_reorder_mag
          (Int64.to_int t.plan.frame_reorder_ns))
  end
  else 0L

let nand_read_fails t ~key =
  let hit = roll t t.plan.nand_read_fail ~key ~cls:cls_nand_fail in
  if hit then tally t (fun c -> c.nand_read_errors);
  hit

let nand_bit_flip t ~key ~len =
  if roll t t.plan.nand_bit_flip ~key ~cls:cls_nand_flip && len > 0 then begin
    tally t (fun c -> c.nand_bit_flips);
    Some (draw_int t ~key ~cls:cls_nand_flip_bit (len * 8))
  end
  else None

let crashes t = t.plan.crashes
let note_crash t = tally t (fun c -> c.crashes_injected)
let note_revive t = tally t (fun c -> c.revives_injected)

(* Checkpointing needs only the occurrence table: the plan and salted seed
   are rebuilt from the experiment spec, and decisions are pure functions
   of (seed, key, class, occurrence). Restoring occurrence counts makes a
   resumed run draw the exact continuation of the interrupted stream. *)
let save_state t =
  let w = Snapshot.W.create () in
  Snapshot.W.list w
    (fun w ((key, cls), n) ->
      Snapshot.W.i64 w key;
      Snapshot.W.varint w cls;
      Snapshot.W.varint w n)
    (Detmap.bindings t.occ);
  Snapshot.W.contents w

let restore_state t s =
  let r = Snapshot.R.of_string s in
  Hashtbl.reset t.occ;
  List.iter
    (fun (slot, n) -> Hashtbl.replace t.occ slot n)
    (Snapshot.R.list r (fun r ->
         let key = Snapshot.R.i64 r in
         let cls = Snapshot.R.varint r in
         ((key, cls), Snapshot.R.varint r)))
