(* Deterministic fault-injection plans, carried by the engine like Metrics.

   The fault stream draws from its own SplitMix64 generator seeded from the
   run seed xor a fixed salt, NOT from the engine's root RNG — forking the
   root would advance its state and perturb every workload that samples from
   it, so a zero-rate plan must leave the root stream untouched. Every
   predicate guards on [rate > 0.] before drawing, which keeps the fault
   stream itself identical between a zero plan and an absent plan. *)

type crash_window = { device : string; at_ns : int64; down_ns : int64 }

type plan = {
  msg_loss : float;
  msg_dup : float;
  msg_delay : float;
  msg_jitter_ns : int64;
  msg_corrupt : float;
  frame_loss : float;
  frame_reorder : float;
  frame_reorder_ns : int64;
  nand_read_fail : float;
  nand_bit_flip : float;
  crashes : crash_window list;
}

let zero =
  {
    msg_loss = 0.;
    msg_dup = 0.;
    msg_delay = 0.;
    msg_jitter_ns = 0L;
    msg_corrupt = 0.;
    frame_loss = 0.;
    frame_reorder = 0.;
    frame_reorder_ns = 0L;
    nand_read_fail = 0.;
    nand_bit_flip = 0.;
    crashes = [];
  }

let default_chaos =
  {
    msg_loss = 0.02;
    msg_dup = 0.01;
    msg_delay = 0.05;
    msg_jitter_ns = 2_000L;
    msg_corrupt = 0.005;
    frame_loss = 0.02;
    frame_reorder = 0.05;
    frame_reorder_ns = 1_500L;
    nand_read_fail = 0.01;
    nand_bit_flip = 0.002;
    crashes = [];
  }

let is_zero p =
  p.msg_loss = 0. && p.msg_dup = 0. && p.msg_delay = 0. && p.msg_corrupt = 0.
  && p.frame_loss = 0. && p.frame_reorder = 0. && p.nand_read_fail = 0.
  && p.nand_bit_flip = 0. && p.crashes = []

type counters = {
  messages_lost : Metrics.counter;
  messages_duplicated : Metrics.counter;
  messages_delayed : Metrics.counter;
  messages_corrupted : Metrics.counter;
  frames_lost : Metrics.counter;
  frames_reordered : Metrics.counter;
  nand_read_errors : Metrics.counter;
  nand_bit_flips : Metrics.counter;
  crashes_injected : Metrics.counter;
  revives_injected : Metrics.counter;
}

type t = { plan : plan; rng : Rng.t; c : counters option }

let actor = "faults"

(* A zero plan registers nothing: registered-but-zero counters would still
   appear in Metrics.snapshot and change every existing export. *)
let create ?(plan = zero) ~seed metrics =
  let rng = Rng.create ~seed:(Int64.logxor seed 0x6661756c74735fL) in
  let c =
    if is_zero plan then None
    else
      let counter name = Metrics.counter metrics ~actor ~name in
      Some
        {
          messages_lost = counter "messages_lost";
          messages_duplicated = counter "messages_duplicated";
          messages_delayed = counter "messages_delayed";
          messages_corrupted = counter "messages_corrupted";
          frames_lost = counter "frames_lost";
          frames_reordered = counter "frames_reordered";
          nand_read_errors = counter "nand_read_errors";
          nand_bit_flips = counter "nand_bit_flips";
          crashes_injected = counter "crashes_injected";
          revives_injected = counter "revives_injected";
        }
  in
  { plan; rng; c }

let plan t = t.plan
let active t = t.c <> None

let tally t pick = match t.c with None -> () | Some c -> Metrics.incr (pick c)

(* All fault classes share one stream; stream consumption is a function of
   (plan, seed, call sequence), so identical plans and seeds give identical
   fault sequences. Zero-rate classes never draw. *)
let roll t rate = rate > 0. && Rng.float t.rng < rate

let drop_message t =
  let hit = roll t t.plan.msg_loss in
  if hit then tally t (fun c -> c.messages_lost);
  hit

let duplicate_message t =
  let hit = roll t t.plan.msg_dup in
  if hit then tally t (fun c -> c.messages_duplicated);
  hit

let message_jitter t =
  if roll t t.plan.msg_delay && t.plan.msg_jitter_ns > 0L then begin
    tally t (fun c -> c.messages_delayed);
    Int64.of_int (1 + Rng.int t.rng (Int64.to_int t.plan.msg_jitter_ns))
  end
  else 0L

let corrupt_message t =
  let hit = roll t t.plan.msg_corrupt in
  if hit then tally t (fun c -> c.messages_corrupted);
  hit

let corrupt_bit t ~len =
  if len <= 0 then 0 else Rng.int t.rng (len * 8)

let drop_frame t =
  let hit = roll t t.plan.frame_loss in
  if hit then tally t (fun c -> c.frames_lost);
  hit

let reorder_delay t =
  if roll t t.plan.frame_reorder && t.plan.frame_reorder_ns > 0L then begin
    tally t (fun c -> c.frames_reordered);
    Int64.of_int (1 + Rng.int t.rng (Int64.to_int t.plan.frame_reorder_ns))
  end
  else 0L

let nand_read_fails t =
  let hit = roll t t.plan.nand_read_fail in
  if hit then tally t (fun c -> c.nand_read_errors);
  hit

let nand_bit_flip t ~len =
  if roll t t.plan.nand_bit_flip && len > 0 then begin
    tally t (fun c -> c.nand_bit_flips);
    Some (Rng.int t.rng (len * 8))
  end
  else None

let crashes t = t.plan.crashes
let note_crash t = tally t (fun c -> c.crashes_injected)
let note_revive t = tally t (fun c -> c.revives_injected)
