(** Versioned, CRC-framed snapshot container and field codec.

    A snapshot is a flat list of named, length-prefixed, individually
    checksummed sections. The framing makes torn writes structurally
    detectable: a reader either runs out of bytes mid-frame or hits a CRC
    mismatch, and in both cases the whole file is rejected — never
    partially applied. {!write} is atomic (tmp + rename) and keeps the
    displaced previous snapshot as [path ^ ".1"]; {!load} falls back to
    that generation when the primary is missing or corrupt.

    The module is engine-free by design (bytes only); what gets written is
    decided by the engine's snapshot-hook registry
    ({!Engine.register_snapshot}). *)

val version : int
(** Format version stamped into (and required of) every file. *)

val crc32 : string -> int
(** IEEE CRC32 of a string (also used by tests to corrupt files precisely). *)

(** Field writer: append-only buffer of primitive encodings. *)
module W : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val u8 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit

  val varint : t -> int -> unit
  (** Unsigned LEB128; the argument must be non-negative. *)

  val vint : t -> int -> unit
  (** Zigzag-encoded signed int. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val string : t -> string -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val array : t -> (t -> 'a -> unit) -> 'a array -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
end

(** Field reader over a section body. Every decoder raises {!R.Corrupt} on
    malformed input rather than returning garbage. *)
module R : sig
  exception Corrupt of string

  type t

  val of_string : string -> t
  val eof : t -> bool
  val u8 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val varint : t -> int
  val vint : t -> int
  val bool : t -> bool
  val float : t -> float
  val string : t -> string
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val option : t -> (t -> 'a) -> 'a option
end

type section = { name : string; body : string }

val encode : section list -> string
(** Serialize sections into one framed, checksummed byte string. *)

val decode : string -> (section list, string) result
(** Parse and verify a framed byte string; [Error] describes the first
    structural or checksum failure (torn file, bad magic, bad version). *)

val find : section list -> string -> string option
(** Body of the first section with the given name. *)

type generation = Primary | Previous

val previous_generation : string -> string
(** The on-disk name of the displaced previous snapshot ([path ^ ".1"]). *)

val write : path:string -> section list -> unit
(** Atomically replace the snapshot at [path]: write to a temp file,
    rotate any existing [path] to [path ^ ".1"], then rename into place.
    At most two generations are kept. *)

val write_torn : path:string -> keep_bytes:int -> section list -> unit
(** Chaos hook: leave [path] deliberately torn (first [keep_bytes] bytes
    only) after rotating the previous generation, reproducing the on-disk
    state of a process killed mid-checkpoint by a non-atomic writer.
    {!load} must reject the primary and fall back. *)

val load : path:string -> (generation * section list, string) result
(** Read and verify [path]; on any failure (missing, torn, corrupt), try
    the previous generation. [Error] combines both failures. *)
