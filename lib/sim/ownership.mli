(** Dynamic shard-ownership sanitizer (debug mode).

    The static auditor ([lastcpu-audit], rule D007) proves that no
    module-global mutable cell is reachable from shard closures; this
    module is its dynamic counterpart, validating the same invariant the
    way the tie-break sanitizer validates the determinism lint. Audited
    cells are tagged with the shard that owns them; while a parallel
    window is executing, any access to a cell from a lane that is running
    a {e different} shard raises {!Violation} at the access site instead
    of silently corrupting cross-shard state.

    Disabled (the default) the whole layer is a single atomic load per
    guarded access and touches no simulation-observable state: no metrics,
    no trace, no RNG — enabling it cannot move a digest, only crash a run
    that breaks the ownership contract.

    The shard context is lane-local (domain-local storage): the shard
    coordinator brackets each window task with {!enter_shard}/{!exit_shard},
    so code running outside any window — bring-up, rendezvous flush,
    single-engine runs — is never checked. *)

exception Violation of string
(** Raised at the access site of a cross-shard touch. The message names
    the cell, its owning shard and the accessing shard. *)

val enable : unit -> unit
(** Turn checking on (also resets the check counter). Call from
    sequential setup code, before any parallel window runs. *)

val disable : unit -> unit
val enabled : unit -> bool

type tracker
(** One audited cell (or cell group): a name and an owning shard. *)

val tracker : name:string -> owner:int -> tracker
(** [tracker ~name ~owner] tags a cell as owned by shard [owner].
    Creation is cheap and unconditional; call it at subsystem-create
    time whether or not checking is enabled. *)

val name : tracker -> string
val owner : tracker -> int

val rebind : tracker -> owner:int -> unit
(** Re-home a cell (e.g. when a rebuilt topology is re-coupled with a
    different shard layout). Sequential setup only. *)

val touch : tracker -> unit
(** Assert the current lane may access the cell. No-op unless checking
    is enabled {e and} a shard context is live on this domain.
    @raise Violation when the live shard differs from the cell's owner. *)

val checks : unit -> int
(** Cross-checked touches since {!enable} — the denominator proving the
    sanitizer actually exercised the contract (a clean run with zero
    checks validated nothing). *)

(** {2 Shard context} — set by the coordinator, not by subsystems. *)

val enter_shard : int -> unit
(** Declare that this domain is now executing the given shard's window. *)

val exit_shard : unit -> unit
val current_shard : unit -> int option

val with_shard : int -> (unit -> 'a) -> 'a
(** [with_shard i f] brackets [f] with {!enter_shard}/{!exit_shard},
    restoring the previous context even if [f] raises. *)
