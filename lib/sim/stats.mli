(** Online statistics for simulation measurements.

    Two collectors: a Welford accumulator for mean/variance and a
    log-bucketed histogram for percentiles over latencies spanning many
    orders of magnitude (nanoseconds to seconds). *)

module Summary : sig
  type t
  (** Mean/variance accumulator (Welford's algorithm). *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** Mean of observations; [0.] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val merge : t -> t -> t
  (** [merge a b] is a summary equivalent to having observed both streams. *)

  val save : Snapshot.W.t -> t -> unit
  (** Append the accumulator's exact state (checkpointing). *)

  val restore : Snapshot.R.t -> t -> unit
  (** Overwrite the accumulator with state written by {!save}. *)
end

module Histogram : sig
  type t
  (** Log-bucketed histogram: buckets grow geometrically so that relative
      error is bounded (~2.4% with the default 30 buckets per decade). *)

  val create : unit -> t
  val add : t -> float -> unit
  (** [add h v] records [v]; non-positive values land in an underflow
      bucket. *)

  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [\[0, 100\]]; returns the upper edge of the
      bucket holding the p-th observation, [0.] when empty. *)

  val mean : t -> float
  val merge : t -> t -> t
  val reset : t -> unit

  val save : Snapshot.W.t -> t -> unit
  (** Append the histogram (sparse bucket encoding) for checkpointing. *)

  val restore : Snapshot.R.t -> t -> unit
  (** Overwrite the histogram with state written by {!save}. *)
end

type latency_report = {
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val latency_report : Histogram.t -> Summary.t -> latency_report
(** Combine a histogram and summary over the same stream into one report. *)

val pp_latency_report : Format.formatter -> latency_report -> unit
