(* Engine-carried telemetry registry.

   Every subsystem registers named instruments — counters, gauges,
   log-bucketed histograms — under an [actor/instrument] key. The registry
   lives on [Engine.t], so one simulation run has exactly one telemetry
   context and snapshots are deterministic for a given seed: iteration
   order is defined (sorted by actor, then instrument), never hash order.

   Instruments are handles: subsystems resolve them once at creation time
   and bump them on the hot path without a hash lookup. *)

type counter = { mutable count : int }
type gauge = { mutable level : float }
type histogram = { hist : Stats.Histogram.t; summ : Stats.Summary.t }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Stats.latency_report

type t = {
  table : (string * string, instrument) Hashtbl.t; (* (actor, instrument) *)
  claimed : (string, int) Hashtbl.t; (* actor base name -> times claimed *)
}

let create () = { table = Hashtbl.create 64; claimed = Hashtbl.create 16 }

(* Actor names must be unique or two subsystems would silently share
   instruments (e.g. two devices created with the same [~name]). Claiming
   uniquifies: the first claim of "nic0" gets "nic0", the next "nic0#2". *)
let claim_actor t base =
  match Hashtbl.find_opt t.claimed base with
  | None ->
    Hashtbl.replace t.claimed base 1;
    base
  | Some n ->
    Hashtbl.replace t.claimed base (n + 1);
    Printf.sprintf "%s#%d" base (n + 1)

let counter t ~actor ~name =
  match Hashtbl.find_opt t.table (actor, name) with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (actor ^ "/" ^ name ^ ": not a counter")
  | None ->
    let c = { count = 0 } in
    Hashtbl.replace t.table (actor, name) (Counter c);
    c

let gauge t ~actor ~name =
  match Hashtbl.find_opt t.table (actor, name) with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (actor ^ "/" ^ name ^ ": not a gauge")
  | None ->
    let g = { level = 0. } in
    Hashtbl.replace t.table (actor, name) (Gauge g);
    g

let histogram t ~actor ~name =
  match Hashtbl.find_opt t.table (actor, name) with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (actor ^ "/" ^ name ^ ": not a histogram")
  | None ->
    let h = { hist = Stats.Histogram.create (); summ = Stats.Summary.create () } in
    Hashtbl.replace t.table (actor, name) (Histogram h);
    h

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count
let reset_counter c = c.count <- 0
let set g v = g.level <- v
let gauge_value g = g.level

let observe h v =
  Stats.Histogram.add h.hist v;
  Stats.Summary.add h.summ v

let observations h = Stats.Histogram.count h.hist
let report h = Stats.latency_report h.hist h.summ
let hist h = h.hist
let summary h = h.summ

let value_of = function
  | Counter c -> Counter_v c.count
  | Gauge g -> Gauge_v g.level
  | Histogram h -> Histogram_v (report h)

let find t ~actor ~name =
  Option.map value_of (Hashtbl.find_opt t.table (actor, name))

let counter_read t ~actor ~name =
  match find t ~actor ~name with Some (Counter_v n) -> n | _ -> 0

(* Deterministic listing: sorted by (actor, instrument). *)
let snapshot t =
  List.map
    (fun ((actor, name), ins) -> (actor, name, value_of ins))
    (Detmap.bindings t.table)

let actors t =
  List.sort_uniq String.compare (List.map fst (Detmap.sorted_keys t.table))

(* Observable-state digest for the ordering sanitizer. Counters and gauges
   contribute their values; histograms contribute only their observation
   count — quantiles shift benignly when two same-tick arrivals swap
   places in a queue, and hashing them would report queueing noise as
   ordering races. *)
let digest t =
  List.fold_left
    (fun h (actor, name, v) ->
      let h = Sanitizer.hash_string h actor in
      let h = Sanitizer.hash_string h name in
      match v with
      | Counter_v n -> Sanitizer.combine h (Int64.of_int n)
      | Gauge_v g -> Sanitizer.combine h (Int64.bits_of_float g)
      | Histogram_v r -> Sanitizer.combine h (Int64.of_int r.Stats.n))
    0x6D65747269637331L (snapshot t)

let size t = Hashtbl.length t.table

(* --- checkpoint/restore ---------------------------------------------------- *)

(* Restore mutates instrument records IN PLACE wherever the key already
   exists: subsystems hold handles resolved at creation time, and a
   rebuilt topology re-resolves the same keys, so overwriting the record
   a handle points at is what makes the handle see restored values.
   Instruments that existed at checkpoint time but not yet in the rebuilt
   registry (lazily created ones) are pre-created here; a later lazy
   [counter]/[gauge]/[histogram] call finds and binds to the restored
   record. The claimed-actor table is part of the state: a post-restore
   [claim_actor] must uniquify against the original run's claims, not the
   rebuild's. *)
let save_state t =
  let w = Snapshot.W.create () in
  Snapshot.W.list w
    (fun w (name, n) ->
      Snapshot.W.string w name;
      Snapshot.W.varint w n)
    (Detmap.bindings t.claimed);
  Snapshot.W.varint w (Hashtbl.length t.table);
  List.iter
    (fun ((actor, name), ins) ->
      Snapshot.W.string w actor;
      Snapshot.W.string w name;
      match ins with
      | Counter c ->
        Snapshot.W.u8 w 0;
        Snapshot.W.vint w c.count
      | Gauge g ->
        Snapshot.W.u8 w 1;
        Snapshot.W.float w g.level
      | Histogram h ->
        Snapshot.W.u8 w 2;
        Stats.Histogram.save w h.hist;
        Stats.Summary.save w h.summ)
    (Detmap.bindings t.table);
  Snapshot.W.contents w

let restore_state t s =
  let r = Snapshot.R.of_string s in
  Hashtbl.reset t.claimed;
  List.iter
    (fun (name, n) -> Hashtbl.replace t.claimed name n)
    (Snapshot.R.list r (fun r ->
         let name = Snapshot.R.string r in
         (name, Snapshot.R.varint r)));
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let actor = Snapshot.R.string r in
    let name = Snapshot.R.string r in
    let key = (actor, name) in
    let mismatch () =
      invalid_arg
        (Printf.sprintf "Metrics.restore_state: %s/%s changed instrument type"
           actor name)
    in
    match Snapshot.R.u8 r with
    | 0 -> (
      let v = Snapshot.R.vint r in
      match Hashtbl.find_opt t.table key with
      | Some (Counter c) -> c.count <- v
      | None -> Hashtbl.replace t.table key (Counter { count = v })
      | Some _ -> mismatch ())
    | 1 -> (
      let v = Snapshot.R.float r in
      match Hashtbl.find_opt t.table key with
      | Some (Gauge g) -> g.level <- v
      | None -> Hashtbl.replace t.table key (Gauge { level = v })
      | Some _ -> mismatch ())
    | 2 ->
      let h =
        match Hashtbl.find_opt t.table key with
        | Some (Histogram h) -> h
        | None ->
          let h =
            { hist = Stats.Histogram.create (); summ = Stats.Summary.create () }
          in
          Hashtbl.replace t.table key (Histogram h);
          h
        | Some _ -> mismatch ()
      in
      Stats.Histogram.restore r h.hist;
      Stats.Summary.restore r h.summ
    | _ -> raise (Snapshot.R.Corrupt "bad instrument tag")
  done

(* --- export: Prometheus text exposition ----------------------------------- *)

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s

let pp_float ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%g" v

let to_prometheus t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (actor, name, v) ->
      let metric = "lastcpu_" ^ sanitize name in
      let labels = Printf.sprintf "{actor=\"%s\"}" actor in
      match v with
      | Counter_v n ->
        line "# TYPE %s counter" metric;
        line "%s%s %d" metric labels n
      | Gauge_v g ->
        line "# TYPE %s gauge" metric;
        line "%s%s %s" metric labels (Format.asprintf "%a" pp_float g)
      | Histogram_v r ->
        line "# TYPE %s summary" metric;
        line "%s{actor=\"%s\",quantile=\"0.5\"} %s" metric actor
          (Format.asprintf "%a" pp_float r.Stats.p50);
        line "%s{actor=\"%s\",quantile=\"0.95\"} %s" metric actor
          (Format.asprintf "%a" pp_float r.Stats.p95);
        line "%s{actor=\"%s\",quantile=\"0.99\"} %s" metric actor
          (Format.asprintf "%a" pp_float r.Stats.p99);
        line "%s_sum%s %s" metric labels
          (Format.asprintf "%a" pp_float (r.Stats.mean *. float_of_int r.Stats.n));
        line "%s_count%s %d" metric labels r.Stats.n)
    (snapshot t);
  Buffer.contents buf

(* --- export: one JSON object per registry --------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i (actor, name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      let head =
        Printf.sprintf "{\"actor\":\"%s\",\"instrument\":\"%s\","
          (json_escape actor) (json_escape name)
      in
      Buffer.add_string buf head;
      (match v with
      | Counter_v n ->
        Buffer.add_string buf (Printf.sprintf "\"type\":\"counter\",\"value\":%d" n)
      | Gauge_v g ->
        Buffer.add_string buf
          (Printf.sprintf "\"type\":\"gauge\",\"value\":%s" (json_float g))
      | Histogram_v r ->
        Buffer.add_string buf
          (Printf.sprintf
             "\"type\":\"histogram\",\"n\":%d,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%s"
             r.Stats.n (json_float r.Stats.mean) (json_float r.Stats.p50)
             (json_float r.Stats.p95) (json_float r.Stats.p99)
             (json_float r.Stats.max)));
      Buffer.add_char buf '}')
    (snapshot t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp ppf t =
  List.iter
    (fun (actor, name, v) ->
      match v with
      | Counter_v n -> Format.fprintf ppf "%s/%s = %d@." actor name n
      | Gauge_v g -> Format.fprintf ppf "%s/%s = %a@." actor name pp_float g
      | Histogram_v r ->
        Format.fprintf ppf "%s/%s : %a@." actor name Stats.pp_latency_report r)
    (snapshot t)
