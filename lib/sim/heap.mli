(** Binary min-heap specialised for the event queue.

    Elements are ordered by a [priority] given at insertion time; ties are
    broken by insertion order (FIFO among equal priorities), which the
    simulation engine relies on for determinism. *)

type tie_break =
  | Fifo  (** insertion order among equal priorities — the contract *)
  | Lifo  (** reverse insertion order — flips every colliding pair *)
  | Salted of int64  (** seed-keyed pseudo-random permutation of ties *)

type 'a t
(** A mutable min-heap holding values of type ['a]. *)

val create : ?tie:tie_break -> unit -> 'a t
(** [create ()] is an empty heap. [tie] (default [Fifo]) selects the order
    among equal priorities; the non-FIFO modes exist for the ordering
    sanitizer's perturbed runs and are equally deterministic. *)

val length : 'a t -> int
(** [length h] is the number of elements currently in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> priority:int64 -> 'a -> unit
(** [push h ~priority v] inserts [v] with the given priority. Lower
    priorities pop first; equal priorities pop in insertion order. *)

val pop : 'a t -> (int64 * 'a) option
(** [pop h] removes and returns the minimum element, or [None] if empty. *)

val peek : 'a t -> (int64 * 'a) option
(** [peek h] is the minimum element without removing it. *)

val clear : 'a t -> unit
(** [clear h] removes all elements. *)

val to_sorted_list : 'a t -> (int64 * 'a) list
(** [to_sorted_list h] drains [h], returning elements in pop order. *)
