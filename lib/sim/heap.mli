(** Binary min-heap specialised for the event queue.

    Elements are ordered by a [priority] given at insertion time; ties are
    broken by insertion order (FIFO among equal priorities), which the
    simulation engine relies on for determinism.

    The implementation is tuned for the simulation hot path: pushing in the
    default [Fifo] mode allocates exactly one entry block (the tie key is a
    shared constant), popped slots are cleared so the heap never retains a
    dead event closure, and {!top_prio}/{!pop_top} expose the root without
    the option/tuple boxing of {!peek}/{!pop}. *)

type tie_break =
  | Fifo  (** insertion order among equal priorities — the contract *)
  | Lifo  (** reverse insertion order — flips every colliding pair *)
  | Salted of int64  (** seed-keyed pseudo-random permutation of ties *)

type 'a t
(** A mutable min-heap holding values of type ['a]. *)

val create : ?tie:tie_break -> ?hint:int -> unit -> 'a t
(** [create ()] is an empty heap. [tie] (default [Fifo]) selects the order
    among equal priorities; the non-FIFO modes exist for the ordering
    sanitizer's perturbed runs and are equally deterministic. [hint]
    (default 0) pre-sizes the backing array so steady-state workloads of a
    known queue depth never pay a growth copy. *)

val length : 'a t -> int
(** [length h] is the number of elements currently in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> priority:int64 -> 'a -> unit
(** [push h ~priority v] inserts [v] with the given priority. Lower
    priorities pop first; equal priorities pop in insertion order. *)

val pop : 'a t -> (int64 * 'a) option
(** [pop h] removes and returns the minimum element, or [None] if empty.
    The vacated slot is cleared: a popped element is not retained. *)

val peek : 'a t -> (int64 * 'a) option
(** [peek h] is the minimum element without removing it. *)

val top_prio : 'a t -> int64
(** [top_prio h] is the minimum priority without removal and without
    allocating the option/tuple of {!peek}.
    @raise Invalid_argument on an empty heap. *)

val pop_top : 'a t -> 'a
(** [pop_top h] removes and returns the minimum element's value without
    allocating the option/tuple of {!pop}; pair with {!top_prio} when the
    priority is also needed.
    @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** [clear h] removes all elements (and drops the backing storage). *)

val to_sorted_list : 'a t -> (int64 * 'a) list
(** [to_sorted_list h] drains [h], returning elements in pop order. *)
