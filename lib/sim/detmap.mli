(** Deterministic iteration over [Hashtbl.t].

    [Hashtbl.iter]/[fold] visit bindings in bucket order, which is not a
    stable, auditable order — the nondeterminism lint (rule D001) bans
    them in library code. These helpers visit bindings in sorted key
    order instead. This module is the single lint-exempt wrapper; use it
    whenever a traversal's result is observable. Point lookups
    ([Hashtbl.find_opt] etc.) remain fine everywhere. *)

val sorted_keys : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** Distinct keys in ascending order ([Stdlib.compare] by default). *)

val bindings : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** [(key, value)] pairs in ascending key order, one per distinct key
    (the binding visible to [Hashtbl.find]). *)

val iter_sorted :
  ?compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted f tbl] applies [f] to each binding in ascending key order. *)

val fold_sorted :
  ?compare:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** Fold over bindings in ascending key order. *)

val min_key : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k option
(** Smallest key, or [None] when the table is empty. O(n), no sort. *)
