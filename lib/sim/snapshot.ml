(* Versioned, CRC-framed snapshot container and field codec.

   A snapshot file is a flat sequence of named sections:

     "LCSN" | u32 version
     repeat: 'S' | varint |name| | name | varint |body| | u32 crc32(body) | body
     'E' | u32 crc32(everything before this u32)

   Every length is explicit and every body is checksummed, so a torn write
   (partial append, zero-filled tail, bit rot) is detected structurally:
   the reader either runs out of bytes mid-frame or hits a CRC mismatch,
   and in both cases the whole file is rejected — there is no "partially
   restored" state. Durability is generation-based: [write] replaces the
   previous snapshot atomically (tmp + rename) and keeps the displaced
   file as [path ^ ".1"], and [load] falls back to that previous
   generation when the primary is missing or corrupt.

   This module is deliberately engine-free: it knows bytes, not
   simulations. Subsystems encode their state with [W]/[R]; the engine's
   hook registry (see Engine.register_snapshot) decides what gets written.
   lastcpu_sim depends only on fmt, so the CRC32 lives here rather than
   reusing the wire-protocol one in lib/proto. *)

let version = 1
let magic = "LCSN"

(* --- CRC32 (IEEE 802.3, reflected), table-driven ------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s pos len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s = crc32_sub s 0 (String.length s)

(* --- field codec ---------------------------------------------------------- *)

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let contents w = Buffer.contents w
  let u8 w n = Buffer.add_char w (Char.chr (n land 0xff))

  let u32 w n =
    u8 w n;
    u8 w (n lsr 8);
    u8 w (n lsr 16);
    u8 w (n lsr 24)

  let i64 w n =
    for shift = 0 to 7 do
      u8 w (Int64.to_int (Int64.shift_right_logical n (8 * shift)))
    done

  (* Unsigned LEB128; lengths and other non-negative quantities. *)
  let rec varint w n =
    assert (n >= 0);
    if n < 0x80 then u8 w n
    else begin
      u8 w (0x80 lor (n land 0x7f));
      varint w (n lsr 7)
    end

  (* Zigzag-encoded signed int, for quantities that may go negative. *)
  let vint w n = varint w ((n lsl 1) lxor (n asr (Sys.int_size - 1)))
  let bool w b = u8 w (if b then 1 else 0)
  let float w f = i64 w (Int64.bits_of_float f)

  let string w s =
    varint w (String.length s);
    Buffer.add_string w s

  let list w f xs =
    varint w (List.length xs);
    List.iter (f w) xs

  let array w f xs =
    varint w (Array.length xs);
    Array.iter (f w) xs

  let option w f = function
    | None -> bool w false
    | Some x ->
      bool w true;
      f w x
end

module R = struct
  exception Corrupt of string

  type t = { buf : string; mutable pos : int }

  let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt
  let of_string buf = { buf; pos = 0 }
  let eof r = r.pos >= String.length r.buf

  let u8 r =
    if r.pos >= String.length r.buf then corrupt "truncated (u8 at %d)" r.pos;
    let c = Char.code r.buf.[r.pos] in
    r.pos <- r.pos + 1;
    c

  let u32 r =
    let a = u8 r in
    let b = u8 r in
    let c = u8 r in
    let d = u8 r in
    a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

  let i64 r =
    let v = ref 0L in
    for shift = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 r)) (8 * shift))
    done;
    !v

  let varint r =
    let rec go shift acc =
      if shift > Sys.int_size then corrupt "varint overflow at %d" r.pos;
      let b = u8 r in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let vint r =
    let n = varint r in
    (n lsr 1) lxor (-(n land 1))

  let bool r = u8 r <> 0
  let float r = Int64.float_of_bits (i64 r)

  let string r =
    let len = varint r in
    if r.pos + len > String.length r.buf then
      corrupt "truncated (string of %d bytes at %d)" len r.pos;
    let s = String.sub r.buf r.pos len in
    r.pos <- r.pos + len;
    s

  let list r f =
    let n = varint r in
    List.init n (fun _ -> f r)

  let array r f =
    let n = varint r in
    Array.init n (fun _ -> f r)

  let option r f = if bool r then Some (f r) else None
end

(* --- container ------------------------------------------------------------ *)

type section = { name : string; body : string }

let encode sections =
  let w = W.create () in
  Buffer.add_string w magic;
  W.u32 w version;
  List.iter
    (fun { name; body } ->
      W.u8 w (Char.code 'S');
      W.string w name;
      W.varint w (String.length body);
      W.u32 w (crc32 body);
      Buffer.add_string w body)
    sections;
  W.u8 w (Char.code 'E');
  let prefix = Buffer.length w in
  W.u32 w (crc32_sub (Buffer.contents w) 0 prefix);
  W.contents w

let decode s =
  try
    let r = R.of_string s in
    if String.length s < 8 || String.sub s 0 4 <> magic then
      R.corrupt "bad magic";
    r.R.pos <- 4;
    let v = R.u32 r in
    if v <> version then R.corrupt "unsupported version %d" v;
    let rec sections acc =
      match Char.chr (R.u8 r) with
      | 'S' ->
        let name = R.string r in
        let len = R.varint r in
        let crc = R.u32 r in
        let start = r.R.pos in
        if start + len > String.length s then
          R.corrupt "truncated section %S" name;
        if crc32_sub s start len <> crc then
          R.corrupt "checksum mismatch in section %S" name;
        let body = String.sub s start len in
        r.R.pos <- start + len;
        sections ({ name; body } :: acc)
      | 'E' ->
        let prefix = r.R.pos in
        if R.u32 r <> crc32_sub s 0 prefix then
          R.corrupt "file checksum mismatch";
        List.rev acc
      | c -> R.corrupt "bad frame tag %C" c
      | exception Invalid_argument _ -> R.corrupt "bad frame tag"
    in
    Ok (sections [])
  with R.Corrupt m -> Error m

let find sections name =
  List.find_map (fun s -> if s.name = name then Some s.body else None) sections

(* --- file I/O with generations -------------------------------------------- *)

let previous_generation path = path ^ ".1"

let write_raw path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let rotate path =
  if Sys.file_exists path then Sys.rename path (previous_generation path)

let write ~path sections =
  let data = encode sections in
  let tmp = path ^ ".tmp" in
  write_raw tmp data;
  rotate path;
  Sys.rename tmp path

(* Chaos hook: simulate the host dying mid-checkpoint. The previous
   generation has already been rotated out of the way (as a real
   checkpoint would), and the primary is left torn at [keep_bytes] — the
   exact on-disk state a kill -9 between [write_raw] and [rename] of a
   non-atomic writer would leave. [load] must reject it and fall back. *)
let write_torn ~path ~keep_bytes sections =
  let data = encode sections in
  let keep = min keep_bytes (String.length data - 1) in
  let keep = if keep < 0 then 0 else keep in
  rotate path;
  write_raw path (String.sub data 0 keep)

let read_file path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let data = really_input_string ic len in
    close_in ic;
    Ok data
  end

type generation = Primary | Previous

let load ~path =
  let attempt p =
    match read_file p with
    | Error e -> Error e
    | Ok data -> (
      match decode data with
      | Ok sections -> Ok sections
      | Error e -> Error (p ^ ": " ^ e))
  in
  match attempt path with
  | Ok sections -> Ok (Primary, sections)
  | Error primary_err -> (
    match attempt (previous_generation path) with
    | Ok sections -> Ok (Previous, sections)
    | Error fallback_err ->
      Error (Printf.sprintf "%s; fallback %s" primary_err fallback_err))
