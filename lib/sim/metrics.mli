(** Engine-carried telemetry registry.

    One registry per {!Engine.t}: named counters, gauges and log-bucketed
    latency histograms, keyed by [actor/instrument]. Subsystems resolve a
    handle once at creation time and bump it on the hot path; snapshots are
    deterministic (sorted by actor then instrument, never hash order), so a
    seeded run always exports byte-identical telemetry. *)

type t

type counter
type gauge
type histogram

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Stats.latency_report

val create : unit -> t

val claim_actor : t -> string -> string
(** [claim_actor t base] reserves a unique actor name: [base] on first
    claim, ["base#2"], ["base#3"], … after. Prevents two subsystems
    created with the same name from silently sharing instruments. *)

(** {2 Instrument handles} — registering an existing [(actor, name)] key
    returns the same handle; registering it with a different instrument
    type raises [Invalid_argument]. *)

val counter : t -> actor:string -> name:string -> counter
val gauge : t -> actor:string -> name:string -> gauge
val histogram : t -> actor:string -> name:string -> histogram

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val reset_counter : counter -> unit

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val observations : histogram -> int
val report : histogram -> Stats.latency_report
val hist : histogram -> Stats.Histogram.t
val summary : histogram -> Stats.Summary.t

(** {2 Reading the registry} *)

val find : t -> actor:string -> name:string -> value option

val counter_read : t -> actor:string -> name:string -> int
(** Counter value by name; [0] if absent or not a counter. *)

val snapshot : t -> (string * string * value) list
(** All instruments, sorted by (actor, instrument). *)

val actors : t -> string list
(** Distinct actor names, sorted. *)

val size : t -> int

val save_state : t -> string
(** Serialize the whole registry (instrument values, histogram buckets,
    claimed-actor table) for a checkpoint. *)

val restore_state : t -> string -> unit
(** Overwrite the registry with state written by {!save_state}.
    Instrument records already present (a rebuilt topology re-registered
    them) are mutated in place so existing handles observe the restored
    values; instruments not yet re-created are added and later lazy
    registration binds to them.
    @raise Invalid_argument if a key changed instrument type.
    @raise Snapshot.R.Corrupt on malformed input. *)

val digest : t -> int64
(** Deterministic digest of the registry for the ordering sanitizer:
    counter and gauge values plus histogram observation counts (quantiles
    are excluded — they shift benignly with same-tick queueing order). *)

(** {2 Export} *)

val to_prometheus : t -> string
(** Prometheus text exposition: one [lastcpu_<instrument>] family per
    instrument with an [actor] label; histograms export as summaries. *)

val to_json : t -> string
(** One JSON object: [{"metrics":[{"actor":…,"instrument":…,…},…]}]. *)

val pp : Format.formatter -> t -> unit
