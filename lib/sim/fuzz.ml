(* Deterministic mutation primitives for the protocol fuzzer.

   Everything here draws from one SplitMix stream: the same seed yields
   the same mutant sequence on every run, which is what makes a fuzzing
   campaign a reproducible experiment (and a committable golden) instead
   of a flaky side-show. The primitives are byte- and scalar-level only —
   structure awareness (which field of which frame) lives with the code
   that owns the frame types. *)

type t = { rng : Rng.t }

let create ~seed = { rng = Rng.create ~seed }
let rng t = t.rng

(* Campaign checkpoint: the mutator is one stream position, so a resumed
   campaign continues the exact mutant sequence the uninterrupted one
   would have produced. The harness that owns the campaign (Protofuzz)
   embeds these in its own snapshot section. *)
let save w t = Snapshot.W.i64 w (Rng.state t.rng)
let restore r t = Rng.set_state t.rng (Snapshot.R.i64 r)
let pick t n = Rng.int t.rng n
let choice t arr = arr.(Rng.int t.rng (Array.length arr))
let byte t = Rng.int t.rng 256

(* Boundary values that historically break length/offset arithmetic. *)
let interesting_int64 =
  [|
    0L;
    1L;
    -1L;
    Int64.max_int;
    Int64.min_int;
    0x7FFFFFFFL;
    0xFFFFFFFFL;
    0x100000000L;
    4096L;
    -4096L;
  |]

let interesting_int = [| 0; 1; -1; max_int; min_int; 255; 256; 65535; 65536 |]

let mutate_int64 t v =
  match pick t 4 with
  | 0 -> choice t interesting_int64
  | 1 -> Int64.logxor v (Int64.shift_left 1L (pick t 64))
  | 2 -> Int64.add v (Int64.of_int (pick t 17 - 8))
  | _ -> Rng.int64 t.rng

let mutate_int t v =
  match pick t 4 with
  | 0 -> choice t interesting_int
  | 1 -> v lxor (1 lsl pick t 62)
  | 2 -> v + pick t 17 - 8
  | _ -> Int64.to_int (Rng.int64 t.rng)

let mutate_bool t v =
  match pick t 2 with
  | 0 -> not v
  | _ -> Rng.bool t.rng

let mutate_string t s =
  match pick t 4 with
  | 0 -> ""
  | 1 -> s ^ String.make (1 + pick t 8) (Char.chr (byte t))
  | 2 when String.length s > 0 -> String.sub s 0 (pick t (String.length s))
  | _ ->
    String.init
      (1 + pick t 12)
      (fun _ -> Char.chr (0x20 + pick t 0x5f))

(* --- byte-buffer mutations ---------------------------------------------- *)

let flip_bit t s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    let bit = pick t (n * 8) in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    Bytes.to_string b
  end

let overwrite_byte t s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set b (pick t n) (Char.chr (byte t));
    Bytes.to_string b
  end

let truncate t s =
  let n = String.length s in
  if n = 0 then s else String.sub s 0 (pick t n)

let extend t s = s ^ String.init (1 + pick t 8) (fun _ -> Char.chr (byte t))

let mutate_bytes t s =
  match pick t 4 with
  | 0 -> flip_bit t s
  | 1 -> overwrite_byte t s
  | 2 -> truncate t s
  | _ -> extend t s
