(* Deterministic iteration over hash tables.

   OCaml's [Hashtbl.iter]/[fold] visit bindings in bucket order — a
   function of hash values, table growth history and insertion order. Any
   observable result accumulated that way is a reproducibility hazard, so
   the nondeterminism lint (rule D001) bans those functions in library
   code. This module is the blessed replacement: every helper materializes
   the key set, sorts it, and visits bindings in that order. It is the one
   module exempt from D001 (see lint.rules), the way lib/sim/rng.ml is the
   one blessed randomness source.

   Cost: O(n log n) per traversal plus an O(n) key list — fine for the
   registry/directory-sized tables these helpers serve. Hot paths should
   keep using point lookups ([find_opt], [mem]), which are order-free. *)

let sorted_keys ?(compare = Stdlib.compare) tbl =
  List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let bindings ?compare tbl =
  (* One binding per key: the visible one ([Hashtbl.find]), matching what
     lookups observe even if shadowed bindings exist underneath. *)
  List.map (fun k -> (k, Hashtbl.find tbl k)) (sorted_keys ?compare tbl)

let iter_sorted ?compare f tbl =
  List.iter (fun (k, v) -> f k v) (bindings ?compare tbl)

let fold_sorted ?compare f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings ?compare tbl)

let min_key ?(compare = Stdlib.compare) tbl =
  Hashtbl.fold
    (fun k _ acc ->
      match acc with
      | None -> Some k
      | Some m -> if compare k m < 0 then Some k else acc)
    tbl None
