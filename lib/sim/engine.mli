(** Deterministic discrete-event simulation engine.

    The engine owns the virtual clock and an event queue. Components
    schedule closures at future virtual times; [run] executes them in
    (time, insertion-order) order, so identical inputs give identical runs.
    The engine also carries the run-wide trace and root PRNG so that every
    subsystem shares one deterministic context. *)

type t

val create :
  ?seed:int64 ->
  ?costs:Costs.t ->
  ?trace_capacity:int ->
  ?fault_plan:Faults.plan ->
  unit ->
  t
(** Fresh engine at time 0. [seed] defaults to [42L]; [fault_plan] to
    {!Faults.zero} (no injection). *)

val now : t -> int64
(** Current virtual time in nanoseconds. *)

val costs : t -> Costs.t
val trace : t -> Trace.t
val rng : t -> Rng.t
(** The engine's root generator; prefer [fork_rng] per component. *)

val fork_rng : t -> Rng.t
(** An independent stream derived from the root. *)

val schedule : t -> delay:int64 -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay >= 0]. *)

val schedule_at : t -> time:int64 -> (unit -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute [time >= now t]. *)

val pending : t -> int
(** Number of queued events. *)

val run : ?until:int64 -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue is empty, [until] (inclusive)
    is passed, or [max_events] have run. The clock advances to each event's
    time; when stopped by [until], the clock is left at [until]. *)

val step : t -> bool
(** Execute exactly one event. [false] if the queue was empty. *)

val trace_event : t -> actor:string -> kind:string -> string -> unit
(** Append to the run trace at the current virtual time. *)

val metrics : t -> Metrics.t
(** The run-wide telemetry registry: all subsystem counters, gauges and
    latency histograms live here, keyed [actor/instrument]. *)

val faults : t -> Faults.t
(** The run's fault-injection state (a zero plan unless [create] was given
    one). Delivery channels consult it at each injection point. *)

val fresh_span_id : t -> int
(** A run-unique id for correlating span begin/end pairs that have no
    natural correlation id of their own. *)

val begin_span : t -> actor:string -> name:string -> id:int -> unit
(** Open span [name#id] at the current virtual time (traced). *)

val end_span : t -> actor:string -> name:string -> id:int -> unit
(** Close span [name#id]: traces the end and feeds the duration into the
    registry histogram [actor/<name>_ns]. No-op for unknown spans. *)
