(** Deterministic discrete-event simulation engine.

    The engine owns the virtual clock and an event queue. Components
    schedule closures at future virtual times; [run] executes them in
    (time, insertion-order) order, so identical inputs give identical runs.
    The engine also carries the run-wide trace and root PRNG so that every
    subsystem shares one deterministic context.

    {b Hot path.} The queue stores bare closures; event labels are lazy
    thunks consumed only in sanitize mode. With sanitize off, scheduling
    an event allocates nothing beyond the heap entry, and a label thunk
    passed to {!schedule} is never forced — call sites that would have to
    allocate the thunk itself should branch on {!sanitizing} instead.

    {b Sanitize mode} (opt-in) journals observable state after every tick
    that executed two or more events. Replaying the same workload with a
    perturbed [tie] and comparing journals (see {!Sanitizer}) exposes
    same-tick ordering races: event pairs whose relative order — which the
    determinism contract says must not matter — leaks into observable
    state. *)

type tie_break = Heap.tie_break =
  | Fifo  (** insertion order among equal times — the contract *)
  | Lifo  (** reverse order — flips every colliding pair *)
  | Salted of int64  (** seed-keyed pseudo-random permutation of ties *)

type t

val create :
  ?seed:int64 ->
  ?costs:Costs.t ->
  ?trace_capacity:int ->
  ?fault_plan:Faults.plan ->
  ?tie:tie_break ->
  ?sanitize:bool ->
  ?queue_hint:int ->
  unit ->
  t
(** Fresh engine at time 0. [seed] defaults to [42L]; [fault_plan] to
    {!Faults.zero} (no injection); [tie] to [Fifo]; [sanitize] to [false]
    (no journalling overhead). [trace_capacity] bounds the retained trace;
    [0] disables event tracing entirely (spans still time into metrics —
    see {!Trace.enabled}). [queue_hint] pre-sizes the event queue so
    steady-state workloads never pay a heap growth copy. *)

val now : t -> int64
(** Current virtual time in nanoseconds. *)

val bind_shard : t -> shard:int -> unit
(** Tag this engine as owned by the given shard for the dynamic
    ownership sanitizer ({!Ownership}): every subsequent schedule is a
    guarded access, so cross-shard scheduling during a parallel window
    raises {!Ownership.Violation} when checking is enabled. Called by
    the shard coordinator ({!Temporal.create}); idempotent (re-binding
    re-homes the cell). *)

val shard_owner : t -> int option
(** The shard this engine is bound to, if {!bind_shard} has run. *)

val costs : t -> Costs.t
val trace : t -> Trace.t
val rng : t -> Rng.t
(** The engine's root generator; prefer [fork_rng] per component. *)

val fork_rng : t -> Rng.t
(** An independent stream derived from the root. *)

val schedule :
  ?label:(unit -> string) -> t -> delay:int64 -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay >= 0].
    [label] names the event in sanitizer race reports; it is a thunk,
    forced only in sanitize mode (at schedule time), so hot paths pay no
    formatting when no sanitizer will read it. Give one wherever events
    can share a timestamp. *)

val schedule_at :
  ?label:(unit -> string) -> t -> time:int64 -> (unit -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute [time >= now t]. *)

val schedule_static_at :
  ?label:(unit -> string) -> t -> time:int64 -> (unit -> unit) -> unit
(** Like {!schedule_at}, but marks the event {e static}: one that a rebuilt
    topology re-schedules identically from declarative inputs (fault-plan
    crash windows, periodic sweeps). Static events do not block quiescence
    ({!quiescent}), because a checkpoint can represent them as bare
    timestamps and a resume re-derives their closures from the rebuild —
    see {!save_state}/{!restore_state}. *)

val pending : t -> int
(** Number of queued events. *)

val pending_volatile : t -> int
(** Queued events that are {e not} static: closures a checkpoint cannot
    capture. [0] iff the engine is {!quiescent}. *)

val events_executed : t -> int
(** Total events run so far — the denominator for events/sec reporting. *)

val next_event_time : t -> int64 option
(** Timestamp of the earliest queued event, [None] when the queue is
    empty. The shard coordinator ({!Temporal}) uses this to pick the next
    quantum rendezvous without popping anything. *)

val run : ?until:int64 -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue is empty, [until] (inclusive)
    is passed, or [max_events] have run. The clock advances to each event's
    time; when stopped by [until], the clock is left at [until]. *)

val step : t -> bool
(** Execute exactly one event. [false] if the queue was empty. *)

val run_until_quiescent : ?max_events:int -> t -> unit
(** Execute events (in time order, statics included) until only static
    events remain — the earliest point at which {!save_state} may run. *)

val quiescent : t -> bool
(** Whether every queued event is static ({!pending_volatile} is [0]). *)

(** {2 Checkpoint/restore}

    A whole-machine checkpoint is driven from outside (see
    [Core.Checkpoint]): each subsystem registers a named hook at creation
    time; at a quiescent point the orchestrator collects {!save_state} plus
    every hook's [save] into one {!Snapshot} file. Restore rebuilds the
    topology with the identical deterministic builder (recreating closures,
    handles and static events), then feeds each section back through
    {!restore_state} and the hooks' [restore]. *)

val register_snapshot :
  t -> name:string -> save:(unit -> string) -> restore:(string -> unit) -> unit
(** Register a subsystem checkpoint hook. Hooks are kept in registration
    order; a rebuild therefore re-registers the same names in the same
    order.
    @raise Invalid_argument on a duplicate [name]. *)

val snapshot_hooks :
  t -> (string * (unit -> string) * (string -> unit)) list
(** All registered hooks, in registration order. *)

val save_state : t -> string
(** Serialize the engine's own state: clock, event/span counters, RNG
    position, sanitizer journal, metrics and fault state, and the multiset
    of pending static timestamps (closures are never serialized).
    @raise Invalid_argument unless {!quiescent}. *)

val restore_state : t -> string -> unit
(** Overwrite a freshly rebuilt engine with checkpointed state. The
    rebuilt queue is reconciled against the saved timestamps: each rebuilt
    static whose time matches a saved pending time at or past the restored
    clock survives (multiset matching); the rest — statics that had already
    fired before the checkpoint, such as the crash half of a crash→revive
    window — are dropped.
    @raise Invalid_argument if sanitize mode differs from the checkpoint.
    @raise Snapshot.R.Corrupt on malformed input. *)

val trace_event : t -> actor:string -> kind:string -> string -> unit
(** Append to the run trace at the current virtual time. *)

val tracing : t -> bool
(** Whether the trace retains events ([trace_capacity] was not [0]).
    Call sites that format trace detail strings eagerly should skip the
    work when this is [false]. *)

val metrics : t -> Metrics.t
(** The run-wide telemetry registry: all subsystem counters, gauges and
    latency histograms live here, keyed [actor/instrument]. *)

val faults : t -> Faults.t
(** The run's fault-injection state (a zero plan unless [create] was given
    one). Delivery channels consult it at each injection point. *)

(** {2 Ordering sanitizer} *)

val sanitizing : t -> bool
(** Whether this engine journals multi-event ticks. *)

val register_probe : t -> (unit -> int64) -> unit
(** Add an observable-state probe for the sanitizer digest (e.g. a bus
    frame digest). Probe results are summed — commutatively — with the
    metrics digest, so registration order does not matter. Probes must
    return values derived from simulation-stable state only. *)

val sanitizer_journal : t -> Sanitizer.tick list
(** The multi-event ticks journalled so far (flushes the in-progress tick
    group). Empty unless created with [~sanitize:true]. *)

val fresh_span_id : t -> int
(** A run-unique id for correlating span begin/end pairs that have no
    natural correlation id of their own. *)

val begin_span : t -> actor:string -> name:string -> id:int -> unit
(** Open span [name#id] at the current virtual time (traced). *)

val end_span : t -> actor:string -> name:string -> id:int -> unit
(** Close span [name#id]: traces the end and feeds the duration into the
    registry histogram [actor/<name>_ns]. No-op for unknown spans. *)
