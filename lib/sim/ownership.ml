(* Dynamic shard-ownership sanitizer: the runtime counterpart of the
   static D007 audit. See ownership.mli for the contract.

   This module is itself the blessed home of two process-global cells
   (the enable switch and the check counter): both are atomics written
   during sequential setup or counted commutatively, neither feeds any
   simulation-observable state, and the whole point of the module is to
   police everyone else's globals. lint.rules exempts this file from
   D007 for exactly that reason. *)

exception Violation of string

(* Enable switch and check counter. Atomics, not plain refs: touches run
   concurrently on every lane during parallel windows, and the OCaml
   memory model makes plain-ref racing reads undefined enough that the
   sanitizer itself would be the race it hunts. *)
let switch = Atomic.make false
let check_count = Atomic.make 0

let enable () =
  Atomic.set check_count 0;
  Atomic.set switch true

let disable () = Atomic.set switch false
let enabled () = Atomic.get switch
let checks () = Atomic.get check_count

(* Lane-local shard context. [-1] means "no window live on this domain";
   avoiding [int option] keeps enter/exit allocation-free. *)
let context : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let enter_shard i =
  if i < 0 then invalid_arg "Ownership.enter_shard: negative shard id";
  Domain.DLS.set context i

let exit_shard () = Domain.DLS.set context (-1)

let current_shard () =
  match Domain.DLS.get context with -1 -> None | s -> Some s

let with_shard i f =
  let prev = Domain.DLS.get context in
  enter_shard i;
  Fun.protect ~finally:(fun () -> Domain.DLS.set context prev) f

type tracker = { t_name : string; mutable t_owner : int }

let tracker ~name ~owner =
  if owner < 0 then invalid_arg "Ownership.tracker: negative owner shard";
  { t_name = name; t_owner = owner }

let name t = t.t_name
let owner t = t.t_owner
let rebind t ~owner = t.t_owner <- owner

let touch t =
  if Atomic.get switch then begin
    match Domain.DLS.get context with
    | -1 -> ()
    | s ->
      Atomic.incr check_count;
      if s <> t.t_owner then
        raise
          (Violation
             (Printf.sprintf
                "ownership violation: cell `%s' is owned by shard %d but was \
                 accessed from the lane running shard %d during a parallel \
                 window — route cross-shard traffic through the quantum-edge \
                 rendezvous (Temporal.post / the boundary mailbox)"
                t.t_name t.t_owner s))
  end
