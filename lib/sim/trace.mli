(** Structured trace of simulation events.

    The trace is the observable record of a run: every bus message, device
    state change and fault can be appended with its virtual timestamp. Tests
    assert on traces (e.g. the Figure-2 sequence) and the CLI pretty-prints
    them. *)

type entry = {
  time : int64;  (** virtual nanoseconds *)
  actor : string;  (** which component produced the event *)
  kind : string;  (** short machine-readable tag, e.g. "bus.route" *)
  detail : string;  (** human-readable description *)
}

type t

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] is an empty trace. [capacity] bounds retained
    entries (oldest dropped first); default keeps everything. [~capacity:0]
    disables entry retention entirely — appends become no-ops — while span
    timing (the begin-time side table) keeps working, so metrics histograms
    fed from spans are unaffected by running trace-off. *)

val enabled : t -> bool
(** [false] iff created with [~capacity:0]: appends are dropped, and call
    sites can skip building detail strings altogether. *)

val append : t -> time:int64 -> actor:string -> kind:string -> string -> unit
val length : t -> int
val entries : t -> entry list
(** Entries in chronological (append) order. *)

val find_all : t -> kind:string -> entry list
val clear : t -> unit

(** {2 Spans}

    A span is a pair of entries — kind ["span.begin"] / ["span.end"] with
    detail ["name#id"] — correlated by the caller-supplied id (typically a
    bus correlation id or an [Engine.fresh_span_id]). Begin times live in a
    side table, so spans survive capacity trimming of the entry list. *)

val span_begin_kind : string
val span_end_kind : string
val span_key : name:string -> id:int -> string

val begin_span : t -> time:int64 -> actor:string -> name:string -> id:int -> unit

val end_span :
  t -> time:int64 -> actor:string -> name:string -> id:int -> int64 option
(** Duration since the matching [begin_span], or [None] if the span was
    never opened (or already ended — ending twice is harmless). *)

val open_span_count : t -> int
(** Spans begun but not yet ended. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

val to_json_lines : t -> string
(** One JSON object per line ({i jsonl}), chronological: for offline
    analysis of runs. Strings are escaped per RFC 8259. *)
