(** Multicore runner for independent simulation tasks.

    Every experiment run owns its engine and therefore its entire mutable
    world; runs are embarrassingly parallel. [run_jobs] fans a list of
    thunks out over OCaml 5 domains while keeping the results positional,
    so callers print in submission order and a parallel run's output is
    byte-identical to a sequential one. *)

val run_jobs : jobs:int -> (unit -> 'a) list -> 'a list
(** [run_jobs ~jobs tasks] executes every task and returns their results
    in task-list order. At most [jobs] domains run concurrently (the
    calling domain counts as one); [jobs <= 1] or a single task runs
    sequentially with no domain spawned. Tasks must not share mutable
    state. If a task raises, every task still completes, then the
    exception of the earliest-submitted failing task is re-raised. *)
