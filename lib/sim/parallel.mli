(** Multicore runner for independent simulation tasks.

    Every experiment run owns its engine and therefore its entire mutable
    world; runs are embarrassingly parallel. [run_jobs] fans a list of
    thunks out over OCaml 5 domains while keeping the results positional,
    so callers print in submission order and a parallel run's output is
    byte-identical to a sequential one.

    {!Pool} is the repeated-rendezvous variant used by the shard
    coordinator ({!Temporal}): helper domains are spawned once and parked
    between rounds, so a barrier per quantum window costs a condition
    signal, not a domain spawn. *)

val run_jobs : jobs:int -> (unit -> 'a) list -> 'a list
(** [run_jobs ~jobs tasks] executes every task and returns their results
    in task-list order. At most [jobs] domains run concurrently (the
    calling domain counts as one); [jobs = 1] or a single task runs
    sequentially with no domain spawned, and [jobs] greater than the task
    count degrades to one domain per task (no idle domain is spawned).
    Tasks must not share mutable state. If a task raises, every task still
    completes, then the exception of the earliest-submitted failing task
    is re-raised.
    @raise Invalid_argument if [jobs <= 0]. *)

module Pool : sig
  type t

  val create : lanes:int -> t
  (** [create ~lanes] spawns [lanes - 1] helper domains (the caller is
      lane 0) and parks them. [lanes = 1] spawns nothing: {!run} then
      executes tasks inline, sequentially, with no synchronisation —
      byte-identical to not having a pool.
      @raise Invalid_argument if [lanes <= 0]. *)

  val lanes : t -> int

  val run : t -> (unit -> unit) array -> unit
  (** One rendezvous round: task [i] runs on lane [i mod lanes]; returns
      only after every task has finished (a full barrier). The mutex
      bracket around the round is the happens-before edge that makes
      state written by one round visible to the next, whichever lane
      reads it. Tasks in the same round must not share mutable state. If
      tasks raise, the earliest-index exception is re-raised after the
      barrier.
      @raise Invalid_argument if the pool was shut down. *)

  val shutdown : t -> unit
  (** Join the helper domains. Idempotent; the pool is unusable after. *)
end
