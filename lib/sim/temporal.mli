(** Quantum-synchronized shard coordinator (conservative parallel DES).

    A run is partitioned into {e shards} — ordinary sequential {!Engine}
    instances, each owning its event heap and local virtual clock. Shards
    execute one {e window} at a time: every shard runs up to the same
    target timestamp, then all rendezvous and exchange the cross-shard
    messages posted during the window. Within a window shards share
    nothing, so windows can execute on separate domains (via
    {!Parallel.Pool}) with no locking on simulation state.

    {b Lookahead.} Every cross-shard interaction has a minimum latency
    [lookahead >= 1ns]: a message posted at local time [t] arrives at its
    natural timestamp [t + lookahead]. Because the window length
    ([quantum]) never exceeds the lookahead, an arrival handed over at the
    barrier is always strictly in the destination's future.

    {b Determinism contract.} For a fixed (seed, quantum) the computation
    is a pure function of its inputs, independent of how many domains
    execute the shards. Boundary events are merged in
    [(arrival time, source shard, per-source sequence)] order, and all
    events sharing (destination, arrival time) are delivered as a single
    scheduled closure, so the destination heap's tie-break policy — even
    the sanitizer's salted one — cannot reorder boundary delivery.

    [quantum = 0] degenerates to lock-step: shards advance one global tick
    at a time, reproducing the union schedule of a sequential engine. *)

type t

val create : ?quantum:int64 -> lookahead:int64 -> Engine.t array -> t
(** [create ~lookahead engines] couples the given engines as shards
    [0 .. n-1]. [lookahead] is the uniform minimum cross-shard latency in
    nanoseconds; [quantum] (default [lookahead]) is the window length and
    must satisfy [0 <= quantum <= lookahead]. Engines with unequal clocks
    are aligned: each is run up to the maximum current clock, which
    becomes the common window origin.
    @raise Invalid_argument on an empty array, [lookahead < 1], or a
    quantum outside [[0, lookahead]]. *)

val shard_count : t -> int

val engine : t -> int -> Engine.t
(** [engine t i] is shard [i]'s engine. *)

val lookahead : t -> int64
val quantum : t -> int64

val post :
  ?label:(unit -> string) -> t -> src:int -> dst:int -> (unit -> unit) -> unit
(** [post t ~src ~dst fire] records a cross-shard message: [fire] will run
    on shard [dst]'s engine at time [now (engine t src) + lookahead t],
    delivered at the rendezvous that closes the current window. Must be
    called from shard [src]'s lane (outboxes are lane-confined). [label]
    names the event in the destination's sanitizer journal and is forced
    only when that shard journals. *)

val run_window : ?pool:Parallel.Pool.t -> t -> bool
(** Execute one window: pick the next rendezvous target (the first quantum
    edge at or past the earliest pending event anywhere — or that event's
    exact time when [quantum = 0]), run every shard up to it (on [pool]'s
    lanes when given), then flush boundary events. [false] when no shard
    has work left, in which case nothing ran. *)

val run : ?pool:Parallel.Pool.t -> t -> unit
(** Run windows until every shard is drained. *)

val boundary_events : t -> int
(** Total cross-shard messages delivered so far. *)

val windows_run : t -> int
(** Number of rendezvous windows executed. *)

(** {2 Checkpoint/restore}

    Checkpoints are taken only at quiescent window edges: every shard
    clock is then uniform (equal to the last rendezvous target), outboxes
    are empty, and each shard engine holds only static events — the one
    configuration a rebuilt coordinator can be restored into
    bit-identically, for any lane count. *)

val quiescent : t -> bool
(** No unflushed outbox entries and no volatile events on any shard. *)

val run_until_quiescent : ?pool:Parallel.Pool.t -> t -> unit
(** Run windows until {!quiescent} — the nearest checkpointable point. *)

val save_state : t -> string
(** Serialize the coordinator: clock origin, window/boundary counters and
    per-shard posting sequence numbers. Shard engine state is saved
    separately via {!Engine.save_state}.
    @raise Invalid_argument if an outbox is non-empty (not quiescent). *)

val restore_state : t -> string -> unit
(** Overwrite a rebuilt coordinator (same shard count) with checkpointed
    state.
    @raise Invalid_argument on a shard-count mismatch.
    @raise Snapshot.R.Corrupt on malformed input. *)
