(** Deterministic mutation primitives for the protocol fuzzer.

    A fuzzing campaign in this repo is a reproducible experiment: every
    mutant derives from one seeded {!Rng} stream, so the same seed gives
    the same campaign — and a committed golden can gate CI on it. These
    are the generic byte- and scalar-level mutators; structure-aware
    selection of which field of which frame to mutate belongs to the
    layer that knows the frame types (see [Lastcpu_core.Protofuzz]). *)

type t
(** Mutator state: a seeded generator. *)

val create : seed:int64 -> t
(** Equal seeds give equal mutant streams. *)

val save : Snapshot.W.t -> t -> unit
(** Append the campaign's stream position: a restored mutator continues
    the exact mutant sequence of the uninterrupted campaign. *)

val restore : Snapshot.R.t -> t -> unit

val rng : t -> Rng.t
(** The underlying generator, for campaign-level choices. *)

val pick : t -> int -> int
(** [pick t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val byte : t -> int
(** Uniform in [\[0, 256)]. *)

(** {1 Scalar mutations}

    Each returns a mutant of the input: a boundary value (0, -1,
    [max_int], page-size multiples...), a single bit flip, a small
    delta, or a fresh random value. *)

val mutate_int64 : t -> int64 -> int64
val mutate_int : t -> int -> int
val mutate_bool : t -> bool -> bool
val mutate_string : t -> string -> string

(** {1 Byte-buffer mutations}

    For encoded frames. All total: the empty string maps to itself
    (except {!extend}, which grows it). *)

val flip_bit : t -> string -> string
val overwrite_byte : t -> string -> string
val truncate : t -> string -> string
val extend : t -> string -> string

val mutate_bytes : t -> string -> string
(** One of the four above, chosen uniformly. *)
