(* Domain-pool runner for independent experiment tasks.

   Each simulation run owns its engine (clock, queue, RNG, telemetry), so
   distinct runs share no mutable state and can execute on separate domains
   with per-run determinism untouched. The only coordination is the work
   index (an atomic ticket counter) and the results array, written at
   distinct slots and read only after every domain is joined — [Domain.join]
   is the synchronisation point the OCaml memory model requires.

   Output ordering is the caller's concern by construction: results come
   back positionally, in submission order, regardless of which domain
   finished first.

   [Pool] is the repeated-barrier variant for the shard coordinator
   (Temporal): spawning a domain costs tens of microseconds, far too much
   to pay once per quantum window, so a pool keeps its helper domains
   parked on a condition variable between rounds. Every round is bracketed
   by the pool mutex on both sides, which is the happens-before edge the
   memory model needs: shard state written by lane A in window w is
   visible to whichever lane reads it in window w+1. *)

let run_jobs ~jobs tasks =
  if jobs <= 0 then
    invalid_arg
      (Printf.sprintf "Parallel.run_jobs: jobs must be >= 1 (got %d)" jobs);
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if jobs = 1 || n <= 1 then
    (* Sequential degenerate case: identical to the parallel path's
       semantics, with no domains spawned (used by --jobs 1 and by
       single-task lists). *)
    Array.to_list (Array.map (fun task -> task ()) tasks)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* Trap the exception rather than let it tear down the domain:
             the caller gets every task's outcome and re-raises the first
             failure after all domains are joined. *)
          (results.(i) <-
            (match tasks.(i) () with
            | v -> Some (Ok v)
            | exception e -> Some (Error e)));
          go ()
        end
      in
      go ()
    in
    (* [jobs > n] degrades to [n] lanes: a domain that would find the
       ticket counter already exhausted is never spawned. *)
    let helpers =
      Array.init
        (min jobs n - 1)
        (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join helpers;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

module Pool = struct
  type t = {
    lanes : int;
    mutex : Mutex.t;
    cond : Condition.t;
    mutable tasks : (unit -> unit) array;  (* current round's work *)
    mutable errors : exn option array;  (* per-task, distinct slots *)
    mutable generation : int;  (* bumped once per round *)
    mutable outstanding : int;  (* helpers yet to finish the round *)
    mutable stopped : bool;
    mutable helpers : unit Domain.t array;
  }

  (* Helper lane: park until the generation moves, run every task whose
     index hashes to this lane, report back. Exceptions land in the
     per-task [errors] slot so the caller can re-raise the earliest-index
     one — a deterministic choice no matter which lane hit it first. *)
  let helper_loop pool lane =
    let seen = ref 0 in
    let rec loop () =
      Mutex.lock pool.mutex;
      while (not pool.stopped) && pool.generation = !seen do
        Condition.wait pool.cond pool.mutex
      done;
      if pool.stopped then Mutex.unlock pool.mutex
      else begin
        seen := pool.generation;
        let tasks = pool.tasks and errors = pool.errors in
        Mutex.unlock pool.mutex;
        Array.iteri
          (fun i task ->
            if i mod pool.lanes = lane then
              match task () with
              | () -> ()
              | exception e -> errors.(i) <- Some e)
          tasks;
        Mutex.lock pool.mutex;
        pool.outstanding <- pool.outstanding - 1;
        if pool.outstanding = 0 then Condition.broadcast pool.cond;
        Mutex.unlock pool.mutex;
        loop ()
      end
    in
    loop ()

  let create ~lanes =
    if lanes <= 0 then
      invalid_arg
        (Printf.sprintf "Parallel.Pool.create: lanes must be >= 1 (got %d)"
           lanes);
    let pool =
      {
        lanes;
        mutex = Mutex.create ();
        cond = Condition.create ();
        tasks = [||];
        errors = [||];
        generation = 0;
        outstanding = 0;
        stopped = false;
        helpers = [||];
      }
    in
    pool.helpers <-
      Array.init (lanes - 1) (fun i ->
          Domain.spawn (fun () -> helper_loop pool (i + 1)));
    pool

  let lanes pool = pool.lanes

  let run pool tasks =
    if pool.stopped then invalid_arg "Parallel.Pool.run: pool is shut down";
    if pool.lanes = 1 || Array.length tasks <= 1 then
      (* Sequential lane: no synchronisation at all — byte-identical to a
         pool-less loop, which is what --shards 1 promises. *)
      Array.iter (fun task -> task ()) tasks
    else begin
      let errors = Array.make (Array.length tasks) None in
      Mutex.lock pool.mutex;
      pool.tasks <- tasks;
      pool.errors <- errors;
      pool.generation <- pool.generation + 1;
      pool.outstanding <- Array.length pool.helpers;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex;
      (* The calling domain is lane 0. *)
      Array.iteri
        (fun i task ->
          if i mod pool.lanes = 0 then
            match task () with () -> () | exception e -> errors.(i) <- Some e)
        tasks;
      Mutex.lock pool.mutex;
      while pool.outstanding > 0 do
        Condition.wait pool.cond pool.mutex
      done;
      Mutex.unlock pool.mutex;
      Array.iter (function Some e -> raise e | None -> ()) errors
    end

  let shutdown pool =
    if not pool.stopped then begin
      Mutex.lock pool.mutex;
      pool.stopped <- true;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex;
      Array.iter Domain.join pool.helpers;
      pool.helpers <- [||]
    end
end
