(* Domain-pool runner for independent experiment tasks.

   Each simulation run owns its engine (clock, queue, RNG, telemetry), so
   distinct runs share no mutable state and can execute on separate domains
   with per-run determinism untouched. The only coordination is the work
   index (an atomic ticket counter) and the results array, written at
   distinct slots and read only after every domain is joined — [Domain.join]
   is the synchronisation point the OCaml memory model requires.

   Output ordering is the caller's concern by construction: results come
   back positionally, in submission order, regardless of which domain
   finished first. *)

let run_jobs ~jobs tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then
    (* Sequential degenerate case: identical to the parallel path's
       semantics, with no domains spawned (used by --jobs 1 and by
       single-task lists). *)
    Array.to_list (Array.map (fun task -> task ()) tasks)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* Trap the exception rather than let it tear down the domain:
             the caller gets every task's outcome and re-raises the first
             failure after all domains are joined. *)
          (results.(i) <-
            (match tasks.(i) () with
            | v -> Some (Ok v)
            | exception e -> Some (Error e)));
          go ()
        end
      in
      go ()
    in
    let helpers =
      Array.init
        (min jobs n - 1)
        (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join helpers;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end
