(* Quantum-synchronized shard coordinator: conservative parallel DES.

   A run is partitioned into shards, each an ordinary sequential Engine
   with its own heap and local clock. Shards execute a *window* at a time:
   every shard runs up to the same target timestamp, then all rendezvous
   and exchange the cross-shard messages posted during the window. Within
   a window shards share nothing, so the windows can execute on separate
   domains (see Parallel.Pool) without any locking on the simulation state.

   Correctness rests on the lookahead bound. Every cross-shard interaction
   has a minimum latency L >= 1ns (the lookahead): a message posted at
   local time t arrives at its natural timestamp t + L. With the window
   length (quantum) q <= L, the rendezvous edge e that closes the sending
   window satisfies e <= t + q <= t + L, so an arrival flushed at the
   barrier is never behind the destination's clock (at worst exactly at
   it, for a post made on an edge), and Engine.schedule_at's
   [time >= clock] invariant holds unconditionally.

   Determinism contract. For a fixed (seed, quantum) the whole computation
   is a pure function of its inputs, independent of how many domains
   execute the shards: each shard's window is sequential; the flush is
   single-threaded and sorts the union of outboxes by (arrival time,
   source shard, per-source sequence number) — all three components are
   lane-independent. Boundary events sharing (destination, arrival time)
   are delivered as ONE scheduled closure that executes the members in
   that sorted order internally, so the destination heap's tie-break
   policy (Fifo / Lifo / Salted) cannot reorder boundary-vs-boundary
   delivery even under the sanitizer's perturbed runs.

   quantum = 0 degenerates to lock-step: the rendezvous target is the
   global minimum next-event time, i.e. shards advance one global tick at
   a time — the union schedule a single sequential engine would execute. *)

type outbox_ev = {
  at : int64;  (* arrival timestamp: send time + lookahead *)
  src : int;
  seq : int;  (* per-source posting order, lane-independent *)
  dst : int;
  label : string;
  fire : unit -> unit;
}

type shard = {
  sh_engine : Engine.t;
  mutable out : outbox_ev list;  (* reversed; confined to the shard's lane *)
  mutable oseq : int;
}

type t = {
  quantum : int64;
  lookahead : int64;
  shards : shard array;
  (* Common clock origin; window edges are base + k*quantum. Mutable only
     for checkpoint restore: a rebuilt coordinator starts from the boot
     clocks but must resume with the checkpointed origin so the edge
     arithmetic — and therefore every future rendezvous point — is
     identical to the uninterrupted run. *)
  mutable base : int64;
  mutable boundary_events : int;
  mutable windows : int;
}

let create ?quantum ~lookahead engines =
  if Array.length engines = 0 then
    invalid_arg "Temporal.create: need at least one shard";
  if lookahead < 1L then
    invalid_arg "Temporal.create: lookahead must be >= 1ns";
  let quantum = match quantum with None -> lookahead | Some q -> q in
  if quantum < 0L || quantum > lookahead then
    invalid_arg
      (Printf.sprintf
         "Temporal.create: quantum must be in [0, lookahead=%Ld] (got %Ld)"
         lookahead quantum);
  (* Shard engines may arrive with unequal clocks (e.g. each System was
     booted sequentially before coupling). Align them to a common origin so
     window edges mean the same instant everywhere; running an engine
     [~until] a time past its events only advances its clock. *)
  let base = Array.fold_left (fun m e -> max m (Engine.now e)) 0L engines in
  Array.iter (fun e -> Engine.run ~until:base e) engines;
  (* Tag each engine with its shard id for the ownership sanitizer: from
     here on, scheduling onto an engine from a lane running a different
     shard is a contract violation the sanitizer can catch at the site. *)
  Array.iteri (fun i e -> Engine.bind_shard e ~shard:i) engines;
  let shards =
    Array.map (fun e -> { sh_engine = e; out = []; oseq = 0 }) engines
  in
  { quantum; lookahead; shards; base; boundary_events = 0; windows = 0 }

let shard_count t = Array.length t.shards
let engine t i = t.shards.(i).sh_engine
let lookahead t = t.lookahead
let quantum t = t.quantum
let boundary_events t = t.boundary_events
let windows_run t = t.windows

let post ?label t ~src ~dst fire =
  if src < 0 || src >= Array.length t.shards then
    invalid_arg "Temporal.post: bad src shard";
  if dst < 0 || dst >= Array.length t.shards then
    invalid_arg "Temporal.post: bad dst shard";
  let s = t.shards.(src) in
  let at = Int64.add (Engine.now s.sh_engine) t.lookahead in
  (* The label is only read when the destination journals ticks; skip the
     formatting otherwise, same policy as Engine.schedule. *)
  let label =
    if Engine.sanitizing t.shards.(dst).sh_engine then
      match label with None -> "xshard" | Some l -> l ()
    else ""
  in
  s.out <- { at; src; seq = s.oseq; dst; label; fire } :: s.out;
  s.oseq <- s.oseq + 1

(* Earliest pending event across all shards, including not-yet-flushed
   outbox arrivals (they are already committed future work). *)
let horizon t =
  Array.fold_left
    (fun acc s ->
      let acc =
        match Engine.next_event_time s.sh_engine with
        | None -> acc
        | Some e -> ( match acc with None -> Some e | Some a -> Some (min a e))
      in
      List.fold_left
        (fun acc ev ->
          match acc with None -> Some ev.at | Some a -> Some (min a ev.at))
        acc s.out)
    None t.shards

(* Next rendezvous edge. With quantum > 0, skip ahead: idle stretches with
   no events anywhere jump straight to the window containing the next
   event, rather than spinning empty barriers. quantum = 0 is lock-step —
   the edge IS the global minimum event time. *)
let next_target t tm =
  if t.quantum = 0L then tm
  else begin
    (* Smallest edge base + k*q >= tm (ceil division on the offset). An
       edge equal to [tm] is fine — [Engine.run ~until] is inclusive, and
       an arrival landing exactly on an edge (a post made at an edge, e.g.
       from outside the run loop) must be flushed at that edge, not a
       window later, or the flush would schedule into the destination's
       past. Progress is still guaranteed: every window either executes an
       event or flushes an outbox entry, so the horizon's support shrinks. *)
    let off = Int64.sub tm t.base in
    let k = Int64.div (Int64.add off (Int64.sub t.quantum 1L)) t.quantum in
    Int64.add t.base (Int64.mul k t.quantum)
  end

(* Rendezvous: collect every outbox, order by (arrival, src, seq), and hand
   the messages to their destinations. All events sharing (dst, arrival)
   become one scheduled closure so the destination's tie-break cannot
   interleave anything between them or reorder them. *)
let flush t =
  (* Collection order is irrelevant: (at, src, seq) is a total key, so the
     sort below fully determines delivery order. *)
  let pending =
    Array.fold_left
      (fun acc s ->
        let evs = s.out in
        s.out <- [];
        List.rev_append evs acc)
      [] t.shards
  in
  match pending with
  | [] -> ()
  | _ ->
    let pending =
      List.sort
        (fun a b ->
          match Int64.compare a.at b.at with
          | 0 -> ( match compare a.src b.src with 0 -> compare a.seq b.seq | c -> c)
          | c -> c)
        pending
    in
    let rec deliver = function
      | [] -> ()
      | ev :: _ as evs ->
        let same, rest =
          List.partition (fun e -> e.dst = ev.dst && e.at = ev.at) evs
        in
        (* List.partition preserves relative order, so [same] is still in
           (src, seq) order. *)
        let dst = t.shards.(ev.dst).sh_engine in
        t.boundary_events <- t.boundary_events + List.length same;
        let label =
          if Engine.sanitizing dst then
            Some (fun () -> String.concat "+" (List.map (fun e -> e.label) same))
          else None
        in
        Engine.schedule_at ?label dst ~time:ev.at (fun () ->
            List.iter (fun e -> e.fire ()) same);
        deliver rest
    in
    deliver pending

let run_window ?pool t =
  match horizon t with
  | None -> false
  | Some tm ->
    let target = next_target t tm in
    (* Each window task runs under its shard's ownership context, so any
       guarded cell touched from the wrong lane is caught while the race
       is actually happening — the dynamic half of the D007 audit. With
       the sanitizer disabled the context bracket is skipped entirely and
       the task array is identical to the pre-sanitizer build. *)
    let tasks =
      if Ownership.enabled () then
        Array.mapi
          (fun i s () ->
            Ownership.with_shard i (fun () ->
                Engine.run ~until:target s.sh_engine))
          t.shards
      else
        Array.map (fun s () -> Engine.run ~until:target s.sh_engine) t.shards
    in
    (match pool with
    | Some p -> Parallel.Pool.run p tasks
    | None -> Array.iter (fun task -> task ()) tasks);
    t.windows <- t.windows + 1;
    flush t;
    true

let run ?pool t =
  while run_window ?pool t do
    ()
  done

(* --- checkpoint/restore ---------------------------------------------------- *)

(* Quiescent = checkpointable: no outbox entries awaiting a flush and no
   volatile events on any shard. Pending statics (crash windows, sweeps)
   are fine — the engine represents them as bare timestamps. After any
   window every shard clock equals the window target exactly (Engine.run
   ~until leaves the clock at the target in all branches), so at
   quiescence the clocks are uniform and sit on a window edge. *)
let quiescent t =
  Array.for_all
    (fun s -> s.out = [] && Engine.pending_volatile s.sh_engine = 0)
    t.shards

let run_until_quiescent ?pool t =
  while not (quiescent t) do
    (* A non-quiescent shard has a pending event or outbox entry, so the
       horizon is non-empty and the window makes progress. *)
    let progressed = run_window ?pool t in
    assert progressed
  done

let save_state t =
  Array.iter
    (fun s ->
      if s.out <> [] then
        invalid_arg "Temporal.save_state: unflushed outbox entries")
    t.shards;
  let w = Snapshot.W.create () in
  Snapshot.W.i64 w t.base;
  Snapshot.W.varint w t.boundary_events;
  Snapshot.W.varint w t.windows;
  Snapshot.W.array w (fun w s -> Snapshot.W.varint w s.oseq) t.shards;
  Snapshot.W.contents w

let restore_state t s =
  let r = Snapshot.R.of_string s in
  t.base <- Snapshot.R.i64 r;
  t.boundary_events <- Snapshot.R.varint r;
  t.windows <- Snapshot.R.varint r;
  let oseqs = Snapshot.R.array r Snapshot.R.varint in
  if Array.length oseqs <> Array.length t.shards then
    invalid_arg "Temporal.restore_state: shard count differs from checkpoint";
  Array.iteri
    (fun i s ->
      s.out <- [];
      s.oseq <- oseqs.(i))
    t.shards
