(* Binary min-heap over (priority, seq) keys stored in a growable array.
   The [seq] counter guarantees FIFO order among equal priorities, which in
   turn makes the simulation engine deterministic.

   The tie-break among equal priorities is pluggable so the ordering
   sanitizer can perturb it: [Fifo] (the contract), [Lifo] (reverses every
   tie — guarantees any colliding pair swaps), and [Salted] (a seed-keyed
   pseudo-random permutation of ties). All three are total orders, so every
   mode is itself deterministic. *)

type tie_break = Fifo | Lifo | Salted of int64

type 'a entry = { prio : int64; seq : int; key : int64; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  tie : tie_break;
}

let tie_key tie seq =
  match tie with
  | Fifo -> Int64.of_int seq
  | Lifo -> Int64.neg (Int64.of_int seq)
  | Salted salt -> Sanitizer.mix64 (Int64.logxor salt (Int64.of_int seq))

let create ?(tie = Fifo) () = { data = [||]; size = 0; next_seq = 0; tie }

let length h = h.size

let is_empty h = h.size = 0

let lt a b =
  match Int64.compare a.prio b.prio with
  | 0 -> (
    match Int64.compare a.key b.key with
    | 0 -> a.seq < b.seq (* salted collisions still order totally *)
    | c -> c < 0)
  | c -> c < 0

let grow h entry =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let new_capacity = if capacity = 0 then 16 else capacity * 2 in
    let data = Array.make new_capacity entry in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < h.size && lt h.data.(left) h.data.(i) then left else i in
  let smallest =
    if right < h.size && lt h.data.(right) h.data.(smallest) then right
    else smallest
  in
  if smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(smallest);
    h.data.(smallest) <- tmp;
    sift_down h smallest
  end

let push h ~priority value =
  let seq = h.next_seq in
  let entry = { prio = priority; seq; key = tie_key h.tie seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = h.data.(0) in
    Some (e.prio, e.value)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.prio, top.value)
  end

let clear h =
  h.data <- [||];
  h.size <- 0

let to_sorted_list h =
  let rec drain acc =
    match pop h with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []
