(* Binary min-heap over (priority, seq) keys stored in a growable array.
   The [seq] counter guarantees FIFO order among equal priorities, which in
   turn makes the simulation engine deterministic.

   The tie-break among equal priorities is pluggable so the ordering
   sanitizer can perturb it: [Fifo] (the contract), [Lifo] (reverses every
   tie — guarantees any colliding pair swaps), and [Salted] (a seed-keyed
   pseudo-random permutation of ties). All three are total orders, so every
   mode is itself deterministic.

   Hot-path notes. Slots are a variant so vacated positions can be reset to
   the immediate [Empty] — [pop] must not retain the popped entry (and the
   closure it carries) in [data.(size)], and [grow] must not seed fresh
   capacity with a live entry. In the default [Fifo] mode the tie key is
   the shared constant [0L] (comparison falls through equal keys to the
   [seq] compare, which IS insertion order), so a push allocates exactly
   one block: the entry itself. *)

type tie_break = Fifo | Lifo | Salted of int64

type 'a slot =
  | Empty
  | Entry of { prio : int64; seq : int; key : int64; value : 'a }

type 'a t = {
  mutable data : 'a slot array;
  mutable size : int;
  mutable next_seq : int;
  tie : tie_break;
}

let tie_key tie seq =
  match tie with
  | Fifo -> 0L (* constant: no per-push Int64 boxing; seq breaks the tie *)
  | Lifo -> Int64.neg (Int64.of_int seq)
  | Salted salt -> Sanitizer.mix64 (Int64.logxor salt (Int64.of_int seq))

let create ?(tie = Fifo) ?(hint = 0) () =
  { data = (if hint > 0 then Array.make hint Empty else [||]);
    size = 0;
    next_seq = 0;
    tie;
  }

let length h = h.size

let is_empty h = h.size = 0

let lt a b =
  match (a, b) with
  | ( Entry { prio = ap; seq = asq; key = ak; _ },
      Entry { prio = bp; seq = bsq; key = bk; _ } ) -> (
    match Int64.compare ap bp with
    | 0 -> (
      match Int64.compare ak bk with
      | 0 -> asq < bsq (* salted collisions still order totally *)
      | c -> c < 0)
    | c -> c < 0)
  | (Empty, _ | _, Empty) -> invalid_arg "Heap: comparing an empty slot"

let grow h =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let new_capacity = if capacity = 0 then 16 else capacity * 2 in
    let data = Array.make new_capacity Empty in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < h.size && lt h.data.(left) h.data.(i) then left else i in
  let smallest =
    if right < h.size && lt h.data.(right) h.data.(smallest) then right
    else smallest
  in
  if smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(smallest);
    h.data.(smallest) <- tmp;
    sift_down h smallest
  end

let push h ~priority value =
  let seq = h.next_seq in
  h.next_seq <- h.next_seq + 1;
  grow h;
  h.data.(h.size) <- Entry { prio = priority; seq; key = tie_key h.tie seq; value };
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    match h.data.(0) with
    | Entry { prio; value; _ } -> Some (prio, value)
    | Empty -> assert false

let top_prio h =
  if h.size = 0 then invalid_arg "Heap.top_prio: empty heap"
  else match h.data.(0) with
    | Entry { prio; _ } -> prio
    | Empty -> assert false

(* Shared removal: vacate the root, clear the freed tail slot so the popped
   entry (and its closure) is not retained, and restore the heap shape. *)
let remove_top h =
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- Empty;
    sift_down h 0
  end
  else h.data.(0) <- Empty

let pop h =
  if h.size = 0 then None
  else
    match h.data.(0) with
    | Entry { prio; value; _ } ->
      remove_top h;
      Some (prio, value)
    | Empty -> assert false

let pop_top h =
  if h.size = 0 then invalid_arg "Heap.pop_top: empty heap"
  else
    match h.data.(0) with
    | Entry { value; _ } ->
      remove_top h;
      value
    | Empty -> assert false

let clear h =
  h.data <- [||];
  h.size <- 0

let to_sorted_list h =
  let rec drain acc =
    match pop h with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []
