module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; mn = infinity; mx = neg_infinity; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.n = 0 then 0. else t.mn
  let max t = if t.n = 0 then 0. else t.mx
  let total t = t.total

  (* Checkpoint support: the accumulator is observable through percentile
     exports, so restore must reproduce every field bit-for-bit. *)
  let save w t =
    Snapshot.W.varint w t.n;
    Snapshot.W.float w t.mean;
    Snapshot.W.float w t.m2;
    Snapshot.W.float w t.mn;
    Snapshot.W.float w t.mx;
    Snapshot.W.float w t.total

  let restore r t =
    t.n <- Snapshot.R.varint r;
    t.mean <- Snapshot.R.float r;
    t.m2 <- Snapshot.R.float r;
    t.mn <- Snapshot.R.float r;
    t.mx <- Snapshot.R.float r;
    t.total <- Snapshot.R.float r

  (* Chan et al. parallel-merge formulas. *)
  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean =
        a.mean +. (delta *. float_of_int b.n /. float_of_int n)
      in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n
            /. float_of_int n)
      in
      {
        n;
        mean;
        m2;
        mn = Float.min a.mn b.mn;
        mx = Float.max a.mx b.mx;
        total = a.total +. b.total;
      }
    end
end

module Histogram = struct
  (* Geometric buckets: bucket i covers [base^i, base^(i+1)). With base
     chosen so there are [buckets_per_decade] buckets per factor of ten,
     percentile error is bounded by the bucket width. Values below 1.0 land
     in the underflow bucket (index 0); the value scale is up to the caller
     (we use nanoseconds, so sub-nanosecond underflow is fine). *)
  let buckets_per_decade = 30
  let nbuckets = 16 * buckets_per_decade (* covers up to 10^16 ns *)
  let log_base = log 10. /. float_of_int buckets_per_decade

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
  }

  let create () = { counts = Array.make (nbuckets + 1) 0; n = 0; sum = 0. }

  let bucket_of v =
    if v < 1. then 0
    else begin
      let i = 1 + int_of_float (log v /. log_base) in
      if i > nbuckets then nbuckets else i
    end

  let upper_edge i =
    if i = 0 then 1. else exp (float_of_int i *. log_base)

  let add t v =
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v

  let count t = t.n

  let percentile t p =
    assert (p >= 0. && p <= 100.);
    if t.n = 0 then 0.
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
        if r < 1 then 1 else if r > t.n then t.n else r
      in
      let rec scan i seen =
        if i > nbuckets then upper_edge nbuckets
        else
          let seen = seen + t.counts.(i) in
          if seen >= rank then upper_edge i else scan (i + 1) seen
      in
      scan 0 0
    end

  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

  let merge a b =
    let counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts in
    { counts; n = a.n + b.n; sum = a.sum +. b.sum }

  let reset t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.n <- 0;
    t.sum <- 0.

  (* Buckets encode sparsely: soak histograms touch a few dozen of the
     481 buckets, so (index, count) pairs beat a dense dump. *)
  let save w t =
    Snapshot.W.varint w t.n;
    Snapshot.W.float w t.sum;
    let nonzero = ref [] in
    for i = Array.length t.counts - 1 downto 0 do
      if t.counts.(i) <> 0 then nonzero := (i, t.counts.(i)) :: !nonzero
    done;
    Snapshot.W.list w
      (fun w (i, c) ->
        Snapshot.W.varint w i;
        Snapshot.W.varint w c)
      !nonzero

  let restore r t =
    t.n <- Snapshot.R.varint r;
    t.sum <- Snapshot.R.float r;
    Array.fill t.counts 0 (Array.length t.counts) 0;
    List.iter
      (fun (i, c) ->
        if i >= Array.length t.counts then
          raise (Snapshot.R.Corrupt "histogram bucket index out of range");
        t.counts.(i) <- c)
      (Snapshot.R.list r (fun r ->
           let i = Snapshot.R.varint r in
           (i, Snapshot.R.varint r)))
end

type latency_report = {
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let latency_report h s =
  {
    n = Histogram.count h;
    mean = Summary.mean s;
    p50 = Histogram.percentile h 50.;
    p95 = Histogram.percentile h 95.;
    p99 = Histogram.percentile h 99.;
    max = Summary.max s;
  }

let pp_latency_report ppf r =
  Format.fprintf ppf
    "n=%d mean=%.0fns p50=%.0fns p95=%.0fns p99=%.0fns max=%.0fns" r.n r.mean
    r.p50 r.p95 r.p99 r.max
