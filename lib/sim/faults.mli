(** Deterministic fault injection: a seeded chaos plan carried by the engine.

    A {!plan} gives per-channel fault rates and scheduled device crash
    windows. Every decision is a pure function of the run seed, a
    caller-supplied {e content key} (derived from what is being faulted —
    message route, frame bytes, NAND page coordinates), the fault class and
    an occurrence counter — never a draw from a shared sequential stream.
    Identical seeds and plans therefore give identical fault outcomes even
    when independent decision sites execute in a different order, which is
    what keeps the same-tick ordering sanitizer's perturbed replays free of
    phantom fault divergence. A zero-rate plan is bit-for-bit
    indistinguishable from no plan at all — no counters registered, no
    draws, no scheduled events. *)

type crash_window = {
  device : string;  (** bus name of the device to fail (e.g. ["ssd0"]) *)
  at_ns : int64;  (** virtual time at which it crashes *)
  down_ns : int64;  (** how long it stays dead before the revive *)
}

type plan = {
  msg_loss : float;  (** P(drop) per device-originated bus delivery *)
  msg_dup : float;  (** P(duplicate) per bus delivery *)
  msg_delay : float;  (** P(extra jitter) per bus delivery *)
  msg_jitter_ns : int64;  (** max extra delay when jitter fires *)
  msg_corrupt : float;  (** P(payload bit flip), caught by the wire CRC *)
  frame_loss : float;  (** P(drop) per network frame *)
  frame_reorder : float;  (** P(extra delay ⇒ reorder) per network frame *)
  frame_reorder_ns : int64;  (** max reorder delay *)
  nand_read_fail : float;  (** P(transient read failure) per page read *)
  nand_bit_flip : float;  (** P(bit flip caught by page CRC) per page read *)
  crashes : crash_window list;  (** scheduled crash→revive windows *)
}

val zero : plan
(** All rates 0, no crashes: injects nothing and registers nothing. *)

val default_chaos : plan
(** The default soak mix: a few percent message/frame loss, duplication,
    jitter, corruption and NAND read trouble. No crash windows — compose
    those per experiment. *)

val is_zero : plan -> bool

type t

val create : ?plan:plan -> seed:int64 -> Metrics.t -> t
(** Built by {!Engine.create}; [seed] is the engine seed (salted
    internally). Counters register under actor ["faults"] only when the
    plan is non-zero. *)

val plan : t -> plan

val active : t -> bool
(** [false] iff the plan is zero (callers may skip hook work entirely). *)

val key_of_string : string -> int64
(** Hash a stable description of the faulted object (route, payload kind,
    page coordinates…) into a content key. Call sites build the string from
    simulation-stable data only — never from memory addresses or
    iteration-order-dependent state. *)

val key_init : int64
(** Seeded initial state for building a content key with the streaming
    {!Sanitizer.fnv_byte}/[fnv_string]/[fnv_int] fold:
    [Sanitizer.fnv_finish (fold over key_init)] equals {!key_of_string} of
    the equivalent formatted description. Hot paths use this to key faults
    without allocating the description string. *)

(** {2 Injection predicates} — each decides as a pure function of
    (seed, [key], class, occurrence) only when its rate is non-zero, and
    bumps the matching registry counter when the fault fires. Calling a
    predicate twice with the same [key] yields the 1st then 2nd occurrence
    decision (retransmits are faulted independently, still
    order-insensitively). *)

val drop_message : t -> key:int64 -> bool
val duplicate_message : t -> key:int64 -> bool

val message_jitter : t -> key:int64 -> int64
(** Extra delivery delay in ns; [0L] when no jitter fires. *)

val corrupt_message : t -> key:int64 -> bool

val corrupt_bit : t -> key:int64 -> len:int -> int
(** Which bit of a [len]-byte payload to flip (uniform). *)

val drop_frame : t -> key:int64 -> bool

val reorder_delay : t -> key:int64 -> int64
(** Extra frame delay in ns; [0L] when no reorder fires. *)

val nand_read_fails : t -> key:int64 -> bool

val nand_bit_flip : t -> key:int64 -> len:int -> int option
(** [Some bit] to flip in a [len]-byte page, [None] when no flip fires. *)

(** {2 Crash windows} *)

val crashes : t -> crash_window list

val note_crash : t -> unit
(** Tally an injected crash (called by the bus when a window fires). *)

val note_revive : t -> unit

(** {2 Checkpointing} *)

val save_state : t -> string
(** Serialize the per-key occurrence counters. The plan and seed are not
    included — a resume rebuilds them from the experiment spec. *)

val restore_state : t -> string -> unit
(** Overwrite the occurrence counters with state from {!save_state}, so
    subsequent decisions continue the interrupted stream exactly.
    @raise Snapshot.R.Corrupt on malformed input. *)
