type t = {
  engine : Engine.t;
  capacity : int option;
  mutable busy_until : int64;
  mutable in_flight : int;
  mutable completed : int;
  mutable rejected : int;
  mutable busy_total : int64;
  mutable wait_total : int64;
  m_rejected : Metrics.counter option;
}

let create ?capacity ?telemetry engine =
  (match capacity with
  | Some cap when cap <= 0 -> invalid_arg "Station.create: capacity must be positive"
  | _ -> ());
  let m_rejected =
    (* Instruments appear in the registry only when the station is bounded:
       an unbounded station (the default) leaves telemetry snapshots
       bit-identical to builds without the overload layer. *)
    match (capacity, telemetry) with
    | Some cap, Some (m, actor) ->
      Metrics.set (Metrics.gauge m ~actor ~name:"queue_limit") (float_of_int cap);
      Some (Metrics.counter m ~actor ~name:"rejected")
    | _ -> None
  in
  {
    engine;
    capacity;
    busy_until = 0L;
    in_flight = 0;
    completed = 0;
    rejected = 0;
    busy_total = 0L;
    wait_total = 0L;
    m_rejected;
  }

let submit t ~service k =
  assert (service >= 0L);
  let now = Engine.now t.engine in
  let start = if t.busy_until > now then t.busy_until else now in
  let finish = Int64.add start service in
  t.busy_until <- finish;
  t.in_flight <- t.in_flight + 1;
  t.busy_total <- Int64.add t.busy_total service;
  t.wait_total <- Int64.add t.wait_total (Int64.sub start now);
  Engine.schedule_at t.engine ~time:finish (fun () ->
      t.in_flight <- t.in_flight - 1;
      t.completed <- t.completed + 1;
      k ())

let try_submit t ~service k =
  match t.capacity with
  | Some cap when t.in_flight >= cap ->
    t.rejected <- t.rejected + 1;
    (match t.m_rejected with Some c -> Metrics.incr c | None -> ());
    `Rejected
  | _ ->
    submit t ~service k;
    `Accepted

let queue_length t = t.in_flight
let capacity t = t.capacity
let jobs_completed t = t.completed
let jobs_rejected t = t.rejected
let busy_ns t = t.busy_total
let total_wait_ns t = t.wait_total

(* Checkpoint support. Completion callbacks of in-flight jobs live in the
   engine queue and are not reconstructible here, so checkpoints are only
   taken when the station is drained (in_flight = 0, enforced by the
   engine's quiescence protocol); the scalar accounting below is the whole
   state. *)
let save w t =
  Snapshot.W.i64 w t.busy_until;
  Snapshot.W.varint w t.in_flight;
  Snapshot.W.varint w t.completed;
  Snapshot.W.varint w t.rejected;
  Snapshot.W.i64 w t.busy_total;
  Snapshot.W.i64 w t.wait_total

let restore r t =
  t.busy_until <- Snapshot.R.i64 r;
  t.in_flight <- Snapshot.R.varint r;
  t.completed <- Snapshot.R.varint r;
  t.rejected <- Snapshot.R.varint r;
  t.busy_total <- Snapshot.R.i64 r;
  t.wait_total <- Snapshot.R.i64 r

let drain_ns t ~now =
  if t.busy_until > now then Int64.sub t.busy_until now else 0L

let utilization t ~now =
  if now <= 0L then 0.
  else Int64.to_float t.busy_total /. Int64.to_float now
