(** Same-tick ordering sanitizer: journals, comparison, hash utilities.

    The engine's determinism contract fixes same-tick event order (FIFO by
    insertion), but code must not depend on that order for its observable
    outcome. In sanitize mode the engine journals a state hash after every
    tick that ran two or more events; running the same workload once with
    the FIFO tie-break and once with a perturbed one (LIFO or seed-salted)
    and comparing journals exposes any latent ordering race, localized to
    the colliding events' labels. *)

type tick = {
  time : int64;  (** virtual time of the tick *)
  labels : string list;  (** labels of the events that shared it, in order *)
  state_hash : int64;  (** observable-state digest after the tick *)
}

type divergence = {
  index : int;  (** first differing position in the reference journal *)
  reference : tick option;  (** [None] when the reference journal ended *)
  perturbed : tick option;  (** [None] when the perturbed journal ended *)
}

val compare_journals :
  reference:tick list -> perturbed:tick list -> divergence option
(** First entry where the journals disagree on the state hash, or [None]
    when the perturbed ordering is observationally identical. Timestamps
    and labels are not compared — a perturbed run legitimately reorders
    labels and drifts tick times by a few service times; only the state
    trajectory is contractual. *)

val pp_tick : Format.formatter -> tick -> unit
val pp_divergence : Format.formatter -> divergence -> unit

(** {2 Hash utilities} (also used by digest probes and keyed fault draws) *)

val mix64 : int64 -> int64
(** SplitMix64 finalizer: a strong cheap 64-bit mixer. *)

val combine : int64 -> int64 -> int64
(** Order-sensitive accumulator: fold values into a digest. *)

val hash_string : int64 -> string -> int64
(** FNV-1a over the bytes, chained from [seed], finished with {!mix64}. *)

(** {3 Streaming FNV-1a}

    [hash_string seed s] is exactly
    [fnv_finish (fnv_string (fnv_init seed) s)]. Hot paths use the split
    form to hash a value field-by-field with the same result they would
    get from hashing the formatted description — without allocating the
    string. Note that chaining two {!hash_string} calls is {e not} the
    hash of the concatenation (seeded init, final mix); only the split
    form composes. *)

val fnv_init : int64 -> int64
(** Start a streaming hash from a seed. *)

val fnv_byte : int64 -> int -> int64
(** Fold one byte (low 8 bits significant by convention). *)

val fnv_char : int64 -> char -> int64
(** Fold one character. *)

val fnv_string : int64 -> string -> int64
(** Fold every byte of a string. *)

val fnv_int : int64 -> int -> int64
(** Fold the decimal rendering of an int — the exact bytes
    [Printf.sprintf "%d" n] would contribute, sign included. *)

val fnv_finish : int64 -> int64
(** Finish the stream (applies {!mix64}). *)
