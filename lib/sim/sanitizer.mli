(** Same-tick ordering sanitizer: journals, comparison, hash utilities.

    The engine's determinism contract fixes same-tick event order (FIFO by
    insertion), but code must not depend on that order for its observable
    outcome. In sanitize mode the engine journals a state hash after every
    tick that ran two or more events; running the same workload once with
    the FIFO tie-break and once with a perturbed one (LIFO or seed-salted)
    and comparing journals exposes any latent ordering race, localized to
    the colliding events' labels. *)

type tick = {
  time : int64;  (** virtual time of the tick *)
  labels : string list;  (** labels of the events that shared it, in order *)
  state_hash : int64;  (** observable-state digest after the tick *)
}

type divergence = {
  index : int;  (** first differing position in the reference journal *)
  reference : tick option;  (** [None] when the reference journal ended *)
  perturbed : tick option;  (** [None] when the perturbed journal ended *)
}

val compare_journals :
  reference:tick list -> perturbed:tick list -> divergence option
(** First entry where the journals disagree on the state hash, or [None]
    when the perturbed ordering is observationally identical. Timestamps
    and labels are not compared — a perturbed run legitimately reorders
    labels and drifts tick times by a few service times; only the state
    trajectory is contractual. *)

val pp_tick : Format.formatter -> tick -> unit
val pp_divergence : Format.formatter -> divergence -> unit

(** {2 Hash utilities} (also used by digest probes and keyed fault draws) *)

val mix64 : int64 -> int64
(** SplitMix64 finalizer: a strong cheap 64-bit mixer. *)

val combine : int64 -> int64 -> int64
(** Order-sensitive accumulator: fold values into a digest. *)

val hash_string : int64 -> string -> int64
(** FNV-1a over the bytes, chained from [seed], finished with {!mix64}. *)
