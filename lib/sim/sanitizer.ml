(* Same-tick ordering sanitizer: journal types, comparison, and the hash
   utilities shared by the digest probes.

   The determinism contract says same-tick events pop in insertion (FIFO)
   order, so a seeded run is reproducible. But code must not *depend* on
   that order for its observable outcome: if it does, an innocent refactor
   that changes insertion order silently changes results. The sanitizer
   makes that dependence detectable: a reference run (FIFO ties) and a
   perturbed run (LIFO or seed-salted ties) each journal a state hash
   after every tick that executed two or more events; the first journal
   entry where the two runs disagree is an ordering race, reported with
   the colliding event labels from both runs.

   What the state hash covers is deliberate: semantic counters, gauges and
   histogram observation *counts* (via [Metrics.digest]) plus the bus
   frame digest (source, destination, payload kind). It excludes latency
   quantiles, correlation ids and payload bytes — those shift benignly
   when two same-tick arrivals swap places in a queue, and flagging them
   would drown real races in queueing noise. Tick timestamps are likewise
   excluded from the comparison (kept only for the report): swapping two
   same-tick queue entries legitimately shifts *when* downstream work
   completes by a few service times, and that drift is not a contract
   violation as long as the state trajectory is identical. *)

type tick = { time : int64; labels : string list; state_hash : int64 }

type divergence = {
  index : int;  (* position in the reference journal *)
  reference : tick option;
  perturbed : tick option;
}

(* --- hashing ---------------------------------------------------------- *)

(* SplitMix64 finalizer: a cheap strong mix for combining digests. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let combine h v = mix64 (Int64.add (Int64.logxor h v) 0x9E3779B97F4A7C15L)

(* FNV-1a, exposed as a streaming fold so hot paths can hash a value
   piecewise (fields, digit runs) with the exact result they would get
   from hashing the formatted string — without ever building the string.
   The seeded init and the final mix are what make piecewise use
   non-obvious: chaining two [hash_string] calls is NOT the hash of the
   concatenation, but [fnv_init .. fnv_string/fnv_int* .. fnv_finish]
   is. *)

let fnv_init seed = Int64.logxor seed 0xCBF29CE484222325L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) 0x100000001B3L

let fnv_char h c = fnv_byte h (Char.code c)

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_char !h c) s;
  !h

(* Folds the decimal rendering of [n] — the exact bytes [Printf.sprintf
   "%d" n] would produce, sign included. Digits are peeled with negative
   arithmetic so [min_int] needs no special case. *)
let fnv_int h n =
  if n = 0 then fnv_char h '0'
  else begin
    let h = if n < 0 then fnv_char h '-' else h in
    let rec digits h m =
      (* m < 0; m mod 10 is in [-9, 0] *)
      let h = if m <= -10 then digits h (m / 10) else h in
      fnv_char h (Char.chr (Char.code '0' - (m mod 10)))
    in
    digits h (if n > 0 then -n else n)
  end

let fnv_finish h = mix64 h

(* FNV-1a over the bytes, finished with the mixer; [seed] chains calls. *)
let hash_string seed s = fnv_finish (fnv_string (fnv_init seed) s)

(* --- journal comparison ------------------------------------------------ *)

let compare_journals ~reference ~perturbed =
  let rec go i r p =
    match (r, p) with
    | [], [] -> None
    | [], q :: _ -> Some { index = i; reference = None; perturbed = Some q }
    | t :: _, [] -> Some { index = i; reference = Some t; perturbed = None }
    | t :: r', q :: p' ->
      if t.state_hash = q.state_hash then go (i + 1) r' p'
      else Some { index = i; reference = Some t; perturbed = Some q }
  in
  go 0 reference perturbed

let pp_tick ppf t =
  Format.fprintf ppf "@[<h>tick @%Ldns hash=%016Lx events=[%s]@]" t.time
    t.state_hash
    (String.concat "; "
       (List.map (fun l -> if l = "" then "?" else l) t.labels))

let pp_divergence ppf d =
  let side name = function
    | None -> Format.fprintf ppf "  %s: journal ended@." name
    | Some t -> Format.fprintf ppf "  %s: %a@." name pp_tick t
  in
  Format.fprintf ppf "ordering race at journal entry %d:@." d.index;
  side "reference" d.reference;
  side "perturbed" d.perturbed
