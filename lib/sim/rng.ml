(* SplitMix64 (Steele, Lea & Flood 2014). One 64-bit word of state; each
   output is a strong mix of a Weyl-sequence step, so [split] can derive an
   independent stream by seeding a new generator from the next output. *)

type t = {
  mutable state : int64;
  (* Zipf sampling caches the harmonic normalisation for a given (n, theta)
     because the bench harness draws millions of samples per config. *)
  mutable zipf_cache : (int * float * float) option;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = seed; zipf_cache = None }

(* Stream-position accessors for checkpoint/restore. The zipf cache is
   deliberately not part of the captured state: it memoizes a pure
   function of (n, theta), so a restored generator recomputes it on first
   use with no observable difference. *)
let state t = t.state
let set_state t s = t.state <- s

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t; zipf_cache = None }

let copy t = { state = t.state; zipf_cache = t.zipf_cache }

let int t bound =
  assert (bound > 0);
  (* Rejection-free for practical bounds: take the high bits of the mix,
     reduce modulo bound. Bias is negligible for bound << 2^63. *)
  let r = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let float t =
  (* 53 random bits into the mantissa. *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t in
  (* u = 0. would give infinity; nudge into (0, 1]. *)
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

(* Zipf via the standard inverse-CDF over the generalized harmonic numbers;
   we cache zetan for the active (n, theta). Matches the YCSB generator's
   distribution (without its scrambling). *)
let zetan ~n ~theta =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !acc

let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0. then int t n
  else begin
    let zn =
      match t.zipf_cache with
      | Some (n', theta', z) when n' = n && theta' = theta -> z
      | Some _ | None ->
        let z = zetan ~n ~theta in
        t.zipf_cache <- Some (n, theta, z);
        z
    in
    let u = float t *. zn in
    let rec search i acc =
      if i > n then n - 1
      else
        let acc = acc +. (1. /. Float.pow (float_of_int i) theta) in
        if acc >= u then i - 1 else search (i + 1) acc
    in
    search 1 0.
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
