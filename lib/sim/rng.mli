(** Deterministic pseudo-random numbers for the simulation.

    SplitMix64 generator: fast, well-distributed, and splittable so that
    independent subsystems can derive uncorrelated streams from one seed,
    keeping whole-system runs reproducible. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]. Used to give each device its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val state : t -> int64
(** Current stream position, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Restore a position previously read with {!state}: the generator
    continues with exactly the stream it would have produced. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution. Used for
    inter-arrival times of open workloads. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] samples ranks in [\[0, n)] with Zipfian skew [theta]
    (YCSB-style key popularity). [theta = 0.] degenerates to uniform. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
