(* Deterministic discrete-event engine.

   Sanitize mode (opt-in, off by default) journals the observable state at
   the end of every tick that executed two or more events — exactly the
   ticks where the (time, insertion-order) tie-break matters. Running the
   same workload under a perturbed tie-break (Heap.Lifo / Heap.Salted) and
   comparing journals exposes any event pair whose relative order leaks
   into observable state: a same-tick ordering race. The journal carries
   event labels so a divergence names the colliding events, not just the
   timestamp.

   Hot-path notes. The queue holds bare [unit -> unit] closures — no
   per-event record. Labels are thunks and are forced only in sanitize
   mode, at schedule time, where the event is wrapped so running it
   records its label into the current tick group; with sanitize off a
   scheduled closure goes into the heap untouched and its label thunk is
   never called. [run] with no bounds is a tight step loop with no
   per-event peek allocation. *)

type tie_break = Heap.tie_break = Fifo | Lifo | Salted of int64

(* Journalling state, allocated only when [sanitize] is on. Event groups
   are flushed lazily: a tick is recorded when the first event of a LATER
   time pops (or when the journal is read), because only then do we know
   the group is complete and whether it had >= 2 members. *)
type sani = {
  mutable cur_time : int64;
  mutable cur_labels : string list; (* reversed *)
  mutable cur_count : int;
  mutable ticks : Sanitizer.tick list; (* reversed *)
}

type t = {
  mutable clock : int64;
  queue : (unit -> unit) Heap.t;
  costs : Costs.t;
  trace : Trace.t;
  rng : Rng.t;
  metrics : Metrics.t;
  faults : Faults.t;
  mutable next_span : int;
  mutable executed : int;
  sani : sani option;
  mutable probes : (unit -> int64) list; (* order-insensitive: summed *)
  (* Statics are events whose closures a rebuilt topology recreates
     identically (crash windows, periodic sweeps): the count of pending
     statics defines quiescence — the only points where a whole-machine
     checkpoint can capture the event queue as data. *)
  mutable static_pending : int;
  mutable hooks : (string * (unit -> string) * (string -> unit)) list;
  (* reversed registration order *)
  (* Ownership tag, set by the shard coordinator when this engine becomes
     a shard: every schedule is then a guarded access, so a closure that
     runs on one lane and schedules onto another shard's engine trips the
     ownership sanitizer at the call site (when enabled). [None] for
     uncoupled engines — the common single-run case pays one branch. *)
  mutable owner_cell : Ownership.tracker option;
}

let create ?(seed = 42L) ?(costs = Costs.default) ?trace_capacity ?fault_plan
    ?(tie = Fifo) ?(sanitize = false) ?(queue_hint = 0) () =
  let metrics = Metrics.create () in
  {
    clock = 0L;
    queue = Heap.create ~tie ~hint:queue_hint ();
    costs;
    trace = Trace.create ?capacity:trace_capacity ();
    rng = Rng.create ~seed;
    metrics;
    faults = Faults.create ?plan:fault_plan ~seed metrics;
    next_span = 0;
    executed = 0;
    sani =
      (if sanitize then
         Some { cur_time = -1L; cur_labels = []; cur_count = 0; ticks = [] }
       else None);
    probes = [];
    static_pending = 0;
    hooks = [];
    owner_cell = None;
  }

let bind_shard t ~shard =
  match t.owner_cell with
  | Some cell -> Ownership.rebind cell ~owner:shard
  | None ->
    t.owner_cell <-
      Some (Ownership.tracker ~name:(Printf.sprintf "engine[%d]" shard)
              ~owner:shard)

let shard_owner t = Option.map Ownership.owner t.owner_cell

let now t = t.clock
let costs t = t.costs
let trace t = t.trace
let rng t = t.rng
let fork_rng t = Rng.split t.rng
let metrics t = t.metrics
let faults t = t.faults
let sanitizing t = t.sani <> None
let tracing t = Trace.enabled t.trace

let register_probe t f = t.probes <- f :: t.probes

(* Probe contributions are summed, not hash-chained, so the digest does not
   depend on probe registration order. *)
let state_hash t =
  List.fold_left
    (fun acc f -> Int64.add acc (f ()))
    (Metrics.digest t.metrics) t.probes

let flush_group s hash =
  if s.cur_count >= 2 then
    s.ticks <-
      {
        Sanitizer.time = s.cur_time;
        labels = List.rev s.cur_labels;
        state_hash = hash;
      }
      :: s.ticks

let sanitizer_journal t =
  match t.sani with
  | None -> []
  | Some s ->
    flush_group s (state_hash t);
    s.cur_labels <- [];
    s.cur_count <- 0;
    s.cur_time <- -1L;
    List.rev s.ticks

let schedule_at ?label t ~time f =
  assert (time >= t.clock);
  (match t.owner_cell with
  | Some cell -> Ownership.touch cell
  | None -> ());
  match t.sani with
  | None -> Heap.push t.queue ~priority:time f
  | Some s ->
    (* Sanitize mode: force the label now and wrap the event so running it
       records itself into the current tick group. The tick bookkeeping in
       [step] (flush on time change) happens before the wrapper runs, so
       the journal sequencing is identical to recording in [step]. *)
    let lbl = match label with None -> "" | Some l -> l () in
    Heap.push t.queue ~priority:time (fun () ->
        s.cur_labels <- lbl :: s.cur_labels;
        s.cur_count <- s.cur_count + 1;
        f ())

let schedule ?label t ~delay f =
  assert (delay >= 0L);
  schedule_at ?label t ~time:(Int64.add t.clock delay) f

(* A static event is one a rebuilt topology re-schedules identically from
   declarative inputs (a crash window from the fault plan, a periodic
   sweep): it never needs to be serialized, only counted, so the engine can
   tell "the queue holds only reconstructible work" (quiescent) apart from
   "there are in-flight closures nobody can rebuild". *)
let schedule_static_at ?label t ~time f =
  t.static_pending <- t.static_pending + 1;
  schedule_at ?label t ~time (fun () ->
      t.static_pending <- t.static_pending - 1;
      f ())

let pending t = Heap.length t.queue
let pending_volatile t = Heap.length t.queue - t.static_pending
let events_executed t = t.executed

let next_event_time t =
  if Heap.is_empty t.queue then None else Some (Heap.top_prio t.queue)

let step t =
  if Heap.is_empty t.queue then false
  else begin
    let time = Heap.top_prio t.queue in
    let fn = Heap.pop_top t.queue in
    (match t.sani with
    | None -> ()
    | Some s ->
      if time <> s.cur_time then begin
        (* The previous tick's group is complete: its state is whatever is
           observable now, before this event mutates anything. *)
        flush_group s (state_hash t);
        s.cur_time <- time;
        s.cur_labels <- [];
        s.cur_count <- 0
      end);
    t.clock <- time;
    t.executed <- t.executed + 1;
    fn ();
    true
  end

let run ?until ?max_events t =
  match (until, max_events) with
  | None, None ->
    (* The common whole-run drain: nothing to check per event. *)
    while step t do
      ()
    done
  | _ ->
    let executed = ref 0 in
    let budget_left () =
      match max_events with None -> true | Some m -> !executed < m
    in
    let rec loop () =
      if budget_left () && not (Heap.is_empty t.queue) then begin
        let time = Heap.top_prio t.queue in
        match until with
        | Some stop when time > stop -> t.clock <- stop
        | Some _ | None ->
          ignore (step t);
          incr executed;
          loop ()
      end
    in
    loop ();
    (match until with
    | Some stop when Heap.is_empty t.queue && t.clock < stop -> t.clock <- stop
    | Some _ | None -> ())

(* Drain every volatile event, leaving only statics (if any) in the queue:
   the first point at or past the current time where a checkpoint can be
   taken. Statics whose time arrives during the drain still execute —
   events run strictly in time order regardless of kind. *)
let run_until_quiescent ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some m -> m) in
  while t.static_pending < Heap.length t.queue && !budget > 0 do
    ignore (step t);
    decr budget
  done

let quiescent t = t.static_pending = Heap.length t.queue

(* --- checkpoint/restore ---------------------------------------------------- *)

let register_snapshot t ~name ~save ~restore =
  if List.exists (fun (n, _, _) -> String.equal n name) t.hooks then
    invalid_arg ("Engine.register_snapshot: duplicate hook " ^ name);
  t.hooks <- (name, save, restore) :: t.hooks

let snapshot_hooks t = List.rev t.hooks

let save_sani w s =
  Snapshot.W.i64 w s.cur_time;
  Snapshot.W.varint w s.cur_count;
  (* Raw stored order on both lists (labels reversed, ticks newest-first):
     restore writes them back verbatim, so journal output is unchanged. *)
  Snapshot.W.list w Snapshot.W.string s.cur_labels;
  Snapshot.W.list w
    (fun w (tk : Sanitizer.tick) ->
      Snapshot.W.i64 w tk.time;
      Snapshot.W.list w Snapshot.W.string tk.labels;
      Snapshot.W.i64 w tk.state_hash)
    s.ticks

let restore_sani r s =
  s.cur_time <- Snapshot.R.i64 r;
  s.cur_count <- Snapshot.R.varint r;
  s.cur_labels <- Snapshot.R.list r Snapshot.R.string;
  s.ticks <-
    Snapshot.R.list r (fun r ->
        let time = Snapshot.R.i64 r in
        let labels = Snapshot.R.list r Snapshot.R.string in
        { Sanitizer.time; labels; state_hash = Snapshot.R.i64 r })

(* Capture the engine's own state. The queue must be quiescent: closures
   cannot be serialized, so only the multiset of pending STATIC timestamps
   is written — restore re-derives the closures from a rebuilt topology and
   uses the timestamps to decide which rebuilt statics are still live.
   Draining and re-pushing the heap here is order-preserving: entries
   re-enter in pop order with fresh ascending sequence numbers. *)
let save_state t =
  if not (quiescent t) then
    invalid_arg "Engine.save_state: queue has volatile events";
  let w = Snapshot.W.create () in
  Snapshot.W.i64 w t.clock;
  Snapshot.W.varint w t.executed;
  Snapshot.W.varint w t.next_span;
  Snapshot.W.i64 w (Rng.state t.rng);
  let entries = Heap.to_sorted_list t.queue in
  Snapshot.W.list w (fun w (time, _) -> Snapshot.W.i64 w time) entries;
  List.iter (fun (time, f) -> Heap.push t.queue ~priority:time f) entries;
  Snapshot.W.option w save_sani t.sani;
  Snapshot.W.string w (Metrics.save_state t.metrics);
  Snapshot.W.string w (Faults.save_state t.faults);
  Snapshot.W.contents w

(* Restore over a freshly REBUILT engine: the same deterministic builder
   that produced the checkpointed machine has already re-created every
   subsystem, handle and static event. What remains is to overwrite the
   mutable state and reconcile the queue: keep each rebuilt static whose
   timestamp matches one saved pending time at or past the restored clock
   (consuming multiset matches), drop the rest — those are statics that had
   already fired before the checkpoint (e.g. a crash whose revive is the
   surviving half of the window). *)
let restore_state t s =
  let r = Snapshot.R.of_string s in
  let clock = Snapshot.R.i64 r in
  t.executed <- Snapshot.R.varint r;
  t.next_span <- Snapshot.R.varint r;
  Rng.set_state t.rng (Snapshot.R.i64 r);
  let saved_times = Snapshot.R.list r Snapshot.R.i64 in
  (* [W.option] frames the sani payload with a presence bool. *)
  (match (Snapshot.R.bool r, t.sani) with
  | true, Some s -> restore_sani r s
  | false, None -> ()
  | true, None | false, Some _ ->
    invalid_arg "Engine.restore_state: sanitize mode differs from checkpoint");
  Metrics.restore_state t.metrics (Snapshot.R.string r);
  Faults.restore_state t.faults (Snapshot.R.string r);
  let remaining = Hashtbl.create 16 in
  List.iter
    (fun time ->
      Hashtbl.replace remaining time
        (1 + Option.value (Hashtbl.find_opt remaining time) ~default:0))
    saved_times;
  let entries = Heap.to_sorted_list t.queue in
  let kept =
    List.filter
      (fun (time, _) ->
        time >= clock
        &&
        match Hashtbl.find_opt remaining time with
        | Some n when n > 0 ->
          Hashtbl.replace remaining time (n - 1);
          true
        | _ -> false)
      entries
  in
  t.clock <- clock;
  List.iter (fun (time, f) -> Heap.push t.queue ~priority:time f) kept;
  t.static_pending <- List.length kept

let trace_event t ~actor ~kind detail =
  Trace.append t.trace ~time:t.clock ~actor ~kind detail

(* Spans: framework-timed intervals. [end_span] feeds the duration into the
   registry histogram [actor/<name>_ns], so latency distributions accumulate
   without each experiment hand-rolling its own tally. *)
let fresh_span_id t =
  let id = t.next_span in
  t.next_span <- t.next_span + 1;
  id

let begin_span t ~actor ~name ~id =
  Trace.begin_span t.trace ~time:t.clock ~actor ~name ~id

let end_span t ~actor ~name ~id =
  match Trace.end_span t.trace ~time:t.clock ~actor ~name ~id with
  | None -> ()
  | Some dur ->
    Metrics.observe
      (Metrics.histogram t.metrics ~actor ~name:(name ^ "_ns"))
      (Int64.to_float dur)
