(* Deterministic discrete-event engine.

   Sanitize mode (opt-in, off by default) journals the observable state at
   the end of every tick that executed two or more events — exactly the
   ticks where the (time, insertion-order) tie-break matters. Running the
   same workload under a perturbed tie-break (Heap.Lifo / Heap.Salted) and
   comparing journals exposes any event pair whose relative order leaks
   into observable state: a same-tick ordering race. The journal carries
   event labels so a divergence names the colliding events, not just the
   timestamp.

   Hot-path notes. The queue holds bare [unit -> unit] closures — no
   per-event record. Labels are thunks and are forced only in sanitize
   mode, at schedule time, where the event is wrapped so running it
   records its label into the current tick group; with sanitize off a
   scheduled closure goes into the heap untouched and its label thunk is
   never called. [run] with no bounds is a tight step loop with no
   per-event peek allocation. *)

type tie_break = Heap.tie_break = Fifo | Lifo | Salted of int64

(* Journalling state, allocated only when [sanitize] is on. Event groups
   are flushed lazily: a tick is recorded when the first event of a LATER
   time pops (or when the journal is read), because only then do we know
   the group is complete and whether it had >= 2 members. *)
type sani = {
  mutable cur_time : int64;
  mutable cur_labels : string list; (* reversed *)
  mutable cur_count : int;
  mutable ticks : Sanitizer.tick list; (* reversed *)
}

type t = {
  mutable clock : int64;
  queue : (unit -> unit) Heap.t;
  costs : Costs.t;
  trace : Trace.t;
  rng : Rng.t;
  metrics : Metrics.t;
  faults : Faults.t;
  mutable next_span : int;
  mutable executed : int;
  sani : sani option;
  mutable probes : (unit -> int64) list; (* order-insensitive: summed *)
}

let create ?(seed = 42L) ?(costs = Costs.default) ?trace_capacity ?fault_plan
    ?(tie = Fifo) ?(sanitize = false) ?(queue_hint = 0) () =
  let metrics = Metrics.create () in
  {
    clock = 0L;
    queue = Heap.create ~tie ~hint:queue_hint ();
    costs;
    trace = Trace.create ?capacity:trace_capacity ();
    rng = Rng.create ~seed;
    metrics;
    faults = Faults.create ?plan:fault_plan ~seed metrics;
    next_span = 0;
    executed = 0;
    sani =
      (if sanitize then
         Some { cur_time = -1L; cur_labels = []; cur_count = 0; ticks = [] }
       else None);
    probes = [];
  }

let now t = t.clock
let costs t = t.costs
let trace t = t.trace
let rng t = t.rng
let fork_rng t = Rng.split t.rng
let metrics t = t.metrics
let faults t = t.faults
let sanitizing t = t.sani <> None
let tracing t = Trace.enabled t.trace

let register_probe t f = t.probes <- f :: t.probes

(* Probe contributions are summed, not hash-chained, so the digest does not
   depend on probe registration order. *)
let state_hash t =
  List.fold_left
    (fun acc f -> Int64.add acc (f ()))
    (Metrics.digest t.metrics) t.probes

let flush_group s hash =
  if s.cur_count >= 2 then
    s.ticks <-
      {
        Sanitizer.time = s.cur_time;
        labels = List.rev s.cur_labels;
        state_hash = hash;
      }
      :: s.ticks

let sanitizer_journal t =
  match t.sani with
  | None -> []
  | Some s ->
    flush_group s (state_hash t);
    s.cur_labels <- [];
    s.cur_count <- 0;
    s.cur_time <- -1L;
    List.rev s.ticks

let schedule_at ?label t ~time f =
  assert (time >= t.clock);
  match t.sani with
  | None -> Heap.push t.queue ~priority:time f
  | Some s ->
    (* Sanitize mode: force the label now and wrap the event so running it
       records itself into the current tick group. The tick bookkeeping in
       [step] (flush on time change) happens before the wrapper runs, so
       the journal sequencing is identical to recording in [step]. *)
    let lbl = match label with None -> "" | Some l -> l () in
    Heap.push t.queue ~priority:time (fun () ->
        s.cur_labels <- lbl :: s.cur_labels;
        s.cur_count <- s.cur_count + 1;
        f ())

let schedule ?label t ~delay f =
  assert (delay >= 0L);
  schedule_at ?label t ~time:(Int64.add t.clock delay) f

let pending t = Heap.length t.queue
let events_executed t = t.executed

let next_event_time t =
  if Heap.is_empty t.queue then None else Some (Heap.top_prio t.queue)

let step t =
  if Heap.is_empty t.queue then false
  else begin
    let time = Heap.top_prio t.queue in
    let fn = Heap.pop_top t.queue in
    (match t.sani with
    | None -> ()
    | Some s ->
      if time <> s.cur_time then begin
        (* The previous tick's group is complete: its state is whatever is
           observable now, before this event mutates anything. *)
        flush_group s (state_hash t);
        s.cur_time <- time;
        s.cur_labels <- [];
        s.cur_count <- 0
      end);
    t.clock <- time;
    t.executed <- t.executed + 1;
    fn ();
    true
  end

let run ?until ?max_events t =
  match (until, max_events) with
  | None, None ->
    (* The common whole-run drain: nothing to check per event. *)
    while step t do
      ()
    done
  | _ ->
    let executed = ref 0 in
    let budget_left () =
      match max_events with None -> true | Some m -> !executed < m
    in
    let rec loop () =
      if budget_left () && not (Heap.is_empty t.queue) then begin
        let time = Heap.top_prio t.queue in
        match until with
        | Some stop when time > stop -> t.clock <- stop
        | Some _ | None ->
          ignore (step t);
          incr executed;
          loop ()
      end
    in
    loop ();
    (match until with
    | Some stop when Heap.is_empty t.queue && t.clock < stop -> t.clock <- stop
    | Some _ | None -> ())

let trace_event t ~actor ~kind detail =
  Trace.append t.trace ~time:t.clock ~actor ~kind detail

(* Spans: framework-timed intervals. [end_span] feeds the duration into the
   registry histogram [actor/<name>_ns], so latency distributions accumulate
   without each experiment hand-rolling its own tally. *)
let fresh_span_id t =
  let id = t.next_span in
  t.next_span <- t.next_span + 1;
  id

let begin_span t ~actor ~name ~id =
  Trace.begin_span t.trace ~time:t.clock ~actor ~name ~id

let end_span t ~actor ~name ~id =
  match Trace.end_span t.trace ~time:t.clock ~actor ~name ~id with
  | None -> ()
  | Some dur ->
    Metrics.observe
      (Metrics.histogram t.metrics ~actor ~name:(name ^ "_ns"))
      (Int64.to_float dur)
