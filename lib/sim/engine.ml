type t = {
  mutable clock : int64;
  queue : (unit -> unit) Heap.t;
  costs : Costs.t;
  trace : Trace.t;
  rng : Rng.t;
  metrics : Metrics.t;
  faults : Faults.t;
  mutable next_span : int;
}

let create ?(seed = 42L) ?(costs = Costs.default) ?trace_capacity ?fault_plan
    () =
  let metrics = Metrics.create () in
  {
    clock = 0L;
    queue = Heap.create ();
    costs;
    trace = Trace.create ?capacity:trace_capacity ();
    rng = Rng.create ~seed;
    metrics;
    faults = Faults.create ?plan:fault_plan ~seed metrics;
    next_span = 0;
  }

let now t = t.clock
let costs t = t.costs
let trace t = t.trace
let rng t = t.rng
let fork_rng t = Rng.split t.rng
let metrics t = t.metrics
let faults t = t.faults

let schedule_at t ~time f =
  assert (time >= t.clock);
  Heap.push t.queue ~priority:time f

let schedule t ~delay f =
  assert (delay >= 0L);
  schedule_at t ~time:(Int64.add t.clock delay) f

let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    f ();
    true

let run ?until ?max_events t =
  let executed = ref 0 in
  let budget_left () =
    match max_events with None -> true | Some m -> !executed < m
  in
  let rec loop () =
    if budget_left () then
      match Heap.peek t.queue with
      | None -> ()
      | Some (time, _) ->
        (match until with
        | Some stop when time > stop -> t.clock <- stop
        | Some _ | None ->
          ignore (step t);
          incr executed;
          loop ())
  in
  loop ();
  match until with
  | Some stop when Heap.is_empty t.queue && t.clock < stop -> t.clock <- stop
  | Some _ | None -> ()

let trace_event t ~actor ~kind detail =
  Trace.append t.trace ~time:t.clock ~actor ~kind detail

(* Spans: framework-timed intervals. [end_span] feeds the duration into the
   registry histogram [actor/<name>_ns], so latency distributions accumulate
   without each experiment hand-rolling its own tally. *)
let fresh_span_id t =
  let id = t.next_span in
  t.next_span <- t.next_span + 1;
  id

let begin_span t ~actor ~name ~id =
  Trace.begin_span t.trace ~time:t.clock ~actor ~name ~id

let end_span t ~actor ~name ~id =
  match Trace.end_span t.trace ~time:t.clock ~actor ~name ~id with
  | None -> ()
  | Some dur ->
    Metrics.observe
      (Metrics.histogram t.metrics ~actor ~name:(name ^ "_ns"))
      (Int64.to_float dur)
