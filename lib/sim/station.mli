(** FIFO single-server queueing station.

    Models a serial resource in the emulation: the system management bus's
    message processor, or the baseline's single CPU running the kernel.
    Jobs submitted while the server is busy wait; each job's completion
    callback runs at its virtual finish time. Utilisation and waiting-time
    statistics feed the scalability experiments (T3).

    A station may be bounded with [capacity]: {!try_submit} then rejects
    jobs that would make more than [capacity] outstanding, modelling a
    finite hardware queue (NIC ring, SSD submission queue, PCIe credits)
    instead of queueing forever. The default is unbounded, and an
    unbounded station registers no telemetry — behavior and snapshots are
    identical to builds without the overload layer. *)

type t

val create :
  ?capacity:int -> ?telemetry:Metrics.t * string -> Engine.t -> t
(** [create ?capacity ?telemetry engine]. [capacity] bounds outstanding
    jobs (admitted but not yet completed); omitted = unbounded. When both
    [capacity] and [telemetry:(registry, actor)] are given, the station
    registers an [actor/queue_limit] gauge and an [actor/rejected] counter;
    stations sharing the same [(registry, actor)] share the counter, so
    multi-lane resources export one aggregate.
    @raise Invalid_argument if [capacity <= 0]. *)

val submit : t -> service:int64 -> (unit -> unit) -> unit
(** [submit t ~service k] enqueues a job needing [service] ns; [k] runs at
    completion time. Unconditional: ignores [capacity] (legacy call sites
    must never silently drop work). Capacity-aware callers use
    {!try_submit}. *)

val try_submit :
  t -> service:int64 -> (unit -> unit) -> [ `Accepted | `Rejected ]
(** Like {!submit}, but a bounded station that is full rejects the job:
    [k] is never scheduled, accounting ([busy_ns], [total_wait_ns],
    [jobs_completed]) is untouched, and the rejection is counted. An
    unbounded station always accepts. *)

val queue_length : t -> int
(** Jobs submitted but not yet completed (including the one in service). *)

val capacity : t -> int option
val jobs_completed : t -> int
val jobs_rejected : t -> int
(** Jobs turned away by {!try_submit} on a full station. *)

val busy_ns : t -> int64
(** Total service time accumulated. *)

val total_wait_ns : t -> int64
(** Sum over jobs of (start - submit): pure queueing delay. *)

val drain_ns : t -> now:int64 -> int64
(** Virtual time until the server goes idle if nothing else arrives: the
    deterministic retry-after hint for rejected work. 0 when idle. *)

val utilization : t -> now:int64 -> float
(** [busy_ns / now]; 0 when [now = 0]. *)

val save : Snapshot.W.t -> t -> unit
(** Append the station's accounting (busy horizon, completion/rejection
    counts, busy/wait totals) to a checkpoint. In-flight completion
    callbacks live in the engine queue and are not captured — checkpoint
    only a drained station. *)

val restore : Snapshot.R.t -> t -> unit
(** Overwrite the accounting with state written by {!save}. *)
