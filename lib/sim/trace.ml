type entry = { time : int64; actor : string; kind : string; detail : string }

type t = {
  mutable entries : entry list;  (* newest first *)
  mutable length : int;
  capacity : int option;
  enabled : bool;  (* capacity Some 0 = tracing off: appends are no-ops *)
  open_spans : (string, int64) Hashtbl.t; (* "name#id" -> begin time *)
}

let create ?capacity () =
  {
    entries = [];
    length = 0;
    capacity;
    enabled = capacity <> Some 0;
    open_spans = Hashtbl.create 16;
  }

let enabled t = t.enabled

let append t ~time ~actor ~kind detail =
  if t.enabled then begin
    t.entries <- { time; actor; kind; detail } :: t.entries;
    t.length <- t.length + 1;
    match t.capacity with
    | Some cap when t.length > cap ->
      (* Dropping the oldest entry of a singly-linked list is O(n); traces
         with a capacity are small (ring-buffer-like use), so this is fine. *)
      let rec keep n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: keep (n - 1) rest
      in
      t.entries <- keep cap t.entries;
      t.length <- cap
    | Some _ | None -> ()
  end

let length t = t.length
let entries t = List.rev t.entries
let find_all t ~kind = List.filter (fun e -> e.kind = kind) (entries t)

(* Spans: paired begin/end entries correlated by "name#id". Begin times are
   kept in a side table (not recovered from entries) so capacity-trimmed
   traces still time long-lived spans correctly. *)
let span_begin_kind = "span.begin"
let span_end_kind = "span.end"
let span_key ~name ~id = name ^ "#" ^ string_of_int id

let begin_span t ~time ~actor ~name ~id =
  let key = span_key ~name ~id in
  Hashtbl.replace t.open_spans key time;
  append t ~time ~actor ~kind:span_begin_kind key

let end_span t ~time ~actor ~name ~id =
  let key = span_key ~name ~id in
  match Hashtbl.find_opt t.open_spans key with
  | None -> None (* unknown or already ended: not an error, just no sample *)
  | Some start ->
    Hashtbl.remove t.open_spans key;
    append t ~time ~actor ~kind:span_end_kind key;
    Some (Int64.sub time start)

let open_span_count t = Hashtbl.length t.open_spans

let clear t =
  t.entries <- [];
  t.length <- 0;
  Hashtbl.reset t.open_spans

let pp_entry ppf e =
  Format.fprintf ppf "[%8Ld ns] %-14s %-22s %s" e.time e.actor e.kind e.detail

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_lines t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"time_ns\":%Ld,\"actor\":\"%s\",\"kind\":\"%s\",\"detail\":\"%s\"}\n"
           e.time (json_escape e.actor) (json_escape e.kind)
           (json_escape e.detail)))
    (entries t);
  Buffer.contents buf
