module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Device = Lastcpu_device.Device
module Engine = Lastcpu_sim.Engine
module Metrics = Lastcpu_sim.Metrics
module Netsim = Lastcpu_net.Netsim

type t = {
  dev : Device.t;
  endpoint : Netsim.endpoint;
  mutable rx_handler : (src:int -> string -> unit) option;
  m_rx : Metrics.counter;
  m_tx : Metrics.counter;
}

let create sysbus ~mem ~net ~name ?(auto_start = true) () =
  let dev = Device.create sysbus ~mem ~name () in
  let m = Engine.metrics (Device.engine dev) in
  let actor = Device.actor dev in
  let endpoint = Netsim.endpoint net ~name in
  let t =
    {
      dev;
      endpoint;
      rx_handler = None;
      m_rx = Metrics.counter m ~actor ~name:"rx_packets";
      m_tx = Metrics.counter m ~actor ~name:"tx_packets";
    }
  in
  Netsim.set_receiver endpoint (fun ~src frame ->
      Metrics.incr t.m_rx;
      match t.rx_handler with None -> () | Some f -> f ~src frame);
  Device.add_service dev
    {
      desc = { Message.kind = Types.Socket_service; name = name ^ ".sock"; version = 1 };
      can_serve = (fun ~query:_ -> true);
      on_open =
        (fun ~client:_ ~pasid:_ ~auth:_ ~params:_ ->
          Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 0L });
      on_close = (fun ~connection:_ -> ());
    };
  if auto_start then Device.start dev;
  t

let device t = t.dev
let id t = Device.id t.dev
let endpoint_address t = Netsim.address t.endpoint
let on_packet t f = t.rx_handler <- Some f

let send_packet t ~dst frame =
  Metrics.incr t.m_tx;
  Netsim.send t.endpoint ~dst frame

let packets_received t = Metrics.counter_value t.m_rx
let packets_sent t = Metrics.counter_value t.m_tx
