(** The memory controller device.

    The paper's discrete memory controller (§2.4, "similar to Intel's
    Memory Controller Hub"): it owns physical-memory allocation *policy* —
    per-application allocation tables over a buddy allocator — while the
    bus owns the *mechanism* of installing mappings.

    Protocol (Fig. 2 steps 5-6): on [Alloc_request] it allocates frames,
    mints a capability token over the physical range, instructs the bus
    with a [Map_directive] to program the requester's IOMMU, and only then
    answers [Alloc_response] carrying the token (so the requester can later
    [Grant_request] the region onward — step 7). *)

type t

val create :
  Lastcpu_bus.Sysbus.t ->
  mem:Lastcpu_mem.Physmem.t ->
  ?name:string ->
  ?dram_base:int64 ->
  ?dram_pages:int ->
  ?quota_pages:int ->
  unit ->
  t
(** Attaches the device, registers it as the controller of resource "dram"
    and starts it. Default pool: 65536 pages (256 MiB) at 0x1000_0000.
    [quota_pages] caps any single address space's allocation (resource
    management policy lives here, on the controller — §2.2); default
    unlimited. *)

val quota_pages : t -> int option
val pages_of : t -> pasid:int -> int
(** Pages currently charged to an address space. *)

val device : t -> Lastcpu_device.Device.t
val id : t -> Lastcpu_proto.Types.device_id

val free_pages : t -> int
val used_pages : t -> int

val allocations_of : t -> pasid:int -> (int64 * int64) list
(** [(va, bytes)] currently held by an address space. *)

val release_pasid : t -> pasid:int -> unit
(** Application teardown: free every allocation of the address space and
    instruct the bus to unmap them everywhere it mapped them. *)

val revoke_subject : t -> subject:Lastcpu_proto.Types.device_id -> unit
(** Revocation cascade: free every allocation the device holds as token
    subject (any address space) and unmap it everywhere. Registered with
    {!Lastcpu_bus.Sysbus.on_revoke} at create, so a bus-level revocation
    or quarantine tears the controller's grants down automatically. *)
