(** Client library for the smart SSD's file service.

    [connect] performs the paper's entire Figure-2 initialization sequence
    on behalf of an application running on some device (typically the smart
    NIC):

    + broadcast-discover which storage service owns the file;
    + open the service (with the user identity / session token);
    + allocate shared memory from the memory controller at a chosen
      virtual address — the bus programs this device's IOMMU;
    + grant the provider access to the shared region (bus re-programs the
      provider's IOMMU for the same virtual addresses);
    + build a VIRTIO queue in the shared region and attach it to the
      provider;

    after which file operations are pure data-plane: request buffers in
    shared memory, descriptor chains, doorbells — no bus messages at all.

    All calls are asynchronous (continuation style); continuations run at
    the virtual time the response is available. *)

module Types = Lastcpu_proto.Types
module Token = Lastcpu_proto.Token

type t

val connect :
  Lastcpu_device.Device.t ->
  memctl:Types.device_id ->
  pasid:int ->
  shm_va:int64 ->
  user:string ->
  path_hint:string ->
  ?auth:Token.t ->
  ?queue_size:int ->
  ?req_timeout:int64 ->
  ?req_retries:int ->
  ((t, string) result -> unit) ->
  unit
(** [queue_size] defaults to 64 descriptors (32 in-flight request slots).
    [req_timeout]/[req_retries] arm each control-plane request of the
    sequence (open, alloc, grant, vq-attach) with a timeout and bounded
    retransmits — used when connecting under fault injection. Default: no
    timeout, as before. *)

val provider : t -> Types.device_id
val connection : t -> int
val grant_token : t -> Token.t
(** The DRAM capability covering the shared region (issued at step 5). *)

val request : t -> Ssd_proto.request -> (Ssd_proto.response -> unit) -> unit
(** Queue a raw file operation; queues internally when all slots are in
    flight. *)

(** Convenience wrappers; [Error] carries the provider's message. *)

val create : t -> ?mode:int -> string -> ((unit, string) result -> unit) -> unit
val mkdir : t -> ?mode:int -> string -> ((unit, string) result -> unit) -> unit
val unlink : t -> string -> ((unit, string) result -> unit) -> unit
val read :
  t -> string -> off:int -> len:int -> ((string, string) result -> unit) -> unit
val write :
  t -> string -> off:int -> string -> ((unit, string) result -> unit) -> unit
val stat :
  t -> string -> ((int * bool, string) result -> unit) -> unit
(** [(size, is_directory)]. *)

val rename : t -> string -> string -> ((unit, string) result -> unit) -> unit
(** Atomic replace of the target when it is a regular file. *)

(** Block-service wrappers (handle-based virtual block devices; handles are
    scoped to this connection): *)

val bopen :
  t -> ?block_size:int -> string -> ((int, string) result -> unit) -> unit
(** Open (creating if needed) a backing file as a block device; default
    block size 512. *)

val bread :
  t -> handle:int -> lba:int -> count:int -> ((string, string) result -> unit) -> unit

val bwrite :
  t -> handle:int -> lba:int -> string -> ((unit, string) result -> unit) -> unit

val bclose : t -> handle:int -> ((unit, string) result -> unit) -> unit

val abort_in_flight : t -> string -> unit
(** Fail every queued and in-flight request with [Err reason] and clear
    them. Called by a supervisor when the provider dies: the used ring
    will never advance, so stranded continuations must be completed
    before failing over. *)

val close : t -> (unit -> unit) -> unit
(** Detach the queue, close the connection and free the shared memory. *)

val in_flight : t -> int
val requests_completed : t -> int

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append the virtqueue driver state, free request-slot pool (in reuse
    order) and completion counter (checkpointing). Must be called at a
    quiescent point — in-flight requests hold continuations a snapshot
    cannot carry. *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Overwrite a freshly connected client with {!save}d state. Ring memory
    itself returns with the DRAM image; this only rebuilds the driver-local
    view over it.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
