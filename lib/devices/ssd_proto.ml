module Wire = Lastcpu_proto.Wire
module Slice = Lastcpu_proto.Slice

type request =
  | Create of { path : string; mode : int }
  | Unlink of { path : string }
  | Mkdir of { path : string; mode : int }
  | Read of { path : string; off : int; len : int }
  | Write of { path : string; off : int; data : string }
  | Stat of { path : string }
  | Readdir of { path : string }
  | Truncate of { path : string; len : int }
  | Fsync of { path : string }
  | Rename of { from_path : string; to_path : string }
  | Bopen of { path : string; block_size : int }
  | Bread of { handle : int; lba : int; count : int }
  | Bwrite of { handle : int; lba : int; data : string }
  | Bclose of { handle : int }

type response =
  | Ok_unit
  | Ok_data of string
  | Ok_names of string list
  | Ok_stat of { size : int; kind_dir : bool; owner : string; mode : int }
  | Ok_handle of int
  | Err of string

(* One byte layout, driven through whatever sink the call site needs: a
   growable buffer (string codecs), a slice cursor (encoding straight
   into a mapped virtqueue slot) or a byte counter (sizing the direct
   mapping before any bytes move). *)
module Emit (W : Wire.SINK) = struct
  let request w r =
    match r with
    | Create { path; mode } ->
      W.byte w 0;
      W.string w path;
      W.varint w mode
    | Unlink { path } ->
      W.byte w 1;
      W.string w path
    | Mkdir { path; mode } ->
      W.byte w 2;
      W.string w path;
      W.varint w mode
    | Read { path; off; len } ->
      W.byte w 3;
      W.string w path;
      W.varint w off;
      W.varint w len
    | Write { path; off; data } ->
      W.byte w 4;
      W.string w path;
      W.varint w off;
      W.string w data
    | Stat { path } ->
      W.byte w 5;
      W.string w path
    | Readdir { path } ->
      W.byte w 6;
      W.string w path
    | Truncate { path; len } ->
      W.byte w 7;
      W.string w path;
      W.varint w len
    | Fsync { path } ->
      W.byte w 8;
      W.string w path
    | Bopen { path; block_size } ->
      W.byte w 9;
      W.string w path;
      W.varint w block_size
    | Bread { handle; lba; count } ->
      W.byte w 10;
      W.varint w handle;
      W.varint w lba;
      W.varint w count
    | Bwrite { handle; lba; data } ->
      W.byte w 11;
      W.varint w handle;
      W.varint w lba;
      W.string w data
    | Bclose { handle } ->
      W.byte w 12;
      W.varint w handle
    | Rename { from_path; to_path } ->
      W.byte w 13;
      W.string w from_path;
      W.string w to_path

  let response w resp =
    match resp with
    | Ok_unit -> W.byte w 0
    | Ok_data d ->
      W.byte w 1;
      W.string w d
    | Ok_names names ->
      W.byte w 2;
      W.list w W.string names
    | Ok_stat { size; kind_dir; owner; mode } ->
      W.byte w 3;
      W.varint w size;
      W.bool w kind_dir;
      W.string w owner;
      W.varint w mode
    | Ok_handle h ->
      W.byte w 5;
      W.varint w h
    | Err m ->
      W.byte w 4;
      W.string w m
end

module Emit_buf = Emit (Wire.Writer)
module Emit_view = Emit (Wire.View_writer)
module Emit_size = Emit (Wire.Sizer)

let encode_request r =
  let w = Wire.Writer.create () in
  Emit_buf.request w r;
  Wire.Writer.contents w

let request_size r =
  let w = Wire.Sizer.create () in
  Emit_size.request w r;
  Wire.Sizer.size w

let encode_request_into r view ~pos =
  let w = Wire.View_writer.create ~pos view in
  Emit_view.request w r;
  Wire.View_writer.pos w - pos

let encode_response resp =
  let w = Wire.Writer.create () in
  Emit_buf.response w resp;
  Wire.Writer.contents w

let response_size resp =
  let w = Wire.Sizer.create () in
  Emit_size.response w resp;
  Wire.Sizer.size w

let encode_response_into resp view ~pos =
  let w = Wire.View_writer.create ~pos view in
  Emit_view.response w resp;
  Wire.View_writer.pos w - pos

(* The matching single-source decoders: a string cursor for the copying
   path, a slice cursor to parse straight out of mapped DRAM. *)
module Parse (R : Wire.SOURCE) = struct
  let request r =
    match R.byte r with
    | 0 ->
      let path = R.string r in
      let mode = R.varint r in
      Create { path; mode }
    | 1 -> Unlink { path = R.string r }
    | 2 ->
      let path = R.string r in
      let mode = R.varint r in
      Mkdir { path; mode }
    | 3 ->
      let path = R.string r in
      let off = R.varint r in
      let len = R.varint r in
      Read { path; off; len }
    | 4 ->
      let path = R.string r in
      let off = R.varint r in
      let data = R.string r in
      Write { path; off; data }
    | 5 -> Stat { path = R.string r }
    | 6 -> Readdir { path = R.string r }
    | 7 ->
      let path = R.string r in
      let len = R.varint r in
      Truncate { path; len }
    | 8 -> Fsync { path = R.string r }
    | 9 ->
      let path = R.string r in
      let block_size = R.varint r in
      Bopen { path; block_size }
    | 10 ->
      let handle = R.varint r in
      let lba = R.varint r in
      let count = R.varint r in
      Bread { handle; lba; count }
    | 11 ->
      let handle = R.varint r in
      let lba = R.varint r in
      let data = R.string r in
      Bwrite { handle; lba; data }
    | 12 -> Bclose { handle = R.varint r }
    | 13 ->
      let from_path = R.string r in
      let to_path = R.string r in
      Rename { from_path; to_path }
    | n -> raise (Wire.Malformed (Printf.sprintf "bad request tag %d" n))

  let response r =
    match R.byte r with
    | 0 -> Ok_unit
    | 1 -> Ok_data (R.string r)
    | 2 -> Ok_names (R.list r R.string)
    | 3 ->
      let size = R.varint r in
      let kind_dir = R.bool r in
      let owner = R.string r in
      let mode = R.varint r in
      Ok_stat { size; kind_dir; owner; mode }
    | 4 -> Err (R.string r)
    | 5 -> Ok_handle (R.varint r)
    | n -> raise (Wire.Malformed (Printf.sprintf "bad response tag %d" n))
end

module Parse_str = Parse (Wire.Reader)
module Parse_view = Parse (Wire.View_reader)

let decode_request s =
  match Parse_str.request (Wire.Reader.create s) with
  | r -> Ok r
  | exception Wire.Malformed m -> Error m

let decode_request_view ?pos ?len v =
  match Parse_view.request (Wire.View_reader.create ?pos ?len v) with
  | r -> Ok r
  | exception Wire.Malformed m -> Error m

let decode_response s =
  match Parse_str.response (Wire.Reader.create s) with
  | r -> Ok r
  | exception Wire.Malformed m -> Error m

let decode_response_view ?pos ?len v =
  match Parse_view.response (Wire.View_reader.create ?pos ?len v) with
  | r -> Ok r
  | exception Wire.Malformed m -> Error m

let request_path = function
  | Create { path; _ }
  | Unlink { path }
  | Mkdir { path; _ }
  | Read { path; _ }
  | Write { path; _ }
  | Stat { path }
  | Readdir { path }
  | Truncate { path; _ }
  | Fsync { path } ->
    path
  | Bopen { path; _ } -> path
  | Rename { from_path; _ } -> from_path
  | Bread _ | Bwrite _ | Bclose _ -> "<handle>"
