module Types = Lastcpu_proto.Types
module Device = Lastcpu_device.Device
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Sysbus = Lastcpu_bus.Sysbus
module Engine = Lastcpu_sim.Engine
module Buddy = Lastcpu_mem.Buddy
module Layout = Lastcpu_mem.Layout
module Rng = Lastcpu_sim.Rng

type allocation = {
  va : int64;
  pa : int64;
  bytes : int64;
  pages : int;
  subject : Types.device_id;
}

type t = {
  dev : Device.t;
  mem : Lastcpu_mem.Physmem.t;
  buddy : Buddy.t;
  key : Token.key;
  rng : Rng.t;
  quota : int option;  (* max pages per pasid *)
  charged : (int, int) Hashtbl.t;  (* pasid -> pages in use *)
  (* Per-application allocation tables (the paper's mComponent-style
     internal state, §2.2 Memory management). *)
  allocations : (int * int64, allocation) Hashtbl.t;  (* (pasid, va) -> alloc *)
  by_pasid : (int, int64 list ref) Hashtbl.t;
  (* Allocations whose map round trip is still in flight: a duplicated
     Alloc_request (fault injection, or a retransmit racing its original)
     must not grab a second buddy block for the same (pasid, va). *)
  inflight : (int * int64, unit) Hashtbl.t;
}

let default_dram_base = 0x1000_0000L
let default_dram_pages = 65536

(* Checkpointing. The token [key] is deliberately excluded: it is drawn
   from the engine's root RNG during the deterministic rebuild, which
   re-derives the identical key before the engine's RNG position is then
   restored. The nonce stream [rng] is a forked stream whose position only
   advances with mints, so it must be saved. *)
module Snapshot = Lastcpu_sim.Snapshot
module Detmap = Lastcpu_sim.Detmap

let save_state t =
  let w = Snapshot.W.create () in
  Buddy.save w t.buddy;
  Snapshot.W.i64 w (Rng.state t.rng);
  Snapshot.W.list w
    (fun w (pasid, pages) ->
      Snapshot.W.vint w pasid;
      Snapshot.W.varint w pages)
    (Detmap.bindings t.charged);
  Snapshot.W.list w
    (fun w ((pasid, va), (a : allocation)) ->
      Snapshot.W.vint w pasid;
      Snapshot.W.i64 w va;
      Snapshot.W.i64 w a.pa;
      Snapshot.W.i64 w a.bytes;
      Snapshot.W.varint w a.pages;
      Snapshot.W.vint w a.subject)
    (Detmap.bindings t.allocations);
  (* [by_pasid] lists are ordered (most recent first); saved verbatim, not
     re-derived, so [allocations_of] enumerates identically after resume. *)
  Snapshot.W.list w
    (fun w (pasid, l) ->
      Snapshot.W.vint w pasid;
      Snapshot.W.list w (fun w va -> Snapshot.W.i64 w va) !l)
    (Detmap.bindings t.by_pasid);
  Snapshot.W.list w
    (fun w (pasid, va) ->
      Snapshot.W.vint w pasid;
      Snapshot.W.i64 w va)
    (List.map fst (Detmap.bindings t.inflight));
  Snapshot.W.contents w

let restore_state t body =
  let r = Snapshot.R.of_string body in
  Buddy.restore r t.buddy;
  Rng.set_state t.rng (Snapshot.R.i64 r);
  Hashtbl.reset t.charged;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let pasid = Snapshot.R.vint r in
    let pages = Snapshot.R.varint r in
    Hashtbl.replace t.charged pasid pages
  done;
  Hashtbl.reset t.allocations;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let pasid = Snapshot.R.vint r in
    let va = Snapshot.R.i64 r in
    let pa = Snapshot.R.i64 r in
    let bytes = Snapshot.R.i64 r in
    let pages = Snapshot.R.varint r in
    let subject = Snapshot.R.vint r in
    Hashtbl.replace t.allocations (pasid, va) { va; pa; bytes; pages; subject }
  done;
  Hashtbl.reset t.by_pasid;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let pasid = Snapshot.R.vint r in
    let l = Snapshot.R.list r Snapshot.R.i64 in
    Hashtbl.replace t.by_pasid pasid (ref l)
  done;
  Hashtbl.reset t.inflight;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let pasid = Snapshot.R.vint r in
    let va = Snapshot.R.i64 r in
    Hashtbl.replace t.inflight (pasid, va) ()
  done

(* Tokens carry the subject's current capability epoch (0 until a
   revocation ever happens, so pre-containment nonce streams and MACs are
   unchanged). The bus rejects any token minted under an older epoch. *)
let mint t ~subject ~pasid ~pa ~bytes ~perm =
  Token.mint
    ~epoch:(Sysbus.current_epoch (Device.bus t.dev) subject)
    ~key:t.key ~issuer:(Device.id t.dev) ~subject ~pasid ~resource:"dram"
    ~base:pa ~length:bytes ~perm ~nonce:(Rng.int64 t.rng) ()

let record t ~pasid alloc =
  Hashtbl.replace t.allocations (pasid, alloc.va) alloc;
  let l =
    match Hashtbl.find_opt t.by_pasid pasid with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.by_pasid pasid l;
      l
  in
  l := alloc.va :: !l

let pages_of t ~pasid = Option.value (Hashtbl.find_opt t.charged pasid) ~default:0
let quota_pages t = t.quota

let charge t ~pasid pages =
  Hashtbl.replace t.charged pasid (pages_of t ~pasid + pages)

let refund t ~pasid pages =
  let left = max 0 (pages_of t ~pasid - pages) in
  if left = 0 then Hashtbl.remove t.charged pasid
  else Hashtbl.replace t.charged pasid left

let within_quota t ~pasid pages =
  match t.quota with
  | None -> true
  | Some q -> pages_of t ~pasid + pages <= q

let forget t ~pasid ~va =
  Hashtbl.remove t.allocations (pasid, va);
  match Hashtbl.find_opt t.by_pasid pasid with
  | None -> ()
  | Some l -> l := List.filter (fun v -> not (Int64.equal v va)) !l

let handle_alloc t ~src ~corr ~pasid ~va ~bytes ~perm =
  let respond payload = Device.reply t.dev ~to_:src ~corr payload in
  let fail code =
    respond
      (Message.Alloc_response
         { ok = false; va; bytes; grant = None; error = Some code })
  in
  if bytes <= 0L || not (Layout.is_page_aligned va) then fail Types.E_bad_address
  else if
    Hashtbl.mem t.allocations (pasid, va) || Hashtbl.mem t.inflight (pasid, va)
  then fail Types.E_exists
  else if not (within_quota t ~pasid (Layout.pages_of_bytes bytes)) then
    fail Types.E_no_memory
  else begin
    let pages = Layout.pages_of_bytes bytes in
    match Buddy.alloc t.buddy ~pages with
    | None -> fail Types.E_no_memory
    | Some pa ->
      Hashtbl.replace t.inflight (pasid, va) ();
      let rounded = Layout.align_up bytes in
      let token = mint t ~subject:src ~pasid ~pa ~bytes:rounded ~perm in
      (* Instruct the bus to program the requester's IOMMU (step 6), then
         hand the capability back (the response is only sent once the
         mapping is in place). *)
      Device.request t.dev ~dst:Types.Bus
        (Message.Map_directive
           { device = src; pasid; va; pa; bytes = rounded; perm; auth = token })
        (fun payload ->
          Hashtbl.remove t.inflight (pasid, va);
          match payload with
          | Message.Map_complete { ok = true; _ } ->
            record t ~pasid { va; pa; bytes = rounded; pages; subject = src };
            charge t ~pasid pages;
            respond
              (Message.Alloc_response
                 { ok = true; va; bytes = rounded; grant = Some token; error = None })
          | Message.Map_complete { ok = false; _ } | Message.Error_msg _ | _ ->
            Buddy.free t.buddy ~addr:pa ~pages;
            fail Types.E_bad_address)
  end

(* Frames returning to the buddy pool are scrubbed first: the next owner
   of those frames must never see the previous tenant's bytes. Costs no
   virtual time and touches no metric, so digests are unaffected. *)
let scrub t (alloc : allocation) =
  Lastcpu_mem.Physmem.fill t.mem alloc.pa (Int64.to_int alloc.bytes) '\000'

let handle_free t ~src ~corr ~pasid ~va =
  let respond payload = Device.reply t.dev ~to_:src ~corr payload in
  match Hashtbl.find_opt t.allocations (pasid, va) with
  | None ->
    respond
      (Message.Alloc_response
         { ok = false; va; bytes = 0L; grant = None; error = Some Types.E_not_found })
  | Some alloc when src <> alloc.subject ->
    (* Only the device that holds the capability (the token subject) may
       free the region — otherwise any peer able to guess a (pasid, va)
       pair could tear down another tenant's memory. *)
    respond
      (Message.Alloc_response
         {
           ok = false;
           va;
           bytes = 0L;
           grant = None;
           error = Some Types.E_access_denied;
         })
  | Some alloc ->
    (* Claim the allocation before the (asynchronous) unmap round trip: a
       duplicated Free_request — fault injection, or a retransmit racing
       its original — must find nothing here rather than double-free the
       buddy block. *)
    forget t ~pasid ~va;
    let token =
      mint t ~subject:alloc.subject ~pasid ~pa:alloc.pa ~bytes:alloc.bytes
        ~perm:Types.perm_rwx
    in
    Device.request t.dev ~dst:Types.Bus
      (Message.Unmap_directive
         { device = alloc.subject; pasid; va; bytes = alloc.bytes; auth = token })
      (fun _payload ->
        scrub t alloc;
        Buddy.free t.buddy ~addr:alloc.pa ~pages:alloc.pages;
        refund t ~pasid alloc.pages;
        respond
          (Message.Alloc_response
             { ok = true; va; bytes = alloc.bytes; grant = None; error = None }))

(* Revocation cascade (called from the bus's revoke hook): tear down every
   allocation the revoked device holds as subject, across all address
   spaces. Runs after the epoch bump, so the unmap directives minted here
   carry the new epoch and verify; the device's now-stale grant tokens
   cannot free, grant or remap anything. *)
let revoke_subject t ~subject =
  List.iter
    (fun ((pasid, va), (alloc : allocation)) ->
      if alloc.subject = subject then begin
        forget t ~pasid ~va;
        let token =
          mint t ~subject:alloc.subject ~pasid ~pa:alloc.pa ~bytes:alloc.bytes
            ~perm:Types.perm_rwx
        in
        Device.request t.dev ~dst:Types.Bus
          (Message.Unmap_directive
             {
               device = alloc.subject;
               pasid;
               va = alloc.va;
               bytes = alloc.bytes;
               auth = token;
             })
          (fun _ -> ());
        scrub t alloc;
        Buddy.free t.buddy ~addr:alloc.pa ~pages:alloc.pages;
        refund t ~pasid alloc.pages
      end)
    (Detmap.bindings t.allocations)

let create sysbus ~mem ?(name = "memctl") ?(dram_base = default_dram_base)
    ?(dram_pages = default_dram_pages) ?quota_pages () =
  let dev = Device.create sysbus ~mem ~name () in
  let engine = Sysbus.engine sysbus in
  let t =
    {
      dev;
      mem;
      buddy = Buddy.create ~base:dram_base ~pages:dram_pages;
      key = Rng.int64 (Engine.rng engine);
      rng = Engine.fork_rng engine;
      quota = quota_pages;
      charged = Hashtbl.create 16;
      allocations = Hashtbl.create 64;
      by_pasid = Hashtbl.create 16;
      inflight = Hashtbl.create 8;
    }
  in
  Device.add_service dev
    {
      desc =
        { Message.kind = Types.Memory_service; name = name ^ ".dram"; version = 1 };
      can_serve = (fun ~query -> String.equal query "" || String.equal query "dram");
      on_open =
        (fun ~client:_ ~pasid:_ ~auth:_ ~params:_ ->
          (* Memory is consumed via Alloc_request messages, not an open
             connection; accept opens trivially for discovery symmetry. *)
          Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 0L });
      on_close = (fun ~connection:_ -> ());
    };
  Device.set_app_handler dev (fun msg ->
      match msg.Message.payload with
      | Message.Alloc_request { pasid; va; bytes; perm } ->
        handle_alloc t ~src:msg.Message.src ~corr:msg.Message.corr ~pasid ~va
          ~bytes ~perm
      | Message.Free_request { pasid; va; bytes = _ } ->
        handle_free t ~src:msg.Message.src ~corr:msg.Message.corr ~pasid ~va
      | _ -> ());
  Sysbus.register_controller sysbus (Device.id dev) ~resource:"dram" ~key:t.key;
  Sysbus.on_revoke sysbus (fun ~device -> revoke_subject t ~subject:device);
  Engine.register_snapshot engine ~name:(Device.actor dev)
    ~save:(fun () -> save_state t)
    ~restore:(restore_state t);
  Device.start dev;
  t

let device t = t.dev
let id t = Device.id t.dev
let free_pages t = Buddy.free_pages t.buddy
let used_pages t = Buddy.used_pages t.buddy

let allocations_of t ~pasid =
  match Hashtbl.find_opt t.by_pasid pasid with
  | None -> []
  | Some l ->
    List.filter_map
      (fun va ->
        Option.map
          (fun a -> (a.va, a.bytes))
          (Hashtbl.find_opt t.allocations (pasid, va)))
      !l

let release_pasid t ~pasid =
  match Hashtbl.find_opt t.by_pasid pasid with
  | None -> ()
  | Some l ->
    List.iter
      (fun va ->
        match Hashtbl.find_opt t.allocations (pasid, va) with
        | None -> ()
        | Some alloc ->
          let token =
            mint t ~subject:alloc.subject ~pasid ~pa:alloc.pa ~bytes:alloc.bytes
              ~perm:Types.perm_rwx
          in
          Device.request t.dev ~dst:Types.Bus
            (Message.Unmap_directive
               {
                 device = alloc.subject;
                 pasid;
                 va = alloc.va;
                 bytes = alloc.bytes;
                 auth = token;
               })
            (fun _ -> ());
          scrub t alloc;
          Buddy.free t.buddy ~addr:alloc.pa ~pages:alloc.pages;
          refund t ~pasid alloc.pages;
          Hashtbl.remove t.allocations (pasid, va))
      !l;
    Hashtbl.remove t.by_pasid pasid
