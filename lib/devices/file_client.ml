module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Device = Lastcpu_device.Device
module Vq = Lastcpu_virtio.Virtqueue
module Dma = Lastcpu_virtio.Dma

let shm_bytes = 65536L
let slot_bytes = 2048 (* request area and response area each *)

type slot = { req_va : int64; resp_va : int64 }

type t = {
  dev : Device.t;
  provider_id : Types.device_id;
  conn : int;
  pasid : int;
  memctl : Types.device_id;
  queue_id : int;
  mutable driver : Vq.Driver.t;
  dma : Dma.t;
  shm_va : int64;
  token : Token.t;
  mutable free_slots : slot list;
  by_head : (int, slot * (Ssd_proto.response -> unit)) Hashtbl.t;
  waiting : (Ssd_proto.request * (Ssd_proto.response -> unit)) Queue.t;
  mutable completed : int;
}

let provider t = t.provider_id
let connection t = t.conn
let grant_token t = t.token
let in_flight t = Hashtbl.length t.by_head
let requests_completed t = t.completed

(* Submission --------------------------------------------------------------- *)

module Iommu = Lastcpu_iommu.Iommu

let submit t req k slot =
  (* Size first, then encode straight into the granted slot view: the
     request bytes are written to DRAM exactly once. Slots are carved
     inside single pages, so [map_single] costs the same one translation
     the copying path would; the fallback covers any exotic geometry. *)
  let size = Ssd_proto.request_size req in
  if size > slot_bytes then k (Ssd_proto.Err "request too large for slot")
  else begin
    (match Dma.map_single t.dma ~va:slot.req_va ~len:size ~perm:Iommu.Write with
    | Some v -> ignore (Ssd_proto.encode_request_into req v ~pos:0)
    | None -> Dma.write_bytes t.dma slot.req_va (Ssd_proto.encode_request req));
    let chain =
      [
        { Vq.va = slot.req_va; len = size; writable = false };
        { Vq.va = slot.resp_va; len = slot_bytes; writable = true };
      ]
    in
    match Vq.Driver.add t.driver chain with
    | Error m ->
      t.free_slots <- slot :: t.free_slots;
      k (Ssd_proto.Err ("virtqueue: " ^ m))
    | Ok head ->
      Hashtbl.replace t.by_head head (slot, k);
      Device.doorbell t.dev ~dst:t.provider_id ~queue:t.queue_id
  end

let rec pump t =
  match t.free_slots with
  | [] -> ()
  | slot :: rest ->
    if Queue.is_empty t.waiting then ()
    else begin
      let req, k = Queue.pop t.waiting in
      t.free_slots <- rest;
      submit t req k slot;
      pump t
    end

let request t req k =
  match t.free_slots with
  | slot :: rest ->
    t.free_slots <- rest;
    submit t req k slot
  | [] -> Queue.push (req, k) t.waiting

(* Fail every queued and in-flight operation — the provider is gone and
   its used ring will never advance. A supervisor calls this before
   re-attaching elsewhere so no continuation is stranded. *)
let abort_in_flight t reason =
  List.iter
    (fun (head, (_, k)) ->
      Hashtbl.remove t.by_head head;
      k (Ssd_proto.Err reason))
    (Lastcpu_sim.Detmap.bindings t.by_head);
  while not (Queue.is_empty t.waiting) do
    let _, k = Queue.pop t.waiting in
    k (Ssd_proto.Err reason)
  done

let on_doorbell t () =
  let rec drain () =
    match Vq.Driver.poll_used t.driver with
    | None -> ()
    | Some (head, written) ->
      (match Hashtbl.find_opt t.by_head head with
      | None -> ()
      | Some (slot, k) ->
        Hashtbl.remove t.by_head head;
        t.completed <- t.completed + 1;
        let rlen = min written slot_bytes in
        let decoded =
          (* Parse the response straight out of the mapped slot; the
             copying fallback reads the same translated range. *)
          match Dma.map_single t.dma ~va:slot.resp_va ~len:rlen ~perm:Iommu.Read with
          | Some v -> Ssd_proto.decode_response_view v
          | None -> Ssd_proto.decode_response (Dma.read_bytes t.dma slot.resp_va rlen)
        in
        let resp =
          match decoded with
          | Ok r -> r
          | Error m -> Ssd_proto.Err ("malformed response: " ^ m)
        in
        t.free_slots <- slot :: t.free_slots;
        k resp);
      drain ()
  in
  drain ();
  pump t

(* Checkpointing -------------------------------------------------------------
   At a quiescent point [by_head] and [waiting] are empty (they hold live
   continuations, which quiescence forbids), so only the driver-side ring
   bookkeeping, the free-slot pool (its order decides which DMA addresses
   future requests use) and the completion counter need to travel. *)

module Snapshot = Lastcpu_sim.Snapshot

let save w t =
  Snapshot.W.varint w t.completed;
  Snapshot.W.list w
    (fun w s ->
      Snapshot.W.i64 w s.req_va;
      Snapshot.W.i64 w s.resp_va)
    t.free_slots;
  Vq.Driver.save w t.driver

let restore r t =
  t.completed <- Snapshot.R.varint r;
  t.free_slots <-
    Snapshot.R.list r (fun r ->
        let req_va = Snapshot.R.i64 r in
        let resp_va = Snapshot.R.i64 r in
        { req_va; resp_va });
  Hashtbl.reset t.by_head;
  Queue.clear t.waiting;
  t.driver <- Vq.Driver.restore r ~dma:t.dma

(* Connection (the Figure-2 sequence) ---------------------------------------- *)

let connect dev ~memctl ~pasid ~shm_va ~user ~path_hint ?auth ?(queue_size = 64)
    ?req_timeout ?req_retries k =
  let fail stage code =
    k
      (Error
         (Printf.sprintf "%s failed: %s" stage (Types.error_code_to_string code)))
  in
  (* Step 1: who owns the file? *)
  Device.discover dev ~kind:Types.File_service ~query:path_hint
    ?retries:req_retries (fun found ->
      match found with
      | None -> k (Error "discover failed: no file service answered")
      | Some (provider_id, service) ->
        (* Step 3: open the service. *)
        let params =
          ("user", user)
          :: (if String.equal path_hint "" then [] else [ ("path", path_hint) ])
        in
        Device.open_service dev ~provider:provider_id ~service ~pasid ?auth
          ~params ?timeout:req_timeout ?retries:req_retries
          (fun res ->
            match res with
            | Error code -> fail "open" code
            | Ok { Device.connection = conn; shm_bytes = wanted } ->
              let bytes = if wanted > 0L then wanted else shm_bytes in
              (* Step 5: allocate the shared memory. *)
              Device.alloc dev ~memctl ~pasid ~va:shm_va ~bytes
                ~perm:Types.perm_rw ?timeout:req_timeout ?retries:req_retries
                (fun res ->
                  match res with
                  | Error code -> fail "alloc" code
                  | Ok token ->
                    (* Step 7: grant the provider access. *)
                    Device.grant dev ~to_device:provider_id ~pasid ~va:shm_va
                      ~bytes ~perm:Types.perm_rw ~auth:token
                      ?timeout:req_timeout ?retries:req_retries (fun res ->
                        match res with
                        | Error code -> fail "grant" code
                        | Ok () ->
                          let dma = Device.dma dev ~pasid in
                          let driver =
                            Vq.Driver.create ~dma ~base:shm_va ~size:queue_size
                          in
                          (* Carve request/response slots out of the region
                             after the rings. *)
                          let ring_bytes = Vq.layout_bytes ~size:queue_size in
                          let slots_base =
                            Int64.add shm_va
                              (Int64.of_int ((ring_bytes + 4095) land lnot 4095))
                          in
                          let avail =
                            Int64.to_int
                              (Int64.sub (Int64.add shm_va bytes) slots_base)
                          in
                          let nslots =
                            min (queue_size / 2) (avail / (2 * slot_bytes))
                          in
                          let free_slots =
                            List.init nslots (fun i ->
                                let base =
                                  Int64.add slots_base
                                    (Int64.of_int (i * 2 * slot_bytes))
                                in
                                {
                                  req_va = base;
                                  resp_va = Int64.add base (Int64.of_int slot_bytes);
                                })
                          in
                          let queue_id = Device.fresh_queue_id dev in
                          let t =
                            {
                              dev;
                              provider_id;
                              conn;
                              pasid;
                              memctl;
                              queue_id;
                              driver;
                              dma;
                              shm_va;
                              token;
                              free_slots;
                              by_head = Hashtbl.create 16;
                              waiting = Queue.create ();
                              completed = 0;
                            }
                          in
                          (* Attach the queue on the provider side. *)
                          Device.request dev ?timeout:req_timeout
                            ?retries:req_retries ~dst:(Types.Device provider_id)
                            (Message.App_message
                               {
                                 tag = "vq-attach";
                                 body =
                                   Smart_ssd.encode_vq_attach ~queue:queue_id
                                     ~base:shm_va ~size:queue_size ~pasid ~user;
                               })
                            (fun payload ->
                              match payload with
                              | Message.App_message { tag = "vq-ok"; _ } ->
                                Device.on_doorbell dev ~queue:queue_id
                                  (on_doorbell t);
                                k (Ok t)
                              | Message.App_message { tag = _; body } ->
                                k (Error ("vq-attach failed: " ^ body))
                              | Message.Error_msg { detail; _ } ->
                                k (Error ("vq-attach failed: " ^ detail))
                              | _ -> k (Error "vq-attach failed"))))))

(* Convenience wrappers ------------------------------------------------------ *)

let lift_unit k = function
  | Ssd_proto.Ok_unit -> k (Ok ())
  | Ssd_proto.Err m -> k (Error m)
  | _ -> k (Error "unexpected response")

let create t ?(mode = 0o644) path k =
  request t (Ssd_proto.Create { path; mode }) (lift_unit k)

let mkdir t ?(mode = 0o755) path k =
  request t (Ssd_proto.Mkdir { path; mode }) (lift_unit k)

let unlink t path k = request t (Ssd_proto.Unlink { path }) (lift_unit k)

let read t path ~off ~len k =
  request t (Ssd_proto.Read { path; off; len }) (function
    | Ssd_proto.Ok_data d -> k (Ok d)
    | Ssd_proto.Err m -> k (Error m)
    | _ -> k (Error "unexpected response"))

let write t path ~off data k =
  request t (Ssd_proto.Write { path; off; data }) (lift_unit k)

let stat t path k =
  request t (Ssd_proto.Stat { path }) (function
    | Ssd_proto.Ok_stat { size; kind_dir; _ } -> k (Ok (size, kind_dir))
    | Ssd_proto.Err m -> k (Error m)
    | _ -> k (Error "unexpected response"))

let rename t from_path to_path k =
  request t (Ssd_proto.Rename { from_path; to_path }) (lift_unit k)

let bopen t ?(block_size = 512) path k =
  request t (Ssd_proto.Bopen { path; block_size }) (function
    | Ssd_proto.Ok_handle h -> k (Ok h)
    | Ssd_proto.Err m -> k (Error m)
    | _ -> k (Error "unexpected response"))

let bread t ~handle ~lba ~count k =
  request t (Ssd_proto.Bread { handle; lba; count }) (function
    | Ssd_proto.Ok_data d -> k (Ok d)
    | Ssd_proto.Err m -> k (Error m)
    | _ -> k (Error "unexpected response"))

let bwrite t ~handle ~lba data k =
  request t (Ssd_proto.Bwrite { handle; lba; data }) (lift_unit k)

let bclose t ~handle k = request t (Ssd_proto.Bclose { handle }) (lift_unit k)

let close t k =
  Device.request t.dev ~dst:(Types.Device t.provider_id)
    (Message.App_message { tag = "vq-detach"; body = string_of_int t.queue_id })
    (fun _ ->
      Device.clear_doorbell t.dev ~queue:t.queue_id;
      Device.close_service t.dev ~provider:t.provider_id ~connection:t.conn;
      Device.free t.dev ~memctl:t.memctl ~pasid:t.pasid ~va:t.shm_va
        ~bytes:shm_bytes (fun _ -> k ()))
