(** Data-plane request/response protocol of the smart SSD's file service.

    Requests travel inside VIRTIO descriptor chains in shared memory: the
    client writes an encoded request into a device-readable buffer and
    supplies a device-writable buffer for the response (§2.1 VIRTIO). The
    encoding reuses the bus codec's wire primitives. *)

type request =
  | Create of { path : string; mode : int }
  | Unlink of { path : string }
  | Mkdir of { path : string; mode : int }
  | Read of { path : string; off : int; len : int }
  | Write of { path : string; off : int; data : string }
  | Stat of { path : string }
  | Readdir of { path : string }
  | Truncate of { path : string; len : int }
  | Fsync of { path : string }
  | Rename of { from_path : string; to_path : string }
      (** POSIX rename: atomically replaces a regular-file target *)
  (* Block-service operations (handle-based): a handle is a per-connection
     context naming a file used as a virtual block device — the device
     multiplexes and isolates these per queue (§2.1). *)
  | Bopen of { path : string; block_size : int }
  | Bread of { handle : int; lba : int; count : int }
  | Bwrite of { handle : int; lba : int; data : string }
  | Bclose of { handle : int }

type response =
  | Ok_unit
  | Ok_data of string
  | Ok_names of string list
  | Ok_stat of { size : int; kind_dir : bool; owner : string; mode : int }
  | Ok_handle of int
  | Err of string

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

(** Zero-copy variants over DRAM views (the same byte layout, emitted by
    the same single-source codec): size a message without materialising
    it, encode it straight into a mapped virtqueue slot, decode it
    straight out of one. *)

val request_size : request -> int
(** [String.length (encode_request r)], computed against a byte counter. *)

val encode_request_into : request -> Lastcpu_proto.Slice.t -> pos:int -> int
(** Encode into a caller-provided slice at [pos]; returns bytes written
    ([= request_size r]). @raise Lastcpu_proto.Wire.Malformed on overflow. *)

val decode_request_view :
  ?pos:int -> ?len:int -> Lastcpu_proto.Slice.t -> (request, string) result
(** Decode from a window of a slice without copying the frame first
    (string payloads are still materialised for the caller). *)

val response_size : response -> int
val encode_response_into : response -> Lastcpu_proto.Slice.t -> pos:int -> int

val decode_response_view :
  ?pos:int -> ?len:int -> Lastcpu_proto.Slice.t -> (response, string) result

val request_path : request -> string
