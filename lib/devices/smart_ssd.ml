module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Wire = Lastcpu_proto.Wire
module Device = Lastcpu_device.Device
module Sysbus = Lastcpu_bus.Sysbus
module Engine = Lastcpu_sim.Engine
module Costs = Lastcpu_sim.Costs
module Nand = Lastcpu_flash.Nand
module Ftl = Lastcpu_flash.Ftl
module Fs = Lastcpu_fs.Fs
module Vq = Lastcpu_virtio.Virtqueue
module Dma = Lastcpu_virtio.Dma

type block_handle = { backing : string; block_size : int }

type queue_state = {
  vq : Vq.Device.t;
  client : Types.device_id;
  user : string;
  q_pasid : int;
  (* Per-connection block-device contexts: handles are only valid on the
     queue that opened them (isolation between instances, §2.1). *)
  handles : (int, block_handle) Hashtbl.t;
  mutable next_handle : int;
}

module Metrics = Lastcpu_sim.Metrics

type t = {
  dev : Device.t;
  ftl : Ftl.t;
  filesystem : Fs.t;
  auth_key : Token.key option;
  queues : (int, queue_state) Hashtbl.t;
  m_served : Metrics.counter;
}

(* vq-attach body codec ---------------------------------------------------- *)

let encode_vq_attach ~queue ~base ~size ~pasid ~user =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w queue;
  Wire.Writer.int64 w base;
  Wire.Writer.varint w size;
  Wire.Writer.varint w pasid;
  Wire.Writer.string w user;
  Wire.Writer.contents w

let decode_vq_attach s =
  match
    let r = Wire.Reader.create s in
    let queue = Wire.Reader.varint r in
    let base = Wire.Reader.int64 r in
    let size = Wire.Reader.varint r in
    let pasid = Wire.Reader.varint r in
    let user = Wire.Reader.string r in
    (queue, base, size, pasid, user)
  with
  | v -> Ok v
  | exception Wire.Malformed m -> Error m

(* NAND cost accounting ----------------------------------------------------- *)

let nand_snapshot t =
  let n = Ftl.nand t.ftl in
  (Nand.reads n, Nand.programs n, Nand.total_erases n)

let nand_cost t (r0, p0, e0) =
  let costs = Engine.costs (Device.engine t.dev) in
  let r1, p1, e1 = nand_snapshot t in
  Int64.add
    (Int64.mul (Int64.of_int (r1 - r0)) costs.Costs.flash_read_page_ns)
    (Int64.add
       (Int64.mul (Int64.of_int (p1 - p0)) costs.Costs.flash_write_page_ns)
       (Int64.mul (Int64.of_int (e1 - e0)) costs.Costs.flash_erase_block_ns))

(* Request execution -------------------------------------------------------- *)

let exec_request t ~(qs : queue_state) (req : Ssd_proto.request) :
    Ssd_proto.response =
  let user = qs.user in
  let fs = t.filesystem in
  let wrap = function
    | Ok () -> Ssd_proto.Ok_unit
    | Error e -> Ssd_proto.Err (Fs.error_to_string e)
  in
  match req with
  | Ssd_proto.Create { path; mode } -> wrap (Fs.create fs ~user ~mode path)
  | Ssd_proto.Unlink { path } -> wrap (Fs.unlink fs ~user path)
  | Ssd_proto.Mkdir { path; mode } -> wrap (Fs.mkdir fs ~user ~mode path)
  | Ssd_proto.Read { path; off; len } -> (
    match Fs.read fs ~user path ~off ~len with
    | Ok data -> Ssd_proto.Ok_data data
    | Error e -> Ssd_proto.Err (Fs.error_to_string e))
  | Ssd_proto.Write { path; off; data } -> wrap (Fs.write fs ~user path ~off data)
  | Ssd_proto.Stat { path } -> (
    match Fs.stat fs path with
    | Ok s ->
      Ssd_proto.Ok_stat
        {
          size = s.Fs.size;
          kind_dir = s.Fs.kind = Fs.Directory;
          owner = s.Fs.owner;
          mode = s.Fs.mode;
        }
    | Error e -> Ssd_proto.Err (Fs.error_to_string e))
  | Ssd_proto.Readdir { path } -> (
    match Fs.readdir fs ~user path with
    | Ok names -> Ssd_proto.Ok_names names
    | Error e -> Ssd_proto.Err (Fs.error_to_string e))
  | Ssd_proto.Truncate { path; len } -> wrap (Fs.truncate fs ~user path ~len)
  | Ssd_proto.Fsync { path } ->
    (* All writes are synchronous through the FTL already. *)
    ignore path;
    Ssd_proto.Ok_unit
  | Ssd_proto.Rename { from_path; to_path } ->
    wrap (Fs.rename fs ~user from_path to_path)
  | Ssd_proto.Bopen { path; block_size } ->
    if block_size <= 0 || block_size > 65536 then Ssd_proto.Err "bad block size"
    else begin
      (* The backing file must exist and be accessible to this user. *)
      let probe =
        match Fs.stat fs path with
        | Error (Fs.Not_found_e _) -> Fs.create fs ~user path
        | Error e -> Error e
        | Ok s when s.Fs.kind = Fs.Directory -> Error (Fs.Is_a_directory path)
        | Ok _ -> Ok ()
      in
      match probe with
      | Error e -> Ssd_proto.Err (Fs.error_to_string e)
      | Ok () -> (
        (* Verify access now so Bread/Bwrite fail early. *)
        match Fs.read fs ~user path ~off:0 ~len:0 with
        | Error e -> Ssd_proto.Err (Fs.error_to_string e)
        | Ok _ ->
          let h = qs.next_handle in
          qs.next_handle <- h + 1;
          Hashtbl.replace qs.handles h { backing = path; block_size };
          Ssd_proto.Ok_handle h)
    end
  | Ssd_proto.Bread { handle; lba; count } -> (
    match Hashtbl.find_opt qs.handles handle with
    | None -> Ssd_proto.Err "bad handle"
    | Some { backing; block_size } ->
      if lba < 0 || count <= 0 then Ssd_proto.Err "bad lba/count"
      else begin
        match
          Fs.read fs ~user backing ~off:(lba * block_size)
            ~len:(count * block_size)
        with
        | Ok data ->
          (* Short reads at the end of the device are zero-padded to whole
             blocks, as a real block device would return. *)
          let want = count * block_size in
          let data =
            if String.length data < want then
              data ^ String.make (want - String.length data) '\000'
            else data
          in
          Ssd_proto.Ok_data data
        | Error e -> Ssd_proto.Err (Fs.error_to_string e)
      end)
  | Ssd_proto.Bwrite { handle; lba; data } -> (
    match Hashtbl.find_opt qs.handles handle with
    | None -> Ssd_proto.Err "bad handle"
    | Some { backing; block_size } ->
      if lba < 0 || String.length data mod block_size <> 0 then
        Ssd_proto.Err "write must be whole blocks"
      else begin
        match Fs.write fs ~user backing ~off:(lba * block_size) data with
        | Ok () -> Ssd_proto.Ok_unit
        | Error e -> Ssd_proto.Err (Fs.error_to_string e)
      end)
  | Ssd_proto.Bclose { handle } ->
    if Hashtbl.mem qs.handles handle then begin
      Hashtbl.remove qs.handles handle;
      Ssd_proto.Ok_unit
    end
    else Ssd_proto.Err "bad handle"

(* Chain helpers ------------------------------------------------------------ *)

module Iommu = Lastcpu_iommu.Iommu

let read_chain_out dma (buffers : Vq.buffer list) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (b : Vq.buffer) ->
      if not b.Vq.writable then
        Buffer.add_string buf (Dma.read_bytes dma b.Vq.va b.Vq.len))
    buffers;
  Buffer.contents buf

(* Zero-copy request parse: the common chain shape is one device-readable
   segment inside one page, where a direct grant costs exactly the
   translation the copying path would have spent and the decoder runs
   straight over DRAM. Anything else falls back to the gather-and-copy
   path. *)
let decode_chain_request dma (buffers : Vq.buffer list) =
  match List.filter (fun (b : Vq.buffer) -> not b.Vq.writable) buffers with
  | [ b ] -> (
    match Dma.map_single dma ~va:b.Vq.va ~len:b.Vq.len ~perm:Iommu.Read with
    | Some v -> Ssd_proto.decode_request_view v
    | None -> Ssd_proto.decode_request (Dma.read_bytes dma b.Vq.va b.Vq.len))
  | _ -> Ssd_proto.decode_request (read_chain_out dma buffers)

let write_chain_in dma (buffers : Vq.buffer list) data =
  (* Scatter the response across device-writable segments; returns bytes
     written or an error when capacity is insufficient. *)
  let len = String.length data in
  let rec go pos = function
    | [] -> if pos >= len then Ok len else Error "response exceeds buffer space"
    | (b : Vq.buffer) :: rest ->
      if not b.Vq.writable || pos >= len then go pos rest
      else begin
        let chunk = min b.Vq.len (len - pos) in
        Dma.write_bytes dma b.Vq.va (String.sub data pos chunk);
        go (pos + chunk) rest
      end
  in
  go 0 buffers

(* Zero-copy response emit: when the sized response fits the (single)
   writable segment and sits in one page, encode straight into the
   granted view — same translated range as the copying path writing the
   same bytes, no intermediate string. *)
let write_chain_response dma (buffers : Vq.buffer list) resp =
  match List.filter (fun (b : Vq.buffer) -> b.Vq.writable) buffers with
  | [ b ] when Ssd_proto.response_size resp <= b.Vq.len -> (
    let size = Ssd_proto.response_size resp in
    match Dma.map_single dma ~va:b.Vq.va ~len:size ~perm:Iommu.Write with
    | Some v -> Ok (Ssd_proto.encode_response_into resp v ~pos:0)
    | None -> write_chain_in dma buffers (Ssd_proto.encode_response resp))
  | _ -> write_chain_in dma buffers (Ssd_proto.encode_response resp)

(* Doorbell service --------------------------------------------------------- *)

let process_queue t ~queue =
  match Hashtbl.find_opt t.queues queue with
  | None -> ()
  | Some qs ->
    let dma = Device.dma t.dev ~pasid:qs.q_pasid in
    let total_cost = ref 0L in
    let completions =
      Vq.Device.drain_deferred qs.vq ~f:(fun { Vq.Device.buffers; _ } ->
          let snapshot = nand_snapshot t in
          let response =
            match decode_chain_request dma buffers with
            | Error m -> Ssd_proto.Err ("malformed request: " ^ m)
            | Ok req ->
              Metrics.incr t.m_served;
              exec_request t ~qs req
          in
          let written =
            match write_chain_response dma buffers response with
            | Ok n -> n
            | Error m -> (
              match write_chain_response dma buffers (Ssd_proto.Err m) with
              | Ok n -> n
              | Error _ -> 0)
          in
          total_cost := Int64.add !total_cost (nand_cost t snapshot);
          written)
    in
    (match completions with
    | [] -> ()
    | completions ->
      (* Completions surface after the flash work is done. *)
      Engine.schedule (Device.engine t.dev) ~delay:!total_cost (fun () ->
          Vq.Device.publish_used qs.vq completions;
          Device.doorbell t.dev ~dst:qs.client ~queue))

(* Control plane ------------------------------------------------------------ *)

let verify_session t ~user auth =
  match t.auth_key with
  | None -> true
  | Some key -> (
    match auth with
    | None -> false
    | Some token ->
      Token.verify ~key token
      && String.equal token.Token.resource ("session:" ^ user))

let handle_vq_attach t (msg : Message.t) body =
  let respond tag body' =
    Device.reply t.dev ~to_:msg.Message.src ~corr:msg.Message.corr
      (Message.App_message { tag; body = body' })
  in
  match decode_vq_attach body with
  | Error m -> respond "vq-err" m
  | Ok (queue, base, size, pasid, user) ->
    if Hashtbl.mem t.queues queue then respond "vq-err" "queue id in use"
    else begin
      match
        Vq.Device.create ~dma:(Device.dma t.dev ~pasid) ~base ~size
      with
      | vq ->
        Hashtbl.replace t.queues queue
          {
            vq;
            client = msg.Message.src;
            user;
            q_pasid = pasid;
            handles = Hashtbl.create 4;
            next_handle = 1;
          };
        Device.on_doorbell t.dev ~queue (fun () -> process_queue t ~queue);
        respond "vq-ok" ""
      | exception Invalid_argument m -> respond "vq-err" m
    end

let handle_vq_detach t (msg : Message.t) body =
  (match int_of_string_opt body with
  | Some queue ->
    Hashtbl.remove t.queues queue;
    Device.clear_doorbell t.dev ~queue
  | None -> ());
  Device.reply t.dev ~to_:msg.Message.src ~corr:msg.Message.corr
    (Message.App_message { tag = "vq-ok"; body = "" })

(* Checkpointing: the full storage stack this device owns — NAND image,
   FTL maps, FS block cache — plus every attached virtqueue's device-side
   state and open block handles. Queues are re-wired to their doorbells on
   restore; the rings themselves live in DRAM and come back with the
   memory image. *)
module Snapshot = Lastcpu_sim.Snapshot
module Detmap = Lastcpu_sim.Detmap

let save_state t =
  let w = Snapshot.W.create () in
  Nand.save w (Ftl.nand t.ftl);
  Ftl.save w t.ftl;
  Fs.save w t.filesystem;
  Snapshot.W.list w
    (fun w (queue, (qs : queue_state)) ->
      Snapshot.W.varint w queue;
      Snapshot.W.vint w qs.client;
      Snapshot.W.string w qs.user;
      Snapshot.W.vint w qs.q_pasid;
      Vq.Device.save w qs.vq;
      Snapshot.W.list w
        (fun w (h, { backing; block_size }) ->
          Snapshot.W.varint w h;
          Snapshot.W.string w backing;
          Snapshot.W.varint w block_size)
        (Detmap.bindings qs.handles);
      Snapshot.W.varint w qs.next_handle)
    (Detmap.bindings t.queues);
  Snapshot.W.contents w

let restore_state t body =
  let r = Snapshot.R.of_string body in
  Nand.restore r (Ftl.nand t.ftl);
  Ftl.restore r t.ftl;
  Fs.restore r t.filesystem;
  Hashtbl.reset t.queues;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let queue = Snapshot.R.varint r in
    let client = Snapshot.R.vint r in
    let user = Snapshot.R.string r in
    let q_pasid = Snapshot.R.vint r in
    let vq = Vq.Device.restore r ~dma:(Device.dma t.dev ~pasid:q_pasid) in
    let handles = Hashtbl.create 4 in
    let nh = Snapshot.R.varint r in
    for _ = 1 to nh do
      let h = Snapshot.R.varint r in
      let backing = Snapshot.R.string r in
      let block_size = Snapshot.R.varint r in
      Hashtbl.replace handles h { backing; block_size }
    done;
    let next_handle = Snapshot.R.varint r in
    Hashtbl.replace t.queues queue
      { vq; client; user; q_pasid; handles; next_handle };
    Device.on_doorbell t.dev ~queue (fun () -> process_queue t ~queue)
  done

let create sysbus ~mem ~name ?geometry ?auth_key () =
  (* The device claims the actor name; FTL and FS telemetry registers in
     the same engine registry under derived actors. *)
  let dev = Device.create sysbus ~mem ~name () in
  let metrics = Engine.metrics (Device.engine dev) in
  let actor = Device.actor dev in
  let nand =
    Nand.create ?geometry ~faults:(Engine.faults (Device.engine dev)) ~tag:actor
      ()
  in
  let ftl = Ftl.create ~nand ~metrics ~actor:(actor ^ ".ftl") () in
  let filesystem =
    match Fs.format ~metrics ~actor:(actor ^ ".fs") ftl with
    | Ok fs -> fs
    | Error e -> invalid_arg ("Smart_ssd.create: format failed: " ^ Fs.error_to_string e)
  in
  let t =
    {
      dev;
      ftl;
      filesystem;
      auth_key;
      queues = Hashtbl.create 8;
      m_served = Metrics.counter metrics ~actor ~name:"requests_served";
    }
  in
  (match Fs.mkdir filesystem ~user:"root" "/images" with
  | Ok () -> ()
  | Error _ -> ());
  Device.add_service dev
    {
      desc = { Message.kind = Types.File_service; name = name ^ ".fs"; version = 1 };
      can_serve =
        (fun ~query ->
          (* Serve existing files, or paths this FS could create (their
             parent directory exists). *)
          String.equal query ""
          || Fs.exists filesystem query
          ||
          match String.rindex_opt query '/' with
          | Some 0 -> true (* parent is the root *)
          | Some i -> Fs.exists filesystem (String.sub query 0 i)
          | None -> false);
      on_open =
        (fun ~client:_ ~pasid:_ ~auth ~params ->
          let user =
            Option.value (List.assoc_opt "user" params) ~default:"anonymous"
          in
          if not (verify_session t ~user auth) then Error Types.E_access_denied
          else begin
            let creatable path =
              Fs.exists filesystem path
              ||
              match String.rindex_opt path '/' with
              | Some 0 -> true
              | Some i -> Fs.exists filesystem (String.sub path 0 i)
              | None -> false
            in
            match List.assoc_opt "path" params with
            | Some path when not (creatable path) -> Error Types.E_not_found
            | Some _ | None ->
              (* Shared memory for one ring of 64 descriptors plus request
                 and response buffers (Fig. 2 step 4). *)
              Ok
                {
                  Device.connection = Device.fresh_connection dev;
                  shm_bytes = 65536L;
                }
          end);
      on_close = (fun ~connection:_ -> ());
    };
  Device.add_service dev
    {
      desc =
        { Message.kind = Types.Block_service; name = name ^ ".blk"; version = 1 };
      can_serve = (fun ~query:_ -> true);
      on_open =
        (fun ~client:_ ~pasid:_ ~auth ~params ->
          let user =
            Option.value (List.assoc_opt "user" params) ~default:"anonymous"
          in
          if not (verify_session t ~user auth) then Error Types.E_access_denied
          else
            Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 65536L });
      on_close = (fun ~connection:_ -> ());
    };
  Device.add_service dev
    {
      desc =
        { Message.kind = Types.Loader_service; name = name ^ ".loader"; version = 1 };
      can_serve = (fun ~query:_ -> true);
      on_open =
        (fun ~client:_ ~pasid:_ ~auth ~params ->
          let user =
            Option.value (List.assoc_opt "user" params) ~default:"anonymous"
          in
          if not (verify_session t ~user auth) then Error Types.E_access_denied
          else Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 0L });
      on_close = (fun ~connection:_ -> ());
    };
  Device.set_app_handler dev (fun msg ->
      match msg.Message.payload with
      | Message.App_message { tag = "vq-attach"; body } -> handle_vq_attach t msg body
      | Message.App_message { tag = "vq-detach"; body } -> handle_vq_detach t msg body
      | Message.Load_image { image; bytes } ->
        let path = "/images/" ^ image in
        let result =
          match Fs.create t.filesystem ~user:"root" path with
          | Ok () | Error (Fs.Exists _) ->
            Fs.truncate t.filesystem ~user:"root" path ~len:(Int64.to_int bytes)
          | Error _ as e -> e
        in
        (match result with
        | Ok () ->
          Device.reply t.dev ~to_:msg.Message.src ~corr:msg.Message.corr
            (Message.App_message { tag = "load-ok"; body = image })
        | Error e ->
          Device.reply t.dev ~to_:msg.Message.src ~corr:msg.Message.corr
            (Message.Error_msg
               { code = Types.E_invalid; detail = Fs.error_to_string e }))
      | _ -> ());
  Engine.register_snapshot (Device.engine dev) ~name:actor
    ~save:(fun () -> save_state t)
    ~restore:(restore_state t);
  Device.start dev;
  t

let device t = t.dev
let id t = Device.id t.dev
let fs t = t.filesystem
let ftl t = t.ftl
let requests_served t = Metrics.counter_value t.m_served
let active_queues t = Hashtbl.length t.queues
