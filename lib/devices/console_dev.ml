module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Device = Lastcpu_device.Device

type t = {
  dev : Device.t;
  capacity : int;
  mutable lines : string list;  (* newest first *)
  mutable count : int;
  mutable received : int;
}

let trim t =
  if t.count > t.capacity then begin
    let rec keep n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: keep (n - 1) rest
    in
    t.lines <- keep t.capacity t.lines;
    t.count <- t.capacity
  end

let create sysbus ~mem ?(capacity = 4096) () =
  let dev = Device.create sysbus ~mem ~name:"console" () in
  let t = { dev; capacity; lines = []; count = 0; received = 0 } in
  Device.add_service dev
    {
      desc =
        { Message.kind = Types.Console_service; name = "console.ops"; version = 1 };
      can_serve = (fun ~query:_ -> true);
      on_open =
        (fun ~client:_ ~pasid:_ ~auth:_ ~params:_ ->
          Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 0L });
      on_close = (fun ~connection:_ -> ());
    };
  Device.set_app_handler dev (fun msg ->
      match msg.Message.payload with
      | Message.App_message { tag = "log"; body } ->
        t.received <- t.received + 1;
        t.lines <- body :: t.lines;
        t.count <- t.count + 1;
        trim t
      | Message.App_message { tag = "log-read"; body } ->
        let n =
          match int_of_string_opt body with Some n when n > 0 -> n | _ -> 100
        in
        let rec take k = function
          | [] -> []
          | _ when k = 0 -> []
          | x :: rest -> x :: take (k - 1) rest
        in
        let tail = List.rev (take n t.lines) in
        Device.reply dev ~to_:msg.Message.src ~corr:msg.Message.corr
          (Message.App_message { tag = "log-data"; body = String.concat "\n" tail })
      | _ -> ());
  (* Checkpoint: the ring of log lines (newest first, order preserved) and
     the receive counter. *)
  let module Snapshot = Lastcpu_sim.Snapshot in
  Lastcpu_sim.Engine.register_snapshot (Device.engine dev)
    ~name:(Device.actor dev)
    ~save:(fun () ->
      let w = Snapshot.W.create () in
      Snapshot.W.varint w t.received;
      Snapshot.W.list w (fun w line -> Snapshot.W.string w line) t.lines;
      Snapshot.W.contents w)
    ~restore:(fun data ->
      let r = Snapshot.R.of_string data in
      t.received <- Snapshot.R.varint r;
      t.lines <- Snapshot.R.list r Snapshot.R.string;
      t.count <- List.length t.lines;
      trim t);
  Device.start dev;
  t

let device t = t.dev
let id t = Device.id t.dev
let log_lines t = List.rev t.lines
let lines_received t = t.received
