module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Device = Lastcpu_device.Device
module Sysbus = Lastcpu_bus.Sysbus
module Engine = Lastcpu_sim.Engine
module Rng = Lastcpu_sim.Rng
module Snapshot = Lastcpu_sim.Snapshot
module Detmap = Lastcpu_sim.Detmap

type t = {
  dev : Device.t;
  signing_key : Token.key;
  rng : Rng.t;
  (* The "passwd file": user -> salted credential digest. *)
  passwd : (string, int64) Hashtbl.t;
  salt : int64;
  mutable attempts : int;
  mutable failures : int;
}

(* A toy digest (FNV over salt || credential); the point is the protocol
   shape, not cryptographic strength. *)
let digest ~salt credential =
  let h = ref (Int64.logxor 0xCBF29CE484222325L salt) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    credential;
  !h

let add_user t ~user ~password =
  Hashtbl.replace t.passwd user (digest ~salt:t.salt password)

let create sysbus ~mem ?(users = []) () =
  let engine = Sysbus.engine sysbus in
  let dev = Device.create sysbus ~mem ~name:"authdev" () in
  let rng = Engine.fork_rng engine in
  let t =
    {
      dev;
      signing_key = Rng.int64 rng;
      rng;
      passwd = Hashtbl.create 8;
      salt = Rng.int64 rng;
      attempts = 0;
      failures = 0;
    }
  in
  List.iter (fun (user, password) -> add_user t ~user ~password) users;
  Device.add_service dev
    {
      desc = { Message.kind = Types.Auth_service; name = "authdev.login"; version = 1 };
      can_serve = (fun ~query:_ -> true);
      on_open =
        (fun ~client:_ ~pasid:_ ~auth:_ ~params:_ ->
          Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 0L });
      on_close = (fun ~connection:_ -> ());
    };
  Device.set_app_handler dev (fun msg ->
      match msg.Message.payload with
      | Message.Auth_request { user; credential } ->
        t.attempts <- t.attempts + 1;
        let ok =
          match Hashtbl.find_opt t.passwd user with
          | Some stored -> Int64.equal stored (digest ~salt:t.salt credential)
          | None -> false
        in
        if ok then begin
          let session =
            Token.mint ~key:t.signing_key ~issuer:(Device.id dev)
              ~subject:msg.Message.src ~pasid:0 ~resource:("session:" ^ user)
              ~base:0L ~length:0L ~perm:Types.perm_r ~nonce:(Rng.int64 t.rng)
              ()
          in
          Device.reply dev ~to_:msg.Message.src ~corr:msg.Message.corr
            (Message.Auth_response { ok = true; session = Some session })
        end
        else begin
          t.failures <- t.failures + 1;
          Device.reply dev ~to_:msg.Message.src ~corr:msg.Message.corr
            (Message.Auth_response { ok = false; session = None })
        end
      | _ -> ());
  (* Checkpoint: attempt counters, the nonce stream position (so resumed
     runs mint bit-identical session tokens) and the passwd table (users
     can be added mid-run). [signing_key] and [salt] are drawn from the
     fork before any state restore, so the rebuild re-derives them. *)
  Engine.register_snapshot engine ~name:(Device.actor dev)
    ~save:(fun () ->
      let w = Snapshot.W.create () in
      Snapshot.W.varint w t.attempts;
      Snapshot.W.varint w t.failures;
      Snapshot.W.i64 w (Rng.state t.rng);
      Snapshot.W.list w
        (fun w (user, d) ->
          Snapshot.W.string w user;
          Snapshot.W.i64 w d)
        (Detmap.bindings t.passwd);
      Snapshot.W.contents w)
    ~restore:(fun data ->
      let r = Snapshot.R.of_string data in
      t.attempts <- Snapshot.R.varint r;
      t.failures <- Snapshot.R.varint r;
      Rng.set_state t.rng (Snapshot.R.i64 r);
      Hashtbl.reset t.passwd;
      List.iter
        (fun (user, d) -> Hashtbl.replace t.passwd user d)
        (Snapshot.R.list r (fun r ->
             let user = Snapshot.R.string r in
             let d = Snapshot.R.i64 r in
             (user, d))));
  Device.start dev;
  t

let device t = t.dev
let id t = Device.id t.dev
let key t = t.signing_key
let auth_attempts t = t.attempts
let auth_failures t = t.failures
