module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Device = Lastcpu_device.Device
module Engine = Lastcpu_sim.Engine
module Costs = Lastcpu_sim.Costs
module Dma = Lastcpu_virtio.Dma

type t = {
  dev : Device.t;
  mutable jobs : int;
  mutable bytes : int;
  mutable faults : int;
}

(* The kernels themselves; shared by the accelerator and by [run_locally]
   so both paths compute identical answers and differ only in cost. *)

let fnv1a data =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    data;
  !h

let word_count data =
  let in_word = ref false in
  let count = ref 0 in
  String.iter
    (fun c ->
      let is_space = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
      if is_space then in_word := false
      else if not !in_word then begin
        in_word := true;
        incr count
      end)
    data;
  Int64.of_int !count

let execute dma (job : Accel_proto.job) : Accel_proto.outcome =
  match job with
  | Accel_proto.Checksum { va; len } ->
    Accel_proto.Value (fnv1a (Dma.read_bytes dma va len))
  | Accel_proto.Word_count { va; len } ->
    Accel_proto.Value (word_count (Dma.read_bytes dma va len))
  | Accel_proto.Upper { src; dst; len } ->
    let data = Dma.read_bytes dma src len in
    Dma.write_bytes dma dst (String.uppercase_ascii data);
    Accel_proto.Written len
  | Accel_proto.Histogram { va; len; dst } ->
    let data = Dma.read_bytes dma va len in
    let counts = Array.make 256 0L in
    String.iter
      (fun c ->
        let i = Char.code c in
        counts.(i) <- Int64.add counts.(i) 1L)
      data;
    Array.iteri
      (fun i v -> Dma.write_u64 dma (Int64.add dst (Int64.of_int (8 * i))) v)
      counts;
    Accel_proto.Written (256 * 8)

let run_with_cost engine ~per_byte ~setup dma job k =
  let outcome =
    match execute dma job with
    | outcome -> outcome
    | exception Dma.Dma_fault f ->
      Accel_proto.Fault
        (Printf.sprintf "iommu fault pasid=%d va=0x%Lx" f.Lastcpu_iommu.Iommu.pasid
           f.Lastcpu_iommu.Iommu.va)
  in
  let cost =
    Int64.add setup
      (Int64.mul per_byte (Int64.of_int (Accel_proto.job_bytes job)))
  in
  Engine.schedule engine ~delay:cost (fun () -> k outcome)

let create sysbus ~mem ~name () =
  let dev = Device.create sysbus ~mem ~name () in
  let t = { dev; jobs = 0; bytes = 0; faults = 0 } in
  Device.add_service dev
    {
      desc = { Message.kind = Types.Compute_service; name = name ^ ".compute"; version = 1 };
      can_serve = (fun ~query:_ -> true);
      on_open =
        (fun ~client:_ ~pasid:_ ~auth:_ ~params:_ ->
          Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 0L });
      on_close = (fun ~connection:_ -> ());
    };
  Device.set_app_handler dev (fun msg ->
      match msg.Message.payload with
      | Message.App_message { tag = "job-submit"; body } -> (
        (* Envelope: varint pasid | encoded job. *)
        let respond outcome =
          Device.reply dev ~to_:msg.Message.src ~corr:msg.Message.corr
            (Message.App_message
               { tag = "job-done"; body = Accel_proto.encode_outcome outcome })
        in
        let r = Lastcpu_proto.Wire.Reader.create body in
        match
          let pasid = Lastcpu_proto.Wire.Reader.varint r in
          (pasid, Lastcpu_proto.Wire.Reader.string r)
        with
        | exception Lastcpu_proto.Wire.Malformed m ->
          respond (Accel_proto.Fault ("malformed envelope: " ^ m))
        | pasid, job_bytes -> (
          match Accel_proto.decode_job job_bytes with
          | Error m -> respond (Accel_proto.Fault ("malformed job: " ^ m))
          | Ok job ->
            t.jobs <- t.jobs + 1;
            t.bytes <- t.bytes + Accel_proto.job_bytes job;
            let engine = Device.engine dev in
            let costs = Engine.costs engine in
            let dma = Device.dma dev ~pasid in
            run_with_cost engine ~per_byte:costs.Costs.accel_byte_ns
              ~setup:costs.Costs.accel_setup_ns dma job (fun outcome ->
                (match outcome with
                | Accel_proto.Fault _ -> t.faults <- t.faults + 1
                | Accel_proto.Value _ | Accel_proto.Written _ -> ());
                respond outcome)))
      | _ -> ());
  (* Checkpoint: job accounting only — the accelerator is stateless between
     jobs, and an in-flight job is volatile (blocks quiescence). *)
  let module Snapshot = Lastcpu_sim.Snapshot in
  Engine.register_snapshot (Device.engine dev) ~name:(Device.actor dev)
    ~save:(fun () ->
      let w = Snapshot.W.create () in
      Snapshot.W.varint w t.jobs;
      Snapshot.W.varint w t.bytes;
      Snapshot.W.varint w t.faults;
      Snapshot.W.contents w)
    ~restore:(fun data ->
      let r = Snapshot.R.of_string data in
      t.jobs <- Snapshot.R.varint r;
      t.bytes <- Snapshot.R.varint r;
      t.faults <- Snapshot.R.varint r);
  Device.start dev;
  t

let device t = t.dev
let id t = Device.id t.dev
let jobs_run t = t.jobs
let bytes_processed t = t.bytes
let job_faults t = t.faults

(* --- client side ------------------------------------------------------------- *)

let submit client ~accel ~pasid job k =
  let w = Lastcpu_proto.Wire.Writer.create () in
  Lastcpu_proto.Wire.Writer.varint w pasid;
  Lastcpu_proto.Wire.Writer.string w (Accel_proto.encode_job job);
  Device.request client ~dst:(Types.Device accel)
    (Message.App_message
       { tag = "job-submit"; body = Lastcpu_proto.Wire.Writer.contents w })
    (fun payload ->
      match payload with
      | Message.App_message { tag = "job-done"; body } -> (
        match Accel_proto.decode_outcome body with
        | Ok outcome -> k outcome
        | Error m -> k (Accel_proto.Fault ("malformed outcome: " ^ m)))
      | Message.Error_msg { detail; _ } -> k (Accel_proto.Fault detail)
      | _ -> k (Accel_proto.Fault "unexpected reply"))

let run_locally client ~pasid job k =
  let engine = Device.engine client in
  let costs = Engine.costs engine in
  let dma = Device.dma client ~pasid in
  run_with_cost engine ~per_byte:costs.Costs.wimpy_byte_ns ~setup:0L dma job k
