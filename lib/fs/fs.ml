module Ftl = Lastcpu_flash.Ftl
module Metrics = Lastcpu_sim.Metrics
module Detmap = Lastcpu_sim.Detmap

type file_kind = Regular | Directory

type stat = {
  ino : int;
  kind : file_kind;
  size : int;
  owner : string;
  mode : int;
}

type error =
  | Not_found_e of string
  | Exists of string
  | Not_a_directory of string
  | Is_a_directory of string
  | Permission of string
  | No_space
  | Invalid of string
  | Io of string

let error_to_string = function
  | Not_found_e p -> Printf.sprintf "not found: %s" p
  | Exists p -> Printf.sprintf "already exists: %s" p
  | Not_a_directory p -> Printf.sprintf "not a directory: %s" p
  | Is_a_directory p -> Printf.sprintf "is a directory: %s" p
  | Permission p -> Printf.sprintf "permission denied: %s" p
  | No_space -> "no space left on device"
  | Invalid m -> Printf.sprintf "invalid: %s" m
  | Io m -> Printf.sprintf "io error: %s" m

(* On-disk geometry ------------------------------------------------------ *)

let magic = "LCFS1\000"
let inode_size = 256
let ndirect = 12
let owner_max = 31

type t = {
  ftl : Ftl.t;
  block_size : int;
  total_blocks : int;
  bitmap_start : int;  (* = 1 *)
  bitmap_blocks : int;
  itable_start : int;
  itable_blocks : int;
  data_start : int;
  ninodes : int;
  root_ino : int;
  (* Device-DRAM block cache (write-through): models the on-device cache
     hierarchy of §2.3. Reads served from here cost no NAND operation;
     every write still programs flash (durability preserved). *)
  cache : (int, Bytes.t) Hashtbl.t option;
  m_block_reads : Metrics.counter;
  m_block_writes : Metrics.counter;
  m_cache_hits : Metrics.counter;
}

type inode = {
  mutable used : bool;
  mutable kind : file_kind;
  mutable size : int;
  mutable mode : int;
  mutable owner : string;
  direct : int array;  (* block numbers, 0 = hole *)
  mutable indirect : int;  (* block holding u32 block numbers, 0 = none *)
}

(* Low-level block IO ----------------------------------------------------- *)

let read_block t b =
  Metrics.incr t.m_block_reads;
  let from_flash () =
    match Ftl.read t.ftl ~lpn:b with
    | Ok s -> Ok (Bytes.of_string s)
    | Error e -> Error (Io e)
  in
  match t.cache with
  | None -> from_flash ()
  | Some cache -> (
    match Hashtbl.find_opt cache b with
    | Some cached ->
      Metrics.incr t.m_cache_hits;
      Ok (Bytes.copy cached)
    | None -> (
      match from_flash () with
      | Ok data ->
        Hashtbl.replace cache b (Bytes.copy data);
        Ok data
      | Error _ as e -> e))

let write_block t b data =
  Metrics.incr t.m_block_writes;
  match Ftl.write t.ftl ~lpn:b (Bytes.to_string data) with
  | Ok () ->
    (match t.cache with
    | None -> ()
    | Some cache -> Hashtbl.replace cache b (Bytes.copy data));
    Ok ()
  | Error e -> Error (Io e)

let ( let* ) = Result.bind

(* u32 little-endian in a bytes buffer *)
let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let set_u32 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u16 b off =
  Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

(* Inode (de)serialisation ------------------------------------------------ *)

let inode_to_bytes ino =
  let b = Bytes.make inode_size '\000' in
  Bytes.set b 0 (if ino.used then '\001' else '\000');
  Bytes.set b 1 (match ino.kind with Regular -> '\000' | Directory -> '\001');
  set_u32 b 2 ino.size;
  set_u16 b 6 ino.mode;
  let olen = min owner_max (String.length ino.owner) in
  Bytes.set b 8 (Char.chr olen);
  Bytes.blit_string ino.owner 0 b 9 olen;
  for i = 0 to ndirect - 1 do
    set_u32 b (48 + (4 * i)) ino.direct.(i)
  done;
  set_u32 b (48 + (4 * ndirect)) ino.indirect;
  b

let inode_of_bytes b =
  let used = Bytes.get b 0 = '\001' in
  let kind = if Bytes.get b 1 = '\001' then Directory else Regular in
  let size = get_u32 b 2 in
  let mode = get_u16 b 6 in
  let olen = Char.code (Bytes.get b 8) in
  let owner = Bytes.sub_string b 9 olen in
  let direct = Array.init ndirect (fun i -> get_u32 b (48 + (4 * i))) in
  let indirect = get_u32 b (48 + (4 * ndirect)) in
  { used; kind; size; mode; owner; direct; indirect }

let inodes_per_block t = t.block_size / inode_size

let read_inode t ino =
  if ino < 0 || ino >= t.ninodes then Error (Invalid "bad inode number")
  else begin
    let blk = t.itable_start + (ino / inodes_per_block t) in
    let off = ino mod inodes_per_block t * inode_size in
    let* b = read_block t blk in
    Ok (inode_of_bytes (Bytes.sub b off inode_size))
  end

let write_inode t ino node =
  let blk = t.itable_start + (ino / inodes_per_block t) in
  let off = ino mod inodes_per_block t * inode_size in
  let* b = read_block t blk in
  Bytes.blit (inode_to_bytes node) 0 b off inode_size;
  write_block t blk b

let alloc_inode t =
  let rec scan ino =
    if ino >= t.ninodes then Error No_space
    else
      let* node = read_inode t ino in
      if node.used then scan (ino + 1) else Ok ino
  in
  scan 0

(* Block bitmap ----------------------------------------------------------- *)

let bit_get b i = Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set b i v =
  let cur = Char.code (Bytes.get b (i / 8)) in
  let mask = 1 lsl (i mod 8) in
  Bytes.set b (i / 8) (Char.chr (if v then cur lor mask else cur land lnot mask))

let bits_per_block t = t.block_size * 8

let alloc_block t =
  (* First-fit over the data region. *)
  let rec scan_block bi =
    if bi >= t.bitmap_blocks then Error No_space
    else begin
      let* b = read_block t (t.bitmap_start + bi) in
      let base = bi * bits_per_block t in
      let rec scan_bit i =
        if i >= bits_per_block t then scan_block (bi + 1)
        else begin
          let blk = base + i in
          if blk >= t.total_blocks then Error No_space
          else if blk >= t.data_start && not (bit_get b i) then begin
            bit_set b i true;
            let* () = write_block t (t.bitmap_start + bi) b in
            (* Zero the block so stale contents never leak between files —
               the isolation property §2.1 demands of a multi-client
               device. *)
            let* () = write_block t blk (Bytes.make t.block_size '\000') in
            Ok blk
          end
          else scan_bit (i + 1)
        end
      in
      scan_bit 0
    end
  in
  scan_block 0

let free_block t blk =
  if blk < t.data_start || blk >= t.total_blocks then
    Error (Invalid "free of metadata block")
  else begin
    let bi = blk / bits_per_block t in
    let i = blk mod bits_per_block t in
    let* b = read_block t (t.bitmap_start + bi) in
    if not (bit_get b i) then Error (Invalid "double free of block")
    else begin
      bit_set b i false;
      let* () = write_block t (t.bitmap_start + bi) b in
      Ftl.trim t.ftl ~lpn:blk;
      Ok ()
    end
  end

let count_free_blocks t =
  let count = ref 0 in
  (try
     for bi = 0 to t.bitmap_blocks - 1 do
       match read_block t (t.bitmap_start + bi) with
       | Error _ -> raise Exit
       | Ok b ->
         let base = bi * bits_per_block t in
         for i = 0 to bits_per_block t - 1 do
           let blk = base + i in
           if blk >= t.data_start && blk < t.total_blocks && not (bit_get b i)
           then incr count
         done
     done
   with Exit -> ());
  !count

(* File block mapping ----------------------------------------------------- *)

let ptrs_per_block t = t.block_size / 4

let max_file_blocks t = ndirect + ptrs_per_block t

(* Get the data block for file-block index [n]; allocate if [grow]. Returns
   0 (a hole) only when not growing. *)
let bmap t node n ~grow =
  if n < 0 || n >= max_file_blocks t then Error (Invalid "file too large")
  else if n < ndirect then begin
    if node.direct.(n) <> 0 then Ok node.direct.(n)
    else if not grow then Ok 0
    else
      let* blk = alloc_block t in
      node.direct.(n) <- blk;
      Ok blk
  end
  else begin
    let idx = n - ndirect in
    let* ind_blk =
      if node.indirect <> 0 then Ok node.indirect
      else if not grow then Ok 0
      else
        let* blk = alloc_block t in
        node.indirect <- blk;
        Ok blk
    in
    if ind_blk = 0 then Ok 0
    else begin
      let* ind = read_block t ind_blk in
      let cur = get_u32 ind (4 * idx) in
      if cur <> 0 then Ok cur
      else if not grow then Ok 0
      else begin
        let* blk = alloc_block t in
        set_u32 ind (4 * idx) blk;
        let* () = write_block t ind_blk ind in
        Ok blk
      end
    end
  end

(* Generic file read/write over an inode (works for directories too). *)

let read_inode_data t node ~off ~len =
  let len = max 0 (min len (node.size - off)) in
  if len = 0 then Ok ""
  else begin
    let out = Bytes.create len in
    let rec go pos =
      if pos >= len then Ok (Bytes.unsafe_to_string out)
      else begin
        let fpos = off + pos in
        let n = fpos / t.block_size in
        let boff = fpos mod t.block_size in
        let chunk = min (len - pos) (t.block_size - boff) in
        let* blk = bmap t node n ~grow:false in
        if blk = 0 then begin
          Bytes.fill out pos chunk '\000';
          go (pos + chunk)
        end
        else
          let* b = read_block t blk in
          Bytes.blit b boff out pos chunk;
          go (pos + chunk)
      end
    in
    go 0
  end

let write_inode_data t ino node ~off data =
  let len = String.length data in
  if len = 0 then Ok ()
  else begin
    let rec go pos =
      if pos >= len then Ok ()
      else begin
        let fpos = off + pos in
        let n = fpos / t.block_size in
        let boff = fpos mod t.block_size in
        let chunk = min (len - pos) (t.block_size - boff) in
        let* blk = bmap t node n ~grow:true in
        let* b = read_block t blk in
        Bytes.blit_string data pos b boff chunk;
        let* () = write_block t blk b in
        go (pos + chunk)
      end
    in
    let* () = go 0 in
    if off + len > node.size then node.size <- off + len;
    write_inode t ino node
  end

(* Directories ------------------------------------------------------------ *)

(* Entry: u16 name_len | name | u32 ino. Whole directory is parsed and
   rewritten on mutation; directories are small. *)

let parse_dir data =
  let len = String.length data in
  let rec go pos acc =
    if pos + 2 > len then List.rev acc
    else begin
      let nlen = Char.code data.[pos] lor (Char.code data.[pos + 1] lsl 8) in
      if nlen = 0 || pos + 2 + nlen + 4 > len then List.rev acc
      else begin
        let name = String.sub data (pos + 2) nlen in
        let ino =
          Char.code data.[pos + 2 + nlen]
          lor (Char.code data.[pos + 2 + nlen + 1] lsl 8)
          lor (Char.code data.[pos + 2 + nlen + 2] lsl 16)
          lor (Char.code data.[pos + 2 + nlen + 3] lsl 24)
        in
        go (pos + 2 + nlen + 4) ((name, ino) :: acc)
      end
    end
  in
  go 0 []

let render_dir entries =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, ino) ->
      let n = String.length name in
      Buffer.add_char buf (Char.chr (n land 0xff));
      Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
      Buffer.add_string buf name;
      Buffer.add_char buf (Char.chr (ino land 0xff));
      Buffer.add_char buf (Char.chr ((ino lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr ((ino lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((ino lsr 24) land 0xff)))
    entries;
  Buffer.contents buf

let read_dir_entries t node =
  let* data = read_inode_data t node ~off:0 ~len:node.size in
  Ok (parse_dir data)

(* Free any data blocks past the first [keep_blocks] of the file, clearing
   their pointers (shared by truncate-shrink and directory rewrites). *)
let free_blocks_beyond t node ~keep_blocks =
  let rec free_from n res =
    match res with
    | Error _ as e -> e
    | Ok () ->
      if n >= max_file_blocks t then Ok ()
      else begin
        match bmap t node n ~grow:false with
        | Error _ as e -> e
        | Ok 0 -> free_from (n + 1) (Ok ())
        | Ok blk ->
          if n < ndirect then node.direct.(n) <- 0;
          free_from (n + 1) (free_block t blk)
      end
  in
  let* () = free_from keep_blocks (Ok ()) in
  if node.indirect = 0 then Ok ()
  else if keep_blocks <= ndirect then begin
    let blk = node.indirect in
    node.indirect <- 0;
    free_block t blk
  end
  else begin
    let* ind = read_block t node.indirect in
    for i = keep_blocks - ndirect to ptrs_per_block t - 1 do
      set_u32 ind (4 * i) 0
    done;
    write_block t node.indirect ind
  end

let write_dir_entries t ino node entries =
  let data = render_dir entries in
  node.size <- 0;
  (* Overwrite from 0, set the size, and release blocks the smaller
     directory no longer needs. *)
  let* () = write_inode_data t ino node ~off:0 data in
  node.size <- String.length data;
  let keep_blocks = (node.size + t.block_size - 1) / t.block_size in
  let* () = free_blocks_beyond t node ~keep_blocks in
  write_inode t ino node

(* Path resolution -------------------------------------------------------- *)

let split_path path =
  if String.length path = 0 || path.[0] <> '/' then None
  else
    Some (List.filter (fun c -> String.length c > 0) (String.split_on_char '/' path))

let lookup t path =
  match split_path path with
  | None -> Error (Invalid (Printf.sprintf "bad path %S" path))
  | Some components ->
    let rec walk ino = function
      | [] -> Ok ino
      | name :: rest ->
        let* node = read_inode t ino in
        if node.kind <> Directory then Error (Not_a_directory path)
        else
          let* entries = read_dir_entries t node in
          (match List.assoc_opt name entries with
          | None -> Error (Not_found_e path)
          | Some child -> walk child rest)
    in
    walk t.root_ino components

let parent_of t path =
  match split_path path with
  | None | Some [] -> Error (Invalid (Printf.sprintf "bad path %S" path))
  | Some components ->
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | x :: rest -> split_last (x :: acc) rest
    in
    let dirs, name = split_last [] components in
    let dir_path = "/" ^ String.concat "/" dirs in
    let* dir_ino = lookup t dir_path in
    Ok (dir_ino, name)

(* Permissions ------------------------------------------------------------ *)

let can node ~user ~want =
  (* want: 0o4 read, 0o2 write, 0o1 exec/search *)
  if String.equal user "root" then true
  else begin
    let bits =
      if String.equal user node.owner then (node.mode lsr 6) land 0o7
      else node.mode land 0o7
    in
    bits land want = want
  end

let require node ~user ~want path =
  if can node ~user ~want then Ok () else Error (Permission path)

(* Superblock ------------------------------------------------------------- *)

let write_superblock t =
  let b = Bytes.make t.block_size '\000' in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  set_u32 b 8 t.total_blocks;
  set_u32 b 12 t.bitmap_blocks;
  set_u32 b 16 t.itable_blocks;
  set_u32 b 20 t.root_ino;
  write_block t 0 b

let layout ?(cache = true) ?metrics ?(actor = "fs") ftl =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let block_size = Ftl.page_size ftl in
  let total_blocks = Ftl.logical_pages ftl in
  let bitmap_blocks = ((total_blocks + (block_size * 8) - 1) / (block_size * 8)) in
  (* 1 inode per 16 data blocks, at least one table block. *)
  let ninodes_wanted = max 64 (total_blocks / 16) in
  let itable_blocks =
    (ninodes_wanted + (block_size / inode_size) - 1) / (block_size / inode_size)
  in
  let itable_start = 1 + bitmap_blocks in
  let data_start = itable_start + itable_blocks in
  {
    ftl;
    block_size;
    total_blocks;
    bitmap_start = 1;
    bitmap_blocks;
    itable_start;
    itable_blocks;
    data_start;
    ninodes = itable_blocks * (block_size / inode_size);
    root_ino = 0;
    cache = (if cache then Some (Hashtbl.create 1024) else None);
    m_block_reads = Metrics.counter m ~actor ~name:"block_reads";
    m_block_writes = Metrics.counter m ~actor ~name:"block_writes";
    m_cache_hits = Metrics.counter m ~actor ~name:"cache_hits";
  }

let format ?cache ?metrics ?actor ftl =
  let t = layout ?cache ?metrics ?actor ftl in
  if t.data_start >= t.total_blocks then Error No_space
  else begin
    let* () = write_superblock t in
    (* Mark metadata blocks used in the bitmap. *)
    let* () =
      let rec init bi res =
        match res with
        | Error _ as e -> e
        | Ok () ->
          if bi >= t.bitmap_blocks then Ok ()
          else begin
            let b = Bytes.make t.block_size '\000' in
            let base = bi * (t.block_size * 8) in
            for i = 0 to (t.block_size * 8) - 1 do
              let blk = base + i in
              if blk < t.data_start && blk < t.total_blocks then bit_set b i true
            done;
            init (bi + 1) (write_block t (t.bitmap_start + bi) b)
          end
      in
      init 0 (Ok ())
    in
    (* Zero the inode table. *)
    let* () =
      let rec zero i res =
        match res with
        | Error _ as e -> e
        | Ok () ->
          if i >= t.itable_blocks then Ok ()
          else
            zero (i + 1)
              (write_block t (t.itable_start + i) (Bytes.make t.block_size '\000'))
      in
      zero 0 (Ok ())
    in
    (* Root directory. *)
    let root =
      {
        used = true;
        kind = Directory;
        size = 0;
        mode = 0o777;
        owner = "root";
        direct = Array.make ndirect 0;
        indirect = 0;
      }
    in
    let* () = write_inode t t.root_ino root in
    Ok t
  end

let mount ?cache ?metrics ?actor ftl =
  let t = layout ?cache ?metrics ?actor ftl in
  let* b = read_block t 0 in
  if not (String.equal (Bytes.sub_string b 0 (String.length magic)) magic) then
    Error (Invalid "bad superblock magic")
  else if get_u32 b 8 <> t.total_blocks then
    Error (Invalid "superblock geometry mismatch")
  else Ok t

(* Public operations ------------------------------------------------------ *)

let create_node t ~user ~mode ~kind path =
  let* dir_ino, name = parent_of t path in
  let* dir = read_inode t dir_ino in
  if dir.kind <> Directory then Error (Not_a_directory path)
  else
    let* () = require dir ~user ~want:0o2 path in
    let* entries = read_dir_entries t dir in
    if List.mem_assoc name entries then Error (Exists path)
    else begin
      let* ino = alloc_inode t in
      let node =
        {
          used = true;
          kind;
          size = 0;
          mode;
          owner = user;
          direct = Array.make ndirect 0;
          indirect = 0;
        }
      in
      let* () = write_inode t ino node in
      write_dir_entries t dir_ino dir (entries @ [ (name, ino) ])
    end

let create t ~user ?(mode = 0o644) path = create_node t ~user ~mode ~kind:Regular path
let mkdir t ~user ?(mode = 0o755) path = create_node t ~user ~mode ~kind:Directory path

let free_file_blocks t node =
  let rec free_direct i res =
    match res with
    | Error _ as e -> e
    | Ok () ->
      if i >= ndirect then Ok ()
      else if node.direct.(i) = 0 then free_direct (i + 1) (Ok ())
      else begin
        let blk = node.direct.(i) in
        node.direct.(i) <- 0;
        free_direct (i + 1) (free_block t blk)
      end
  in
  let* () = free_direct 0 (Ok ()) in
  if node.indirect = 0 then Ok ()
  else begin
    let* ind = read_block t node.indirect in
    let rec free_ind i res =
      match res with
      | Error _ as e -> e
      | Ok () ->
        if i >= ptrs_per_block t then Ok ()
        else begin
          let blk = get_u32 ind (4 * i) in
          if blk = 0 then free_ind (i + 1) (Ok ())
          else free_ind (i + 1) (free_block t blk)
        end
    in
    let* () = free_ind 0 (Ok ()) in
    let blk = node.indirect in
    node.indirect <- 0;
    free_block t blk
  end

let unlink t ~user path =
  let* dir_ino, name = parent_of t path in
  let* dir = read_inode t dir_ino in
  let* () = require dir ~user ~want:0o2 path in
  let* entries = read_dir_entries t dir in
  match List.assoc_opt name entries with
  | None -> Error (Not_found_e path)
  | Some ino ->
    let* node = read_inode t ino in
    let* () =
      if node.kind = Directory then begin
        let* children = read_dir_entries t node in
        if children <> [] then Error (Invalid "directory not empty") else Ok ()
      end
      else Ok ()
    in
    let* () = free_file_blocks t node in
    node.used <- false;
    node.size <- 0;
    let* () = write_inode t ino node in
    write_dir_entries t dir_ino dir (List.remove_assoc name entries)

let stat t path =
  let* ino = lookup t path in
  let* node = read_inode t ino in
  Ok { ino; kind = node.kind; size = node.size; owner = node.owner; mode = node.mode }

let exists t path = Result.is_ok (lookup t path)

let readdir t ~user path =
  let* ino = lookup t path in
  let* node = read_inode t ino in
  if node.kind <> Directory then Error (Not_a_directory path)
  else
    let* () = require node ~user ~want:0o4 path in
    let* entries = read_dir_entries t node in
    Ok (List.map fst entries)

let read t ~user path ~off ~len =
  if off < 0 || len < 0 then Error (Invalid "negative offset or length")
  else
    let* ino = lookup t path in
    let* node = read_inode t ino in
    if node.kind = Directory then Error (Is_a_directory path)
    else
      let* () = require node ~user ~want:0o4 path in
      read_inode_data t node ~off ~len

let write t ~user path ~off data =
  if off < 0 then Error (Invalid "negative offset")
  else
    let* ino = lookup t path in
    let* node = read_inode t ino in
    if node.kind = Directory then Error (Is_a_directory path)
    else
      let* () = require node ~user ~want:0o2 path in
      write_inode_data t ino node ~off data

let file_size t path =
  let* s = stat t path in
  Ok s.size

let truncate t ~user path ~len =
  if len < 0 then Error (Invalid "negative length")
  else
    let* ino = lookup t path in
    let* node = read_inode t ino in
    if node.kind = Directory then Error (Is_a_directory path)
    else
      let* () = require node ~user ~want:0o2 path in
      if len >= node.size then begin
        node.size <- len;
        write_inode t ino node
      end
      else begin
        let keep_blocks = (len + t.block_size - 1) / t.block_size in
        let* () = free_blocks_beyond t node ~keep_blocks in
        node.size <- len;
        write_inode t ino node
      end

let rename t ~user old_path new_path =
  if String.equal old_path new_path then Ok ()
  else
    let* old_dir_ino, old_name = parent_of t old_path in
    let* new_dir_ino, new_name = parent_of t new_path in
    let* old_dir = read_inode t old_dir_ino in
    let* () = require old_dir ~user ~want:0o2 old_path in
    let* old_entries = read_dir_entries t old_dir in
    match List.assoc_opt old_name old_entries with
    | None -> Error (Not_found_e old_path)
    | Some ino ->
      let* new_dir = read_inode t new_dir_ino in
      let* () = require new_dir ~user ~want:0o2 new_path in
      let* new_entries = read_dir_entries t new_dir in
      (* POSIX: silently replace an existing regular file at the target. *)
      let* () =
        match List.assoc_opt new_name new_entries with
        | None -> Ok ()
        | Some target_ino ->
          let* target = read_inode t target_ino in
          if target.kind = Directory then Error (Is_a_directory new_path)
          else begin
            let* () = free_file_blocks t target in
            target.used <- false;
            target.size <- 0;
            write_inode t target_ino target
          end
      in
      if old_dir_ino = new_dir_ino then begin
        (* Same directory: one entry-list rewrite keeps it atomic. *)
        let entries =
          (new_name, ino)
          :: List.filter
               (fun (n, _) -> n <> old_name && n <> new_name)
               old_entries
        in
        write_dir_entries t old_dir_ino old_dir entries
      end
      else begin
        let* () =
          write_dir_entries t new_dir_ino new_dir
            ((new_name, ino) :: List.remove_assoc new_name new_entries)
        in
        (* Re-read the source directory: the target rewrite may have moved
           shared state (different inodes, so safe, but re-read anyway for
           clarity). *)
        let* old_dir = read_inode t old_dir_ino in
        let* old_entries = read_dir_entries t old_dir in
        write_dir_entries t old_dir_ino old_dir
          (List.remove_assoc old_name old_entries)
      end

let chmod t ~user path ~mode =
  let* ino = lookup t path in
  let* node = read_inode t ino in
  if not (String.equal user "root") && not (String.equal user node.owner) then
    Error (Permission path)
  else begin
    node.mode <- mode land 0o777;
    write_inode t ino node
  end

let chown t ~user path ~owner =
  let* ino = lookup t path in
  let* node = read_inode t ino in
  if not (String.equal user "root") then Error (Permission path)
  else begin
    node.owner <- owner;
    write_inode t ino node
  end

let free_blocks = count_free_blocks
let total_blocks t = t.total_blocks

(* Consistency checking ---------------------------------------------------- *)

type fsck_report = {
  files : int;
  directories : int;
  used_blocks : int;
  leaked_blocks : int;
  shared_blocks : int;
  unmarked_blocks : int;
  orphan_inodes : int;
}

let fsck t =
  (* Pass 1: walk the tree from the root, collecting reachable inodes and
     block references. *)
  let ref_count = Hashtbl.create 256 in
  let reachable_inodes = Hashtbl.create 64 in
  let files = ref 0 and directories = ref 0 in
  let note_block blk =
    if blk <> 0 then
      Hashtbl.replace ref_count blk
        (1 + Option.value (Hashtbl.find_opt ref_count blk) ~default:0)
  in
  let note_inode_blocks node =
    Array.iter note_block node.direct;
    if node.indirect <> 0 then begin
      note_block node.indirect;
      match read_block t node.indirect with
      | Error _ -> ()
      | Ok ind ->
        for i = 0 to ptrs_per_block t - 1 do
          note_block (get_u32 ind (4 * i))
        done
    end
  in
  let rec walk ino =
    if not (Hashtbl.mem reachable_inodes ino) then begin
      Hashtbl.replace reachable_inodes ino ();
      match read_inode t ino with
      | Error _ -> Ok ()
      | Ok node ->
        note_inode_blocks node;
        (match node.kind with
        | Regular ->
          incr files;
          Ok ()
        | Directory ->
          incr directories;
          let* entries = read_dir_entries t node in
          List.fold_left
            (fun res (_, child) ->
              match res with Error _ as e -> e | Ok () -> walk child)
            (Ok ()) entries)
    end
    else Ok ()
  in
  let* () = walk t.root_ino in
  (* Pass 2: cross-check the bitmap. *)
  let leaked = ref 0 and unmarked = ref 0 in
  let* () =
    let rec scan bi res =
      match res with
      | Error _ as e -> e
      | Ok () ->
        if bi >= t.bitmap_blocks then Ok ()
        else
          let* b = read_block t (t.bitmap_start + bi) in
          let base = bi * bits_per_block t in
          for i = 0 to bits_per_block t - 1 do
            let blk = base + i in
            if blk >= t.data_start && blk < t.total_blocks then begin
              let marked = bit_get b i in
              let referenced = Hashtbl.mem ref_count blk in
              if marked && not referenced then incr leaked;
              if referenced && not marked then incr unmarked
            end
          done;
          scan (bi + 1) (Ok ())
    in
    scan 0 (Ok ())
  in
  (* Pass 3: multiply-referenced blocks and orphan inodes. *)
  let shared =
    Detmap.fold_sorted
      (fun _ n acc -> if n > 1 then acc + 1 else acc)
      ref_count 0
  in
  let orphans = ref 0 in
  let* () =
    let rec scan ino res =
      match res with
      | Error _ as e -> e
      | Ok () ->
        if ino >= t.ninodes then Ok ()
        else
          let* node = read_inode t ino in
          if node.used && not (Hashtbl.mem reachable_inodes ino) then
            incr orphans;
          scan (ino + 1) (Ok ())
    in
    scan 0 (Ok ())
  in
  Ok
    {
      files = !files;
      directories = !directories;
      used_blocks = Hashtbl.length ref_count;
      leaked_blocks = !leaked;
      shared_blocks = shared;
      unmarked_blocks = !unmarked;
      orphan_inodes = !orphans;
    }

let pp_fsck_report ppf r =
  Format.fprintf ppf
    "files=%d dirs=%d used=%d leaked=%d shared=%d unmarked=%d orphans=%d"
    r.files r.directories r.used_blocks r.leaked_blocks r.shared_blocks
    r.unmarked_blocks r.orphan_inodes

(* Checkpointing: everything durable lives in the FTL/NAND image (saved by
   the device that owns the chip). The only in-memory state is the block
   cache — and it must be saved, because cache hits skip NAND reads, and
   both the NAND op counters and the per-page fault-occurrence streams are
   observable; a resumed run with a cold cache would diverge. *)
module Snapshot = Lastcpu_sim.Snapshot

let save w t =
  Snapshot.W.option w
    (fun w cache ->
      Snapshot.W.list w
        (fun w (b, data) ->
          Snapshot.W.varint w b;
          Snapshot.W.string w (Bytes.to_string data))
        (Detmap.bindings cache))
    t.cache

let restore r t =
  match (Snapshot.R.bool r, t.cache) with
  | false, None -> ()
  | true, Some cache ->
    Hashtbl.reset cache;
    let n = Snapshot.R.varint r in
    for _ = 1 to n do
      let b = Snapshot.R.varint r in
      let data = Snapshot.R.string r in
      if String.length data <> t.block_size then
        raise (Snapshot.R.Corrupt "fs cache block has wrong size");
      Hashtbl.replace cache b (Bytes.of_string data)
    done
  | true, None | false, Some _ ->
    invalid_arg "Fs.restore: cache presence differs from checkpoint"
