(** Inode file system over the FTL block device.

    This is the file service a smart SSD exposes (§2.1, §3): a small
    Unix-like FS with a superblock, block bitmap, inode table, directories,
    and per-file owner/permission checks (the paper's §4 access-control
    story: "access control to an individual file is implemented by the file
    system service, on the device that provides that service").

    Paths are absolute, '/'-separated. The FS is single-threaded (the SSD's
    embedded monitor serialises operations — §2.1 "software techniques such
    as time sharing"). *)

type t

type file_kind = Regular | Directory

type stat = {
  ino : int;
  kind : file_kind;
  size : int;
  owner : string;
  mode : int;  (** Unix-style 0oRWX bits for owner/other: 0o600 etc. *)
}

type error =
  | Not_found_e of string
  | Exists of string
  | Not_a_directory of string
  | Is_a_directory of string
  | Permission of string
  | No_space
  | Invalid of string
  | Io of string

val error_to_string : error -> string

val format :
  ?cache:bool ->
  ?metrics:Lastcpu_sim.Metrics.t ->
  ?actor:string ->
  Lastcpu_flash.Ftl.t ->
  (t, error) result
(** Write a fresh file system (root directory owned by "root", mode 0o777).
    [cache] (default true) enables the device-DRAM write-through block
    cache: reads hit DRAM, writes always program NAND (§2.3's on-device
    cache hierarchy). *)

val mount :
  ?cache:bool ->
  ?metrics:Lastcpu_sim.Metrics.t ->
  ?actor:string ->
  Lastcpu_flash.Ftl.t ->
  (t, error) result
(** Attach to a previously formatted device; validates the superblock.
    Both constructors register block_reads/block_writes/cache_hits under
    [actor] (default ["fs"]) in [metrics] (default: a private registry). *)

(** All operations take [~user] and enforce owner/mode. "root" bypasses
    permission checks. *)

val create : t -> user:string -> ?mode:int -> string -> (unit, error) result
val mkdir : t -> user:string -> ?mode:int -> string -> (unit, error) result
val unlink : t -> user:string -> string -> (unit, error) result
val stat : t -> string -> (stat, error) result
val exists : t -> string -> bool
val readdir : t -> user:string -> string -> (string list, error) result

val read : t -> user:string -> string -> off:int -> len:int -> (string, error) result
(** Short reads at EOF; reading past EOF returns [""]. *)

val write : t -> user:string -> string -> off:int -> string -> (unit, error) result
(** Extends the file as needed (holes read as zeroes). *)

val file_size : t -> string -> (int, error) result
val truncate : t -> user:string -> string -> len:int -> (unit, error) result
val rename : t -> user:string -> string -> string -> (unit, error) result
(** [rename t ~user old_path new_path]: POSIX semantics — if [new_path]
    exists and is a regular file it is atomically replaced (its blocks
    freed); renaming onto an existing directory or across a missing parent
    fails. Needs write permission on both parent directories. *)

val chmod : t -> user:string -> string -> mode:int -> (unit, error) result
val chown : t -> user:string -> string -> owner:string -> (unit, error) result

val free_blocks : t -> int
val total_blocks : t -> int

(** {1 Consistency checking} *)

type fsck_report = {
  files : int;
  directories : int;
  used_blocks : int;  (** data + indirect blocks reachable from inodes *)
  leaked_blocks : int;  (** marked used in the bitmap but unreachable *)
  shared_blocks : int;  (** referenced by more than one owner (corruption) *)
  unmarked_blocks : int;  (** reachable but free in the bitmap (corruption) *)
  orphan_inodes : int;  (** in-use inodes unreachable from the root *)
}

val fsck : t -> (fsck_report, error) result
(** Walk the tree from the root and cross-check against the block bitmap
    and inode table. A healthy file system has zero leaked, shared,
    unmarked and orphan counts (asserted by tests after every torture
    sequence). *)

val pp_fsck_report : Format.formatter -> fsck_report -> unit

val save : Lastcpu_sim.Snapshot.W.t -> t -> unit
(** Append the block cache (checkpointing). Durable state is in the FTL
    image, saved by the chip's owner; the cache is saved because hits skip
    observable NAND reads. *)

val restore : Lastcpu_sim.Snapshot.R.t -> t -> unit
(** Overwrite the block cache with state written by {!save}.
    @raise Invalid_argument if cache presence differs from the checkpoint.
    @raise Lastcpu_sim.Snapshot.R.Corrupt on malformed input. *)
